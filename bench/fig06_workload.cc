// Fig. 6 — "The number of concurrent user requests that the system must
// service when the arrival rate λ follows the Zipf distribution with θ."
//
// Prints, for θ ∈ {0.0, 0.5, 1.0}, the offered concurrency (capped at
// N = 79, the admission limit) sampled every 30 minutes over the day, plus
// the rejection counts. The shape to compare with the paper: θ <= 0.5 piles
// load between hours 7 and 13 and saturates N; θ = 1.0 is flat.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/units.h"
#include "sim/workload.h"

using namespace vod;          // NOLINT(build/namespaces)
using namespace vod::bench;   // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::Parse(argc, argv);
  const int cap = 79;
  std::printf("# Fig. 6: offered concurrency over the day (cap N=%d)\n", cap);
  PrintCsvHeader("theta,hour,concurrent_requests");

  for (double theta : {0.0, 0.5, 1.0}) {
    sim::WorkloadConfig w;
    w.duration = Hours(24);
    w.theta = theta;
    w.peak_time = Hours(9);
    w.total_expected_arrivals = opt.full ? 1500 : 1200;
    w.seed = 42;
    auto arrivals = sim::GenerateWorkload(w);
    if (!arrivals.ok()) {
      std::fprintf(stderr, "workload: %s\n",
                   arrivals.status().ToString().c_str());
      return 1;
    }
    sim::OfferedLoad load = sim::ComputeOfferedLoad(*arrivals, cap);

    // Sample the step series every 30 minutes.
    std::size_t idx = 0;
    int current = 0;
    for (Seconds t = Seconds(0); t <= Hours(24); t += Minutes(30)) {
      while (idx < load.concurrency.size() &&
             load.concurrency[idx].first <= t) {
        current = load.concurrency[idx].second;
        ++idx;
      }
      std::printf("%.1f,%.1f,%d\n", theta, ToHours(t), current);
    }
    std::printf("# theta=%.1f: arrivals=%zu rejected=%d peak=%d\n", theta,
                arrivals->size(), load.rejected, load.peak);
  }
  return 0;
}
