// Fig. 12 — minimum memory requirement vs n (analysis), static vs dynamic,
// per scheduling method: Theorems 2–4 against the static instantiation.
//
// Analysis-only (no simulation), but the three per-method curves are
// independent, so they evaluate concurrently on the exp::ThreadPool and
// print in method order — output is byte-identical to the serial harness.
//
// Paper reference: dynamic requirements are far below static at small n and
// converge at n = N; Sweep* needs roughly twice the memory of GSS*.

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/units.h"
#include "exp/runner.h"
#include "exp/thread_pool.h"
#include "vod/analysis.h"

using namespace vod;         // NOLINT(build/namespaces)
using namespace vod::bench;  // NOLINT(build/namespaces)

namespace {

std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::Parse(argc, argv);
  const std::vector<core::ScheduleMethod> methods = {
      core::ScheduleMethod::kRoundRobin, core::ScheduleMethod::kSweep,
      core::ScheduleMethod::kGss};

  std::vector<std::optional<Result<std::vector<SchemeComparisonPoint>>>>
      curves(methods.size());
  {
    exp::ThreadPool pool(opt.threads);
    pool.ParallelFor(methods.size(), [&](std::size_t i) {
      AnalysisConfig cfg;
      cfg.method = methods[i];
      cfg.k = PaperK(methods[i]);
      curves[i] = MemoryRequirementCurve(cfg);
    });
  }

  exp::Table table({"method", "n", "static_mb", "dynamic_mb"});
  for (std::size_t i = 0; i < methods.size(); ++i) {
    if (!curves[i]->ok()) {
      std::fprintf(stderr, "%s\n", curves[i]->status().ToString().c_str());
      return 1;
    }
    for (const auto& pt : **curves[i]) {
      table.AddRow({std::string(core::ScheduleMethodName(methods[i])),
                    std::to_string(pt.n), Fmt("%.3f", ToMebibytes(Bits(pt.stat))),
                    Fmt("%.3f", ToMebibytes(Bits(pt.dynamic)))});
    }
  }
  if (!opt.json) {
    std::printf(
        "# Fig. 12: minimum memory requirement (MB) vs n, per method\n");
  }
  table.Write(stdout, opt.json);
  if (!opt.trace.empty()) {
    std::fprintf(stderr,
                 "warning: --trace ignored (analysis-only harness)\n");
  }
  if (!opt.metrics.empty()) WriteMetricsArtifacts(opt.metrics, {});
  return 0;
}
