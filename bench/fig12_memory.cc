// Fig. 12 — minimum memory requirement vs n (analysis), static vs dynamic,
// per scheduling method: Theorems 2–4 against the static instantiation.
//
// Paper reference: dynamic requirements are far below static at small n and
// converge at n = N; Sweep* needs roughly twice the memory of GSS*.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/units.h"
#include "vod/analysis.h"

using namespace vod;         // NOLINT(build/namespaces)
using namespace vod::bench;  // NOLINT(build/namespaces)

int main() {
  std::printf("# Fig. 12: minimum memory requirement (MB) vs n, per method\n");
  PrintCsvHeader("method,n,static_mb,dynamic_mb");
  for (core::ScheduleMethod method :
       {core::ScheduleMethod::kRoundRobin, core::ScheduleMethod::kSweep,
        core::ScheduleMethod::kGss}) {
    AnalysisConfig cfg;
    cfg.method = method;
    cfg.k = PaperK(method);
    auto curve = MemoryRequirementCurve(cfg);
    if (!curve.ok()) {
      std::fprintf(stderr, "%s\n", curve.status().ToString().c_str());
      return 1;
    }
    for (const auto& pt : *curve) {
      std::printf("%s,%d,%.3f,%.3f\n",
                  core::ScheduleMethodName(method).data(), pt.n,
                  ToMegabytes(pt.stat), ToMegabytes(pt.dynamic));
    }
  }
  return 0;
}
