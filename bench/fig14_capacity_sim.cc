// Fig. 14 — the number of concurrent user requests served by a 10-disk
// server vs the amount of memory (simulation): the offered load far exceeds
// capacity, the shared AnalyticMemoryBroker gates admission, and the metric
// is the peak system-wide concurrency reached.
//
// Paper reference: the simulated curves track the Fig. 13 analysis; the
// dynamic scheme serves ~2.4–3.3× the static one's viewers averaged over
// memory sizes (Table 5).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/check.h"
#include "common/units.h"
#include "sim/multi_disk.h"

using namespace vod;         // NOLINT(build/namespaces)
using namespace vod::bench;  // NOLINT(build/namespaces)

int RunCapacitySim(sim::AllocScheme scheme, double disk_theta, Bits memory,
                   Seconds duration, double arrivals) {
  sim::SimConfig base;
  base.method = core::ScheduleMethod::kRoundRobin;
  base.scheme = scheme;
  base.t_log = PaperTLog(base.method);
  base.seed = 3;
  auto md = sim::MultiDiskSimulator::Create(base, /*disk_count=*/10, memory);
  VOD_CHECK(md.ok());

  sim::WorkloadConfig w;
  w.duration = duration;
  w.theta = 0.0;  // Strongly peaked day: probes the capacity ceiling.
  w.peak_time = duration / 2;
  w.total_expected_arrivals = arrivals;
  w.disk_count = 10;
  w.disk_theta = disk_theta;
  w.seed = 11;
  auto arr = sim::GenerateWorkload(w);
  VOD_CHECK(arr.ok());
  VOD_CHECK((*md)->AddArrivals(*arr).ok());
  (*md)->RunToCompletion();
  return (*md)->PeakConcurrency();
}

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::Parse(argc, argv);
  std::vector<double> memories_gb;
  if (opt.full) {
    for (double gb = 1.0; gb <= 11.0; gb += 1.0) memories_gb.push_back(gb);
  } else {
    memories_gb = {1.0, 3.0, 6.0, 11.0};
  }
  const Seconds duration = opt.full ? Hours(8) : Hours(3);
  const double arrivals = opt.full ? 4000 : 1800;

  std::printf("# Fig. 14: peak concurrent requests vs memory (simulation, "
              "10 disks, Round-Robin)\n");
  PrintCsvHeader("theta,memory_gb,static_requests,dynamic_requests");
  for (double theta : {0.0, 0.5, 1.0}) {
    for (double gb : memories_gb) {
      const int stat = RunCapacitySim(sim::AllocScheme::kStatic, theta,
                                      Gibibytes(gb), duration, arrivals);
      const int dyn = RunCapacitySim(sim::AllocScheme::kDynamic, theta,
                                     Gibibytes(gb), duration, arrivals);
      std::printf("%.1f,%.0f,%d,%d\n", theta, gb, stat, dyn);
      std::fflush(stdout);
    }
  }
  return 0;
}
