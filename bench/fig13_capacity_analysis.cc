// Fig. 13 — the number of concurrent user requests a 10-disk server can
// support vs the amount of memory available (analysis), for disk-load
// Zipf θ ∈ {0.0, 0.5, 1.0}, static vs dynamic.
//
// Paper reference: dynamic supports more requests at every memory size and
// both schemes meet at ~11 GB where the disks (10 × N = 790) become the
// binding constraint.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/units.h"
#include "vod/analysis.h"

using namespace vod;         // NOLINT(build/namespaces)
using namespace vod::bench;  // NOLINT(build/namespaces)

int main() {
  std::vector<Bits> memories;
  for (double gb = 1.0; gb <= 11.0; gb += 1.0) {
    memories.push_back(Gibibytes(gb));
  }

  std::printf("# Fig. 13: concurrent requests vs memory (analysis, 10 disks,"
              " Round-Robin)\n");
  PrintCsvHeader("theta,memory_gb,static_requests,dynamic_requests");
  for (double theta : {0.0, 0.5, 1.0}) {
    AnalysisConfig cfg;
    cfg.method = core::ScheduleMethod::kRoundRobin;
    cfg.k = PaperK(cfg.method);
    auto curve = CapacityVsMemoryCurve(cfg, /*disk_count=*/10, theta,
                                       memories);
    if (!curve.ok()) {
      std::fprintf(stderr, "%s\n", curve.status().ToString().c_str());
      return 1;
    }
    for (const auto& pt : *curve) {
      std::printf("%.1f,%.0f,%d,%d\n", theta, ToGibibytes(pt.memory),
                  pt.stat, pt.dynamic);
    }
  }
  return 0;
}
