// Fig. 7 — (a) the average number of estimated additional requests and
// (b) the successful estimation probability, as functions of T_log (α = 1),
// for the three scheduling methods.
//
// Runs on the parallel experiment runner (src/exp): the method × T_log grid
// fans out across --threads workers; rows are printed in grid order, so the
// CSV is byte-identical to the legacy serial harness at --seeds=1 (any
// thread count). --seeds=K>1 replicates each point over seeds 5..5+K-1 and
// appends stddev/CI columns.
//
// Paper reference points: success probability exceeds 99% from T_log =
// 40 min (Round-Robin) / 20 min (Sweep*, GSS*); the average estimate grows
// with T_log.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/units.h"
#include "exp/grid.h"
#include "exp/runner.h"

using namespace vod;         // NOLINT(build/namespaces)
using namespace vod::bench;  // NOLINT(build/namespaces)

namespace {

std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::Parse(argc, argv);
  const int seeds = opt.seeds > 0 ? opt.seeds : 1;
  const std::vector<double> tlog_minutes =
      opt.full ? std::vector<double>{5, 10, 20, 30, 40, 50, 60}
               : std::vector<double>{10, 20, 40, 60};

  DayRunConfig base;
  base.scheme = sim::AllocScheme::kDynamic;
  base.duration = opt.full ? Hours(24) : Hours(8);
  base.total_arrivals = opt.full ? 1200 : 400;
  base.theta = 0.0;
  opt.ApplyFaultsTo(&base);

  std::vector<Seconds> t_logs;
  for (double tl : tlog_minutes) t_logs.push_back(Minutes(tl));
  std::vector<std::uint64_t> seed_list;
  for (int s = 0; s < seeds; ++s) seed_list.push_back(5 + s);

  exp::Grid grid;
  grid.WithBase(base)
      .OverMethods({core::ScheduleMethod::kRoundRobin,
                    core::ScheduleMethod::kSweep, core::ScheduleMethod::kGss})
      .OverTLogs(t_logs)
      .WithSeeds(seed_list);

  const ObsSession obs_session(opt, grid.size());
  const exp::Runner runner({.threads = opt.threads, .progress = opt.progress});
  const std::vector<exp::RunResult> results =
      runner.RunWithSpecs(grid, obs_session.MakeRunFn());
  const auto k_rows = exp::AggregateReplications(
      results, seeds,
      [](const exp::RunResult& r) { return r.metrics.estimated_k.mean(); });
  const auto p_rows = exp::AggregateReplications(
      results, seeds,
      [](const exp::RunResult& r) { return r.metrics.SuccessProbability(); });

  std::vector<std::string> columns = {"method", "tlog_min", "avg_estimated_k",
                                      "success_probability"};
  if (seeds > 1) {
    columns.insert(columns.end(), {"k_stddev", "success_ci95"});
  }
  exp::Table table(columns);
  for (std::size_t i = 0; i < k_rows.size(); ++i) {
    const DayRunConfig& cfg = k_rows[i].spec.config;
    std::vector<std::string> row = {
        std::string(core::ScheduleMethodName(cfg.method)),
        Fmt("%.0f", ToMinutes(cfg.t_log)), Fmt("%.3f", k_rows[i].summary.mean),
        Fmt("%.4f", p_rows[i].summary.mean)};
    if (seeds > 1) {
      row.push_back(Fmt("%.4f", k_rows[i].summary.stddev));
      row.push_back(Fmt("%.4f", p_rows[i].summary.ci95_half));
    }
    table.AddRow(std::move(row));
  }
  if (!opt.json) std::printf("# Fig. 7: estimation vs T_log (alpha=1)\n");
  table.Write(stdout, opt.json);
  obs_session.Finish(results);
  return 0;
}
