// Fig. 7 — (a) the average number of estimated additional requests and
// (b) the successful estimation probability, as functions of T_log (α = 1),
// for the three scheduling methods.
//
// Paper reference points: success probability exceeds 99% from T_log =
// 40 min (Round-Robin) / 20 min (Sweep*, GSS*); the average estimate grows
// with T_log.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/units.h"

using namespace vod;         // NOLINT(build/namespaces)
using namespace vod::bench;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::Parse(argc, argv);
  const std::vector<double> tlog_minutes =
      opt.full ? std::vector<double>{5, 10, 20, 30, 40, 50, 60}
               : std::vector<double>{10, 20, 40, 60};
  const Seconds duration = opt.full ? Hours(24) : Hours(8);
  const double arrivals = opt.full ? 1200 : 400;

  std::printf("# Fig. 7: estimation vs T_log (alpha=1)\n");
  PrintCsvHeader("method,tlog_min,avg_estimated_k,success_probability");
  for (core::ScheduleMethod method :
       {core::ScheduleMethod::kRoundRobin, core::ScheduleMethod::kSweep,
        core::ScheduleMethod::kGss}) {
    for (double tl : tlog_minutes) {
      DayRunConfig cfg;
      cfg.method = method;
      cfg.scheme = sim::AllocScheme::kDynamic;
      cfg.t_log = Minutes(tl);
      cfg.duration = duration;
      cfg.total_arrivals = arrivals;
      cfg.theta = 0.0;
      cfg.seed = 5;
      const sim::SimMetrics m = RunDay(cfg);
      std::printf("%s,%.0f,%.3f,%.4f\n",
                  core::ScheduleMethodName(method).data(), tl,
                  m.estimated_k.mean(), m.SuccessProbability());
    }
  }
  return 0;
}
