// Fig. 9 — buffer size vs the number of requests in service, static vs
// dynamic allocation, for each scheduling method (three panels). Also
// prints Table 3 (the disk specification) with --spec.
//
// Paper reference: static lines are flat (BS(N)); dynamic curves start near
// zero and join them at n = N = 79. The per-method DL instantiation is
// Table 2.

#include <cstdio>
#include <cstring>

#include "bench/bench_common.h"
#include "common/units.h"
#include "disk/disk_profile.h"
#include "vod/analysis.h"

using namespace vod;         // NOLINT(build/namespaces)
using namespace vod::bench;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--spec") == 0) {
      const disk::DiskProfile p = disk::SeagateBarracuda9LP();
      std::printf("# Table 3: %s\n", p.name.c_str());
      std::printf("capacity_gb,%.2f\n", ToGibibytes(p.capacity));
      std::printf("transfer_rate_mbps,%.0f\n", ToMbps(p.transfer_rate));
      std::printf("rpm,%.0f\n", p.rpm);
      std::printf("max_rotational_latency_ms,%.2f\n",
                  ToMilliseconds(p.max_rotational_latency));
      std::printf("max_seek_ms,%.2f\n", ToMilliseconds(p.MaxSeekTime()));
      std::printf("cylinders,%ld\n", p.cylinders);
      std::printf("N,%d\n",
                  core::MaxConcurrentRequests(p.transfer_rate, Mbps(1.5)));
      return 0;
    }
  }

  std::printf("# Fig. 9: buffer size (Mbit) vs n, per method\n");
  PrintCsvHeader("method,n,static_mbit,dynamic_mbit");
  for (core::ScheduleMethod method :
       {core::ScheduleMethod::kRoundRobin, core::ScheduleMethod::kSweep,
        core::ScheduleMethod::kGss}) {
    AnalysisConfig cfg;
    cfg.method = method;
    cfg.k = PaperK(method);
    auto curve = BufferSizeCurve(cfg);
    if (!curve.ok()) {
      std::fprintf(stderr, "%s\n", curve.status().ToString().c_str());
      return 1;
    }
    for (const auto& pt : *curve) {
      std::printf("%s,%d,%.4f,%.4f\n",
                  core::ScheduleMethodName(method).data(), pt.n,
                  ToMegabits(Bits(pt.stat)), ToMegabits(Bits(pt.dynamic)));
    }
  }
  return 0;
}
