// Table 4 — the average reduction ratio of the average initial latency for
// the dynamic scheme over the static one, per scheduling method and Zipf
// parameter θ. The ratio is averaged over the per-n latency ratios
// (static/dynamic) across in-service counts, exactly as the paper averages
// Fig. 11 over n.
//
// Paper reference: ~1/11 (Round-Robin), ~1/19.5–19.7 (Sweep*),
// ~1/28–29.4 (GSS*). Shapes (ordering and magnitudes across methods) are
// the reproduction target; absolute values depend on workload calibration.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/stats.h"
#include "common/units.h"

using namespace vod;         // NOLINT(build/namespaces)
using namespace vod::bench;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::Parse(argc, argv);
  const int seeds = opt.seeds > 0 ? opt.seeds : (opt.full ? 5 : 2);
  const Seconds duration = opt.full ? Hours(24) : Hours(8);
  const double arrivals = opt.full ? 1200 : 400;

  std::printf("# Table 4: average reduction ratio of initial latency "
              "(static/dynamic, averaged over n)\n");
  PrintCsvHeader("theta,method,avg_reduction_ratio");
  for (double theta : {0.0, 0.5, 1.0}) {
    for (core::ScheduleMethod method :
         {core::ScheduleMethod::kRoundRobin, core::ScheduleMethod::kSweep,
          core::ScheduleMethod::kGss}) {
      // Per-n mean latency for each scheme, pooled across seeds.
      std::vector<RunningStats> il[2];
      il[0].resize(80);
      il[1].resize(80);
      for (int scheme = 0; scheme < 2; ++scheme) {
        for (int seed = 1; seed <= seeds; ++seed) {
          DayRunConfig cfg;
          cfg.method = method;
          cfg.scheme = scheme == 0 ? sim::AllocScheme::kStatic
                                   : sim::AllocScheme::kDynamic;
          cfg.t_log = PaperTLog(method);
          cfg.duration = duration;
          cfg.total_arrivals = arrivals;
          cfg.theta = theta;
          cfg.seed = static_cast<std::uint64_t>(seed);
          const sim::SimMetrics m = RunDay(cfg);
          for (std::size_t n = 1;
               n < m.initial_latency_by_n.size() && n < 80; ++n) {
            if (m.initial_latency_by_n[n].count() > 0) {
              il[scheme][n].Add(m.initial_latency_by_n[n].mean());
            }
          }
        }
      }
      RunningStats ratio;
      for (std::size_t n = 1; n < 80; ++n) {
        if (il[0][n].count() > 0 && il[1][n].count() > 0 &&
            il[1][n].mean() > 0) {
          ratio.Add(il[0][n].mean() / il[1][n].mean());
        }
      }
      std::printf("%.1f,%s,%.2f\n", theta,
                  core::ScheduleMethodName(method).data(), ratio.mean());
      std::fflush(stdout);
    }
  }
  return 0;
}
