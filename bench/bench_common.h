#ifndef VODB_BENCH_BENCH_COMMON_H_
#define VODB_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/units.h"
#include "core/params.h"
#include "exp/day_run.h"
#include "exp/runner.h"
#include "obs/event_tracer.h"
#include "obs/postmortem.h"
#include "obs/timeseries_recorder.h"
#include "sim/vod_simulator.h"
#include "sim/workload.h"

namespace vod::bench {

/// Shared command-line handling for the figure/table harnesses.
/// Every harness accepts:
///   --full          paper-scale sweep (24 h days, 5 seeds, full grids)
///   --seeds=K       override the seed count
///   --threads=N     worker threads for the experiment runner
///                   (default hardware_concurrency; 1 = serial legacy path)
///   --json          emit JSON instead of CSV (runner-based harnesses)
///   --trace=FILE    write a structured event trace of every run (.jsonl =
///                   line-delimited records; anything else = Chrome
///                   trace-event JSON loadable in Perfetto). Needs a tree
///                   built with -DVODB_TRACE=ON to carry events.
///   --metrics=FILE  write a JSON metrics dump: per-run log (seed + grid
///                   coordinates + headline metrics), the accumulated
///                   counter/histogram registry, and the profiling table
///   --progress      live stderr progress line (completed/total, runs/s, ETA)
///   --faults=SPEC   fault-injection schedule for every run (grammar in
///                   fault/fault_spec.h, e.g.
///                   "eio:start=3600,end=7200,p=0.2,retries=3"); "none"
///                   builds an inactive injector, unset skips it entirely
///   --fault-seed=S  injector RNG seed (default derives from spec + run
///                   seed; either way fully deterministic)
///   --spans         add per-stream lifecycle span tracks (admission_wait /
///                   service / degraded / retry_burst) to the --trace file;
///                   requires --trace
///   --timeseries=FILE  write a sim-time telemetry CSV (broker reservation,
///                   buffered bits, queue depth, active/degraded streams,
///                   disk busy fraction, one row per 60 s sim-time bucket);
///                   scripts/plot_timeseries.py renders it
///   --postmortem-dir=DIR  arm a per-run postmortem black box writing
///                   postmortem_<run>_<reason>.json dumps into DIR on
///                   invariant violations / fault-layer hiccups (with
///                   --faults, the first hiccup triggers a dump)
/// Default configurations are scaled to finish in seconds-to-a-minute.
/// All observability flags are pure observers: the stdout CSV/JSON is
/// byte-identical with or without them. --faults is NOT an observer — it is
/// the one flag meant to change results (though "none" and unset are
/// bit-identical to each other).
struct BenchOptions {
  bool full = false;
  int seeds = 0;    ///< 0 = per-bench default.
  int threads = 0;  ///< 0 = hardware_concurrency.
  bool json = false;
  std::string trace;    ///< Empty = no trace file.
  std::string metrics;  ///< Empty = no metrics dump.
  bool progress = false;
  std::string faults;   ///< Empty = no injector.
  std::uint64_t fault_seed = 0;  ///< 0 = derived.
  bool spans = false;        ///< Span tracks in the --trace file.
  std::string timeseries;    ///< Empty = no telemetry CSV.
  std::string postmortem_dir;  ///< Empty = no black box.

  /// Strict parse: rejects unknown options and malformed values
  /// (non-numeric or out-of-range --seeds/--threads/--fault-seed, empty
  /// --trace=/--metrics=/--timeseries=/--postmortem-dir= paths, --spans
  /// without --trace) instead of silently ignoring them.
  static Result<BenchOptions> TryParse(int argc, char** argv);

  /// TryParse that prints the error + usage and exits(2) on failure — the
  /// harness main() entry point.
  static BenchOptions Parse(int argc, char** argv);

  /// Copies the fault options into a grid base config.
  void ApplyFaultsTo(exp::DayRunConfig* cfg) const;
};

/// The day-run unit and the paper's per-method constants now live in the
/// exp library (src/exp/day_run.h) so the parallel runner and the tests can
/// use them without linking bench code; aliased here for the harnesses.
using exp::DayRunConfig;
using exp::PaperK;
using exp::PaperTLog;
using exp::RunDay;

/// Short run label for trace tracks: "rr/dynamic/t40/a1/r0", with a
/// "/f<index>" segment appended when the run sits on a fault axis.
std::string SpecLabel(const exp::RunSpec& spec);

/// Writes the --metrics JSON artifact: {"runs": [...], "registry": {...},
/// "profile": [...]}. Publishes every result's SimMetrics into the global
/// registry first, and prints the profiling table to stderr. `postmortems`
/// (grid index -> dump paths) adds per-run postmortem pointers to the log.
void WriteMetricsArtifacts(
    const std::string& path, const std::vector<exp::RunResult>& results,
    const std::map<std::size_t, std::vector<std::string>>& postmortems = {});

/// Observability wiring shared by the runner-based harnesses: one
/// EventTracer per run when --trace, --spans, or --postmortem-dir is set
/// (the tracer is single-producer, so parallel sweeps need per-run
/// instances — and the postmortem black box dumps the ring tail), one
/// TimeseriesRecorder per run when --timeseries is set, one PostmortemSink
/// per run when --postmortem-dir is set, a spec-aware RunDay wrapper that
/// attaches them, and artifact writing after the sweep.
class ObsSession {
 public:
  ObsSession(const BenchOptions& opt, std::size_t total_runs);

  /// RunDay wrapper for Runner::RunWithSpecs that attaches this session's
  /// observers for the run's grid index.
  exp::Runner::RunSpecFn MakeRunFn() const;

  /// Writes the --trace / --timeseries / --metrics artifacts (no-ops for
  /// unset flags) and reports any postmortem dumps on stderr.
  void Finish(const std::vector<exp::RunResult>& results) const;

  /// Dump files written so far, keyed by grid index (for RunLogJson).
  std::map<std::size_t, std::vector<std::string>> PostmortemPaths() const;

 private:
  std::string trace_path_;
  std::string metrics_path_;
  std::string timeseries_path_;
  bool spans_ = false;
  std::vector<std::unique_ptr<obs::EventTracer>> tracers_;
  std::vector<std::unique_ptr<obs::TimeseriesRecorder>> recorders_;
  std::vector<std::unique_ptr<obs::PostmortemSink>> sinks_;
};

/// Prints a CSV header + rows helper.
void PrintCsvHeader(const std::string& columns);

}  // namespace vod::bench

#endif  // VODB_BENCH_BENCH_COMMON_H_
