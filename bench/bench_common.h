#ifndef VODB_BENCH_BENCH_COMMON_H_
#define VODB_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "common/units.h"
#include "core/params.h"
#include "exp/day_run.h"
#include "sim/vod_simulator.h"
#include "sim/workload.h"

namespace vod::bench {

/// Shared command-line handling for the figure/table harnesses.
/// Every harness accepts:
///   --full       paper-scale sweep (24 h days, 5 seeds, full grids)
///   --seeds=K    override the seed count
///   --threads=N  worker threads for the experiment runner
///                (default hardware_concurrency; 1 = serial legacy path)
///   --json       emit JSON instead of CSV (runner-based harnesses)
/// Default configurations are scaled to finish in seconds-to-a-minute.
struct BenchOptions {
  bool full = false;
  int seeds = 0;    ///< 0 = per-bench default.
  int threads = 0;  ///< 0 = hardware_concurrency.
  bool json = false;

  static BenchOptions Parse(int argc, char** argv);
};

/// The day-run unit and the paper's per-method constants now live in the
/// exp library (src/exp/day_run.h) so the parallel runner and the tests can
/// use them without linking bench code; aliased here for the harnesses.
using exp::DayRunConfig;
using exp::PaperK;
using exp::PaperTLog;
using exp::RunDay;

/// Prints a CSV header + rows helper.
void PrintCsvHeader(const std::string& columns);

}  // namespace vod::bench

#endif  // VODB_BENCH_BENCH_COMMON_H_
