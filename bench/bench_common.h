#ifndef VODB_BENCH_BENCH_COMMON_H_
#define VODB_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "common/units.h"
#include "core/params.h"
#include "sim/vod_simulator.h"
#include "sim/workload.h"

namespace vod::bench {

/// Shared command-line handling for the figure/table harnesses.
/// Every harness accepts:
///   --full    paper-scale sweep (24 h days, 5 seeds, full grids)
///   --seeds=K override the seed count
/// Default configurations are scaled to finish in seconds-to-a-minute.
struct BenchOptions {
  bool full = false;
  int seeds = 0;  ///< 0 = per-bench default.

  static BenchOptions Parse(int argc, char** argv);
};

/// The paper's per-method T_log choices (Sec. 5.1): 40 min for Round-Robin,
/// 20 min for Sweep*/GSS*.
Seconds PaperTLog(core::ScheduleMethod method);

/// The paper's per-method worst-average k (fn. 9): 4 for Round-Robin,
/// 3 for Sweep*/GSS*.
int PaperK(core::ScheduleMethod method);

/// Runs one single-disk simulated day and returns the finalized metrics.
struct DayRunConfig {
  core::ScheduleMethod method = core::ScheduleMethod::kRoundRobin;
  sim::AllocScheme scheme = sim::AllocScheme::kDynamic;
  Seconds t_log = Minutes(40);
  int alpha = 1;
  double theta = 0.5;
  Seconds duration = Hours(24);
  double total_arrivals = 1200;
  std::uint64_t seed = 1;
};
sim::SimMetrics RunDay(const DayRunConfig& cfg);

/// Prints a CSV header + rows helper.
void PrintCsvHeader(const std::string& columns);

}  // namespace vod::bench

#endif  // VODB_BENCH_BENCH_COMMON_H_
