// Table 5 — the average improvement ratio of the number of concurrent user
// requests for the dynamic scheme over the static one, per disk-load Zipf
// θ, averaged over memory sizes.
//
// Paper reference: 2.36 (θ=0.0), 2.78 (θ=0.5), 3.25 (θ=1.0). This harness
// derives the ratios from the *analysis* capacity curve (fast, exact); run
// bench/fig14_capacity_sim for the simulated counterpart.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/units.h"
#include "vod/analysis.h"

using namespace vod;         // NOLINT(build/namespaces)
using namespace vod::bench;  // NOLINT(build/namespaces)

int main() {
  std::vector<Bits> memories;
  for (double gb = 1.0; gb <= 11.0; gb += 1.0) {
    memories.push_back(Gibibytes(gb));
  }

  std::printf("# Table 5: average improvement ratio of concurrent requests "
              "(dynamic/static, averaged over 1-11 GB)\n");
  PrintCsvHeader("theta,avg_improvement_ratio");
  for (double theta : {0.0, 0.5, 1.0}) {
    AnalysisConfig cfg;
    cfg.method = core::ScheduleMethod::kRoundRobin;
    cfg.k = PaperK(cfg.method);
    auto curve = CapacityVsMemoryCurve(cfg, 10, theta, memories);
    if (!curve.ok()) {
      std::fprintf(stderr, "%s\n", curve.status().ToString().c_str());
      return 1;
    }
    double ratio_sum = 0;
    int count = 0;
    for (const auto& pt : *curve) {
      if (pt.stat > 0) {
        ratio_sum += static_cast<double>(pt.dynamic) / pt.stat;
        ++count;
      }
    }
    std::printf("%.1f,%.2f\n", theta, count ? ratio_sum / count : 0.0);
  }
  return 0;
}
