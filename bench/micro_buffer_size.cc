// Microbenchmark (google-benchmark): the cost of computing BS_k(n) three
// ways — direct recurrence, Theorem 1 closed form, and the precomputed
// O(N²) table (Sec. 3.3's recommendation). Demonstrates why the paper
// precomputes: a table lookup is orders of magnitude cheaper than either
// on-line evaluation, which matters because the server sizes a buffer on
// every service.

#include <benchmark/benchmark.h>

#include "common/units.h"
#include "core/buffer_size_table.h"
#include "core/closed_form.h"
#include "core/params.h"
#include "core/recurrence.h"
#include "disk/disk_profile.h"

namespace {

vod::core::AllocParams PaperParams() {
  auto p = vod::core::MakeAllocParams(vod::disk::SeagateBarracuda9LP(),
                                      vod::Mbps(1.5),
                                      vod::core::ScheduleMethod::kRoundRobin,
                                      0, 1);
  return p.value();
}

void BM_Recurrence(benchmark::State& state) {
  const vod::core::AllocParams p = PaperParams();
  int n = 1;
  for (auto _ : state) {
    auto bs = vod::core::BufferSizeByRecurrence(p, n, 3);
    benchmark::DoNotOptimize(bs);
    n = n % (p.n_max - 1) + 1;
  }
}
BENCHMARK(BM_Recurrence);

void BM_ClosedForm(benchmark::State& state) {
  const vod::core::AllocParams p = PaperParams();
  int n = 1;
  for (auto _ : state) {
    auto bs = vod::core::DynamicBufferSize(p, n, 3);
    benchmark::DoNotOptimize(bs);
    n = n % (p.n_max - 1) + 1;
  }
}
BENCHMARK(BM_ClosedForm);

void BM_TableLookup(benchmark::State& state) {
  const vod::core::AllocParams p = PaperParams();
  auto table = vod::core::BufferSizeTable::Build(p);
  int n = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table->GetUnchecked(n, 3));
    n = n % (p.n_max - 1) + 1;
  }
}
BENCHMARK(BM_TableLookup);

void BM_TableBuild(benchmark::State& state) {
  const vod::core::AllocParams p = PaperParams();
  for (auto _ : state) {
    auto table = vod::core::BufferSizeTable::Build(p);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_TableBuild);

}  // namespace

BENCHMARK_MAIN();
