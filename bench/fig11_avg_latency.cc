// Fig. 11 — average initial latency vs the number of requests in service,
// measured by simulation, static vs dynamic, per scheduling method.
//
// Runs on the parallel experiment runner (src/exp): the method × scheme ×
// seed grid (2 × 3 × K day-long simulations) fans out across --threads
// workers. Results come back in grid order, and the per-bucket aggregation
// below consumes them in that order, so the CSV is byte-identical at any
// thread count — and identical to the legacy serial harness.
//
// Latencies are bucketed by the in-service count at each request's
// admission and averaged across seeds (paper: 5 seeds). Buckets are coarsed
// to groups of 8 so every row has samples.
//
// Paper reference (Fig. 11 / Table 4): dynamic is below static at every n;
// the per-n reduction ratio averages ~1/11 (RR), ~1/20 (Sweep*),
// ~1/28 (GSS*).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/stats.h"
#include "common/units.h"
#include "exp/grid.h"
#include "exp/runner.h"

using namespace vod;         // NOLINT(build/namespaces)
using namespace vod::bench;  // NOLINT(build/namespaces)

namespace {

std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::Parse(argc, argv);
  const int seeds = opt.seeds > 0 ? opt.seeds : (opt.full ? 5 : 2);
  constexpr int kBucket = 8;

  DayRunConfig base;
  base.duration = opt.full ? Hours(24) : Hours(8);
  base.total_arrivals = opt.full ? 1200 : 400;
  base.theta = 0.5;
  opt.ApplyFaultsTo(&base);

  std::vector<std::uint64_t> seed_list;
  for (int s = 1; s <= seeds; ++s) {
    seed_list.push_back(static_cast<std::uint64_t>(s));
  }

  const std::vector<core::ScheduleMethod> methods = {
      core::ScheduleMethod::kRoundRobin, core::ScheduleMethod::kSweep,
      core::ScheduleMethod::kGss};
  exp::Grid grid;
  grid.WithBase(base)
      .OverMethods(methods)
      .OverSchemes({sim::AllocScheme::kStatic, sim::AllocScheme::kDynamic})
      .UsePaperTLog()
      .WithSeeds(seed_list);

  const ObsSession obs_session(opt, grid.size());
  const exp::Runner runner({.threads = opt.threads, .progress = opt.progress});
  const std::vector<exp::RunResult> results =
      runner.RunWithSpecs(grid, obs_session.MakeRunFn());

  exp::Table table({"method", "n_bucket", "static_s", "dynamic_s", "samples"});
  // Per method, the grid's slice is scheme-major / seed-minor — the same
  // order the legacy serial loops accumulated buckets in.
  const std::size_t per_method = 2 * static_cast<std::size_t>(seeds);
  for (std::size_t mi = 0; mi < methods.size(); ++mi) {
    // il[scheme][bucket]
    std::vector<RunningStats> il[2];
    il[0].resize(80 / kBucket + 1);
    il[1].resize(80 / kBucket + 1);
    for (std::size_t j = 0; j < per_method; ++j) {
      const exp::RunResult& r = results[mi * per_method + j];
      const int scheme = r.spec.scheme_index;
      const sim::SimMetrics& m = r.metrics;
      for (std::size_t n = 1; n < m.initial_latency_by_n.size(); ++n) {
        const RunningStats& s = m.initial_latency_by_n[n];
        if (s.count() > 0) {
          for (std::size_t c = 0; c < s.count(); ++c) {
            il[scheme][n / kBucket].Add(s.mean());
          }
        }
      }
    }
    for (std::size_t b = 0; b < il[0].size(); ++b) {
      if (il[0][b].count() == 0 || il[1][b].count() == 0) continue;
      table.AddRow({std::string(core::ScheduleMethodName(methods[mi])),
                    std::to_string(b * kBucket) + "-" +
                        std::to_string(b * kBucket + kBucket - 1),
                    Fmt("%.4f", il[0][b].mean()), Fmt("%.4f", il[1][b].mean()),
                    std::to_string(il[0][b].count() + il[1][b].count())});
    }
  }
  if (!opt.json) {
    std::printf("# Fig. 11: average initial latency (s) vs n (simulation, %d "
                "seeds)\n", seeds);
  }
  table.Write(stdout, opt.json);
  obs_session.Finish(results);
  return 0;
}
