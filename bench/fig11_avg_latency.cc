// Fig. 11 — average initial latency vs the number of requests in service,
// measured by simulation, static vs dynamic, per scheduling method.
//
// Latencies are bucketed by the in-service count at each request's
// admission and averaged across seeds (paper: 5 seeds). Buckets are coarsed
// to groups of 8 so every row has samples.
//
// Paper reference (Fig. 11 / Table 4): dynamic is below static at every n;
// the per-n reduction ratio averages ~1/11 (RR), ~1/20 (Sweep*),
// ~1/28 (GSS*).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/stats.h"
#include "common/units.h"

using namespace vod;         // NOLINT(build/namespaces)
using namespace vod::bench;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::Parse(argc, argv);
  const int seeds = opt.seeds > 0 ? opt.seeds : (opt.full ? 5 : 2);
  const Seconds duration = opt.full ? Hours(24) : Hours(8);
  const double arrivals = opt.full ? 1200 : 400;
  constexpr int kBucket = 8;

  std::printf("# Fig. 11: average initial latency (s) vs n (simulation, %d "
              "seeds)\n", seeds);
  PrintCsvHeader("method,n_bucket,static_s,dynamic_s,samples");
  for (core::ScheduleMethod method :
       {core::ScheduleMethod::kRoundRobin, core::ScheduleMethod::kSweep,
        core::ScheduleMethod::kGss}) {
    // il[scheme][bucket]
    std::vector<RunningStats> il[2];
    il[0].resize(80 / kBucket + 1);
    il[1].resize(80 / kBucket + 1);
    for (int scheme = 0; scheme < 2; ++scheme) {
      for (int seed = 1; seed <= seeds; ++seed) {
        DayRunConfig cfg;
        cfg.method = method;
        cfg.scheme = scheme == 0 ? sim::AllocScheme::kStatic
                                 : sim::AllocScheme::kDynamic;
        cfg.t_log = PaperTLog(method);
        cfg.duration = duration;
        cfg.total_arrivals = arrivals;
        cfg.theta = 0.5;
        cfg.seed = static_cast<std::uint64_t>(seed);
        const sim::SimMetrics m = RunDay(cfg);
        for (std::size_t n = 1; n < m.initial_latency_by_n.size(); ++n) {
          const RunningStats& s = m.initial_latency_by_n[n];
          if (s.count() > 0) {
            for (std::size_t c = 0; c < s.count(); ++c) {
              il[scheme][n / kBucket].Add(s.mean());
            }
          }
        }
      }
    }
    for (std::size_t b = 0; b < il[0].size(); ++b) {
      if (il[0][b].count() == 0 || il[1][b].count() == 0) continue;
      std::printf("%s,%zu-%zu,%.4f,%.4f,%zu\n",
                  core::ScheduleMethodName(method).data(), b * kBucket,
                  b * kBucket + kBucket - 1, il[0][b].mean(),
                  il[1][b].mean(), il[0][b].count() + il[1][b].count());
    }
  }
  return 0;
}
