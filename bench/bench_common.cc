#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "bench_kit/json.h"
#include "bench_kit/report.h"
#include "obs/metrics_registry.h"
#include "obs/profile.h"
#include "obs/trace_export.h"
#include "sim/metrics.h"

namespace vod::bench {

namespace {

/// Whole-string strictly-positive-int parse; rejects "", "12x", "-3".
Result<int> ParseCount(const char* flag, const char* text, int lo, int hi) {
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || v < lo || v > hi) {
    return Status::InvalidArgument(std::string(flag) + " wants an integer in [" +
                                   std::to_string(lo) + ", " +
                                   std::to_string(hi) + "], got \"" + text +
                                   "\"");
  }
  return static_cast<int>(v);
}

}  // namespace

Result<BenchOptions> BenchOptions::TryParse(int argc, char** argv) {
  BenchOptions opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      opt.full = true;
    } else if (std::strncmp(argv[i], "--seeds=", 8) == 0) {
      auto v = ParseCount("--seeds", argv[i] + 8, 1, 10000);
      if (!v.ok()) return v.status();
      opt.seeds = v.value();
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      auto v = ParseCount("--threads", argv[i] + 10, 1, 4096);
      if (!v.ok()) return v.status();
      opt.threads = v.value();
    } else if (std::strcmp(argv[i], "--json") == 0) {
      opt.json = true;
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      opt.trace = argv[i] + 8;
      if (opt.trace.empty()) {
        return Status::InvalidArgument("--trace= wants a file path");
      }
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      opt.trace = "trace.json";
    } else if (std::strncmp(argv[i], "--metrics=", 10) == 0) {
      opt.metrics = argv[i] + 10;
      if (opt.metrics.empty()) {
        return Status::InvalidArgument("--metrics= wants a file path");
      }
    } else if (std::strcmp(argv[i], "--progress") == 0) {
      opt.progress = true;
    } else if (std::strncmp(argv[i], "--faults=", 9) == 0) {
      // Spec-grammar validation happens where the injector is built
      // (fault/fault_spec.h); here only the flag shape is checked.
      opt.faults = argv[i] + 9;
      if (opt.faults.empty()) {
        return Status::InvalidArgument(
            "--faults= wants a spec (or \"none\")");
      }
    } else if (std::strncmp(argv[i], "--fault-seed=", 13) == 0) {
      const char* text = argv[i] + 13;
      char* end = nullptr;
      const unsigned long long v = std::strtoull(text, &end, 10);
      if (end == text || *end != '\0' || std::strchr(text, '-') != nullptr) {
        return Status::InvalidArgument(
            std::string("--fault-seed wants an unsigned integer, got \"") +
            text + "\"");
      }
      opt.fault_seed = v;
    } else if (std::strcmp(argv[i], "--spans") == 0) {
      opt.spans = true;
    } else if (std::strncmp(argv[i], "--timeseries=", 13) == 0) {
      opt.timeseries = argv[i] + 13;
      if (opt.timeseries.empty()) {
        return Status::InvalidArgument("--timeseries= wants a file path");
      }
    } else if (std::strncmp(argv[i], "--postmortem-dir=", 17) == 0) {
      opt.postmortem_dir = argv[i] + 17;
      if (opt.postmortem_dir.empty()) {
        return Status::InvalidArgument(
            "--postmortem-dir= wants a directory path");
      }
    } else {
      return Status::InvalidArgument(std::string("unknown option \"") +
                                     argv[i] + "\"");
    }
  }
  // Spans render inside the trace file; without one they would vanish
  // silently — reject instead (flags may appear in either order, so this
  // check must run after the loop).
  if (opt.spans && opt.trace.empty()) {
    return Status::InvalidArgument("--spans needs --trace[=FILE]");
  }
  return opt;
}

BenchOptions BenchOptions::Parse(int argc, char** argv) {
  auto opt = TryParse(argc, argv);
  if (!opt.ok()) {
    std::fprintf(stderr,
                 "%s: %s\n"
                 "usage: [--full] [--seeds=K] [--threads=N] [--json]\n"
                 "       [--trace[=FILE]] [--spans] [--metrics=FILE]\n"
                 "       [--timeseries=FILE] [--postmortem-dir=DIR]\n"
                 "       [--progress] [--faults=SPEC] [--fault-seed=S]\n",
                 argc > 0 ? argv[0] : "bench",
                 opt.status().ToString().c_str());
    std::exit(2);
  }
  return opt.value();
}

void BenchOptions::ApplyFaultsTo(exp::DayRunConfig* cfg) const {
  cfg->faults = faults;
  cfg->fault_seed = fault_seed;
}

std::string SpecLabel(const exp::RunSpec& spec) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s/%s/t%.0f/a%d/r%d",
                std::string(core::ScheduleMethodName(spec.config.method))
                    .c_str(),
                std::string(sim::AllocSchemeName(spec.config.scheme)).c_str(),
                ToMinutes(spec.config.t_log), spec.config.alpha,
                spec.replication);
  std::string label = buf;
  // Only faulted runs grow a segment, keeping legacy labels stable.
  if (!spec.config.faults.empty()) {
    label += "/f" + std::to_string(spec.fault_index);
  }
  return label;
}

void WriteMetricsArtifacts(
    const std::string& path, const std::vector<exp::RunResult>& results,
    const std::map<std::size_t, std::vector<std::string>>& postmortems) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  for (const exp::RunResult& r : results) r.metrics.PublishTo(registry);

  std::string out = "{\n\"runs\": ";
  out += exp::RunLogJson(results, postmortems);
  out += ",\n\"registry\": ";
  out += registry.ToJson();
  out += ",\n\"profile\": ";
  out += obs::Profiler::Global().ToJson();
  out += "\n}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write metrics file %s\n", path.c_str());
    return;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);

  const std::string table = obs::Profiler::Global().ReportTable();
  if (!table.empty()) std::fprintf(stderr, "%s", table.c_str());
}

namespace {

/// The run configuration embedded in a postmortem dump: grid coordinates,
/// seeds, fault spec, and provenance (git SHA via bench_kit). Everything a
/// postmortem reader needs to replay the exact run that died.
bench_kit::JsonValue PostmortemConfig(const exp::RunSpec& spec) {
  using bench_kit::JsonValue;
  JsonValue cfg = JsonValue::Object();
  cfg.Set("label", JsonValue::Str(SpecLabel(spec)));
  cfg.Set("index", JsonValue::Number(static_cast<double>(spec.index)));
  cfg.Set("method", JsonValue::Str(std::string(
                        core::ScheduleMethodName(spec.config.method))));
  cfg.Set("scheme", JsonValue::Str(std::string(
                        sim::AllocSchemeName(spec.config.scheme))));
  cfg.Set("t_log_min", JsonValue::Number(ToMinutes(spec.config.t_log)));
  cfg.Set("alpha", JsonValue::Number(spec.config.alpha));
  cfg.Set("theta", JsonValue::Number(spec.config.theta));
  cfg.Set("replication", JsonValue::Number(spec.replication));
  cfg.Set("seed", JsonValue::Number(static_cast<double>(spec.config.seed)));
  cfg.Set("faults", JsonValue::Str(spec.config.faults));
  cfg.Set("fault_seed",
          JsonValue::Number(static_cast<double>(spec.config.fault_seed)));
  cfg.Set("git_sha", JsonValue::Str(bench_kit::GitSha()));
  return cfg;
}

}  // namespace

ObsSession::ObsSession(const BenchOptions& opt, std::size_t total_runs)
    : trace_path_(opt.trace),
      metrics_path_(opt.metrics),
      timeseries_path_(opt.timeseries),
      spans_(opt.spans) {
  // Tracers feed the trace file, the span derivation, *and* the postmortem
  // ring tail — any of the three wants per-run rings.
  const bool want_tracers = !trace_path_.empty() || !opt.postmortem_dir.empty();
  if (want_tracers) {
    if (!obs::kTraceHooksCompiledIn) {
      std::fprintf(stderr,
                   "warning: --trace/--postmortem-dir set but this build has "
                   "no trace hooks; reconfigure with -DVODB_TRACE=ON for "
                   "events\n");
    }
    tracers_.reserve(total_runs);
    for (std::size_t i = 0; i < total_runs; ++i) {
      tracers_.push_back(std::make_unique<obs::EventTracer>());
    }
  }
  if (!timeseries_path_.empty()) {
    recorders_.reserve(total_runs);
    for (std::size_t i = 0; i < total_runs; ++i) {
      recorders_.push_back(std::make_unique<obs::TimeseriesRecorder>());
    }
  }
  if (!opt.postmortem_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opt.postmortem_dir, ec);
    if (ec) {
      std::fprintf(stderr, "warning: cannot create --postmortem-dir %s: %s\n",
                   opt.postmortem_dir.c_str(), ec.message().c_str());
    }
    obs::PostmortemSink::Options po;
    po.dir = opt.postmortem_dir;
    // Under fault injection the first lost round is already the anomaly a
    // flight recorder exists for; fault-free runs keep thresholds disabled
    // (invariant violations still trigger).
    if (!opt.faults.empty()) po.hiccup_threshold = 1;
    sinks_.reserve(total_runs);
    for (std::size_t i = 0; i < total_runs; ++i) {
      // Per-run label: the grid index keys dump filenames, so parallel runs
      // never collide (the config JSON inside carries the human label).
      po.run_label = "run" + std::to_string(i);
      sinks_.push_back(std::make_unique<obs::PostmortemSink>(po));
    }
  }
}

exp::Runner::RunSpecFn ObsSession::MakeRunFn() const {
  return [this](const exp::RunSpec& spec) {
    exp::DayRunConfig cfg = spec.config;
    if (!tracers_.empty()) cfg.tracer = tracers_[spec.index].get();
    if (!recorders_.empty()) cfg.timeseries = recorders_[spec.index].get();
    if (!sinks_.empty()) {
      obs::PostmortemSink* sink = sinks_[spec.index].get();
      // Mutating the per-run sink here is safe: one run owns one sink, and
      // the runner never executes the same index twice.
      sink->set_config(PostmortemConfig(spec));
      cfg.postmortem = sink;
    }
    return exp::RunDay(cfg);
  };
}

std::map<std::size_t, std::vector<std::string>> ObsSession::PostmortemPaths()
    const {
  std::map<std::size_t, std::vector<std::string>> paths;
  for (std::size_t i = 0; i < sinks_.size(); ++i) {
    if (sinks_[i]->triggered()) paths[i] = sinks_[i]->paths();
  }
  return paths;
}

void ObsSession::Finish(const std::vector<exp::RunResult>& results) const {
  if (!trace_path_.empty()) {
    std::vector<obs::TraceRun> runs;
    runs.reserve(results.size());
    for (const exp::RunResult& r : results) {
      obs::TraceRun tr;
      tr.label = SpecLabel(r.spec);
      tr.pid = static_cast<int>(r.spec.index);
      tr.events = tracers_[r.spec.index]->Snapshot();
      runs.push_back(std::move(tr));
    }
    obs::TraceExportOptions topt;
    topt.spans = spans_;
    const Status st = obs::WriteTraceFile(trace_path_, runs, topt);
    if (!st.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n", st.ToString().c_str());
    }
  }
  if (!timeseries_path_.empty()) {
    std::vector<obs::TimeseriesRun> runs;
    runs.reserve(results.size());
    for (const exp::RunResult& r : results) {
      obs::TimeseriesRun tr;
      tr.label = SpecLabel(r.spec);
      tr.run = static_cast<int>(r.spec.index);
      tr.recorder = recorders_[r.spec.index].get();
      runs.push_back(std::move(tr));
    }
    const Status st = obs::WriteTimeseriesCsv(timeseries_path_, runs);
    if (!st.ok()) {
      std::fprintf(stderr, "timeseries write failed: %s\n",
                   st.ToString().c_str());
    }
  }
  const auto postmortems = PostmortemPaths();
  for (const auto& [index, paths] : postmortems) {
    for (const std::string& p : paths) {
      std::fprintf(stderr, "postmortem: run %zu dumped %s\n", index,
                   p.c_str());
    }
  }
  if (!metrics_path_.empty()) {
    WriteMetricsArtifacts(metrics_path_, results, postmortems);
  }
}

void PrintCsvHeader(const std::string& columns) {
  std::printf("%s\n", columns.c_str());
}

}  // namespace vod::bench
