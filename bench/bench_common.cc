#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace vod::bench {

BenchOptions BenchOptions::Parse(int argc, char** argv) {
  BenchOptions opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      opt.full = true;
    } else if (std::strncmp(argv[i], "--seeds=", 8) == 0) {
      opt.seeds = std::atoi(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      opt.threads = std::atoi(argv[i] + 10);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      opt.json = true;
    }
  }
  return opt;
}

void PrintCsvHeader(const std::string& columns) {
  std::printf("%s\n", columns.c_str());
}

}  // namespace vod::bench
