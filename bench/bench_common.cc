#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/metrics_registry.h"
#include "obs/profile.h"
#include "obs/trace_export.h"
#include "sim/metrics.h"

namespace vod::bench {

namespace {

/// Whole-string strictly-positive-int parse; rejects "", "12x", "-3".
Result<int> ParseCount(const char* flag, const char* text, int lo, int hi) {
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || v < lo || v > hi) {
    return Status::InvalidArgument(std::string(flag) + " wants an integer in [" +
                                   std::to_string(lo) + ", " +
                                   std::to_string(hi) + "], got \"" + text +
                                   "\"");
  }
  return static_cast<int>(v);
}

}  // namespace

Result<BenchOptions> BenchOptions::TryParse(int argc, char** argv) {
  BenchOptions opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      opt.full = true;
    } else if (std::strncmp(argv[i], "--seeds=", 8) == 0) {
      auto v = ParseCount("--seeds", argv[i] + 8, 1, 10000);
      if (!v.ok()) return v.status();
      opt.seeds = v.value();
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      auto v = ParseCount("--threads", argv[i] + 10, 1, 4096);
      if (!v.ok()) return v.status();
      opt.threads = v.value();
    } else if (std::strcmp(argv[i], "--json") == 0) {
      opt.json = true;
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      opt.trace = argv[i] + 8;
      if (opt.trace.empty()) {
        return Status::InvalidArgument("--trace= wants a file path");
      }
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      opt.trace = "trace.json";
    } else if (std::strncmp(argv[i], "--metrics=", 10) == 0) {
      opt.metrics = argv[i] + 10;
      if (opt.metrics.empty()) {
        return Status::InvalidArgument("--metrics= wants a file path");
      }
    } else if (std::strcmp(argv[i], "--progress") == 0) {
      opt.progress = true;
    } else if (std::strncmp(argv[i], "--faults=", 9) == 0) {
      // Spec-grammar validation happens where the injector is built
      // (fault/fault_spec.h); here only the flag shape is checked.
      opt.faults = argv[i] + 9;
      if (opt.faults.empty()) {
        return Status::InvalidArgument(
            "--faults= wants a spec (or \"none\")");
      }
    } else if (std::strncmp(argv[i], "--fault-seed=", 13) == 0) {
      const char* text = argv[i] + 13;
      char* end = nullptr;
      const unsigned long long v = std::strtoull(text, &end, 10);
      if (end == text || *end != '\0' || std::strchr(text, '-') != nullptr) {
        return Status::InvalidArgument(
            std::string("--fault-seed wants an unsigned integer, got \"") +
            text + "\"");
      }
      opt.fault_seed = v;
    } else {
      return Status::InvalidArgument(std::string("unknown option \"") +
                                     argv[i] + "\"");
    }
  }
  return opt;
}

BenchOptions BenchOptions::Parse(int argc, char** argv) {
  auto opt = TryParse(argc, argv);
  if (!opt.ok()) {
    std::fprintf(stderr,
                 "%s: %s\n"
                 "usage: [--full] [--seeds=K] [--threads=N] [--json]\n"
                 "       [--trace[=FILE]] [--metrics=FILE] [--progress]\n"
                 "       [--faults=SPEC] [--fault-seed=S]\n",
                 argc > 0 ? argv[0] : "bench",
                 opt.status().ToString().c_str());
    std::exit(2);
  }
  return opt.value();
}

void BenchOptions::ApplyFaultsTo(exp::DayRunConfig* cfg) const {
  cfg->faults = faults;
  cfg->fault_seed = fault_seed;
}

std::string SpecLabel(const exp::RunSpec& spec) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s/%s/t%.0f/a%d/r%d",
                std::string(core::ScheduleMethodName(spec.config.method))
                    .c_str(),
                std::string(sim::AllocSchemeName(spec.config.scheme)).c_str(),
                ToMinutes(spec.config.t_log), spec.config.alpha,
                spec.replication);
  std::string label = buf;
  // Only faulted runs grow a segment, keeping legacy labels stable.
  if (!spec.config.faults.empty()) {
    label += "/f" + std::to_string(spec.fault_index);
  }
  return label;
}

void WriteMetricsArtifacts(const std::string& path,
                           const std::vector<exp::RunResult>& results) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  for (const exp::RunResult& r : results) r.metrics.PublishTo(registry);

  std::string out = "{\n\"runs\": ";
  out += exp::RunLogJson(results);
  out += ",\n\"registry\": ";
  out += registry.ToJson();
  out += ",\n\"profile\": ";
  out += obs::Profiler::Global().ToJson();
  out += "\n}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write metrics file %s\n", path.c_str());
    return;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);

  const std::string table = obs::Profiler::Global().ReportTable();
  if (!table.empty()) std::fprintf(stderr, "%s", table.c_str());
}

ObsSession::ObsSession(const BenchOptions& opt, std::size_t total_runs)
    : trace_path_(opt.trace), metrics_path_(opt.metrics) {
  if (trace_path_.empty()) return;
  if (!obs::kTraceHooksCompiledIn) {
    std::fprintf(stderr,
                 "warning: --trace set but this build has no trace hooks; "
                 "reconfigure with -DVODB_TRACE=ON for events\n");
  }
  tracers_.reserve(total_runs);
  for (std::size_t i = 0; i < total_runs; ++i) {
    tracers_.push_back(std::make_unique<obs::EventTracer>());
  }
}

exp::Runner::RunSpecFn ObsSession::MakeRunFn() const {
  return [this](const exp::RunSpec& spec) {
    exp::DayRunConfig cfg = spec.config;
    if (!tracers_.empty()) cfg.tracer = tracers_[spec.index].get();
    return exp::RunDay(cfg);
  };
}

void ObsSession::Finish(const std::vector<exp::RunResult>& results) const {
  if (!trace_path_.empty()) {
    std::vector<obs::TraceRun> runs;
    runs.reserve(results.size());
    for (const exp::RunResult& r : results) {
      obs::TraceRun tr;
      tr.label = SpecLabel(r.spec);
      tr.pid = static_cast<int>(r.spec.index);
      tr.events = tracers_[r.spec.index]->Snapshot();
      runs.push_back(std::move(tr));
    }
    const Status st = obs::WriteTraceFile(trace_path_, runs);
    if (!st.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n", st.ToString().c_str());
    }
  }
  if (!metrics_path_.empty()) WriteMetricsArtifacts(metrics_path_, results);
}

void PrintCsvHeader(const std::string& columns) {
  std::printf("%s\n", columns.c_str());
}

}  // namespace vod::bench
