#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/metrics_registry.h"
#include "obs/profile.h"
#include "obs/trace_export.h"
#include "sim/metrics.h"

namespace vod::bench {

BenchOptions BenchOptions::Parse(int argc, char** argv) {
  BenchOptions opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) {
      opt.full = true;
    } else if (std::strncmp(argv[i], "--seeds=", 8) == 0) {
      opt.seeds = std::atoi(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      opt.threads = std::atoi(argv[i] + 10);
    } else if (std::strcmp(argv[i], "--json") == 0) {
      opt.json = true;
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      opt.trace = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      opt.trace = "trace.json";
    } else if (std::strncmp(argv[i], "--metrics=", 10) == 0) {
      opt.metrics = argv[i] + 10;
    } else if (std::strcmp(argv[i], "--progress") == 0) {
      opt.progress = true;
    } else if (std::strncmp(argv[i], "--faults=", 9) == 0) {
      opt.faults = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--fault-seed=", 13) == 0) {
      opt.fault_seed = std::strtoull(argv[i] + 13, nullptr, 10);
    }
  }
  return opt;
}

void BenchOptions::ApplyFaultsTo(exp::DayRunConfig* cfg) const {
  cfg->faults = faults;
  cfg->fault_seed = fault_seed;
}

std::string SpecLabel(const exp::RunSpec& spec) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s/%s/t%.0f/a%d/r%d",
                std::string(core::ScheduleMethodName(spec.config.method))
                    .c_str(),
                std::string(sim::AllocSchemeName(spec.config.scheme)).c_str(),
                ToMinutes(spec.config.t_log), spec.config.alpha,
                spec.replication);
  std::string label = buf;
  // Only faulted runs grow a segment, keeping legacy labels stable.
  if (!spec.config.faults.empty()) {
    label += "/f" + std::to_string(spec.fault_index);
  }
  return label;
}

void WriteMetricsArtifacts(const std::string& path,
                           const std::vector<exp::RunResult>& results) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  for (const exp::RunResult& r : results) r.metrics.PublishTo(registry);

  std::string out = "{\n\"runs\": ";
  out += exp::RunLogJson(results);
  out += ",\n\"registry\": ";
  out += registry.ToJson();
  out += ",\n\"profile\": ";
  out += obs::Profiler::Global().ToJson();
  out += "\n}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write metrics file %s\n", path.c_str());
    return;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);

  const std::string table = obs::Profiler::Global().ReportTable();
  if (!table.empty()) std::fprintf(stderr, "%s", table.c_str());
}

ObsSession::ObsSession(const BenchOptions& opt, std::size_t total_runs)
    : trace_path_(opt.trace), metrics_path_(opt.metrics) {
  if (trace_path_.empty()) return;
  if (!obs::kTraceHooksCompiledIn) {
    std::fprintf(stderr,
                 "warning: --trace set but this build has no trace hooks; "
                 "reconfigure with -DVODB_TRACE=ON for events\n");
  }
  tracers_.reserve(total_runs);
  for (std::size_t i = 0; i < total_runs; ++i) {
    tracers_.push_back(std::make_unique<obs::EventTracer>());
  }
}

exp::Runner::RunSpecFn ObsSession::MakeRunFn() const {
  return [this](const exp::RunSpec& spec) {
    exp::DayRunConfig cfg = spec.config;
    if (!tracers_.empty()) cfg.tracer = tracers_[spec.index].get();
    return exp::RunDay(cfg);
  };
}

void ObsSession::Finish(const std::vector<exp::RunResult>& results) const {
  if (!trace_path_.empty()) {
    std::vector<obs::TraceRun> runs;
    runs.reserve(results.size());
    for (const exp::RunResult& r : results) {
      obs::TraceRun tr;
      tr.label = SpecLabel(r.spec);
      tr.pid = static_cast<int>(r.spec.index);
      tr.events = tracers_[r.spec.index]->Snapshot();
      runs.push_back(std::move(tr));
    }
    const Status st = obs::WriteTraceFile(trace_path_, runs);
    if (!st.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n", st.ToString().c_str());
    }
  }
  if (!metrics_path_.empty()) WriteMetricsArtifacts(metrics_path_, results);
}

void PrintCsvHeader(const std::string& columns) {
  std::printf("%s\n", columns.c_str());
}

}  // namespace vod::bench
