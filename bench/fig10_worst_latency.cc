// Fig. 10 — worst initial latency vs n (analysis), static vs dynamic, per
// scheduling method: Eqs. (2)–(4) applied to each scheme's buffer size.
//
// Paper reference: static RR flat at ~1.76 s; dynamic curves rise from
// milliseconds toward the static line at n = N.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/units.h"
#include "vod/analysis.h"

using namespace vod;         // NOLINT(build/namespaces)
using namespace vod::bench;  // NOLINT(build/namespaces)

int main() {
  std::printf("# Fig. 10: worst initial latency (s) vs n, per method\n");
  PrintCsvHeader("method,n,static_s,dynamic_s");
  for (core::ScheduleMethod method :
       {core::ScheduleMethod::kRoundRobin, core::ScheduleMethod::kSweep,
        core::ScheduleMethod::kGss}) {
    AnalysisConfig cfg;
    cfg.method = method;
    cfg.k = PaperK(method);
    auto curve = WorstLatencyCurve(cfg);
    if (!curve.ok()) {
      std::fprintf(stderr, "%s\n", curve.status().ToString().c_str());
      return 1;
    }
    for (const auto& pt : *curve) {
      std::printf("%s,%d,%.4f,%.4f\n",
                  core::ScheduleMethodName(method).data(), pt.n, pt.stat,
                  pt.dynamic);
    }
  }
  return 0;
}
