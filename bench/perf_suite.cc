// Microbenchmark suite over the simulator's hot paths (the profiler's
// VODB_PROF_SCOPE table names them): Theorem-1 buffer sizing, the O(N²)
// BS_k(n) table lookup, BubbleUp insertion, memory-broker admit/release,
// the seek-model γ(x) curve, event-queue churn, and end-to-end RunDay
// throughput for one static and one dynamic grid point.
//
// Emits the BENCH_<host>.json artifact scripts/bench_compare.py diffs
// against bench/baselines/BENCH_baseline.json (the committed perf
// trajectory anchor; regenerate with --dump-baseline from the repo root).
//
// This suite deliberately uses the in-repo src/bench_kit harness rather
// than google-benchmark (micro_buffer_size.cc keeps that dependency as a
// cross-check): the JSON schema, the noise statistics (CV), and the clock
// injection the harness tests need are all part of this repo's contract.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <queue>
#include <string>
#include <vector>

#include "bench_kit/barriers.h"
#include "bench_kit/harness.h"
#include "bench_kit/report.h"
#include "common/check.h"
#include "common/types.h"
#include "common/units.h"
#include "core/buffer_size_table.h"
#include "core/closed_form.h"
#include "core/params.h"
#include "disk/disk_profile.h"
#include "exp/day_run.h"
#include "exp/sharded.h"
#include "exp/thread_pool.h"
#include "sched/round_robin.h"
#include "sim/event_queue.h"
#include "sim/memory_broker.h"
#include "sim/multi_disk.h"
#include "sim/rng.h"
#include "sim/vod_simulator.h"
#include "sim/workload.h"

namespace vod::bench {
namespace {

namespace bk = ::vod::bench_kit;

core::AllocParams PaperParams() {
  auto p = core::MakeAllocParams(disk::SeagateBarracuda9LP(), Mbps(1.5),
                                 core::ScheduleMethod::kRoundRobin, 0, 1);
  VOD_CHECK(p.ok());
  return p.value();
}

// --- theorem1_closed_form: Eq. 6 evaluated on-line (what the dynamic
// allocator would pay per service without the Sec. 3.3 table). ---
void BM_Theorem1ClosedForm(bk::State& state) {
  const core::AllocParams p = PaperParams();
  int n = 1;
  for (auto _ : state) {
    static_cast<void>(_);
    auto bs = core::DynamicBufferSize(p, n, 3);
    bk::DoNotOptimize(bs);
    n = n % (p.n_max - 1) + 1;
  }
}

// --- buffer_size_table_lookup: the same sizing served from the
// precomputed BS_k(n) table (the per-service hot-path cost). ---
void BM_TableLookup(bk::State& state) {
  const core::AllocParams p = PaperParams();
  auto table = core::BufferSizeTable::Build(p);
  VOD_CHECK(table.ok());
  int n = 1;
  for (auto _ : state) {
    static_cast<void>(_);
    bk::DoNotOptimize(table->GetUnchecked(n, 3));
    n = n % (p.n_max - 1) + 1;
  }
}

// --- seek_gamma_eval: the two-piece Ruemmler–Wilkes curve (Eq. 7) the
// Sweep latency model evaluates at γ(Cyln/n) per buffer. ---
void BM_SeekGamma(bk::State& state) {
  const disk::DiskProfile profile = disk::SeagateBarracuda9LP();
  double x = 1;
  const auto cylinders = static_cast<double>(profile.cylinders);
  for (auto _ : state) {
    static_cast<void>(_);
    bk::DoNotOptimize(profile.seek.SeekTime(x));
    x += 37.0;
    if (x >= cylinders) x -= cylinders;
  }
}

// Minimal scheduler context: every request needs service, established
// deadlines are far out, so Next() takes the BubbleUp branch and its
// displacement scan runs over the whole sequence.
class FlatContext final : public sched::SchedulerContext {
 public:
  explicit FlatContext(RequestId fresh) : fresh_(fresh) {}
  Seconds BufferDeadline(RequestId) const override { return Seconds(1e9); }
  bool NeverServiced(RequestId id) const override { return id == fresh_; }
  double CurrentCylinder(RequestId) const override { return 0; }
  bool NeedsService(RequestId) const override { return true; }
  Seconds WorstServiceTime(RequestId) const override { return Seconds(0.5); }
  Seconds NewcomerReserve() const override { return Seconds(0.5); }

 private:
  RequestId fresh_;
};

// --- bubbleup_insert: admit a newcomer into a 64-deep Round-Robin ring,
// take the BubbleUp scheduling decision (sequence build + displacement
// scan), service it into the ring, and remove it again. ---
void BM_BubbleUpInsert(bk::State& state) {
  constexpr int kRingSize = 64;
  sched::RoundRobinScheduler scheduler;
  const RequestId newcomer = kRingSize + 1;
  FlatContext ctx(newcomer);
  for (RequestId id = 1; id <= kRingSize; ++id) {
    scheduler.Add(id, Seconds(0));
    scheduler.OnServiceComplete(id, Seconds(0));  // Into the ring.
  }
  for (auto _ : state) {
    static_cast<void>(_);
    scheduler.Add(newcomer, Seconds(0));
    auto decision = scheduler.Next(ctx, Seconds(0));
    bk::DoNotOptimize(decision);
    scheduler.OnServiceComplete(newcomer, Seconds(0));
    scheduler.Remove(newcomer);
  }
}

// --- broker_admit_release: one CanAdmit query plus the paired OnState
// up/down transitions on a 10-disk analytic broker (Figs. 13–14's
// admission path). ---
void BM_BrokerAdmitRelease(bk::State& state) {
  constexpr int kDisks = 10;
  const core::AllocParams p = PaperParams();
  sim::AnalyticMemoryBroker broker(p, core::ScheduleMethod::kRoundRobin,
                                   /*use_dynamic=*/true, /*g=*/8, kDisks,
                                   Gibibytes(1.0));
  int n = 0;
  for (int d = 0; d < kDisks; ++d) broker.OnState(d, 20, 3);
  int disk = 0;
  for (auto _ : state) {
    static_cast<void>(_);
    n = 20 + (n + 1) % 8;
    bk::DoNotOptimize(broker.CanAdmit(disk, n + 1, 3));
    broker.OnState(disk, n + 1, 3);
    broker.OnState(disk, n, 3);
    disk = (disk + 1) % kDisks;
  }
}

// Structurally identical to VodSimulator's private event record (time +
// FIFO-tiebreak seq ordering over a binary-heap priority queue): the
// per-event cost of the simulator's spine.
struct QueueEvent {
  Seconds time;
  std::uint64_t seq = 0;
  int kind = 0;
  RequestId request = 0;
  std::size_t arrival_index = 0;
  bool operator>(const QueueEvent& other) const {
    if (time != other.time) return time > other.time;
    return seq > other.seq;
  }
};

// --- event_queue_churn: steady-state push+pop against a 4096-deep heap
// with SplitMix64-scrambled event times. ---
void BM_EventQueueChurn(bk::State& state) {
  std::priority_queue<QueueEvent, std::vector<QueueEvent>,
                      std::greater<QueueEvent>>
      queue;
  std::uint64_t x = 0;
  std::uint64_t seq = 0;
  for (int i = 0; i < 4096; ++i) {
    const double jitter =
        static_cast<double>(sim::SplitMix64(++x) >> 11) * 0x1.0p-53;
    queue.push(QueueEvent{Seconds(jitter * 86400.0), ++seq, 0, 1, 0});
  }
  for (auto _ : state) {
    static_cast<void>(_);
    const QueueEvent top = queue.top();
    queue.pop();
    bk::DoNotOptimize(top);
    const double jitter =
        static_cast<double>(sim::SplitMix64(++x) >> 11) * 0x1.0p-53;
    queue.push(QueueEvent{top.time + Seconds(jitter), ++seq, 0, 1, 0});
  }
}

// --- event_queue_churn_calendar: the identical churn pattern through the
// production sim::EventQueue calendar implementation (the heap bench
// above is the legacy reference it is differentially tested against, in
// tests/event_queue_test.cc). Same 4096-deep steady state, same SplitMix64
// jitter stream, so the two numbers are directly comparable. ---
void BM_EventQueueChurnCalendar(bk::State& state) {
  std::unique_ptr<sim::EventQueue> queue =
      sim::MakeEventQueue(sim::EventQueueKind::kCalendar);
  std::uint64_t x = 0;
  std::uint64_t seq = 0;
  for (int i = 0; i < 4096; ++i) {
    const double jitter =
        static_cast<double>(sim::SplitMix64(++x) >> 11) * 0x1.0p-53;
    sim::SimEvent ev;
    ev.time = Seconds(jitter * 86400.0);
    ev.seq = ++seq;
    queue->Push(ev);
  }
  for (auto _ : state) {
    static_cast<void>(_);
    const sim::SimEvent top = queue->PopTop();
    bk::DoNotOptimize(top);
    const double jitter =
        static_cast<double>(sim::SplitMix64(++x) >> 11) * 0x1.0p-53;
    sim::SimEvent ev;
    ev.time = top.time + Seconds(jitter);
    ev.seq = ++seq;
    queue->Push(ev);
  }
}

// --- run_day_static / run_day_dynamic: end-to-end sims/sec for one small
// grid point (3 h day, 150 arrivals — big enough to exercise admission,
// scheduling, and departure churn; small enough for tight repetitions).
// ns_per_iter is the wall cost of one simulated day: sims/sec = 1e9 / it. ---
exp::DayRunConfig SmallDay(sim::AllocScheme scheme) {
  exp::DayRunConfig cfg;
  cfg.method = core::ScheduleMethod::kRoundRobin;
  cfg.scheme = scheme;
  cfg.t_log = Minutes(40);
  cfg.alpha = 1;
  cfg.duration = Hours(3);
  cfg.total_arrivals = 150;
  cfg.seed = 7;
  return cfg;
}

void BM_RunDay(sim::AllocScheme scheme, bk::State& state) {
  const exp::DayRunConfig cfg = SmallDay(scheme);
  for (auto _ : state) {
    static_cast<void>(_);
    sim::SimMetrics metrics = exp::RunDay(cfg);
    bk::DoNotOptimize(metrics);
  }
}

// --- run_day_sharded: end-to-end sims/sec for a 4-disk day driven through
// the epoch-barrier sharded loop on a real thread pool — the same machinery
// the soak test and the paper-scale experiments use. One iteration is one
// whole multi-disk day (arrivals regenerated and the server rebuilt each
// time, so every iteration does identical work). ---
void BM_RunDaySharded(bk::State& state) {
  constexpr int kDisks = 4;
  sim::SimConfig base;
  base.method = core::ScheduleMethod::kRoundRobin;
  base.scheme = sim::AllocScheme::kDynamic;
  base.t_log = Minutes(40);
  base.seed = 7;

  sim::WorkloadConfig w;
  w.duration = Hours(3);
  w.total_expected_arrivals = 200;
  w.disk_count = kDisks;
  w.disk_theta = 0.5;
  w.seed = 7;
  auto arrivals = sim::GenerateWorkload(w);
  if (!arrivals.ok()) return;

  exp::ThreadPool pool;  // One worker per hardware thread.
  for (auto _ : state) {
    static_cast<void>(_);
    auto md = sim::MultiDiskSimulator::Create(base, kDisks, Mebibytes(200));
    if (!md.ok()) return;
    auto server = std::move(md.value());
    if (!server->AddArrivals(*arrivals).ok()) return;
    exp::RunShardedToCompletion(*server, pool);
    server->Finalize();
    bk::DoNotOptimize(server->TotalAdmitted());
  }
}

void RegisterAll(bk::Harness* harness) {
  // Harness-overhead pin: an empty body must report < 100 ns median (the
  // bench_kit_test asserts this), proving loop/timer cost is subtracted or
  // negligible in every other number here.
  harness->Register("noop", [](bk::State& state) {
    for (auto _ : state) static_cast<void>(_);
  });
  harness->Register("theorem1_closed_form", BM_Theorem1ClosedForm);
  harness->Register("buffer_size_table_lookup", BM_TableLookup);
  harness->Register("seek_gamma_eval", BM_SeekGamma);
  harness->Register("bubbleup_insert", BM_BubbleUpInsert);
  harness->Register("broker_admit_release", BM_BrokerAdmitRelease);
  harness->Register("event_queue_churn", BM_EventQueueChurn);
  harness->Register("event_queue_churn_calendar", BM_EventQueueChurnCalendar);

  // End-to-end points: one iteration is one whole simulated day, so pin
  // one iteration per repetition and let repetitions supply the sample.
  bk::BenchConfig day;
  day.min_rep_ns = 0;
  day.max_iters = 1;
  harness->Register(
      "run_day_static",
      [](bk::State& s) { BM_RunDay(sim::AllocScheme::kStatic, s); }, day);
  harness->Register(
      "run_day_dynamic",
      [](bk::State& s) { BM_RunDay(sim::AllocScheme::kDynamic, s); }, day);
  harness->Register("run_day_sharded", BM_RunDaySharded, day);
}

struct SuiteOptions {
  std::string filter;
  std::string out;
  std::size_t repetitions = 9;
  bool dump_baseline = false;
  bool list = false;
};

constexpr char kUsage[] =
    "usage: perf_suite [--filter=SUBSTR] [--repetitions=N] [--out=FILE|-]\n"
    "                  [--dump-baseline] [--list]\n"
    "  --filter=SUBSTR   run only benchmarks whose name contains SUBSTR\n"
    "  --repetitions=N   timed repetitions per benchmark (default 9)\n"
    "  --out=FILE        write BENCH json here (default BENCH_<host>.json;\n"
    "                    '-' = stdout)\n"
    "  --dump-baseline   write to bench/baselines/BENCH_baseline.json\n"
    "                    (run from the repo root)\n"
    "  --list            print registered benchmark names and exit\n";

SuiteOptions ParseOrDie(int argc, char** argv) {
  SuiteOptions opt;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--filter=", 9) == 0) {
      opt.filter = arg + 9;
    } else if (std::strncmp(arg, "--out=", 6) == 0) {
      opt.out = arg + 6;
    } else if (std::strncmp(arg, "--repetitions=", 14) == 0) {
      char* end = nullptr;
      const long v = std::strtol(arg + 14, &end, 10);
      if (end == arg + 14 || *end != '\0' || v < 2 || v > 1000) {
        std::fprintf(stderr, "perf_suite: bad --repetitions \"%s\" "
                             "(want an integer in [2, 1000])\n%s",
                     arg + 14, kUsage);
        std::exit(2);
      }
      opt.repetitions = static_cast<std::size_t>(v);
    } else if (std::strcmp(arg, "--dump-baseline") == 0) {
      opt.dump_baseline = true;
    } else if (std::strcmp(arg, "--list") == 0) {
      opt.list = true;
    } else {
      std::fprintf(stderr, "perf_suite: unknown option \"%s\"\n%s", arg,
                   kUsage);
      std::exit(2);
    }
  }
  return opt;
}

int Main(int argc, char** argv) {
  const SuiteOptions opt = ParseOrDie(argc, argv);

  bk::HarnessConfig hcfg;
  hcfg.repetitions = opt.repetitions;
  bk::Harness harness(hcfg);
  RegisterAll(&harness);

  if (opt.list) {
    for (const auto& b : harness.benchmarks()) {
      std::printf("%s\n", b.name.c_str());
    }
    return 0;
  }

  bk::BenchReport report;
  report.machine = bk::ProbeMachine();
  report.git_sha = bk::GitSha();
  report.build_type = bk::BuildType();

  std::fprintf(stderr, "%-28s %12s %12s %8s %6s\n", "benchmark",
               "median ns/it", "mean ns/it", "cv", "reps");
  auto log = [](const bk::BenchResult& r) {
    std::fprintf(stderr, "%-28s %12.2f %12.2f %7.1f%% %6zu\n", r.name.c_str(),
                 r.ns_per_iter.median, r.ns_per_iter.mean,
                 r.ns_per_iter.cv * 100.0, r.repetitions);
  };
  auto results = harness.RunAll(opt.filter, log);
  if (!results.ok()) {
    std::fprintf(stderr, "perf_suite: %s\n", results.status().ToString().c_str());
    return 2;
  }
  report.results = std::move(results).value();

  std::string out = opt.out;
  if (out.empty()) {
    out = opt.dump_baseline ? "bench/baselines/BENCH_baseline.json"
                            : bk::DefaultReportFilename(report.machine);
  }
  const Status st = bk::WriteReport(report, out);
  if (!st.ok()) {
    std::fprintf(stderr, "perf_suite: %s\n", st.ToString().c_str());
    return 1;
  }
  if (out != "-") std::fprintf(stderr, "wrote %s\n", out.c_str());
  return 0;
}

}  // namespace
}  // namespace vod::bench

int main(int argc, char** argv) { return vod::bench::Main(argc, argv); }
