// Fig. 8 — (a) the average number of estimated additional requests and
// (b) the successful estimation probability, as functions of α, with the
// paper's T_log (40 min Round-Robin, 20 min Sweep*/GSS*).
//
// Runs on the parallel experiment runner (src/exp): the method × α grid
// fans out across --threads workers; rows print in grid order, so the CSV
// is byte-identical to the legacy serial harness at --seeds=1. --seeds=K>1
// replicates each point over seeds 5..5+K-1 and appends stddev/CI columns.
//
// Paper reference: α = 1 already achieves > 99% success; larger α only
// inflates the estimates (and hence memory).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/units.h"
#include "exp/grid.h"
#include "exp/runner.h"

using namespace vod;         // NOLINT(build/namespaces)
using namespace vod::bench;  // NOLINT(build/namespaces)

namespace {

std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::Parse(argc, argv);
  const int seeds = opt.seeds > 0 ? opt.seeds : 1;
  const std::vector<int> alphas =
      opt.full ? std::vector<int>{1, 2, 3, 4, 5} : std::vector<int>{1, 2, 4};

  DayRunConfig base;
  base.scheme = sim::AllocScheme::kDynamic;
  base.duration = opt.full ? Hours(24) : Hours(8);
  base.total_arrivals = opt.full ? 1200 : 400;
  base.theta = 0.0;
  opt.ApplyFaultsTo(&base);

  std::vector<std::uint64_t> seed_list;
  for (int s = 0; s < seeds; ++s) seed_list.push_back(5 + s);

  exp::Grid grid;
  grid.WithBase(base)
      .OverMethods({core::ScheduleMethod::kRoundRobin,
                    core::ScheduleMethod::kSweep, core::ScheduleMethod::kGss})
      .UsePaperTLog()
      .OverAlphas(alphas)
      .WithSeeds(seed_list);

  const ObsSession obs_session(opt, grid.size());
  const exp::Runner runner({.threads = opt.threads, .progress = opt.progress});
  const std::vector<exp::RunResult> results =
      runner.RunWithSpecs(grid, obs_session.MakeRunFn());
  const auto k_rows = exp::AggregateReplications(
      results, seeds,
      [](const exp::RunResult& r) { return r.metrics.estimated_k.mean(); });
  const auto p_rows = exp::AggregateReplications(
      results, seeds,
      [](const exp::RunResult& r) { return r.metrics.SuccessProbability(); });

  std::vector<std::string> columns = {"method", "alpha", "avg_estimated_k",
                                      "success_probability"};
  if (seeds > 1) {
    columns.insert(columns.end(), {"k_stddev", "success_ci95"});
  }
  exp::Table table(columns);
  for (std::size_t i = 0; i < k_rows.size(); ++i) {
    const DayRunConfig& cfg = k_rows[i].spec.config;
    std::vector<std::string> row = {
        std::string(core::ScheduleMethodName(cfg.method)),
        std::to_string(cfg.alpha), Fmt("%.3f", k_rows[i].summary.mean),
        Fmt("%.4f", p_rows[i].summary.mean)};
    if (seeds > 1) {
      row.push_back(Fmt("%.4f", k_rows[i].summary.stddev));
      row.push_back(Fmt("%.4f", p_rows[i].summary.ci95_half));
    }
    table.AddRow(std::move(row));
  }
  if (!opt.json) {
    std::printf("# Fig. 8: estimation vs alpha (paper T_log per method)\n");
  }
  table.Write(stdout, opt.json);
  obs_session.Finish(results);
  return 0;
}
