// Fig. 8 — (a) the average number of estimated additional requests and
// (b) the successful estimation probability, as functions of α, with the
// paper's T_log (40 min Round-Robin, 20 min Sweep*/GSS*).
//
// Paper reference: α = 1 already achieves > 99% success; larger α only
// inflates the estimates (and hence memory).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/units.h"

using namespace vod;         // NOLINT(build/namespaces)
using namespace vod::bench;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::Parse(argc, argv);
  const std::vector<int> alphas =
      opt.full ? std::vector<int>{1, 2, 3, 4, 5} : std::vector<int>{1, 2, 4};
  const Seconds duration = opt.full ? Hours(24) : Hours(8);
  const double arrivals = opt.full ? 1200 : 400;

  std::printf("# Fig. 8: estimation vs alpha (paper T_log per method)\n");
  PrintCsvHeader("method,alpha,avg_estimated_k,success_probability");
  for (core::ScheduleMethod method :
       {core::ScheduleMethod::kRoundRobin, core::ScheduleMethod::kSweep,
        core::ScheduleMethod::kGss}) {
    for (int alpha : alphas) {
      DayRunConfig cfg;
      cfg.method = method;
      cfg.scheme = sim::AllocScheme::kDynamic;
      cfg.t_log = PaperTLog(method);
      cfg.alpha = alpha;
      cfg.duration = duration;
      cfg.total_arrivals = arrivals;
      cfg.theta = 0.0;
      cfg.seed = 5;
      const sim::SimMetrics m = RunDay(cfg);
      std::printf("%s,%d,%.3f,%.4f\n",
                  core::ScheduleMethodName(method).data(), alpha,
                  m.estimated_k.mean(), m.SuccessProbability());
    }
  }
  return 0;
}
