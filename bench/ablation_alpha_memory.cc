// Ablation — the α trade-off the paper discusses in Sec. 3.1: larger α
// adapts faster to arrival-rate growth but inflates buffers and memory.
// Prints, per α, the dynamic buffer size and memory requirement at
// representative loads (analysis), quantifying why the paper settles on
// α = 1.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/units.h"
#include "core/closed_form.h"
#include "core/memory_model.h"
#include "disk/disk_profile.h"

using namespace vod;         // NOLINT(build/namespaces)
using namespace vod::bench;  // NOLINT(build/namespaces)

int main() {
  std::printf("# Ablation: alpha vs buffer size / memory requirement "
              "(Round-Robin, k=4)\n");
  PrintCsvHeader("alpha,n,buffer_mbit,memory_mb");
  for (int alpha : {1, 2, 3, 5, 8}) {
    auto pr = core::MakeAllocParams(disk::SeagateBarracuda9LP(), Mbps(1.5),
                                    core::ScheduleMethod::kRoundRobin, 0,
                                    alpha);
    if (!pr.ok()) {
      std::fprintf(stderr, "%s\n", pr.status().ToString().c_str());
      return 1;
    }
    for (int n : {1, 10, 20, 40, 60}) {
      const int k = std::min(4, pr->n_max - n);
      auto bs = core::DynamicBufferSize(*pr, n, k);
      auto mem = core::DynamicMemoryRequirement(
          *pr, core::ScheduleMethod::kRoundRobin, n, k, 8);
      if (!bs.ok() || !mem.ok()) return 1;
      std::printf("%d,%d,%.4f,%.3f\n", alpha, n, ToMegabits(*bs),
                  ToMebibytes(*mem));
    }
  }
  return 0;
}
