#include "core/latency_model.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "core/closed_form.h"
#include "core/static_alloc.h"
#include "disk/disk_profile.h"

namespace vod::core {
namespace {

AllocParams Params(ScheduleMethod m, int n_or_g) {
  auto p = MakeAllocParams(disk::SeagateBarracuda9LP(), Mbps(1.5), m, n_or_g,
                           1);
  EXPECT_TRUE(p.ok());
  return p.value();
}

TEST(LatencyModelTest, RoundRobinEquation2) {
  const AllocParams p = Params(ScheduleMethod::kRoundRobin, 0);
  const Bits bs = Megabits(206);
  EXPECT_NEAR(ToSeconds(WorstInitialLatencyRoundRobin(p, bs)),
              ToSeconds(2 * p.dl + bs / p.tr), 1e-12);
  // With the paper's numbers: 2·21.73ms + 1.717s ≈ 1.76 s.
  EXPECT_NEAR(ToSeconds(WorstInitialLatencyRoundRobin(p, bs)), 1.76, 0.01);
}

TEST(LatencyModelTest, SweepEquation3) {
  const AllocParams p = Params(ScheduleMethod::kSweep, 79);
  const Bits bs = Megabits(100);
  const Seconds slot = p.dl + bs / p.tr;
  EXPECT_NEAR(ToSeconds(WorstInitialLatencySweep(p, bs, 79)),
              ToSeconds((2 * 79 + 1) * slot), 1e-9);
}

TEST(LatencyModelTest, GssEquation4) {
  const AllocParams p = Params(ScheduleMethod::kGss, 8);
  const Bits bs = Megabits(130);
  EXPECT_NEAR(ToSeconds(WorstInitialLatencyGss(p, bs, 8)),
              ToSeconds(2 * 8 * (p.dl + bs / p.tr)), 1e-9);
}

TEST(LatencyModelTest, LatencyLinearInBufferSize) {
  // Sec. 2.2: "initial latency increases linearly in proportion to the
  // buffer size BS regardless of buffer scheduling methods".
  const AllocParams p = Params(ScheduleMethod::kRoundRobin, 0);
  const Seconds il1 = WorstInitialLatencyRoundRobin(p, Megabits(10));
  const Seconds il2 = WorstInitialLatencyRoundRobin(p, Megabits(20));
  const Seconds il3 = WorstInitialLatencyRoundRobin(p, Megabits(30));
  EXPECT_NEAR(ToSeconds(il3 - il2), ToSeconds(il2 - il1), 1e-12);
}

TEST(LatencyModelTest, DispatchMatchesDirectCalls) {
  const AllocParams p = Params(ScheduleMethod::kSweep, 40);
  const Bits bs = Megabits(50);
  EXPECT_DOUBLE_EQ(
      ToSeconds(WorstInitialLatency(p, ScheduleMethod::kSweep, bs, 40).value()),
      ToSeconds(WorstInitialLatencySweep(p, bs, 40)));
  EXPECT_DOUBLE_EQ(
      ToSeconds(
          WorstInitialLatency(p, ScheduleMethod::kRoundRobin, bs, 0).value()),
      ToSeconds(WorstInitialLatencyRoundRobin(p, bs)));
  EXPECT_DOUBLE_EQ(
      ToSeconds(WorstInitialLatency(p, ScheduleMethod::kGss, bs, 8).value()),
      ToSeconds(WorstInitialLatencyGss(p, bs, 8)));
}

TEST(LatencyModelTest, DispatchValidates) {
  const AllocParams p = Params(ScheduleMethod::kSweep, 40);
  EXPECT_FALSE(WorstInitialLatency(p, ScheduleMethod::kSweep, Bits(-1.0), 4).ok());
  EXPECT_FALSE(WorstInitialLatency(p, ScheduleMethod::kSweep, Bits(1.0), 0).ok());
  EXPECT_FALSE(WorstInitialLatency(p, ScheduleMethod::kGss, Bits(1.0), 0).ok());
}

TEST(LatencyModelTest, DynamicBeatsStaticBelowFullLoad) {
  // The headline claim, in worst-case analytic form (Fig. 10): at every
  // n < N the dynamic scheme's worst latency is below the static one's.
  const AllocParams p = Params(ScheduleMethod::kRoundRobin, 0);
  const Bits static_bs = StaticSchemeBufferSize(p).value();
  for (int n = 1; n < p.n_max; n += 6) {
    const Bits dyn_bs =
        DynamicBufferSize(p, n, std::min(4, p.n_max - n)).value();
    EXPECT_LT(WorstInitialLatencyRoundRobin(p, dyn_bs),
              WorstInitialLatencyRoundRobin(p, static_bs))
        << "n=" << n;
  }
}

TEST(LatencyModelTest, PaperRatioAtLowLoadIsLarge) {
  // At n = 1 the reduction is enormous (the paper's 1/11 figure is an
  // average over n; the low-load end is far bigger).
  const AllocParams p = Params(ScheduleMethod::kRoundRobin, 0);
  const Bits static_bs = StaticSchemeBufferSize(p).value();
  const Bits dyn_bs = DynamicBufferSize(p, 1, 4).value();
  const double ratio = WorstInitialLatencyRoundRobin(p, static_bs) /
                       WorstInitialLatencyRoundRobin(p, dyn_bs);
  EXPECT_GT(ratio, 20.0);
}

}  // namespace
}  // namespace vod::core
