#include "vod/server.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace vod {
namespace {

VodServer::Options DefaultOptions() {
  VodServer::Options opt;
  opt.config.method = core::ScheduleMethod::kRoundRobin;
  opt.config.scheme = sim::AllocScheme::kDynamic;
  opt.config.t_log = Minutes(40);
  return opt;
}

TEST(VodServerTest, SubmitAndRunOneViewer) {
  auto server = VodServer::Create(DefaultOptions());
  ASSERT_TRUE(server.ok());
  auto t = (*server)->Submit(/*video=*/0, Minutes(10));
  ASSERT_TRUE(t.ok());
  (*server)->RunToCompletion();
  (*server)->Finish();
  const sim::SimMetrics& m = (*server)->metrics();
  EXPECT_EQ(m.arrivals, 1);
  EXPECT_EQ(m.admitted, 1);
  EXPECT_EQ(m.completed, 1);
  EXPECT_GT(m.initial_latency.mean(), 0.0);
  EXPECT_LT(m.initial_latency.mean(), 1.0);  // Dynamic: tiny first buffer.
}

TEST(VodServerTest, RunForAdvancesVirtualTime) {
  auto server = VodServer::Create(DefaultOptions());
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Submit(0, Minutes(30)).ok());
  (*server)->RunFor(Minutes(5));
  EXPECT_EQ((*server)->active_requests(), 1);
  (*server)->RunFor(Minutes(30));
  EXPECT_EQ((*server)->active_requests(), 0);
}

TEST(VodServerTest, SubmitAfterRunUsesCurrentTime) {
  auto server = VodServer::Create(DefaultOptions());
  ASSERT_TRUE(server.ok());
  (*server)->RunFor(Minutes(10));
  auto t = (*server)->Submit(1, Minutes(5));
  ASSERT_TRUE(t.ok());
  EXPECT_GE(*t, Minutes(10));
}

TEST(VodServerTest, MemoryCapacityLimitsAdmission) {
  VodServer::Options opt = DefaultOptions();
  opt.config.scheme = sim::AllocScheme::kStatic;
  opt.memory_capacity = Mebibytes(60);  // ~2 static buffers' worth.
  auto server = VodServer::Create(opt);
  ASSERT_TRUE(server.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*server)->Submit(i % 6, Minutes(20)).ok());
  }
  (*server)->RunToCompletion();
  const sim::SimMetrics& m = (*server)->metrics();
  EXPECT_GT(m.rejected, 0);
  EXPECT_LT(m.admitted, 10);
}

TEST(VodServerTest, SummaryLineMentionsCounts) {
  auto server = VodServer::Create(DefaultOptions());
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Submit(0, Minutes(1)).ok());
  (*server)->RunToCompletion();
  const std::string line = (*server)->SummaryLine();
  EXPECT_NE(line.find("admitted=1"), std::string::npos);
  EXPECT_NE(line.find("mean_initial_latency="), std::string::npos);
}

TEST(VodServerTest, InvalidConfigFails) {
  VodServer::Options opt = DefaultOptions();
  opt.config.alpha = 0;
  EXPECT_FALSE(VodServer::Create(opt).ok());
}

TEST(VodServerTest, AlphaParamsExposed) {
  auto server = VodServer::Create(DefaultOptions());
  ASSERT_TRUE(server.ok());
  EXPECT_EQ((*server)->alloc_params().n_max, 79);
  EXPECT_EQ((*server)->alloc_params().alpha, 1);
}

}  // namespace
}  // namespace vod
