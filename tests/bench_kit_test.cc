// Tests for the src/bench_kit microbenchmark harness itself: repetition
// statistics against a deterministic fake clock, iteration auto-scaling,
// optimization-barrier smoke checks, the harness-overhead pin the perf
// suite's `noop` benchmark relies on, and a full BENCH_*.json schema
// round-trip (emit -> parse -> identical re-emit).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_kit/barriers.h"
#include "bench_kit/harness.h"
#include "bench_kit/json.h"
#include "bench_kit/report.h"
#include "bench_kit/run_stats.h"
#include "gtest/gtest.h"

namespace vod::bench_kit {
namespace {

// --- SampleStats -----------------------------------------------------------

TEST(SampleStatsTest, EmptySampleIsAllZero) {
  const SampleStats s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.min, 0);
  EXPECT_EQ(s.median, 0);
  EXPECT_EQ(s.cv, 0);
}

TEST(SampleStatsTest, OddSampleExactOrderStatistics) {
  const SampleStats s = Summarize({5, 1, 9, 3, 7});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 9);
  EXPECT_DOUBLE_EQ(s.median, 5);
  EXPECT_DOUBLE_EQ(s.mean, 5);
  // Sample stddev of {1,3,5,7,9}: sqrt(40/4) = sqrt(10).
  EXPECT_NEAR(s.stddev, 3.1622776601683795, 1e-12);
  EXPECT_NEAR(s.cv, s.stddev / 5.0, 1e-15);
}

TEST(SampleStatsTest, EvenSampleMedianAveragesMiddlePair) {
  const SampleStats s = Summarize({400, 100, 300, 200});
  EXPECT_DOUBLE_EQ(s.median, 250);
  EXPECT_DOUBLE_EQ(s.mean, 250);
  // Sample stddev of {100,200,300,400}: sqrt(50000/3).
  EXPECT_NEAR(s.stddev, 129.09944487358058, 1e-9);
  EXPECT_NEAR(s.cv, 0.51639777949432225, 1e-12);
}

TEST(SampleStatsTest, ConstantSampleHasZeroCv) {
  const SampleStats s = Summarize({42, 42, 42});
  EXPECT_DOUBLE_EQ(s.median, 42);
  EXPECT_DOUBLE_EQ(s.stddev, 0);
  EXPECT_DOUBLE_EQ(s.cv, 0);
}

// --- Harness measurement plumbing (fake clock) -----------------------------

/// Scripted wall clock: returns the next value of `times` per call. The
/// harness makes exactly two calls per measurement (start, stop), so a
/// script fully determines every sample.
TimeFn ScriptedClock(std::vector<std::int64_t> times) {
  auto index = std::make_shared<std::size_t>(0);
  auto values = std::make_shared<std::vector<std::int64_t>>(std::move(times));
  return [index, values]() {
    EXPECT_LT(*index, values->size()) << "fake clock script exhausted";
    return (*values)[(*index)++];
  };
}

HarnessConfig FakeClockConfig(std::vector<std::int64_t> times,
                              std::size_t repetitions) {
  HarnessConfig cfg;
  cfg.repetitions = repetitions;
  cfg.warmup_reps = 0;
  cfg.subtract_loop_overhead = false;
  cfg.wall = ScriptedClock(std::move(times));
  cfg.cycles = [] { return std::uint64_t{0}; };  // Cycles unavailable.
  return cfg;
}

TEST(HarnessTest, FakeClockYieldsExactRunStatistics) {
  // Call pairs: auto-scale probe (0, 50), then four timed repetitions with
  // deltas 100, 200, 300, 400 ns at one iteration each.
  Harness harness(FakeClockConfig(
      {0, 50, 1000, 1100, 2000, 2200, 3000, 3300, 4000, 4400}, 4));
  BenchConfig pin;
  pin.min_rep_ns = 0;  // Auto-scaling accepts the first probe.
  pin.max_iters = 1;
  harness.Register("scripted", [](State& s) {
    for (auto _ : s) static_cast<void>(_);
  }, pin);

  const BenchResult r = harness.Run(harness.benchmarks()[0]);
  EXPECT_EQ(r.iterations, 1u);
  EXPECT_EQ(r.repetitions, 4u);
  EXPECT_DOUBLE_EQ(r.ns_per_iter.min, 100);
  EXPECT_DOUBLE_EQ(r.ns_per_iter.max, 400);
  EXPECT_DOUBLE_EQ(r.ns_per_iter.median, 250);
  EXPECT_DOUBLE_EQ(r.ns_per_iter.mean, 250);
  EXPECT_NEAR(r.ns_per_iter.cv, 0.51639777949432225, 1e-12);
  // Injected zero cycle counter => no cycle stats.
  EXPECT_EQ(r.cycles_per_iter.count, 0u);
}

TEST(HarnessTest, SamplesAreNormalizedPerIteration) {
  // Auto-scaling probes read 30 ns at 1 iteration (below the 40 ns target,
  // so iterations double) then 50 ns at 2 iterations (accepted). The three
  // repetition deltas 100/200/300 ns therefore divide by 2 iterations.
  Harness harness(
      FakeClockConfig({0, 30, 0, 50, 0, 100, 0, 200, 0, 300}, 3));
  BenchConfig cfg;
  cfg.min_rep_ns = 40;
  harness.Register("scripted", [](State& s) {
    for (auto _ : s) static_cast<void>(_);
  }, cfg);
  const BenchResult r = harness.Run(harness.benchmarks()[0]);
  EXPECT_EQ(r.iterations, 2u);
  EXPECT_DOUBLE_EQ(r.ns_per_iter.min, 50);
  EXPECT_DOUBLE_EQ(r.ns_per_iter.median, 100);
  EXPECT_DOUBLE_EQ(r.ns_per_iter.max, 150);
}

TEST(HarnessTest, AutoScalingDoublesUpToTheCap) {
  // Every probe reads a 1 ns delta, far below min_rep_ns, so iterations
  // double 1 -> 2 -> 4 -> 8 -> 16 and stop at the cap. Probes: 5 pairs,
  // then 2 repetitions.
  std::vector<std::int64_t> script;
  for (std::int64_t i = 0; i < 7; ++i) {
    script.push_back(i * 10);
    script.push_back(i * 10 + 1);
  }
  Harness harness(FakeClockConfig(std::move(script), 2));
  BenchConfig cfg;
  cfg.min_rep_ns = 1000;
  cfg.max_iters = 16;
  std::uint64_t seen_iters = 0;
  harness.Register("counting", [&seen_iters](State& s) {
    seen_iters = s.iterations();
    for (auto _ : s) static_cast<void>(_);
  }, cfg);

  const BenchResult r = harness.Run(harness.benchmarks()[0]);
  EXPECT_EQ(r.iterations, 16u);
  EXPECT_EQ(seen_iters, 16u);  // The body really ran at the cap.
  // 1 ns over 16 iterations.
  EXPECT_DOUBLE_EQ(r.ns_per_iter.median, 1.0 / 16.0);
}

TEST(HarnessTest, RunAllFilterMatchesSubstringAndFailsOnNoMatch) {
  HarnessConfig cfg;
  cfg.repetitions = 2;
  cfg.warmup_reps = 0;
  Harness harness(cfg);
  harness.Register("alpha_fast", [](State& s) {
    for (auto _ : s) static_cast<void>(_);
  });
  harness.Register("beta_slow", [](State& s) {
    for (auto _ : s) static_cast<void>(_);
  });

  auto some = harness.RunAll("alpha", nullptr);
  ASSERT_TRUE(some.ok());
  ASSERT_EQ(some->size(), 1u);
  EXPECT_EQ((*some)[0].name, "alpha_fast");

  auto none = harness.RunAll("gamma", nullptr);
  EXPECT_FALSE(none.ok());
  EXPECT_EQ(none.status().code(), StatusCode::kNotFound);
}

// --- Barriers + overhead pin (real clock) ----------------------------------

TEST(BarriersTest, DoNotOptimizePreservesValues) {
  int x = 41;
  DoNotOptimize(x);
  x += 1;
  DoNotOptimize(x);
  EXPECT_EQ(x, 42);

  const double y = 2.5;
  DoNotOptimize(y);  // const-ref overload compiles.
  ClobberMemory();
  EXPECT_DOUBLE_EQ(y, 2.5);

  std::vector<int> big(128, 7);  // Non-register-sized falls back to "+m".
  DoNotOptimize(big);
  EXPECT_EQ(big[64], 7);
}

TEST(HarnessOverheadTest, NoopBenchmarkMedianUnder100ns) {
  // The acceptance bar for the whole suite's credibility: an empty body
  // must report (median) under 100 ns/iter on the real clock, proving the
  // timing loop's own cost is subtracted or negligible.
  HarnessConfig cfg;
  cfg.repetitions = 5;
  Harness harness(cfg);
  BenchConfig fast;
  fast.min_rep_ns = 1'000'000;  // 1 ms repetitions keep this test quick.
  harness.Register("noop", [](State& s) {
    for (auto _ : s) static_cast<void>(_);
  }, fast);

  const BenchResult r = harness.Run(harness.benchmarks()[0]);
  EXPECT_EQ(r.repetitions, 5u);
  EXPECT_GE(r.ns_per_iter.median, 0.0);
  EXPECT_LT(r.ns_per_iter.median, 100.0);
}

// --- BENCH_*.json schema round-trip ----------------------------------------

BenchReport MakeReport() {
  BenchReport report;
  report.machine.hostname = "host-1";
  report.machine.cpu_model = "Test CPU @ 2.10GHz";
  report.machine.core_count = 8;
  report.machine.governor = "performance";
  report.git_sha = "deadbeef";
  report.build_type = "Release";

  BenchResult r;
  r.name = "table_lookup";
  r.iterations = 1 << 20;
  r.repetitions = 5;
  r.ns_per_iter = Summarize({6.5, 6.75, 7.0, 7.25, 6.25});
  r.cycles_per_iter = Summarize({13, 14, 15, 14, 13});
  report.results.push_back(r);

  BenchResult r2;
  r2.name = "run_day";
  r2.iterations = 1;
  r2.repetitions = 3;
  r2.ns_per_iter = Summarize({6.1e7, 6.0e7, 6.3e7});
  report.results.push_back(r2);  // No cycle stats: field omitted.
  return report;
}

TEST(ReportTest, JsonRoundTripPreservesEveryField) {
  const BenchReport report = MakeReport();
  const std::string text = ReportToJson(report).Dump();

  auto doc = JsonValue::Parse(text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  auto back = ReportFromJson(doc.value());
  ASSERT_TRUE(back.ok()) << back.status().ToString();

  EXPECT_EQ(back->schema, "vodb-bench-v1");
  EXPECT_EQ(back->machine.hostname, "host-1");
  EXPECT_EQ(back->machine.cpu_model, "Test CPU @ 2.10GHz");
  EXPECT_EQ(back->machine.core_count, 8);
  EXPECT_EQ(back->machine.governor, "performance");
  EXPECT_EQ(back->git_sha, "deadbeef");
  EXPECT_EQ(back->build_type, "Release");
  ASSERT_EQ(back->results.size(), 2u);

  const BenchResult& a = back->results[0];
  EXPECT_EQ(a.name, "table_lookup");
  EXPECT_EQ(a.iterations, 1u << 20);
  EXPECT_EQ(a.repetitions, 5u);
  EXPECT_DOUBLE_EQ(a.ns_per_iter.median, 6.75);
  EXPECT_DOUBLE_EQ(a.ns_per_iter.min, 6.25);
  EXPECT_DOUBLE_EQ(a.cycles_per_iter.median, 14);
  EXPECT_EQ(back->results[1].cycles_per_iter.count, 0u);

  // Canonical writer: a round-tripped report re-emits byte-identically.
  EXPECT_EQ(ReportToJson(back.value()).Dump(), text);
}

TEST(ReportTest, WriteAndReadBackFromDisk) {
  const BenchReport report = MakeReport();
  const std::string path = ::testing::TempDir() + "/BENCH_roundtrip.json";
  ASSERT_TRUE(WriteReport(report, path).ok());
  auto back = ReadReport(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->results.size(), 2u);
  EXPECT_DOUBLE_EQ(back->results[0].ns_per_iter.cv,
                   report.results[0].ns_per_iter.cv);
  std::remove(path.c_str());
}

TEST(ReportTest, RejectsMalformedDocuments) {
  // Not JSON at all.
  EXPECT_FALSE(JsonValue::Parse("{not json").ok());
  // Trailing garbage.
  EXPECT_FALSE(JsonValue::Parse("{} extra").ok());
  // Valid JSON, wrong schema.
  auto wrong = JsonValue::Parse(R"({"schema": "v999"})");
  ASSERT_TRUE(wrong.ok());
  EXPECT_FALSE(ReportFromJson(wrong.value()).ok());
  // Missing benchmarks array.
  auto no_benches = JsonValue::Parse(
      R"({"schema": "vodb-bench-v1", "git_sha": "x", "build_type": "y",
          "machine": {"hostname": "h", "cpu_model": "c", "core_count": 1,
                      "governor": "g"}})");
  ASSERT_TRUE(no_benches.ok());
  EXPECT_FALSE(ReportFromJson(no_benches.value()).ok());
  // Benchmark entry with a mistyped stats block.
  auto bad_stats = JsonValue::Parse(
      R"({"schema": "vodb-bench-v1", "git_sha": "x", "build_type": "y",
          "machine": {"hostname": "h", "cpu_model": "c", "core_count": 1,
                      "governor": "g"},
          "benchmarks": [{"name": "b", "iterations": 1, "repetitions": 2,
                          "ns_per_iter": {"median": "fast"}}]})");
  ASSERT_TRUE(bad_stats.ok());
  EXPECT_FALSE(ReportFromJson(bad_stats.value()).ok());
}

TEST(ReportTest, DefaultFilenameSanitizesHostname) {
  MachineInfo m;
  m.hostname = "node-3.rack/7";
  EXPECT_EQ(DefaultReportFilename(m), "BENCH_node-3_rack_7.json");
  m.hostname = "";
  EXPECT_EQ(DefaultReportFilename(m), "BENCH_unknown.json");
}

TEST(ReportTest, ProbeMachineAndGitShaAreNonEmpty) {
  const MachineInfo m = ProbeMachine();
  EXPECT_FALSE(m.hostname.empty());
  EXPECT_FALSE(m.cpu_model.empty());
  EXPECT_GE(m.core_count, 1);
  EXPECT_FALSE(m.governor.empty());
  EXPECT_FALSE(GitSha().empty());
  EXPECT_FALSE(BuildType().empty());
}

}  // namespace
}  // namespace vod::bench_kit
