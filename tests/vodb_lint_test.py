#!/usr/bin/env python3
"""Fixture tests for scripts/vodb_lint.py (stdlib unittest only).

Each structural rule gets positive and negative fixtures, an
allow-comment suppression fixture, and — when the libclang bindings are
installed (CI) — an AST-backend pass over the same fixtures driven by a
synthesized compile_commands.json, so both backends are proven to catch
the same defect classes. The legacy line rules get smoke fixtures, and
the CLI fallback / --require-ast contract is pinned.

Run directly:  python3 tests/vodb_lint_test.py
"""

from __future__ import annotations

import contextlib
import io
import json
import os
import shutil
import sys
import tempfile
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "scripts"))

import vodb_lint as V  # noqa: E402


def ast_available() -> bool:
    try:
        V._load_cindex()
        return True
    except V.BackendUnavailable:
        return False


AST_AVAILABLE = ast_available()


class Fixture:
    """A throwaway repo root with src/ fixture files."""

    def __init__(self) -> None:
        self.root = tempfile.mkdtemp(prefix="vodb_lint_fix_")

    def cleanup(self) -> None:
        shutil.rmtree(self.root, ignore_errors=True)

    def write(self, rel: str, text: str) -> str:
        path = os.path.join(self.root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)
        return path

    def write_compdb(self) -> str:
        """Synthesizes build/compile_commands.json over every src/ .cc,
        including the real repo's src/ so common/mutex.h etc. resolve."""
        entries = []
        for dirpath, _, names in os.walk(os.path.join(self.root, "src")):
            for name in sorted(names):
                if not name.endswith(".cc"):
                    continue
                fpath = os.path.join(dirpath, name)
                entries.append({
                    "directory": self.root,
                    "file": fpath,
                    "command": ("c++ -std=c++20 "
                                f"-I{self.root}/src "
                                f"-I{REPO_ROOT}/src "
                                f"-c {fpath}"),
                })
        build = os.path.join(self.root, "build")
        os.makedirs(build, exist_ok=True)
        with open(os.path.join(build, "compile_commands.json"), "w",
                  encoding="utf-8") as f:
            json.dump(entries, f)
        return build


def structural_items(fix: Fixture, backend: str = "token"):
    if backend == "token":
        analyzer = V.TokenAnalyzer(fix.root)
    else:
        analyzer = V.ClangAnalyzer(fix.root, fix.write_compdb())
    facts = analyzer.collect()
    findings = V.Findings()
    with contextlib.redirect_stdout(io.StringIO()):
        V.evaluate_structural(fix.root, facts, findings)
    return findings.items


def rules_of(items) -> set[str]:
    return {rule for _, _, rule, _ in items}


# ---------------------------------------------------------------------------
# Fixture sources
# ---------------------------------------------------------------------------

PRELUDE_H = """#pragma once
#include "common/mutex.h"
#include "common/thread_annotations.h"
"""

UNANNOTATED_H = PRELUDE_H + """
namespace t {
class Counter {
 public:
  void Bump();
  int Get();
 private:
  vod::Mutex mu_;
  int value_ = 0;
};
}  // namespace t
"""

ANNOTATED_H = PRELUDE_H + """
namespace t {
class Counter {
 public:
  void Bump();
  int Get();
 private:
  vod::Mutex mu_;
  int value_ VODB_GUARDED_BY(mu_) = 0;
};
}  // namespace t
"""

ALLOWED_H = PRELUDE_H + """
namespace t {
class Counter {
 public:
  void Bump();
  int Get();
 private:
  vod::Mutex mu_;
  // Synced externally; see design note.
  int value_ = 0;  // vodb-lint: allow(unannotated-shared-state)
};
}  // namespace t
"""

ATOMIC_H = PRELUDE_H + """#include <atomic>
namespace t {
class Counter {
 public:
  void Bump();
  int Get();
 private:
  vod::Mutex mu_;
  std::atomic<int> value_{0};
};
}  // namespace t
"""

COUNTER_CC = """#include "x/counter.h"
namespace t {
void Counter::Bump() {
  vod::MutexLock lock(mu_);
  value_ = value_ + 1;
}
int Counter::Get() {
  vod::MutexLock lock(mu_);
  return value_;
}
}  // namespace t
"""

ATOMIC_CC = """#include "x/counter.h"
namespace t {
void Counter::Bump() {
  vod::MutexLock lock(mu_);
  value_.fetch_add(1);
}
int Counter::Get() {
  vod::MutexLock lock(mu_);
  return value_.load();
}
}  // namespace t
"""

LOCK_ORDER_H = PRELUDE_H + """
namespace t {
class Pair {
 public:
  void Fwd();
  void Rev();
 private:
  vod::Mutex a_;
  vod::Mutex b_;
  int left_ VODB_GUARDED_BY(a_) = 0;
  int right_ VODB_GUARDED_BY(b_) = 0;
};
}  // namespace t
"""

LOCK_ORDER_BAD_CC = """#include "x/pair.h"
namespace t {
void Pair::Fwd() {
  vod::MutexLock la(a_);
  vod::MutexLock lb(b_);
  left_ = right_;
}
void Pair::Rev() {
  vod::MutexLock lb(b_);
  vod::MutexLock la(a_);
  right_ = left_;
}
}  // namespace t
"""

LOCK_ORDER_OK_CC = """#include "x/pair.h"
namespace t {
void Pair::Fwd() {
  vod::MutexLock la(a_);
  vod::MutexLock lb(b_);
  left_ = right_;
}
void Pair::Rev() {
  vod::MutexLock la(a_);
  vod::MutexLock lb(b_);
  right_ = left_;
}
}  // namespace t
"""

HOT_GROWTH_CC = """#include <vector>
#include "obs/profile.h"
namespace t {
std::vector<int> Build(int n) {
  VODB_PROF_SCOPE("t.build");
  std::vector<int> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(i);
  }
  return out;
}
}  // namespace t
"""

HOT_RESERVED_CC = """#include <vector>
#include "obs/profile.h"
namespace t {
std::vector<int> Build(int n) {
  VODB_PROF_SCOPE("t.build");
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(i);
  }
  return out;
}
}  // namespace t
"""

HOT_NEW_CC = """#include <vector>
#include "obs/profile.h"
namespace t {
int Sum(int n) {
  VODB_PROF_SCOPE("t.sum");
  int s = 0;
  for (int i = 0; i < n; ++i) {
    int* p = new int(i);
    s += *p;
    delete p;
  }
  return s;
}
}  // namespace t
"""

COLD_GROWTH_CC = """#include <vector>
namespace t {
std::vector<int> Build(int n) {
  std::vector<int> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(i);
  }
  return out;
}
}  // namespace t
"""

HOT_ALLOWED_CC = """#include <deque>
#include "obs/profile.h"
namespace t {
std::deque<int> Build(int n) {
  VODB_PROF_SCOPE("t.build");
  std::deque<int> out;
  for (int i = 0; i < n; ++i) {
    // deque has no reserve; node growth accepted here.
    out.push_back(i);  // vodb-lint: allow(alloc-in-hot-path)
  }
  return out;
}
}  // namespace t
"""

UNORDERED_OUT_CC = """#include <sstream>
#include <string>
#include <unordered_map>
namespace t {
std::string Dump(const std::unordered_map<int, int>& table) {
  std::ostringstream out;
  for (const auto& kv : table) {
    out << kv.first << "," << kv.second << "\\n";
  }
  return out.str();
}
}  // namespace t
"""

UNORDERED_SUM_CC = """#include <unordered_map>
namespace t {
int Sum(const std::unordered_map<int, int>& table) {
  int s = 0;
  for (const auto& kv : table) {
    s += kv.second;
  }
  return s;
}
}  // namespace t
"""

ORDERED_OUT_CC = """#include <map>
#include <sstream>
#include <string>
namespace t {
std::string Dump(const std::map<int, int>& table) {
  std::ostringstream out;
  for (const auto& kv : table) {
    out << kv.first << "," << kv.second << "\\n";
  }
  return out.str();
}
}  // namespace t
"""

UNITS_BAD_H = """#pragma once
namespace t {
struct Config {
  double timeout_seconds = 5.0;
  int max_requests = 8;
};
void SetBudget(double budget_bits);
double PeakRate();
}  // namespace t
"""

UNITS_BAD_CC = """#include "x/units_bad.h"
namespace t {
void SetBudget(double budget_bits) { (void)budget_bits; }
double PeakRate() { return 0.0; }
}  // namespace t
"""

UNITS_OK_H = """#pragma once
namespace t {
struct Config {
  double alpha = 0.5;
  double load_factor = 0.75;
};
void SetBudget(double fraction);
double PeakRate();
}  // namespace t
"""

UNITS_OK_CC = """#include "x/units_ok.h"
namespace t {
void SetBudget(double fraction) { (void)fraction; }
double PeakRate() { return 0.0; }
}  // namespace t
"""

UNITS_ALLOWED_H = """#pragma once
namespace t {
struct Sampler {
  // Events per abstract tick — a distribution parameter, not bits/second.
  double arrival_rate = 1.0;  // vodb-lint: allow(units-hygiene)
};
}  // namespace t
"""

UNITS_ALLOWED_CC = """#include "x/units_allowed.h"
namespace t {
double Peek(const Sampler& s) { return s.arrival_rate; }
}  // namespace t
"""

UNITS_MULTI_ALLOWED_H = """#pragma once
namespace t {
struct Sampler {
  // Events per abstract tick — a distribution parameter, not bits/second.
  double arrival_rate = 1.0;  // vodb-lint: allow(raw-double-unit, units-hygiene)
};
}  // namespace t
"""

UNORDERED_ALLOWED_CC = """#include <sstream>
#include <string>
#include <unordered_map>
namespace t {
std::string Dump(const std::unordered_map<int, int>& table) {
  std::ostringstream out;
  // Debug-only dump; order is irrelevant to consumers.
  for (const auto& kv : table) {  // vodb-lint: allow(unordered-iteration)
    out << kv.first << "\\n";
  }
  return out.str();
}
}  // namespace t
"""


# ---------------------------------------------------------------------------
# Structural rules, token backend
# ---------------------------------------------------------------------------


class StructuralTokenTest(unittest.TestCase):
    def setUp(self) -> None:
        self.fix = Fixture()
        self.addCleanup(self.fix.cleanup)

    def test_unannotated_shared_state_fires(self) -> None:
        self.fix.write("src/x/counter.h", UNANNOTATED_H)
        self.fix.write("src/x/counter.cc", COUNTER_CC)
        items = structural_items(self.fix)
        self.assertIn("unannotated-shared-state", rules_of(items))
        path, lineno, _, msg = next(
            i for i in items if i[2] == "unannotated-shared-state")
        self.assertEqual(path, os.path.join("src", "x", "counter.h"))
        self.assertIn("value_", msg)
        with open(os.path.join(self.fix.root, path), encoding="utf-8") as f:
            self.assertIn("int value_", f.read().splitlines()[lineno - 1])

    def test_annotated_field_is_clean(self) -> None:
        self.fix.write("src/x/counter.h", ANNOTATED_H)
        self.fix.write("src/x/counter.cc", COUNTER_CC)
        self.assertEqual(structural_items(self.fix), [])

    def test_atomic_field_is_exempt(self) -> None:
        self.fix.write("src/x/counter.h", ATOMIC_H)
        self.fix.write("src/x/counter.cc", ATOMIC_CC)
        self.assertEqual(structural_items(self.fix), [])

    def test_allow_comment_suppresses(self) -> None:
        self.fix.write("src/x/counter.h", ALLOWED_H)
        self.fix.write("src/x/counter.cc", COUNTER_CC)
        self.assertEqual(structural_items(self.fix), [])

    def test_lock_order_cycle_fires(self) -> None:
        self.fix.write("src/x/pair.h", LOCK_ORDER_H)
        self.fix.write("src/x/pair.cc", LOCK_ORDER_BAD_CC)
        items = structural_items(self.fix)
        self.assertIn("lock-order", rules_of(items))

    def test_consistent_lock_order_is_clean(self) -> None:
        self.fix.write("src/x/pair.h", LOCK_ORDER_H)
        self.fix.write("src/x/pair.cc", LOCK_ORDER_OK_CC)
        self.assertEqual(structural_items(self.fix), [])

    def test_hot_loop_growth_fires(self) -> None:
        self.fix.write("src/x/hot.cc", HOT_GROWTH_CC)
        items = structural_items(self.fix)
        self.assertEqual(rules_of(items), {"alloc-in-hot-path"})
        self.assertIn("push_back", items[0][3])

    def test_hot_loop_new_fires(self) -> None:
        self.fix.write("src/x/hot.cc", HOT_NEW_CC)
        items = structural_items(self.fix)
        self.assertEqual(rules_of(items), {"alloc-in-hot-path"})

    def test_reserve_escape_is_clean(self) -> None:
        self.fix.write("src/x/hot.cc", HOT_RESERVED_CC)
        self.assertEqual(structural_items(self.fix), [])

    def test_unprofiled_loop_is_clean(self) -> None:
        self.fix.write("src/x/cold.cc", COLD_GROWTH_CC)
        self.assertEqual(structural_items(self.fix), [])

    def test_hot_loop_allow_comment_suppresses(self) -> None:
        self.fix.write("src/x/hot.cc", HOT_ALLOWED_CC)
        self.assertEqual(structural_items(self.fix), [])

    def test_unordered_iteration_into_output_fires(self) -> None:
        self.fix.write("src/x/dump.cc", UNORDERED_OUT_CC)
        items = structural_items(self.fix)
        self.assertEqual(rules_of(items), {"unordered-iteration"})
        self.assertIn("table", items[0][3])

    def test_unordered_accumulation_is_clean(self) -> None:
        self.fix.write("src/x/sum.cc", UNORDERED_SUM_CC)
        self.assertEqual(structural_items(self.fix), [])

    def test_ordered_map_output_is_clean(self) -> None:
        self.fix.write("src/x/dump.cc", ORDERED_OUT_CC)
        self.assertEqual(structural_items(self.fix), [])

    def test_unordered_allow_comment_suppresses(self) -> None:
        self.fix.write("src/x/dump.cc", UNORDERED_ALLOWED_CC)
        self.assertEqual(structural_items(self.fix), [])

    def test_units_hygiene_fires_on_param_and_field(self) -> None:
        self.fix.write("src/x/units_bad.h", UNITS_BAD_H)
        self.fix.write("src/x/units_bad.cc", UNITS_BAD_CC)
        items = structural_items(self.fix)
        self.assertEqual(rules_of(items), {"units-hygiene"})
        names = {msg.split("`")[3] for _, _, _, msg in items}
        self.assertEqual(names, {"timeout_seconds", "budget_bits"})
        # Findings attach to the header, not the .cc definition.
        self.assertTrue(all(p == os.path.join("src", "x", "units_bad.h")
                            for p, _, _, _ in items))
        # The message names the alias to migrate to.
        by_name = {msg.split("`")[3]: msg for _, _, _, msg in items}
        self.assertIn("vod::Seconds", by_name["timeout_seconds"])
        self.assertIn("vod::Bits", by_name["budget_bits"])

    def test_units_hygiene_ignores_unsuffixed_doubles(self) -> None:
        self.fix.write("src/x/units_ok.h", UNITS_OK_H)
        self.fix.write("src/x/units_ok.cc", UNITS_OK_CC)
        self.assertEqual(structural_items(self.fix), [])

    def test_units_hygiene_allow_comment_suppresses(self) -> None:
        self.fix.write("src/x/units_allowed.h", UNITS_ALLOWED_H)
        self.fix.write("src/x/units_allowed.cc", UNITS_ALLOWED_CC)
        self.assertEqual(structural_items(self.fix), [])

    def test_units_hygiene_comma_list_allow_suppresses(self) -> None:
        # One declaration, two rules: allow(<a>, <b>) silences both.
        self.fix.write("src/x/units_allowed.h", UNITS_MULTI_ALLOWED_H)
        self.fix.write("src/x/units_allowed.cc", UNITS_ALLOWED_CC)
        self.assertEqual(structural_items(self.fix), [])


# ---------------------------------------------------------------------------
# Structural rules, AST backend (CI; skipped where libclang is absent)
# ---------------------------------------------------------------------------


@unittest.skipUnless(AST_AVAILABLE, "libclang (python3-clang) not installed")
class StructuralAstTest(unittest.TestCase):
    def setUp(self) -> None:
        self.fix = Fixture()
        self.addCleanup(self.fix.cleanup)

    def test_unannotated_shared_state_fires(self) -> None:
        self.fix.write("src/x/counter.h", UNANNOTATED_H)
        self.fix.write("src/x/counter.cc", COUNTER_CC)
        items = structural_items(self.fix, backend="ast")
        self.assertIn("unannotated-shared-state", rules_of(items))

    def test_annotated_field_is_clean(self) -> None:
        self.fix.write("src/x/counter.h", ANNOTATED_H)
        self.fix.write("src/x/counter.cc", COUNTER_CC)
        self.assertEqual(structural_items(self.fix, backend="ast"), [])

    def test_lock_order_cycle_fires(self) -> None:
        self.fix.write("src/x/pair.h", LOCK_ORDER_H)
        self.fix.write("src/x/pair.cc", LOCK_ORDER_BAD_CC)
        items = structural_items(self.fix, backend="ast")
        self.assertIn("lock-order", rules_of(items))

    def test_hot_loop_growth_fires_and_reserve_escapes(self) -> None:
        self.fix.write("src/x/hot.cc", HOT_GROWTH_CC)
        self.fix.write("src/x/ok.cc", HOT_RESERVED_CC)
        items = structural_items(self.fix, backend="ast")
        self.assertEqual(rules_of(items), {"alloc-in-hot-path"})
        self.assertTrue(
            all(p == os.path.join("src", "x", "hot.cc")
                for p, _, _, _ in items))

    def test_unordered_iteration_into_output_fires(self) -> None:
        self.fix.write("src/x/dump.cc", UNORDERED_OUT_CC)
        self.fix.write("src/x/sum.cc", UNORDERED_SUM_CC)
        items = structural_items(self.fix, backend="ast")
        self.assertEqual(rules_of(items), {"unordered-iteration"})
        self.assertTrue(
            all(p == os.path.join("src", "x", "dump.cc")
                for p, _, _, _ in items))

    def test_units_hygiene_fires_on_param_and_field(self) -> None:
        self.fix.write("src/x/units_bad.h", UNITS_BAD_H)
        self.fix.write("src/x/units_bad.cc", UNITS_BAD_CC)
        items = structural_items(self.fix, backend="ast")
        self.assertEqual(rules_of(items), {"units-hygiene"})
        names = {msg.split("`")[3] for _, _, _, msg in items}
        self.assertEqual(names, {"timeout_seconds", "budget_bits"})
        # The AST backend knows the exact declaration kind.
        kinds = {msg.split("`")[3]: msg.split("`")[2].strip()
                 for _, _, _, msg in items}
        self.assertEqual(kinds["timeout_seconds"], "field")
        self.assertEqual(kinds["budget_bits"], "parameter")

    def test_units_hygiene_clean_and_allowed(self) -> None:
        self.fix.write("src/x/units_ok.h", UNITS_OK_H)
        self.fix.write("src/x/units_ok.cc", UNITS_OK_CC)
        self.fix.write("src/x/units_allowed.h", UNITS_ALLOWED_H)
        self.fix.write("src/x/units_allowed.cc", UNITS_ALLOWED_CC)
        self.assertEqual(structural_items(self.fix, backend="ast"), [])


# ---------------------------------------------------------------------------
# Legacy line rules (smoke coverage through the same fixture machinery)
# ---------------------------------------------------------------------------


class LineRulesTest(unittest.TestCase):
    def setUp(self) -> None:
        self.fix = Fixture()
        self.addCleanup(self.fix.cleanup)

    def run_checks(self, fn):
        findings = V.Findings()
        with contextlib.redirect_stdout(io.StringIO()):
            fn(self.fix.root, findings)
        return findings.items

    def test_raw_timing_fires_outside_obs(self) -> None:
        self.fix.write("src/x/t.cc",
                       "#include <chrono>\n"
                       "auto Now() { return std::chrono::steady_clock"
                       "::now(); }\n")
        items = self.run_checks(V.check_raw_timing)
        self.assertEqual(rules_of(items), {"raw-timing"})

    def test_raw_timing_allows_obs(self) -> None:
        self.fix.write("src/obs/t.cc",
                       "#include <chrono>\n"
                       "auto Now() { return std::chrono::steady_clock"
                       "::now(); }\n")
        self.assertEqual(self.run_checks(V.check_raw_timing), [])

    def test_check_in_hot_loop_fires(self) -> None:
        self.fix.write("src/sim/hot.cc",
                       "void F(int n) {\n"
                       "  for (int i = 0; i < n; ++i) {\n"
                       "    VOD_CHECK(i >= 0);\n"
                       "  }\n"
                       "}\n")
        items = self.run_checks(V.check_hot_loop_checks)
        self.assertEqual(rules_of(items), {"check-in-hot-loop"})

    def test_dcheck_in_hot_loop_is_clean(self) -> None:
        self.fix.write("src/sim/hot.cc",
                       "void F(int n) {\n"
                       "  for (int i = 0; i < n; ++i) {\n"
                       "    VOD_DCHECK(i >= 0);\n"
                       "  }\n"
                       "}\n")
        self.assertEqual(self.run_checks(V.check_hot_loop_checks), [])

    def test_raw_double_unit_fires(self) -> None:
        self.fix.write("src/x/api.h", "struct P { double deadline; };\n")
        items = self.run_checks(V.check_raw_double_units)
        self.assertEqual(rules_of(items), {"raw-double-unit"})

    def test_unconsumed_status_fires(self) -> None:
        self.fix.write("src/x/s.h", "namespace t {\nStatus Persist();\n}\n")
        self.fix.write("src/x/s.cc",
                       "#include \"x/s.h\"\n"
                       "void F() {\n"
                       "  Persist();\n"
                       "}\n")
        items = self.run_checks(V.check_unconsumed_status)
        self.assertEqual(rules_of(items), {"unconsumed-status"})


# ---------------------------------------------------------------------------
# CLI contract: fallback, --require-ast, exit codes
# ---------------------------------------------------------------------------


class CliTest(unittest.TestCase):
    def setUp(self) -> None:
        self.fix = Fixture()
        self.addCleanup(self.fix.cleanup)

    def run_cli(self, argv) -> int:
        with contextlib.redirect_stdout(io.StringIO()), \
                contextlib.redirect_stderr(io.StringIO()):
            return V.run(argv)

    def test_clean_fixture_exits_zero(self) -> None:
        self.fix.write("src/x/counter.h", ANNOTATED_H)
        self.fix.write("src/x/counter.cc", COUNTER_CC)
        self.assertEqual(self.run_cli([self.fix.root]), 0)

    def test_findings_exit_one(self) -> None:
        self.fix.write("src/x/counter.h", UNANNOTATED_H)
        self.fix.write("src/x/counter.cc", COUNTER_CC)
        self.assertEqual(self.run_cli([self.fix.root]), 1)

    def test_ast_flag_falls_back_without_compdb(self) -> None:
        # No compile_commands.json: --ast degrades to the token backend
        # and still reports the finding.
        self.fix.write("src/x/counter.h", UNANNOTATED_H)
        self.fix.write("src/x/counter.cc", COUNTER_CC)
        self.assertEqual(
            self.run_cli(["--ast", "--compdb",
                          os.path.join(self.fix.root, "nonexistent"),
                          self.fix.root]), 1)

    def test_require_ast_fails_hard_without_compdb(self) -> None:
        # Whether or not libclang is installed, a missing compilation
        # database makes the AST backend unavailable: exit 2, no silent
        # token fallback.
        self.fix.write("src/x/counter.h", ANNOTATED_H)
        self.fix.write("src/x/counter.cc", COUNTER_CC)
        self.assertEqual(
            self.run_cli(["--ast", "--require-ast", "--compdb",
                          os.path.join(self.fix.root, "nonexistent"),
                          self.fix.root]), 2)

    def test_repo_is_clean(self) -> None:
        # The real repository must lint clean with the token backend (the
        # AST pass is enforced separately by the CI lint job).
        self.assertEqual(self.run_cli([REPO_ROOT]), 0)


if __name__ == "__main__":
    unittest.main()
