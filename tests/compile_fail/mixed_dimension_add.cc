// Compile-fail case: adding quantities of different dimensions must be
// rejected. `Bits + Seconds` has no physical meaning; the hidden-friend
// operator+ only accepts two operands of the same Quantity instantiation.
#include "common/units.h"

int main() {
  const vod::Bits b = vod::Megabits(1.0);
  const vod::Seconds t = vod::Seconds(1.0);
  auto nonsense = b + t;  // must not compile
  (void)nonsense;
  return 0;
}
