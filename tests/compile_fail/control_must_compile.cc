// Positive control for the compile-fail harness: exercises the same API
// surface the negative cases abuse, written correctly. If this target ever
// fails to build, the harness's WILL_FAIL results are meaningless (the
// negative cases would "fail" for the wrong reason), so ctest runs it too.
#include "common/units.h"

namespace {
double BufferFill(vod::Bits buffer) { return vod::ToMegabits(buffer); }
double Halve(vod::Seconds t) { return vod::ToSeconds(t) / 2.0; }
}  // namespace

int main() {
  const vod::Bits b = vod::Megabits(1.0);
  const vod::Seconds t = vod::Seconds(2.0);
  const vod::BitsPerSecond r = b / t;
  const vod::Bits back = r * t;
  const double raw = back.value();
  return static_cast<int>(BufferFill(b) + Halve(t) + raw) * 0;
}
