// Compile-fail case: a Quantity must not implicitly decay to double —
// leaving the typed domain requires .value() or a named To* conversion,
// so the unit of every serialized number is visible at the call site.
#include "common/units.h"

int main() {
  const vod::Bits b = vod::Megabits(2.0);
  double raw = b;  // must not compile
  (void)raw;
  return 0;
}
