// Compile-fail case: passing a Seconds where a Bits parameter is expected
// must be rejected — distinct Quantity instantiations never interconvert.
#include "common/units.h"

namespace {
double BufferFill(vod::Bits buffer) { return vod::ToMegabits(buffer); }
}  // namespace

int main() {
  const vod::Seconds t = vod::Minutes(3.0);
  return static_cast<int>(BufferFill(t));  // must not compile
}
