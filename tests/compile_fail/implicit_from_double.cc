// Compile-fail case: a raw double must not implicitly become a Quantity.
// The constructor is explicit, so every entry into the typed domain names
// its unit (Seconds(x), Megabits(x), ...).
#include "common/units.h"

namespace {
double Halve(vod::Seconds t) { return vod::ToSeconds(t) / 2.0; }
}  // namespace

int main() {
  return static_cast<int>(Halve(4.0));  // must not compile
}
