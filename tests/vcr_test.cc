// VCR semantics (Sec. 1 of the paper): fast-forward and rewind are treated
// as new user requests. These tests exercise SubmitSession / VcrReposition /
// Cancel on the facade and CancelRequest / start_position on the simulator.

#include <gtest/gtest.h>

#include "common/units.h"
#include "vod/server.h"

namespace vod {
namespace {

VodServer::Options DynRrOptions() {
  VodServer::Options opt;
  opt.config.method = core::ScheduleMethod::kRoundRobin;
  opt.config.scheme = sim::AllocScheme::kDynamic;
  opt.config.t_log = Minutes(40);
  return opt;
}

TEST(VcrTest, SubmitSessionReturnsUsableId) {
  auto server = VodServer::Create(DynRrOptions());
  ASSERT_TRUE(server.ok());
  auto id = (*server)->SubmitSession(0, Minutes(30));
  ASSERT_TRUE(id.ok());
  EXPECT_NE(*id, kInvalidRequestId);
  EXPECT_EQ((*server)->active_requests(), 1);
}

TEST(VcrTest, SubmitSessionWithStartPosition) {
  auto server = VodServer::Create(DynRrOptions());
  ASSERT_TRUE(server.ok());
  // Start an hour into a two-hour video; only an hour remains.
  auto id = (*server)->SubmitSession(0, Hours(2), /*start=*/Hours(1));
  ASSERT_TRUE(id.ok());
  (*server)->RunToCompletion();
  const sim::SimMetrics& m = (*server)->metrics();
  EXPECT_EQ(m.completed, 1);
  // Completion takes ~1 h of playback, not 2 (viewing clipped to the tail).
  EXPECT_LT((*server)->now(), Hours(1) + Minutes(5));
}

TEST(VcrTest, SubmitBeyondVideoEndRejected) {
  auto server = VodServer::Create(DynRrOptions());
  ASSERT_TRUE(server.ok());
  auto id = (*server)->SubmitSession(0, Minutes(10), /*start=*/Hours(3));
  EXPECT_FALSE(id.ok());
}

TEST(VcrTest, CancelStopsPlayback) {
  auto server = VodServer::Create(DynRrOptions());
  ASSERT_TRUE(server.ok());
  auto id = (*server)->SubmitSession(0, Hours(1));
  ASSERT_TRUE(id.ok());
  (*server)->RunFor(Minutes(5));
  ASSERT_TRUE((*server)->Cancel(*id).ok());
  EXPECT_EQ((*server)->active_requests(), 0);
  EXPECT_EQ((*server)->metrics().cancelled, 1);
  // Cancelling again fails cleanly.
  EXPECT_EQ((*server)->Cancel(*id).code(), StatusCode::kNotFound);
}

TEST(VcrTest, RepositionIsCancelPlusNewRequest) {
  auto server = VodServer::Create(DynRrOptions());
  ASSERT_TRUE(server.ok());
  auto id = (*server)->SubmitSession(0, Hours(2));
  ASSERT_TRUE(id.ok());
  (*server)->RunFor(Minutes(10));

  // Fast-forward to minute 90.
  auto id2 = (*server)->VcrReposition(*id, 0, Minutes(90), Minutes(30));
  ASSERT_TRUE(id2.ok());
  EXPECT_NE(*id2, *id);
  EXPECT_EQ((*server)->active_requests(), 1);

  const sim::SimMetrics& m = (*server)->metrics();
  EXPECT_EQ(m.cancelled, 1);
  EXPECT_EQ(m.arrivals, 2);  // The reposition counts as a new arrival.

  (*server)->RunToCompletion();
  EXPECT_EQ((*server)->metrics().completed, 1);
}

TEST(VcrTest, RepositionPaysInitialLatencyAgain) {
  // The paper's motivation for minimizing initial latency: every VCR action
  // incurs it afresh. Two latency samples must exist after one reposition.
  auto server = VodServer::Create(DynRrOptions());
  ASSERT_TRUE(server.ok());
  auto id = (*server)->SubmitSession(0, Hours(1));
  ASSERT_TRUE(id.ok());
  (*server)->RunFor(Minutes(2));
  auto id2 = (*server)->VcrReposition(*id, 0, Minutes(50), Minutes(10));
  ASSERT_TRUE(id2.ok());
  (*server)->RunToCompletion();
  EXPECT_EQ((*server)->metrics().initial_latency.count(), 2u);
}

TEST(VcrTest, ManyRepositionsKeepSystemConsistent) {
  auto server = VodServer::Create(DynRrOptions());
  ASSERT_TRUE(server.ok());
  auto id = (*server)->SubmitSession(0, Hours(2));
  ASSERT_TRUE(id.ok());
  RequestId current = *id;
  for (int i = 1; i <= 8; ++i) {
    (*server)->RunFor(Minutes(1));
    auto next = (*server)->VcrReposition(current, i % 6,
                                         Minutes(5 + 10 * (i % 3)),
                                         Minutes(20));
    ASSERT_TRUE(next.ok()) << "hop " << i;
    current = *next;
  }
  (*server)->RunToCompletion();
  const sim::SimMetrics& m = (*server)->metrics();
  EXPECT_EQ(m.cancelled, 8);
  EXPECT_EQ(m.completed, 1);
  EXPECT_EQ(m.starvation_events, 0);
  EXPECT_EQ((*server)->active_requests(), 0);
}

}  // namespace
}  // namespace vod
