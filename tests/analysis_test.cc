#include "vod/analysis.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "core/closed_form.h"
#include "core/static_alloc.h"

namespace vod {
namespace {

AnalysisConfig RrConfig() {
  AnalysisConfig cfg;
  cfg.method = core::ScheduleMethod::kRoundRobin;
  cfg.k = 4;
  return cfg;
}

TEST(AnalysisTest, BufferSizeCurveShape) {
  auto curve = BufferSizeCurve(RrConfig());
  ASSERT_TRUE(curve.ok());
  ASSERT_EQ(curve->size(), 79u);
  // Static is flat at BS(N); dynamic climbs monotonically to meet it.
  const double flat = curve->front().stat;
  for (const auto& pt : *curve) {
    EXPECT_DOUBLE_EQ(pt.stat, flat);
    EXPECT_LE(pt.dynamic, flat * (1 + 1e-12));
  }
  EXPECT_LT(curve->front().dynamic, flat / 100);
  EXPECT_NEAR(curve->back().dynamic, flat, flat * 1e-9);
}

TEST(AnalysisTest, BufferSizeCurveSweepUsesPerNDl) {
  AnalysisConfig cfg;
  cfg.method = core::ScheduleMethod::kSweep;
  cfg.k = 3;
  auto curve = BufferSizeCurve(cfg);
  ASSERT_TRUE(curve.ok());
  // The Sweep static buffer (DL at γ(Cyln/79)) is much smaller than the
  // Round-Robin one (full-stroke DL).
  auto rr = BufferSizeCurve(RrConfig());
  ASSERT_TRUE(rr.ok());
  EXPECT_LT(curve->front().stat, rr->front().stat);
}

TEST(AnalysisTest, WorstLatencyCurveShape) {
  auto curve = WorstLatencyCurve(RrConfig());
  ASSERT_TRUE(curve.ok());
  for (const auto& pt : *curve) {
    // Once n + k reaches N the dynamic size equals the fully loaded BS(N),
    // so strict improvement holds below that point and equality at/after.
    if (pt.n < 79 - RrConfig().k) {
      EXPECT_LT(pt.dynamic, pt.stat) << "n=" << pt.n;
    } else {
      EXPECT_LE(pt.dynamic, pt.stat * (1 + 1e-12)) << "n=" << pt.n;
    }
  }
  // Paper Fig. 10a: static RR worst latency ≈ 1.76 s flat.
  EXPECT_NEAR(curve->front().stat, 1.76, 0.02);
  EXPECT_LT(curve->front().dynamic, 0.1);
}

TEST(AnalysisTest, MemoryCurveShape) {
  for (core::ScheduleMethod m : {core::ScheduleMethod::kRoundRobin,
                                 core::ScheduleMethod::kSweep,
                                 core::ScheduleMethod::kGss}) {
    AnalysisConfig cfg;
    cfg.method = m;
    cfg.k = m == core::ScheduleMethod::kRoundRobin ? 4 : 3;
    auto curve = MemoryRequirementCurve(cfg);
    ASSERT_TRUE(curve.ok());
    for (const auto& pt : *curve) {
      if (pt.n < 65) {
        EXPECT_LT(pt.dynamic, pt.stat)
            << core::ScheduleMethodName(m) << " n=" << pt.n;
      } else {
        // Near saturation the schemes meet. Sweep*'s dynamic buffers use
        // DL(n) = γ(Cyln/n) + θ (Table 2) which slightly exceeds the
        // static scheme's DL(N) for n < N, so its memory can top the
        // static value by a fraction of a percent there.
        EXPECT_LE(pt.dynamic, pt.stat * 1.01)
            << core::ScheduleMethodName(m) << " n=" << pt.n;
      }
    }
    EXPECT_NEAR(curve->back().dynamic / curve->back().stat, 1.0, 1e-6)
        << core::ScheduleMethodName(m);
  }
}

TEST(AnalysisTest, CapacityCurveMonotoneInMemory) {
  auto curve = CapacityVsMemoryCurve(RrConfig(), /*disk_count=*/10,
                                     /*disk_theta=*/0.5,
                                     {Gibibytes(1), Gibibytes(3),
                                      Gibibytes(6), Gibibytes(11)});
  ASSERT_TRUE(curve.ok());
  int prev_s = 0, prev_d = 0;
  for (const auto& pt : *curve) {
    EXPECT_GE(pt.stat, prev_s);
    EXPECT_GE(pt.dynamic, prev_d);
    EXPECT_GE(pt.dynamic, pt.stat);  // Dynamic always at least as many.
    prev_s = pt.stat;
    prev_d = pt.dynamic;
  }
}

TEST(AnalysisTest, CapacityConvergesWithAbundantMemory) {
  // Fig. 13: with ~11 GB both schemes hit the disk-bound ceiling.
  auto curve = CapacityVsMemoryCurve(RrConfig(), 10, 1.0, {Gibibytes(30)});
  ASSERT_TRUE(curve.ok());
  EXPECT_EQ(curve->front().stat, curve->front().dynamic);
  EXPECT_EQ(curve->front().dynamic, 790);  // 10 disks × N = 79.
}

TEST(AnalysisTest, CapacityImprovementInPaperBallpark) {
  // Table 5: averaged over 1–11 GB the dynamic/static ratio is ~2.4–3.3.
  auto curve = CapacityVsMemoryCurve(RrConfig(), 10, 0.5,
                                     {Gibibytes(1), Gibibytes(2),
                                      Gibibytes(4), Gibibytes(6),
                                      Gibibytes(8)});
  ASSERT_TRUE(curve.ok());
  double ratio_sum = 0;
  for (const auto& pt : *curve) {
    ASSERT_GT(pt.stat, 0);
    ratio_sum += static_cast<double>(pt.dynamic) / pt.stat;
  }
  const double mean_ratio = ratio_sum / curve->size();
  EXPECT_GT(mean_ratio, 1.5);
  EXPECT_LT(mean_ratio, 6.0);
}

TEST(AnalysisTest, SkewedDiskLoadReducesCapacity) {
  // With θ = 0 one disk saturates early; the same memory serves fewer
  // total viewers than under a balanced load.
  auto skewed = CapacityVsMemoryCurve(RrConfig(), 10, 0.0, {Gibibytes(6)});
  auto flat = CapacityVsMemoryCurve(RrConfig(), 10, 1.0, {Gibibytes(6)});
  ASSERT_TRUE(skewed.ok());
  ASSERT_TRUE(flat.ok());
  EXPECT_LE(skewed->front().dynamic, flat->front().dynamic);
}

TEST(AnalysisTest, CapacityValidates) {
  EXPECT_FALSE(CapacityVsMemoryCurve(RrConfig(), 0, 0.5, {Gibibytes(1)}).ok());
}

}  // namespace
}  // namespace vod
