// Golden-metrics regression suite: pins the reproduced paper numbers for
// all 3 scheduling methods × 2 allocation schemes from fixed-seed RunDay
// runs, with tolerance bands, so performance refactors (parallel runners,
// scheduler rewrites, allocator caching, ...) cannot silently change the
// figures the repo claims to reproduce.
//
// The scenario is a scaled-down Fig. 11-style day (4 h, ~120 arrivals,
// θ = 0.5, paper T_log, α = 1, seed 1): partial load — the regime the
// paper's dynamic-scheme claims are about — small enough for CI, busy
// enough to exercise admission, estimation, and memory tracking.
//
// Regenerating after an *intentional* behaviour change:
//   VODB_GOLDEN_DUMP=1 ./build/tests/golden_metrics_test
// prints a replacement kGolden table; paste it below and justify the change
// in the commit message.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "common/units.h"
#include "exp/day_run.h"
#include "obs/event_tracer.h"
#include "obs/metrics_registry.h"
#include "obs/postmortem.h"
#include "obs/timeseries_recorder.h"
#include "sim/metrics.h"

namespace vod::exp {
namespace {

struct GoldenRow {
  core::ScheduleMethod method;
  sim::AllocScheme scheme;
  long admitted;           ///< Exact (integer outcome of a fixed-seed day).
  double avg_latency_s;    ///< initial_latency.mean(), ±2 % relative.
  double success_ratio;    ///< Estimation success, ±0.01 absolute.
  double peak_memory_mb;   ///< memory_usage peak, ±2 % relative.
};

// Golden values measured at the seed of this suite (fixed-seed runs are
// deterministic; the bands absorb libm/platform noise only).
constexpr GoldenRow kGolden[] = {
    {core::ScheduleMethod::kRoundRobin, sim::AllocScheme::kStatic,
     110, 1.902953, 0.397326, 639.402085},
    {core::ScheduleMethod::kRoundRobin, sim::AllocScheme::kDynamic,
     110, 0.094357, 1.000000, 80.886119},
    {core::ScheduleMethod::kSweep, sim::AllocScheme::kStatic,
     110, 43.929769, 0.621075, 916.291913},
    {core::ScheduleMethod::kSweep, sim::AllocScheme::kDynamic,
     110, 1.561462, 1.000000, 62.305418},
    {core::ScheduleMethod::kGss, sim::AllocScheme::kStatic,
     110, 8.285000, 0.536635, 1375.252030},
    {core::ScheduleMethod::kGss, sim::AllocScheme::kDynamic,
     110, 0.457367, 1.000000, 50.331293},
};

DayRunConfig GoldenConfig(core::ScheduleMethod method,
                          sim::AllocScheme scheme) {
  DayRunConfig cfg;
  cfg.method = method;
  cfg.scheme = scheme;
  cfg.t_log = PaperTLog(method);
  cfg.alpha = 1;
  cfg.theta = 0.5;
  cfg.duration = Hours(4);
  cfg.total_arrivals = 120;
  cfg.seed = 1;
  return cfg;
}

TEST(GoldenMetricsTest, AllMethodSchemeCombinationsMatchGoldenValues) {
  const bool dump = std::getenv("VODB_GOLDEN_DUMP") != nullptr;
  for (const GoldenRow& golden : kGolden) {
    const DayRunConfig cfg = GoldenConfig(golden.method, golden.scheme);
    const sim::SimMetrics m = RunDay(cfg);
    const double peak_mb = ToMebibytes(Bits(m.memory_usage.max_value()));
    if (dump) {
      const char* method_token =
          golden.method == core::ScheduleMethod::kRoundRobin ? "kRoundRobin"
          : golden.method == core::ScheduleMethod::kSweep    ? "kSweep"
                                                             : "kGss";
      std::printf("    {core::ScheduleMethod::%s, sim::AllocScheme::k%s,\n"
                  "     %ld, %.6f, %.6f, %.6f},  // starvation=%ld\n",
                  method_token,
                  golden.scheme == sim::AllocScheme::kStatic ? "Static"
                                                             : "Dynamic",
                  m.admitted, m.initial_latency.mean(),
                  m.SuccessProbability(), peak_mb, m.starvation_events);
      continue;
    }
    SCOPED_TRACE(std::string(core::ScheduleMethodName(golden.method)) + "/" +
                 std::string(sim::AllocSchemeName(golden.scheme)));
    EXPECT_EQ(m.admitted, golden.admitted);
    EXPECT_NEAR(m.initial_latency.mean(), golden.avg_latency_s,
                0.02 * golden.avg_latency_s);
    EXPECT_NEAR(m.SuccessProbability(), golden.success_ratio, 0.01);
    EXPECT_NEAR(peak_mb, golden.peak_memory_mb, 0.02 * golden.peak_memory_mb);
    // Structural sanity riding along: starvation stays within the
    // documented sub-percent physical-model residual, and the dynamic
    // scheme's estimation machinery actually ran.
    EXPECT_LE(m.starvation_events, std::max<long>(5, m.services / 100));
    if (golden.scheme == sim::AllocScheme::kDynamic) {
      EXPECT_GT(m.estimation_checks, 0);
    }
  }
}

/// Attaching an event tracer must not change a single metric: the tracer is
/// a pure observer whether the build compiles emission hooks in
/// (-DVODB_TRACE=ON) or not. Exact equality, not bands — any drift means an
/// emission site leaked into simulation behaviour, which would also break
/// the golden CSVs' byte-stability guarantee.
TEST(GoldenMetricsTest, TracerIsPureObserver) {
  const DayRunConfig base =
      GoldenConfig(core::ScheduleMethod::kSweep, sim::AllocScheme::kDynamic);
  const sim::SimMetrics plain = RunDay(base);

  obs::EventTracer tracer;
  DayRunConfig traced_cfg = base;
  traced_cfg.tracer = &tracer;
  const sim::SimMetrics traced = RunDay(traced_cfg);

  EXPECT_EQ(plain.arrivals, traced.arrivals);
  EXPECT_EQ(plain.admitted, traced.admitted);
  EXPECT_EQ(plain.rejected, traced.rejected);
  EXPECT_EQ(plain.rejected_capacity, traced.rejected_capacity);
  EXPECT_EQ(plain.rejected_memory, traced.rejected_memory);
  EXPECT_EQ(plain.rejected_invalid, traced.rejected_invalid);
  EXPECT_EQ(plain.deferred_admissions, traced.deferred_admissions);
  EXPECT_EQ(plain.completed, traced.completed);
  EXPECT_EQ(plain.services, traced.services);
  EXPECT_EQ(plain.starvation_events, traced.starvation_events);
  EXPECT_EQ(plain.initial_latency.mean(), traced.initial_latency.mean());
  EXPECT_EQ(plain.memory_usage.max_value(), traced.memory_usage.max_value());
  EXPECT_EQ(plain.allocations.size(), traced.allocations.size());

  if (obs::kTraceHooksCompiledIn) {
    // A busy 4 h day must have produced events (admits + services at least).
    EXPECT_GT(tracer.total_emitted(), 0u);
  } else {
    EXPECT_EQ(tracer.total_emitted(), 0u);
  }
}

/// The legacy binary-heap queue is the reference the calendar queue is
/// differentially tested against: both pop the strict (time, seq) order,
/// so selecting it must not move a single metric. Exact equality, not
/// bands — the golden table above is pinned with the default (calendar)
/// queue, and this test is what lets the legacy configuration keep
/// claiming those same numbers.
TEST(GoldenMetricsTest, LegacyBinaryHeapQueueIsBitIdentical) {
  const DayRunConfig base =
      GoldenConfig(core::ScheduleMethod::kGss, sim::AllocScheme::kDynamic);
  ASSERT_EQ(base.event_queue, sim::EventQueueKind::kCalendar);
  const sim::SimMetrics calendar = RunDay(base);

  DayRunConfig legacy_cfg = base;
  legacy_cfg.event_queue = sim::EventQueueKind::kBinaryHeap;
  const sim::SimMetrics legacy = RunDay(legacy_cfg);

  EXPECT_EQ(calendar.arrivals, legacy.arrivals);
  EXPECT_EQ(calendar.admitted, legacy.admitted);
  EXPECT_EQ(calendar.rejected, legacy.rejected);
  EXPECT_EQ(calendar.rejected_capacity, legacy.rejected_capacity);
  EXPECT_EQ(calendar.rejected_memory, legacy.rejected_memory);
  EXPECT_EQ(calendar.rejected_invalid, legacy.rejected_invalid);
  EXPECT_EQ(calendar.deferred_admissions, legacy.deferred_admissions);
  EXPECT_EQ(calendar.completed, legacy.completed);
  EXPECT_EQ(calendar.services, legacy.services);
  EXPECT_EQ(calendar.starvation_events, legacy.starvation_events);
  EXPECT_EQ(calendar.initial_latency.mean(), legacy.initial_latency.mean());
  EXPECT_EQ(calendar.initial_latency.max(), legacy.initial_latency.max());
  EXPECT_EQ(calendar.memory_usage.max_value(),
            legacy.memory_usage.max_value());
  EXPECT_EQ(calendar.disk_busy_time, legacy.disk_busy_time);
  EXPECT_EQ(calendar.allocations.size(), legacy.allocations.size());
  for (std::size_t i = 0; i < std::min(calendar.allocations.size(),
                                       legacy.allocations.size());
       ++i) {
    EXPECT_EQ(ToSeconds(calendar.allocations[i].time),
              ToSeconds(legacy.allocations[i].time));
    EXPECT_EQ(ToBits(calendar.allocations[i].buffer_size),
              ToBits(legacy.allocations[i].buffer_size));
  }
}

/// `rejected` is documented as the exact sum of the per-cause counters.
TEST(GoldenMetricsTest, RejectionBreakdownSumsToTotal) {
  for (const GoldenRow& golden : kGolden) {
    const DayRunConfig cfg = GoldenConfig(golden.method, golden.scheme);
    const sim::SimMetrics m = RunDay(cfg);
    SCOPED_TRACE(std::string(core::ScheduleMethodName(golden.method)) + "/" +
                 std::string(sim::AllocSchemeName(golden.scheme)));
    EXPECT_EQ(m.rejected,
              m.rejected_capacity + m.rejected_memory + m.rejected_invalid);
  }
}

/// The full observer stack at once — tracer, postmortem black box (with a
/// live hiccup threshold), and sim-time telemetry recorder — must also
/// leave every metric untouched. Exact equality again: this is the
/// "all-observers" guarantee the bench flags (--trace --spans --timeseries
/// --postmortem-dir) rely on for byte-identical stdout.
TEST(GoldenMetricsTest, AllObserversTogetherArePureObservers) {
  const DayRunConfig base =
      GoldenConfig(core::ScheduleMethod::kGss, sim::AllocScheme::kDynamic);
  const sim::SimMetrics plain = RunDay(base);

  obs::EventTracer tracer;
  obs::TimeseriesRecorder recorder;
  obs::PostmortemSink::Options popt;
  popt.dir = ::testing::TempDir();
  popt.hiccup_threshold = 1;  // Armed, but a fault-free run never fires it.
  obs::PostmortemSink sink(popt);
  sink.set_tracer(&tracer);

  DayRunConfig observed_cfg = base;
  observed_cfg.tracer = &tracer;
  observed_cfg.timeseries = &recorder;
  observed_cfg.postmortem = &sink;
  const sim::SimMetrics observed = RunDay(observed_cfg);

  EXPECT_EQ(plain.arrivals, observed.arrivals);
  EXPECT_EQ(plain.admitted, observed.admitted);
  EXPECT_EQ(plain.rejected, observed.rejected);
  EXPECT_EQ(plain.deferred_admissions, observed.deferred_admissions);
  EXPECT_EQ(plain.completed, observed.completed);
  EXPECT_EQ(plain.cancelled, observed.cancelled);
  EXPECT_EQ(plain.services, observed.services);
  EXPECT_EQ(plain.starvation_events, observed.starvation_events);
  EXPECT_EQ(plain.initial_latency.mean(), observed.initial_latency.mean());
  EXPECT_EQ(plain.initial_latency.max(), observed.initial_latency.max());
  EXPECT_EQ(plain.memory_usage.max_value(), observed.memory_usage.max_value());
  EXPECT_EQ(plain.disk_busy_time, observed.disk_busy_time);
  EXPECT_EQ(plain.estimated_k.mean(), observed.estimated_k.mean());
  EXPECT_EQ(plain.buffer_bits_allocated, observed.buffer_bits_allocated);
  EXPECT_EQ(plain.buffer_bits_released, observed.buffer_bits_released);
  EXPECT_EQ(plain.allocations.size(), observed.allocations.size());

  // The observers actually observed: telemetry sampled the day at its 60 s
  // grain (one point per bucket, strictly increasing times; the run drains
  // past the nominal duration, so only a lower bound is pinned), and the
  // black box stayed silent (nothing anomalous).
  EXPECT_GT(recorder.points().size(), 100u);
  for (std::size_t i = 1; i < recorder.points().size(); ++i) {
    EXPECT_LT(recorder.points()[i - 1].time, recorder.points()[i].time);
  }
  EXPECT_FALSE(sink.triggered());
}

/// Lockstep guard, registry side: publishing a SimMetrics must register
/// exactly this name set. The static_assert on sizeof(SimMetrics) in
/// sim/metrics.cc forces whoever grows the struct to extend PublishTo; this
/// test forces the same for the published-name contract that dashboards and
/// the --metrics artifact consumers key on.
TEST(GoldenMetricsTest, PublishToRegistersTheExactDocumentedNameSet) {
  const DayRunConfig cfg =
      GoldenConfig(core::ScheduleMethod::kSweep, sim::AllocScheme::kDynamic);
  const sim::SimMetrics m = RunDay(cfg);
  obs::MetricsRegistry registry;
  m.PublishTo(registry, "test");

  const char* counters[] = {
      "arrivals", "admitted", "rejected", "rejected_capacity",
      "rejected_memory", "rejected_invalid", "deferred_admissions",
      "completed", "cancelled", "starvation_events", "services",
      "fault.read_faults", "fault.read_retries", "fault.hiccups",
      "fault.degraded_entries", "fault.degraded_streams", "fault.recoveries",
      "fault.delayed_reads", "estimation_checks", "estimation_successes",
  };
  const char* histograms[] = {
      "alloc.buffer_mbit", "alloc.usage_period_s", "alloc.k",
      "run.initial_latency_mean_s", "run.peak_memory_mb",
      "run.peak_concurrency", "run.buffer_gbit_allocated",
      "run.buffer_gbit_released",
  };
  const std::string json = registry.ToJson();
  std::size_t published = 0;
  for (const char* name : counters) {
    EXPECT_NE(json.find("\"test." + std::string(name) + "\""),
              std::string::npos)
        << name;
    ++published;
  }
  for (const char* name : histograms) {
    EXPECT_NE(json.find("\"test." + std::string(name) + "\""),
              std::string::npos)
        << name;
    ++published;
  }
  // And nothing else: every published key is in the documented set.
  std::size_t found = 0;
  for (std::size_t pos = json.find("\"test."); pos != std::string::npos;
       pos = json.find("\"test.", pos + 1)) {
    ++found;
  }
  EXPECT_EQ(found, published);

  // The new ledger histograms carry the run's real values (not just
  // registered-but-empty).
  const sim::SimMetrics zero;
  EXPECT_GT(ToBits(m.buffer_bits_allocated), 0.0);
  EXPECT_EQ(ToBits(zero.buffer_bits_allocated), 0.0);
}

/// The golden scenario itself must be deterministic, or the bands above
/// would pin noise instead of behaviour.
TEST(GoldenMetricsTest, GoldenScenarioIsDeterministic) {
  const DayRunConfig cfg =
      GoldenConfig(core::ScheduleMethod::kGss, sim::AllocScheme::kDynamic);
  const sim::SimMetrics a = RunDay(cfg);
  const sim::SimMetrics b = RunDay(cfg);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.services, b.services);
  EXPECT_EQ(a.initial_latency.mean(), b.initial_latency.mean());
  EXPECT_EQ(a.memory_usage.max_value(), b.memory_usage.max_value());
}

}  // namespace
}  // namespace vod::exp
