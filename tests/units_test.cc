// Unit tests for the strong-typed quantity layer (common/units.h):
// arithmetic closure over the dimension algebra, conversion round-trips,
// comparisons, and compile-time guarantees as static_asserts. The cases
// that must NOT compile live in tests/compile_fail/ and are exercised by
// ctest via inverted build targets.

#include "common/units.h"

#include <cmath>
#include <type_traits>

#include "gtest/gtest.h"

namespace vod {
namespace {

// ---------------------------------------------------------------------------
// Compile-time properties. Zero-overhead claim: a Quantity is exactly one
// double, trivially copyable, and all arithmetic is constexpr.

static_assert(sizeof(Bits) == sizeof(double));
static_assert(sizeof(Seconds) == sizeof(double));
static_assert(sizeof(BitsPerSecond) == sizeof(double));
static_assert(std::is_trivially_copyable_v<Bits>);
static_assert(std::is_trivially_destructible_v<Seconds>);

// Construction from double is explicit in both directions: no implicit
// double -> Quantity, no implicit Quantity -> double.
static_assert(!std::is_convertible_v<double, Bits>);
static_assert(!std::is_convertible_v<Bits, double>);
static_assert(!std::is_convertible_v<double, Seconds>);
static_assert(!std::is_convertible_v<Seconds, double>);
// Distinct dimensions never interconvert.
static_assert(!std::is_convertible_v<Bits, Seconds>);
static_assert(!std::is_convertible_v<Seconds, Bits>);
static_assert(!std::is_convertible_v<BitsPerSecond, Bits>);

// The dimension algebra resolves at compile time.
static_assert(std::is_same_v<decltype(Bits(1) / Seconds(1)), BitsPerSecond>);
static_assert(std::is_same_v<decltype(Mbps(1) * Seconds(1)), Bits>);
static_assert(std::is_same_v<decltype(Seconds(1) * Mbps(1)), Bits>);
static_assert(std::is_same_v<decltype(Bits(1) / Mbps(1)), Seconds>);
// Fully-cancelled ratios decay to plain double.
static_assert(std::is_same_v<decltype(Bits(2) / Bits(1)), double>);
static_assert(std::is_same_v<decltype(Seconds(2) / Seconds(1)), double>);
static_assert(std::is_same_v<decltype(Mbps(2) / Mbps(1)), double>);
// The count axis stays separate from the data axis.
static_assert(
    std::is_same_v<decltype(Requests(1) / Seconds(1)), RequestsPerSecond>);
static_assert(
    std::is_same_v<decltype(RequestsPerSecond(1) * Seconds(1)), Requests>);
static_assert(!std::is_same_v<RequestsPerSecond, BitsPerSecond>);

// Constexpr evaluation all the way through a mixed expression.
static_assert(ToBits(Mbps(4.0) * Seconds(2.0)) == 8e6);
static_assert((Megabits(10) / Mbps(2)).value() == 5.0);

TEST(UnitsTest, ArithmeticClosure) {
  const Bits b = Megabits(6.0);
  const Seconds t = Seconds(3.0);
  const BitsPerSecond r = b / t;
  EXPECT_DOUBLE_EQ(ToMbps(r), 2.0);

  // rate * time round-trips back to the original size, both orders.
  EXPECT_DOUBLE_EQ(ToBits(r * t), ToBits(b));
  EXPECT_DOUBLE_EQ(ToBits(t * r), ToBits(b));

  // size / rate recovers the time.
  EXPECT_DOUBLE_EQ(ToSeconds(b / r), ToSeconds(t));

  // Same-dimension add/subtract and scalar scaling.
  EXPECT_DOUBLE_EQ(ToBits(b + b), 12e6);
  EXPECT_DOUBLE_EQ(ToBits(b - Megabits(2.0)), 4e6);
  EXPECT_DOUBLE_EQ(ToBits(b * 2.0), 12e6);
  EXPECT_DOUBLE_EQ(ToBits(0.5 * b), 3e6);
  EXPECT_DOUBLE_EQ(ToBits(b / 3.0), 2e6);
  EXPECT_DOUBLE_EQ(ToBits(-b), -6e6);

  // Dimensionless ratio feeds plain math directly.
  const double ratio = b / Megabits(2.0);
  EXPECT_DOUBLE_EQ(ratio, 3.0);
  EXPECT_DOUBLE_EQ(std::pow(ratio, 2.0), 9.0);
}

TEST(UnitsTest, CompoundAssignment) {
  Bits acc = Bits(0.0);
  acc += Megabits(1.0);
  acc += Megabits(2.0);
  acc -= Megabits(0.5);
  EXPECT_DOUBLE_EQ(ToMegabits(acc), 2.5);
  acc *= 2.0;
  EXPECT_DOUBLE_EQ(ToMegabits(acc), 5.0);
  acc /= 5.0;
  EXPECT_DOUBLE_EQ(ToMegabits(acc), 1.0);
}

TEST(UnitsTest, ScalarInversion) {
  // 1 / Seconds is a frequency (Dim<0,-1,0>); multiplying by Seconds
  // cancels back to a plain double.
  const auto freq = 1.0 / Seconds(0.25);
  EXPECT_DOUBLE_EQ(freq * Seconds(0.25), 1.0);
  EXPECT_DOUBLE_EQ(freq.value(), 4.0);
}

TEST(UnitsTest, ConversionRoundTrips) {
  // Decimal (SI) bit helpers.
  EXPECT_DOUBLE_EQ(ToMegabits(Megabits(1.5)), 1.5);
  EXPECT_DOUBLE_EQ(ToBits(Gigabits(2.0)), 2e9);
  EXPECT_DOUBLE_EQ(ToMbps(Mbps(1.5)), 1.5);
  EXPECT_DOUBLE_EQ(ToBytes(Bytes(123.0)), 123.0);

  // Binary (IEC) byte helpers: 1 KiB = 1024 B, 1 MiB = 2^20 B, 1 GiB = 2^30 B.
  EXPECT_DOUBLE_EQ(ToBits(Kibibytes(1.0)), 8.0 * 1024.0);
  EXPECT_DOUBLE_EQ(ToBits(Mebibytes(1.0)), 8.0 * 1048576.0);
  EXPECT_DOUBLE_EQ(ToBits(Gibibytes(1.0)), 8.0 * 1073741824.0);
  EXPECT_DOUBLE_EQ(ToMebibytes(Mebibytes(3.25)), 3.25);
  EXPECT_DOUBLE_EQ(ToGibibytes(Gibibytes(0.5)), 0.5);
  // Cross-family sanity: one binary MiB holds more bits than one decimal
  // megabyte's worth (8e6).
  EXPECT_GT(Mebibytes(1.0), Megabits(8.0));

  // Time helpers.
  EXPECT_DOUBLE_EQ(ToMilliseconds(Milliseconds(250.0)), 250.0);
  EXPECT_DOUBLE_EQ(ToSeconds(Minutes(2.0)), 120.0);
  EXPECT_DOUBLE_EQ(ToMinutes(Hours(1.5)), 90.0);
  EXPECT_DOUBLE_EQ(ToHours(Hours(24.0)), 24.0);
}

TEST(UnitsTest, Comparisons) {
  EXPECT_LT(Seconds(1.0), Seconds(2.0));
  EXPECT_LE(Seconds(2.0), Seconds(2.0));
  EXPECT_GT(Megabits(3.0), Megabits(2.0));
  EXPECT_GE(Bits(0.0), Bits(0.0));
  EXPECT_EQ(Minutes(1.0), Seconds(60.0));
  EXPECT_NE(Bits(1.0), Bits(2.0));

  // Infinity behaves as the ordering's top element.
  EXPECT_GT(Seconds::Infinity(), Hours(1e9));
  EXPECT_LT(-Seconds::Infinity(), Seconds(0.0));
  EXPECT_TRUE(std::isinf(Seconds::Infinity().value()));
}

TEST(UnitsTest, AbsAndDefaults) {
  EXPECT_DOUBLE_EQ(ToBits(Abs(Bits(-4.0))), 4.0);
  EXPECT_DOUBLE_EQ(ToBits(Abs(Bits(4.0))), 4.0);
  EXPECT_DOUBLE_EQ(ToSeconds(Abs(Seconds(-0.25))), 0.25);
  // Default construction is zero, so accumulators start clean.
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds{}), 0.0);
  EXPECT_DOUBLE_EQ(ToBits(Bits{}), 0.0);
}

}  // namespace
}  // namespace vod
