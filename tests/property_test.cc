// Cross-cutting randomized property tests: scheduler bookkeeping under
// random churn, simulator determinism, and closed-form behaviour across
// random parameterizations.

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "common/units.h"
#include "core/closed_form.h"
#include "core/recurrence.h"
#include "core/static_alloc.h"
#include "fault/fault_spec.h"
#include "fault/injector.h"
#include "sched/gss.h"
#include "sched/round_robin.h"
#include "sched/sweep.h"
#include "sim/rng.h"
#include "sim/vod_simulator.h"
#include "sim/workload.h"

namespace vod {
namespace {

/// Minimal context for churn tests: every request always needs service.
class ChurnContext : public sched::SchedulerContext {
 public:
  void Track(RequestId id, double cylinder) { cylinders_[id] = cylinder; }
  void Untrack(RequestId id) { cylinders_.erase(id); }

  Seconds BufferDeadline(RequestId) const override { return Seconds(1e9); }
  bool NeverServiced(RequestId) const override { return false; }
  double CurrentCylinder(RequestId id) const override {
    return cylinders_.at(id);
  }
  bool NeedsService(RequestId) const override { return true; }
  Seconds WorstServiceTime(RequestId) const override { return Seconds(1.0); }
  Seconds NewcomerReserve() const override { return Seconds(1.0); }

 private:
  std::map<RequestId, double> cylinders_;
};

/// Random add/remove/service churn must keep every scheduler's sequence a
/// permutation of the live, needy requests, and never crash.
template <typename Scheduler>
void RunChurn(Scheduler&& sched, std::uint64_t seed) {
  ChurnContext ctx;
  sim::Rng rng(seed);
  std::set<RequestId> live;
  RequestId next = 1;
  for (int step = 0; step < 400; ++step) {
    const Seconds now = Seconds(step * 1.0);
    const std::uint32_t action = rng.NextBelow(10);
    if (action < 4 || live.empty()) {
      const RequestId id = next++;
      ctx.Track(id, rng.Uniform(0, 6000));
      sched.Add(id, now);
      live.insert(id);
    } else if (action < 6) {
      // Remove a random live request.
      auto it = live.begin();
      std::advance(it, rng.NextBelow(static_cast<std::uint32_t>(live.size())));
      sched.Remove(*it);
      ctx.Untrack(*it);
      live.erase(it);
    } else {
      // Service whatever the scheduler picks next.
      auto seq = sched.ServiceSequence(ctx, now);
      std::set<RequestId> seen;
      for (RequestId id : seq) {
        ASSERT_TRUE(live.count(id)) << "step " << step;
        ASSERT_TRUE(seen.insert(id).second) << "duplicate in sequence";
      }
      if (!seq.empty()) sched.OnServiceComplete(seq.front(), now);
    }
  }
}

TEST(SchedulerChurnTest, RoundRobinSurvivesRandomChurn) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    sched::RoundRobinScheduler rr;
    RunChurn(rr, seed);
  }
}

TEST(SchedulerChurnTest, SweepSurvivesRandomChurn) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    sched::SweepScheduler sw;
    RunChurn(sw, seed);
  }
}

TEST(SchedulerChurnTest, GssSurvivesRandomChurn) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    for (int g : {1, 3, 8}) {
      sched::GssScheduler gss(g);
      RunChurn(gss, seed * 10 + g);
    }
  }
}

TEST(SchedulerChurnTest, GssSequenceCoversEveryNeedyRequestOnceAcrossCycle) {
  // Over one full cycle (servicing head repeatedly), every live request is
  // serviced exactly once before anyone is serviced twice.
  sched::GssScheduler gss(3);
  ChurnContext ctx;
  for (RequestId id = 1; id <= 10; ++id) {
    ctx.Track(id, id * 100.0);
    gss.Add(id, Seconds(0.0));
  }
  std::map<RequestId, int> serviced;
  for (int i = 0; i < 10; ++i) {
    auto seq = gss.ServiceSequence(ctx, Seconds(i * 1.0));
    ASSERT_FALSE(seq.empty());
    ++serviced[seq.front()];
    gss.OnServiceComplete(seq.front(), Seconds(i * 1.0));
  }
  EXPECT_EQ(serviced.size(), 10u);
  for (const auto& [id, count] : serviced) EXPECT_EQ(count, 1) << id;
}

TEST(SimulatorPropertyTest, IdenticalSeedsGiveIdenticalRuns) {
  sim::WorkloadConfig w;
  w.duration = Hours(1);
  w.total_expected_arrivals = 40;
  w.seed = 77;
  auto arr = sim::GenerateWorkload(w);
  ASSERT_TRUE(arr.ok());

  auto run = [&]() {
    sim::SimConfig cfg;
    cfg.scheme = sim::AllocScheme::kDynamic;
    cfg.seed = 5;
    auto s = sim::VodSimulator::Create(cfg, nullptr);
    EXPECT_TRUE(s.ok());
    EXPECT_TRUE((*s)->AddArrivals(*arr).ok());
    (*s)->RunToCompletion();
    return std::make_tuple((*s)->metrics().services,
                           (*s)->metrics().initial_latency.mean(),
                           (*s)->now());
  };
  EXPECT_EQ(run(), run());
}

TEST(SimulatorPropertyTest, DifferentDiskSeedsChangeOnlyNoise) {
  sim::WorkloadConfig w;
  w.duration = Hours(1);
  w.total_expected_arrivals = 40;
  w.seed = 78;
  auto arr = sim::GenerateWorkload(w);
  ASSERT_TRUE(arr.ok());

  auto run = [&](std::uint64_t disk_seed) {
    sim::SimConfig cfg;
    cfg.scheme = sim::AllocScheme::kDynamic;
    cfg.seed = disk_seed;
    auto s = sim::VodSimulator::Create(cfg, nullptr);
    EXPECT_TRUE(s.ok());
    EXPECT_TRUE((*s)->AddArrivals(*arr).ok());
    (*s)->RunToCompletion();
    return (*s)->metrics();
  };
  const sim::SimMetrics a = run(1);
  const sim::SimMetrics b = run(2);
  // Admission outcomes identical (rotational noise does not change who
  // gets in under identical arrivals at partial load).
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_EQ(a.completed, b.completed);
  // Latency differs by at most the rotational scale.
  EXPECT_NEAR(a.initial_latency.mean(), b.initial_latency.mean(), 0.05);
}

TEST(SimulatorPropertyTest, AnyFaultSeedConservesBufferAccounting) {
  // Property: under ANY fault seed, every bit a disk read delivers into a
  // stream buffer is eventually tossed back by use-it-and-toss-it
  // consumption (departure) or cancellation — the run drains and the
  // allocated/released ledger balances. VODB_FAULT_SEED=<n> (the CI chaos
  // matrix) probes an extra seed beyond the fixed list.
  std::vector<std::uint64_t> fault_seeds = {1, 2, 3, 4, 5};
  if (const char* env = std::getenv("VODB_FAULT_SEED")) {
    fault_seeds.push_back(std::strtoull(env, nullptr, 10));
  }
  auto spec = fault::ParseFaultSpec(
      "eio:start=200,end=2400,p=0.35,retries=2,backoff=0.05;"
      "latency:start=1200,end=3000,factor=3,extra=0.02,p=0.5");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();

  sim::WorkloadConfig w;
  w.duration = Hours(1);
  w.total_expected_arrivals = 50;
  w.seed = 17;
  auto arr = sim::GenerateWorkload(w);
  ASSERT_TRUE(arr.ok());

  for (std::uint64_t fault_seed : fault_seeds) {
    fault::Injector injector(spec.value(), fault_seed);
    sim::SimConfig cfg;
    cfg.scheme = sim::AllocScheme::kDynamic;
    cfg.seed = 5;
    cfg.injector = &injector;
    auto s = sim::VodSimulator::Create(cfg, nullptr);
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE((*s)->AddArrivals(*arr).ok());
    (*s)->RunToCompletion();
    const sim::SimMetrics& m = (*s)->metrics();
    EXPECT_EQ((*s)->active_count(), 0) << "fault_seed " << fault_seed;
    EXPECT_GT(m.read_faults, 0) << "fault_seed " << fault_seed;
    // Relative tolerance: summation order shifts under faults perturb the
    // ~1e11-bit totals by a few bits of rounding.
    EXPECT_NEAR(ToBits(m.buffer_bits_allocated), ToBits(m.buffer_bits_released),
                1e-9 * std::max(ToBits(m.buffer_bits_allocated), 1.0))
        << "fault_seed " << fault_seed;
  }
}

TEST(ClosedFormPropertyTest, RandomRateConfigurationsStayConsistent) {
  sim::Rng rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    core::AllocParams p;
    p.tr = Mbps(rng.Uniform(40, 400));
    p.cr = Mbps(rng.Uniform(0.5, 6.0));
    p.dl = Milliseconds(rng.Uniform(2, 40));
    p.n_max = core::MaxConcurrentRequests(p.tr, p.cr);
    p.alpha = 1 + static_cast<int>(rng.NextBelow(3));
    if (p.n_max < 2 || !p.Validate().ok()) continue;
    const int n = 1 + static_cast<int>(
                          rng.NextBelow(static_cast<std::uint32_t>(p.n_max)));
    const int k = static_cast<int>(rng.NextBelow(8));
    auto closed = core::DynamicBufferSize(p, n, k);
    auto direct = core::BufferSizeByRecurrence(p, n, k);
    ASSERT_TRUE(closed.ok());
    ASSERT_TRUE(direct.ok());
    EXPECT_NEAR(*closed / *direct, 1.0, 1e-9)
        << "trial " << trial << " n=" << n << " k=" << k;
  }
}

TEST(ClosedFormPropertyTest, DynamicNeverExceedsStaticSchemeAllocation) {
  // The dynamic scheme's raison d'être: the per-request buffer BS_k(n) from
  // the Theorem-1 closed form never exceeds the static scheme's BS(N),
  // for any load n, estimate k, and random disk/rate parameterization.
  sim::Rng rng(123);
  for (int trial = 0; trial < 60; ++trial) {
    core::AllocParams p;
    p.tr = Mbps(rng.Uniform(40, 400));
    p.cr = Mbps(rng.Uniform(0.5, 6.0));
    p.dl = Milliseconds(rng.Uniform(2, 40));
    p.n_max = core::MaxConcurrentRequests(p.tr, p.cr);
    p.alpha = 1 + static_cast<int>(rng.NextBelow(3));
    if (p.n_max < 2 || !p.Validate().ok()) continue;
    auto static_bs = core::StaticSchemeBufferSize(p);
    ASSERT_TRUE(static_bs.ok());
    const int n = 1 + static_cast<int>(
                          rng.NextBelow(static_cast<std::uint32_t>(p.n_max)));
    // k deliberately allowed past N − n: the closed form must saturate at
    // BS(N) rather than overshoot it.
    const int k = static_cast<int>(rng.NextBelow(16));
    auto dynamic_bs = core::DynamicBufferSize(p, n, k);
    ASSERT_TRUE(dynamic_bs.ok());
    EXPECT_LE(*dynamic_bs, *static_bs * (1.0 + 1e-9))
        << "trial " << trial << " n=" << n << " k=" << k
        << " N=" << p.n_max;
  }
}

TEST(StatsPropertyTest, RunningStatsMatchesTwoPassReferenceOnRandomInputs) {
  // Welford accumulation (and its parallel Merge) against a naive two-pass
  // mean/variance, across sizes and scales.
  sim::Rng rng(321);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 2 + rng.NextBelow(400);
    const double scale = std::pow(10.0, rng.Uniform(-3, 6));
    const double offset = rng.Uniform(-5, 5) * scale;
    std::vector<double> xs(n);
    RunningStats streaming;
    for (std::size_t i = 0; i < n; ++i) {
      xs[i] = offset + scale * rng.NextDouble();
      streaming.Add(xs[i]);
    }
    // Two-pass reference.
    double sum = 0.0;
    for (double x : xs) sum += x;
    const double mean = sum / static_cast<double>(n);
    double ss = 0.0, lo = xs[0], hi = xs[0];
    for (double x : xs) {
      ss += (x - mean) * (x - mean);
      lo = std::min(lo, x);
      hi = std::max(hi, x);
    }
    const double variance = ss / static_cast<double>(n - 1);

    ASSERT_EQ(streaming.count(), n);
    EXPECT_NEAR(streaming.mean(), mean, 1e-9 * std::abs(mean) + 1e-12);
    EXPECT_NEAR(streaming.variance(), variance,
                1e-8 * variance + 1e-12 * scale * scale);
    EXPECT_DOUBLE_EQ(streaming.min(), lo);
    EXPECT_DOUBLE_EQ(streaming.max(), hi);

    // Merge of a random split must agree with the whole (the experiment
    // runner's cross-replication reduction relies on this).
    const std::size_t cut = 1 + rng.NextBelow(static_cast<std::uint32_t>(n));
    RunningStats left, right;
    for (std::size_t i = 0; i < n; ++i) {
      (i < cut ? left : right).Add(xs[i]);
    }
    left.Merge(right);
    ASSERT_EQ(left.count(), n);
    EXPECT_NEAR(left.mean(), mean, 1e-9 * std::abs(mean) + 1e-12);
    EXPECT_NEAR(left.variance(), variance,
                1e-8 * variance + 1e-12 * scale * scale);
    EXPECT_DOUBLE_EQ(left.min(), lo);
    EXPECT_DOUBLE_EQ(left.max(), hi);
  }
}

}  // namespace
}  // namespace vod
