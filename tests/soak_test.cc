// Soak test: a full 24 h day on the paper's 10-disk server under heavy
// churn — 100k arrivals fighting for a budget that admits only a fraction
// of them — run through the sharded epoch loop on a real thread pool with
// the invariant auditor armed (VODB_AUDIT=ON is the default build). This
// is deliberately far past the tier-1 scenarios in both duration and
// churn volume: it exists to shake out slow-burn state corruption (leaked
// reservations, drifting ledgers, stuck wakeup chains) and, under the
// nightly TSan configuration, cross-thread races in the epoch machinery.
//
// Registered with ctest label "soak" and excluded from default runs (the
// verify scripts pass -LE soak); the nightly CI job runs `ctest -L soak`
// in the TSan tree.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/units.h"
#include "exp/sharded.h"
#include "exp/thread_pool.h"
#include "sim/multi_disk.h"
#include "sim/workload.h"

namespace vod::sim {
namespace {

constexpr int kDisks = 10;          // The paper's Fig. 13/14 server.
constexpr double kArrivals = 100000; // Churn volume: most are turned away.

TEST(SoakTest, TenDiskDayUnderChurnKeepsEveryInvariant) {
  SimConfig base;
  base.method = core::ScheduleMethod::kRoundRobin;
  base.scheme = AllocScheme::kDynamic;
  base.t_log = Minutes(40);
  base.seed = 97;
  base.event_queue = EventQueueKind::kCalendar;

  WorkloadConfig w;
  w.duration = Hours(24);
  w.total_expected_arrivals = kArrivals;
  w.disk_count = kDisks;
  w.disk_theta = 0.5;
  w.seed = 29;
  auto arrivals = GenerateWorkload(w);
  ASSERT_TRUE(arrivals.ok());

  // Binding but serviceable: enough memory that streams flow on every
  // disk, little enough that the admission gate works all day long.
  auto md = MultiDiskSimulator::Create(base, kDisks, Mebibytes(120));
  ASSERT_TRUE(md.ok()) << md.status().ToString();
  auto server = std::move(md.value());
  ASSERT_TRUE(server->AddArrivals(*arrivals).ok());

  exp::ThreadPool pool;  // Default: one worker per hardware thread.
  exp::RunShardedToCompletion(*server, pool);
  server->Finalize();

  long total_services = 0;
  for (int d = 0; d < kDisks; ++d) {
    SCOPED_TRACE("disk " + std::to_string(d));
    const VodSimulator& s = server->sim(d);
    const SimMetrics& m = s.metrics();
    // Drained: no active streams, no queued events left behind.
    EXPECT_EQ(s.active_count(), 0);
    EXPECT_EQ(s.event_count(), 0u);
    // Books balance.
    EXPECT_EQ(m.admitted + m.rejected, m.arrivals);
    EXPECT_EQ(m.rejected,
              m.rejected_capacity + m.rejected_memory + m.rejected_invalid);
    // Every stream that entered also left.
    EXPECT_EQ(m.completed + m.cancelled, m.admitted);
    // Buffer-bit conservation to fp association noise.
    EXPECT_NEAR(ToBits(m.buffer_bits_allocated),
                ToBits(m.buffer_bits_released),
                1e-9 * std::max(ToBits(m.buffer_bits_allocated), 1.0));
    // A day of real traffic reached this disk.
    EXPECT_GT(m.admitted, 0);
    EXPECT_GT(m.services, 0);
    // Starvation stays within the documented sub-percent residual.
    EXPECT_LE(m.starvation_events, std::max<long>(5, m.services / 100));
    total_services += m.services;
  }
  // The run was a soak, not a smoke: the churn produced both heavy
  // admission traffic and heavy rejection traffic.
  EXPECT_GT(server->TotalAdmitted(), 1000);
  EXPECT_GT(server->TotalRejected(), 1000);
  EXPECT_GT(total_services, 100000);
  // Every reservation was returned to the shared pool.
  EXPECT_DOUBLE_EQ(ToBits(server->broker().ReservedMemory()), 0.0);
}

}  // namespace
}  // namespace vod::sim
