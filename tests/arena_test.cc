// Property tests for the pool allocator behind the simulator's per-stream
// state (common/arena.h): slot reuse after free, alignment, conservation
// accounting (live + free == carved, the pool-side face of the
// MemoryBroker's bit-conservation ledger), ordered-map iteration order, and
// — in ASan builds — that freed pool slots are actually poisoned.

#include "common/arena.h"

#include <cstdint>
#include <map>
#include <vector>

#include "gtest/gtest.h"
#include "sim/rng.h"

namespace vod {
namespace {

struct Payload {
  std::uint64_t a = 0;
  double b = 0.0;
};

struct alignas(64) WidePayload {
  double lane[8] = {0};
};

TEST(PoolTest, CreateDestroyReuse) {
  Pool<Payload> pool(/*chunk_capacity=*/4);
  Payload* p1 = pool.Create();
  p1->a = 1;
  Payload* p2 = pool.Create();
  p2->a = 2;
  EXPECT_EQ(pool.live(), 2u);
  EXPECT_TRUE(pool.Owns(p1));
  EXPECT_TRUE(pool.Owns(p2));

  pool.Destroy(p1);
  EXPECT_EQ(pool.live(), 1u);
  EXPECT_EQ(pool.free_slots(), 1u);

  // LIFO reuse: the freed slot comes back for the next Create.
  Payload* p3 = pool.Create();
  EXPECT_EQ(static_cast<void*>(p3), static_cast<void*>(p1));
  // And it is a freshly constructed object, not the stale one.
  EXPECT_EQ(p3->a, 0u);

  pool.Destroy(p2);
  pool.Destroy(p3);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(PoolTest, AddressesStableAcrossChunkGrowth) {
  Pool<Payload> pool(/*chunk_capacity=*/8);
  std::vector<Payload*> objs;
  for (std::uint64_t i = 0; i < 100; ++i) {
    Payload* p = pool.Create();
    p->a = i;
    objs.push_back(p);
  }
  EXPECT_GE(pool.chunk_count(), 100u / 8u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_EQ(objs[i]->a, i);  // No chunk ever moved.
  }
  for (Payload* p : objs) pool.Destroy(p);
}

TEST(PoolTest, AlignmentHonoured) {
  Pool<WidePayload> pool(/*chunk_capacity=*/3);
  std::vector<WidePayload*> objs;
  for (int i = 0; i < 10; ++i) {
    WidePayload* p = pool.Create();
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % alignof(WidePayload), 0u)
        << "slot " << i << " misaligned";
    objs.push_back(p);
  }
  for (WidePayload* p : objs) pool.Destroy(p);
}

TEST(PoolTest, ConservationInvariantUnderRandomChurn) {
  // live + free == carved after every operation — the same conservation
  // shape the MemoryBroker audits for buffer bits, applied to slots.
  Pool<Payload> pool(/*chunk_capacity=*/16);
  sim::Rng rng(/*seed=*/99, /*stream=*/7);
  std::vector<Payload*> live;
  std::size_t created = 0;
  for (int op = 0; op < 20000; ++op) {
    if (live.empty() || rng.NextDouble() < 0.5) {
      live.push_back(pool.Create());
      ++created;
    } else {
      const auto idx = static_cast<std::size_t>(
          rng.NextDouble() * static_cast<double>(live.size()));
      pool.Destroy(live[idx]);
      live[idx] = live.back();
      live.pop_back();
    }
    ASSERT_EQ(pool.live() + pool.free_slots(), pool.slots_carved());
    ASSERT_EQ(pool.live(), live.size());
  }
  EXPECT_EQ(pool.total_created(), created);
  EXPECT_GE(pool.high_water(), pool.live());
  EXPECT_EQ(pool.capacity_bytes(),
            pool.chunk_count() * pool.chunk_capacity() * sizeof(Payload));
  for (Payload* p : live) pool.Destroy(p);
  EXPECT_EQ(pool.live(), 0u);
  EXPECT_EQ(pool.free_slots(), pool.slots_carved());
}

TEST(PoolTest, HighWaterTracksPeakOnly) {
  Pool<Payload> pool;
  std::vector<Payload*> objs;
  for (int i = 0; i < 50; ++i) objs.push_back(pool.Create());
  EXPECT_EQ(pool.high_water(), 50u);
  for (Payload* p : objs) pool.Destroy(p);
  objs.clear();
  for (int i = 0; i < 10; ++i) objs.push_back(pool.Create());
  EXPECT_EQ(pool.high_water(), 50u);  // Peak, not current.
  EXPECT_EQ(pool.live(), 10u);
  for (Payload* p : objs) pool.Destroy(p);
}

#if VODB_ASAN_ENABLED
TEST(PoolTest, FreedSlotsArePoisonedUnderAsan) {
  Pool<Payload> pool;
  Payload* p = pool.Create();
  auto* addr = reinterpret_cast<void*>(p);
  EXPECT_EQ(__asan_address_is_poisoned(addr), 0);
  pool.Destroy(p);
  // The whole slot is poisoned until the pool recycles it...
  EXPECT_EQ(__asan_region_is_poisoned(addr, sizeof(Payload)), addr);
  // ...and unpoisoned again on reuse.
  Payload* again = pool.Create();
  ASSERT_EQ(static_cast<void*>(again), addr);
  EXPECT_EQ(__asan_region_is_poisoned(addr, sizeof(Payload)), nullptr);
  pool.Destroy(again);
}
#endif  // VODB_ASAN_ENABLED

TEST(PoolTest, PoisonConstantVisibleWithoutAsan) {
  // Even without ASan the freed slot is 0xDD-filled; verify through a
  // throwaway pool so no live object aliases the bytes we inspect.
  EXPECT_EQ(Pool<Payload>::kPoisonsFreedSlots, VODB_ASAN_ENABLED != 0);
}

// ---------------------------------------------------------------------------
// PooledOrderedMap
// ---------------------------------------------------------------------------

TEST(PooledOrderedMapTest, InsertFindErase) {
  PooledOrderedMap<Payload> m;
  EXPECT_TRUE(m.empty());
  Payload v;
  v.a = 17;
  m.Insert(3, v);
  EXPECT_EQ(m.size(), 1u);
  ASSERT_NE(m.Find(3), nullptr);
  EXPECT_EQ(m.Find(3)->a, 17u);
  EXPECT_EQ(m.Find(4), nullptr);
  EXPECT_TRUE(m.Contains(3));
  EXPECT_FALSE(m.Contains(9999));  // Beyond the index: no crash, just false.
  EXPECT_TRUE(m.Erase(3));
  EXPECT_FALSE(m.Erase(3));
  EXPECT_TRUE(m.empty());
}

TEST(PooledOrderedMapTest, IterationOrderMatchesStdMap) {
  // The whole point of the ordered map: range-for visits ascending ids, the
  // exact order a std::map<RequestId, T> gives, so order-sensitive float
  // accumulation stays bit-identical. Random interleaved inserts/erases.
  PooledOrderedMap<Payload> pooled;
  std::map<std::uint64_t, Payload> reference;
  sim::Rng rng(/*seed=*/4242, /*stream=*/1);
  std::uint64_t next_id = 1;
  for (int op = 0; op < 5000; ++op) {
    const double coin = rng.NextDouble();
    if (reference.empty() || coin < 0.55) {
      Payload v;
      v.a = next_id * 3;
      v.b = rng.NextDouble();
      pooled.Insert(next_id, v);
      reference[next_id] = v;
      ++next_id;
    } else {
      // Erase a pseudo-random existing key.
      auto it = reference.begin();
      std::advance(it, static_cast<long>(rng.NextDouble() *
                                         static_cast<double>(
                                             reference.size())));
      pooled.Erase(it->first);
      reference.erase(it);
    }
    if (op % 97 == 0 || op == 4999) {
      ASSERT_EQ(pooled.size(), reference.size());
      auto ref_it = reference.begin();
      double pooled_sum = 0.0;
      double ref_sum = 0.0;
      for (const auto& node : pooled) {
        ASSERT_NE(ref_it, reference.end());
        ASSERT_EQ(node.id, ref_it->first);
        ASSERT_EQ(node.value.a, ref_it->second.a);
        pooled_sum += node.value.b;
        ref_sum += ref_it->second.b;
        ++ref_it;
      }
      ASSERT_EQ(ref_it, reference.end());
      ASSERT_EQ(pooled_sum, ref_sum);  // Bit-identical accumulation.
    }
  }
}

TEST(PooledOrderedMapTest, OutOfOrderInsertKeepsAscendingOrder) {
  PooledOrderedMap<Payload> m;
  const std::uint64_t ids[] = {50, 10, 30, 20, 40, 25};
  for (std::uint64_t id : ids) {
    Payload v;
    v.a = id;
    m.Insert(id, v);
  }
  std::uint64_t prev = 0;
  for (const auto& node : m) {
    EXPECT_GT(node.id, prev);
    prev = node.id;
  }
  EXPECT_EQ(m.size(), 6u);
}

TEST(PooledOrderedMapTest, SlotReuseAfterEraseViaPoolStats) {
  PooledOrderedMap<Payload> m;
  for (std::uint64_t id = 1; id <= 100; ++id) m.Insert(id, Payload{});
  const std::size_t carved = m.pool().slots_carved();
  for (std::uint64_t id = 1; id <= 100; ++id) m.Erase(id);
  for (std::uint64_t id = 101; id <= 200; ++id) m.Insert(id, Payload{});
  // All hundred new nodes came from the free list, no new slots carved.
  EXPECT_EQ(m.pool().slots_carved(), carved);
  EXPECT_EQ(m.pool().live(), 100u);
}

}  // namespace
}  // namespace vod
