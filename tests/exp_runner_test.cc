// Tests for the parallel experiment runner (src/exp): thread-pool
// mechanics, grid expansion/seeding, determinism of fan-out results across
// thread counts, exception propagation out of worker tasks, and the
// empty/single-point edge cases.

#include <atomic>
#include <cmath>
#include <cstdio>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/units.h"
#include "exp/day_run.h"
#include "exp/grid.h"
#include "exp/runner.h"
#include "exp/thread_pool.h"

namespace vod::exp {
namespace {

// --- ThreadPool ---

TEST(ThreadPoolTest, SubmitReturnsValues) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  auto f1 = pool.Submit([]() { return 41 + 1; });
  auto f2 = pool.Submit([]() { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  constexpr std::size_t kN = 500;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForRethrowsWorkerException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    pool.ParallelFor(64, [&](std::size_t i) {
      if (i == 17) throw std::runtime_error("task 17 failed");
      completed.fetch_add(1);
    });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 17 failed");
  }
  // Every non-throwing task still ran (no abandoned work).
  EXPECT_EQ(completed.load(), 63);
}

TEST(ThreadPoolTest, DestructorDrainsPendingWork) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      // The futures are discarded on purpose: this test proves the
      // destructor itself drains pending work without anyone waiting.
      // (ThreadPool::Submit returns std::future, not Status; the lint
      // rule matches VodServer::Submit by name.)
      pool.Submit([&ran]() { ran.fetch_add(1); });  // vodb-lint: allow(unconsumed-status)
    }
  }  // Destructor joins after draining.
  EXPECT_EQ(ran.load(), 100);
}

// --- Grid ---

TEST(GridTest, ExpansionOrderIsMethodMajorReplicationMinor) {
  DayRunConfig base;
  Grid grid;
  grid.WithBase(base)
      .OverMethods(
          {core::ScheduleMethod::kRoundRobin, core::ScheduleMethod::kSweep})
      .OverSchemes({sim::AllocScheme::kStatic, sim::AllocScheme::kDynamic})
      .WithSeeds({7, 8, 9});
  const auto specs = grid.Expand();
  ASSERT_EQ(specs.size(), 12u);
  ASSERT_EQ(grid.size(), 12u);
  // First block: RR/static with seeds 7,8,9.
  EXPECT_EQ(specs[0].config.method, core::ScheduleMethod::kRoundRobin);
  EXPECT_EQ(specs[0].config.scheme, sim::AllocScheme::kStatic);
  EXPECT_EQ(specs[0].config.seed, 7u);
  EXPECT_EQ(specs[2].config.seed, 9u);
  // Next block switches scheme, then method.
  EXPECT_EQ(specs[3].config.scheme, sim::AllocScheme::kDynamic);
  EXPECT_EQ(specs[6].config.method, core::ScheduleMethod::kSweep);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].index, i);
    EXPECT_EQ(specs[i].replication, static_cast<int>(i % 3));
  }
}

TEST(GridTest, PaperTLogFollowsMethod) {
  Grid grid;
  grid.OverMethods({core::ScheduleMethod::kRoundRobin,
                    core::ScheduleMethod::kSweep, core::ScheduleMethod::kGss})
      .UsePaperTLog()
      .WithReplications(1);
  const auto specs = grid.Expand();
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_DOUBLE_EQ(ToMinutes(specs[0].config.t_log), 40.0);
  EXPECT_DOUBLE_EQ(ToMinutes(specs[1].config.t_log), 20.0);
  EXPECT_DOUBLE_EQ(ToMinutes(specs[2].config.t_log), 20.0);
}

TEST(GridTest, HashedSeedsAreStableDistinctAndPositionIndependent) {
  Grid grid;
  grid.OverMethods(
          {core::ScheduleMethod::kRoundRobin, core::ScheduleMethod::kGss})
      .OverAlphas({1, 2})
      .WithReplications(3);
  const auto a = grid.Expand();
  const auto b = grid.Expand();
  ASSERT_EQ(a.size(), 12u);
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].config.seed, b[i].config.seed) << i;  // Stable.
    seeds.insert(a[i].config.seed);
  }
  EXPECT_EQ(seeds.size(), a.size());  // Distinct per (point, replication).

  // The seed hashes grid *values*, not axis positions: extending an axis
  // must not change the seeds of pre-existing points.
  Grid wider;
  wider.OverMethods({core::ScheduleMethod::kRoundRobin,
                     core::ScheduleMethod::kGss, core::ScheduleMethod::kSweep})
      .OverAlphas({1, 2})
      .WithReplications(3);
  const auto w = wider.Expand();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(w[i].config.seed, a[i].config.seed) << i;
  }
}

TEST(GridTest, EmptyGrids) {
  EXPECT_EQ(Grid().WithSeeds({}).size(), 0u);
  EXPECT_TRUE(Grid().WithSeeds({}).Expand().empty());
  EXPECT_EQ(Grid().WithReplications(0).size(), 0u);
  EXPECT_TRUE(Grid().WithReplications(0).Expand().empty());
}

// --- Runner ---

/// Fast fake day: metrics derived arithmetically from the config, so tests
/// exercise fan-out/ordering without second-long simulations.
sim::SimMetrics FakeDay(const DayRunConfig& cfg) {
  sim::SimMetrics m;
  m.arrivals = static_cast<long>(cfg.seed % 1000);
  m.admitted = static_cast<long>(cfg.alpha);
  m.initial_latency.Add(static_cast<double>(cfg.seed % 97) + cfg.theta);
  return m;
}

TEST(RunnerTest, EmptyGridReturnsEmptyResults) {
  Runner runner({.threads = 4});
  const auto results = runner.Run(Grid().WithSeeds({}), FakeDay);
  EXPECT_TRUE(results.empty());
}

TEST(RunnerTest, SinglePointMatchesDirectCall) {
  DayRunConfig base;
  base.duration = Minutes(40);
  base.total_arrivals = 20;
  base.t_log = Minutes(10);
  Grid grid;
  grid.WithBase(base).WithSeeds({3});

  Runner runner({.threads = 2});
  const auto results = runner.Run(grid);
  ASSERT_EQ(results.size(), 1u);
  DayRunConfig direct = base;
  direct.seed = 3;
  const sim::SimMetrics expected = RunDay(direct);
  EXPECT_EQ(results[0].metrics.arrivals, expected.arrivals);
  EXPECT_EQ(results[0].metrics.admitted, expected.admitted);
  EXPECT_EQ(results[0].metrics.services, expected.services);
  EXPECT_DOUBLE_EQ(results[0].metrics.initial_latency.mean(),
                   expected.initial_latency.mean());
}

TEST(RunnerTest, ExceptionInRunFnPropagates) {
  Grid grid;
  grid.WithReplications(8);
  for (int threads : {1, 4}) {
    Runner runner({.threads = threads});
    EXPECT_THROW(runner.Run(grid,
                            [](const DayRunConfig& cfg) -> sim::SimMetrics {
                              if (cfg.seed % 2 == 0) {
                                throw std::runtime_error("worker boom");
                              }
                              return FakeDay(cfg);
                            }),
                 std::runtime_error)
        << "threads=" << threads;
  }
}

/// Same grid at 1, 2, and 8 threads: real simulations, results and
/// aggregates must be identical (not just close) — per-run seeding is a
/// pure function of the grid point and collection is index-ordered.
TEST(RunnerTest, RealRunsIdenticalAt1And2And8Threads) {
  DayRunConfig base;
  base.duration = Minutes(60);
  base.total_arrivals = 30;
  base.t_log = Minutes(10);
  Grid grid;
  grid.WithBase(base)
      .OverMethods(
          {core::ScheduleMethod::kRoundRobin, core::ScheduleMethod::kGss})
      .OverSchemes({sim::AllocScheme::kStatic, sim::AllocScheme::kDynamic})
      .WithReplications(2);

  std::vector<std::vector<RunResult>> by_threads;
  for (int threads : {1, 2, 8}) {
    Runner runner({.threads = threads});
    by_threads.push_back(runner.Run(grid));
  }
  const auto& ref = by_threads[0];
  ASSERT_EQ(ref.size(), grid.size());
  for (std::size_t t = 1; t < by_threads.size(); ++t) {
    const auto& got = by_threads[t];
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(got[i].spec.index, ref[i].spec.index);
      EXPECT_EQ(got[i].spec.config.seed, ref[i].spec.config.seed);
      EXPECT_EQ(got[i].metrics.arrivals, ref[i].metrics.arrivals);
      EXPECT_EQ(got[i].metrics.admitted, ref[i].metrics.admitted);
      EXPECT_EQ(got[i].metrics.services, ref[i].metrics.services);
      EXPECT_EQ(got[i].metrics.initial_latency.count(),
                ref[i].metrics.initial_latency.count());
      // Bit-identical, not approximately equal.
      EXPECT_EQ(got[i].metrics.initial_latency.mean(),
                ref[i].metrics.initial_latency.mean());
      EXPECT_EQ(got[i].metrics.memory_usage.max_value(),
                ref[i].metrics.memory_usage.max_value());
    }
    // Aggregated summaries identical too (same accumulation order).
    const auto agg_ref = AggregateReplications(
        ref, grid.replications(),
        [](const RunResult& r) { return r.metrics.initial_latency.mean(); });
    const auto agg_got = AggregateReplications(
        got, grid.replications(),
        [](const RunResult& r) { return r.metrics.initial_latency.mean(); });
    ASSERT_EQ(agg_got.size(), agg_ref.size());
    for (std::size_t i = 0; i < agg_ref.size(); ++i) {
      EXPECT_EQ(agg_got[i].summary.mean, agg_ref[i].summary.mean);
      EXPECT_EQ(agg_got[i].summary.stddev, agg_ref[i].summary.stddev);
    }
  }
}

/// A faulted sweep — same --fault-seed, grid expanded over an OverFaults
/// axis — serialises to a byte-identical CSV at 1 and 8 threads. Fault
/// injection draws from a per-run injector seeded off the fault spec and
/// seed alone, so worker scheduling can't leak into the results.
TEST(RunnerTest, FaultedSweepCsvIsByteIdenticalAcrossThreadCounts) {
  DayRunConfig base;
  base.duration = Minutes(60);
  base.total_arrivals = 30;
  base.t_log = Minutes(10);
  base.fault_seed = 1234;
  Grid grid;
  grid.WithBase(base)
      .OverMethods({core::ScheduleMethod::kRoundRobin})
      .OverSchemes({sim::AllocScheme::kStatic, sim::AllocScheme::kDynamic})
      .OverFaults({"none",
                   "eio:start=300,end=1800,p=0.4,retries=2,backoff=0.05",
                   "latency:start=0,end=3600,factor=3,extra=0.02"});

  const auto to_csv = [](const std::vector<RunResult>& results) {
    std::string csv = "index,fault,admitted,faults,hiccups,latency,peak\n";
    for (const RunResult& r : results) {
      char row[160];
      std::snprintf(row, sizeof(row), "%zu,%d,%ld,%ld,%ld,%.9f,%.9e\n",
                    r.spec.index, r.spec.fault_index, r.metrics.admitted,
                    r.metrics.read_faults, r.metrics.hiccup_events,
                    r.metrics.initial_latency.mean(),
                    r.metrics.memory_usage.max_value());
      csv += row;
    }
    return csv;
  };

  Runner serial({.threads = 1});
  Runner wide({.threads = 8});
  const std::vector<RunResult> a = serial.Run(grid);
  const std::vector<RunResult> b = wide.Run(grid);
  ASSERT_EQ(a.size(), grid.size());
  EXPECT_EQ(to_csv(a), to_csv(b));

  long total_faults = 0;
  for (const RunResult& r : a) total_faults += r.metrics.read_faults;
  EXPECT_GT(total_faults, 0);  // The eio axis actually fired.
}

// --- Aggregation & tables ---

TEST(AggregateTest, SummaryMatchesHandComputation) {
  std::vector<RunResult> results(4);
  const double vals[] = {1.0, 3.0, 10.0, 20.0};
  for (int i = 0; i < 4; ++i) {
    results[static_cast<std::size_t>(i)].spec.index =
        static_cast<std::size_t>(i);
    results[static_cast<std::size_t>(i)].spec.replication = i % 2;
    results[static_cast<std::size_t>(i)].metrics.initial_latency.Add(vals[i]);
  }
  const auto rows = AggregateReplications(
      results, 2,
      [](const RunResult& r) { return r.metrics.initial_latency.mean(); });
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_DOUBLE_EQ(rows[0].summary.mean, 2.0);
  EXPECT_DOUBLE_EQ(rows[1].summary.mean, 15.0);
  EXPECT_EQ(rows[0].summary.runs, 2u);
  // Sample stddev of {1,3} is sqrt(2); ci95 = 1.96*sqrt(2)/sqrt(2) = 1.96.
  EXPECT_NEAR(rows[0].summary.stddev, std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(rows[0].summary.ci95_half, 1.96, 1e-12);
  EXPECT_DOUBLE_EQ(rows[0].summary.min, 1.0);
  EXPECT_DOUBLE_EQ(rows[0].summary.max, 3.0);
}

TEST(TableTest, CsvAndJsonEmission) {
  Table t({"method", "n", "latency_s"});
  t.AddRow({"RoundRobin", "8", "0.1234"});
  t.AddRow({"GSS*", "16", "0.5"});
  EXPECT_EQ(t.ToCsv(),
            "method,n,latency_s\nRoundRobin,8,0.1234\nGSS*,16,0.5\n");
  EXPECT_EQ(t.ToJson(),
            "[\n"
            "  {\"method\": \"RoundRobin\", \"n\": 8, \"latency_s\": 0.1234},\n"
            "  {\"method\": \"GSS*\", \"n\": 16, \"latency_s\": 0.5}\n"
            "]\n");
}

}  // namespace
}  // namespace vod::exp
