// Tests for sim::InvariantAuditor: a clean simulation run audits clean, and
// deliberately corrupted accounting — broker ledgers, event ordering,
// buffer sizes, service decisions — fires the matching invariant.

#include "sim/invariant_auditor.h"

#include <limits>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "core/closed_form.h"
#include "core/params.h"
#include "core/static_alloc.h"
#include "disk/disk_profile.h"
#include "sim/vod_simulator.h"
#include "sim/workload.h"

namespace vod::sim {
namespace {

constexpr Seconds kInf = Seconds::Infinity();

/// Collects violations instead of aborting.
class Recorder {
 public:
  InvariantAuditor::Handler handler() {
    return [this](const InvariantViolation& v) { violations_.push_back(v); };
  }
  const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }
  bool Fired(const std::string& invariant) const {
    for (const InvariantViolation& v : violations_) {
      if (v.invariant == invariant) return true;
    }
    return false;
  }

 private:
  std::vector<InvariantViolation> violations_;
};

/// Scriptable scheduler context (mirrors the one in scheduler_test).
class FakeContext : public sched::SchedulerContext {
 public:
  struct Entry {
    Seconds deadline = kInf;
    double cylinder = 0;
    bool needs_service = true;
    bool fresh = false;
    Seconds service_time = Seconds(1.0);
  };

  Entry& Set(RequestId id) { return entries_[id]; }

  Seconds BufferDeadline(RequestId id) const override {
    return entries_.at(id).fresh ? kInf : entries_.at(id).deadline;
  }
  bool NeverServiced(RequestId id) const override {
    return entries_.at(id).fresh;
  }
  double CurrentCylinder(RequestId id) const override {
    return entries_.at(id).cylinder;
  }
  bool NeedsService(RequestId id) const override {
    return entries_.at(id).needs_service;
  }
  Seconds WorstServiceTime(RequestId id) const override {
    return entries_.at(id).service_time;
  }
  Seconds NewcomerReserve() const override { return reserve_; }

  void set_reserve(Seconds r) { reserve_ = r; }

 private:
  std::map<RequestId, Entry> entries_;
  Seconds reserve_ = Seconds(1.0);
};

core::AllocParams TestParams(core::ScheduleMethod method) {
  const disk::DiskProfile profile = disk::SeagateBarracuda9LP();
  const int n = core::MaxConcurrentRequests(profile.transfer_rate, Mbps(1.5));
  auto params = core::MakeAllocParams(profile, Mbps(1.5), method, n, 1);
  VOD_CHECK(params.ok());
  return *params;
}

// --- Event-time monotonicity ---

TEST(InvariantAuditorTest, AcceptsMonotoneEventTimes) {
  Recorder rec;
  InvariantAuditor auditor(rec.handler());
  auditor.CheckEventTime(Seconds(0.0));
  auditor.CheckEventTime(Seconds(1.0));
  auditor.CheckEventTime(Seconds(1.0));  // Equal times are fine (FIFO tiebreak).
  auditor.CheckEventTime(Seconds(2.5));
  EXPECT_TRUE(rec.violations().empty());
  EXPECT_EQ(auditor.checks(), 4);
}

TEST(InvariantAuditorTest, FlagsBackwardsEventTime) {
  Recorder rec;
  InvariantAuditor auditor(rec.handler());
  auditor.CheckEventTime(Seconds(10.0));
  auditor.CheckEventTime(Seconds(5.0));
  ASSERT_EQ(rec.violations().size(), 1u);
  EXPECT_EQ(rec.violations()[0].invariant, "event-time-monotonicity");
  EXPECT_EQ(auditor.violations(), 1);
}

TEST(InvariantAuditorTest, ToleratesZeroLengthRetryStepsAtLargeClocks) {
  // Retry/backoff wakeups rescheduled at (almost) the current time can land
  // an ulp short of the last event at day-scale clocks. The monotonicity
  // check is relative — tolerance 1e-9 · |last| — so those zero-length
  // steps pass while a genuine step backwards still fires.
  Recorder rec;
  InvariantAuditor auditor(rec.handler());
  auditor.CheckEventTime(Seconds(1e6));
  auditor.CheckEventTime(Seconds(1e6 - 1e-5));  // Within 1e-9 * 1e6 = 1e-3: fine.
  EXPECT_TRUE(rec.violations().empty());
  auditor.CheckEventTime(Seconds(1e6 - 1.0));  // Way past the tolerance.
  ASSERT_EQ(rec.violations().size(), 1u);
  EXPECT_EQ(rec.violations()[0].invariant, "event-time-monotonicity");
}

// --- Memory conservation ---

TEST(InvariantAuditorTest, AcceptsBalancedMemoryLedger) {
  Recorder rec;
  InvariantAuditor auditor(rec.handler());
  auditor.CheckMemoryConservation(Seconds(1.0), Megabits(300), Megabits(700),
                                  Megabits(1000));
  auditor.CheckMemoryConservation(Seconds(2.0), Bits(0), Megabits(1000), Megabits(1000));
  auditor.CheckMemoryConservation(Seconds(3.0), Megabits(1000), Bits(0), Megabits(1000));
  EXPECT_TRUE(rec.violations().empty());
}

TEST(InvariantAuditorTest, FlagsCorruptMemoryLedger) {
  Recorder rec;
  InvariantAuditor auditor(rec.handler());
  // Over-reservation: the free share has gone negative.
  auditor.CheckMemoryConservation(Seconds(1.0), Megabits(1200), Megabits(-200),
                                  Megabits(1000));
  // Leak: the two shares no longer sum to the total.
  auditor.CheckMemoryConservation(Seconds(2.0), Megabits(300), Megabits(300),
                                  Megabits(1000));
  // Negative allocation.
  auditor.CheckMemoryConservation(Seconds(3.0), Megabits(-1), Megabits(1001),
                                  Megabits(1000));
  EXPECT_EQ(rec.violations().size(), 3u);
  EXPECT_TRUE(rec.Fired("memory-conservation"));
}

TEST(InvariantAuditorTest, BrokerOvershootToleratedBetweenAdmissions) {
  Recorder rec;
  InvariantAuditor auditor(rec.handler());
  // Between admissions the k estimate drifts and analytic repricing may
  // exceed capacity; only an admission-point partition is enforced.
  auditor.CheckBrokerReservation(Seconds(1.0), Megabits(1200), Megabits(1000),
                                 /*capacity_enforced=*/false);
  EXPECT_TRUE(rec.violations().empty());
  auditor.CheckBrokerReservation(Seconds(2.0), Megabits(1200), Megabits(1000),
                                 /*capacity_enforced=*/true);
  EXPECT_TRUE(rec.Fired("memory-conservation"));
}

TEST(InvariantAuditorTest, FlagsNegativeBrokerReservation) {
  Recorder rec;
  InvariantAuditor auditor(rec.handler());
  auditor.CheckBrokerReservation(Seconds(1.0), Megabits(-5), Megabits(1000),
                                 /*capacity_enforced=*/false);
  EXPECT_TRUE(rec.Fired("memory-conservation"));
}

// --- Request accounting ---

TEST(InvariantAuditorTest, FlagsConsumptionBeyondDelivery) {
  Recorder rec;
  InvariantAuditor auditor(rec.handler());
  auditor.CheckRequestAccounting(Seconds(1.0), 7, Megabits(10), Megabits(4));
  EXPECT_TRUE(rec.violations().empty());
  auditor.CheckRequestAccounting(Seconds(2.0), 7, Megabits(10), Megabits(11));
  ASSERT_EQ(rec.violations().size(), 1u);
  EXPECT_EQ(rec.violations()[0].invariant, "request-accounting");
}

TEST(InvariantAuditorTest, FlagsLedgerRunningBackwards) {
  Recorder rec;
  InvariantAuditor auditor(rec.handler());
  auditor.CheckRequestAccounting(Seconds(1.0), 7, Megabits(10), Megabits(4));
  auditor.CheckRequestAccounting(Seconds(2.0), 7, Megabits(8), Megabits(4));
  EXPECT_TRUE(rec.Fired("request-accounting"));
}

TEST(InvariantAuditorTest, ForgetResetsTheLedger) {
  Recorder rec;
  InvariantAuditor auditor(rec.handler());
  auditor.CheckRequestAccounting(Seconds(1.0), 7, Megabits(10), Megabits(4));
  auditor.ForgetRequest(7);
  // Same id reused from zero: not a regression.
  auditor.CheckRequestAccounting(Seconds(2.0), 7, Megabits(1), Megabits(0));
  EXPECT_TRUE(rec.violations().empty());
}

// --- Theorem 1 buffer sizes ---

TEST(InvariantAuditorTest, AcceptsClosedFormAllocation) {
  Recorder rec;
  InvariantAuditor auditor(rec.handler());
  const core::AllocParams params = TestParams(core::ScheduleMethod::kRoundRobin);

  AllocationRecord record;
  record.time = Seconds(1.0);
  record.n = 5;
  record.k = 3;
  record.buffer_size = core::DynamicBufferSize(params, 5, 3).value();
  record.usage_period = record.buffer_size / params.cr;
  auditor.CheckAllocation(params, core::ScheduleMethod::kRoundRobin,
                          disk::SeagateBarracuda9LP(), /*dynamic_scheme=*/true,
                          record);
  EXPECT_TRUE(rec.violations().empty());
}

TEST(InvariantAuditorTest, FlagsCorruptDynamicBufferSize) {
  Recorder rec;
  InvariantAuditor auditor(rec.handler());
  const core::AllocParams params = TestParams(core::ScheduleMethod::kRoundRobin);

  AllocationRecord record;
  record.time = Seconds(1.0);
  record.n = 5;
  record.k = 3;
  record.buffer_size = core::DynamicBufferSize(params, 5, 3).value() * 1.01;
  record.usage_period = record.buffer_size / params.cr;
  auditor.CheckAllocation(params, core::ScheduleMethod::kRoundRobin,
                          disk::SeagateBarracuda9LP(), /*dynamic_scheme=*/true,
                          record);
  ASSERT_EQ(rec.violations().size(), 1u);
  EXPECT_EQ(rec.violations()[0].invariant, "theorem1-buffer-size");
}

TEST(InvariantAuditorTest, FlagsUsagePeriodMismatch) {
  Recorder rec;
  InvariantAuditor auditor(rec.handler());
  const core::AllocParams params = TestParams(core::ScheduleMethod::kRoundRobin);

  AllocationRecord record;
  record.time = Seconds(1.0);
  record.n = 5;
  record.k = 3;
  record.buffer_size = core::DynamicBufferSize(params, 5, 3).value();
  record.usage_period = record.buffer_size / params.cr * 2;  // Eq. (8) broken.
  auditor.CheckAllocation(params, core::ScheduleMethod::kRoundRobin,
                          disk::SeagateBarracuda9LP(), /*dynamic_scheme=*/true,
                          record);
  EXPECT_TRUE(rec.Fired("usage-period"));
}

TEST(InvariantAuditorTest, AcceptsStaticSchemeAllocation) {
  Recorder rec;
  InvariantAuditor auditor(rec.handler());
  const core::AllocParams params = TestParams(core::ScheduleMethod::kRoundRobin);

  AllocationRecord record;
  record.time = Seconds(1.0);
  record.n = 3;
  record.k = 0;
  record.buffer_size = core::StaticSchemeBufferSize(params).value();
  record.usage_period = record.buffer_size / params.cr;
  auditor.CheckAllocation(params, core::ScheduleMethod::kRoundRobin,
                          disk::SeagateBarracuda9LP(),
                          /*dynamic_scheme=*/false, record);
  EXPECT_TRUE(rec.violations().empty());

  record.buffer_size *= 0.5;  // Static scheme must always hand out BS(N).
  record.usage_period = record.buffer_size / params.cr;
  auditor.CheckAllocation(params, core::ScheduleMethod::kRoundRobin,
                          disk::SeagateBarracuda9LP(),
                          /*dynamic_scheme=*/false, record);
  EXPECT_TRUE(rec.Fired("theorem1-buffer-size"));
}

// --- Service sequence / BubbleUp ordering ---

TEST(InvariantAuditorTest, FlagsDuplicateInServiceSequence) {
  Recorder rec;
  InvariantAuditor auditor(rec.handler());
  FakeContext ctx;
  ctx.Set(1);
  ctx.Set(2);
  auditor.CheckServiceSequence(ctx, {1, 2, 1}, Seconds(0.0));
  EXPECT_TRUE(rec.Fired("service-sequence"));
}

TEST(InvariantAuditorTest, FlagsSatisfiedRequestInSequence) {
  Recorder rec;
  InvariantAuditor auditor(rec.handler());
  FakeContext ctx;
  ctx.Set(1).needs_service = false;
  auditor.CheckServiceSequence(ctx, {1}, Seconds(0.0));
  EXPECT_TRUE(rec.Fired("service-sequence"));
}

TEST(InvariantAuditorTest, AcceptsSafeNewcomerDecision) {
  Recorder rec;
  InvariantAuditor auditor(rec.handler());
  FakeContext ctx;
  ctx.Set(1).fresh = true;
  ctx.Set(1).service_time = Seconds(1.0);
  ctx.Set(2).deadline = Seconds(10.0);  // Far away: the newcomer displaces nothing.
  ctx.Set(2).service_time = Seconds(1.0);
  sched::ServiceDecision d{1, Seconds(0.0)};
  auditor.CheckServiceDecision(ctx, {1, 2}, d, Seconds(0.0));
  EXPECT_TRUE(rec.violations().empty());
}

TEST(InvariantAuditorTest, FlagsNewcomerDisplacingTightDeadline) {
  Recorder rec;
  InvariantAuditor auditor(rec.handler());
  FakeContext ctx;
  ctx.Set(1).fresh = true;
  ctx.Set(1).service_time = Seconds(5.0);
  ctx.Set(2).deadline = Seconds(3.0);  // Serving the newcomer first misses this.
  ctx.Set(2).service_time = Seconds(1.0);
  // A correct scheduler would catch request 2 up first; serving the
  // newcomer anyway is an ordering violation.
  sched::ServiceDecision d{1, Seconds(0.0)};
  auditor.CheckServiceDecision(ctx, {1, 2}, d, Seconds(0.0));
  EXPECT_TRUE(rec.Fired("bubbleup-ordering"));
}

TEST(InvariantAuditorTest, FlagsLazyStartPastSafePoint) {
  Recorder rec;
  InvariantAuditor auditor(rec.handler());
  FakeContext ctx;
  ctx.set_reserve(Seconds(1.0));
  ctx.Set(1).deadline = Seconds(10.0);
  ctx.Set(1).service_time = Seconds(2.0);
  // Latest safe start is 10 − 2 = 8; minus the newcomer reserve → 7.
  sched::ServiceDecision late{1, Seconds(8.5)};
  auditor.CheckServiceDecision(ctx, {1}, late, Seconds(0.0));
  EXPECT_TRUE(rec.Fired("bubbleup-ordering"));

  Recorder rec2;
  auditor.set_handler(rec2.handler());
  sched::ServiceDecision on_time{1, Seconds(7.0)};
  auditor.CheckServiceDecision(ctx, {1}, on_time, Seconds(0.0));
  EXPECT_TRUE(rec2.violations().empty());
}

TEST(InvariantAuditorTest, FlagsDecisionOutsideSequence) {
  Recorder rec;
  InvariantAuditor auditor(rec.handler());
  FakeContext ctx;
  ctx.Set(1);
  sched::ServiceDecision d{99, Seconds(0.0)};
  auditor.CheckServiceDecision(ctx, {1}, d, Seconds(0.0));
  EXPECT_TRUE(rec.Fired("bubbleup-ordering"));
}

#if VODB_AUDIT_ENABLED

// --- End-to-end: the simulator's compiled-in hooks ---

Result<std::vector<ArrivalEvent>> SmallWorkload(std::uint64_t seed) {
  WorkloadConfig w;
  w.duration = Hours(1);
  w.total_expected_arrivals = 60;
  w.theta = 0.5;
  w.peak_time = w.duration / 2;
  w.seed = seed;
  return GenerateWorkload(w);
}

TEST(InvariantAuditorSimulationTest, CleanRunAuditsClean) {
  for (const auto method :
       {core::ScheduleMethod::kRoundRobin, core::ScheduleMethod::kSweep,
        core::ScheduleMethod::kGss}) {
    SimConfig cfg;
    cfg.method = method;
    cfg.scheme = AllocScheme::kDynamic;
    cfg.t_log =
        method == core::ScheduleMethod::kRoundRobin ? Minutes(40) : Minutes(20);
    auto arr = SmallWorkload(5);
    ASSERT_TRUE(arr.ok());
    auto sim = VodSimulator::Create(cfg, nullptr);
    ASSERT_TRUE(sim.ok()) << sim.status().ToString();

    Recorder rec;
    (*sim)->auditor().set_handler(rec.handler());
    ASSERT_TRUE((*sim)->AddArrivals(*arr).ok());
    (*sim)->RunToCompletion();
    (*sim)->Finalize();

    EXPECT_GT((*sim)->auditor().checks(), 0)
        << core::ScheduleMethodName(method);
    EXPECT_EQ((*sim)->auditor().violations(), 0)
        << core::ScheduleMethodName(method) << ": first violation: "
        << (rec.violations().empty() ? "-" : rec.violations()[0].detail);
  }
}

/// A broker whose incremental ledger is deliberately broken: it admits
/// everything but reports more reserved memory than its capacity.
class CorruptBroker final : public MemoryBroker {
 public:
  [[nodiscard]] bool CanAdmit(int, int, int) const override { return true; }
  void OnState(int, int n, int) override { n_ = n; }
  [[nodiscard]] Bits ReservedMemory() const override {
    // "Leaks" 2 capacities' worth as soon as anything is admitted.
    return n_ > 0 ? 3 * kCapacity : Bits(0);
  }
  [[nodiscard]] Bits Capacity() const override { return kCapacity; }

  static constexpr Bits kCapacity = Gigabits(1);

 private:
  int n_ = 0;
};

TEST(InvariantAuditorSimulationTest, CorruptBrokerAccountingFires) {
  SimConfig cfg;
  CorruptBroker broker;
  auto arr = SmallWorkload(7);
  ASSERT_TRUE(arr.ok());
  auto sim = VodSimulator::Create(cfg, &broker);
  ASSERT_TRUE(sim.ok()) << sim.status().ToString();

  Recorder rec;
  (*sim)->auditor().set_handler(rec.handler());
  ASSERT_TRUE((*sim)->AddArrivals(*arr).ok());
  (*sim)->RunToCompletion();

  EXPECT_TRUE(rec.Fired("memory-conservation"));
  EXPECT_GT((*sim)->auditor().violations(), 0);
}

#endif  // VODB_AUDIT_ENABLED

}  // namespace
}  // namespace vod::sim
