// Unit tests for the fault-injection layer itself: the --faults spec
// grammar, the injector's determinism/replay contract, its distributional
// behaviour (EIO hit rate tracks p), and the zero-draw guarantee that
// underpins the observer-effect property (an injector that never fires
// consumes no randomness, so it cannot perturb anything).

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "fault/fault_spec.h"
#include "fault/injector.h"

namespace vod::fault {
namespace {

// ---------------------------------------------------------------------------
// Spec grammar
// ---------------------------------------------------------------------------

TEST(FaultSpecTest, EmptyAndNoneParseToEmptySchedule) {
  for (const char* text : {"", "none", "off", "  none  "}) {
    const Result<FaultSpec> spec = ParseFaultSpec(text);
    ASSERT_TRUE(spec.ok()) << text;
    EXPECT_TRUE(spec.value().empty()) << text;
  }
}

TEST(FaultSpecTest, ParsesFullLatencyClause) {
  const Result<FaultSpec> spec =
      ParseFaultSpec("latency:start=10,end=20,disk=1,p=0.5,factor=3,extra=0.2");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  ASSERT_EQ(spec.value().clauses.size(), 1u);
  const FaultClause& c = spec.value().clauses[0];
  EXPECT_EQ(c.kind, FaultKind::kLatency);
  EXPECT_DOUBLE_EQ(ToSeconds(c.start), 10.0);
  EXPECT_DOUBLE_EQ(ToSeconds(c.end), 20.0);
  EXPECT_EQ(c.disk, 1);
  EXPECT_DOUBLE_EQ(c.p, 0.5);
  EXPECT_DOUBLE_EQ(c.factor, 3.0);
  EXPECT_DOUBLE_EQ(ToSeconds(c.extra), 0.2);
}

TEST(FaultSpecTest, OmittedEndIsInfinity) {
  const Result<FaultSpec> spec = ParseFaultSpec("outage:start=100");
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(std::isinf(spec.value().clauses[0].end.value()));
}

TEST(FaultSpecTest, MultiClauseSpecKeepsOrder) {
  const Result<FaultSpec> spec = ParseFaultSpec(
      "eio:start=0,end=5,p=0.1;memsqueeze:start=2,end=8,scale=0.25;"
      "burst:at=30,count=4");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  ASSERT_EQ(spec.value().clauses.size(), 3u);
  EXPECT_EQ(spec.value().clauses[0].kind, FaultKind::kEio);
  EXPECT_EQ(spec.value().clauses[1].kind, FaultKind::kMemSqueeze);
  EXPECT_EQ(spec.value().clauses[2].kind, FaultKind::kBurst);
  EXPECT_EQ(spec.value().clauses[2].count, 4);
}

TEST(FaultSpecTest, ToStringRoundTrips) {
  const char* text =
      "latency:start=10,end=20,p=0.5,factor=3;"
      "eio:start=0,end=5,disk=2,p=0.1,retries=2,backoff=0.1;"
      "outage:start=50,end=60,disk=1;memsqueeze:start=2,end=8,scale=0.25;"
      "burst:at=30,count=4,video=1,spread=10,viewing=600";
  const Result<FaultSpec> spec = ParseFaultSpec(text);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const std::string canonical = spec.value().ToString();
  const Result<FaultSpec> again = ParseFaultSpec(canonical);
  ASSERT_TRUE(again.ok()) << canonical << " -> " << again.status().ToString();
  EXPECT_EQ(again.value().ToString(), canonical);
  ASSERT_EQ(again.value().clauses.size(), spec.value().clauses.size());
  for (std::size_t i = 0; i < spec.value().clauses.size(); ++i) {
    EXPECT_EQ(again.value().clauses[i].kind, spec.value().clauses[i].kind);
    EXPECT_DOUBLE_EQ(again.value().clauses[i].p, spec.value().clauses[i].p);
  }
}

TEST(FaultSpecTest, RejectsMalformedInput) {
  // kind / key / value errors must all surface as InvalidArgument, never
  // silently parse to a default.
  const char* bad[] = {
      "flood:start=0",                 // Unknown kind.
      "latency:retries=3",             // Key belongs to eio, not latency.
      "eio:p=1.5",                     // Probability out of [0, 1].
      "latency:factor=0.5",            // Factor < 1 would speed reads up.
      "memsqueeze:scale=0",            // Zero capacity is an outage, not a squeeze.
      "memsqueeze:scale=1.5",          // Growth is not a fault.
      "eio:start=10,end=5",            // Empty window.
      "burst:at=10",                   // count is mandatory for bursts.
      "burst:count=-3",                // Negative count.
      "outage:disk=1.5",               // Disk ids are integers.
      "latency:start=abc",             // Unparsable number.
      "latency:start",                 // Missing '='.
  };
  for (const char* text : bad) {
    const Result<FaultSpec> spec = ParseFaultSpec(text);
    EXPECT_FALSE(spec.ok()) << "accepted: " << text;
    if (!spec.ok()) {
      EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument) << text;
    }
  }
}

// ---------------------------------------------------------------------------
// Injector semantics
// ---------------------------------------------------------------------------

FaultSpec MustParse(const char* text) {
  Result<FaultSpec> spec = ParseFaultSpec(text);
  EXPECT_TRUE(spec.ok()) << text << ": " << spec.status().ToString();
  return spec.value();
}

TEST(InjectorTest, InactiveInjectorIsStrictNoOp) {
  Injector inj(MustParse("none"), 7);
  EXPECT_FALSE(inj.active());
  const ReadFault f = inj.OnRead(0, Seconds(123.0));
  EXPECT_FALSE(f.fail);
  EXPECT_DOUBLE_EQ(f.latency_factor, 1.0);
  EXPECT_DOUBLE_EQ(ToSeconds(f.extra_latency), 0.0);
  EXPECT_FALSE(inj.InOutage(0, Seconds(123.0)));
  EXPECT_DOUBLE_EQ(inj.CapacityScale(Seconds(123.0)), 1.0);
  EXPECT_TRUE(inj.Bursts().empty());
}

TEST(InjectorTest, DeterministicClausesRespectWindowAndDisk) {
  Injector inj(MustParse("latency:start=10,end=20,disk=1,factor=2,extra=0.5"),
               1);
  // Outside the window / wrong disk: identity.
  EXPECT_DOUBLE_EQ(inj.OnRead(1, Seconds(9.999)).latency_factor, 1.0);
  EXPECT_DOUBLE_EQ(inj.OnRead(1, Seconds(20.0)).latency_factor, 1.0);  // end exclusive
  EXPECT_DOUBLE_EQ(inj.OnRead(0, Seconds(15.0)).latency_factor, 1.0);
  // Inside: deterministic hit.
  const ReadFault f = inj.OnRead(1, Seconds(10.0));  // start inclusive
  EXPECT_DOUBLE_EQ(f.latency_factor, 2.0);
  EXPECT_DOUBLE_EQ(ToSeconds(f.extra_latency), 0.5);
  EXPECT_FALSE(f.fail);
}

TEST(InjectorTest, OverlappingLatencyClausesCompose) {
  Injector inj(MustParse(
      "latency:start=0,end=100,factor=2,extra=0.1;"
      "latency:start=50,end=100,factor=3,extra=0.2"), 1);
  const ReadFault one = inj.OnRead(0, Seconds(25.0));
  EXPECT_DOUBLE_EQ(one.latency_factor, 2.0);
  EXPECT_DOUBLE_EQ(ToSeconds(one.extra_latency), 0.1);
  const ReadFault both = inj.OnRead(0, Seconds(75.0));
  EXPECT_DOUBLE_EQ(both.latency_factor, 6.0);  // Factors multiply.
  EXPECT_NEAR(ToSeconds(both.extra_latency), 0.3, 1e-12);  // Extras add.
}

TEST(InjectorTest, EioCarriesRetryPolicy) {
  Injector inj(MustParse("eio:start=0,end=10,retries=2,backoff=0.25"), 1);
  const ReadFault f = inj.OnRead(0, Seconds(5.0));
  EXPECT_TRUE(f.fail);
  EXPECT_EQ(f.max_retries, 2);
  EXPECT_DOUBLE_EQ(ToSeconds(f.retry_backoff), 0.25);
}

TEST(InjectorTest, ProbabilisticEioTracksP) {
  constexpr double kP = 0.3;
  constexpr int kReads = 20000;
  Injector inj(MustParse("eio:start=0,p=0.3"), 99);
  int failures = 0;
  for (int i = 0; i < kReads; ++i) {
    if (inj.OnRead(0, Seconds(static_cast<double>(i))).fail) ++failures;
  }
  const double rate = static_cast<double>(failures) / kReads;
  // ±4σ band for a Bernoulli(0.3) sample of 20k.
  const double sigma = std::sqrt(kP * (1 - kP) / kReads);
  EXPECT_NEAR(rate, kP, 4 * sigma);
  EXPECT_EQ(inj.reads_seen(), kReads);
  EXPECT_EQ(inj.read_failures_injected(), failures);
}

TEST(InjectorTest, SameSeedReplaysExactly) {
  const FaultSpec spec =
      MustParse("eio:start=0,end=1000,p=0.5;latency:start=0,p=0.4,factor=4");
  Injector a(spec, 12345);
  Injector b(spec, 12345);
  for (int i = 0; i < 5000; ++i) {
    const Seconds t = Seconds(0.2 * i);
    const ReadFault fa = a.OnRead(i % 3, t);
    const ReadFault fb = b.OnRead(i % 3, t);
    ASSERT_EQ(fa.fail, fb.fail) << i;
    ASSERT_DOUBLE_EQ(fa.latency_factor, fb.latency_factor) << i;
  }
}

TEST(InjectorTest, DifferentSeedsDiffer) {
  const FaultSpec spec = MustParse("eio:start=0,p=0.5");
  Injector a(spec, 1);
  Injector b(spec, 2);
  int differing = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.OnRead(0, Seconds(i)).fail != b.OnRead(0, Seconds(i)).fail) ++differing;
  }
  EXPECT_GT(differing, 0);
}

// The determinism contract's load-bearing half: reads that no probabilistic
// clause covers consume no randomness, so the decisions inside a window are
// a pure function of (seed, hit sequence) — prefixing any number of
// out-of-window reads cannot shift them.
TEST(InjectorTest, OutOfWindowReadsConsumeNoRandomness) {
  const FaultSpec spec = MustParse("eio:start=100,end=200,p=0.5");
  Injector cold(spec, 77);
  Injector warmed(spec, 77);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(warmed.OnRead(0, static_cast<Seconds>(i % 90)).fail);
  }
  for (int i = 0; i < 200; ++i) {
    const Seconds t = Seconds(100.0 + 0.5 * i);
    ASSERT_EQ(cold.OnRead(0, t).fail, warmed.OnRead(0, t).fail) << i;
  }
}

TEST(InjectorTest, DeterministicClausesConsumeNoRandomness) {
  // A p=1 clause must not draw either: its window cannot perturb a later
  // probabilistic window.
  const FaultSpec with_det = MustParse(
      "latency:start=0,end=50,factor=2;eio:start=100,end=200,p=0.5");
  const FaultSpec without = MustParse("eio:start=100,end=200,p=0.5");
  Injector a(with_det, 31);
  Injector b(without, 31);
  for (int i = 0; i < 100; ++i) a.OnRead(0, static_cast<Seconds>(i % 50));
  for (int i = 0; i < 200; ++i) {
    const Seconds t = Seconds(100.0 + 0.5 * i);
    ASSERT_EQ(a.OnRead(0, t).fail, b.OnRead(0, t).fail) << i;
  }
}

TEST(InjectorTest, OutageWindowAndResumeTime) {
  Injector inj(MustParse("outage:start=50,end=60,disk=1;outage:start=55,end=70,disk=1"),
               1);
  EXPECT_FALSE(inj.InOutage(1, Seconds(49.9)));
  EXPECT_FALSE(inj.InOutage(0, Seconds(55.0)));  // Other disks unaffected.
  Seconds resume;
  ASSERT_TRUE(inj.InOutage(1, Seconds(52.0), &resume));
  EXPECT_DOUBLE_EQ(ToSeconds(resume), 60.0);
  ASSERT_TRUE(inj.InOutage(1, Seconds(57.0), &resume));
  EXPECT_DOUBLE_EQ(ToSeconds(resume), 70.0);  // Max end over covering windows.
  EXPECT_FALSE(inj.InOutage(1, Seconds(70.0)));
}

TEST(InjectorTest, CapacityScaleComposes) {
  Injector inj(MustParse(
      "memsqueeze:start=0,end=100,scale=0.5;"
      "memsqueeze:start=50,end=100,scale=0.5"), 1);
  EXPECT_DOUBLE_EQ(inj.CapacityScale(Seconds(25.0)), 0.5);
  EXPECT_DOUBLE_EQ(inj.CapacityScale(Seconds(75.0)), 0.25);
  EXPECT_DOUBLE_EQ(inj.CapacityScale(Seconds(100.0)), 1.0);
}

TEST(InjectorTest, BurstsAreSortedSeededAndStable) {
  const FaultSpec spec = MustParse(
      "burst:at=100,count=8,video=2,spread=30,viewing=600;"
      "burst:at=50,count=4,disk=1");
  Injector inj(spec, 42);
  const std::vector<BurstArrival> bursts = inj.Bursts();
  ASSERT_EQ(bursts.size(), 12u);
  for (std::size_t i = 1; i < bursts.size(); ++i) {
    EXPECT_LE(bursts[i - 1].time, bursts[i].time);
  }
  int in_first = 0;
  for (const BurstArrival& b : bursts) {
    if (b.video == 2) {
      EXPECT_GE(b.time, Seconds(100.0));
      EXPECT_LT(b.time, Seconds(130.0));
      EXPECT_DOUBLE_EQ(ToSeconds(b.viewing_time), 600.0);
      EXPECT_EQ(b.disk, 0);  // disk=-1 clamps to 0.
      ++in_first;
    } else {
      EXPECT_GE(b.time, Seconds(50.0));
      EXPECT_EQ(b.disk, 1);
    }
  }
  EXPECT_EQ(in_first, 8);
  // Pure function of (spec, seed): repeated calls and sibling injectors agree.
  EXPECT_EQ(inj.Bursts().size(), bursts.size());
  Injector again(spec, 42);
  const std::vector<BurstArrival> replay = again.Bursts();
  ASSERT_EQ(replay.size(), bursts.size());
  for (std::size_t i = 0; i < bursts.size(); ++i) {
    EXPECT_DOUBLE_EQ(ToSeconds(replay[i].time), ToSeconds(bursts[i].time));
    EXPECT_EQ(replay[i].video, bursts[i].video);
  }
  // ... and calling Bursts() never disturbs the OnRead stream.
  Injector read_only(MustParse("eio:start=0,p=0.5"), 8);
  Injector bursty(MustParse("eio:start=0,p=0.5;burst:at=0,count=16"), 8);
  (void)bursty.Bursts();
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(read_only.OnRead(0, Seconds(i)).fail, bursty.OnRead(0, Seconds(i)).fail) << i;
  }
}

}  // namespace
}  // namespace vod::fault
