// Coverage for the harness-shared BenchOptions parser: round-trips of every
// flag and strict rejection of malformed values (satellite of the
// perf-harness PR — the bench flags are load-bearing in CI, so a typo must
// fail loudly, not silently fall back to a default).

#include "bench/bench_common.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace vod::bench {
namespace {

/// argv builder: keeps storage alive for the char* view TryParse wants.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : strings_(std::move(args)) {
    strings_.insert(strings_.begin(), "bench_under_test");
    ptrs_.reserve(strings_.size());
    for (std::string& s : strings_) ptrs_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> strings_;
  std::vector<char*> ptrs_;
};

Result<BenchOptions> ParseOf(std::vector<std::string> args) {
  Argv a(std::move(args));
  return BenchOptions::TryParse(a.argc(), a.argv());
}

TEST(BenchOptionsTest, DefaultsWhenNoFlags) {
  auto opt = ParseOf({});
  ASSERT_TRUE(opt.ok());
  EXPECT_FALSE(opt->full);
  EXPECT_EQ(opt->seeds, 0);
  EXPECT_EQ(opt->threads, 0);
  EXPECT_FALSE(opt->json);
  EXPECT_TRUE(opt->trace.empty());
  EXPECT_TRUE(opt->metrics.empty());
  EXPECT_FALSE(opt->progress);
  EXPECT_TRUE(opt->faults.empty());
  EXPECT_EQ(opt->fault_seed, 0u);
  EXPECT_FALSE(opt->spans);
  EXPECT_TRUE(opt->timeseries.empty());
  EXPECT_TRUE(opt->postmortem_dir.empty());
}

TEST(BenchOptionsTest, FullRoundTripOfEveryFlag) {
  auto opt = ParseOf({"--full", "--seeds=5", "--threads=8", "--json",
                      "--trace=t.jsonl", "--metrics=m.json", "--progress",
                      "--faults=eio:start=3600,end=7200,p=0.2",
                      "--fault-seed=12345678901234567890", "--spans",
                      "--timeseries=ts.csv", "--postmortem-dir=dumps"});
  ASSERT_TRUE(opt.ok()) << opt.status().ToString();
  EXPECT_TRUE(opt->full);
  EXPECT_EQ(opt->seeds, 5);
  EXPECT_EQ(opt->threads, 8);
  EXPECT_TRUE(opt->json);
  EXPECT_EQ(opt->trace, "t.jsonl");
  EXPECT_EQ(opt->metrics, "m.json");
  EXPECT_TRUE(opt->progress);
  EXPECT_EQ(opt->faults, "eio:start=3600,end=7200,p=0.2");
  EXPECT_EQ(opt->fault_seed, 12345678901234567890ULL);
  EXPECT_TRUE(opt->spans);
  EXPECT_EQ(opt->timeseries, "ts.csv");
  EXPECT_EQ(opt->postmortem_dir, "dumps");
}

TEST(BenchOptionsTest, BareTraceDefaultsFilename) {
  auto opt = ParseOf({"--trace"});
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ(opt->trace, "trace.json");
}

TEST(BenchOptionsTest, ThreadsOneIsSerialLegacyPath) {
  auto opt = ParseOf({"--threads=1"});
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ(opt->threads, 1);
}

TEST(BenchOptionsTest, RejectsMalformedThreads) {
  for (const char* bad : {"--threads=", "--threads=abc", "--threads=4x",
                          "--threads=0", "--threads=-2", "--threads=9999"}) {
    auto opt = ParseOf({bad});
    EXPECT_FALSE(opt.ok()) << bad << " should be rejected";
    EXPECT_EQ(opt.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(BenchOptionsTest, RejectsMalformedSeeds) {
  for (const char* bad :
       {"--seeds=", "--seeds=zero", "--seeds=0", "--seeds=-1",
        "--seeds=3.5", "--seeds=10001"}) {
    auto opt = ParseOf({bad});
    EXPECT_FALSE(opt.ok()) << bad << " should be rejected";
  }
}

TEST(BenchOptionsTest, RejectsMalformedFaultSeed) {
  for (const char* bad :
       {"--fault-seed=", "--fault-seed=xyz", "--fault-seed=-7",
        "--fault-seed=1e9"}) {
    auto opt = ParseOf({bad});
    EXPECT_FALSE(opt.ok()) << bad << " should be rejected";
  }
}

TEST(BenchOptionsTest, FaultSeedZeroMeansDerived) {
  auto opt = ParseOf({"--fault-seed=0"});
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ(opt->fault_seed, 0u);
}

TEST(BenchOptionsTest, RejectsEmptyArtifactPaths) {
  EXPECT_FALSE(ParseOf({"--trace="}).ok());
  EXPECT_FALSE(ParseOf({"--metrics="}).ok());
  EXPECT_FALSE(ParseOf({"--faults="}).ok());
  EXPECT_FALSE(ParseOf({"--timeseries="}).ok());
  EXPECT_FALSE(ParseOf({"--postmortem-dir="}).ok());
}

TEST(BenchOptionsTest, SpansRequiresTrace) {
  auto bare = ParseOf({"--spans"});
  EXPECT_FALSE(bare.ok());
  EXPECT_EQ(bare.status().code(), StatusCode::kInvalidArgument);
  // Either --trace form satisfies it, in either argument order.
  EXPECT_TRUE(ParseOf({"--spans", "--trace"}).ok());
  EXPECT_TRUE(ParseOf({"--trace=t.json", "--spans"}).ok());
}

TEST(BenchOptionsTest, ObservabilityFlagsAreIndependentOfEachOther) {
  // Timeseries and postmortem-dir stand alone (no --trace needed), and
  // value-carrying forms don't leak into each other.
  auto opt = ParseOf({"--timeseries=a.csv", "--postmortem-dir=d"});
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ(opt->timeseries, "a.csv");
  EXPECT_EQ(opt->postmortem_dir, "d");
  EXPECT_TRUE(opt->trace.empty());
  EXPECT_FALSE(opt->spans);
  // Bare --timeseries / --postmortem-dir (no =) are unknown options.
  EXPECT_FALSE(ParseOf({"--timeseries"}).ok());
  EXPECT_FALSE(ParseOf({"--postmortem-dir"}).ok());
}

TEST(BenchOptionsTest, RejectsUnknownOptions) {
  for (const char* bad : {"--fulll", "--sees=3", "-j", "positional"}) {
    auto opt = ParseOf({bad});
    EXPECT_FALSE(opt.ok()) << bad << " should be rejected";
  }
}

TEST(BenchOptionsTest, ApplyFaultsToCopiesBothFields) {
  auto opt = ParseOf({"--faults=none", "--fault-seed=42"});
  ASSERT_TRUE(opt.ok());
  exp::DayRunConfig cfg;
  opt->ApplyFaultsTo(&cfg);
  EXPECT_EQ(cfg.faults, "none");
  EXPECT_EQ(cfg.fault_seed, 42u);
}

}  // namespace
}  // namespace vod::bench
