#!/usr/bin/env python3
"""End-to-end tests for scripts/bench_compare.py (ctest-invoked, stdlib
unittest — the container has no pytest).

Covers the acceptance matrix of the perf-gate:
  * a byte-identical rerun passes,
  * a synthetic 2x median regression fails (exit 1),
  * jitter below the noise allowance (< 3 x CV) passes,
  * jitter above it fails,
  * a benchmark dropped from the candidate fails,
  * cross-machine comparisons downgrade to advisory (exit 0) unless
    --strict-machine is passed,
  * malformed reports exit 2.
"""

import copy
import json
import os
import subprocess
import sys
import tempfile
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SCRIPT = os.path.join(REPO_ROOT, "scripts", "bench_compare.py")


def make_report(medians: dict[str, float], cv: float = 0.02,
                cpu: str = "Test CPU", build: str = "Release") -> dict:
    """A minimal vodb-bench-v1 report with the given per-benchmark medians."""
    benches = []
    for name, median in medians.items():
        benches.append({
            "name": name,
            "iterations": 1024,
            "repetitions": 9,
            "ns_per_iter": {
                "min": median * 0.97,
                "max": median * 1.05,
                "mean": median * 1.01,
                "median": median,
                "stddev": median * cv,
                "cv": cv,
            },
        })
    return {
        "schema": "vodb-bench-v1",
        "machine": {
            "hostname": "testhost",
            "cpu_model": cpu,
            "core_count": 4,
            "governor": "performance",
        },
        "git_sha": "0" * 40,
        "build_type": build,
        "benchmarks": benches,
    }


class BenchCompareTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write(self, name: str, doc) -> str:
        path = os.path.join(self.tmp.name, name)
        with open(path, "w", encoding="utf-8") as f:
            if isinstance(doc, str):
                f.write(doc)
            else:
                json.dump(doc, f, indent=2)
        return path

    def run_compare(self, baseline: str, candidate: str, *extra: str):
        return subprocess.run(
            [sys.executable, SCRIPT, "--baseline", baseline,
             "--candidate", candidate, *extra],
            capture_output=True, text=True, check=False)

    BASE = {"table_lookup": 6.8, "bubbleup_insert": 435.0,
            "run_day_static": 6.07e7}

    def test_identical_rerun_passes(self):
        base = self.write("base.json", make_report(self.BASE))
        # Byte-identical: literally the same content.
        cand = self.write("cand.json", make_report(self.BASE))
        proc = self.run_compare(base, cand)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("no regressions", proc.stderr)

    def test_two_x_regression_fails(self):
        base = self.write("base.json", make_report(self.BASE))
        slowed = dict(self.BASE, table_lookup=self.BASE["table_lookup"] * 2)
        cand = self.write("cand.json", make_report(slowed))
        proc = self.run_compare(base, cand)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
        self.assertIn("table_lookup", proc.stderr)
        self.assertIn("REGRESSED", proc.stdout)

    def test_sub_noise_jitter_passes(self):
        # cv = 8% => allowance = max(10%, 24%) = 24%; +20% must pass.
        base = self.write("base.json", make_report(self.BASE, cv=0.08))
        jittered = {k: v * 1.20 for k, v in self.BASE.items()}
        cand = self.write("cand.json", make_report(jittered, cv=0.08))
        proc = self.run_compare(base, cand)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_beyond_noise_jitter_fails(self):
        # Same 8% cv but a +30% move exceeds the 24% allowance.
        base = self.write("base.json", make_report(self.BASE, cv=0.08))
        slowed = {k: v * 1.30 for k, v in self.BASE.items()}
        cand = self.write("cand.json", make_report(slowed, cv=0.08))
        proc = self.run_compare(base, cand)
        self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)

    def test_tight_cv_uses_flat_threshold(self):
        # cv = 0.5% => allowance = flat 10%; +12% fails, +8% passes.
        base = self.write("base.json", make_report(self.BASE, cv=0.005))
        cand_bad = self.write(
            "cand_bad.json",
            make_report({k: v * 1.12 for k, v in self.BASE.items()},
                        cv=0.005))
        self.assertEqual(self.run_compare(base, cand_bad).returncode, 1)
        cand_ok = self.write(
            "cand_ok.json",
            make_report({k: v * 1.08 for k, v in self.BASE.items()},
                        cv=0.005))
        self.assertEqual(self.run_compare(base, cand_ok).returncode, 0)

    def test_improvement_passes(self):
        base = self.write("base.json", make_report(self.BASE))
        faster = {k: v * 0.5 for k, v in self.BASE.items()}
        cand = self.write("cand.json", make_report(faster))
        self.assertEqual(self.run_compare(base, cand).returncode, 0)

    def test_missing_benchmark_fails(self):
        base = self.write("base.json", make_report(self.BASE))
        dropped = {k: v for k, v in self.BASE.items() if k != "table_lookup"}
        cand = self.write("cand.json", make_report(dropped))
        proc = self.run_compare(base, cand)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("missing from", proc.stderr)

    def test_new_benchmark_is_noted_not_failed(self):
        base = self.write("base.json", make_report(self.BASE))
        grown = dict(self.BASE, brand_new=12.0)
        cand = self.write("cand.json", make_report(grown))
        proc = self.run_compare(base, cand)
        self.assertEqual(proc.returncode, 0)
        self.assertIn("new benchmark", proc.stdout)

    def test_cross_machine_regression_is_advisory(self):
        base = self.write("base.json", make_report(self.BASE, cpu="CPU A"))
        slowed = {k: v * 2 for k, v in self.BASE.items()}
        cand = self.write("cand.json", make_report(slowed, cpu="CPU B"))
        proc = self.run_compare(base, cand)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("ADVISORY", proc.stderr)
        # --strict-machine turns the same comparison into a failure.
        strict = self.run_compare(base, cand, "--strict-machine")
        self.assertEqual(strict.returncode, 1)

    def test_build_type_mismatch_is_advisory(self):
        base = self.write("base.json", make_report(self.BASE, build="Release"))
        slowed = {k: v * 2 for k, v in self.BASE.items()}
        cand = self.write("cand.json",
                          make_report(slowed, build="RelWithDebInfo"))
        proc = self.run_compare(base, cand)
        self.assertEqual(proc.returncode, 0)
        self.assertIn("build_type differs", proc.stderr)

    def test_malformed_reports_exit_2(self):
        good = self.write("good.json", make_report(self.BASE))
        not_json = self.write("bad.json", "{not json")
        self.assertEqual(self.run_compare(good, not_json).returncode, 2)
        wrong_schema = self.write(
            "wrong.json", dict(make_report(self.BASE), schema="v999"))
        self.assertEqual(self.run_compare(wrong_schema, good).returncode, 2)
        no_benches = copy.deepcopy(make_report(self.BASE))
        del no_benches["benchmarks"]
        missing = self.write("missing.json", no_benches)
        self.assertEqual(self.run_compare(missing, good).returncode, 2)

    def test_committed_baseline_is_loadable_and_self_compares_clean(self):
        """The repo's committed baseline must parse and pass against
        itself — guards against hand-edits corrupting the anchor."""
        baseline = os.path.join(REPO_ROOT, "bench", "baselines",
                                "BENCH_baseline.json")
        self.assertTrue(os.path.exists(baseline),
                        "bench/baselines/BENCH_baseline.json not committed")
        proc = self.run_compare(baseline, baseline)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main()
