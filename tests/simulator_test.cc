#include "sim/vod_simulator.h"

#include <algorithm>
#include <tuple>

#include <gtest/gtest.h>

#include "common/units.h"
#include "core/static_alloc.h"
#include "sim/workload.h"

namespace vod::sim {
namespace {

using core::ScheduleMethod;

SimConfig MakeConfig(ScheduleMethod method, AllocScheme scheme) {
  SimConfig cfg;
  cfg.method = method;
  cfg.scheme = scheme;
  cfg.t_log =
      method == ScheduleMethod::kRoundRobin ? Minutes(40) : Minutes(20);
  return cfg;
}

Result<std::vector<ArrivalEvent>> ModerateWorkload(std::uint64_t seed,
                                                   double total = 120,
                                                   Seconds duration =
                                                       Hours(2)) {
  WorkloadConfig w;
  w.duration = duration;
  w.total_expected_arrivals = total;
  w.theta = 0.5;
  w.peak_time = duration / 2;
  w.seed = seed;
  return GenerateWorkload(w);
}

class SimulatorInvariants
    : public ::testing::TestWithParam<std::tuple<ScheduleMethod, AllocScheme>> {
};

TEST_P(SimulatorInvariants, FullRunConservesRequestsAndContinuity) {
  const auto [method, scheme] = GetParam();
  auto arr = ModerateWorkload(21);
  ASSERT_TRUE(arr.ok());
  auto sim = VodSimulator::Create(MakeConfig(method, scheme), nullptr);
  ASSERT_TRUE(sim.ok()) << sim.status().ToString();
  ASSERT_TRUE((*sim)->AddArrivals(*arr).ok());
  (*sim)->RunToCompletion();
  (*sim)->Finalize();

  const SimMetrics& m = (*sim)->metrics();
  // Conservation: every arrival is admitted or rejected, every admitted
  // request completes, nothing remains active.
  EXPECT_EQ(m.arrivals, static_cast<long>(arr->size()));
  EXPECT_EQ(m.admitted + m.rejected, m.arrivals);
  EXPECT_EQ(m.completed, m.admitted);
  EXPECT_EQ((*sim)->active_count(), 0);

  // Continuity: starvation is (at most) a rare physical-model residual.
  EXPECT_LE(m.starvation_events, std::max<long>(5, m.services / 100))
      << "services=" << m.services;

  // Every allocation is within the model's domain. (k itself is uncapped —
  // Fig. 5 — but the size saturates at the fully loaded BS(N).)
  const int n_max = (*sim)->alloc_params().n_max;
  const Bits bs_full =
      core::StaticSchemeBufferSize((*sim)->alloc_params()).value();
  for (const AllocationRecord& rec : m.allocations) {
    EXPECT_GE(rec.n, 1);
    EXPECT_LE(rec.n, n_max);
    EXPECT_GE(rec.k, 0);
    EXPECT_GT(rec.buffer_size, Bits(0));
    EXPECT_LE(rec.buffer_size, bs_full * (1 + 1e-9));
    EXPECT_NEAR(ToSeconds(rec.usage_period),
                ToSeconds(rec.buffer_size / (*sim)->alloc_params().cr), 1e-9);
  }

  // Concurrency never exceeds N.
  EXPECT_LE(m.peak_concurrency, n_max);

  // The static scheme never estimates; the dynamic scheme always has k>=1
  // below full load.
  if (scheme == AllocScheme::kStatic) {
    EXPECT_DOUBLE_EQ(m.estimated_k.mean(), 0.0);
  } else {
    EXPECT_GT(m.estimated_k.mean(), 0.5);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMethodsAndSchemes, SimulatorInvariants,
    ::testing::Combine(::testing::Values(ScheduleMethod::kRoundRobin,
                                         ScheduleMethod::kSweep,
                                         ScheduleMethod::kGss),
                       ::testing::Values(AllocScheme::kStatic,
                                         AllocScheme::kDynamic)),
    [](const auto& info) {
      std::string name(
          core::ScheduleMethodName(std::get<0>(info.param)));
      name.erase(std::remove(name.begin(), name.end(), '*'), name.end());
      name += std::get<1>(info.param) == AllocScheme::kStatic ? "_static"
                                                              : "_dynamic";
      return name;
    });

TEST(SimulatorTest, DynamicLatencyBeatsStaticAtLowLoad) {
  // A lightly loaded server: the paper's headline effect. The dynamic
  // scheme's buffers (hence first-fill latencies) are tiny.
  for (ScheduleMethod method : {ScheduleMethod::kRoundRobin,
                                ScheduleMethod::kSweep, ScheduleMethod::kGss}) {
    double mean_il[2] = {0, 0};
    for (AllocScheme scheme : {AllocScheme::kStatic, AllocScheme::kDynamic}) {
      auto arr = ModerateWorkload(33, /*total=*/25, Hours(2));
      ASSERT_TRUE(arr.ok());
      auto sim = VodSimulator::Create(MakeConfig(method, scheme), nullptr);
      ASSERT_TRUE(sim.ok());
      ASSERT_TRUE((*sim)->AddArrivals(*arr).ok());
      (*sim)->RunToCompletion();
      mean_il[scheme == AllocScheme::kDynamic ? 1 : 0] =
          (*sim)->metrics().initial_latency.mean();
    }
    EXPECT_LT(mean_il[1], mean_il[0])
        << core::ScheduleMethodName(method)
        << ": dynamic should beat static at low load";
    EXPECT_LT(mean_il[1], mean_il[0] / 3.0)
        << core::ScheduleMethodName(method);
  }
}

TEST(SimulatorTest, EstimationSuccessHighAtDefaultKnobs) {
  auto arr = ModerateWorkload(55);
  ASSERT_TRUE(arr.ok());
  auto sim = VodSimulator::Create(
      MakeConfig(ScheduleMethod::kRoundRobin, AllocScheme::kDynamic),
      nullptr);
  ASSERT_TRUE(sim.ok());
  ASSERT_TRUE((*sim)->AddArrivals(*arr).ok());
  (*sim)->RunToCompletion();
  (*sim)->Finalize();
  EXPECT_GT((*sim)->metrics().SuccessProbability(), 0.95);
}

TEST(SimulatorTest, WorstCaseRotationStillFeasible) {
  // Even with every rotational delay forced to θ the schedule must hold
  // (the sizing uses worst-case latency throughout).
  auto arr = ModerateWorkload(77, /*total=*/60);
  ASSERT_TRUE(arr.ok());
  SimConfig cfg = MakeConfig(ScheduleMethod::kRoundRobin,
                             AllocScheme::kDynamic);
  cfg.worst_case_rotation = true;
  auto sim = VodSimulator::Create(cfg, nullptr);
  ASSERT_TRUE(sim.ok());
  ASSERT_TRUE((*sim)->AddArrivals(*arr).ok());
  (*sim)->RunToCompletion();
  const SimMetrics& m = (*sim)->metrics();
  EXPECT_LE(m.starvation_events, std::max<long>(5, m.services / 100));
}

TEST(SimulatorTest, FailureInjectionShowsWhatEnforcementPrevents) {
  // A burst far beyond the inertia assumptions. With admission control
  // enabled the excess is deferred; with it disabled more requests slip in
  // immediately (no deferrals) — the enforcement mechanism is what spreads
  // the burst out.
  std::vector<ArrivalEvent> burst;
  for (int i = 0; i < 50; ++i) {
    ArrivalEvent ev;
    ev.time = Seconds(10.0 + i * 0.01);  // 50 requests within half a second.
    ev.video = i % 6;
    ev.viewing_time = Minutes(30);
    burst.push_back(ev);
  }
  SimConfig enforced = MakeConfig(ScheduleMethod::kRoundRobin,
                                  AllocScheme::kDynamic);
  SimConfig unenforced = enforced;
  unenforced.disable_admission_control = true;

  auto sim1 = VodSimulator::Create(enforced, nullptr);
  ASSERT_TRUE(sim1.ok());
  ASSERT_TRUE((*sim1)->AddArrivals(burst).ok());
  (*sim1)->RunToCompletion();

  auto sim2 = VodSimulator::Create(unenforced, nullptr);
  ASSERT_TRUE(sim2.ok());
  ASSERT_TRUE((*sim2)->AddArrivals(burst).ok());
  (*sim2)->RunToCompletion();

  EXPECT_GT((*sim1)->metrics().deferred_admissions, 0);
  EXPECT_EQ((*sim2)->metrics().deferred_admissions, 0);
  // Both complete everyone eventually.
  EXPECT_EQ((*sim1)->metrics().completed, (*sim1)->metrics().admitted);
  EXPECT_EQ((*sim2)->metrics().completed, (*sim2)->metrics().admitted);
}

TEST(SimulatorTest, RejectsAtFullLoad) {
  // More offered load than N = 79 can hold → rejections happen.
  WorkloadConfig w;
  w.duration = Hours(3);
  w.total_expected_arrivals = 500;
  w.theta = 1.0;
  w.seed = 99;
  auto arr = GenerateWorkload(w);
  ASSERT_TRUE(arr.ok());
  auto sim = VodSimulator::Create(
      MakeConfig(ScheduleMethod::kRoundRobin, AllocScheme::kStatic), nullptr);
  ASSERT_TRUE(sim.ok());
  ASSERT_TRUE((*sim)->AddArrivals(*arr).ok());
  (*sim)->RunToCompletion();
  const SimMetrics& m = (*sim)->metrics();
  EXPECT_GT(m.rejected, 0);
  EXPECT_EQ(m.peak_concurrency, 79);
}

TEST(SimulatorTest, StepAndRunUntilAdvanceTheClock) {
  auto arr = ModerateWorkload(1, /*total=*/10, Hours(1));
  ASSERT_TRUE(arr.ok());
  ASSERT_FALSE(arr->empty());
  auto sim = VodSimulator::Create(
      MakeConfig(ScheduleMethod::kRoundRobin, AllocScheme::kDynamic),
      nullptr);
  ASSERT_TRUE(sim.ok());
  ASSERT_TRUE((*sim)->AddArrivals(*arr).ok());
  const Seconds first = (*sim)->NextEventTime();
  EXPECT_DOUBLE_EQ(ToSeconds(first), ToSeconds(arr->front().time));
  EXPECT_TRUE((*sim)->Step());
  EXPECT_GE((*sim)->now(), first);
  (*sim)->RunUntil(Hours(1));
  EXPECT_GE((*sim)->NextEventTime(), Hours(1));
}

TEST(SimulatorTest, AddArrivalsValidates) {
  auto sim = VodSimulator::Create(
      MakeConfig(ScheduleMethod::kRoundRobin, AllocScheme::kDynamic),
      nullptr);
  ASSERT_TRUE(sim.ok());
  ArrivalEvent bad;
  bad.time = Seconds(1.0);
  bad.video = 999;
  bad.viewing_time = Seconds(60);
  EXPECT_FALSE((*sim)->AddArrivals({bad}).ok());
}

TEST(SimulatorTest, ConfigValidation) {
  SimConfig cfg;
  cfg.alpha = 0;
  EXPECT_FALSE(VodSimulator::Create(cfg, nullptr).ok());
  cfg = SimConfig{};
  cfg.t_log = Seconds(0);
  EXPECT_FALSE(VodSimulator::Create(cfg, nullptr).ok());
  cfg = SimConfig{};
  cfg.video_count = 100;  // Does not fit the disk.
  EXPECT_FALSE(VodSimulator::Create(cfg, nullptr).ok());
}

TEST(SimulatorTest, MemoryUsageTrackedAndBounded) {
  auto arr = ModerateWorkload(42, /*total=*/60);
  ASSERT_TRUE(arr.ok());
  auto sim = VodSimulator::Create(
      MakeConfig(ScheduleMethod::kRoundRobin, AllocScheme::kDynamic),
      nullptr);
  ASSERT_TRUE(sim.ok());
  ASSERT_TRUE((*sim)->AddArrivals(*arr).ok());
  (*sim)->RunToCompletion();
  const SimMetrics& m = (*sim)->metrics();
  EXPECT_FALSE(m.memory_usage.empty());
  EXPECT_GT(m.memory_usage.max_value(), 0.0);
  // A loose upper bound: nothing should ever exceed N fully loaded buffers.
  const double cap = ToBits(79.0 * Megabits(206) * 2);
  EXPECT_LT(m.memory_usage.max_value(), cap);
}

TEST(MergeStepSeriesTest, SumsStepFunctions) {
  StepTimeSeries a, b;
  a.Record(0.0, 1.0);
  a.Record(10.0, 3.0);
  b.Record(5.0, 2.0);
  StepTimeSeries sum = MergeStepSeriesSum({&a, &b});
  EXPECT_DOUBLE_EQ(sum.ValueAt(0.0), 1.0);
  EXPECT_DOUBLE_EQ(sum.ValueAt(5.0), 3.0);
  EXPECT_DOUBLE_EQ(sum.ValueAt(10.0), 5.0);
  EXPECT_DOUBLE_EQ(sum.max_value(), 5.0);
}

}  // namespace
}  // namespace vod::sim
