// Sharded MultiDiskSimulator determinism suite. The headline property: a
// sharded run is a pure function of its configuration — byte-identical at
// ANY worker count (1, 2, 8), because each epoch's parallel phase runs
// every disk against a frozen ShardBrokerView snapshot and the merge is a
// serial ascending-disk-order publish. The signature compared below folds
// every per-disk counter, every exactly-accumulated double, and every
// (time, value) point of the step series — each printed at full %.17g
// precision — into per-disk FNV-1a digests, so one flipped bit anywhere
// flips a digest. (Digests, not megabyte strings: a long run produces
// millions of points, and handing two differing ~200 MB strings to
// EXPECT_EQ sends gtest's edit-distance differ into gigabytes of DP
// table.)
//
// Also pinned: with memory unconstrained the admission schedule never
// depends on sibling disks, so the sharded run must equal the serial
// interleaved run exactly — except the memory_reserved series, which by
// design records epoch-snapshot pricing (a frozen view reports sibling
// reservations as of epoch start, the serial run reports them live). And
// the calendar/binary-heap event queues must shard identically.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/units.h"
#include "exp/sharded.h"
#include "exp/thread_pool.h"
#include "sim/multi_disk.h"
#include "sim/workload.h"

namespace vod::sim {
namespace {

SimConfig BaseConfig(EventQueueKind queue = EventQueueKind::kCalendar) {
  SimConfig base;
  base.method = core::ScheduleMethod::kRoundRobin;
  base.scheme = AllocScheme::kDynamic;
  base.t_log = Minutes(40);
  base.seed = 11;
  base.event_queue = queue;
  return base;
}

std::vector<ArrivalEvent> Workload(int disks, double arrivals,
                                   std::uint64_t seed) {
  WorkloadConfig w;
  w.duration = Hours(1);
  w.total_expected_arrivals = arrivals;
  w.disk_count = disks;
  w.disk_theta = 0.5;
  w.seed = seed;
  auto arr = GenerateWorkload(w);
  EXPECT_TRUE(arr.ok());
  return *arr;
}

/// Accumulates full-precision "name=value" records into a 64-bit FNV-1a
/// hash. Equal digests over equal field counts mean every folded double was
/// bit-identical (up to a hash collision, which a determinism regression
/// will not conveniently arrange).
struct Digest {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis.
  long fields = 0;

  void Append(const char* name, double v) {
    char buf[96];
    const int len = std::snprintf(buf, sizeof(buf), "%s=%.17g\n", name, v);
    for (int i = 0; i < len; ++i) {
      h = (h ^ static_cast<unsigned char>(buf[i])) * 1099511628211ULL;
    }
    ++fields;
  }
};

/// Whether the signature folds in the memory_reserved series. A frozen
/// ShardBrokerView records sibling reservations as of epoch start, so this
/// one series legitimately differs between a sharded run and the serial
/// interleave — exclude it when comparing across the two run modes. It is
/// still deterministic *within* a mode, so thread-count comparisons keep
/// it.
enum class ReservedSeries { kInclude, kExclude };

/// Full-precision digest of everything a run produced, one line per disk.
/// Two runs with equal signatures made bit-identical metrics.
std::string Signature(const MultiDiskSimulator& md,
                      ReservedSeries reserved = ReservedSeries::kInclude) {
  std::string s;
  for (int d = 0; d < md.disk_count(); ++d) {
    const SimMetrics& m = md.sim(d).metrics();
    Digest dig;
    dig.Append("arrivals", static_cast<double>(m.arrivals));
    dig.Append("admitted", static_cast<double>(m.admitted));
    dig.Append("rejected", static_cast<double>(m.rejected));
    dig.Append("rejected_capacity",
               static_cast<double>(m.rejected_capacity));
    dig.Append("rejected_memory", static_cast<double>(m.rejected_memory));
    dig.Append("rejected_invalid", static_cast<double>(m.rejected_invalid));
    dig.Append("deferred", static_cast<double>(m.deferred_admissions));
    dig.Append("completed", static_cast<double>(m.completed));
    dig.Append("cancelled", static_cast<double>(m.cancelled));
    dig.Append("services", static_cast<double>(m.services));
    dig.Append("starvations", static_cast<double>(m.starvation_events));
    dig.Append("est_checks", static_cast<double>(m.estimation_checks));
    dig.Append("est_success", static_cast<double>(m.estimation_successes));
    dig.Append("lat_count", static_cast<double>(m.initial_latency.count()));
    dig.Append("lat_mean", m.initial_latency.mean());
    dig.Append("lat_max", m.initial_latency.max());
    dig.Append("k_mean", m.estimated_k.mean());
    dig.Append("busy_s", ToSeconds(m.disk_busy_time));
    dig.Append("bits_alloc", ToBits(m.buffer_bits_allocated));
    dig.Append("bits_released", ToBits(m.buffer_bits_released));
    dig.Append("allocs", static_cast<double>(m.allocations.size()));
    for (const AllocationRecord& a : m.allocations) {
      dig.Append("a.t", ToSeconds(a.time));
      dig.Append("a.size", ToBits(a.buffer_size));
      dig.Append("a.n", static_cast<double>(a.n));
      dig.Append("a.k", static_cast<double>(a.k));
    }
    for (const auto& [t, v] : m.concurrency.points()) {
      dig.Append("c.t", t);
      dig.Append("c.v", v);
    }
    for (const auto& [t, v] : m.memory_usage.points()) {
      dig.Append("m.t", t);
      dig.Append("m.v", v);
    }
    if (reserved == ReservedSeries::kInclude) {
      for (const auto& [t, v] : m.memory_reserved.points()) {
        dig.Append("r.t", t);
        dig.Append("r.v", v);
      }
    }
    char line[96];
    std::snprintf(line, sizeof(line), "disk %d fields=%ld digest=%016llx\n",
                  d, dig.fields,
                  static_cast<unsigned long long>(dig.h));
    s += line;
  }
  Digest broker;
  broker.Append("broker_reserved", ToBits(md.broker().ReservedMemory()));
  char line[96];
  std::snprintf(line, sizeof(line), "broker digest=%016llx\n",
                static_cast<unsigned long long>(broker.h));
  s += line;
  return s;
}

std::unique_ptr<MultiDiskSimulator> MakeServer(
    const SimConfig& base, int disks, Bits capacity,
    const std::vector<ArrivalEvent>& arrivals) {
  auto md = MultiDiskSimulator::Create(base, disks, capacity);
  EXPECT_TRUE(md.ok()) << md.status().ToString();
  EXPECT_TRUE((*md)->AddArrivals(arrivals).ok());
  return std::move(md.value());
}

std::string RunSharded(const SimConfig& base, int disks, Bits capacity,
                       const std::vector<ArrivalEvent>& arrivals, int threads,
                       Seconds epoch = Seconds(1.0),
                       ReservedSeries reserved = ReservedSeries::kInclude) {
  auto md = MakeServer(base, disks, capacity, arrivals);
  exp::ThreadPool pool(threads);
  exp::RunShardedToCompletion(*md, pool, epoch);
  md->Finalize();
  // Sanity: the run actually drained and admitted work.
  for (int d = 0; d < disks; ++d) {
    EXPECT_EQ(md->sim(d).active_count(), 0) << "disk " << d;
  }
  EXPECT_EQ(md->TotalAdmitted() + md->TotalRejected(), md->TotalArrivals());
  EXPECT_GT(md->TotalAdmitted(), 0);
  return Signature(*md, reserved);
}

// --- The headline: worker count never changes a bit. ---

TEST(ShardedSimTest, BitIdenticalAtOneTwoAndEightWorkers) {
  const SimConfig base = BaseConfig();
  const auto arrivals = Workload(/*disks=*/4, /*arrivals=*/90, /*seed=*/21);
  // Tight enough that the broker actually rejects some arrivals (the
  // admission path, not just the independent-disk path, is under test —
  // ~25 MiB per disk is where this workload starts bouncing).
  const Bits capacity = Mebibytes(40);

  const std::string one = RunSharded(base, 4, capacity, arrivals, 1);
  const std::string two = RunSharded(base, 4, capacity, arrivals, 2);
  const std::string eight = RunSharded(base, 4, capacity, arrivals, 8);
  // The digest covers a real run: an idle disk folds exactly the 21 fixed
  // scalars, one that saw traffic folds thousands of series points too.
  EXPECT_EQ(one.find("fields=21 "), std::string::npos) << one;
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

TEST(ShardedSimTest, BitIdenticalAcrossRepeatsAndEpochGrain) {
  // Same pool size, run twice -> identical; and an epoch of 0.25 s vs 1 s
  // is each internally deterministic (epoch grain IS part of the
  // configuration, so the two grains need not match each other).
  const SimConfig base = BaseConfig();
  const auto arrivals = Workload(3, 60, 33);
  const Bits capacity = Mebibytes(30);
  EXPECT_EQ(RunSharded(base, 3, capacity, arrivals, 2),
            RunSharded(base, 3, capacity, arrivals, 2));
  EXPECT_EQ(RunSharded(base, 3, capacity, arrivals, 2, Seconds(0.25)),
            RunSharded(base, 3, capacity, arrivals, 8, Seconds(0.25)));
}

// --- Differential against the serial reference. ---

TEST(ShardedSimTest, MatchesSerialExactlyWhenMemoryUnconstrained) {
  // With a budget no admission can dent, the broker never gates and the
  // disks schedule fully independently: the sharded run must reproduce the
  // serial interleaved run bit for bit — every admission, allocation,
  // latency sample, and buffer-bit ledger entry. The one deliberate
  // exception is the memory_reserved observability series: a frozen view
  // reports sibling reservations as of epoch start while the serial run
  // reports them live, so that series is excluded from this cross-mode
  // comparison (it stays inside the thread-count comparisons above).
  const SimConfig base = BaseConfig();
  const auto arrivals = Workload(4, 80, 55);
  const Bits capacity = Gibibytes(64);

  auto serial = MakeServer(base, 4, capacity, arrivals);
  serial->RunToCompletion();
  serial->Finalize();

  EXPECT_EQ(Signature(*serial, ReservedSeries::kExclude),
            RunSharded(base, 4, capacity, arrivals, 8, Seconds(1.0),
                       ReservedSeries::kExclude));
}

TEST(ShardedSimTest, TightMemoryShardedRunStaysSane) {
  // Under a binding budget the sharded schedule is its own (deterministic)
  // reference — it prices admission against epoch-start snapshots — but
  // the physical invariants hold regardless.
  const SimConfig base = BaseConfig();
  const auto arrivals = Workload(2, 80, 77);
  auto md = MakeServer(base, 2, Mebibytes(25), arrivals);
  exp::ThreadPool pool(4);
  exp::RunShardedToCompletion(*md, pool);
  md->Finalize();
  EXPECT_GT(md->TotalRejected(), 0);  // The budget actually bound.
  EXPECT_GT(md->TotalAdmitted(), 0);
  for (int d = 0; d < 2; ++d) {
    const SimMetrics& m = md->sim(d).metrics();
    // Buffer-bit conservation: everything allocated was released. The two
    // ledgers sum the same bits in different chunk order, so compare to
    // relative 1e-9 (the property_test convention), not bit equality.
    EXPECT_NEAR(ToBits(m.buffer_bits_allocated),
                ToBits(m.buffer_bits_released),
                1e-9 * ToBits(m.buffer_bits_allocated));
  }
  EXPECT_DOUBLE_EQ(ToBits(md->broker().ReservedMemory()), 0.0);
}

// --- Event-queue cross-checks (legacy config keeps working, sharded). ---

TEST(ShardedSimTest, CalendarAndBinaryHeapShardIdentically) {
  // The two queue implementations pop the same (time, seq) order, so the
  // whole sharded pipeline on top of them must agree bit for bit.
  const auto arrivals = Workload(3, 70, 91);
  const Bits capacity = Mebibytes(30);
  EXPECT_EQ(
      RunSharded(BaseConfig(EventQueueKind::kCalendar), 3, capacity, arrivals,
                 4),
      RunSharded(BaseConfig(EventQueueKind::kBinaryHeap), 3, capacity,
                 arrivals, 4));
}

TEST(ShardedSimTest, SerialPathUnchangedByViewIndirection) {
  // The per-disk ShardBrokerView is pass-through outside epochs: a serial
  // run through the views must match a config-identical serial run exactly
  // (this is what keeps the pre-sharding goldens byte-stable).
  const SimConfig base = BaseConfig();
  const auto arrivals = Workload(3, 60, 13);
  auto a = MakeServer(base, 3, Mebibytes(30), arrivals);
  auto b = MakeServer(base, 3, Mebibytes(30), arrivals);
  a->RunToCompletion();
  a->Finalize();
  b->RunToCompletion();
  b->Finalize();
  EXPECT_EQ(Signature(*a), Signature(*b));
}

}  // namespace
}  // namespace vod::sim
