#include "sched/scheduler.h"

#include <limits>
#include <map>

#include <gtest/gtest.h>

#include "sched/gss.h"
#include "sched/round_robin.h"
#include "sched/sweep.h"

namespace vod::sched {
namespace {

constexpr Seconds kInf = Seconds::Infinity();

/// Scriptable context: tests set each request's deadline, cylinder, and
/// service-time directly.
class FakeContext : public SchedulerContext {
 public:
  struct Entry {
    Seconds deadline = kInf;
    double cylinder = 0;
    bool needs_service = true;
    bool fresh = false;
    Seconds service_time = Seconds(1.0);
  };

  Entry& Set(RequestId id) { return entries_[id]; }

  Seconds BufferDeadline(RequestId id) const override {
    return entries_.at(id).fresh ? kInf : entries_.at(id).deadline;
  }
  bool NeverServiced(RequestId id) const override {
    return entries_.at(id).fresh;
  }
  double CurrentCylinder(RequestId id) const override {
    return entries_.at(id).cylinder;
  }
  bool NeedsService(RequestId id) const override {
    return entries_.at(id).needs_service;
  }
  Seconds WorstServiceTime(RequestId id) const override {
    return entries_.at(id).service_time;
  }
  Seconds NewcomerReserve() const override { return reserve_; }

  void set_reserve(Seconds r) { reserve_ = r; }

 private:
  std::map<RequestId, Entry> entries_;
  Seconds reserve_ = Seconds(1.0);
};

// --- LatestSafeStart ---

TEST(LatestSafeStartTest, EmptySequenceIsUnconstrained) {
  FakeContext ctx;
  EXPECT_EQ(LatestSafeStart(ctx, {}), kInf);
}

TEST(LatestSafeStartTest, SingleRequest) {
  FakeContext ctx;
  ctx.Set(1).deadline = Seconds(10.0);
  ctx.Set(1).service_time = Seconds(2.0);
  EXPECT_DOUBLE_EQ(ToSeconds(LatestSafeStart(ctx, {1})), 8.0);
}

TEST(LatestSafeStartTest, PrefixSumsBindTightestMember) {
  FakeContext ctx;
  ctx.Set(1).deadline = Seconds(10.0);
  ctx.Set(1).service_time = Seconds(2.0);
  ctx.Set(2).deadline = Seconds(11.0);  // Needs start by 11 − (2+3) = 6: binding.
  ctx.Set(2).service_time = Seconds(3.0);
  EXPECT_DOUBLE_EQ(ToSeconds(LatestSafeStart(ctx, {1, 2})), 6.0);
}

// --- RoundRobinScheduler ---

TEST(RoundRobinTest, ServicesInRingOrderAndRotates) {
  RoundRobinScheduler rr;
  FakeContext ctx;
  for (RequestId id : {1, 2, 3}) {
    ctx.Set(id).deadline = Seconds(100.0);
    rr.Add(id, Seconds(0.0));
    rr.OnServiceComplete(id, Seconds(0.0));  // Move out of the fresh queue.
  }
  EXPECT_EQ(rr.ServiceSequence(ctx, Seconds(0.0)), (std::vector<RequestId>{1, 2, 3}));
  rr.OnServiceComplete(1, Seconds(1.0));
  EXPECT_EQ(rr.ServiceSequence(ctx, Seconds(1.0)), (std::vector<RequestId>{2, 3, 1}));
}

TEST(RoundRobinTest, FreshRequestsComeFirst) {
  RoundRobinScheduler rr;
  FakeContext ctx;
  ctx.Set(1).deadline = Seconds(100.0);
  rr.Add(1, Seconds(0.0));
  rr.OnServiceComplete(1, Seconds(0.0));
  ctx.Set(9).fresh = true;
  rr.Add(9, Seconds(1.0));
  EXPECT_EQ(rr.ServiceSequence(ctx, Seconds(1.0)), (std::vector<RequestId>{9, 1}));
}

TEST(RoundRobinTest, RemoveWorksInBothQueues) {
  RoundRobinScheduler rr;
  FakeContext ctx;
  ctx.Set(1).deadline = Seconds(100.0);
  ctx.Set(2).fresh = true;
  rr.Add(1, Seconds(0.0));
  rr.OnServiceComplete(1, Seconds(0.0));
  rr.Add(2, Seconds(0.0));
  rr.Remove(2);
  rr.Remove(1);
  EXPECT_TRUE(rr.ServiceSequence(ctx, Seconds(0.0)).empty());
}

TEST(RoundRobinTest, FiltersRequestsNotNeedingService) {
  RoundRobinScheduler rr;
  FakeContext ctx;
  ctx.Set(1).deadline = Seconds(100.0);
  ctx.Set(1).needs_service = false;
  rr.Add(1, Seconds(0.0));
  rr.OnServiceComplete(1, Seconds(0.0));
  EXPECT_TRUE(rr.ServiceSequence(ctx, Seconds(0.0)).empty());
}

TEST(RoundRobinTest, NextIsLazyWithoutFresh) {
  RoundRobinScheduler rr;
  FakeContext ctx;
  ctx.set_reserve(Seconds(1.0));
  ctx.Set(1).deadline = Seconds(50.0);
  ctx.Set(1).service_time = Seconds(2.0);
  rr.Add(1, Seconds(0.0));
  rr.OnServiceComplete(1, Seconds(0.0));
  auto d = rr.Next(ctx, Seconds(0.0));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->id, 1u);
  // Latest safe start 48, minus one newcomer reserve slot.
  EXPECT_DOUBLE_EQ(ToSeconds(d->not_before), 47.0);
}

TEST(RoundRobinTest, NextIsEagerWithFresh) {
  RoundRobinScheduler rr;
  FakeContext ctx;
  ctx.Set(1).deadline = Seconds(50.0);
  rr.Add(1, Seconds(0.0));
  rr.OnServiceComplete(1, Seconds(0.0));
  ctx.Set(2).fresh = true;
  rr.Add(2, Seconds(1.0));
  auto d = rr.Next(ctx, Seconds(1.0));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->id, 2u);  // Newcomer first (BubbleUp).
  EXPECT_DOUBLE_EQ(ToSeconds(d->not_before), 1.0);
}

TEST(RoundRobinTest, NewcomerDisplacementGuard) {
  RoundRobinScheduler rr;
  FakeContext ctx;
  // Established request due almost immediately: serving the fresh first
  // (1s) plus the established (1s) would overrun its deadline at t=1.5.
  ctx.Set(1).deadline = Seconds(1.5);
  ctx.Set(1).service_time = Seconds(1.0);
  rr.Add(1, Seconds(0.0));
  rr.OnServiceComplete(1, Seconds(0.0));
  ctx.Set(2).fresh = true;
  ctx.Set(2).service_time = Seconds(1.0);
  rr.Add(2, Seconds(0.0));
  auto d = rr.Next(ctx, Seconds(0.0));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->id, 1u);  // Catch the established buffer up first.
  EXPECT_DOUBLE_EQ(ToSeconds(d->not_before), 0.0);
}

TEST(RoundRobinTest, NoneLeftReturnsNullopt) {
  RoundRobinScheduler rr;
  FakeContext ctx;
  EXPECT_FALSE(rr.Next(ctx, Seconds(0.0)).has_value());
}

// --- SweepScheduler ---

TEST(SweepTest, PeriodRosterSortedByCylinder) {
  SweepScheduler sw;
  FakeContext ctx;
  ctx.Set(1).cylinder = 500;
  ctx.Set(2).cylinder = 100;
  ctx.Set(3).cylinder = 900;
  for (RequestId id : {1, 2, 3}) sw.Add(id, Seconds(0.0));
  EXPECT_EQ(sw.ServiceSequence(ctx, Seconds(0.0)), (std::vector<RequestId>{2, 1, 3}));
}

TEST(SweepTest, RosterStableWithinPeriod) {
  SweepScheduler sw;
  FakeContext ctx;
  ctx.Set(1).cylinder = 500;
  ctx.Set(2).cylinder = 100;
  for (RequestId id : {1, 2}) sw.Add(id, Seconds(0.0));
  ASSERT_EQ(sw.ServiceSequence(ctx, Seconds(0.0)), (std::vector<RequestId>{2, 1}));
  // Cylinder changes mid-period do not reshuffle the roster.
  ctx.Set(2).cylinder = 800;
  EXPECT_EQ(sw.ServiceSequence(ctx, Seconds(0.1)), (std::vector<RequestId>{2, 1}));
}

TEST(SweepTest, NewPeriodStartsWhenRosterDrains) {
  SweepScheduler sw;
  FakeContext ctx;
  ctx.Set(1).cylinder = 500;
  ctx.Set(2).cylinder = 100;
  for (RequestId id : {1, 2}) sw.Add(id, Seconds(0.0));
  EXPECT_TRUE(sw.AtPeriodBoundary());  // Roster forms lazily.
  sw.ServiceSequence(ctx, Seconds(0.0));
  EXPECT_FALSE(sw.AtPeriodBoundary());
  sw.OnServiceComplete(2, Seconds(1.0));
  sw.OnServiceComplete(1, Seconds(2.0));
  EXPECT_TRUE(sw.AtPeriodBoundary());
  EXPECT_EQ(sw.periods_started(), 1);
  // New period re-sorts with fresh positions.
  ctx.Set(1).cylinder = 50;
  EXPECT_EQ(sw.ServiceSequence(ctx, Seconds(3.0)), (std::vector<RequestId>{1, 2}));
  EXPECT_EQ(sw.periods_started(), 2);
}

TEST(SweepTest, DoesNotAdmitMidPeriod) {
  SweepScheduler sw;
  EXPECT_FALSE(sw.AdmitsMidPeriod());
}

TEST(SweepTest, RemoveMidPeriod) {
  SweepScheduler sw;
  FakeContext ctx;
  for (RequestId id : {1, 2, 3}) {
    ctx.Set(id).cylinder = id * 100.0;
    sw.Add(id, Seconds(0.0));
  }
  sw.ServiceSequence(ctx, Seconds(0.0));
  sw.Remove(2);
  EXPECT_EQ(sw.ServiceSequence(ctx, Seconds(0.1)), (std::vector<RequestId>{1, 3}));
}

// --- GssScheduler ---

TEST(GssTest, GroupsOfAtMostG) {
  GssScheduler gss(2);
  FakeContext ctx;
  for (RequestId id : {1, 2, 3, 4, 5}) {
    ctx.Set(id).cylinder = id * 10.0;
    gss.Add(id, Seconds(0.0));
  }
  EXPECT_EQ(gss.group_count(), 3);
}

TEST(GssTest, ServicesCurrentGroupInCylinderOrder) {
  GssScheduler gss(2);
  FakeContext ctx;
  ctx.Set(1).cylinder = 900;
  ctx.Set(2).cylinder = 100;
  gss.Add(1, Seconds(0.0));
  gss.Add(2, Seconds(0.0));
  auto seq = gss.ServiceSequence(ctx, Seconds(0.0));
  ASSERT_EQ(seq.size(), 2u);
  EXPECT_EQ(seq[0], 2u);  // Sweep order inside the group.
  EXPECT_EQ(seq[1], 1u);
}

TEST(GssTest, GroupRotatesAfterItsTurn) {
  GssScheduler gss(2);
  FakeContext ctx;
  for (RequestId id : {1, 2, 3, 4}) {
    ctx.Set(id).cylinder = id * 10.0;
    gss.Add(id, Seconds(0.0));
  }
  // Turn 1: group {1,2}.
  auto seq = gss.ServiceSequence(ctx, Seconds(0.0));
  EXPECT_EQ(seq[0], 1u);
  gss.OnServiceComplete(1, Seconds(0.5));
  gss.OnServiceComplete(2, Seconds(1.0));
  // Turn 2: group {3,4}.
  seq = gss.ServiceSequence(ctx, Seconds(1.0));
  EXPECT_EQ(seq[0], 3u);
  gss.OnServiceComplete(3, Seconds(1.5));
  gss.OnServiceComplete(4, Seconds(2.0));
  // Back to group {1,2}.
  seq = gss.ServiceSequence(ctx, Seconds(2.0));
  EXPECT_EQ(seq[0], 1u);
}

TEST(GssTest, NewcomerJoinsUpcomingGroup) {
  GssScheduler gss(2);
  FakeContext ctx;
  for (RequestId id : {1, 2, 3}) {
    ctx.Set(id).cylinder = id * 10.0;
    gss.Add(id, Seconds(0.0));
  }
  // Open group {1,2}'s turn.
  gss.ServiceSequence(ctx, Seconds(0.0));
  // Newcomer joins the upcoming group {3} (has space) — serviced right
  // after the current group.
  ctx.Set(9).fresh = true;
  ctx.Set(9).cylinder = 5;
  gss.Add(9, Seconds(0.1));
  gss.OnServiceComplete(1, Seconds(0.5));
  gss.OnServiceComplete(2, Seconds(1.0));
  auto seq = gss.ServiceSequence(ctx, Seconds(1.0));
  ASSERT_GE(seq.size(), 2u);
  EXPECT_EQ(seq[0], 9u);  // Cylinder 5 sorts before 30 within the group.
  EXPECT_EQ(seq[1], 3u);
}

TEST(GssTest, NewGroupInsertedWhenUpcomingFull) {
  GssScheduler gss(1);  // Every group is a single request.
  FakeContext ctx;
  for (RequestId id : {1, 2}) {
    ctx.Set(id).cylinder = id * 10.0;
    gss.Add(id, Seconds(0.0));
  }
  gss.ServiceSequence(ctx, Seconds(0.0));  // Group {1} in service.
  ctx.Set(9).fresh = true;
  gss.Add(9, Seconds(0.1));
  EXPECT_EQ(gss.group_count(), 3);
  gss.OnServiceComplete(1, Seconds(0.5));
  // The newcomer's group is next.
  auto seq = gss.ServiceSequence(ctx, Seconds(0.5));
  EXPECT_EQ(seq[0], 9u);
}

TEST(GssTest, RemoveDropsEmptyGroups) {
  GssScheduler gss(2);
  FakeContext ctx;
  for (RequestId id : {1, 2, 3}) {
    ctx.Set(id).cylinder = id * 10.0;
    gss.Add(id, Seconds(0.0));
  }
  EXPECT_EQ(gss.group_count(), 2);
  gss.Remove(3);
  EXPECT_EQ(gss.group_count(), 1);
  gss.Remove(1);
  gss.Remove(2);
  EXPECT_EQ(gss.group_count(), 0);
  EXPECT_TRUE(gss.ServiceSequence(ctx, Seconds(1.0)).empty());
}

TEST(GssTest, SkipsDutyFreeGroups) {
  GssScheduler gss(2);
  FakeContext ctx;
  ctx.Set(1).cylinder = 10;
  ctx.Set(1).needs_service = false;  // Fully delivered.
  ctx.Set(2).cylinder = 20;
  gss.Add(1, Seconds(0.0));
  gss.Add(2, Seconds(0.0));
  // Group {1,2}: only 2 needs service.
  auto seq = gss.ServiceSequence(ctx, Seconds(0.0));
  ASSERT_EQ(seq.size(), 1u);
  EXPECT_EQ(seq[0], 2u);
}

TEST(GssTest, AdmitsMidPeriod) {
  GssScheduler gss(8);
  EXPECT_TRUE(gss.AdmitsMidPeriod());
}

}  // namespace
}  // namespace vod::sched
