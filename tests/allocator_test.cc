#include "core/allocator.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "core/closed_form.h"
#include "core/static_alloc.h"
#include "disk/disk_profile.h"

namespace vod::core {
namespace {

AllocParams SmallParams() {
  auto p = MakeAllocParams(disk::SmallTestDisk(), Mbps(1.5),
                           ScheduleMethod::kRoundRobin, 0, 1);
  EXPECT_TRUE(p.ok());
  return p.value();  // N = 19.
}

// --- StaticBufferAllocator ---

TEST(StaticAllocatorTest, AlwaysHandsOutFullyLoadedSize) {
  auto a = StaticBufferAllocator::Create(SmallParams());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE((*a)->Admit(1, Seconds(0.0)).ok());
  auto d = (*a)->Allocate(1, Seconds(0.0));
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(ToBits(d->buffer_size),
                   ToBits(StaticSchemeBufferSize(SmallParams()).value()));
  EXPECT_EQ(d->k, 0);
  EXPECT_EQ(d->n, 1);
}

TEST(StaticAllocatorTest, AdmitsUpToNThenRejects) {
  const AllocParams p = SmallParams();
  auto a = StaticBufferAllocator::Create(p);
  ASSERT_TRUE(a.ok());
  for (int i = 1; i <= p.n_max; ++i) {
    EXPECT_TRUE((*a)->Admit(static_cast<RequestId>(i), Seconds(0.0)).ok()) << i;
  }
  EXPECT_EQ((*a)->Admit(1000, Seconds(0.0)).code(), StatusCode::kCapacityExceeded);
  EXPECT_EQ((*a)->active_count(), p.n_max);
}

TEST(StaticAllocatorTest, RemoveFreesCapacity) {
  const AllocParams p = SmallParams();
  auto a = StaticBufferAllocator::Create(p);
  ASSERT_TRUE(a.ok());
  for (int i = 1; i <= p.n_max; ++i) {
    ASSERT_TRUE((*a)->Admit(static_cast<RequestId>(i), Seconds(0.0)).ok());
  }
  (*a)->Remove(3);
  EXPECT_EQ((*a)->active_count(), p.n_max - 1);
  EXPECT_TRUE((*a)->Admit(1000, Seconds(0.0)).ok());
}

TEST(StaticAllocatorTest, DoubleAdmitFails) {
  auto a = StaticBufferAllocator::Create(SmallParams());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE((*a)->Admit(1, Seconds(0.0)).ok());
  EXPECT_EQ((*a)->Admit(1, Seconds(0.0)).code(), StatusCode::kFailedPrecondition);
}

TEST(StaticAllocatorTest, AllocateUnknownRequestFails) {
  auto a = StaticBufferAllocator::Create(SmallParams());
  ASSERT_TRUE(a.ok());
  EXPECT_EQ((*a)->Allocate(9, Seconds(0.0)).status().code(), StatusCode::kNotFound);
}

// --- DynamicBufferAllocator ---

TEST(DynamicAllocatorTest, FirstAllocationUsesAlphaEstimate) {
  const AllocParams p = SmallParams();
  auto a = DynamicBufferAllocator::Create(p, Minutes(40));
  ASSERT_TRUE(a.ok());
  (*a)->NoteArrival(Seconds(0.0));
  ASSERT_TRUE((*a)->Admit(1, Seconds(0.0)).ok());
  auto d = (*a)->Allocate(1, Seconds(0.0));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->n, 1);
  // k_log = 1 (its own arrival is in the log) → k_c = k_log + α = 2.
  EXPECT_EQ(d->k, 2);
  EXPECT_DOUBLE_EQ(ToBits(d->buffer_size), ToBits(DynamicBufferSize(p, 1, 2).value()));
}

TEST(DynamicAllocatorTest, BufferSizeTracksLoad) {
  const AllocParams p = SmallParams();
  auto a = DynamicBufferAllocator::Create(p, Minutes(40));
  ASSERT_TRUE(a.ok());
  Bits prev = Bits(0.0);
  for (int i = 1; i <= 10; ++i) {
    const Seconds t = Seconds(i * 1.0);
    ASSERT_TRUE((*a)->Admit(static_cast<RequestId>(i), t).ok());
    // One service round so the inertia snapshots track the new load.
    core::AllocationDecision last{};
    for (int j = 1; j <= i; ++j) {
      auto d = (*a)->Allocate(static_cast<RequestId>(j), t);
      ASSERT_TRUE(d.ok());
      last = d.value();
    }
    EXPECT_EQ(last.n, i);
    EXPECT_GE(last.buffer_size, prev) << "round " << i;
    prev = last.buffer_size;
  }
}

TEST(DynamicAllocatorTest, Assumption2BoundsEstimateGrowth) {
  // k_c <= min_i(k_i) + α at every allocation.
  const AllocParams p = SmallParams();
  auto a = DynamicBufferAllocator::Create(p, Minutes(40));
  ASSERT_TRUE(a.ok());
  // Create a burst so k_log would be large.
  for (int i = 0; i < 12; ++i) (*a)->NoteArrival(Seconds(i * 0.01));
  ASSERT_TRUE((*a)->Admit(1, Seconds(0.2)).ok());
  auto first = (*a)->Allocate(1, Seconds(0.2));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE((*a)->Admit(2, Seconds(0.3)).ok());
  auto second = (*a)->Allocate(2, Seconds(0.3));
  ASSERT_TRUE(second.ok());
  EXPECT_LE(second->k, first->k + p.alpha);
}

TEST(DynamicAllocatorTest, Assumption1DefersOverAdmission) {
  const AllocParams p = SmallParams();
  auto a = DynamicBufferAllocator::Create(p, Minutes(40));
  ASSERT_TRUE(a.ok());
  // One serviced request with a small snapshot: n_1 = 1, k_1 = α = 1
  // (empty log → k_log = 0 → k_c = 1): n_1 + k_1 = 2.
  ASSERT_TRUE((*a)->Admit(1, Seconds(0.0)).ok());
  ASSERT_TRUE((*a)->Allocate(1, Seconds(0.0)).ok());
  auto snap = (*a)->snapshot(1);
  ASSERT_TRUE(snap.ok());
  ASSERT_EQ(snap->n + snap->k, 2);
  // Second admission is fine (n+1 = 2 <= 2), third must defer (3 > 2).
  EXPECT_TRUE((*a)->Admit(2, Seconds(0.1)).ok());
  EXPECT_EQ((*a)->Admit(3, Seconds(0.2)).code(), StatusCode::kDeferred);
  // After request 1 is re-allocated at the higher load, its snapshot
  // loosens and the deferred admission proceeds.
  ASSERT_TRUE((*a)->Allocate(1, Seconds(0.3)).ok());
  ASSERT_TRUE((*a)->Allocate(2, Seconds(0.35)).ok());
  EXPECT_TRUE((*a)->Admit(3, Seconds(0.4)).ok());
}

TEST(DynamicAllocatorTest, EnforcementCanBeDisabled) {
  const AllocParams p = SmallParams();
  auto a = DynamicBufferAllocator::Create(p, Minutes(40));
  ASSERT_TRUE(a.ok());
  (*a)->set_enforce_assumptions(false);
  ASSERT_TRUE((*a)->Admit(1, Seconds(0.0)).ok());
  ASSERT_TRUE((*a)->Allocate(1, Seconds(0.0)).ok());
  EXPECT_TRUE((*a)->Admit(2, Seconds(0.1)).ok());
  EXPECT_TRUE((*a)->Admit(3, Seconds(0.2)).ok());  // Would defer when enforcing.
  EXPECT_TRUE((*a)->Admit(4, Seconds(0.3)).ok());
}

TEST(DynamicAllocatorTest, MarkDrainedRetiresSnapshot) {
  const AllocParams p = SmallParams();
  auto a = DynamicBufferAllocator::Create(p, Minutes(40));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE((*a)->Admit(1, Seconds(0.0)).ok());
  ASSERT_TRUE((*a)->Allocate(1, Seconds(0.0)).ok());
  ASSERT_TRUE((*a)->Admit(2, Seconds(0.1)).ok());
  EXPECT_EQ((*a)->Admit(3, Seconds(0.2)).code(), StatusCode::kDeferred);
  // Draining request 1 removes its tight snapshot; admission unblocks,
  // while n still counts the drained request.
  (*a)->MarkDrained(1);
  EXPECT_EQ((*a)->active_count(), 2);
  EXPECT_TRUE((*a)->Admit(3, Seconds(0.3)).ok());
}

/// Admits request i then re-allocates every admitted request (one service
/// round), so the inertia snapshots track the new load and admission can
/// keep growing — the same refresh the scheduler performs in a real run.
void FillToLoad(DynamicBufferAllocator* a, int target) {
  for (int i = 1; i <= target; ++i) {
    const Seconds t = Seconds(i * 0.1);
    ASSERT_TRUE(a->Admit(static_cast<RequestId>(i), t).ok()) << i;
    for (int j = 1; j <= i; ++j) {
      ASSERT_TRUE(a->Allocate(static_cast<RequestId>(j), t).ok()) << j;
    }
  }
}

TEST(DynamicAllocatorTest, FullLoadRejects) {
  const AllocParams p = SmallParams();
  auto a = DynamicBufferAllocator::Create(p, Minutes(40));
  ASSERT_TRUE(a.ok());
  FillToLoad(a->get(), p.n_max);
  EXPECT_EQ((*a)->Admit(999, Seconds(100.0)).code(), StatusCode::kCapacityExceeded);
}

TEST(DynamicAllocatorTest, FullLoadAllocatesStaticSize) {
  const AllocParams p = SmallParams();
  auto a = DynamicBufferAllocator::Create(p, Minutes(40));
  ASSERT_TRUE(a.ok());
  FillToLoad(a->get(), p.n_max);
  auto d = (*a)->Allocate(1, Seconds(10.0));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->n, p.n_max);
  // k is not capped (Fig. 5), but the size saturates at BS(N).
  EXPECT_DOUBLE_EQ(ToBits(d->buffer_size), ToBits(StaticSchemeBufferSize(p).value()));
}

TEST(DynamicAllocatorTest, PreviewMatchesAllocateAndIsPure) {
  const AllocParams p = SmallParams();
  auto a = DynamicBufferAllocator::Create(p, Minutes(40));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE((*a)->Admit(1, Seconds(0.0)).ok());
  auto preview1 = (*a)->Preview(Seconds(0.0));
  auto preview2 = (*a)->Preview(Seconds(0.0));
  ASSERT_TRUE(preview1.ok());
  ASSERT_TRUE(preview2.ok());
  EXPECT_DOUBLE_EQ(ToBits(preview1->buffer_size), ToBits(preview2->buffer_size));
  auto d = (*a)->Allocate(1, Seconds(0.0));
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(ToBits(d->buffer_size), ToBits(preview1->buffer_size));
}

TEST(DynamicAllocatorTest, AllocateUnknownRequestFails) {
  auto a = DynamicBufferAllocator::Create(SmallParams(), Minutes(40));
  ASSERT_TRUE(a.ok());
  EXPECT_EQ((*a)->Allocate(77, Seconds(0.0)).status().code(), StatusCode::kNotFound);
}

TEST(DynamicAllocatorTest, CreateValidatesTLog) {
  EXPECT_FALSE(DynamicBufferAllocator::Create(SmallParams(), Seconds(0.0)).ok());
}

}  // namespace
}  // namespace vod::core
