#include "sim/workload.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/units.h"
#include "sim/rng.h"
#include "sim/zipf.h"

namespace vod::sim {
namespace {

// --- Rng ---

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.NextU32(), b.NextU32());
  Rng a2(42), c2(43);
  EXPECT_NE(a2.NextU32(), c2.NextU32());
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(3.0, 5.0);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, ExponentialHasRightMean) {
  Rng rng(11);
  double sum = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / trials, 0.5, 0.02);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(7), 7u);
  }
}

// --- ZipfWeights ---

TEST(ZipfTest, Theta1IsUniform) {
  auto w = ZipfWeights(10, 1.0);
  ASSERT_TRUE(w.ok());
  for (double v : *w) EXPECT_NEAR(v, 0.1, 1e-12);
}

TEST(ZipfTest, Theta0IsClassicZipf) {
  auto w = ZipfWeights(4, 0.0);
  ASSERT_TRUE(w.ok());
  // Weights ∝ 1, 1/2, 1/3, 1/4.
  const double h = 1.0 + 0.5 + 1.0 / 3 + 0.25;
  EXPECT_NEAR((*w)[0], 1.0 / h, 1e-12);
  EXPECT_NEAR((*w)[3], 0.25 / h, 1e-12);
}

TEST(ZipfTest, WeightsNormalizedAndDecreasing) {
  for (double theta : {0.0, 0.271, 0.5, 1.0}) {
    auto w = ZipfWeights(48, theta);
    ASSERT_TRUE(w.ok());
    double sum = 0;
    for (std::size_t i = 0; i < w->size(); ++i) {
      sum += (*w)[i];
      if (i > 0) {
        EXPECT_LE((*w)[i], (*w)[i - 1] + 1e-15);
      }
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(ZipfTest, RejectsBadArguments) {
  EXPECT_FALSE(ZipfWeights(0, 0.5).ok());
  EXPECT_FALSE(ZipfWeights(5, -0.1).ok());
  EXPECT_FALSE(ZipfWeights(5, 1.1).ok());
}

// --- ArrivalRateProfile ---

TEST(ArrivalProfileTest, PeakSlotHasMaxRate) {
  auto p = ArrivalRateProfile::Create(Hours(24), Minutes(30), 0.0, Hours(9),
                                      1200);
  ASSERT_TRUE(p.ok());
  const double peak_rate = p->RateAt(Hours(9) + Minutes(1));
  EXPECT_DOUBLE_EQ(peak_rate, p->MaxRate());
  EXPECT_GT(peak_rate, p->RateAt(Hours(23)));
  EXPECT_GT(peak_rate, p->RateAt(Hours(0)));
}

TEST(ArrivalProfileTest, UniformThetaGivesFlatProfile) {
  auto p = ArrivalRateProfile::Create(Hours(24), Minutes(30), 1.0, Hours(9),
                                      1200);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p->RateAt(Hours(1)), p->RateAt(Hours(20)), 1e-12);
}

TEST(ArrivalProfileTest, RatesIntegrateToTotal) {
  auto p = ArrivalRateProfile::Create(Hours(24), Minutes(30), 0.5, Hours(9),
                                      1000);
  ASSERT_TRUE(p.ok());
  double total = 0;
  for (double r : p->slot_rates()) total += r * ToSeconds(Minutes(30));
  EXPECT_NEAR(total, 1000.0, 1e-6);
}

TEST(ArrivalProfileTest, ZeroOutsideDay) {
  auto p = ArrivalRateProfile::Create(Hours(24), Minutes(30), 0.5, Hours(9),
                                      1000);
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p->RateAt(Seconds(-1.0)), 0.0);
  EXPECT_DOUBLE_EQ(p->RateAt(Hours(25)), 0.0);
}

// --- GenerateWorkload ---

TEST(WorkloadTest, CountCloseToExpected) {
  WorkloadConfig cfg;
  cfg.total_expected_arrivals = 2000;
  cfg.seed = 3;
  auto arr = GenerateWorkload(cfg);
  ASSERT_TRUE(arr.ok());
  // Poisson(2000): 5σ ≈ 224.
  EXPECT_NEAR(static_cast<double>(arr->size()), 2000.0, 250.0);
}

TEST(WorkloadTest, ArrivalsSortedWithinDay) {
  WorkloadConfig cfg;
  cfg.seed = 5;
  auto arr = GenerateWorkload(cfg);
  ASSERT_TRUE(arr.ok());
  for (std::size_t i = 1; i < arr->size(); ++i) {
    EXPECT_LE((*arr)[i - 1].time, (*arr)[i].time);
  }
  EXPECT_GE(arr->front().time, Seconds(0.0));
  EXPECT_LT(arr->back().time, cfg.duration);
}

TEST(WorkloadTest, ViewingTimesWithinBounds) {
  WorkloadConfig cfg;
  cfg.seed = 5;
  auto arr = GenerateWorkload(cfg);
  ASSERT_TRUE(arr.ok());
  for (const ArrivalEvent& ev : *arr) {
    EXPECT_GE(ev.viewing_time, Seconds(1.0));
    EXPECT_LE(ev.viewing_time, cfg.max_viewing_time);
    EXPECT_GE(ev.video, 0);
    EXPECT_LT(ev.video, cfg.video_count);
  }
}

TEST(WorkloadTest, DeterministicPerSeed) {
  WorkloadConfig cfg;
  cfg.seed = 9;
  auto a = GenerateWorkload(cfg);
  auto b = GenerateWorkload(cfg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_DOUBLE_EQ(ToSeconds((*a)[i].time), ToSeconds((*b)[i].time));
    EXPECT_EQ((*a)[i].video, (*b)[i].video);
  }
}

TEST(WorkloadTest, SkewedDayConcentratesAroundPeak) {
  WorkloadConfig cfg;
  cfg.theta = 0.0;
  cfg.total_expected_arrivals = 3000;
  cfg.seed = 13;
  auto arr = GenerateWorkload(cfg);
  ASSERT_TRUE(arr.ok());
  long in_peak = 0;
  for (const ArrivalEvent& ev : *arr) {
    if (ev.time > Hours(7) && ev.time < Hours(11)) ++in_peak;
  }
  // 4 of 24 hours hold well over a third of the arrivals when θ = 0.
  EXPECT_GT(static_cast<double>(in_peak) / arr->size(), 0.35);
}

TEST(WorkloadTest, DiskAssignmentFollowsZipf) {
  WorkloadConfig cfg;
  cfg.disk_count = 10;
  cfg.disk_theta = 0.0;
  cfg.total_expected_arrivals = 5000;
  cfg.seed = 17;
  auto arr = GenerateWorkload(cfg);
  ASSERT_TRUE(arr.ok());
  auto per = SplitByDisk(*arr, 10);
  ASSERT_EQ(per.size(), 10u);
  std::size_t total = 0;
  for (const auto& v : per) total += v.size();
  EXPECT_EQ(total, arr->size());
  // Rank-1 disk receives the most, last disk the least.
  EXPECT_GT(per[0].size(), per[9].size());
  EXPECT_GT(per[0].size(), 2 * per[5].size());
}

TEST(WorkloadTest, ValidatesConfig) {
  WorkloadConfig cfg;
  cfg.theta = 2.0;
  EXPECT_FALSE(GenerateWorkload(cfg).ok());
  cfg = WorkloadConfig{};
  cfg.video_count = 0;
  EXPECT_FALSE(GenerateWorkload(cfg).ok());
  cfg = WorkloadConfig{};
  cfg.duration = Seconds(-1);
  EXPECT_FALSE(GenerateWorkload(cfg).ok());
}

// --- OfferedLoad (Fig. 6 helper) ---

TEST(OfferedLoadTest, CountsConcurrencyAndRejections) {
  std::vector<ArrivalEvent> arr;
  for (int i = 0; i < 5; ++i) {
    ArrivalEvent ev;
    ev.time = Seconds(i * 10.0);
    ev.viewing_time = Seconds(100.0);
    arr.push_back(ev);
  }
  OfferedLoad load = ComputeOfferedLoad(arr, /*cap=*/3);
  EXPECT_EQ(load.peak, 3);
  EXPECT_EQ(load.rejected, 2);
}

TEST(OfferedLoadTest, UncappedTracksAll) {
  std::vector<ArrivalEvent> arr;
  for (int i = 0; i < 4; ++i) {
    ArrivalEvent ev;
    ev.time = Seconds(i * 1.0);
    ev.viewing_time = Seconds(2.5);
    arr.push_back(ev);
  }
  OfferedLoad load = ComputeOfferedLoad(arr, /*cap=*/0);
  EXPECT_EQ(load.rejected, 0);
  EXPECT_EQ(load.peak, 3);  // Arrivals at 0,1,2 overlap before 2.5.
}

}  // namespace
}  // namespace vod::sim
