// Differential and property tests for sim::EventQueue: the calendar queue
// must pop in exactly the same total (time, seq) order as the reference
// binary heap, for any interleaving of pushes and pops — FIFO tie-breaks
// included. A million randomized operations (SplitMix64-derived, fully
// deterministic) plus the structural edge cases: empty drain, far-future
// events that cross bucket-wheel years, clustered bursts that force width
// re-estimation, and a monotonicity audit over every popped timestamp.

#include "sim/event_queue.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "sim/rng.h"

namespace vod::sim {
namespace {

/// Tiny deterministic generator on top of SplitMix64 (test-local so queue
/// behaviour never depends on the simulator Rng's stream splitting).
class Gen {
 public:
  explicit Gen(std::uint64_t seed) : state_(seed) {}
  std::uint64_t Next() { return SplitMix64(state_++); }
  /// U[0, 1) with 53-bit resolution.
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }
  /// Uniform in [0, n).
  std::uint64_t NextBelow(std::uint64_t n) { return Next() % n; }

 private:
  std::uint64_t state_;
};

SimEvent MakeEvent(Seconds t, std::uint64_t seq) {
  SimEvent ev;
  ev.time = t;
  ev.seq = seq;
  ev.kind = static_cast<SimEventKind>(seq % 4);
  ev.request = seq;
  ev.arrival_index = static_cast<std::size_t>(seq % 7);
  return ev;
}

void ExpectSameEvent(const SimEvent& a, const SimEvent& b, long op) {
  ASSERT_EQ(a.time.value(), b.time.value()) << "op " << op;
  ASSERT_EQ(a.seq, b.seq) << "op " << op;
  ASSERT_EQ(a.kind, b.kind) << "op " << op;
  ASSERT_EQ(a.request, b.request) << "op " << op;
  ASSERT_EQ(a.arrival_index, b.arrival_index) << "op " << op;
}

/// Drives both implementations through an identical operation stream and
/// asserts lock-step equality of sizes, peeks, and pops. `advance` biases
/// push times to a window around the last popped time (the simulator's
/// pattern: pushes are never in the past), `spread` is the window width.
void RunDifferential(std::uint64_t seed, long ops, double spread,
                     double tie_probability) {
  CalendarEventQueue calendar;
  HeapEventQueue heap;
  Gen gen(seed);
  std::uint64_t seq = 0;
  double clock = 0.0;   // Last popped time: pushes land at or after it.
  double last_tie = 0.0;
  long popped = 0;
  double last_pop_time = -1.0;
  std::uint64_t last_pop_seq = 0;

  for (long op = 0; op < ops; ++op) {
    const bool push = calendar.empty() || gen.NextDouble() < 0.55;
    if (push) {
      double t;
      // Deliberate equal-timestamp collision — but never behind the last
      // pop (the simulator's contract: pushes are at or after `now`, and
      // the monotonicity audit below relies on it).
      if (gen.NextDouble() < tie_probability && last_tie >= clock) {
        t = last_tie;
      } else {
        t = clock + gen.NextDouble() * spread;
        // Occasional far-future outlier, beyond any one bucket-wheel year.
        if (gen.NextBelow(997) == 0) t += spread * 1e6;
        last_tie = t;
      }
      const SimEvent ev = MakeEvent(Seconds(t), seq++);
      calendar.Push(ev);
      heap.Push(ev);
    } else {
      const SimEvent* ctop = calendar.Peek();
      const SimEvent* htop = heap.Peek();
      ASSERT_NE(ctop, nullptr) << "op " << op;
      ASSERT_NE(htop, nullptr) << "op " << op;
      ExpectSameEvent(*ctop, *htop, op);
      const SimEvent c = calendar.PopTop();
      const SimEvent h = heap.PopTop();
      ExpectSameEvent(c, h, op);
      // Monotonicity audit: the popped sequence is sorted by (time, seq).
      ASSERT_TRUE(c.time.value() > last_pop_time ||
                  (c.time.value() == last_pop_time && c.seq > last_pop_seq))
          << "op " << op << ": pop order regressed";
      last_pop_time = c.time.value();
      last_pop_seq = c.seq;
      clock = c.time.value();
      ++popped;
    }
    ASSERT_EQ(calendar.size(), heap.size()) << "op " << op;
  }
  // Drain both completely, still in lock-step.
  while (!heap.empty()) {
    const SimEvent c = calendar.PopTop();
    const SimEvent h = heap.PopTop();
    ExpectSameEvent(c, h, ops + popped);
    ++popped;
  }
  EXPECT_TRUE(calendar.empty());
  EXPECT_EQ(calendar.Peek(), nullptr);
  EXPECT_GT(popped, ops / 4);  // The stream actually exercised pops.
}

// --- The headline differential: >= 1M operations across regimes. ---

TEST(EventQueueDifferentialTest, MillionOpsMixedRegimes) {
  // 4 x 250k ops: dense ties, sub-second spacing, minute spacing, and a
  // sparse regime whose far-future outliers cross wheel years routinely.
  RunDifferential(/*seed=*/0x1d3a2f9c55ULL, 250000, 0.5, 0.30);
  RunDifferential(/*seed=*/0xbeefcafe01ULL, 250000, 3.0, 0.05);
  RunDifferential(/*seed=*/0x8899aabb02ULL, 250000, 90.0, 0.01);
  RunDifferential(/*seed=*/0x700dfeed03ULL, 250000, 4000.0, 0.0);
}

TEST(EventQueueDifferentialTest, PureFifoAtOneTimestamp) {
  // Every event at the same instant: pops must follow push order exactly.
  CalendarEventQueue calendar;
  HeapEventQueue heap;
  for (std::uint64_t s = 0; s < 10000; ++s) {
    const SimEvent ev = MakeEvent(Seconds(42.0), s);
    calendar.Push(ev);
    heap.Push(ev);
  }
  for (std::uint64_t s = 0; s < 10000; ++s) {
    const SimEvent c = calendar.PopTop();
    const SimEvent h = heap.PopTop();
    ASSERT_EQ(c.seq, s);
    ASSERT_EQ(h.seq, s);
  }
  EXPECT_TRUE(calendar.empty());
}

// --- Structural edge cases on the calendar implementation. ---

TEST(CalendarEventQueueTest, EmptyBehaviour) {
  CalendarEventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.Peek(), nullptr);
}

TEST(CalendarEventQueueTest, DrainRefillDrain) {
  CalendarEventQueue q;
  for (int round = 0; round < 5; ++round) {
    const double base = round * 1e4;
    for (std::uint64_t s = 0; s < 100; ++s) {
      q.Push(MakeEvent(Seconds(base + static_cast<double>(s)), s));
    }
    for (std::uint64_t s = 0; s < 100; ++s) {
      ASSERT_EQ(q.PopTop().seq, s) << "round " << round;
    }
    ASSERT_TRUE(q.empty());
    ASSERT_EQ(q.Peek(), nullptr);
  }
}

TEST(CalendarEventQueueTest, FarFutureEventsCrossWheelYears) {
  // Events spaced so far apart that every pop's target lies many wheel
  // years past the cursor — the direct-search fallback must keep exact
  // order (and actually fire).
  CalendarEventQueue q;
  Gen gen(7);
  std::vector<double> times;
  double t = 0.0;
  for (int i = 0; i < 500; ++i) {
    t += 1.0 + gen.NextDouble() * 1e9;  // Gaps up to ~30 wheel-years.
    times.push_back(t);
  }
  // Push in a deterministic shuffle so arrival order != time order.
  std::vector<std::size_t> order(times.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[gen.NextBelow(i)]);
  }
  std::uint64_t seq = 0;
  for (std::size_t idx : order) {
    q.Push(MakeEvent(Seconds(times[idx]), seq++));
  }
  double prev = -1.0;
  for (std::size_t i = 0; i < times.size(); ++i) {
    const SimEvent ev = q.PopTop();
    ASSERT_GT(ev.time.value(), prev);
    prev = ev.time.value();
  }
  EXPECT_TRUE(q.empty());
}

TEST(CalendarEventQueueTest, ClusteredBurstTriggersRewidth) {
  // A wide-spread warm-up fixes a coarse width, then a dense burst lands in
  // one bucket; the crowded-bucket heuristic must re-estimate the width
  // (observable as a resize) while keeping exact order throughout.
  CalendarEventQueue q;
  std::uint64_t seq = 0;
  for (int i = 0; i < 256; ++i) {
    q.Push(MakeEvent(Seconds(i * 1000.0), seq++));
  }
  for (int i = 0; i < 256; ++i) {
    ASSERT_LT(q.PopTop().time.value(), 256000.0);
  }
  const long resizes_before = q.resizes();
  for (int i = 0; i < 4096; ++i) {
    q.Push(MakeEvent(Seconds(300000.0 + i * 1e-4), seq++));
  }
  double prev = -1.0;
  long steady_pops = 0;
  while (!q.empty()) {
    const SimEvent ev = q.PopTop();
    ASSERT_GT(ev.time.value(), prev);
    prev = ev.time.value();
    // Steady-state churn at the burst's spacing.
    if (steady_pops++ < 2048) {
      q.Push(MakeEvent(Seconds(ev.time.value() + 0.2 * 1e-4 * 4096), seq++));
    }
  }
  EXPECT_GT(q.resizes(), resizes_before)
      << "burst never re-tuned the bucket width";
}

TEST(CalendarEventQueueTest, ShrinksAfterDrainingLargePopulation) {
  CalendarEventQueue q;
  for (std::uint64_t s = 0; s < 100000; ++s) {
    q.Push(MakeEvent(Seconds(static_cast<double>(s) * 0.01), s));
  }
  const std::size_t peak_buckets = q.bucket_count();
  EXPECT_GE(peak_buckets, 100000u / 2u / 2u);  // Grew with occupancy.
  while (q.size() > 100) q.PopTop();
  EXPECT_LT(q.bucket_count(), peak_buckets);  // And shrank back down.
}

TEST(EventQueueTest, FactoryAndNames) {
  EXPECT_EQ(EventQueueKindName(EventQueueKind::kCalendar), "calendar");
  EXPECT_EQ(EventQueueKindName(EventQueueKind::kBinaryHeap), "binary-heap");
  auto cal = MakeEventQueue(EventQueueKind::kCalendar);
  auto heap = MakeEventQueue(EventQueueKind::kBinaryHeap);
  ASSERT_NE(dynamic_cast<CalendarEventQueue*>(cal.get()), nullptr);
  ASSERT_NE(dynamic_cast<HeapEventQueue*>(heap.get()), nullptr);
  cal->Push(MakeEvent(Seconds(1.0), 1));
  heap->Push(MakeEvent(Seconds(1.0), 1));
  EXPECT_EQ(cal->PopTop().seq, 1u);
  EXPECT_EQ(heap->PopTop().seq, 1u);
}

}  // namespace
}  // namespace vod::sim
