#include "core/arrival_estimator.h"

#include <algorithm>
#include <deque>
#include <vector>

#include <gtest/gtest.h>

#include "common/units.h"
#include "sim/rng.h"

namespace vod::core {
namespace {

TEST(ArrivalEstimatorTest, EmptyLogGivesZero) {
  ArrivalEstimator est(Minutes(40));
  EXPECT_EQ(est.KLog(100.0, 10.0), 0);
}

TEST(ArrivalEstimatorTest, SingleArrivalGivesOne) {
  ArrivalEstimator est(Minutes(40));
  est.RecordArrival(10.0);
  EXPECT_EQ(est.KLog(11.0, 5.0), 1);
}

TEST(ArrivalEstimatorTest, CountsWithinWindow) {
  ArrivalEstimator est(Minutes(40));
  // Three arrivals within 2 s, one far away.
  est.RecordArrival(10.0);
  est.RecordArrival(10.5);
  est.RecordArrival(11.5);
  est.RecordArrival(100.0);
  EXPECT_EQ(est.KLog(101.0, 2.0), 3);
  EXPECT_EQ(est.KLog(101.0, 0.8), 2);  // Only {10.0, 10.5} fit.
  EXPECT_EQ(est.KLog(101.0, 0.2), 1);
}

TEST(ArrivalEstimatorTest, PrunesBeyondTLog) {
  ArrivalEstimator est(60.0);  // T_log = 1 min.
  est.RecordArrival(0.0);
  est.RecordArrival(1.0);
  est.RecordArrival(100.0);
  // At t=130, arrivals at 0 and 1 are out of the log.
  EXPECT_EQ(est.KLog(130.0, 10.0), 1);
  EXPECT_EQ(est.logged_count(), 1u);
}

TEST(ArrivalEstimatorTest, ZeroPeriodGivesZero) {
  ArrivalEstimator est(60.0);
  est.RecordArrival(1.0);
  EXPECT_EQ(est.KLog(2.0, 0.0), 0);
}

TEST(ArrivalEstimatorTest, MatchesBruteForceOnRandomStreams) {
  // Property: the two-pointer sweep equals a quadratic brute force for
  // arrival-anchored windows.
  sim::Rng rng(123);
  for (int trial = 0; trial < 30; ++trial) {
    ArrivalEstimator est(1000.0);
    std::vector<double> times;
    double t = 0;
    for (int i = 0; i < 80; ++i) {
      t += rng.Exponential(0.5);
      times.push_back(t);
      est.RecordArrival(t);
    }
    const double sp = rng.Uniform(0.5, 20.0);
    int brute = 0;
    for (std::size_t i = 0; i < times.size(); ++i) {
      int cnt = 0;
      for (std::size_t j = i; j < times.size(); ++j) {
        if (times[j] < times[i] + sp) ++cnt;
      }
      brute = std::max(brute, cnt);
    }
    EXPECT_EQ(est.KLog(t, sp), brute) << "trial=" << trial << " sp=" << sp;
  }
}

TEST(ArrivalEstimatorTest, KLogGrowsWithWindow) {
  ArrivalEstimator est(Minutes(40));
  for (int i = 0; i < 20; ++i) est.RecordArrival(i * 1.0);
  int prev = 0;
  for (double sp : {0.5, 1.5, 3.5, 7.5, 25.0}) {
    const int k = est.KLog(20.0, sp);
    EXPECT_GE(k, prev);
    prev = k;
  }
}

TEST(ArrivalEstimatorTest, RequiresPositiveTLog) {
  EXPECT_DEATH(ArrivalEstimator(-1.0), "t_log");
}

}  // namespace
}  // namespace vod::core
