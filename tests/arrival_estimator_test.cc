#include "core/arrival_estimator.h"

#include <algorithm>
#include <deque>
#include <vector>

#include <gtest/gtest.h>

#include "common/units.h"
#include "sim/rng.h"

namespace vod::core {
namespace {

TEST(ArrivalEstimatorTest, EmptyLogGivesZero) {
  ArrivalEstimator est(Minutes(40));
  EXPECT_EQ(est.KLog(Seconds(100.0), Seconds(10.0)), 0);
}

TEST(ArrivalEstimatorTest, SingleArrivalGivesOne) {
  ArrivalEstimator est(Minutes(40));
  est.RecordArrival(Seconds(10.0));
  EXPECT_EQ(est.KLog(Seconds(11.0), Seconds(5.0)), 1);
}

TEST(ArrivalEstimatorTest, CountsWithinWindow) {
  ArrivalEstimator est(Minutes(40));
  // Three arrivals within 2 s, one far away.
  est.RecordArrival(Seconds(10.0));
  est.RecordArrival(Seconds(10.5));
  est.RecordArrival(Seconds(11.5));
  est.RecordArrival(Seconds(100.0));
  EXPECT_EQ(est.KLog(Seconds(101.0), Seconds(2.0)), 3);
  EXPECT_EQ(est.KLog(Seconds(101.0), Seconds(0.8)), 2);  // Only {10.0, 10.5} fit.
  EXPECT_EQ(est.KLog(Seconds(101.0), Seconds(0.2)), 1);
}

TEST(ArrivalEstimatorTest, PrunesBeyondTLog) {
  ArrivalEstimator est(Seconds(60.0));  // T_log = 1 min.
  est.RecordArrival(Seconds(0.0));
  est.RecordArrival(Seconds(1.0));
  est.RecordArrival(Seconds(100.0));
  // At t=130, arrivals at 0 and 1 are out of the log.
  EXPECT_EQ(est.KLog(Seconds(130.0), Seconds(10.0)), 1);
  EXPECT_EQ(est.logged_count(), 1u);
}

TEST(ArrivalEstimatorTest, ZeroPeriodGivesZero) {
  ArrivalEstimator est(Seconds(60.0));
  est.RecordArrival(Seconds(1.0));
  EXPECT_EQ(est.KLog(Seconds(2.0), Seconds(0.0)), 0);
}

TEST(ArrivalEstimatorTest, MatchesBruteForceOnRandomStreams) {
  // Property: the two-pointer sweep equals a quadratic brute force for
  // arrival-anchored windows.
  sim::Rng rng(123);
  for (int trial = 0; trial < 30; ++trial) {
    ArrivalEstimator est(Seconds(1000.0));
    std::vector<double> times;
    double t = 0;
    for (int i = 0; i < 80; ++i) {
      t += rng.Exponential(0.5);
      times.push_back(t);
      est.RecordArrival(Seconds(t));
    }
    const double sp = rng.Uniform(0.5, 20.0);
    int brute = 0;
    for (std::size_t i = 0; i < times.size(); ++i) {
      int cnt = 0;
      for (std::size_t j = i; j < times.size(); ++j) {
        if (times[j] < times[i] + sp) ++cnt;
      }
      brute = std::max(brute, cnt);
    }
    EXPECT_EQ(est.KLog(Seconds(t), Seconds(sp)), brute) << "trial=" << trial << " sp=" << sp;
  }
}

TEST(ArrivalEstimatorTest, KLogGrowsWithWindow) {
  ArrivalEstimator est(Minutes(40));
  for (int i = 0; i < 20; ++i) est.RecordArrival(Seconds(i * 1.0));
  int prev = 0;
  for (double sp : {0.5, 1.5, 3.5, 7.5, 25.0}) {
    const int k = est.KLog(Seconds(20.0), Seconds(sp));
    EXPECT_GE(k, prev);
    prev = k;
  }
}

TEST(ArrivalEstimatorTest, RequiresPositiveTLog) {
  EXPECT_DEATH(ArrivalEstimator(Seconds(-1.0)), "t_log");
}

}  // namespace
}  // namespace vod::core
