#include "common/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace vod {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStatsTest, MeanMinMax) {
  RunningStats s;
  for (double x : {3.0, 1.0, 4.0, 1.0, 5.0}) s.Add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.8);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 14.0);
}

TEST(RunningStatsTest, VarianceMatchesTwoPass) {
  std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats s;
  for (double x : xs) s.Add(x);
  double mean = 0;
  for (double x : xs) mean += x;
  mean /= xs.size();
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= (xs.size() - 1);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
}

TEST(RunningStatsTest, MergeEqualsCombinedStream) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10;
    (i % 2 == 0 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats a, b;
  a.Add(1.0);
  a.Merge(b);  // Empty other.
  EXPECT_EQ(a.count(), 1u);
  b.Merge(a);  // Empty self.
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(RunningStatsTest, ResetClears) {
  RunningStats s;
  s.Add(5.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(HistogramTest, CountsAndMean) {
  Histogram h(0.0, 10.0, 10);
  for (double x : {0.5, 1.5, 1.6, 9.5}) h.Add(x);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.mean(), (0.5 + 1.5 + 1.6 + 9.5) / 4);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 2u);
  EXPECT_EQ(h.buckets()[9], 1u);
}

TEST(HistogramTest, OutOfRangeClampsToEdgeBuckets) {
  Histogram h(0.0, 1.0, 4);
  h.Add(-5.0);
  h.Add(99.0);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[3], 1u);
}

TEST(HistogramTest, QuantileInterpolates) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.Add(i + 0.5);
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.Quantile(0.9), 90.0, 1.5);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.0);
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(StepTimeSeriesTest, MaxAndValueAt) {
  StepTimeSeries ts;
  ts.Record(0.0, 1.0);
  ts.Record(10.0, 3.0);
  ts.Record(20.0, 2.0);
  EXPECT_DOUBLE_EQ(ts.max_value(), 3.0);
  EXPECT_DOUBLE_EQ(ts.ValueAt(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(ts.ValueAt(0.0), 1.0);
  EXPECT_DOUBLE_EQ(ts.ValueAt(9.9), 1.0);
  EXPECT_DOUBLE_EQ(ts.ValueAt(10.0), 3.0);
  EXPECT_DOUBLE_EQ(ts.ValueAt(25.0), 2.0);
}

TEST(StepTimeSeriesTest, TimeWeightedMean) {
  StepTimeSeries ts;
  ts.Record(0.0, 2.0);
  ts.Record(10.0, 4.0);
  // 10s at 2, then 10s at 4 → mean 3.
  EXPECT_DOUBLE_EQ(ts.TimeWeightedMean(20.0), 3.0);
}

TEST(StepTimeSeriesTest, MaxInWindow) {
  StepTimeSeries ts;
  ts.Record(0.0, 1.0);
  ts.Record(5.0, 7.0);
  ts.Record(6.0, 2.0);
  EXPECT_DOUBLE_EQ(ts.MaxInWindow(0.0, 5.0), 1.0);   // Before the spike.
  EXPECT_DOUBLE_EQ(ts.MaxInWindow(0.0, 5.5), 7.0);   // Includes the spike.
  EXPECT_DOUBLE_EQ(ts.MaxInWindow(5.5, 10.0), 7.0);  // Value at window start.
  EXPECT_DOUBLE_EQ(ts.MaxInWindow(6.0, 10.0), 2.0);
}

TEST(StepTimeSeriesTest, EmptySeries) {
  StepTimeSeries ts;
  EXPECT_TRUE(ts.empty());
  EXPECT_DOUBLE_EQ(ts.ValueAt(1.0), 0.0);
  EXPECT_DOUBLE_EQ(ts.TimeWeightedMean(10.0), 0.0);
  EXPECT_DOUBLE_EQ(ts.MaxInWindow(0.0, 1.0), 0.0);
}

}  // namespace
}  // namespace vod
