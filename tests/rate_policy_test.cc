#include "core/rate_policy.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace vod::core {
namespace {

TEST(RatePolicyTest, MaximalRatePicksMax) {
  auto cr = EffectiveConsumptionRate({Mbps(1.5), Mbps(4.0), Mbps(2.0)},
                                     RatePolicy::kMaximalRate);
  ASSERT_TRUE(cr.ok());
  EXPECT_DOUBLE_EQ(ToMbps(*cr), 4.0);
}

TEST(RatePolicyTest, UnitRateIsGcd) {
  auto cr = EffectiveConsumptionRate({Mbps(1.5), Mbps(4.5), Mbps(3.0)},
                                     RatePolicy::kUnitRate);
  ASSERT_TRUE(cr.ok());
  EXPECT_NEAR(cr->value(), Mbps(1.5).value(), 2.0);
}

TEST(RatePolicyTest, SingleRateIsItselfUnderBothPolicies) {
  for (RatePolicy p : {RatePolicy::kMaximalRate, RatePolicy::kUnitRate}) {
    auto cr = EffectiveConsumptionRate({Mbps(1.5)}, p);
    ASSERT_TRUE(cr.ok());
    EXPECT_NEAR(cr->value(), Mbps(1.5).value(), 2.0);
  }
}

TEST(RatePolicyTest, RejectsEmptyAndNonPositive) {
  EXPECT_FALSE(EffectiveConsumptionRate({}, RatePolicy::kMaximalRate).ok());
  EXPECT_FALSE(
      EffectiveConsumptionRate({Mbps(1.5), BitsPerSecond(0.0)}, RatePolicy::kUnitRate).ok());
}

TEST(RatePolicyTest, MaximalRateUsesOneSlot) {
  auto slots = RequestSlots(Mbps(1.5), Mbps(4.0), RatePolicy::kMaximalRate);
  ASSERT_TRUE(slots.ok());
  EXPECT_EQ(*slots, 1);
}

TEST(RatePolicyTest, MaximalRateRejectsFasterStream) {
  EXPECT_FALSE(
      RequestSlots(Mbps(6.0), Mbps(4.0), RatePolicy::kMaximalRate).ok());
}

TEST(RatePolicyTest, UnitRateSlotsRoundUp) {
  auto s1 = RequestSlots(Mbps(3.0), Mbps(1.5), RatePolicy::kUnitRate);
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ(*s1, 2);
  auto s2 = RequestSlots(Mbps(4.0), Mbps(1.5), RatePolicy::kUnitRate);
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s2, 3);  // 2.67 rounds up.
  auto s3 = RequestSlots(Mbps(1.5), Mbps(1.5), RatePolicy::kUnitRate);
  ASSERT_TRUE(s3.ok());
  EXPECT_EQ(*s3, 1);
}

TEST(RatePolicyTest, UnitRateSlotsConserveThroughput) {
  // slots · unit >= rate for every stream (the unit decomposition never
  // under-provisions the stream's bandwidth).
  const BitsPerSecond unit = Mbps(0.5);
  for (BitsPerSecond rate : {Mbps(0.5), Mbps(1.5), Mbps(2.2), Mbps(6.0)}) {
    auto s = RequestSlots(rate, unit, RatePolicy::kUnitRate);
    ASSERT_TRUE(s.ok());
    EXPECT_GE(*s * unit, rate - BitsPerSecond(1e-6));
    EXPECT_LT((*s - 1) * unit, rate);
  }
}

}  // namespace
}  // namespace vod::core
