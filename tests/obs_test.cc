// Unit tests for the observability layer (src/obs): event-tracer ring
// semantics, histogram bucketing and quantile estimates against a
// sorted-vector reference, registry thread-safety under contention, the
// profiler's accumulation, the span tracker's lifecycle-derivation rules,
// the sim-time telemetry recorder's bucketing and CSV shape, and the trace
// exporters' structural guarantees (line-per-event JSONL, balanced B/E and
// ts-monotonic span interleaving in Chrome JSON).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "common/det.h"
#include "obs/event_tracer.h"
#include "obs/metrics_registry.h"
#include "obs/profile.h"
#include "obs/progress.h"
#include "obs/span_tracker.h"
#include "obs/timeseries_recorder.h"
#include "obs/trace_export.h"

namespace vod::obs {
namespace {

TraceEvent Ev(TraceEventKind kind, Seconds time, RequestId request,
              std::int32_t disk = 0) {
  TraceEvent ev;
  ev.kind = kind;
  ev.time = time;
  ev.request = request;
  ev.disk = disk;
  return ev;
}

std::size_t CountOccurrences(const std::string& haystack,
                             const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// EventTracer
// ---------------------------------------------------------------------------

TEST(EventTracerTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(EventTracer(1).capacity(), 2u);  // Minimum capacity is 2.
  EXPECT_EQ(EventTracer(2).capacity(), 2u);
  EXPECT_EQ(EventTracer(3).capacity(), 4u);
  EXPECT_EQ(EventTracer(100).capacity(), 128u);
  EXPECT_EQ(EventTracer().capacity(), EventTracer::kDefaultCapacity);
}

TEST(EventTracerTest, RetainsAllEventsBelowCapacity) {
  EventTracer tracer(8);
  for (RequestId id = 1; id <= 5; ++id) {
    tracer.Emit(Ev(TraceEventKind::kAdmit, Seconds(static_cast<double>(id)), id));
  }
  EXPECT_EQ(tracer.size(), 5u);
  EXPECT_EQ(tracer.total_emitted(), 5u);
  EXPECT_EQ(tracer.dropped(), 0u);
  const std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].request, i + 1);  // Oldest first.
  }
}

TEST(EventTracerTest, WraparoundKeepsMostRecentWindowInOrder) {
  EventTracer tracer(8);
  ASSERT_EQ(tracer.capacity(), 8u);
  const std::uint64_t total = 3 * 8 + 5;  // Wraps several times.
  for (std::uint64_t i = 1; i <= total; ++i) {
    tracer.Emit(Ev(TraceEventKind::kServiceStart, Seconds(static_cast<double>(i)), i));
  }
  EXPECT_EQ(tracer.size(), 8u);
  EXPECT_EQ(tracer.total_emitted(), total);
  EXPECT_EQ(tracer.dropped(), total - 8);
  const std::vector<TraceEvent> events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    // The retained window is exactly the last 8 emissions, oldest first.
    EXPECT_EQ(events[i].request, total - 8 + 1 + i);
  }
}

TEST(EventTracerTest, ClearResets) {
  EventTracer tracer(8);
  tracer.Emit(Ev(TraceEventKind::kArrival, Seconds(0.0), 1));
  tracer.Clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.total_emitted(), 0u);
  EXPECT_TRUE(tracer.Snapshot().empty());
}

TEST(TraceEventTest, KindNamesAreStableAndDistinct) {
  EXPECT_EQ(TraceEventKindName(TraceEventKind::kServiceStart),
            "service_start");
  EXPECT_EQ(TraceEventKindName(TraceEventKind::kRejectMemory),
            "reject_memory");
  std::vector<std::string> names;
  for (int i = 0; i < kTraceEventKindCount; ++i) {
    names.emplace_back(TraceEventKindName(static_cast<TraceEventKind>(i)));
    EXPECT_FALSE(names.back().empty());
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, BucketBoundariesAreLeftOpenRightClosed) {
  // Bucket 0 = (-inf, 1]; bucket i = (2^(i-1), 2^i].
  Histogram h({.lo = 1.0, .growth = 2.0, .buckets = 8});
  EXPECT_EQ(h.BucketFor(-3.0), 0u);
  EXPECT_EQ(h.BucketFor(0.0), 0u);
  EXPECT_EQ(h.BucketFor(1.0), 0u);   // Exactly lo: inclusive in bucket 0.
  EXPECT_EQ(h.BucketFor(1.5), 1u);
  EXPECT_EQ(h.BucketFor(2.0), 1u);   // Exact boundary: right-closed.
  EXPECT_EQ(h.BucketFor(2.0001), 2u);
  EXPECT_EQ(h.BucketFor(4.0), 2u);
  EXPECT_EQ(h.BucketFor(64.0), 6u);
  EXPECT_EQ(h.BucketFor(64.0001), 7u);  // Overflow bucket.
  EXPECT_EQ(h.BucketFor(1e18), 7u);
  EXPECT_EQ(h.UpperBound(0), 1.0);
  EXPECT_EQ(h.UpperBound(6), 64.0);
  EXPECT_TRUE(std::isinf(h.UpperBound(7)));
}

TEST(HistogramTest, ExactBoundaryValuesSatisfyBucketInvariant) {
  // log() rounding must not misplace exact powers of the growth factor.
  Histogram h({.lo = 1e-3, .growth = 2.0, .buckets = 40});
  for (std::size_t i = 1; i + 1 < 40; ++i) {
    const double ub = h.UpperBound(i);
    EXPECT_EQ(h.BucketFor(ub), i) << "upper bound of bucket " << i;
    const double above = ub * (1.0 + 1e-12);
    EXPECT_EQ(h.BucketFor(above), i + 1) << "just above bucket " << i;
  }
}

TEST(HistogramTest, CountSumMeanMinMaxAreExact) {
  Histogram h({.lo = 1.0, .growth = 2.0, .buckets = 16});
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  h.Add(3.0);
  h.Add(5.0);
  h.Add(100.0);
  EXPECT_EQ(h.count(), 3);
  EXPECT_EQ(h.sum(), 108.0);
  EXPECT_EQ(h.mean(), 36.0);
  EXPECT_EQ(h.min(), 3.0);
  EXPECT_EQ(h.max(), 100.0);
}

TEST(HistogramTest, QuantilesMatchSortedVectorReferenceWithinOneBucket) {
  // Log-normal-ish deterministic sample spanning several decades.
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  const Histogram::Options opt{.lo = 1e-4, .growth = 1.5, .buckets = 64};
  Histogram h(opt);
  std::vector<double> samples;
  samples.reserve(10000);
  for (int i = 0; i < 10000; ++i) {
    const double v = std::exp(8.0 * uniform(rng) - 4.0);  // e^-4 .. e^4.
    samples.push_back(v);
    h.Add(v);
  }
  std::sort(samples.begin(), samples.end());
  for (const double q : {0.10, 0.50, 0.90, 0.95, 0.99}) {
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(samples.size())));
    const double exact = samples[rank - 1];
    const double est = h.Quantile(q);
    // The estimate is the containing bucket's upper bound: never below the
    // true sample quantile, and at most one growth factor above it.
    EXPECT_GE(est, exact) << "q=" << q;
    EXPECT_LE(est, exact * opt.growth * (1.0 + 1e-9)) << "q=" << q;
  }
  EXPECT_EQ(h.Quantile(0.0), samples.front());
  EXPECT_EQ(h.Quantile(1.0), samples.back());
  // The overflow path reports the observed max, not infinity.
  EXPECT_LE(h.Quantile(0.999999), samples.back());
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, LookupIsIdempotentAndStable) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.Increment(3);
  EXPECT_EQ(reg.counter("x").value(), 3);
  Histogram& h = reg.histogram("lat", {.lo = 0.5});
  EXPECT_EQ(&h, &reg.histogram("lat"));  // Options only apply on creation.
  EXPECT_EQ(h.options().lo, 0.5);
}

TEST(MetricsRegistryTest, ThreadSafeUnderEightThreadStress) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t]() {
      for (int i = 0; i < kOpsPerThread; ++i) {
        // Re-resolve by name every time: stresses the map lookup path, not
        // just the atomics.
        reg.counter("shared.count").Increment();
        reg.histogram("shared.hist", {.lo = 1.0})
            .Add(static_cast<double>(i % 100));
        reg.gauge("shared.gauge").Set(static_cast<double>(t));
        reg.counter("per." + std::to_string(t)).Increment();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(reg.counter("shared.count").value(), kThreads * kOpsPerThread);
  EXPECT_EQ(reg.histogram("shared.hist").count(), kThreads * kOpsPerThread);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.counter("per." + std::to_string(t)).value(), kOpsPerThread);
  }
  const double g = reg.gauge("shared.gauge").value();
  EXPECT_GE(g, 0.0);
  EXPECT_LT(g, kThreads);
}

TEST(MetricsRegistryTest, ToJsonIsDeterministicAndSorted) {
  MetricsRegistry reg;
  reg.counter("b.count").Increment(2);
  reg.counter("a.count").Increment(1);
  reg.gauge("g").Set(1.5);
  reg.histogram("h").Add(3.0);
  const std::string json = reg.ToJson();
  EXPECT_EQ(json, reg.ToJson());
  EXPECT_LT(json.find("a.count"), json.find("b.count"));  // Keys sorted.
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  reg.Clear();
  EXPECT_EQ(reg.counter("a.count").value(), 0);
}

// ---------------------------------------------------------------------------
// Profiler
// ---------------------------------------------------------------------------

TEST(ProfilerTest, RegisterIsIdempotentAndScopesAccumulate) {
  Profiler& prof = Profiler::Global();
  ProfSite* site = prof.Register("obs_test.site");
  EXPECT_EQ(site, prof.Register("obs_test.site"));
  const std::int64_t calls_before =
      site->calls.load(std::memory_order_relaxed);
  for (int i = 0; i < 10; ++i) {
    ProfScope scope(site);
  }
  EXPECT_EQ(site->calls.load(std::memory_order_relaxed), calls_before + 10);
  EXPECT_GE(site->nanos.load(std::memory_order_relaxed), 0);

  bool found = false;
  for (const ProfSiteStats& s : prof.Snapshot()) {
    if (s.name == "obs_test.site") {
      found = true;
      EXPECT_GE(s.calls, 10);
      EXPECT_GE(s.total, Seconds(0.0));
    }
  }
  EXPECT_TRUE(found);
  EXPECT_NE(prof.ReportTable().find("obs_test.site"), std::string::npos);
  EXPECT_NE(prof.ToJson().find("obs_test.site"), std::string::npos);
}

// Regression: Snapshot sorts by total descending with a *name* tie-break.
// The original std::sort comparator ordered equal totals arbitrarily
// (std::sort is unstable), so report tables and JSON dumps could differ
// between runs with identical accumulated values.
TEST(ProfilerTest, SnapshotTieBreaksEqualTotalsByName) {
  Profiler& prof = Profiler::Global();
  // Registered out of alphabetical order; identical totals and calls.
  for (const char* name : {"obs_test.tie.c", "obs_test.tie.a",
                           "obs_test.tie.b"}) {
    ProfSite* site = prof.Register(name);
    site->calls.fetch_add(3, std::memory_order_relaxed);
    site->nanos.fetch_add(7'000, std::memory_order_relaxed);
  }
  const std::vector<ProfSiteStats> snap = prof.Snapshot();
  auto index_of = [&snap](const std::string& name) {
    for (std::size_t i = 0; i < snap.size(); ++i) {
      if (snap[i].name == name) return i;
    }
    return snap.size();
  };
  const std::size_t a = index_of("obs_test.tie.a");
  const std::size_t b = index_of("obs_test.tie.b");
  const std::size_t c = index_of("obs_test.tie.c");
  ASSERT_LT(a, snap.size());
  ASSERT_LT(b, snap.size());
  ASSERT_LT(c, snap.size());
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  // And twice in a row is byte-identical.
  EXPECT_EQ(prof.ToJson(), prof.ToJson());
}

// ---------------------------------------------------------------------------
// det:: determinism helpers
// ---------------------------------------------------------------------------

TEST(DetTest, SortedKeysSortsHashContainerKeys) {
  std::unordered_map<std::string, int> m{
      {"delta", 4}, {"alpha", 1}, {"charlie", 3}, {"bravo", 2}};
  const std::vector<std::string> keys = det::SortedKeys(m);
  const std::vector<std::string> want{"alpha", "bravo", "charlie", "delta"};
  EXPECT_EQ(keys, want);
}

TEST(DetTest, SortedItemPtrsWorksForMoveOnlyMappedTypes) {
  std::unordered_map<std::string, std::unique_ptr<int>> m;
  m.emplace("b", std::make_unique<int>(2));
  m.emplace("a", std::make_unique<int>(1));
  m.emplace("c", std::make_unique<int>(3));
  const auto items = det::SortedItemPtrs(m);
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0]->first, "a");
  EXPECT_EQ(*items[2]->second, 3);
}

#if VODB_AUDIT_ENABLED
TEST(DetTest, AuditOrderedOutputAcceptsStrictlyIncreasing) {
  const std::vector<int> ok{1, 2, 5, 9};
  det::AuditOrderedOutput(ok, "det_test.ok");  // Must not abort.
}

TEST(DetTest, AuditOrderedOutputAbortsOnDisorderOrDuplicates) {
  const std::vector<int> unsorted{1, 3, 2};
  EXPECT_DEATH(det::AuditOrderedOutput(unsorted, "det_test.unsorted"),
               "determinism audit");
  const std::vector<int> dupes{1, 2, 2};
  EXPECT_DEATH(det::AuditOrderedOutput(dupes, "det_test.dupes"),
               "determinism audit");
}

TEST(DetTest, AuditOrderedKeysAcceptsOrderedMapIteration) {
  std::map<std::string, int> m{{"a", 1}, {"b", 2}, {"c", 3}};
  det::AuditOrderedKeys(m, "det_test.map");  // Must not abort.
}
#endif  // VODB_AUDIT_ENABLED

// ---------------------------------------------------------------------------
// ProgressReporter
// ---------------------------------------------------------------------------

TEST(ProgressReporterTest, CountsAndFinishesIdempotently) {
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  ProgressReporter progress(3, "units", sink, /*min_interval=*/Seconds(0.0));
  progress.OnComplete();
  progress.OnComplete();
  progress.OnComplete();
  progress.OnComplete();  // Over-completion clamps at total.
  EXPECT_EQ(progress.completed(), 3u);
  progress.Finish();
  progress.Finish();
  std::fflush(sink);
  std::rewind(sink);
  std::string text(4096, '\0');
  text.resize(std::fread(text.data(), 1, text.size(), sink));
  std::fclose(sink);
  EXPECT_NE(text.find("units 3/3 (100.0%)"), std::string::npos);
  EXPECT_EQ(CountOccurrences(text, "\n"), 1u);  // Only Finish adds newline.
}

// ---------------------------------------------------------------------------
// Trace export
// ---------------------------------------------------------------------------

std::vector<TraceRun> SampleRuns() {
  TraceRun run;
  run.label = "rr/dynamic/t40/a1/r0";
  run.pid = 0;
  run.events = {
      Ev(TraceEventKind::kArrival, Seconds(0.0), 7),
      Ev(TraceEventKind::kAdmit, Seconds(0.0), 7),
      Ev(TraceEventKind::kAllocation, Seconds(0.0), 7),
      Ev(TraceEventKind::kServiceStart, Seconds(0.1), 7),
      Ev(TraceEventKind::kServiceEnd, Seconds(0.2), 7),
      Ev(TraceEventKind::kServiceStart, Seconds(1.1), 7),
      Ev(TraceEventKind::kServiceEnd, Seconds(1.2), 7),
      Ev(TraceEventKind::kDeparture, Seconds(2.0), 7),
  };
  return {run};
}

TEST(TraceExportTest, JsonlEmitsOneLinePerEvent) {
  const std::vector<TraceRun> runs = SampleRuns();
  const std::string jsonl = ToJsonl(runs);
  EXPECT_EQ(CountOccurrences(jsonl, "\n"), runs[0].events.size());
  EXPECT_EQ(CountOccurrences(jsonl, "{\"run\":0,\"label\":"),
            runs[0].events.size());
  EXPECT_NE(jsonl.find("\"kind\":\"service_start\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"kind\":\"departure\""), std::string::npos);
}

TEST(TraceExportTest, ChromeJsonHasBalancedSlicesAndNamedTracks) {
  const std::string json = ToChromeTraceJson(SampleRuns());
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"B\""),
            CountOccurrences(json, "\"ph\":\"E\""));
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"B\""), 2u);
  // Async request span opened at admit, closed at departure.
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"b\""), 1u);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"e\""), 1u);
  // Two service slices -> a flow arrow pair (s then terminal f).
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"s\""), 1u);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"f\""), 1u);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"disk 0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"requests\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// SpanTracker
// ---------------------------------------------------------------------------

std::vector<Span> SpansOfKind(const std::vector<Span>& spans, SpanKind kind) {
  std::vector<Span> out;
  for (const Span& s : spans) {
    if (s.kind == kind) out.push_back(s);
  }
  return out;
}

TEST(SpanTrackerTest, KindNamesAreStableAndDistinct) {
  EXPECT_EQ(SpanKindName(SpanKind::kAdmissionWait), "admission_wait");
  EXPECT_EQ(SpanKindName(SpanKind::kService), "service");
  EXPECT_EQ(SpanKindName(SpanKind::kDegradedEpisode), "degraded");
  EXPECT_EQ(SpanKindName(SpanKind::kRetryBurst), "retry_burst");
}

TEST(SpanTrackerTest, AdmissionWaitSpansArrivalToAdmit) {
  const std::vector<TraceEvent> events = {
      Ev(TraceEventKind::kArrival, Seconds(1.0), 7),
      Ev(TraceEventKind::kDefer, Seconds(1.0), 7),  // Deferral keeps it open.
      Ev(TraceEventKind::kAdmit, Seconds(4.0), 7),
  };
  const auto spans = SpanTracker::FromEvents(events, Seconds(10.0));
  const auto waits = SpansOfKind(spans, SpanKind::kAdmissionWait);
  ASSERT_EQ(waits.size(), 1u);
  EXPECT_EQ(waits[0].request, 7u);
  EXPECT_EQ(waits[0].begin, Seconds(1.0));
  EXPECT_EQ(waits[0].end, Seconds(4.0));
}

TEST(SpanTrackerTest, RejectedArrivalProducesNoSpan) {
  const std::vector<TraceEvent> events = {
      Ev(TraceEventKind::kArrival, Seconds(1.0), 7),
      Ev(TraceEventKind::kRejectCapacity, Seconds(1.0), 7),
      Ev(TraceEventKind::kArrival, Seconds(2.0), 8),
      Ev(TraceEventKind::kRejectMemory, Seconds(2.0), 8),
  };
  EXPECT_TRUE(SpanTracker::FromEvents(events, Seconds(10.0)).empty());
}

TEST(SpanTrackerTest, ServiceSpansPairStartToEndAndDropOrphanEnds) {
  const std::vector<TraceEvent> events = {
      Ev(TraceEventKind::kServiceEnd, Seconds(0.5), 9),  // Ring-wrap orphan.
      Ev(TraceEventKind::kServiceStart, Seconds(1.0), 9, /*disk=*/2),
      Ev(TraceEventKind::kServiceEnd, Seconds(1.25), 9, /*disk=*/2),
      Ev(TraceEventKind::kServiceStart, Seconds(2.0), 9, /*disk=*/2),
      Ev(TraceEventKind::kServiceEnd, Seconds(2.25), 9, /*disk=*/2),
  };
  const auto spans = SpanTracker::FromEvents(events, Seconds(10.0));
  const auto services = SpansOfKind(spans, SpanKind::kService);
  ASSERT_EQ(services.size(), 2u);
  EXPECT_EQ(services[0].begin, Seconds(1.0));
  EXPECT_EQ(services[0].end, Seconds(1.25));
  EXPECT_EQ(services[0].disk, 2);
  EXPECT_EQ(services[1].begin, Seconds(2.0));
}

TEST(SpanTrackerTest, DegradedEpisodeClosesOnRecoveryOrFinish) {
  const std::vector<TraceEvent> events = {
      Ev(TraceEventKind::kDegraded, Seconds(1.0), 5),
      Ev(TraceEventKind::kRecovered, Seconds(3.0), 5),
      Ev(TraceEventKind::kDegraded, Seconds(7.0), 6),  // Never recovers.
  };
  const auto spans = SpanTracker::FromEvents(events, Seconds(10.0));
  const auto episodes = SpansOfKind(spans, SpanKind::kDegradedEpisode);
  ASSERT_EQ(episodes.size(), 2u);
  EXPECT_EQ(episodes[0].request, 5u);
  EXPECT_EQ(episodes[0].end, Seconds(3.0));
  EXPECT_EQ(episodes[1].request, 6u);
  EXPECT_EQ(episodes[1].end, Seconds(10.0));  // Clipped at Finish.
}

TEST(SpanTrackerTest, RetryBurstSpansFirstFaultToOutcome) {
  const std::vector<TraceEvent> events = {
      // Burst 1: two faults, recovered by a successful service end.
      Ev(TraceEventKind::kReadFault, Seconds(1.0), 4),
      Ev(TraceEventKind::kReadFault, Seconds(1.2), 4),
      Ev(TraceEventKind::kServiceEnd, Seconds(1.5), 4),
      // Burst 2: budget exhausted -> hiccup closes it.
      Ev(TraceEventKind::kReadFault, Seconds(5.0), 4),
      Ev(TraceEventKind::kHiccup, Seconds(5.4), 4),
  };
  const auto spans = SpanTracker::FromEvents(events, Seconds(10.0));
  const auto bursts = SpansOfKind(spans, SpanKind::kRetryBurst);
  ASSERT_EQ(bursts.size(), 2u);
  EXPECT_EQ(bursts[0].begin, Seconds(1.0));  // First fault, not the second.
  EXPECT_EQ(bursts[0].end, Seconds(1.5));
  EXPECT_EQ(bursts[1].begin, Seconds(5.0));
  EXPECT_EQ(bursts[1].end, Seconds(5.4));
}

TEST(SpanTrackerTest, DepartureClosesOpenDegradedAndBurst) {
  const std::vector<TraceEvent> events = {
      Ev(TraceEventKind::kDegraded, Seconds(1.0), 3),
      Ev(TraceEventKind::kReadFault, Seconds(2.0), 3),
      Ev(TraceEventKind::kDeparture, Seconds(4.0), 3),
  };
  const auto spans = SpanTracker::FromEvents(events, Seconds(10.0));
  ASSERT_EQ(spans.size(), 2u);
  for (const Span& s : spans) {
    EXPECT_EQ(s.end, Seconds(4.0));  // Both clipped at departure, not 10.
  }
}

TEST(SpanTrackerTest, OutputIsSortedAndEverySpanHasNonNegativeDuration) {
  // A busy interleaved stream across three requests.
  std::vector<TraceEvent> events;
  for (int r = 1; r <= 3; ++r) {
    const double base = static_cast<double>(r);
    events.push_back(Ev(TraceEventKind::kArrival, Seconds(base), r));
    events.push_back(Ev(TraceEventKind::kAdmit, Seconds(base + 0.1), r));
    events.push_back(
        Ev(TraceEventKind::kServiceStart, Seconds(base + 0.2), r));
    events.push_back(Ev(TraceEventKind::kServiceEnd, Seconds(base + 0.3), r));
    events.push_back(Ev(TraceEventKind::kDeparture, Seconds(base + 9.0), r));
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.time < b.time;
            });
  const auto spans = SpanTracker::FromEvents(events, Seconds(20.0));
  ASSERT_EQ(spans.size(), 6u);  // 3 waits + 3 services.
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_GE(spans[i].end, spans[i].begin);
    if (i > 0) {
      EXPECT_GE(spans[i].begin, spans[i - 1].begin);  // Sorted.
    }
  }
}

// ---------------------------------------------------------------------------
// TimeseriesRecorder
// ---------------------------------------------------------------------------

TimeseriesSample Sample(double reserved_bits, double busy_s, int active = 1) {
  TimeseriesSample s;
  s.reserved = Bits(reserved_bits);
  s.buffered = Bits(reserved_bits / 2);
  s.queue_depth = 10;
  s.active = active;
  s.degraded = 0;
  s.disk_busy = Seconds(busy_s);
  return s;
}

TEST(TimeseriesRecorderTest, RecordsOnePointPerBucket) {
  TimeseriesRecorder rec({.bucket = Seconds(60.0)});
  EXPECT_TRUE(rec.Due(Seconds(0.0)));  // Bucket 0 has no point yet.
  rec.Record(Seconds(5.0), Sample(100.0, 1.0));
  EXPECT_FALSE(rec.Due(Seconds(30.0)));  // Same bucket: not due.
  rec.Record(Seconds(30.0), Sample(999.0, 2.0));  // Ignored (not due).
  EXPECT_TRUE(rec.Due(Seconds(61.0)));
  rec.Record(Seconds(61.0), Sample(200.0, 2.0));
  ASSERT_EQ(rec.points().size(), 2u);
  EXPECT_EQ(rec.points()[0].time, Seconds(5.0));  // Observation time kept.
  EXPECT_EQ(ToBits(rec.points()[0].reserved), 100.0);
  EXPECT_EQ(rec.points()[1].time, Seconds(61.0));
}

TEST(TimeseriesRecorderTest, SparseEventsSkipEmptyBuckets) {
  TimeseriesRecorder rec({.bucket = Seconds(60.0)});
  rec.Record(Seconds(10.0), Sample(1.0, 0.0));
  // Nothing happened for 10 buckets; the next event lands in bucket 11.
  EXPECT_TRUE(rec.Due(Seconds(700.0)));
  rec.Record(Seconds(700.0), Sample(2.0, 0.0));
  ASSERT_EQ(rec.points().size(), 2u);
  // Then the very next bucket fires normally at 720.
  EXPECT_FALSE(rec.Due(Seconds(719.0)));
  EXPECT_TRUE(rec.Due(Seconds(721.0)));
}

TEST(TimeseriesRecorderTest, BusyFractionIsDeltaOverIntervalClamped) {
  TimeseriesRecorder rec({.bucket = Seconds(60.0)});
  rec.Record(Seconds(0.0), Sample(0.0, 0.0));
  EXPECT_EQ(rec.points()[0].busy_fraction, 0.0);  // No preceding interval.
  // 30 s of busy over a 60 s interval.
  rec.Record(Seconds(60.0), Sample(0.0, 30.0));
  EXPECT_DOUBLE_EQ(rec.points()[1].busy_fraction, 0.5);
  // 90 s of additional busy over 60 s would exceed 1: clamped.
  rec.Record(Seconds(120.0), Sample(0.0, 120.0));
  EXPECT_EQ(rec.points()[2].busy_fraction, 1.0);
  // Cumulative counter stalls: fraction drops to 0.
  rec.Record(Seconds(180.0), Sample(0.0, 120.0));
  EXPECT_EQ(rec.points()[3].busy_fraction, 0.0);
}

TEST(TimeseriesRecorderTest, ClearResets) {
  TimeseriesRecorder rec;
  rec.Record(Seconds(5.0), Sample(1.0, 1.0));
  ASSERT_EQ(rec.points().size(), 1u);
  rec.Clear();
  EXPECT_TRUE(rec.points().empty());
  EXPECT_TRUE(rec.Due(Seconds(0.0)));
}

TEST(TimeseriesCsvTest, HeaderAndRowsAreStable) {
  TimeseriesRecorder rec({.bucket = Seconds(60.0)});
  rec.Record(Seconds(5.0), Sample(8e6, 30.0, /*active=*/3));
  rec.Record(Seconds(65.0), Sample(16e6, 45.0, /*active=*/4));
  TimeseriesRun run;
  run.label = "rr/dynamic/t40/a1/r0";
  run.run = 2;
  run.disk = 0;
  run.recorder = &rec;
  const std::string csv = TimeseriesCsv({run});
  EXPECT_EQ(CountOccurrences(csv, "\n"), 3u);  // Header + 2 rows.
  EXPECT_EQ(csv.find("run,label,disk,time_s,reserved_mbit,buffered_mbit,"
                     "queue_depth,active,degraded,busy_fraction\n"),
            0u);
  EXPECT_NE(csv.find("2,rr/dynamic/t40/a1/r0,0,5.000,8.000,4.000,10,3,0,"),
            std::string::npos);
  EXPECT_NE(csv.find(",16.000,8.000,10,4,0,0.250000"), std::string::npos);
  EXPECT_EQ(csv, TimeseriesCsv({run}));  // Deterministic.
}

// ---------------------------------------------------------------------------
// Trace export
// ---------------------------------------------------------------------------

TEST(TraceExportTest, OrphanServiceEndIsDroppedAfterRingWrap) {
  // Simulates a ring that wrapped mid-service: the end's begin is gone.
  TraceRun run;
  run.label = "wrapped";
  run.pid = 3;
  run.events = {
      Ev(TraceEventKind::kServiceEnd, Seconds(0.2), 9),  // Orphan.
      Ev(TraceEventKind::kServiceStart, Seconds(0.3), 9),
      Ev(TraceEventKind::kServiceEnd, Seconds(0.4), 9),
  };
  const std::string json = ToChromeTraceJson({run});
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"B\""), 1u);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"E\""), 1u);
}

TEST(TraceExportTest, SpansOffByDefaultAndOneArgOverloadMatches) {
  const std::vector<TraceRun> runs = SampleRuns();
  const std::string plain = ToChromeTraceJson(runs);
  EXPECT_EQ(CountOccurrences(plain, "\"ph\":\"X\""), 0u);
  EXPECT_EQ(plain, ToChromeTraceJson(runs, TraceExportOptions{}));
}

TEST(TraceExportTest, SpanExportEmitsStreamTracksWithCompleteEvents) {
  TraceExportOptions options;
  options.spans = true;
  const std::string json = ToChromeTraceJson(SampleRuns(), options);
  // SampleRuns: request 7 arrives+admits at t=0 (zero-length wait), two
  // service rounds -> 1 admission_wait + 2 service X events.
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"X\""), 3u);
  EXPECT_EQ(CountOccurrences(json, "\"name\":\"admission_wait\""), 1u);
  EXPECT_EQ(CountOccurrences(json, "\"name\":\"service\",\"cat\":\"span\""),
            2u);
  // The stream's span track is named and sits at kSpanTrackTidBase + id.
  EXPECT_NE(json.find("\"name\":\"stream 7\""), std::string::npos);
  const std::string tid = "\"tid\":" + std::to_string(kSpanTrackTidBase + 7);
  EXPECT_NE(json.find(tid), std::string::npos);
  // Span emission must not disturb the regular event stream.
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"B\""), 2u);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"b\""), 1u);
}

TEST(TraceExportTest, SpanExportKeepsPerPidTimestampsMonotonic) {
  // Late-beginning spans must be interleaved into the event walk, not
  // appended: a validator-grade scan of ts order per pid.
  TraceRun run;
  run.label = "interleave";
  run.pid = 0;
  run.events = {
      Ev(TraceEventKind::kArrival, Seconds(0.0), 1),
      Ev(TraceEventKind::kAdmit, Seconds(0.5), 1),
      Ev(TraceEventKind::kServiceStart, Seconds(1.0), 1),
      Ev(TraceEventKind::kServiceEnd, Seconds(1.2), 1),
      Ev(TraceEventKind::kArrival, Seconds(2.0), 2),
      Ev(TraceEventKind::kAdmit, Seconds(2.5), 2),
      Ev(TraceEventKind::kServiceStart, Seconds(3.0), 2),
      Ev(TraceEventKind::kServiceEnd, Seconds(3.3), 2),
      Ev(TraceEventKind::kDeparture, Seconds(4.0), 1),
      Ev(TraceEventKind::kDeparture, Seconds(5.0), 2),
  };
  TraceExportOptions options;
  options.spans = true;
  const std::string json = ToChromeTraceJson({run}, options);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"X\""), 4u);
  // Walk the emitted lines in order; every non-metadata ts must be
  // non-decreasing (the exact invariant scripts/validate_trace.py enforces).
  double last_ts = -1.0;
  std::size_t pos = 0;
  std::size_t checked = 0;
  while ((pos = json.find("\"ts\":", pos)) != std::string::npos) {
    const double ts = std::strtod(json.c_str() + pos + 5, nullptr);
    EXPECT_GE(ts, last_ts) << "at offset " << pos;
    last_ts = ts;
    ++checked;
    pos += 5;
  }
  EXPECT_GT(checked, 10u);
}

}  // namespace
}  // namespace vod::obs
