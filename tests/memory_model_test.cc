#include "core/memory_model.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/units.h"
#include "core/closed_form.h"
#include "core/static_alloc.h"
#include "disk/disk_profile.h"

namespace vod::core {
namespace {

AllocParams PaperParams(ScheduleMethod m = ScheduleMethod::kRoundRobin,
                        int n_or_g = 0) {
  auto p =
      MakeAllocParams(disk::SeagateBarracuda9LP(), Mbps(1.5), m, n_or_g, 1);
  EXPECT_TRUE(p.ok());
  return p.value();
}

/// Brute force of Theorem 2's model (proof of Eq. 15–17): n buffers of size
/// BS refilled on a carousel of (slots) equal slots of width T/slots with
/// T = BS/CR; each holds BS − CR·((t−τ_i) mod T) + CR·DL. The minimum
/// memory requirement is the max of the sum over the service instants.
double BruteForceRoundRobinMemory(const AllocParams& p, Bits bs, int n,
                                  int slots) {
  const double t_period = ToSeconds(bs / p.cr);
  const double delta = t_period / slots;
  const double cr = p.cr.value();
  double best = 0.0;
  for (int j = 0; j < n; ++j) {
    const double t = j * delta;
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      double dt = std::fmod(t - i * delta + 2 * t_period, t_period);
      total += bs.value() - cr * dt + cr * p.dl.value();
    }
    best = std::max(best, total);
  }
  return best;
}

TEST(MemoryModelTest, Theorem2MatchesBruteForce) {
  const AllocParams p = PaperParams();
  for (int n : {1, 2, 5, 20, 40, 79}) {
    for (int k : {0, 1, 4, 10}) {
      if (n + k > p.n_max) continue;
      const Bits bs = DynamicBufferSize(p, n, k).value();
      const double expected = BruteForceRoundRobinMemory(p, bs, n, n + k);
      const double got = ToBits(MemoryRequirementRoundRobin(p, bs, n, n + k));
      EXPECT_NEAR(got / expected, 1.0, 1e-9) << "n=" << n << " k=" << k;
    }
  }
}

TEST(MemoryModelTest, Theorem2StaticInstantiationMatchesBruteForce) {
  const AllocParams p = PaperParams();
  const Bits bs = StaticSchemeBufferSize(p).value();
  for (int n : {1, 10, 50, 79}) {
    EXPECT_NEAR(ToBits(MemoryRequirementRoundRobin(p, bs, n, p.n_max)) /
                    BruteForceRoundRobinMemory(p, bs, n, p.n_max),
                1.0, 1e-9)
        << "n=" << n;
  }
}

TEST(MemoryModelTest, SweepSingleRequestCase) {
  const AllocParams p = PaperParams(ScheduleMethod::kSweep, 1);
  const Bits bs = Megabits(10);
  EXPECT_NEAR(ToBits(MemoryRequirementSweep(p, bs, 1, 5)),
              ToBits(bs + (bs / p.tr + p.dl) * p.cr), 1e-6);
}

TEST(MemoryModelTest, SweepFormulaForTwoRequests) {
  const AllocParams p = PaperParams(ScheduleMethod::kSweep, 2);
  const Bits bs = Megabits(10);
  const Seconds t = bs / p.cr;
  // n = 2: (n−1)·BS + (n·T/slots − (n−2)·BS/TR)·CR·n with slots = 3.
  EXPECT_NEAR(ToBits(MemoryRequirementSweep(p, bs, 2, 3)),
              ToBits(bs + (2 * t / 3) * p.cr * 2), 1e-6);
}

TEST(MemoryModelTest, GssDegeneratesToSweepWhenGroupCoversAll) {
  const AllocParams p = PaperParams(ScheduleMethod::kGss, 8);
  const Bits bs = Megabits(20);
  EXPECT_DOUBLE_EQ(ToBits(MemoryRequirementGss(p, bs, 6, 10, 8)),
                   ToBits(MemoryRequirementSweep(p, bs, 6, 10)));
}

TEST(MemoryModelTest, GssDegeneratesToRoundRobinWhenGroupOfOne) {
  const AllocParams p = PaperParams(ScheduleMethod::kGss, 1);
  const Bits bs = Megabits(20);
  EXPECT_DOUBLE_EQ(ToBits(MemoryRequirementGss(p, bs, 6, 10, 1)),
                   ToBits(MemoryRequirementRoundRobin(p, bs, 6, 10)));
}

TEST(MemoryModelTest, GssHandlesExactAndRemainderGroups) {
  const AllocParams p = PaperParams(ScheduleMethod::kGss, 8);
  const Bits bs = Megabits(20);
  // g | n and g ∤ n both produce positive, finite, ordered values.
  const double m16 = ToBits(MemoryRequirementGss(p, bs, 16, 20, 8));
  const double m17 = ToBits(MemoryRequirementGss(p, bs, 17, 21, 8));
  const double m24 = ToBits(MemoryRequirementGss(p, bs, 24, 28, 8));
  EXPECT_GT(m16, 0);
  EXPECT_GT(m17, m16 * 0.9);
  EXPECT_GT(m24, m17 * 0.9);
}

TEST(MemoryModelTest, DynamicRequirementIncreasesWithN) {
  for (ScheduleMethod m : {ScheduleMethod::kRoundRobin,
                           ScheduleMethod::kSweep, ScheduleMethod::kGss}) {
    const AllocParams p =
        PaperParams(m, m == ScheduleMethod::kGss ? 8 : 79);
    double prev = 0;
    for (int n = 1; n <= p.n_max; n += 6) {
      const double mem =
          ToBits(DynamicMemoryRequirement(p, m, n, 3, 8).value());
      EXPECT_GT(mem, prev * 0.999) << ScheduleMethodName(m) << " n=" << n;
      prev = mem;
    }
  }
}

TEST(MemoryModelTest, DynamicBelowStaticBelowFullLoad) {
  // Fig. 12's claim: the dynamic scheme needs (much) less memory than the
  // static scheme whenever n < N.
  for (ScheduleMethod m : {ScheduleMethod::kRoundRobin,
                           ScheduleMethod::kSweep, ScheduleMethod::kGss}) {
    const AllocParams p =
        PaperParams(m, m == ScheduleMethod::kGss ? 8 : 79);
    for (int n = 1; n < p.n_max; n += 9) {
      const double dyn = ToBits(DynamicMemoryRequirement(p, m, n, 3, 8).value());
      const double stat = ToBits(StaticMemoryRequirement(p, m, n, 8).value());
      EXPECT_LT(dyn, stat) << ScheduleMethodName(m) << " n=" << n;
    }
  }
}

TEST(MemoryModelTest, SchemesConvergeAtFullLoad) {
  for (ScheduleMethod m : {ScheduleMethod::kRoundRobin,
                           ScheduleMethod::kSweep, ScheduleMethod::kGss}) {
    const AllocParams p =
        PaperParams(m, m == ScheduleMethod::kGss ? 8 : 79);
    const double dyn =
        ToBits(DynamicMemoryRequirement(p, m, p.n_max, 0, 8).value());
    const double stat =
        ToBits(StaticMemoryRequirement(p, m, p.n_max, 8).value());
    EXPECT_NEAR(dyn / stat, 1.0, 1e-9) << ScheduleMethodName(m);
  }
}

TEST(MemoryModelTest, LowLoadGapIsLarge) {
  // At n = 1 the static scheme already reserves a share of the huge BS(N)
  // buffers; the dynamic scheme's requirement is orders of magnitude less.
  const AllocParams p = PaperParams();
  const double dyn = ToBits(
      DynamicMemoryRequirement(p, ScheduleMethod::kRoundRobin, 1, 4, 8)
          .value());
  const double stat = ToBits(
      StaticMemoryRequirement(p, ScheduleMethod::kRoundRobin, 1, 8).value());
  EXPECT_GT(stat / dyn, 50.0);
}

TEST(MemoryModelTest, ValidatesArguments) {
  const AllocParams p = PaperParams();
  EXPECT_FALSE(
      DynamicMemoryRequirement(p, ScheduleMethod::kRoundRobin, 0, 0, 8).ok());
  EXPECT_FALSE(DynamicMemoryRequirement(p, ScheduleMethod::kRoundRobin,
                                        p.n_max + 1, 0, 8)
                   .ok());
  EXPECT_FALSE(
      DynamicMemoryRequirement(p, ScheduleMethod::kRoundRobin, 1, -1, 8).ok());
  EXPECT_FALSE(DynamicMemoryRequirement(p, ScheduleMethod::kGss, 1, 0, 0).ok());
  EXPECT_FALSE(StaticMemoryRequirement(p, ScheduleMethod::kGss, 1, 0).ok());
}

TEST(MemoryModelTest, MemoryAtLeastSumOfLiveBuffers) {
  // Lower bound sanity: the requirement covers at least one buffer for the
  // (n−1) filled streams (the Sweep bound) or ~half the ring (RR).
  const AllocParams p = PaperParams();
  const Bits bs = DynamicBufferSize(p, 20, 3).value();
  EXPECT_GE(ToBits(MemoryRequirementRoundRobin(p, bs, 20, 23)),
            ToBits(10 * bs));
  EXPECT_GE(ToBits(MemoryRequirementSweep(p, bs, 20, 23)), ToBits(19 * bs));
}

}  // namespace
}  // namespace vod::core
