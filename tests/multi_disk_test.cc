#include "sim/multi_disk.h"

#include <memory>

#include <gtest/gtest.h>

#include "common/units.h"
#include "fault/fault_spec.h"
#include "fault/injector.h"
#include "sim/workload.h"

namespace vod::sim {
namespace {

// --- AnalyticMemoryBroker ---

core::AllocParams SmallParams() {
  auto p = core::MakeAllocParams(disk::SmallTestDisk(), Mbps(1.5),
                                 core::ScheduleMethod::kRoundRobin, 0, 1);
  EXPECT_TRUE(p.ok());
  return p.value();
}

TEST(AnalyticMemoryBrokerTest, PricesWithMemoryModel) {
  const core::AllocParams p = SmallParams();
  AnalyticMemoryBroker broker(p, core::ScheduleMethod::kRoundRobin,
                              /*use_dynamic=*/true, 8, /*disk_count=*/2,
                              Gibibytes(1));
  EXPECT_DOUBLE_EQ(ToBits(broker.PriceDisk(0, 0)), 0.0);
  const Bits price =
      core::DynamicMemoryRequirement(p, core::ScheduleMethod::kRoundRobin, 5,
                                     2, 8)
          .value();
  EXPECT_DOUBLE_EQ(ToBits(broker.PriceDisk(5, 2)), ToBits(price));
}

TEST(AnalyticMemoryBrokerTest, AdmitsWithinBudgetOnly) {
  const core::AllocParams p = SmallParams();
  // Budget = exactly the cost of 3 requests on disk 0.
  const Bits budget = core::DynamicMemoryRequirement(
                          p, core::ScheduleMethod::kRoundRobin, 3, 1, 8)
                          .value();
  AnalyticMemoryBroker broker(p, core::ScheduleMethod::kRoundRobin, true, 8,
                              2, budget);
  EXPECT_TRUE(broker.CanAdmit(0, 3, 1));
  EXPECT_FALSE(broker.CanAdmit(0, 4, 1));
  broker.OnState(0, 3, 1);
  EXPECT_DOUBLE_EQ(ToBits(broker.ReservedMemory()), ToBits(budget));
  // The other disk has no room left.
  EXPECT_FALSE(broker.CanAdmit(1, 1, 1));
}

TEST(AnalyticMemoryBrokerTest, RefusesBeyondDiskCapacity) {
  const core::AllocParams p = SmallParams();
  AnalyticMemoryBroker broker(p, core::ScheduleMethod::kRoundRobin, true, 8,
                              1, Gibibytes(100));
  EXPECT_FALSE(broker.CanAdmit(0, p.n_max + 1, 0));
}

TEST(UnlimitedMemoryBrokerTest, AlwaysAdmits) {
  UnlimitedMemoryBroker broker;
  EXPECT_TRUE(broker.CanAdmit(0, 1000, 50));
  broker.OnState(0, 10, 3);
  EXPECT_DOUBLE_EQ(ToBits(broker.ReservedMemory()), 0.0);
}

// --- MultiDiskSimulator ---

TEST(MultiDiskTest, RunsToCompletionAcrossDisks) {
  SimConfig base;
  base.method = core::ScheduleMethod::kRoundRobin;
  base.scheme = AllocScheme::kDynamic;
  base.t_log = Minutes(40);
  auto md = MultiDiskSimulator::Create(base, /*disk_count=*/3,
                                       Gibibytes(4));
  ASSERT_TRUE(md.ok()) << md.status().ToString();

  WorkloadConfig w;
  w.duration = Hours(1);
  w.total_expected_arrivals = 60;
  w.disk_count = 3;
  w.disk_theta = 0.5;
  w.seed = 4;
  auto arr = GenerateWorkload(w);
  ASSERT_TRUE(arr.ok());
  ASSERT_TRUE((*md)->AddArrivals(*arr).ok());
  (*md)->RunToCompletion();
  (*md)->Finalize();

  EXPECT_EQ((*md)->TotalArrivals(), static_cast<long>(arr->size()));
  EXPECT_EQ((*md)->TotalAdmitted() + (*md)->TotalRejected(),
            (*md)->TotalArrivals());
  EXPECT_GT((*md)->TotalAdmitted(), 0);
  for (int d = 0; d < 3; ++d) {
    EXPECT_EQ((*md)->sim(d).active_count(), 0);
  }
}

TEST(MultiDiskTest, TightMemoryForcesRejections) {
  SimConfig base;
  base.method = core::ScheduleMethod::kRoundRobin;
  base.scheme = AllocScheme::kStatic;  // Static is hungriest.
  auto md_small = MultiDiskSimulator::Create(base, 2, Mebibytes(80));
  auto md_large = MultiDiskSimulator::Create(base, 2, Gibibytes(8));
  ASSERT_TRUE(md_small.ok());
  ASSERT_TRUE(md_large.ok());

  WorkloadConfig w;
  w.duration = Hours(1);
  w.total_expected_arrivals = 80;
  w.disk_count = 2;
  w.seed = 6;
  auto arr = GenerateWorkload(w);
  ASSERT_TRUE(arr.ok());
  for (auto* md : {&md_small, &md_large}) {
    ASSERT_TRUE((**md)->AddArrivals(*arr).ok());
    (**md)->RunToCompletion();
  }
  EXPECT_GT((*md_small)->TotalRejected(), (*md_large)->TotalRejected());
  EXPECT_LT((*md_small)->PeakConcurrency(), (*md_large)->PeakConcurrency());
}

TEST(MultiDiskTest, DynamicSchemeFitsMoreInSameMemory) {
  // The Table 5 effect at a miniature scale: with a constrained shared
  // memory, the dynamic scheme admits more concurrent viewers.
  WorkloadConfig w;
  w.duration = Hours(1);
  w.total_expected_arrivals = 120;
  w.disk_count = 2;
  w.disk_theta = 0.5;
  w.seed = 8;
  auto arr = GenerateWorkload(w);
  ASSERT_TRUE(arr.ok());

  int peak[2] = {0, 0};
  for (AllocScheme scheme : {AllocScheme::kStatic, AllocScheme::kDynamic}) {
    SimConfig base;
    base.method = core::ScheduleMethod::kRoundRobin;
    base.scheme = scheme;
    auto md = MultiDiskSimulator::Create(base, 2, Gibibytes(0.5));
    ASSERT_TRUE(md.ok());
    ASSERT_TRUE((*md)->AddArrivals(*arr).ok());
    (*md)->RunToCompletion();
    peak[scheme == AllocScheme::kDynamic ? 1 : 0] = (*md)->PeakConcurrency();
  }
  EXPECT_GT(peak[1], peak[0]);
}

/// A whole-disk outage window must not stall the healthy disks. With a
/// non-binding shared budget the healthy disks run *exactly* as in a
/// fault-free day — the outage clause is deterministic (consumes no
/// injector randomness) and matches only disk 1 — while the dark disk
/// degrades during the window and still drains once it closes.
TEST(MultiDiskTest, DiskOutageDoesNotStallHealthyDisks) {
  auto run = [](fault::Injector* injector) {
    SimConfig base;
    base.method = core::ScheduleMethod::kRoundRobin;
    base.scheme = AllocScheme::kDynamic;
    base.t_log = Minutes(40);
    base.injector = injector;
    // Budget far above demand so the broker never couples the disks.
    auto md = MultiDiskSimulator::Create(base, /*disk_count=*/3,
                                         Gibibytes(100));
    EXPECT_TRUE(md.ok()) << md.status().ToString();

    WorkloadConfig w;
    w.duration = Hours(1);
    w.total_expected_arrivals = 60;
    w.disk_count = 3;
    w.disk_theta = 0.5;
    w.seed = 4;
    auto arr = GenerateWorkload(w);
    EXPECT_TRUE(arr.ok());
    EXPECT_TRUE((*md)->AddArrivals(*arr).ok());
    (*md)->RunToCompletion();
    (*md)->Finalize();
    return std::move(md.value());
  };

  auto spec = fault::ParseFaultSpec("outage:start=600,end=1500,disk=1");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  fault::Injector injector(spec.value(), /*seed=*/5);
  const auto faulted = run(&injector);
  const auto clean = run(nullptr);

  for (int d : {0, 2}) {
    const SimMetrics& f = faulted->sim(d).metrics();
    const SimMetrics& c = clean->sim(d).metrics();
    EXPECT_EQ(f.admitted, c.admitted) << "disk " << d;
    EXPECT_EQ(f.completed, c.completed) << "disk " << d;
    EXPECT_EQ(f.services, c.services) << "disk " << d;
    EXPECT_EQ(f.starvation_events, c.starvation_events) << "disk " << d;
    EXPECT_EQ(f.read_faults, 0) << "disk " << d;
    // Bit-identical, not approximately equal.
    EXPECT_EQ(f.disk_busy_time, c.disk_busy_time) << "disk " << d;
    EXPECT_EQ(f.initial_latency.mean(), c.initial_latency.mean())
        << "disk " << d;
  }

  // The dark disk felt the 15-minute outage...
  const SimMetrics& dark = faulted->sim(1).metrics();
  EXPECT_GT(dark.degraded_streams, 0);
  EXPECT_GE(dark.starvation_events, clean->sim(1).metrics().starvation_events);
  // ...but drained completely once the window closed.
  EXPECT_EQ(faulted->sim(1).active_count(), 0);
  EXPECT_EQ(dark.completed + dark.cancelled, dark.admitted);
}

TEST(MultiDiskTest, CreateValidates) {
  SimConfig base;
  EXPECT_FALSE(MultiDiskSimulator::Create(base, 0, Gibibytes(1)).ok());
  EXPECT_FALSE(MultiDiskSimulator::Create(base, 2, Bits(0)).ok());
}

}  // namespace
}  // namespace vod::sim
