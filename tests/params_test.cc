#include "core/params.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "disk/disk_profile.h"

namespace vod::core {
namespace {

TEST(ParamsTest, MaxConcurrentRequestsMatchesPaper) {
  // TR = 120 Mbps, CR = 1.5 Mbps → TR/CR = 80, N = 79 (strictly below).
  EXPECT_EQ(MaxConcurrentRequests(Mbps(120), Mbps(1.5)), 79);
}

TEST(ParamsTest, MaxConcurrentRequestsNonIntegralRatio) {
  EXPECT_EQ(MaxConcurrentRequests(Mbps(100), Mbps(1.5)), 66);  // 66.67 → 66.
}

TEST(ParamsTest, MaxConcurrentRequestsDegenerate) {
  EXPECT_EQ(MaxConcurrentRequests(BitsPerSecond(0), Mbps(1)), 0);
  EXPECT_EQ(MaxConcurrentRequests(Mbps(1), BitsPerSecond(0)), 0);
}

TEST(ParamsTest, ValidateAcceptsPaperConfig) {
  auto p = MakeAllocParams(disk::SeagateBarracuda9LP(), Mbps(1.5),
                           ScheduleMethod::kRoundRobin, 0, 1);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->n_max, 79);
  EXPECT_TRUE(p->Validate().ok());
}

TEST(ParamsTest, ValidateRejectsAlphaZero) {
  auto p = MakeAllocParams(disk::SeagateBarracuda9LP(), Mbps(1.5),
                           ScheduleMethod::kRoundRobin, 0, 0);
  EXPECT_FALSE(p.ok());
}

TEST(ParamsTest, ValidateRejectsBadRates) {
  AllocParams p;
  p.tr = Mbps(120);
  p.cr = BitsPerSecond(0);
  p.dl = Seconds(0.01);
  p.n_max = 79;
  EXPECT_FALSE(p.Validate().ok());
  p.cr = Mbps(1.5);
  p.n_max = 80;  // Violates Eq. (1): 80 * 1.5 = 120 = TR.
  EXPECT_FALSE(p.Validate().ok());
}

TEST(ParamsTest, WorstDiskLatencyRoundRobinIsFullStroke) {
  const auto prof = disk::SeagateBarracuda9LP();
  EXPECT_NEAR(ToSeconds(WorstDiskLatency(prof, ScheduleMethod::kRoundRobin, 0)),
              ToSeconds(Milliseconds(13.4 + 8.33)), 1e-9);
}

TEST(ParamsTest, WorstDiskLatencySweepShrinksWithN) {
  const auto prof = disk::SeagateBarracuda9LP();
  const Seconds dl1 = WorstDiskLatency(prof, ScheduleMethod::kSweep, 1);
  const Seconds dl79 = WorstDiskLatency(prof, ScheduleMethod::kSweep, 79);
  EXPECT_GT(ToSeconds(dl1), ToSeconds(dl79));
  // γ(6000/79) + θ = γ(75.9) + θ.
  EXPECT_NEAR(ToSeconds(dl79),
              ToSeconds(prof.seek.SeekTime(6000.0 / 79.0) +
                        prof.max_rotational_latency),
              1e-12);
}

TEST(ParamsTest, WorstDiskLatencyGssUsesGroupSize) {
  const auto prof = disk::SeagateBarracuda9LP();
  EXPECT_NEAR(ToSeconds(WorstDiskLatency(prof, ScheduleMethod::kGss, 8)),
              ToSeconds(prof.seek.SeekTime(750.0) +
                        prof.max_rotational_latency),
              1e-12);
}

TEST(ParamsTest, ScheduleMethodNames) {
  EXPECT_EQ(ScheduleMethodName(ScheduleMethod::kRoundRobin), "RoundRobin");
  EXPECT_EQ(ScheduleMethodName(ScheduleMethod::kSweep), "Sweep*");
  EXPECT_EQ(ScheduleMethodName(ScheduleMethod::kGss), "GSS*");
}

}  // namespace
}  // namespace vod::core
