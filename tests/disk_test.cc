#include <cmath>

#include <gtest/gtest.h>

#include "common/units.h"
#include "disk/disk_profile.h"
#include "disk/seek_model.h"
#include "disk/simulated_disk.h"
#include "disk/video_layout.h"

namespace vod::disk {
namespace {

// --- SeekModel ---

TEST(SeekModelTest, ZeroDistanceIsFree) {
  SeekModel m(Milliseconds(0.54), Milliseconds(0.26), Milliseconds(5.0),
              Milliseconds(0.0014), 400.0);
  EXPECT_DOUBLE_EQ(ToSeconds(m.SeekTime(0.0)), 0.0);
}

TEST(SeekModelTest, ShortSeekUsesSqrtBranch) {
  SeekModel m(Milliseconds(0.54), Milliseconds(0.26), Milliseconds(5.0),
              Milliseconds(0.0014), 400.0);
  EXPECT_NEAR(ToSeconds(m.SeekTime(100.0)),
              ToSeconds(Milliseconds(0.54 + 0.26 * 10.0)), 1e-12);
}

TEST(SeekModelTest, LongSeekUsesLinearBranch) {
  SeekModel m(Milliseconds(0.54), Milliseconds(0.26), Milliseconds(5.0),
              Milliseconds(0.0014), 400.0);
  EXPECT_NEAR(ToSeconds(m.SeekTime(6000.0)),
              ToSeconds(Milliseconds(5.0 + 0.0014 * 6000.0)), 1e-12);
}

TEST(SeekModelTest, PaperModelHits13point4msMaxSeek) {
  const DiskProfile p = SeagateBarracuda9LP();
  EXPECT_NEAR(ToSeconds(p.MaxSeekTime()), ToSeconds(Milliseconds(13.4)), 1e-9);
}

TEST(SeekModelTest, MonotoneWithinBranchesAndNearlyContinuous) {
  // The paper's published constants are *slightly* discontinuous at the
  // x = 400 boundary (5.74 ms vs 5.56 ms); each branch is monotone and the
  // jump stays within the 5% Validate() tolerance.
  const SeekModel m = SeagateBarracuda9LP().seek;
  double prev = 0.0;
  for (double x = 1; x <= 6000; x += 7) {
    const double t = ToSeconds(m.SeekTime(x));
    if (x < 400 || x - 7 >= 400) {
      EXPECT_GE(t, prev) << "at x=" << x;
    } else {
      EXPECT_GE(t, prev * 0.95) << "boundary crossing at x=" << x;
    }
    prev = t;
  }
}

TEST(SeekModelTest, ValidateRejectsNegativeCoefficients) {
  SeekModel bad(Seconds(-1e-3), Seconds(0), Seconds(0), Seconds(0), 400.0);
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(SeekModelTest, ValidateRejectsDownwardJump) {
  // Left limit at 400: 1 + 0.1*20 = 3 ms; right: 0.5 ms — a big drop.
  SeekModel bad(Milliseconds(1.0), Milliseconds(0.1), Milliseconds(0.5),
                Milliseconds(0.0), 400.0);
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(SeekModelTest, PaperProfilesValidate) {
  EXPECT_TRUE(SeagateBarracuda9LP().Validate().ok());
  EXPECT_TRUE(SmallTestDisk().Validate().ok());
}

// --- DiskProfile ---

TEST(DiskProfileTest, Barracuda9LPMatchesTable3) {
  const DiskProfile p = SeagateBarracuda9LP();
  EXPECT_DOUBLE_EQ(ToMbps(p.transfer_rate), 120.0);
  EXPECT_NEAR(ToSeconds(p.max_rotational_latency), ToSeconds(Milliseconds(8.33)),
              1e-12);
  EXPECT_NEAR(ToGibibytes(p.capacity), 9.19, 1e-9);
  EXPECT_EQ(p.cylinders, 6000);
}

TEST(DiskProfileTest, WorstLatencyIsSeekPlusRotation) {
  const DiskProfile p = SeagateBarracuda9LP();
  EXPECT_NEAR(ToSeconds(p.WorstLatency(6000.0)),
              ToSeconds(Milliseconds(13.4) + Milliseconds(8.33)), 1e-9);
  // Span beyond the disk clamps to the full stroke.
  EXPECT_DOUBLE_EQ(ToSeconds(p.WorstLatency(1e9)),
                   ToSeconds(p.WorstLatency(6000.0)));
}

TEST(DiskProfileTest, TransferTime) {
  const DiskProfile p = SeagateBarracuda9LP();
  EXPECT_DOUBLE_EQ(ToSeconds(p.TransferTime(Megabits(120))), 1.0);
}

TEST(DiskProfileTest, ValidateCatchesBadFields) {
  DiskProfile p = SeagateBarracuda9LP();
  p.capacity = Bits(0);
  EXPECT_FALSE(p.Validate().ok());
  p = SeagateBarracuda9LP();
  p.transfer_rate = BitsPerSecond(-1);
  EXPECT_FALSE(p.Validate().ok());
  p = SeagateBarracuda9LP();
  p.cylinders = 0;
  EXPECT_FALSE(p.Validate().ok());
}

// --- VideoLayout ---

TEST(VideoLayoutTest, PlacesVideosContiguously) {
  VideoLayout layout(SeagateBarracuda9LP());
  auto a = layout.AddVideo("a", Gigabits(10));
  auto b = layout.AddVideo("b", Gigabits(10));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(layout.Get(*a)->start_offset, Bits(0));
  EXPECT_DOUBLE_EQ(ToBits(layout.Get(*b)->start_offset), ToBits(Gigabits(10)));
}

TEST(VideoLayoutTest, RejectsWhenFull) {
  VideoLayout layout(SmallTestDisk());  // 1 GB = 8 Gbit.
  EXPECT_TRUE(layout.AddVideo("a", Gigabits(7)).ok());
  auto r = layout.AddVideo("b", Gigabits(2));
  EXPECT_EQ(r.status().code(), StatusCode::kCapacityExceeded);
}

TEST(VideoLayoutTest, RejectsNonPositiveSize) {
  VideoLayout layout(SmallTestDisk());
  EXPECT_EQ(layout.AddVideo("z", Bits(0)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(VideoLayoutTest, CylinderOfMapsOffsets) {
  const DiskProfile p = SeagateBarracuda9LP();
  VideoLayout layout(p);
  auto v = layout.AddVideo("a", p.capacity / 2);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(layout.CylinderOf(*v, Bits(0)).value(), 0.0);
  EXPECT_NEAR(layout.CylinderOf(*v, p.capacity / 2).value(), 3000.0, 1.0);
}

TEST(VideoLayoutTest, CylinderOfValidates) {
  VideoLayout layout(SeagateBarracuda9LP());
  auto v = layout.AddVideo("a", Gigabits(1));
  EXPECT_EQ(layout.CylinderOf(99, Bits(0)).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(layout.CylinderOf(*v, Gigabits(2)).status().code(),
            StatusCode::kOutOfRange);
}

TEST(VideoLayoutTest, FillWithVideosStopsAtCapacity) {
  VideoLayout layout(SmallTestDisk());  // 8 Gbit capacity.
  auto ids = layout.FillWithVideos(100, Gigabits(3));
  EXPECT_EQ(ids.size(), 2u);
  EXPECT_EQ(layout.video_count(), 2);
}

// --- SimulatedDisk ---

TEST(SimulatedDiskTest, ReadTimingBreakdown) {
  const DiskProfile p = SeagateBarracuda9LP();
  SimulatedDisk disk(p);
  auto t = disk.Read(1000.0, Megabits(12), 1.0);
  ASSERT_TRUE(t.ok());
  EXPECT_NEAR(ToSeconds(t->seek), ToSeconds(p.seek.SeekTime(1000.0)), 1e-12);
  EXPECT_NEAR(ToSeconds(t->rotation), ToSeconds(p.max_rotational_latency),
              1e-12);
  EXPECT_NEAR(ToSeconds(t->transfer),
              ToSeconds(Megabits(12) / p.transfer_rate), 1e-12);
  EXPECT_NEAR(ToSeconds(t->total()),
              ToSeconds(t->seek + t->rotation + t->transfer), 1e-12);
}

TEST(SimulatedDiskTest, HeadAdvancesWithRead) {
  const DiskProfile p = SeagateBarracuda9LP();
  SimulatedDisk disk(p);
  ASSERT_TRUE(disk.Read(100.0, p.BitsPerCylinder() * 5, 0.0).ok());
  EXPECT_NEAR(disk.head_cylinder(), 105.0, 1e-9);
  // Second read from the same place has a small seek now.
  auto t = disk.Read(105.0, Bits(0), 0.0);
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ(ToSeconds(t->seek), 0.0);
}

TEST(SimulatedDiskTest, RejectsBadArguments) {
  SimulatedDisk disk(SeagateBarracuda9LP());
  EXPECT_FALSE(disk.Read(-1.0, Bits(10), 0.5).ok());
  EXPECT_FALSE(disk.Read(1e9, Bits(10), 0.5).ok());
  EXPECT_FALSE(disk.Read(0.0, Bits(-10), 0.5).ok());
  EXPECT_FALSE(disk.Read(0.0, Bits(10), 2.0).ok());
}

TEST(SimulatedDiskTest, CountersAccumulate) {
  SimulatedDisk disk(SeagateBarracuda9LP());
  ASSERT_TRUE(disk.Read(100.0, Megabits(1), 0.5).ok());
  ASSERT_TRUE(disk.Read(200.0, Megabits(1), 0.5).ok());
  EXPECT_EQ(disk.read_count(), 2);
  EXPECT_GT(ToSeconds(disk.total_seek_time()), 0.0);
  EXPECT_GT(ToSeconds(disk.total_rotation_time()), 0.0);
  EXPECT_GT(ToSeconds(disk.total_transfer_time()), 0.0);
}

TEST(SimulatedDiskTest, WorstCaseReadTimeBoundsActual) {
  const DiskProfile p = SeagateBarracuda9LP();
  SimulatedDisk disk(p);
  const Seconds worst = disk.WorstCaseReadTime(6000.0, Megabits(10));
  auto t = disk.Read(5999.0, Megabits(10), 1.0);
  ASSERT_TRUE(t.ok());
  EXPECT_LE(ToSeconds(t->total()), ToSeconds(worst) + 1e-12);
}

}  // namespace
}  // namespace vod::disk
