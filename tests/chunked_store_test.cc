#include "disk/chunked_store.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace vod::disk {
namespace {

ChunkedVideoStore MakeStore(Bits max_buffer = Megabits(200),
                            Bits chunk = Bits(0)) {
  auto store = ChunkedVideoStore::Create(SeagateBarracuda9LP(), max_buffer,
                                         chunk);
  EXPECT_TRUE(store.ok());
  return std::move(store.value());
}

TEST(ChunkedStoreTest, DefaultChunkIsTwiceTheBuffer) {
  ChunkedVideoStore store = MakeStore(Megabits(200));
  EXPECT_DOUBLE_EQ(ToMegabits(store.chunk_size()), 400.0);
  EXPECT_DOUBLE_EQ(ToMegabits(store.stride()), 200.0);
  EXPECT_DOUBLE_EQ(store.SpaceOverhead(), 2.0);
}

TEST(ChunkedStoreTest, LargerChunksReduceOverhead) {
  ChunkedVideoStore store = MakeStore(Megabits(200), Megabits(1000));
  EXPECT_NEAR(store.SpaceOverhead(), 1.25, 1e-12);
}

TEST(ChunkedStoreTest, RejectsUndersizedChunk) {
  EXPECT_FALSE(ChunkedVideoStore::Create(SeagateBarracuda9LP(),
                                         Megabits(200), Megabits(300))
                   .ok());
}

TEST(ChunkedStoreTest, EveryBufferReadFitsOneChunk) {
  // The whole point of the chunk layout (footnote 3): a read of up to the
  // maximum buffer never spans chunks, wherever it starts.
  ChunkedVideoStore store = MakeStore(Megabits(200));
  auto v = store.AddVideo("movie", Gigabits(10));
  ASSERT_TRUE(v.ok());
  for (double off = 0; off <= 10e9 - 200e6; off += 37e6) {
    EXPECT_TRUE(store.SingleChunk(Bits(off), Megabits(200))) << "offset " << off;
    EXPECT_TRUE(store.ReadLocation(*v, Bits(off), Megabits(200)).ok())
        << "offset " << off;
  }
}

TEST(ChunkedStoreTest, OverlongReadRejected) {
  ChunkedVideoStore store = MakeStore(Megabits(200));
  auto v = store.AddVideo("movie", Gigabits(10));
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(store.ReadLocation(*v, Bits(0), Megabits(201)).ok());
  EXPECT_FALSE(store.SingleChunk(Bits(0), Megabits(400)));
}

TEST(ChunkedStoreTest, PhysicalSpaceReflectsReplication) {
  ChunkedVideoStore store = MakeStore(Megabits(200));
  // 1 Gbit of data, stride 200 Mbit → 5 chunks of 400 Mbit = 2 Gbit.
  auto v = store.AddVideo("movie", Gigabits(1));
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(ToBits(store.physical_used()), ToBits(Gigabits(2)));
}

TEST(ChunkedStoreTest, CapacityEnforced) {
  ChunkedVideoStore store = MakeStore(Megabits(200));
  // 9.19 GB disk ≈ 73.9 Gbit physical; with 2x overhead ≈ 36.9 Gbit logical.
  auto a = store.AddVideo("a", Gigabits(30));
  ASSERT_TRUE(a.ok());
  auto b = store.AddVideo("b", Gigabits(30));
  EXPECT_EQ(b.status().code(), StatusCode::kCapacityExceeded);
}

TEST(ChunkedStoreTest, ReadLocationValidates) {
  ChunkedVideoStore store = MakeStore(Megabits(200));
  auto v = store.AddVideo("movie", Gigabits(1));
  ASSERT_TRUE(v.ok());
  EXPECT_FALSE(store.ReadLocation(99, Bits(0), Megabits(1)).ok());
  EXPECT_FALSE(store.ReadLocation(*v, Gigabits(2), Megabits(1)).ok());
}

TEST(ChunkedStoreTest, LocationsAdvanceMonotonically) {
  ChunkedVideoStore store = MakeStore(Megabits(200));
  auto v = store.AddVideo("movie", Gigabits(4));
  ASSERT_TRUE(v.ok());
  double prev = -1;
  for (double off = 0; off < 3.8e9; off += 100e6) {
    auto cyl = store.ReadLocation(*v, Bits(off), Megabits(100));
    ASSERT_TRUE(cyl.ok());
    EXPECT_GT(*cyl, prev);
    prev = *cyl;
  }
}

}  // namespace
}  // namespace vod::disk
