// Chaos suite: scripted fault schedules through the full simulator, with
// golden degraded-metrics rows pinning how the system bends (not breaks)
// under each fault class, plus the properties that make fault injection
// trustworthy:
//
//   * observer effect: a zero-fault injector ("none") leaves every metric of
//     the golden-metrics baseline scenario bit-identical — attaching the
//     fault machinery without faults changes nothing;
//   * under any scripted fault schedule the run audits clean (the runtime
//     invariant auditor stays silent), buffer accounting conserves
//     (allocated == released at drain), and the broker ends empty;
//   * after the fault window closes the simulator converges back to
//     fault-free steady state: every admitted stream completes and a window
//     that closes before any disk activity leaves zero residue.
//
// Regenerating the golden rows after an *intentional* behaviour change:
//   VODB_GOLDEN_DUMP=1 ./build/tests/chaos_test
// prints a replacement kChaosGolden table; paste it below and justify the
// change in the commit message.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/units.h"
#include "core/params.h"
#include "exp/day_run.h"
#include "fault/fault_spec.h"
#include "fault/injector.h"
#include "sim/invariant_auditor.h"
#include "sim/memory_broker.h"
#include "sim/metrics.h"
#include "sim/vod_simulator.h"
#include "sim/workload.h"

namespace vod::exp {
namespace {

/// Collects violations instead of aborting.
class Recorder {
 public:
  sim::InvariantAuditor::Handler handler() {
    return [this](const sim::InvariantViolation& v) {
      violations_.push_back(v);
    };
  }
  const std::vector<sim::InvariantViolation>& violations() const {
    return violations_;
  }

 private:
  std::vector<sim::InvariantViolation> violations_;
};

// ---------------------------------------------------------------------------
// Golden degraded metrics
// ---------------------------------------------------------------------------

// The chaos day: a 3 h Fig. 11-style scenario (θ = 0.5, Sweep*, paper
// T_log, α = 1, seed 1, ~100 arrivals) with a one-hour fault window
// [1800 s, 5400 s) opening half an hour in — long enough that streams are
// admitted before, during, and after the window.
struct ChaosScenario {
  const char* name;
  const char* faults;
  Bits memory_capacity;  ///< 0 = unlimited (no broker).
};

const ChaosScenario kScenarios[] = {
    {"latency", "latency:start=1800,end=5400,factor=4,extra=0.01", Bits(0)},
    {"eio", "eio:start=1800,end=5400,p=0.3,retries=3,backoff=0.05", Bits(0)},
    {"memsqueeze", "memsqueeze:start=1800,end=5400,scale=0.1",
     Mebibytes(150)},
};

struct ChaosRow {
  const char* scenario;
  sim::AllocScheme scheme;
  long admitted;         ///< Exact (fixed seed + fixed fault seed).
  long read_faults;      ///< Exact.
  long read_retries;     ///< Exact.
  long hiccups;          ///< Exact.
  long degraded_streams; ///< Exact.
  long delayed_reads;    ///< Exact.
  double avg_latency_s;  ///< initial_latency.mean(), ±2 % relative.
  double peak_memory_mb; ///< memory_usage peak, ±2 % relative.
};

// Golden values measured at the fixed seeds of this suite (deterministic;
// bands on the float columns absorb libm/platform noise only).
constexpr ChaosRow kChaosGolden[] = {
    {"latency", sim::AllocScheme::kStatic,
     96, 0, 0, 0, 43, 870, 68.699762, 820.293414},
    {"latency", sim::AllocScheme::kDynamic,
     96, 0, 0, 0, 55, 35798, 9.688661, 405.716814},
    {"eio", sim::AllocScheme::kStatic,
     96, 492, 481, 11, 48, 0, 46.041906, 799.100683},
    {"eio", sim::AllocScheme::kDynamic,
     96, 26026, 25547, 479, 57, 0, 3.640078, 295.437971},
    {"memsqueeze", sim::AllocScheme::kStatic,
     33, 0, 0, 0, 1, 0, 39.326113, 310.716979},
    {"memsqueeze", sim::AllocScheme::kDynamic,
     87, 0, 0, 0, 9, 0, 1.923912, 133.637158},
};

const ChaosScenario& ScenarioByName(const char* name) {
  for (const ChaosScenario& s : kScenarios) {
    if (std::string(s.name) == name) return s;
  }
  ADD_FAILURE() << "unknown scenario " << name;
  return kScenarios[0];
}

DayRunConfig ChaosConfig(const ChaosScenario& s, sim::AllocScheme scheme) {
  DayRunConfig cfg;
  cfg.method = core::ScheduleMethod::kSweep;
  cfg.scheme = scheme;
  cfg.t_log = PaperTLog(cfg.method);
  cfg.alpha = 1;
  cfg.theta = 0.5;
  cfg.duration = Hours(3);
  cfg.total_arrivals = 100;
  cfg.seed = 1;
  cfg.faults = s.faults;
  cfg.fault_seed = 7;  // Pinned, not derived: rows replay exactly.
  cfg.memory_capacity = s.memory_capacity;
  return cfg;
}

TEST(ChaosGoldenTest, ScriptedFaultSchedulesMatchGoldenDegradedMetrics) {
  const bool dump = std::getenv("VODB_GOLDEN_DUMP") != nullptr;
  for (const ChaosRow& golden : kChaosGolden) {
    const ChaosScenario& scenario = ScenarioByName(golden.scenario);
    const DayRunConfig cfg = ChaosConfig(scenario, golden.scheme);
    const sim::SimMetrics m = RunDay(cfg);
    const double peak_mb = ToMebibytes(Bits(m.memory_usage.max_value()));
    if (dump) {
      std::printf("    {\"%s\", sim::AllocScheme::k%s,\n"
                  "     %ld, %ld, %ld, %ld, %ld, %ld, %.6f, %.6f},\n",
                  golden.scenario,
                  golden.scheme == sim::AllocScheme::kStatic ? "Static"
                                                             : "Dynamic",
                  m.admitted, m.read_faults, m.read_retries, m.hiccup_events,
                  m.degraded_streams, m.delayed_reads,
                  m.initial_latency.mean(), peak_mb);
      continue;
    }
    SCOPED_TRACE(std::string(golden.scenario) + "/" +
                 std::string(sim::AllocSchemeName(golden.scheme)));
    EXPECT_EQ(m.admitted, golden.admitted);
    EXPECT_EQ(m.read_faults, golden.read_faults);
    EXPECT_EQ(m.read_retries, golden.read_retries);
    EXPECT_EQ(m.hiccup_events, golden.hiccups);
    EXPECT_EQ(m.degraded_streams, golden.degraded_streams);
    EXPECT_EQ(m.delayed_reads, golden.delayed_reads);
    EXPECT_NEAR(m.initial_latency.mean(), golden.avg_latency_s,
                0.02 * golden.avg_latency_s);
    EXPECT_NEAR(peak_mb, golden.peak_memory_mb, 0.02 * golden.peak_memory_mb);
    // Structural expectations per fault class (non-vacuity).
    const std::string name = golden.scenario;
    if (name == "latency") {
      EXPECT_GT(m.delayed_reads, 0);
      EXPECT_EQ(m.read_faults, 0);
    } else if (name == "eio") {
      EXPECT_GT(m.read_faults, 0);
      EXPECT_GT(m.read_retries, 0);
      EXPECT_EQ(m.delayed_reads, 0);
    } else if (name == "memsqueeze") {
      EXPECT_GT(m.rejected_memory, 0);
      EXPECT_EQ(m.read_faults, 0);
    }
    // Degradation never corrupts the books: whatever the fault did, the
    // rejection breakdown still sums and the run drained.
    EXPECT_EQ(m.rejected,
              m.rejected_capacity + m.rejected_memory + m.rejected_invalid);
    // The two ledger sides sum the same deliveries in different orders, so
    // only fp association noise separates them.
    EXPECT_NEAR(ToBits(m.buffer_bits_allocated), ToBits(m.buffer_bits_released),
                1e-9 * std::max(ToBits(m.buffer_bits_allocated), 1.0));
  }
}

// ---------------------------------------------------------------------------
// Observer effect: zero faults == no injector, bit for bit
// ---------------------------------------------------------------------------

/// The golden-metrics baseline scenario (tests/golden_metrics_test.cc) run
/// with faults="none" — which constructs a real fault::Injector with an
/// empty schedule and threads it through the whole stack — must be
/// bit-identical to the plain run the golden suite pins. Exact equality on
/// every float: any drift means the fault machinery perturbs fault-free
/// behaviour, which would silently invalidate every pre-fault baseline.
TEST(ChaosGoldenTest, ZeroFaultInjectorIsBitIdenticalToBaseline) {
  const core::ScheduleMethod methods[] = {core::ScheduleMethod::kRoundRobin,
                                          core::ScheduleMethod::kSweep,
                                          core::ScheduleMethod::kGss};
  const sim::AllocScheme schemes[] = {sim::AllocScheme::kStatic,
                                      sim::AllocScheme::kDynamic};
  for (const core::ScheduleMethod method : methods) {
    for (const sim::AllocScheme scheme : schemes) {
      SCOPED_TRACE(std::string(core::ScheduleMethodName(method)) + "/" +
                   std::string(sim::AllocSchemeName(scheme)));
      // Mirrors GoldenConfig in golden_metrics_test.cc.
      DayRunConfig cfg;
      cfg.method = method;
      cfg.scheme = scheme;
      cfg.t_log = PaperTLog(method);
      cfg.alpha = 1;
      cfg.theta = 0.5;
      cfg.duration = Hours(4);
      cfg.total_arrivals = 120;
      cfg.seed = 1;
      const sim::SimMetrics plain = RunDay(cfg);

      DayRunConfig with_injector = cfg;
      with_injector.faults = "none";
      with_injector.fault_seed = 123;  // Must be irrelevant: nothing fires.
      const sim::SimMetrics injected = RunDay(with_injector);

      EXPECT_EQ(plain.arrivals, injected.arrivals);
      EXPECT_EQ(plain.admitted, injected.admitted);
      EXPECT_EQ(plain.rejected, injected.rejected);
      EXPECT_EQ(plain.completed, injected.completed);
      EXPECT_EQ(plain.services, injected.services);
      EXPECT_EQ(plain.starvation_events, injected.starvation_events);
      EXPECT_EQ(plain.deferred_admissions, injected.deferred_admissions);
      EXPECT_EQ(plain.initial_latency.mean(), injected.initial_latency.mean());
      EXPECT_EQ(plain.initial_latency.max(), injected.initial_latency.max());
      EXPECT_EQ(plain.memory_usage.max_value(),
                injected.memory_usage.max_value());
      EXPECT_EQ(plain.disk_busy_time, injected.disk_busy_time);
      EXPECT_EQ(plain.estimated_k.mean(), injected.estimated_k.mean());
      EXPECT_EQ(plain.buffer_bits_allocated, injected.buffer_bits_allocated);
      EXPECT_EQ(plain.buffer_bits_released, injected.buffer_bits_released);
      // And the injector path reported nothing.
      EXPECT_EQ(injected.read_faults, 0);
      EXPECT_EQ(injected.read_retries, 0);
      EXPECT_EQ(injected.hiccup_events, 0);
      EXPECT_EQ(injected.degraded_entries, 0);
      EXPECT_EQ(injected.degraded_streams, 0);
      EXPECT_EQ(injected.fault_recoveries, 0);
      EXPECT_EQ(injected.delayed_reads, 0);
    }
  }
}

/// A fault-heavy day run on the legacy binary-heap event queue must be
/// bit-identical to the same day on the default calendar queue: fault
/// injection exercises the event patterns the plain goldens do not (retry
/// wakeups, outage-resume wakeups, failed-read completions), and both
/// queue implementations claim the same strict (time, seq) pop order under
/// all of them.
TEST(ChaosGoldenTest, LegacyBinaryHeapQueueShardsChaosIdentically) {
  for (const char* scenario : {"latency", "eio", "memsqueeze"}) {
    SCOPED_TRACE(scenario);
    const DayRunConfig calendar_cfg =
        ChaosConfig(ScenarioByName(scenario), sim::AllocScheme::kDynamic);
    ASSERT_EQ(calendar_cfg.event_queue, sim::EventQueueKind::kCalendar);
    const sim::SimMetrics calendar = RunDay(calendar_cfg);

    DayRunConfig legacy_cfg = calendar_cfg;
    legacy_cfg.event_queue = sim::EventQueueKind::kBinaryHeap;
    const sim::SimMetrics legacy = RunDay(legacy_cfg);

    EXPECT_EQ(calendar.admitted, legacy.admitted);
    EXPECT_EQ(calendar.rejected, legacy.rejected);
    EXPECT_EQ(calendar.read_faults, legacy.read_faults);
    EXPECT_EQ(calendar.read_retries, legacy.read_retries);
    EXPECT_EQ(calendar.hiccup_events, legacy.hiccup_events);
    EXPECT_EQ(calendar.degraded_streams, legacy.degraded_streams);
    EXPECT_EQ(calendar.delayed_reads, legacy.delayed_reads);
    EXPECT_EQ(calendar.starvation_events, legacy.starvation_events);
    EXPECT_EQ(calendar.initial_latency.mean(), legacy.initial_latency.mean());
    EXPECT_EQ(calendar.initial_latency.max(), legacy.initial_latency.max());
    EXPECT_EQ(calendar.memory_usage.max_value(),
              legacy.memory_usage.max_value());
    EXPECT_EQ(calendar.disk_busy_time, legacy.disk_busy_time);
    EXPECT_EQ(calendar.buffer_bits_allocated, legacy.buffer_bits_allocated);
    EXPECT_EQ(calendar.buffer_bits_released, legacy.buffer_bits_released);
  }
}

// ---------------------------------------------------------------------------
// Chaos properties (direct simulator, auditor armed)
// ---------------------------------------------------------------------------

core::AllocParams ChaosParams(const sim::SimConfig& sc) {
  const int n_for_dl =
      sc.method == core::ScheduleMethod::kGss
          ? sc.gss_group_size
          : core::MaxConcurrentRequests(sc.profile.transfer_rate,
                                        sc.consumption_rate);
  auto params = core::MakeAllocParams(sc.profile, sc.consumption_rate,
                                      sc.method, n_for_dl, sc.alpha);
  VOD_CHECK(params.ok());
  return *params;
}

struct ChaosOutcome {
  sim::SimMetrics metrics;
  std::vector<sim::InvariantViolation> violations;
  int final_active = 0;
  Bits final_reserved;
  long audit_checks = 0;
};

/// Runs a 2 h, ~60-arrival day through a directly constructed simulator
/// with the auditor collecting (not aborting), an analytic broker, and the
/// given fault schedule.
ChaosOutcome RunChaosDay(const std::string& faults, std::uint64_t fault_seed,
                         core::ScheduleMethod method) {
  sim::SimConfig sc;
  sc.method = method;
  sc.scheme = sim::AllocScheme::kDynamic;
  sc.t_log = Minutes(20);
  sc.seed = 3;

  auto spec = fault::ParseFaultSpec(faults);
  VOD_CHECK(spec.ok());
  fault::Injector injector(spec.value(), fault_seed);
  sc.injector = &injector;

  sim::AnalyticMemoryBroker broker(
      ChaosParams(sc), sc.method, /*use_dynamic=*/true, sc.gss_group_size,
      /*disk_count=*/1, Mebibytes(400));
  broker.AttachInjector(&injector);

  auto simulator = sim::VodSimulator::Create(sc, &broker);
  VOD_CHECK(simulator.ok());
  Recorder rec;
  (*simulator)->auditor().set_handler(rec.handler());

  sim::WorkloadConfig w;
  w.duration = Hours(2);
  w.total_expected_arrivals = 60;
  w.theta = 0.5;
  w.peak_time = Hours(2) * 9.0 / 24.0;
  w.seed = 9;
  auto arrivals = sim::GenerateWorkload(w);
  VOD_CHECK(arrivals.ok());
  sim::ApplyFaultBursts(injector, &arrivals.value());

  VOD_CHECK((*simulator)->AddArrivals(*arrivals).ok());
  (*simulator)->RunToCompletion();
  (*simulator)->Finalize();

  ChaosOutcome out;
  out.metrics = (*simulator)->metrics();
  out.violations = rec.violations();
  out.final_active = (*simulator)->active_count();
  out.final_reserved = broker.ReservedMemory();
  out.audit_checks = (*simulator)->auditor().checks();
  return out;
}

/// Under any of the scripted fault schedules — including a compound storm
/// of EIO + latency + a flash crowd + a squeeze — the simulator never
/// corrupts its accounting: the invariant auditor stays silent, the buffer
/// ledger conserves (every bit allocated is released), the broker drains to
/// zero, and every admitted stream eventually completes (convergence back
/// to steady state after the windows close).
TEST(ChaosPropertyTest, FaultSchedulesNeverCorruptAccounting) {
  const char* schedules[] = {
      "latency:start=600,end=2400,factor=5,extra=0.02",
      "eio:start=600,end=2400,p=0.4,retries=3,backoff=0.05",
      "memsqueeze:start=600,end=2400,scale=0.25",
      "outage:start=900,end=1200",
      // Compound storm: everything at once, overlapping windows.
      "eio:start=600,end=2400,p=0.3,retries=2,backoff=0.1;"
      "latency:start=1200,end=3000,factor=3;"
      "memsqueeze:start=900,end=2700,scale=0.5;"
      "burst:at=700,count=12,video=1,spread=120,viewing=900",
  };
  for (const char* faults : schedules) {
    for (const core::ScheduleMethod method :
         {core::ScheduleMethod::kRoundRobin, core::ScheduleMethod::kSweep,
          core::ScheduleMethod::kGss}) {
      SCOPED_TRACE(std::string(faults) + " / " +
                   std::string(core::ScheduleMethodName(method)));
      const ChaosOutcome out = RunChaosDay(faults, 11, method);
      for (const sim::InvariantViolation& v : out.violations) {
        ADD_FAILURE() << "invariant " << v.invariant << " at t=" << v.time.value()
                      << ": " << v.detail;
      }
      EXPECT_GT(out.audit_checks, 0);
      // Convergence: the run drained — no stream is stuck behind a closed
      // fault window.
      EXPECT_EQ(out.final_active, 0);
      EXPECT_EQ(ToBits(out.final_reserved), 0.0);
      EXPECT_EQ(out.metrics.completed + out.metrics.cancelled,
                out.metrics.admitted);
      // Conservation: use-it-and-toss-it still holds under degradation
      // (relative tolerance: the sides sum deliveries in different orders).
      EXPECT_NEAR(ToBits(out.metrics.buffer_bits_allocated),
                  ToBits(out.metrics.buffer_bits_released),
                  1e-9 * std::max(ToBits(out.metrics.buffer_bits_allocated), 1.0));
    }
  }
}

/// Determinism/replay: the same (schedule, fault seed) reproduces the chaos
/// run exactly; a different fault seed perturbs it (for probabilistic
/// schedules) while leaving the books clean either way.
TEST(ChaosPropertyTest, ChaosRunsReplayFromFaultSeed) {
  const char* faults = "eio:start=600,end=2400,p=0.4,retries=3,backoff=0.05";
  const ChaosOutcome a = RunChaosDay(faults, 11, core::ScheduleMethod::kGss);
  const ChaosOutcome b = RunChaosDay(faults, 11, core::ScheduleMethod::kGss);
  EXPECT_EQ(a.metrics.read_faults, b.metrics.read_faults);
  EXPECT_EQ(a.metrics.hiccup_events, b.metrics.hiccup_events);
  EXPECT_EQ(a.metrics.services, b.metrics.services);
  EXPECT_EQ(a.metrics.initial_latency.mean(),
            b.metrics.initial_latency.mean());
  EXPECT_EQ(a.metrics.buffer_bits_allocated, b.metrics.buffer_bits_allocated);

  const ChaosOutcome c = RunChaosDay(faults, 12, core::ScheduleMethod::kGss);
  EXPECT_NE(a.metrics.read_faults, c.metrics.read_faults);
  EXPECT_TRUE(c.violations.empty());
}

/// A fault window that opens and closes before any disk activity leaves
/// zero residue: behavioural metrics are identical to the fault-free run.
/// (The arrivals below start at t = 50 s; the windows close at t = 40 s.)
TEST(ChaosPropertyTest, ClosedFaultWindowLeavesNoResidue) {
  auto run = [](const char* faults) {
    sim::SimConfig sc;
    sc.method = core::ScheduleMethod::kGss;
    sc.scheme = sim::AllocScheme::kDynamic;
    sc.t_log = Minutes(20);
    sc.seed = 5;
    auto spec = fault::ParseFaultSpec(faults);
    VOD_CHECK(spec.ok());
    fault::Injector injector(spec.value(), 77);
    sc.injector = &injector;
    auto simulator = sim::VodSimulator::Create(sc, nullptr);
    VOD_CHECK(simulator.ok());
    std::vector<sim::ArrivalEvent> arrivals;
    for (int i = 0; i < 20; ++i) {
      sim::ArrivalEvent ev;
      ev.time = Seconds(50.0 + 30.0 * i);
      ev.video = i % 4;
      ev.viewing_time = Seconds(600.0);
      arrivals.push_back(ev);
    }
    VOD_CHECK((*simulator)->AddArrivals(arrivals).ok());
    (*simulator)->RunToCompletion();
    (*simulator)->Finalize();
    return (*simulator)->metrics();
  };

  const sim::SimMetrics faulted = run(
      "eio:start=0,end=40,p=0.5;latency:start=10,end=40,factor=8;"
      "outage:start=0,end=30");
  const sim::SimMetrics clean = run("none");
  EXPECT_EQ(faulted.read_faults, 0);
  EXPECT_EQ(faulted.admitted, clean.admitted);
  EXPECT_EQ(faulted.services, clean.services);
  EXPECT_EQ(faulted.starvation_events, clean.starvation_events);
  EXPECT_EQ(faulted.initial_latency.mean(), clean.initial_latency.mean());
  EXPECT_EQ(faulted.memory_usage.max_value(), clean.memory_usage.max_value());
  EXPECT_EQ(faulted.disk_busy_time, clean.disk_busy_time);
}

/// Streams degraded inside the window recover after it closes: recoveries
/// are observed, and at drain nothing is still degraded (metrics count
/// entries vs. recoveries; a stream may also depart while degraded, so
/// recoveries never exceed entries).
TEST(ChaosPropertyTest, StreamsRecoverAfterTheWindowCloses) {
  const ChaosOutcome out =
      RunChaosDay("eio:start=600,end=1800,p=0.6,retries=2,backoff=0.05", 21,
                  core::ScheduleMethod::kSweep);
  EXPECT_GT(out.metrics.read_faults, 0);
  EXPECT_GT(out.metrics.fault_recoveries, 0);
  EXPECT_LE(out.metrics.fault_recoveries, out.metrics.degraded_entries);
  EXPECT_EQ(out.final_active, 0);
  EXPECT_TRUE(out.violations.empty());
}

}  // namespace
}  // namespace vod::exp
