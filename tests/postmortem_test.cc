// Postmortem black-box suite (obs/postmortem.h): explicit captures write
// schema-valid JSON with the ring tail, config, and registry snapshots;
// repeat captures get distinct filenames; the degradation threshold fires
// once; the simulator wiring turns a forced invariant violation and a
// fault-layer hiccup into dumps without perturbing the run (pure-observer
// checks ride along in golden_metrics_test.cc and chaos paths here).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_kit/json.h"
#include "common/check.h"
#include "common/units.h"
#include "exp/day_run.h"
#include "obs/event_tracer.h"
#include "obs/postmortem.h"
#include "sim/invariant_auditor.h"
#include "sim/metrics.h"
#include "sim/vod_simulator.h"

namespace vod::obs {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Fresh per-test dump directory under gtest's temp root.
std::string DumpDir(const char* name) {
  const std::string dir = ::testing::TempDir() + "vodb_postmortem_" + name;
  std::remove(dir.c_str());
  // Capture writes flat files; the directory itself must exist.
  const std::string cmd = "mkdir -p '" + dir + "'";
  EXPECT_EQ(std::system(cmd.c_str()), 0);
  return dir;
}

TraceEvent Ev(TraceEventKind kind, Seconds time, RequestId request) {
  TraceEvent ev;
  ev.kind = kind;
  ev.time = time;
  ev.request = request;
  return ev;
}

// ---------------------------------------------------------------------------
// Explicit capture
// ---------------------------------------------------------------------------

TEST(PostmortemSinkTest, ExplicitCaptureWritesSchemaValidJson) {
  PostmortemSink::Options opt;
  opt.dir = DumpDir("explicit");
  opt.run_label = "rr/t40 a1";  // Slash + space must be sanitized away.
  PostmortemSink sink(opt);

  EventTracer tracer;
  tracer.Emit(Ev(TraceEventKind::kAdmit, Seconds(1.0), 7));
  tracer.Emit(Ev(TraceEventKind::kServiceStart, Seconds(2.0), 7));
  sink.set_tracer(&tracer);

  bench_kit::JsonValue cfg = bench_kit::JsonValue::Object();
  cfg.Set("seed", bench_kit::JsonValue::Number(42));
  cfg.Set("label", bench_kit::JsonValue::Str("rr/t40"));
  sink.set_config(std::move(cfg));

  const Result<std::string> path =
      sink.Capture(PostmortemReason::kExplicit, "operator request",
                   Seconds(123.5));
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  EXPECT_TRUE(sink.triggered());
  ASSERT_EQ(sink.paths().size(), 1u);
  EXPECT_EQ(sink.paths()[0], path.value());
  // Sanitized label, reason token in the filename.
  EXPECT_NE(path.value().find("postmortem_rr-t40-a1_explicit.json"),
            std::string::npos);

  const std::string doc = ReadFile(path.value());
  EXPECT_NE(doc.find("\"schema\": \"vodb-postmortem-v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"reason\": \"explicit\""), std::string::npos);
  EXPECT_NE(doc.find("\"detail\": \"operator request\""), std::string::npos);
  EXPECT_NE(doc.find("\"sim_time_s\": 123.5"), std::string::npos);
  EXPECT_NE(doc.find("\"run_label\": \"rr/t40 a1\""), std::string::npos);
  EXPECT_NE(doc.find("\"seed\": 42"), std::string::npos);
  // Ring tail with both events, in order, flat payload keys.
  EXPECT_NE(doc.find("\"kind\": \"admit\""), std::string::npos);
  EXPECT_NE(doc.find("\"kind\": \"service_start\""), std::string::npos);
  EXPECT_LT(doc.find("\"admit\""), doc.find("\"service_start\""));
  EXPECT_NE(doc.find("\"total\": 2"), std::string::npos);
  EXPECT_NE(doc.find("\"dropped\": 0"), std::string::npos);
  // Registry + profiler snapshots are embedded as objects, not strings.
  EXPECT_NE(doc.find("\"metrics\": {"), std::string::npos);
  EXPECT_NE(doc.find("\"profile\": "), std::string::npos);
}

TEST(PostmortemSinkTest, RepeatCapturesGetDistinctFilenames) {
  PostmortemSink::Options opt;
  opt.dir = DumpDir("repeat");
  opt.run_label = "run7";
  PostmortemSink sink(opt);

  const auto p1 = sink.Capture(PostmortemReason::kExplicit, "a", Seconds(1.0));
  const auto p2 = sink.Capture(PostmortemReason::kExplicit, "b", Seconds(2.0));
  const auto p3 = sink.Capture(PostmortemReason::kHiccupThreshold, "c",
                               Seconds(3.0));
  ASSERT_TRUE(p1.ok() && p2.ok() && p3.ok());
  EXPECT_NE(p1.value(), p2.value());
  EXPECT_NE(p2.value().find("_explicit_2.json"), std::string::npos);
  // A different reason starts its own suffix sequence.
  EXPECT_NE(p3.value().find("_hiccup.json"), std::string::npos);
  EXPECT_EQ(sink.paths().size(), 3u);
  // All three files exist with distinct contents.
  EXPECT_NE(ReadFile(p1.value()), ReadFile(p2.value()));
}

TEST(PostmortemSinkTest, RingTailIsCappedAndCountsCapAsDropped) {
  PostmortemSink::Options opt;
  opt.dir = DumpDir("captail");
  opt.ring_tail = 4;
  PostmortemSink sink(opt);
  EventTracer tracer;
  for (int i = 1; i <= 10; ++i) {
    tracer.Emit(Ev(TraceEventKind::kServiceStart,
                   Seconds(static_cast<double>(i)), i));
  }
  sink.set_tracer(&tracer);
  const auto path =
      sink.Capture(PostmortemReason::kExplicit, "cap", Seconds(10.0));
  ASSERT_TRUE(path.ok());
  const std::string doc = ReadFile(path.value());
  EXPECT_NE(doc.find("\"total\": 10"), std::string::npos);
  // 6 tail-cap drops (the tracer itself dropped nothing).
  EXPECT_NE(doc.find("\"dropped\": 6"), std::string::npos);
  // Only the last 4 events made it; the 6th is gone, the 7th..10th present.
  EXPECT_EQ(doc.find("\"time_s\": 6"), std::string::npos);
  EXPECT_NE(doc.find("\"time_s\": 7"), std::string::npos);
  EXPECT_NE(doc.find("\"time_s\": 10"), std::string::npos);
}

TEST(PostmortemSinkTest, CaptureFailsCleanlyOnMissingDirectory) {
  PostmortemSink::Options opt;
  opt.dir = ::testing::TempDir() + "vodb_postmortem_nonexistent/sub";
  PostmortemSink sink(opt);
  const auto path =
      sink.Capture(PostmortemReason::kExplicit, "x", Seconds(0.0));
  EXPECT_FALSE(path.ok());
  EXPECT_FALSE(sink.triggered());  // Failed writes don't count as dumps.
}

// ---------------------------------------------------------------------------
// Degradation threshold
// ---------------------------------------------------------------------------

TEST(PostmortemSinkTest, DegradationThresholdFiresOnceAtTheCrossing) {
  PostmortemSink::Options opt;
  opt.dir = DumpDir("threshold");
  opt.hiccup_threshold = 3;
  PostmortemSink sink(opt);

  sink.NoteDegradation(1, 0, Seconds(10.0));
  sink.NoteDegradation(2, 0, Seconds(20.0));
  EXPECT_FALSE(sink.triggered());
  sink.NoteDegradation(3, 0, Seconds(30.0));
  EXPECT_TRUE(sink.triggered());
  ASSERT_EQ(sink.paths().size(), 1u);
  // One-shot: further degradation does not dump again.
  sink.NoteDegradation(50, 50, Seconds(40.0));
  EXPECT_EQ(sink.paths().size(), 1u);

  const std::string doc = ReadFile(sink.paths()[0]);
  EXPECT_NE(doc.find("\"reason\": \"hiccup\""), std::string::npos);
  EXPECT_NE(doc.find("hiccups=3"), std::string::npos);
  EXPECT_NE(doc.find("\"sim_time_s\": 30"), std::string::npos);
}

TEST(PostmortemSinkTest, ZeroThresholdsNeverFire) {
  PostmortemSink::Options opt;
  opt.dir = DumpDir("zerothreshold");
  PostmortemSink sink(opt);  // Both thresholds default to 0 = disabled.
  sink.NoteDegradation(1000, 1000, Seconds(10.0));
  EXPECT_FALSE(sink.triggered());
}

TEST(PostmortemSinkTest, DegradedEntriesThresholdIsIndependent) {
  PostmortemSink::Options opt;
  opt.dir = DumpDir("degthreshold");
  opt.degraded_threshold = 2;
  PostmortemSink sink(opt);
  sink.NoteDegradation(100, 1, Seconds(5.0));  // Hiccups alone: disabled.
  EXPECT_FALSE(sink.triggered());
  sink.NoteDegradation(100, 2, Seconds(6.0));
  EXPECT_TRUE(sink.triggered());
  EXPECT_NE(ReadFile(sink.paths()[0]).find("degraded_entries=2"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Simulator wiring
// ---------------------------------------------------------------------------

/// A forced auditor violation must produce a dump *before* the handler runs
/// (capture-then-fail): the sink sees the violation even though the
/// collecting handler here keeps the process alive.
TEST(PostmortemWiringTest, ForcedInvariantViolationCapturesDump) {
  sim::SimConfig sc;
  sc.seed = 3;
  auto simulator = sim::VodSimulator::Create(sc, nullptr);
  ASSERT_TRUE(simulator.ok());

  PostmortemSink::Options opt;
  opt.dir = DumpDir("invariant");
  opt.run_label = "forced";
  PostmortemSink sink(opt);
  (*simulator)->set_postmortem(&sink);

  std::vector<sim::InvariantViolation> seen;
  (*simulator)->auditor().set_handler(
      [&seen](const sim::InvariantViolation& v) { seen.push_back(v); });

  // Clock regression: the one invariant a test can violate from outside.
  (*simulator)->auditor().CheckEventTime(Seconds(10.0));
  (*simulator)->auditor().CheckEventTime(Seconds(5.0));

  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].invariant, "event-time-monotonicity");
  ASSERT_TRUE(sink.triggered());
  const std::string doc = ReadFile(sink.paths()[0]);
  EXPECT_NE(doc.find("\"reason\": \"invariant\""), std::string::npos);
  EXPECT_NE(doc.find("event-time-monotonicity"), std::string::npos);
  EXPECT_NE(doc.find("\"sim_time_s\": 5"), std::string::npos);
}

/// Detaching the sink also disarms the capture observer.
TEST(PostmortemWiringTest, DetachingSinkDisarmsCapture) {
  sim::SimConfig sc;
  sc.seed = 3;
  auto simulator = sim::VodSimulator::Create(sc, nullptr);
  ASSERT_TRUE(simulator.ok());

  PostmortemSink::Options opt;
  opt.dir = DumpDir("detach");
  PostmortemSink sink(opt);
  (*simulator)->set_postmortem(&sink);
  (*simulator)->set_postmortem(nullptr);
  (*simulator)->auditor().set_handler([](const sim::InvariantViolation&) {});
  (*simulator)->auditor().CheckEventTime(Seconds(10.0));
  (*simulator)->auditor().CheckEventTime(Seconds(5.0));
  EXPECT_FALSE(sink.triggered());
}

/// End to end through RunDay: a fault schedule whose first hiccup crosses
/// the threshold dumps with the ring tail attached, and attaching the black
/// box leaves every metric untouched (pure observer under faults).
TEST(PostmortemWiringTest, ChaosHiccupThresholdDumpsAndStaysPureObserver) {
  exp::DayRunConfig cfg;
  cfg.method = core::ScheduleMethod::kSweep;
  cfg.scheme = sim::AllocScheme::kDynamic;
  cfg.t_log = exp::PaperTLog(cfg.method);
  cfg.theta = 0.5;
  cfg.duration = Hours(3);
  cfg.total_arrivals = 100;
  cfg.seed = 1;
  cfg.faults = "eio:start=1800,end=5400,p=0.3,retries=3,backoff=0.05";
  cfg.fault_seed = 7;  // The chaos golden row: 479 hiccups, plenty.
  const sim::SimMetrics plain = exp::RunDay(cfg);
  ASSERT_GT(plain.hiccup_events, 0);

  PostmortemSink::Options opt;
  opt.dir = DumpDir("chaos");
  opt.run_label = "chaos";
  opt.hiccup_threshold = 1;
  PostmortemSink sink(opt);
  obs::EventTracer tracer;
  exp::DayRunConfig observed_cfg = cfg;
  observed_cfg.postmortem = &sink;
  observed_cfg.tracer = &tracer;
  const sim::SimMetrics observed = exp::RunDay(observed_cfg);

  // The first hiccup fired the black box...
  ASSERT_TRUE(sink.triggered());
  const std::string doc = ReadFile(sink.paths()[0]);
  EXPECT_NE(doc.find("\"reason\": \"hiccup\""), std::string::npos);
  EXPECT_NE(doc.find("hiccups=1"), std::string::npos);
  if (kTraceHooksCompiledIn) {
    // ...with the run's last moments in the ring tail.
    EXPECT_NE(doc.find("\"kind\": \"hiccup\""), std::string::npos);
  }

  // ...and changed nothing. Exact equality on every metric class.
  EXPECT_EQ(plain.arrivals, observed.arrivals);
  EXPECT_EQ(plain.admitted, observed.admitted);
  EXPECT_EQ(plain.rejected, observed.rejected);
  EXPECT_EQ(plain.completed, observed.completed);
  EXPECT_EQ(plain.services, observed.services);
  EXPECT_EQ(plain.read_faults, observed.read_faults);
  EXPECT_EQ(plain.hiccup_events, observed.hiccup_events);
  EXPECT_EQ(plain.degraded_entries, observed.degraded_entries);
  EXPECT_EQ(plain.initial_latency.mean(), observed.initial_latency.mean());
  EXPECT_EQ(plain.memory_usage.max_value(), observed.memory_usage.max_value());
  EXPECT_EQ(plain.disk_busy_time, observed.disk_busy_time);
  EXPECT_EQ(plain.buffer_bits_allocated, observed.buffer_bits_allocated);
  EXPECT_EQ(plain.buffer_bits_released, observed.buffer_bits_released);
}

}  // namespace
}  // namespace vod::obs
