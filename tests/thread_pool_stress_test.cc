// Stress tests for exp::ThreadPool aimed at the submit/steal/drain paths.
// Their job is to give ThreadSanitizer (cmake -DVODB_TSAN=ON, or
// scripts/verify_tsan.sh) enough concurrent traffic to bite on: external
// producers racing the workers, tasks spawning tasks (cross-queue steals),
// destructor-time drains, and exceptions under contention. The functional
// assertions (exact task counts) double as lost-wakeup detectors.

#include <atomic>
#include <cstddef>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exp/thread_pool.h"

namespace vod::exp {
namespace {

constexpr int kThreads = 8;

TEST(ThreadPoolStressTest, ConcurrentExternalProducers) {
  // Several external threads hammer Submit() at once: exercises the
  // round-robin queue assignment, the per-queue mutexes, and the
  // wake/claim protocol from outside the pool.
  ThreadPool pool(kThreads);
  constexpr int kProducers = 8;
  constexpr int kTasksPerProducer = 500;
  std::atomic<int> executed{0};

  std::vector<std::thread> producers;
  std::vector<std::vector<std::future<void>>> futures(kProducers);
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &executed, &futures, p]() {
      futures[static_cast<std::size_t>(p)].reserve(kTasksPerProducer);
      for (int i = 0; i < kTasksPerProducer; ++i) {
        futures[static_cast<std::size_t>(p)].push_back(pool.Submit(
            [&executed]() { executed.fetch_add(1, std::memory_order_relaxed); }));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  for (auto& fs : futures) {
    for (std::future<void>& f : fs) f.get();
  }
  EXPECT_EQ(executed.load(), kProducers * kTasksPerProducer);
}

TEST(ThreadPoolStressTest, TinyTasksForceStealing) {
  // Tasks far cheaper than a steal round-trip: workers spend most of their
  // time raiding each other's deques, hitting PopOwn/StealAny constantly.
  ThreadPool pool(kThreads);
  constexpr std::size_t kTasks = 20000;
  std::atomic<std::size_t> executed{0};
  pool.ParallelFor(kTasks, [&executed](std::size_t) {
    executed.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(executed.load(), kTasks);
}

TEST(ThreadPoolStressTest, TasksSpawningTasks) {
  // Every task fans out children from a worker thread, so Submit() races
  // with the workers' own pop/steal cycle on the same queues.
  ThreadPool pool(kThreads);
  constexpr int kRoots = 64;
  constexpr int kChildren = 32;
  std::atomic<int> executed{0};

  std::vector<std::future<std::vector<std::future<void>>>> roots;
  roots.reserve(kRoots);
  for (int r = 0; r < kRoots; ++r) {
    roots.push_back(pool.Submit([&pool, &executed]() {
      std::vector<std::future<void>> children;
      children.reserve(kChildren);
      for (int c = 0; c < kChildren; ++c) {
        children.push_back(pool.Submit([&executed]() {
          executed.fetch_add(1, std::memory_order_relaxed);
        }));
      }
      return children;
    }));
  }
  for (auto& root : roots) {
    for (std::future<void>& child : root.get()) child.get();
  }
  EXPECT_EQ(executed.load(), kRoots * kChildren);
}

TEST(ThreadPoolStressTest, DestructorDrainsSubmittedWork) {
  // The destructor promises to drain already-submitted work. Submitting a
  // burst and destroying the pool immediately races stop_ against the
  // workers' claim loop; a lost task would deadlock a future below.
  for (int round = 0; round < 20; ++round) {
    constexpr int kTasks = 200;
    auto executed = std::make_shared<std::atomic<int>>(0);
    std::vector<std::future<void>> futures;
    futures.reserve(kTasks);
    {
      ThreadPool pool(kThreads);
      for (int i = 0; i < kTasks; ++i) {
        futures.push_back(pool.Submit(
            [executed]() { executed->fetch_add(1, std::memory_order_relaxed); }));
      }
      // Pool destroyed here with most tasks still queued.
    }
    for (std::future<void>& f : futures) f.get();
    EXPECT_EQ(executed->load(), kTasks) << "round " << round;
  }
}

TEST(ThreadPoolStressTest, ExceptionsUnderContention) {
  // Exceptions must travel through the futures without disturbing the
  // other in-flight tasks, even when many throw at once.
  ThreadPool pool(kThreads);
  constexpr std::size_t kTasks = 2000;
  std::atomic<std::size_t> completed{0};
  std::size_t thrown = 0;

  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    futures.push_back(pool.Submit([&completed, i]() {
      if (i % 7 == 0) throw std::runtime_error("injected");
      completed.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (std::size_t i = 0; i < kTasks; ++i) {
    try {
      futures[i].get();
    } catch (const std::runtime_error&) {
      ++thrown;
    }
  }
  EXPECT_EQ(thrown, (kTasks + 6) / 7);
  EXPECT_EQ(completed.load(), kTasks - thrown);
}

TEST(ThreadPoolStressTest, ParallelForExceptionPropagatesLowestIndex) {
  ThreadPool pool(kThreads);
  std::atomic<std::size_t> executed{0};
  try {
    pool.ParallelFor(1000, [&executed](std::size_t i) {
      if (i == 13 || i == 700) throw std::invalid_argument(std::to_string(i));
      executed.fetch_add(1, std::memory_order_relaxed);
    });
    FAIL() << "expected an exception";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "13");
  }
  // No task is abandoned: everything except the two throwers ran.
  EXPECT_EQ(executed.load(), 998u);
}

TEST(ThreadPoolStressTest, RapidConstructDestroyCycles) {
  // Churn pool lifetimes: worker startup racing immediate shutdown.
  for (int round = 0; round < 50; ++round) {
    ThreadPool pool(4);
    std::atomic<int> executed{0};
    pool.ParallelFor(16, [&executed](std::size_t) {
      executed.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(executed.load(), 16);
  }
}

}  // namespace
}  // namespace vod::exp
