#include "common/status.h"

#include <gtest/gtest.h>

namespace vod {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::CapacityExceeded("x").code(),
            StatusCode::kCapacityExceeded);
  EXPECT_EQ(Status::Deferred("x").code(), StatusCode::kDeferred);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::InvalidArgument("bad n").ToString(),
            "InvalidArgument: bad n");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kDeferred), "Deferred");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<double> r = 2.5;
  EXPECT_DOUBLE_EQ(r.value_or(0.0), 2.5);
}

TEST(ResultTest, OkStatusIsNormalizedToInternalError) {
  Result<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, ArrowOperatorReachesMembers) {
  struct Pair {
    int a;
    int b;
  };
  Result<Pair> r = Pair{1, 2};
  EXPECT_EQ(r->a, 1);
  EXPECT_EQ(r->b, 2);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int x) {
  VOD_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorMacroPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace vod
