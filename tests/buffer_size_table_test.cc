#include "core/buffer_size_table.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "core/closed_form.h"
#include "core/params.h"
#include "disk/disk_profile.h"

namespace vod::core {
namespace {

AllocParams SmallParams() {
  auto p = MakeAllocParams(disk::SmallTestDisk(), Mbps(1.5),
                           ScheduleMethod::kRoundRobin, 0, 1);
  EXPECT_TRUE(p.ok());
  return p.value();
}

TEST(BufferSizeTableTest, MatchesClosedFormEverywhere) {
  const AllocParams p = SmallParams();
  auto table = BufferSizeTable::Build(p);
  ASSERT_TRUE(table.ok());
  for (int n = 1; n <= p.n_max; ++n) {
    for (int k = 0; k <= p.n_max; ++k) {
      const Bits expected =
          DynamicBufferSize(p, n, std::min(k, p.n_max - n)).value();
      EXPECT_DOUBLE_EQ(ToBits(table->Get(n, k).value()), ToBits(expected))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(BufferSizeTableTest, FootprintIsOofNSquared) {
  const AllocParams p = SmallParams();
  auto table = BufferSizeTable::Build(p);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->entry_count(),
            static_cast<std::size_t>(p.n_max) *
                static_cast<std::size_t>(p.n_max + 1));
}

TEST(BufferSizeTableTest, ClampsOversizedK) {
  const AllocParams p = SmallParams();
  auto table = BufferSizeTable::Build(p);
  ASSERT_TRUE(table.ok());
  EXPECT_DOUBLE_EQ(ToBits(table->Get(5, 1000).value()),
                   ToBits(table->Get(5, p.n_max).value()));
}

TEST(BufferSizeTableTest, RejectsOutOfRange) {
  const AllocParams p = SmallParams();
  auto table = BufferSizeTable::Build(p);
  ASSERT_TRUE(table.ok());
  EXPECT_FALSE(table->Get(0, 0).ok());
  EXPECT_FALSE(table->Get(p.n_max + 1, 0).ok());
  EXPECT_FALSE(table->Get(1, -1).ok());
}

TEST(BufferSizeTableTest, PerRowDlVariation) {
  // Sweep's table uses DL(n) = γ(Cyln/n) + θ per row (Table 2).
  const auto profile = disk::SmallTestDisk();
  auto pr = MakeAllocParams(profile, Mbps(1.5), ScheduleMethod::kSweep,
                            1, 1);
  ASSERT_TRUE(pr.ok());
  const AllocParams p = pr.value();
  auto dl_for_n = [&profile](int n) {
    return WorstDiskLatency(profile, ScheduleMethod::kSweep, n);
  };
  auto table = BufferSizeTable::Build(p, dl_for_n);
  ASSERT_TRUE(table.ok());
  for (int n : {1, 5, p.n_max}) {
    AllocParams row = p;
    row.dl = dl_for_n(n);
    EXPECT_DOUBLE_EQ(ToBits(table->Get(n, 0).value()),
                     ToBits(DynamicBufferSize(row, n, 0).value()))
        << "n=" << n;
  }
}

TEST(BufferSizeTableTest, GetUncheckedAgreesWithGet) {
  const AllocParams p = SmallParams();
  auto table = BufferSizeTable::Build(p);
  ASSERT_TRUE(table.ok());
  EXPECT_DOUBLE_EQ(ToBits(table->GetUnchecked(3, 2)), ToBits(table->Get(3, 2).value()));
}

}  // namespace
}  // namespace vod::core
