#include "core/closed_form.h"

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "common/units.h"
#include "core/recurrence.h"
#include "core/static_alloc.h"
#include "disk/disk_profile.h"

namespace vod::core {
namespace {

AllocParams PaperParams(int alpha = 1) {
  auto p = MakeAllocParams(disk::SeagateBarracuda9LP(), Mbps(1.5),
                           ScheduleMethod::kRoundRobin, 0, alpha);
  EXPECT_TRUE(p.ok());
  return p.value();
}

// --- Static baseline (Eq. 5) ---

TEST(StaticAllocTest, FullyLoadedMatchesHandComputation) {
  const AllocParams p = PaperParams();
  // BS(79) = 79 · 1.5e6 · DL · 120e6 / (120e6 − 118.5e6), DL = 21.73 ms.
  const Bits expected =
      79.0 * Mbps(1.5) * Milliseconds(21.73) * Mbps(120) /
      (Mbps(120) - 79.0 * Mbps(1.5));
  EXPECT_NEAR(ToBits(StaticSchemeBufferSize(p).value()), ToBits(expected), 1.0);
  EXPECT_NEAR(ToMegabits(expected), 206.0, 0.5);  // ≈ 206 Mbit ≈ 24.6 MB.
}

TEST(StaticAllocTest, GrowsSuperlinearlyTowardN) {
  const AllocParams p = PaperParams();
  const Bits bs40 = StaticBufferSize(p, 40).value();
  const Bits bs78 = StaticBufferSize(p, 78).value();
  const Bits bs79 = StaticBufferSize(p, 79).value();
  EXPECT_GT(bs78 / bs40, 78.0 / 40.0);  // Faster than linear.
  EXPECT_GT(bs79, bs78);
}

TEST(StaticAllocTest, RejectsOutOfRangeN) {
  const AllocParams p = PaperParams();
  EXPECT_FALSE(StaticBufferSize(p, 0).ok());
  EXPECT_FALSE(StaticBufferSize(p, 80).ok());
}

TEST(StaticAllocTest, ServicePeriodIsBufferOverConsumption) {
  const AllocParams p = PaperParams();
  const Bits bs = StaticBufferSize(p, 50).value();
  EXPECT_NEAR(ToSeconds(StaticServicePeriod(p, 50).value()),
              ToSeconds(bs / p.cr), 1e-9);
}

// --- Expansion step count e ---

TEST(ClosedFormTest, ExpansionStepsSatisfyDefiningProperty) {
  for (int alpha : {1, 2, 3}) {
    const AllocParams p = PaperParams(alpha);
    for (int n = 1; n < p.n_max; ++n) {
      for (int k = 0; k <= p.n_max; ++k) {
        const int e = ExpansionSteps(p, n, k).value();
        ASSERT_GE(e, 1);
        // f(i) = n + i·k + (i−1)·i·α/2 must first reach N exactly at i = e.
        auto f = [&](int i) {
          return n + i * k + (i - 1) * i * alpha / 2.0;
        };
        EXPECT_GE(f(e), p.n_max) << "n=" << n << " k=" << k << " α=" << alpha;
        if (e > 1) {
          EXPECT_LT(f(e - 1), p.n_max)
              << "n=" << n << " k=" << k << " α=" << alpha;
        }
      }
    }
  }
}

TEST(ClosedFormTest, ExpansionStepsEqualsRecurrenceDepth) {
  for (int alpha : {1, 2, 5}) {
    const AllocParams p = PaperParams(alpha);
    for (int n = 1; n < p.n_max; n += 3) {
      for (int k = 0; k <= p.n_max - n; k += 2) {
        EXPECT_EQ(ExpansionSteps(p, n, k).value(),
                  RecurrenceDepth(p, n, k).value())
            << "n=" << n << " k=" << k << " α=" << alpha;
      }
    }
  }
}

TEST(ClosedFormTest, ExpansionStepsUndefinedAtFullLoad) {
  const AllocParams p = PaperParams();
  EXPECT_FALSE(ExpansionSteps(p, p.n_max, 0).ok());
}

// --- Theorem 1 (the paper's central result) ---

struct SweepCase {
  const char* name;
  disk::DiskProfile profile;
  int alpha;
};

class Theorem1Property
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Theorem1Property, ClosedFormEqualsRecurrenceEverywhere) {
  const auto [alpha, profile_idx] = GetParam();
  const disk::DiskProfile profile =
      profile_idx == 0 ? disk::SeagateBarracuda9LP() : disk::SmallTestDisk();
  auto pr = MakeAllocParams(profile, Mbps(1.5), ScheduleMethod::kRoundRobin,
                            0, alpha);
  ASSERT_TRUE(pr.ok());
  const AllocParams p = pr.value();
  for (int n = 1; n <= p.n_max; ++n) {
    for (int k = 0; k <= p.n_max; ++k) {
      const double closed = ToBits(DynamicBufferSize(p, n, k).value());
      const double direct = ToBits(BufferSizeByRecurrence(p, n, k).value());
      EXPECT_NEAR(closed / direct, 1.0, 1e-9)
          << "n=" << n << " k=" << k << " α=" << alpha
          << " profile=" << profile.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlphaAndProfileSweep, Theorem1Property,
    ::testing::Combine(::testing::Values(1, 2, 3, 5),
                       ::testing::Values(0, 1)),
    [](const auto& info) {
      return "alpha" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == 0 ? "_barracuda" : "_smalldisk");
    });

TEST(ClosedFormTest, FullyLoadedEqualsStaticScheme) {
  const AllocParams p = PaperParams();
  EXPECT_DOUBLE_EQ(ToBits(DynamicBufferSize(p, p.n_max, 0).value()),
                   ToBits(StaticSchemeBufferSize(p).value()));
}

TEST(ClosedFormTest, MonotoneInN) {
  const AllocParams p = PaperParams();
  for (int k : {0, 1, 4}) {
    double prev = 0;
    for (int n = 1; n <= p.n_max; ++n) {
      const double bs = ToBits(DynamicBufferSize(p, n, k).value());
      EXPECT_GE(bs, prev) << "n=" << n << " k=" << k;
      prev = bs;
    }
  }
}

TEST(ClosedFormTest, MonotoneInK) {
  const AllocParams p = PaperParams();
  for (int n : {1, 10, 40, 70}) {
    double prev = 0;
    for (int k = 0; k <= p.n_max - n; ++k) {
      const double bs = ToBits(DynamicBufferSize(p, n, k).value());
      EXPECT_GE(bs, prev - 1e-9) << "n=" << n << " k=" << k;
      prev = bs;
    }
  }
}

TEST(ClosedFormTest, DynamicNeverExceedsFullyLoadedSize) {
  const AllocParams p = PaperParams();
  const double full = ToBits(StaticSchemeBufferSize(p).value());
  for (int n = 1; n <= p.n_max; ++n) {
    for (int k = 0; k <= p.n_max; k += 7) {
      EXPECT_LE(ToBits(DynamicBufferSize(p, n, k).value()), full * (1 + 1e-12));
    }
  }
}

TEST(ClosedFormTest, DynamicAtLeastStaticAtSameLoad) {
  // BS_k(n) sizes for n+k future requests, so it dominates the static
  // formula's BS(n) (which assumes the load never grows).
  const AllocParams p = PaperParams();
  for (int n = 1; n < p.n_max; n += 5) {
    EXPECT_GE(ToBits(DynamicBufferSize(p, n, 1).value()),
              ToBits(StaticBufferSize(p, n).value()));
  }
}

TEST(ClosedFormTest, SaturatedKCollapsesToFullSize) {
  // k >= N − n means the very next expansion hits the boundary: the buffer
  // equals the fully loaded size regardless of how much bigger k gets.
  const AllocParams p = PaperParams();
  const double full = ToBits(StaticSchemeBufferSize(p).value());
  EXPECT_NEAR(ToBits(DynamicBufferSize(p, 10, p.n_max - 10).value()), full,
              1e-6);
  EXPECT_NEAR(ToBits(DynamicBufferSize(p, 10, p.n_max).value()), full, 1e-6);
}

TEST(ClosedFormTest, RejectsBadInputs) {
  const AllocParams p = PaperParams();
  EXPECT_FALSE(DynamicBufferSize(p, 0, 1).ok());
  EXPECT_FALSE(DynamicBufferSize(p, p.n_max + 1, 0).ok());
  EXPECT_FALSE(DynamicBufferSize(p, 1, -1).ok());
}

TEST(ClosedFormTest, UsagePeriodIsBufferOverConsumption) {
  const AllocParams p = PaperParams();
  EXPECT_DOUBLE_EQ(ToSeconds(UsagePeriod(p, Megabits(3))),
                   ToSeconds(Megabits(3) / p.cr));
}

TEST(ClosedFormTest, PaperScaleSanity) {
  // The dynamic buffer at n = 1 must be orders of magnitude below the
  // static scheme's 206 Mbit — this gap is the paper's whole point.
  const AllocParams p = PaperParams();
  const Bits bs1 = DynamicBufferSize(p, 1, 4).value();
  EXPECT_LT(ToMegabits(bs1), 1.0);
  EXPECT_GT(ToMegabits(bs1), 0.01);
}

}  // namespace
}  // namespace vod::core
