#!/usr/bin/env bash
# Clang thread-safety verification pass: configures build-threadsafety/
# with clang++ and VODB_THREAD_SAFETY=ON (-Wthread-safety
# -Werror=thread-safety on every src/ target via vodb_strict) and builds
# the library tree. A build failure here means a capability-annotation
# contract is violated: a VODB_GUARDED_BY field touched without its mutex,
# a VODB_REQUIRES function called lock-free, or a scoped lock misused.
#
# Usage: scripts/verify_thread_safety.sh [clang++-binary]
#
# clang is optional at the call site (the default dev container ships only
# gcc, for which the annotations are no-ops): without a clang++ on PATH the
# pass is skipped with a notice. CI installs clang and runs it for real.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD="${ROOT}/build-threadsafety"
JOBS="$(nproc 2>/dev/null || echo 2)"

CLANGXX="${1:-}"
if [[ -z "${CLANGXX}" ]]; then
  CLANGXX="$(command -v clang++ || true)"
fi
if [[ -z "${CLANGXX}" ]]; then
  # Debian/Ubuntu install versioned binaries; take the newest.
  CLANGXX="$(compgen -c clang++- 2>/dev/null | sort -t- -k2 -V | tail -1 || true)"
fi
if [[ -z "${CLANGXX}" ]]; then
  echo "verify_thread_safety: no clang++ on PATH; skipping (annotations are"
  echo "no-ops under GCC — CI runs the real analysis)."
  exit 0
fi

echo "== Clang thread-safety analysis (${CLANGXX}) =="
cmake -B "${BUILD}" -S "${ROOT}" \
  -DCMAKE_CXX_COMPILER="${CLANGXX}" \
  -DVODB_THREAD_SAFETY=ON
cmake --build "${BUILD}" -j"${JOBS}"
echo "== thread-safety: clean =="
