#!/usr/bin/env bash
# Static-lint pass: clang-tidy (profile in .clang-tidy) over the library
# sources plus the repo-specific vodb_lint.py invariants. Exits nonzero on
# any finding.
#
# Usage: scripts/lint.sh [build-dir]
#   build-dir: a configured CMake build tree providing compile_commands.json
#              (default: build/; configured on the fly if missing).
#
# clang-tidy is optional at the call site (the default dev container ships
# only gcc): when no clang-tidy binary is on PATH the tidy stage is skipped
# with a notice and only vodb_lint.py gates the result. CI runs both.
set -uo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD="${1:-${ROOT}/build}"
JOBS="$(nproc 2>/dev/null || echo 2)"
status=0

# --- Stage 1: clang-tidy ---------------------------------------------------
CLANG_TIDY="$(command -v clang-tidy || true)"
if [[ -z "${CLANG_TIDY}" ]]; then
  # Debian/Ubuntu install versioned binaries; take the newest.
  CLANG_TIDY="$(compgen -c clang-tidy- 2>/dev/null | sort -t- -k3 -V | tail -1 || true)"
fi

if [[ -n "${CLANG_TIDY}" ]]; then
  if [[ ! -f "${BUILD}/compile_commands.json" ]]; then
    cmake -B "${BUILD}" -S "${ROOT}" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  fi
  echo "== clang-tidy (${CLANG_TIDY}) over src/ =="
  mapfile -t sources < <(find "${ROOT}/src" -name '*.cc' | sort)
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -clang-tidy-binary "${CLANG_TIDY}" -p "${BUILD}" \
      -quiet -j "${JOBS}" "${sources[@]}" || status=1
  else
    "${CLANG_TIDY}" -p "${BUILD}" --quiet "${sources[@]}" || status=1
  fi
else
  echo "== clang-tidy not found on PATH; skipping the tidy stage =="
fi

# --- Stage 2: repo-specific invariants -------------------------------------
# --ast uses the libclang backend against the build tree's
# compile_commands.json; without python3-clang it degrades to the token
# backend (CI additionally runs --require-ast so the fallback can never
# silently stand in there).
echo "== vodb_lint.py =="
python3 "${ROOT}/scripts/vodb_lint.py" --ast --compdb "${BUILD}" "${ROOT}" \
  || status=1

exit "${status}"
