#!/usr/bin/env bash
# Sanitized verification pass: configures build-asan/ with VODB_SANITIZE=ON
# (ASan + UBSan, no recovery), builds everything, and runs the tier-1 ctest
# suite. Usage: scripts/verify_asan.sh [extra ctest args...]
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD="${ROOT}/build-asan"
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B "${BUILD}" -S "${ROOT}" -DVODB_SANITIZE=ON
cmake --build "${BUILD}" -j"${JOBS}"
# Default to the tier-1 suite (soak excluded); explicit ctest args
# replace the default, so `verify_*.sh -L soak` runs the soak alone.
if [[ $# -eq 0 ]]; then set -- -LE soak; fi
ctest --test-dir "${BUILD}" --output-on-failure -j"${JOBS}" "$@"
