#!/usr/bin/env python3
"""Renders the --timeseries CSV (obs/timeseries_recorder.h) per run.

Input columns (one row per 60 s sim-time bucket, per run):
  run,label,disk,time_s,reserved_mbit,buffered_mbit,queue_depth,active,
  degraded,busy_fraction

With matplotlib available, writes a PNG per input file: one column of
stacked panels (memory, streams, queue depth, disk busy) sharing the
sim-time axis, one line per run. Without matplotlib, prints a per-run
ASCII sparkline summary to stdout instead — stdlib only, so CI can
sanity-check the CSV without plotting dependencies.

Usage: plot_timeseries.py <timeseries.csv> [<out.png>]
Exit status: 0 on success, 1 on malformed input.
"""

from __future__ import annotations

import csv
import signal
import sys

# Piping the ASCII report into `head`/`less` is normal usage; die quietly
# on SIGPIPE instead of tracebacking with BrokenPipeError.
signal.signal(signal.SIGPIPE, signal.SIG_DFL)

COLUMNS = [
    "run", "label", "disk", "time_s", "reserved_mbit", "buffered_mbit",
    "queue_depth", "active", "degraded", "busy_fraction",
]

SPARK = "▁▂▃▄▅▆▇█"


def read_series(path: str) -> dict[tuple[int, str], list[dict[str, float]]]:
    """CSV -> {(run, label): [row dicts]}, rows in file order."""
    series: dict[tuple[int, str], list[dict[str, float]]] = {}
    with open(path, newline="", encoding="utf-8") as f:
        reader = csv.DictReader(f)
        if reader.fieldnames != COLUMNS:
            raise ValueError(
                f"unexpected header {reader.fieldnames!r}; want {COLUMNS!r}")
        for lineno, row in enumerate(reader, start=2):
            try:
                key = (int(row["run"]), row["label"])
                point = {c: float(row[c]) for c in COLUMNS
                         if c not in ("run", "label")}
            except (TypeError, ValueError) as e:
                raise ValueError(f"{path}:{lineno}: bad row: {e}") from e
            series.setdefault(key, []).append(point)
    return series


def sparkline(values: list[float], width: int = 60) -> str:
    if not values:
        return ""
    # Downsample to `width` buckets by max (peaks matter more than means).
    step = max(1, len(values) // width)
    sampled = [max(values[i:i + step]) for i in range(0, len(values), step)]
    lo, hi = min(sampled), max(sampled)
    span = hi - lo or 1.0
    return "".join(
        SPARK[min(len(SPARK) - 1, int((v - lo) / span * len(SPARK)))]
        for v in sampled)


def ascii_report(series: dict[tuple[int, str], list[dict[str, float]]]) -> None:
    for (run, label), points in sorted(series.items()):
        print(f"run {run} ({label}): {len(points)} buckets, "
              f"t = [{points[0]['time_s']:.0f}, {points[-1]['time_s']:.0f}] s")
        for col, unit in (("reserved_mbit", "Mbit"), ("buffered_mbit", "Mbit"),
                          ("queue_depth", ""), ("active", ""),
                          ("degraded", ""), ("busy_fraction", "")):
            vals = [p[col] for p in points]
            print(f"  {col:<14} peak {max(vals):>10.3f} {unit:<5} "
                  f"{sparkline(vals)}")


def png_report(series: dict[tuple[int, str], list[dict[str, float]]],
               out: str) -> None:
    import matplotlib
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    panels = [
        ("reserved_mbit", "reserved (Mbit)"),
        ("buffered_mbit", "buffered (Mbit)"),
        ("active", "active streams"),
        ("degraded", "degraded streams"),
        ("queue_depth", "event-queue depth"),
        ("busy_fraction", "disk busy fraction"),
    ]
    fig, axes = plt.subplots(len(panels), 1, sharex=True,
                             figsize=(10, 2.2 * len(panels)))
    for (run, label), points in sorted(series.items()):
        hours = [p["time_s"] / 3600.0 for p in points]
        for ax, (col, _) in zip(axes, panels):
            ax.plot(hours, [p[col] for p in points],
                    label=f"{run}: {label}", linewidth=0.9)
    for ax, (_, title) in zip(axes, panels):
        ax.set_ylabel(title, fontsize=8)
        ax.grid(True, alpha=0.3)
    axes[-1].set_xlabel("sim time (h)")
    if len(series) <= 12:
        axes[0].legend(fontsize=6, ncol=2)
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"plot_timeseries: wrote {out}")


def main() -> int:
    if len(sys.argv) not in (2, 3):
        print(__doc__, file=sys.stderr)
        return 2
    path = sys.argv[1]
    try:
        series = read_series(path)
    except (OSError, ValueError) as e:
        print(f"plot_timeseries: {e}", file=sys.stderr)
        return 1
    if not series:
        print(f"plot_timeseries: {path} has no data rows", file=sys.stderr)
        return 1
    try:
        import matplotlib  # noqa: F401
        have_mpl = True
    except ImportError:
        have_mpl = False
    if have_mpl:
        out = sys.argv[2] if len(sys.argv) == 3 else path + ".png"
        png_report(series, out)
    else:
        ascii_report(series)
    return 0


if __name__ == "__main__":
    sys.exit(main())
