#!/usr/bin/env python3
"""Diffs a fresh BENCH_*.json run against a committed baseline.

The gate is noise-aware: benchmark `b` regresses only when

    candidate_median > baseline_median * (1 + max(threshold, cv_mult * cv))

with cv = max(baseline cv, candidate cv) — a benchmark whose repetitions
jitter by 8% must move by 3x8 = 24% before the gate trips, while a rock-
steady one (cv ~ 0.5%) is held to the flat 10%. Improvements and sub-noise
jitter always pass; a byte-identical rerun compares equal by construction.

Cross-context guards: comparing reports from different CPU models or build
types is meaningless, so such runs are reported but exit 0 (advisory)
unless --strict-machine forces them to gate anyway. Benchmarks present in
the baseline but missing from the candidate fail (a silently dropped
benchmark is how a regression hides); new candidate benchmarks are noted.

Exit status: 0 = no regression, 1 = regression (or dropped benchmark),
2 = usage/schema error.

Usage:
    bench_compare.py --baseline bench/baselines/BENCH_baseline.json \
                     --candidate BENCH_myhost.json [options]
"""

from __future__ import annotations

import argparse
import json
import sys

SCHEMA = "vodb-bench-v1"


def die(msg: str) -> None:
    print(f"bench_compare: {msg}", file=sys.stderr)
    sys.exit(2)


def load_report(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"cannot load {path}: {e}")
    if doc.get("schema") != SCHEMA:
        die(f"{path}: schema {doc.get('schema')!r} (want {SCHEMA!r})")
    for field in ("machine", "benchmarks"):
        if field not in doc:
            die(f"{path}: missing {field!r}")
    return doc


def by_name(doc: dict) -> dict[str, dict]:
    out = {}
    for b in doc["benchmarks"]:
        if "name" not in b or "ns_per_iter" not in b:
            die(f"malformed benchmark entry {json.dumps(b)[:80]}")
        out[b["name"]] = b
    return out


def context_mismatches(base: dict, cand: dict) -> list[str]:
    notes = []
    b_m, c_m = base.get("machine", {}), cand.get("machine", {})
    if b_m.get("cpu_model") != c_m.get("cpu_model"):
        notes.append(
            f"cpu_model differs: baseline {b_m.get('cpu_model')!r} vs "
            f"candidate {c_m.get('cpu_model')!r}")
    if base.get("build_type") != cand.get("build_type"):
        notes.append(
            f"build_type differs: baseline {base.get('build_type')!r} vs "
            f"candidate {cand.get('build_type')!r}")
    return notes


def main() -> int:
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--baseline", required=True,
                    help="committed BENCH_baseline.json")
    ap.add_argument("--candidate", required=True,
                    help="freshly produced BENCH_*.json")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="flat relative regression floor (default 0.10)")
    ap.add_argument("--cv-mult", type=float, default=3.0,
                    help="noise multiplier: allowance = cv_mult * max(cv) "
                         "(default 3.0)")
    ap.add_argument("--strict-machine", action="store_true",
                    help="gate even across differing cpu_model/build_type "
                         "(default: such comparisons are advisory)")
    args = ap.parse_args()
    if args.threshold < 0 or args.cv_mult < 0:
        ap.error("--threshold and --cv-mult must be non-negative")

    base = load_report(args.baseline)
    cand = load_report(args.candidate)
    base_by = by_name(base)
    cand_by = by_name(cand)

    notes = context_mismatches(base, cand)
    advisory = bool(notes) and not args.strict_machine

    regressions: list[str] = []
    print(f"{'benchmark':<28} {'base ns':>12} {'cand ns':>12} "
          f"{'delta':>8} {'allowed':>8}  verdict")
    for name, b in sorted(base_by.items()):
        if name not in cand_by:
            regressions.append(f"{name}: present in baseline, missing from "
                               "candidate")
            print(f"{name:<28} {'-':>12} {'-':>12} {'-':>8} {'-':>8}  MISSING")
            continue
        c = cand_by[name]
        base_med = float(b["ns_per_iter"]["median"])
        cand_med = float(c["ns_per_iter"]["median"])
        cv = max(float(b["ns_per_iter"].get("cv", 0.0)),
                 float(c["ns_per_iter"].get("cv", 0.0)))
        allowance = max(args.threshold, args.cv_mult * cv)
        delta = (cand_med - base_med) / base_med if base_med > 0 else 0.0
        regressed = base_med > 0 and delta > allowance
        verdict = "REGRESSED" if regressed else "ok"
        print(f"{name:<28} {base_med:>12.2f} {cand_med:>12.2f} "
              f"{delta:>+7.1%} {allowance:>7.1%}  {verdict}")
        if regressed:
            regressions.append(
                f"{name}: median {base_med:.2f} -> {cand_med:.2f} ns/iter "
                f"({delta:+.1%} > allowed {allowance:.1%})")

    for name in sorted(set(cand_by) - set(base_by)):
        print(f"{name:<28} (new benchmark, no baseline entry)")

    for note in notes:
        print(f"note: {note}", file=sys.stderr)

    if regressions:
        print(f"\n{len(regressions)} regression(s):", file=sys.stderr)
        for r in regressions:
            print(f"  {r}", file=sys.stderr)
        if advisory:
            print("bench_compare: ADVISORY ONLY — reports come from "
                  "different machines/build types; exiting 0 "
                  "(use --strict-machine to gate anyway)", file=sys.stderr)
            return 0
        return 1

    print("\nbench_compare: no regressions", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
