#!/usr/bin/env bash
# ThreadSanitizer verification pass: configures build-tsan/ with
# VODB_TSAN=ON, builds everything, and runs the tier-1 ctest suite (which
# includes thread_pool_stress_test and the 8-thread exp_runner_test runs —
# the submit/steal/drain traffic TSan needs to detect races).
# Usage: scripts/verify_tsan.sh [extra ctest args...]
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD="${ROOT}/build-tsan"
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B "${BUILD}" -S "${ROOT}" -DVODB_TSAN=ON
cmake --build "${BUILD}" -j"${JOBS}"
# Default to the tier-1 suite (soak excluded); explicit ctest args
# replace the default, so `verify_tsan.sh -L soak` runs the soak alone.
if [[ $# -eq 0 ]]; then set -- -LE soak; fi
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  ctest --test-dir "${BUILD}" --output-on-failure -j"${JOBS}" "$@"
