#!/usr/bin/env python3
"""Structural validator for traces produced by --trace=<file>.

Catches exporter regressions that a human squinting at Perfetto would miss:
missing payload fields, non-monotonic timestamps inside a run, unbalanced
slice begin/end pairs, dangling async spans, and malformed flow chains.

Two formats, selected by file suffix exactly like obs::WriteTraceFile:

  *.jsonl   One JSON object per line:
              {"run":N,"label":...,"time":T,"kind":K,"disk":D,"request":R,
               ...kind-specific payload}
            Checks: every line parses; required keys with correct types;
            `kind` is a known token; kind-specific payload keys present;
            `time` non-decreasing within each run (one run = one
            single-threaded simulator = one clock).

  * (else)  Chrome trace-event JSON ({"traceEvents": [...]}):
            Checks: known phases only; metadata names every pid (process)
            and tid (thread) that carries events; per-pid `ts` is
            non-decreasing over non-metadata events; B/E slice nesting per
            (pid, tid) never goes negative and ends balanced; async b/e
            per id open before close and all close; flow chains per id are
            s (t)* f with the terminal f carrying bp="e"; X span events
            (--spans) carry a non-negative `dur`, a known span name, cat
            "span", and sit on the stream track derived from args.request
            (tid = 2000 + request).

A file whose basename starts with "postmortem" and ends in ".json" is
validated as a postmortem black-box dump instead (schema
"vodb-postmortem-v1"): required top-level keys with correct types, ring
tail entries shaped like trace events, and embedded config/metrics
objects.

Usage: validate_trace.py <file> [<file> ...]
Exit status: 0 when all files are valid, 1 with findings on stderr
otherwise.
"""

from __future__ import annotations

import json
import sys

KNOWN_KINDS = {
    "arrival", "admit", "defer", "reject_capacity", "reject_memory",
    "reject_invalid", "allocation", "service_start", "service_end",
    "starvation", "departure", "cancel", "read_fault", "hiccup",
    "degraded", "recovered",
}

# kind -> payload keys that must ride along in JSONL.
KIND_PAYLOAD = {
    "admit": ["n"],
    "allocation": ["n", "k", "buffer_bits", "usage_period"],
    "service_start": ["bits", "seek", "rotation", "transfer"],
    "service_end": ["bits", "seek", "rotation", "transfer"],
    "read_fault": ["seek", "rotation"],
}

# Per-stream lifecycle spans emitted by --spans (obs/span_tracker.h).
SPAN_NAMES = {"admission_wait", "service", "degraded", "retry_burst"}

# X span events live on per-stream tracks at tid = base + request
# (obs::kSpanTrackTidBase).
SPAN_TID_BASE = 2000

POSTMORTEM_SCHEMA = "vodb-postmortem-v1"
POSTMORTEM_REASONS = {"invariant", "hiccup", "signal", "explicit"}


class Findings:
    def __init__(self) -> None:
        self.count = 0

    def report(self, where: str, msg: str) -> None:
        self.count += 1
        if self.count <= 50:
            print(f"{where}: {msg}", file=sys.stderr)
        elif self.count == 51:
            print("... further findings suppressed", file=sys.stderr)


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------


def validate_jsonl(path: str, findings: Findings) -> int:
    required = {
        "run": int, "label": str, "time": (int, float), "kind": str,
        "disk": int, "request": int,
    }
    last_time: dict[int, float] = {}
    events = 0
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            where = f"{path}:{lineno}"
            line = line.strip()
            if not line:
                continue
            try:
                ev = json.loads(line)
            except json.JSONDecodeError as e:
                findings.report(where, f"unparseable line: {e}")
                continue
            if not isinstance(ev, dict):
                findings.report(where, "line is not a JSON object")
                continue
            events += 1
            ok = True
            for key, ty in required.items():
                if key not in ev:
                    findings.report(where, f"missing key `{key}`")
                    ok = False
                elif not isinstance(ev[key], ty) or isinstance(ev[key], bool):
                    findings.report(where, f"key `{key}` has wrong type "
                                           f"({type(ev[key]).__name__})")
                    ok = False
            if not ok:
                continue
            kind = ev["kind"]
            if kind not in KNOWN_KINDS:
                findings.report(where, f"unknown kind `{kind}`")
                continue
            for key in KIND_PAYLOAD.get(kind, []):
                if key not in ev:
                    findings.report(where,
                                    f"kind `{kind}` missing payload `{key}`")
            run = ev["run"]
            t = float(ev["time"])
            if t < 0:
                findings.report(where, f"negative time {t}")
            if run in last_time and t < last_time[run]:
                findings.report(
                    where, f"time went backwards within run {run}: "
                           f"{t} after {last_time[run]}")
            last_time[run] = max(t, last_time.get(run, t))
    return events


# ---------------------------------------------------------------------------
# Chrome trace-event JSON
# ---------------------------------------------------------------------------


def validate_chrome(path: str, findings: Findings) -> int:
    with open(path, encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            findings.report(path, f"unparseable JSON: {e}")
            return 0
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        findings.report(path, "missing top-level `traceEvents`")
        return 0
    events = doc["traceEvents"]
    if not isinstance(events, list):
        findings.report(path, "`traceEvents` is not a list")
        return 0

    known_phases = {"M", "B", "E", "X", "i", "b", "e", "s", "t", "f"}
    named_pids: set[int] = set()
    named_tids: set[tuple[int, int]] = set()
    used_pids: set[int] = set()
    used_tids: set[tuple[int, int]] = set()
    last_ts: dict[int, float] = {}
    slice_depth: dict[tuple[int, int], int] = {}
    async_open: set[str] = set()
    async_closed: set[str] = set()
    # flow id -> state: "s" seen, possibly "t"s, then terminal "f".
    flow_state: dict[str, str] = {}

    for i, ev in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(ev, dict):
            findings.report(where, "event is not an object")
            continue
        ph = ev.get("ph")
        pid = ev.get("pid")
        if ph not in known_phases:
            findings.report(where, f"unknown phase `{ph}`")
            continue
        if not isinstance(pid, int):
            findings.report(where, "missing/non-integer `pid`")
            continue

        if ph == "M":
            name = ev.get("name")
            if name == "process_name":
                named_pids.add(pid)
            elif name == "thread_name":
                tid = ev.get("tid")
                if not isinstance(tid, int):
                    findings.report(where, "thread_name without integer tid")
                else:
                    named_tids.add((pid, tid))
            else:
                findings.report(where, f"unknown metadata `{name}`")
            if not isinstance(ev.get("args", {}).get("name"), str):
                findings.report(where, "metadata without args.name string")
            continue

        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool):
            findings.report(where, "missing/non-numeric `ts`")
            continue
        used_pids.add(pid)
        if pid in last_ts and ts < last_ts[pid]:
            findings.report(where, f"ts went backwards within pid {pid}: "
                                   f"{ts} after {last_ts[pid]}")
        last_ts[pid] = max(ts, last_ts.get(pid, ts))

        tid = ev.get("tid")
        if not isinstance(tid, int):
            findings.report(where, "missing/non-integer `tid`")
            continue
        used_tids.add((pid, tid))

        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool):
                findings.report(where, "X event missing/non-numeric `dur`")
            elif dur < 0:
                findings.report(where, f"X event with negative dur {dur}")
            name = ev.get("name")
            if name not in SPAN_NAMES:
                findings.report(where, f"unknown span name `{name}`")
            if ev.get("cat") != "span":
                findings.report(where, "X event without cat=\"span\"")
            request = ev.get("args", {}).get("request")
            if not isinstance(request, int):
                findings.report(where, "X event missing integer args.request")
            elif tid != SPAN_TID_BASE + request:
                findings.report(
                    where, f"span for request {request} on tid {tid}, "
                           f"expected {SPAN_TID_BASE + request}")
        elif ph == "B":
            slice_depth[(pid, tid)] = slice_depth.get((pid, tid), 0) + 1
        elif ph == "E":
            depth = slice_depth.get((pid, tid), 0) - 1
            slice_depth[(pid, tid)] = depth
            if depth < 0:
                findings.report(where, f"E without matching B on "
                                       f"(pid {pid}, tid {tid})")
        elif ph in ("b", "e", "s", "t", "f"):
            ev_id = ev.get("id")
            if not isinstance(ev_id, str) or not ev_id:
                findings.report(where, f"phase `{ph}` without string `id`")
                continue
            if ph == "b":
                if ev_id in async_open or ev_id in async_closed:
                    findings.report(where, f"async span `{ev_id}` reopened")
                async_open.add(ev_id)
            elif ph == "e":
                if ev_id not in async_open:
                    findings.report(where,
                                    f"async end `{ev_id}` without begin")
                else:
                    async_open.discard(ev_id)
                    async_closed.add(ev_id)
            else:  # Flow s / t / f.
                state = flow_state.get(ev_id)
                if ph == "s":
                    if state is not None:
                        findings.report(where, f"flow `{ev_id}` restarted")
                    flow_state[ev_id] = "s"
                elif ph == "t":
                    if state != "s":
                        findings.report(where,
                                        f"flow step `{ev_id}` without start")
                else:  # "f"
                    if state != "s":
                        findings.report(where,
                                        f"flow finish `{ev_id}` without start")
                    if ev.get("bp") != "e":
                        findings.report(where,
                                        f"flow finish `{ev_id}` missing "
                                        "bp=\"e\"")
                    flow_state[ev_id] = "f"

    # A run may end with one service in flight per disk (B with no E yet)
    # and with requests still being viewed (open async spans); Perfetto
    # renders both as extending to the end of the trace. Anything beyond
    # that is a real imbalance — a disk serves one request at a time.
    for key, depth in sorted(slice_depth.items()):
        if depth > 1:
            findings.report(path, f"{depth} unclosed B slices on "
                                  f"(pid {key[0]}, tid {key[1]}) — disks "
                                  "serve one request at a time")
    for ev_id, state in sorted(flow_state.items()):
        if state != "f":
            findings.report(path, f"flow `{ev_id}` never finished")
    for pid in sorted(used_pids - named_pids):
        findings.report(path, f"pid {pid} has events but no process_name")
    for pid, tid in sorted(used_tids - named_tids):
        findings.report(path, f"(pid {pid}, tid {tid}) has events but no "
                              "thread_name")
    return sum(1 for ev in events
               if isinstance(ev, dict) and ev.get("ph") != "M")


# ---------------------------------------------------------------------------
# Postmortem dumps
# ---------------------------------------------------------------------------


def validate_postmortem(path: str, findings: Findings) -> int:
    with open(path, encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            findings.report(path, f"unparseable JSON: {e}")
            return 0
    if not isinstance(doc, dict):
        findings.report(path, "dump is not a JSON object")
        return 0

    required = {
        "schema": str, "reason": str, "detail": str,
        "sim_time_s": (int, float), "run_label": str, "config": dict,
        "ring": dict,
    }
    for key, ty in required.items():
        if key not in doc:
            findings.report(path, f"missing key `{key}`")
        elif not isinstance(doc[key], ty) or isinstance(doc[key], bool):
            findings.report(path, f"key `{key}` has wrong type "
                                  f"({type(doc[key]).__name__})")
    if doc.get("schema") not in (None, POSTMORTEM_SCHEMA):
        findings.report(path, f"unknown schema `{doc['schema']}`")
    if isinstance(doc.get("reason"), str) and \
            doc["reason"] not in POSTMORTEM_REASONS:
        findings.report(path, f"unknown reason `{doc['reason']}`")
    if isinstance(doc.get("sim_time_s"), (int, float)) and \
            doc["sim_time_s"] < 0:
        findings.report(path, f"negative sim_time_s {doc['sim_time_s']}")
    for key in ("metrics", "profile"):
        if key not in doc:
            findings.report(path, f"missing key `{key}`")

    tail_events = 0
    ring = doc.get("ring")
    if isinstance(ring, dict):
        for key in ("total", "dropped"):
            v = ring.get(key)
            if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
                findings.report(path, f"ring.{key} missing or negative")
        tail = ring.get("tail")
        if not isinstance(tail, list):
            findings.report(path, "ring.tail is not a list")
        else:
            last_t = None
            for i, ev in enumerate(tail):
                where = f"{path}: ring.tail[{i}]"
                if not isinstance(ev, dict):
                    findings.report(where, "entry is not an object")
                    continue
                tail_events += 1
                kind = ev.get("kind")
                if kind not in KNOWN_KINDS:
                    findings.report(where, f"unknown kind `{kind}`")
                t = ev.get("time_s")
                if not isinstance(t, (int, float)) or isinstance(t, bool):
                    findings.report(where, "missing/non-numeric `time_s`")
                    continue
                if last_t is not None and t < last_t:
                    findings.report(where, f"time went backwards: {t} "
                                           f"after {last_t}")
                last_t = t
            total = ring.get("total")
            if isinstance(total, (int, float)) and tail_events > total:
                findings.report(path, f"ring.tail has {tail_events} events "
                                      f"but ring.total is {total}")
    # A dump counts as "having events" even with an empty ring — tracer-less
    # sinks still capture config + metrics, which is the point of the file.
    return 1 + tail_events


def validate_one(path: str, findings: Findings) -> None:
    base = path.rsplit("/", 1)[-1]
    if base.startswith("postmortem") and base.endswith(".json"):
        events = validate_postmortem(path, findings)
        label = "entries"
    elif path.endswith(".jsonl"):
        events = validate_jsonl(path, findings)
        label = "events"
    else:
        events = validate_chrome(path, findings)
        label = "events"
    if events == 0 and not findings.count:
        print(f"validate_trace: {path} contains no events (was the binary "
              "built with -DVODB_TRACE=ON?)", file=sys.stderr)
        findings.count += 1
        return
    if not findings.count:
        print(f"validate_trace: {path} OK ({events} {label})")


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    failed = 0
    for path in sys.argv[1:]:
        findings = Findings()
        validate_one(path, findings)
        if findings.count:
            print(f"validate_trace: {findings.count} finding(s) in {path}",
                  file=sys.stderr)
            failed += 1
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
