#!/usr/bin/env python3
"""Repo-specific lint invariants clang-tidy cannot express.

Rules (suppress a finding with a trailing  // vodb-lint: allow(<rule>)  on
the offending line, stating why in a nearby comment):

  raw-double-unit
      Public headers under src/ must not pass raw `double` seconds/bits/
      rates across their API where the common/units.h aliases (Seconds,
      Bits, BitsPerSecond) exist: the alias is the documentation, and
      mixing raw doubles with unit aliases is how ms/s and bit/byte slips
      enter. Applies to declarations whose identifier names a physical
      quantity (time, bits, rate, ...).

  check-in-hot-loop
      VOD_CHECK aborts are always-on and the simulator's per-event loops
      are the hot path; inside a loop body in src/sim or src/sched the
      check must either be VOD_DCHECK (compiled out under NDEBUG) or sit
      in an explicit `#ifndef NDEBUG` region.

  raw-timing
      All host-clock access in src/ goes through src/obs/clock.h
      (obs::MonotonicNanos / obs::Stopwatch): one clock source means traces,
      profiles, and pool stats are mutually comparable, and keeps wall-clock
      reads out of code that must depend only on *simulated* time. Direct
      std::chrono / clock_gettime / gettimeofday use is flagged everywhere
      under src/ except src/obs/ itself.

  unconsumed-status
      Every call to a function returning vod::Status or vod::Result must
      consume the result (assign, return, test, VOD_RETURN_IF_ERROR, or an
      explicit void cast). The [[nodiscard]] attributes enforce this at
      compile time for -Werror targets (src/); this rule extends the net
      over tests/, bench/, and examples/, which build without -Werror.

Exit status: 0 when clean, 1 when any finding is reported.
"""

from __future__ import annotations

import os
import re
import sys

ALLOW_RE = re.compile(r"//\s*vodb-lint:\s*allow\(([a-z-]+)\)")

# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------


def strip_comments(text: str) -> str:
    """Blanks out // and /* */ comments and string literals, preserving
    line structure so reported line numbers stay valid."""
    out = []
    i, n = 0, len(text)
    mode = None  # None | "line" | "block" | "str" | "chr"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode is None:
            if c == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                mode = "str"
                out.append(c)
                i += 1
                continue
            if c == "'":
                mode = "chr"
                out.append(c)
                i += 1
                continue
            out.append(c)
        else:
            if c == "\n":
                if mode == "line":
                    mode = None
                out.append(c)
            elif mode == "block" and c == "*" and nxt == "/":
                mode = None
                out.append("  ")
                i += 2
                continue
            elif mode == "str" and c == "\\":
                out.append("  ")
                i += 2
                continue
            elif mode == "str" and c == '"':
                mode = None
                out.append(c)
            elif mode == "chr" and c == "\\":
                out.append("  ")
                i += 2
                continue
            elif mode == "chr" and c == "'":
                mode = None
                out.append(c)
            else:
                out.append(" ")
            i += 1
            continue
        i += 1
    return "".join(out)


def allowed(lines: list[str], lineno: int, rule: str) -> bool:
    m = ALLOW_RE.search(lines[lineno - 1])
    return bool(m and m.group(1) == rule)


def iter_files(root: str, subdirs: list[str], exts: tuple[str, ...]):
    for sub in subdirs:
        base = os.path.join(root, sub)
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if name.endswith(exts):
                    yield os.path.join(dirpath, name)


class Findings:
    def __init__(self) -> None:
        self.count = 0

    def report(self, path: str, lineno: int, rule: str, msg: str) -> None:
        self.count += 1
        print(f"{path}:{lineno}: [{rule}] {msg}")


# ---------------------------------------------------------------------------
# Rule: raw-double-unit
# ---------------------------------------------------------------------------

# Identifier fragments that name a physical quantity with a units.h alias.
UNIT_HINTS = [
    (re.compile(r"(?:^|_)(time|seconds|secs|deadline|latenc\w*|duration|"
                r"period|t_log|timeout)(?:_|$)", re.IGNORECASE), "Seconds"),
    (re.compile(r"(?:^|_)(bits|bytes|memory|capacity)(?:_|$)",
                re.IGNORECASE), "Bits"),
    (re.compile(r"(?:^|_)(rate|bandwidth|throughput|bps)(?:_|$)",
                re.IGNORECASE), "BitsPerSecond"),
]

DOUBLE_DECL_RE = re.compile(r"\bdouble\s+(\w+)")


def check_raw_double_units(root: str, findings: Findings) -> None:
    for path in iter_files(root, ["src"], (".h",)):
        rel = os.path.relpath(path, root)
        # units.h is where the aliases are *defined* in terms of double.
        if rel.endswith(os.path.join("common", "units.h")):
            continue
        with open(path, encoding="utf-8") as f:
            text = f.read()
        lines = text.splitlines()
        clean = strip_comments(text)
        for lineno, line in enumerate(clean.splitlines(), start=1):
            for m in DOUBLE_DECL_RE.finditer(line):
                ident = m.group(1)
                for hint_re, alias in UNIT_HINTS:
                    if hint_re.search(ident):
                        if allowed(lines, lineno, "raw-double-unit"):
                            break
                        findings.report(
                            rel, lineno, "raw-double-unit",
                            f"`double {ident}` names a physical quantity; "
                            f"use vod::{alias} from common/units.h")
                        break


# ---------------------------------------------------------------------------
# Rule: check-in-hot-loop
# ---------------------------------------------------------------------------

LOOP_HEAD_RE = re.compile(r"\b(for|while)\s*\(")
CHECK_RE = re.compile(r"\bVOD_CHECK\s*\(")


def loop_body_depths(clean: str) -> list[set[int]]:
    """For each line (0-based), the set of brace depths that belong to a
    loop body enclosing that line."""
    depth = 0
    loop_depths: list[int] = []     # brace depths whose block is a loop body
    pending_loops: list[int] = []   # paren depth of unclosed loop heads
    paren = 0
    result: list[set[int]] = []
    line_sets: set[int] = set()
    i, n = 0, len(clean)
    while i < n:
        c = clean[i]
        if c == "\n":
            result.append(set(loop_depths))
            line_sets = set()
            i += 1
            continue
        m = LOOP_HEAD_RE.match(clean, i)
        if m:
            pending_loops.append(paren)
            paren += 1
            i = m.end()
            continue
        if c == "(":
            paren += 1
        elif c == ")":
            paren -= 1
            if pending_loops and paren == pending_loops[-1]:
                pending_loops.pop()
                # The next '{' (or single statement) opens the loop body.
                j = i + 1
                while j < n and clean[j] in " \t\n":
                    j += 1
                if j < n and clean[j] == "{":
                    loop_depths.append(depth)
        elif c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            while loop_depths and loop_depths[-1] >= depth:
                loop_depths.pop()
        i += 1
    result.append(set(loop_depths))
    del line_sets
    return result


def ndebug_guarded(lines: list[str], lineno: int) -> bool:
    """True when line `lineno` (1-based) sits inside an #ifndef NDEBUG
    region (flat scan; nested conditionals resolve to the nearest guard)."""
    stack: list[bool] = []
    for i in range(lineno):
        stripped = lines[i].strip()
        if stripped.startswith("#ifndef") and "NDEBUG" in stripped:
            stack.append(True)
        elif stripped.startswith(("#if", "#ifdef")):
            stack.append(False)
        elif stripped.startswith("#else") and stack:
            stack[-1] = not stack[-1]
        elif stripped.startswith("#endif") and stack:
            stack.pop()
    return any(stack)


def check_hot_loop_checks(root: str, findings: Findings) -> None:
    for path in iter_files(root, [os.path.join("src", "sim"),
                                  os.path.join("src", "sched")], (".cc",)):
        rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8") as f:
            text = f.read()
        lines = text.splitlines()
        clean = strip_comments(text)
        depths = loop_body_depths(clean)
        for lineno, line in enumerate(clean.splitlines(), start=1):
            if not CHECK_RE.search(line):
                continue
            if not depths[lineno - 1]:
                continue  # Not inside any loop body.
            if ndebug_guarded(lines, lineno):
                continue
            if allowed(lines, lineno, "check-in-hot-loop"):
                continue
            findings.report(
                rel, lineno, "check-in-hot-loop",
                "VOD_CHECK inside a simulator loop: use VOD_DCHECK or wrap "
                "the check in #ifndef NDEBUG")


# ---------------------------------------------------------------------------
# Rule: raw-timing
# ---------------------------------------------------------------------------

RAW_TIMING_RE = re.compile(
    r"\bstd::chrono\b|\bclock_gettime\b|\bgettimeofday\b")


def check_raw_timing(root: str, findings: Findings) -> None:
    for path in iter_files(root, ["src"], (".h", ".cc")):
        rel = os.path.relpath(path, root)
        parts = rel.split(os.sep)
        # src/obs is the sanctioned clock site.
        if len(parts) >= 2 and parts[1] == "obs":
            continue
        with open(path, encoding="utf-8") as f:
            text = f.read()
        lines = text.splitlines()
        clean = strip_comments(text)
        for lineno, line in enumerate(clean.splitlines(), start=1):
            if not RAW_TIMING_RE.search(line):
                continue
            if allowed(lines, lineno, "raw-timing"):
                continue
            findings.report(
                rel, lineno, "raw-timing",
                "raw host-clock access outside src/obs; use "
                "obs::MonotonicNanos()/obs::Stopwatch from obs/clock.h")


# ---------------------------------------------------------------------------
# Rule: unconsumed-status
# ---------------------------------------------------------------------------

STATUS_DECL_RE = re.compile(
    r"(?:^|\s)(?:virtual\s+|static\s+|\[\[nodiscard\]\]\s+)*"
    r"(?:::)?(?:vod::)?(?:Status|Result<[^;=]*?>)\s+"
    r"(\w+)\s*\(", re.MULTILINE)

# A bare statement-level call: optional receiver chain, then the call, then
# the end of the statement on the same line.
def bare_call_re(names: set[str]) -> re.Pattern[str]:
    alt = "|".join(sorted(re.escape(n) for n in names))
    return re.compile(
        r"^\s*(?:[\w\)\]]+(?:\.|->))*(" + alt + r")\s*\(.*\)\s*;\s*$")


CONSUMED_HINT_RE = re.compile(
    r"\b(return|VOD_RETURN_IF_ERROR|VOD_CHECK|VOD_DCHECK|EXPECT_|ASSERT_|"
    r"static_cast<void>)|=|\(void\)")

# A line ending like this means the next line continues the same statement
# (assignment/argument/operator context), so a call there is consumed.
CONTINUATION_TAIL_RE = re.compile(
    r"([=(,+\-*/<{?:]|&&|\|\||return|<<)\s*$")


def collect_status_returning_names(root: str) -> set[str]:
    names: set[str] = set()
    for path in iter_files(root, ["src"], (".h",)):
        with open(path, encoding="utf-8") as f:
            clean = strip_comments(f.read())
        for m in STATUS_DECL_RE.finditer(clean):
            names.add(m.group(1))
    # Factory names that *construct* rather than report; and overly generic
    # names that would drown the signal.
    names -= {"OK", "InvalidArgument", "OutOfRange", "CapacityExceeded",
              "Deferred", "FailedPrecondition", "NotFound", "Internal",
              "status"}
    return names


def check_unconsumed_status(root: str, findings: Findings) -> None:
    names = collect_status_returning_names(root)
    if not names:
        return
    call_re = bare_call_re(names)
    for path in iter_files(root, ["src", "tests", "bench", "examples"],
                           (".cc", ".cpp")):
        rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8") as f:
            text = f.read()
        lines = text.splitlines()
        clean_lines = strip_comments(text).splitlines()
        for lineno, line in enumerate(clean_lines, start=1):
            m = call_re.match(line)
            if not m:
                continue
            if CONSUMED_HINT_RE.search(line):
                continue
            # Continuation of a statement begun on an earlier line: the
            # value flows into that statement's context.
            prev = ""
            for j in range(lineno - 2, -1, -1):
                if clean_lines[j].strip():
                    prev = clean_lines[j].rstrip()
                    break
            if prev and CONTINUATION_TAIL_RE.search(prev):
                continue
            if allowed(lines, lineno, "unconsumed-status"):
                continue
            findings.report(
                rel, lineno, "unconsumed-status",
                f"result of Status/Result-returning `{m.group(1)}(...)` is "
                "discarded; consume it or cast to void explicitly")


# ---------------------------------------------------------------------------


def main() -> int:
    root = sys.argv[1] if len(sys.argv) > 1 else os.getcwd()
    findings = Findings()
    check_raw_double_units(root, findings)
    check_hot_loop_checks(root, findings)
    check_raw_timing(root, findings)
    check_unconsumed_status(root, findings)
    if findings.count:
        print(f"vodb-lint: {findings.count} finding(s)")
        return 1
    print("vodb-lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
