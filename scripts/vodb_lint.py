#!/usr/bin/env python3
"""Repo-specific lint invariants clang-tidy cannot express.

Two analysis backends feed one shared rule-evaluation layer:

  * AST backend (``--ast``): libclang (python3-clang) driven by the
    ``compile_commands.json`` a configured build tree exports. Exact
    class/field attribution for member accesses, exact loop and function
    extents. Requires libclang; CI passes ``--require-ast`` so the
    fallback can never silently stand in there.
  * Token backend (default, and the ``--ast`` fallback): comment-stripped
    token/scope analysis. No dependencies, slightly conservative — it
    only attributes an access when the receiver or enclosing
    ``Class::Method`` definition resolves a unique class.

Line-grep rules (backend-independent):

  raw-double-unit
      Public headers under src/ must not pass raw `double` seconds/bits/
      rates across their API where the common/units.h aliases (Seconds,
      Bits, BitsPerSecond) exist: the alias is the documentation, and
      mixing raw doubles with unit aliases is how ms/s and bit/byte slips
      enter. Applies to declarations whose identifier names a physical
      quantity (time, bits, rate, ...).

  check-in-hot-loop
      VOD_CHECK aborts are always-on and the simulator's per-event loops
      are the hot path; inside a loop body in src/sim or src/sched the
      check must either be VOD_DCHECK (compiled out under NDEBUG) or sit
      in an explicit `#ifndef NDEBUG` region.

  raw-timing
      All host-clock access in src/ goes through src/obs/clock.h
      (obs::MonotonicNanos / obs::Stopwatch): one clock source means traces,
      profiles, and pool stats are mutually comparable, and keeps wall-clock
      reads out of code that must depend only on *simulated* time. Direct
      std::chrono / clock_gettime / gettimeofday use is flagged everywhere
      under src/ except src/obs/ itself.

  unconsumed-status
      Every call to a function returning vod::Status or vod::Result must
      consume the result (assign, return, test, VOD_RETURN_IF_ERROR, or an
      explicit void cast). The [[nodiscard]] attributes enforce this at
      compile time for -Werror targets (src/); this rule extends the net
      over tests/, bench/, and examples/, which build without -Werror.

Structural rules (AST or token backend; scoped to src/):

  unannotated-shared-state
      A class field written or read inside a vod::MutexLock /
      std::lock_guard region must carry a VODB_GUARDED_BY capability
      annotation (common/thread_annotations.h) naming that mutex, so
      Clang's -Wthread-safety pass (CI `thread-safety` job) can reject
      unlocked accesses at compile time. std::atomic, const, Mutex, and
      CondVar members are exempt (self-synchronizing or immutable).

  lock-order
      Lock-acquisition order must be consistent across the repo: if any
      code path acquires mutex B while holding A, no path may acquire A
      while holding B (classic deadlock cycle). Detected over all
      translation units jointly; each edge participating in a cycle is
      reported at its acquisition site.

  alloc-in-hot-path
      No allocation inside a loop body of a profiler-scoped function
      (one containing VODB_PROF_SCOPE — exactly the per-event paths the
      profiling layer flags): no `new`/`malloc`/`make_unique`, no
      container constructed in the loop, and no growth call
      (push_back/emplace/insert/...) unless the receiver was `reserve()`d
      earlier in the same function.

  unordered-iteration
      Determinism audit: iterating a std::unordered_{map,set,...} in a
      region that feeds an output channel (stream <<, printf family,
      ToJson/ToCsv, Append/write) emits hash order, which varies across
      libstdc++ versions and ASLR seeds, and breaks the byte-identical
      golden CSV/JSON/trace contract. Iterate in sorted order instead
      (det::SortedKeys / det::SortedItemPtrs from common/det.h).

  units-hygiene
      Dimensional-analysis hygiene for public headers under src/: a raw
      `double` parameter or field whose name carries a unit suffix
      (`*_bits`, `*_seconds`, `*_bps`, `*_rate`, or the bare words) is a
      typed quantity that escaped the common/units.h Quantity layer —
      the compiler cannot check its dimension at call sites. Declare it
      vod::Bits / vod::Seconds / vod::BitsPerSecond instead; genuinely
      dimensionless parameters (distribution rates, ratios) take an
      allow comment stating why. On the AST backend the declaration kind
      (parameter vs field) is exact; the token backend matches `double
      <ident>` declarations, skipping return types.

Suppress any finding with a trailing  // vodb-lint: allow(<rule>)  on the
reported line — or  allow(<rule-a>, <rule-b>)  when several rules fire on
the same declaration — stating why in a nearby comment.

Exit status: 0 clean, 1 findings, 2 when --require-ast is set and the
libclang backend is unavailable.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shlex
import sys

ALLOW_RE = re.compile(r"//\s*vodb-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------


def strip_comments(text: str) -> str:
    """Blanks out // and /* */ comments and string literals, preserving
    line structure so reported line numbers stay valid."""
    out = []
    i, n = 0, len(text)
    mode = None  # None | "line" | "block" | "str" | "chr"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode is None:
            if c == "/" and nxt == "/":
                mode = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                mode = "str"
                out.append(c)
                i += 1
                continue
            if c == "'":
                mode = "chr"
                out.append(c)
                i += 1
                continue
            out.append(c)
        else:
            if c == "\n":
                if mode == "line":
                    mode = None
                out.append(c)
            elif mode == "block" and c == "*" and nxt == "/":
                mode = None
                out.append("  ")
                i += 2
                continue
            elif mode == "str" and c == "\\":
                out.append("  ")
                i += 2
                continue
            elif mode == "str" and c == '"':
                mode = None
                out.append(c)
            elif mode == "chr" and c == "\\":
                out.append("  ")
                i += 2
                continue
            elif mode == "chr" and c == "'":
                mode = None
                out.append(c)
            else:
                out.append(" ")
            i += 1
            continue
        i += 1
    return "".join(out)


def allowed(lines: list[str], lineno: int, rule: str) -> bool:
    if lineno < 1 or lineno > len(lines):
        return False
    m = ALLOW_RE.search(lines[lineno - 1])
    if not m:
        return False
    return rule in {r.strip() for r in m.group(1).split(",")}


def iter_files(root: str, subdirs: list[str], exts: tuple[str, ...]):
    for sub in subdirs:
        base = os.path.join(root, sub)
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if name.endswith(exts):
                    yield os.path.join(dirpath, name)


class Findings:
    def __init__(self) -> None:
        self.count = 0
        self.items: list[tuple[str, int, str, str]] = []
        self._seen: set[tuple[str, int, str]] = set()

    def report(self, path: str, lineno: int, rule: str, msg: str) -> None:
        key = (path, lineno, rule)
        if key in self._seen:
            return
        self._seen.add(key)
        self.count += 1
        self.items.append((path, lineno, rule, msg))
        print(f"{path}:{lineno}: [{rule}] {msg}")


class SourceFile:
    """A source file plus the derived views every rule needs."""

    def __init__(self, path: str, rel: str) -> None:
        self.path = path
        self.rel = rel
        with open(path, encoding="utf-8") as f:
            self.text = f.read()
        self.lines = self.text.splitlines()
        self.clean = strip_comments(self.text)
        self.clean_lines = self.clean.splitlines()
        self._depths: list[int] | None = None

    def line_start_depths(self) -> list[int]:
        """Brace depth at the *start* of each 1-based line (index 0 unused)."""
        if self._depths is None:
            depths = [0, 0]
            d = 0
            for line in self.clean_lines:
                d += line.count("{") - line.count("}")
                depths.append(d)
            self._depths = depths
        return self._depths

    def block_end(self, lineno: int) -> int:
        """Last line of the innermost block enclosing statement `lineno`."""
        depths = self.line_start_depths()
        d = depths[lineno] if lineno < len(depths) else 0
        for ln in range(lineno + 1, len(self.lines) + 1):
            if depths[ln] < d:
                return ln - 1
        return len(self.lines)

    def region_text(self, start: int, end: int) -> str:
        return "\n".join(self.clean_lines[start - 1:end])


def load_sources(root: str, subdirs: list[str],
                 exts: tuple[str, ...]) -> list[SourceFile]:
    out = []
    for path in iter_files(root, subdirs, exts):
        out.append(SourceFile(path, os.path.relpath(path, root)))
    return out


# ---------------------------------------------------------------------------
# Rule: raw-double-unit
# ---------------------------------------------------------------------------

# Identifier fragments that name a physical quantity with a units.h alias.
UNIT_HINTS = [
    (re.compile(r"(?:^|_)(time|seconds|secs|deadline|latenc\w*|duration|"
                r"period|t_log|timeout)(?:_|$)", re.IGNORECASE), "Seconds"),
    (re.compile(r"(?:^|_)(bits|bytes|memory|capacity)(?:_|$)",
                re.IGNORECASE), "Bits"),
    (re.compile(r"(?:^|_)(rate|bandwidth|throughput|bps)(?:_|$)",
                re.IGNORECASE), "BitsPerSecond"),
]

DOUBLE_DECL_RE = re.compile(r"\bdouble\s+(\w+)")


def check_raw_double_units(root: str, findings: Findings) -> None:
    for path in iter_files(root, ["src"], (".h",)):
        rel = os.path.relpath(path, root)
        # units.h is where the aliases are *defined* in terms of double.
        if rel.endswith(os.path.join("common", "units.h")):
            continue
        with open(path, encoding="utf-8") as f:
            text = f.read()
        lines = text.splitlines()
        clean = strip_comments(text)
        for lineno, line in enumerate(clean.splitlines(), start=1):
            for m in DOUBLE_DECL_RE.finditer(line):
                ident = m.group(1)
                for hint_re, alias in UNIT_HINTS:
                    if hint_re.search(ident):
                        if allowed(lines, lineno, "raw-double-unit"):
                            break
                        findings.report(
                            rel, lineno, "raw-double-unit",
                            f"`double {ident}` names a physical quantity; "
                            f"use vod::{alias} from common/units.h")
                        break


# ---------------------------------------------------------------------------
# Rule: check-in-hot-loop
# ---------------------------------------------------------------------------

LOOP_HEAD_RE = re.compile(r"\b(for|while)\s*\(")
CHECK_RE = re.compile(r"\bVOD_CHECK\s*\(")


def loop_body_depths(clean: str) -> list[set[int]]:
    """For each line (0-based), the set of brace depths that belong to a
    loop body enclosing that line."""
    depth = 0
    loop_depths: list[int] = []     # brace depths whose block is a loop body
    pending_loops: list[int] = []   # paren depth of unclosed loop heads
    paren = 0
    result: list[set[int]] = []
    i, n = 0, len(clean)
    while i < n:
        c = clean[i]
        if c == "\n":
            result.append(set(loop_depths))
            i += 1
            continue
        m = LOOP_HEAD_RE.match(clean, i)
        if m:
            pending_loops.append(paren)
            paren += 1
            i = m.end()
            continue
        if c == "(":
            paren += 1
        elif c == ")":
            paren -= 1
            if pending_loops and paren == pending_loops[-1]:
                pending_loops.pop()
                # The next '{' (or single statement) opens the loop body.
                j = i + 1
                while j < n and clean[j] in " \t\n":
                    j += 1
                if j < n and clean[j] == "{":
                    loop_depths.append(depth)
        elif c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            while loop_depths and loop_depths[-1] >= depth:
                loop_depths.pop()
        i += 1
    result.append(set(loop_depths))
    return result


def ndebug_guarded(lines: list[str], lineno: int) -> bool:
    """True when line `lineno` (1-based) sits inside an #ifndef NDEBUG
    region (flat scan; nested conditionals resolve to the nearest guard)."""
    stack: list[bool] = []
    for i in range(lineno):
        stripped = lines[i].strip()
        if stripped.startswith("#ifndef") and "NDEBUG" in stripped:
            stack.append(True)
        elif stripped.startswith(("#if", "#ifdef")):
            stack.append(False)
        elif stripped.startswith("#else") and stack:
            stack[-1] = not stack[-1]
        elif stripped.startswith("#endif") and stack:
            stack.pop()
    return any(stack)


def check_hot_loop_checks(root: str, findings: Findings) -> None:
    for path in iter_files(root, [os.path.join("src", "sim"),
                                  os.path.join("src", "sched")], (".cc",)):
        rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8") as f:
            text = f.read()
        lines = text.splitlines()
        clean = strip_comments(text)
        depths = loop_body_depths(clean)
        for lineno, line in enumerate(clean.splitlines(), start=1):
            if not CHECK_RE.search(line):
                continue
            if not depths[lineno - 1]:
                continue  # Not inside any loop body.
            if ndebug_guarded(lines, lineno):
                continue
            if allowed(lines, lineno, "check-in-hot-loop"):
                continue
            findings.report(
                rel, lineno, "check-in-hot-loop",
                "VOD_CHECK inside a simulator loop: use VOD_DCHECK or wrap "
                "the check in #ifndef NDEBUG")


# ---------------------------------------------------------------------------
# Rule: raw-timing
# ---------------------------------------------------------------------------

RAW_TIMING_RE = re.compile(
    r"\bstd::chrono\b|\bclock_gettime\b|\bgettimeofday\b")


def check_raw_timing(root: str, findings: Findings) -> None:
    for path in iter_files(root, ["src"], (".h", ".cc")):
        rel = os.path.relpath(path, root)
        parts = rel.split(os.sep)
        # src/obs is the sanctioned clock site.
        if len(parts) >= 2 and parts[1] == "obs":
            continue
        with open(path, encoding="utf-8") as f:
            text = f.read()
        lines = text.splitlines()
        clean = strip_comments(text)
        for lineno, line in enumerate(clean.splitlines(), start=1):
            if not RAW_TIMING_RE.search(line):
                continue
            if allowed(lines, lineno, "raw-timing"):
                continue
            findings.report(
                rel, lineno, "raw-timing",
                "raw host-clock access outside src/obs; use "
                "obs::MonotonicNanos()/obs::Stopwatch from obs/clock.h")


# ---------------------------------------------------------------------------
# Rule: unconsumed-status
# ---------------------------------------------------------------------------

STATUS_DECL_RE = re.compile(
    r"(?:^|\s)(?:virtual\s+|static\s+|\[\[nodiscard\]\]\s+)*"
    r"(?:::)?(?:vod::)?(?:Status|Result<[^;=]*?>)\s+"
    r"(\w+)\s*\(", re.MULTILINE)

# A bare statement-level call: optional receiver chain, then the call, then
# the end of the statement on the same line.
def bare_call_re(names: set[str]) -> re.Pattern[str]:
    alt = "|".join(sorted(re.escape(n) for n in names))
    return re.compile(
        r"^\s*(?:[\w\)\]]+(?:\.|->))*(" + alt + r")\s*\(.*\)\s*;\s*$")


CONSUMED_HINT_RE = re.compile(
    r"\b(return|VOD_RETURN_IF_ERROR|VOD_CHECK|VOD_DCHECK|EXPECT_|ASSERT_|"
    r"static_cast<void>)|=|\(void\)")

# A line ending like this means the next line continues the same statement
# (assignment/argument/operator context), so a call there is consumed. A
# bare `{` only continues a statement when it opens an initializer list
# (preceded by = , ( or {); a block-opening `) {` does NOT exempt the
# block's first statement.
CONTINUATION_TAIL_RE = re.compile(
    r"([=(,+\-*/<?:]|&&|\|\||return|<<|[=,({[]\s*\{)\s*$")


def collect_status_returning_names(root: str) -> set[str]:
    names: set[str] = set()
    for path in iter_files(root, ["src"], (".h",)):
        with open(path, encoding="utf-8") as f:
            clean = strip_comments(f.read())
        for m in STATUS_DECL_RE.finditer(clean):
            names.add(m.group(1))
    # Factory names that *construct* rather than report; and overly generic
    # names that would drown the signal.
    names -= {"OK", "InvalidArgument", "OutOfRange", "CapacityExceeded",
              "Deferred", "FailedPrecondition", "NotFound", "Internal",
              "status"}
    return names


def check_unconsumed_status(root: str, findings: Findings) -> None:
    names = collect_status_returning_names(root)
    if not names:
        return
    call_re = bare_call_re(names)
    for path in iter_files(root, ["src", "tests", "bench", "examples"],
                           (".cc", ".cpp")):
        rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8") as f:
            text = f.read()
        lines = text.splitlines()
        clean_lines = strip_comments(text).splitlines()
        for lineno, line in enumerate(clean_lines, start=1):
            m = call_re.match(line)
            if not m:
                continue
            if CONSUMED_HINT_RE.search(line):
                continue
            # Continuation of a statement begun on an earlier line: the
            # value flows into that statement's context.
            prev = ""
            for j in range(lineno - 2, -1, -1):
                if clean_lines[j].strip():
                    prev = clean_lines[j].rstrip()
                    break
            if prev and CONTINUATION_TAIL_RE.search(prev):
                continue
            if allowed(lines, lineno, "unconsumed-status"):
                continue
            findings.report(
                rel, lineno, "unconsumed-status",
                f"result of Status/Result-returning `{m.group(1)}(...)` is "
                "discarded; consume it or cast to void explicitly")


# ---------------------------------------------------------------------------
# Structural facts (shared between the token and AST backends)
# ---------------------------------------------------------------------------


class Field:
    """A class data member relevant to the capability rules."""

    def __init__(self, cls: str, name: str, rel: str, lineno: int,
                 guarded_by: str | None, exempt: bool) -> None:
        self.cls = cls
        self.name = name
        self.rel = rel
        self.lineno = lineno
        self.guarded_by = guarded_by
        self.exempt = exempt


class Facts:
    """Everything the structural rules consume, backend-agnostic."""

    def __init__(self) -> None:
        # (class, field) -> Field
        self.fields: dict[tuple[str, str], Field] = {}
        # (class, field, lock_rel, lock_line, mutex_key)
        self.locked_accesses: list[tuple[str, str, str, int, str]] = []
        # (outer_key, inner_key, rel, lineno) — inner acquired under outer
        self.lock_edges: list[tuple[str, str, str, int]] = []
        # (rel, lineno, description)
        self.hot_allocs: list[tuple[str, int, str]] = []
        # (rel, lineno, container_name) — iteration feeding an output channel
        self.unordered_output_iters: list[tuple[str, int, str]] = []
        # (rel, lineno, kind, name) — raw double param/field with a unit-
        # suffixed name in a public header
        self.unit_suffixed_doubles: list[tuple[str, int, str, str]] = []
        self._unit_seen: set[tuple[str, int, str]] = set()

    def add_field(self, field: Field) -> None:
        self.fields.setdefault((field.cls, field.name), field)

    def add_unit_suffixed(self, rel: str, lineno: int, kind: str,
                          name: str) -> None:
        """Dedup across TUs: a header re-parsed by every includer reports
        each declaration once."""
        key = (rel, lineno, name)
        if key in self._unit_seen:
            return
        self._unit_seen.add(key)
        self.unit_suffixed_doubles.append((rel, lineno, kind, name))


MUTEX_TYPES = ("Mutex", "std::mutex", "CondVar", "std::condition_variable")

# Capture the mutex argument list of a scoped-lock declaration. Skipped when
# the args carry an adopt/defer tag (no acquisition happens at the site).
LOCK_SITE_RE = re.compile(
    r"\b(MutexLock|std::lock_guard(?:\s*<[^>]*>)?|"
    r"std::unique_lock(?:\s*<[^>]*>)?|std::scoped_lock(?:\s*<[^>]*>)?)"
    r"\s+\w+\s*[({]\s*([^;]*?)\s*[)}]\s*;")

GROWTH_METHODS = ("push_back", "emplace_back", "push_front", "emplace",
                  "insert")
GROWTH_RE = re.compile(
    r"([A-Za-z_]\w*(?:\[[^\]]*\])?)\s*(?:\.|->)\s*(" +
    "|".join(GROWTH_METHODS) + r")\s*\(")
NEW_ALLOC_RE = re.compile(
    r"\bnew\b|\bmalloc\s*\(|\bstd::make_unique\s*<|\bstd::make_shared\s*<")
CONTAINER_DECL_RE = re.compile(
    r"\bstd::(?:vector|deque|list|string|map|multimap|set|multiset|"
    r"unordered_map|unordered_set)\b[^;=()]*\s(\w+)\s*[;{(]")
PROF_SCOPE_RE = re.compile(r"\bVODB_PROF_SCOPE\s*\(")

# units-hygiene: identifier tails that name a unit the Quantity layer owns.
# `buffer_bits`, `timeout_seconds`, `peak_bps`, `transfer_rate`, and the
# member-suffixed `max_rate_` / bare `rate` forms all match.
UNIT_SUFFIX_RE = re.compile(r"(?:^|_)(bits|seconds|bps|rate)_?$")
UNIT_ALIAS = {"bits": "Bits", "seconds": "Seconds",
              "bps": "BitsPerSecond", "rate": "BitsPerSecond"}
# A `double` declarator in a header: optional ref, then the identifier.
UNIT_DOUBLE_DECL_RE = re.compile(r"\bdouble\b\s*&?\s*([A-Za-z_]\w*)")

UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<.*>\s*&?\s*(\w+)")
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;()]*:\s*(\w+)\s*\)")
OUTPUT_HINT_RE = re.compile(
    r"<<|\bf?printf\b|\bsnprintf\b|\bToJson\b|\bToCsv\b|\bToString\b|"
    r"\bAppend\b|\bwrite\b|\bEmit\b|\bout\b")

CLASS_HEAD_RE = re.compile(
    r"\b(class|struct)\s+"
    r"(?:VODB_CAPABILITY\s*\([^)]*\)\s*|VODB_SCOPED_CAPABILITY\s+|"
    r"alignas\s*\([^)]*\)\s*|final\s+)*"
    r"([A-Za-z_]\w*)")
FIELD_DECL_RE = re.compile(
    r"^\s*(?P<quals>(?:mutable|static|constexpr|inline|const)\s+)*"
    r"(?P<type>[\w:]+(?:\s*<.*>)?(?:\s+const)?(?:\s*[*&])?)\s+"
    r"(?P<name>[A-Za-z_]\w*)\s*"
    r"(?:VODB_GUARDED_BY\s*\(\s*(?P<mu>[^)]+?)\s*\))?"
    r"\s*(?:=[^;]*|\{[^;()]*\})?;")
METHOD_DEF_RE = re.compile(r"\b([A-Za-z_]\w*)::([A-Za-z_~]\w*)\s*\(")


def mutex_key(arg: str) -> str:
    """Normalize a lock argument to its last member component:
    `queues_[idx]->mu` -> `mu`, `wake_mu_` -> `wake_mu_`."""
    arg = arg.strip()
    arg = re.sub(r"^[*&]+", "", arg)
    part = re.split(r"\.|->", arg)[-1].strip()
    m = re.search(r"([A-Za-z_]\w*)\s*$", part)
    return m.group(1) if m else part


def lock_receiver(arg: str) -> str | None:
    """The qualifying receiver text of a lock argument, or None when the
    mutex is named bare (a member of the enclosing class)."""
    arg = arg.strip()
    arg = re.sub(r"^[*&]+", "", arg)
    parts = re.split(r"(\.|->)", arg)
    if len(parts) <= 1:
        return None
    return "".join(parts[:-2]).strip()


def split_lock_args(kind: str, args: str) -> list[str]:
    """Mutex expressions a scoped-lock declaration acquires; [] when the
    site adopts/defers (no acquisition)."""
    if "adopt_lock" in args or "defer_lock" in args:
        return []
    pieces = [a.strip() for a in args.split(",") if a.strip()]
    if not pieces:
        return []
    if "scoped_lock" in kind:
        return pieces
    return pieces[:1]  # lock_guard/unique_lock/MutexLock: first arg only


# ---------------------------------------------------------------------------
# Token backend
# ---------------------------------------------------------------------------


class TokenAnalyzer:
    """Comment-stripped token/scope analysis. Always available; slightly
    conservative on attribution (see module docstring)."""

    name = "token"

    def __init__(self, root: str) -> None:
        self.root = root

    def collect(self) -> Facts:
        facts = Facts()
        sources = load_sources(self.root, ["src"], (".h", ".cc"))
        for src in sources:
            self._collect_fields(src, facts)
        for src in sources:
            self._collect_lock_regions(src, facts)
            self._collect_hot_allocs(src, facts)
            self._collect_unordered(src, facts)
            self._collect_unit_hygiene(src, facts)
        return facts

    # -- fields ------------------------------------------------------------

    def _class_extents(self, src: SourceFile):
        """Yields (class_name, body_start_line, body_end_line, body_depth)."""
        depths = src.line_start_depths()
        for lineno, line in enumerate(src.clean_lines, start=1):
            m = CLASS_HEAD_RE.search(line)
            if not m:
                continue
            # `enum class` is not a record; a trailing ';' with no '{' on
            # this or the next line is a forward declaration.
            prefix = line[:m.start()]
            if re.search(r"\benum\s*$", prefix):
                continue
            open_line = None
            for ln in range(lineno, min(lineno + 3, len(src.clean_lines) + 1)):
                text = src.clean_lines[ln - 1]
                if "{" in text:
                    open_line = ln
                    break
                if ";" in text:
                    break
            if open_line is None:
                continue
            body_depth = depths[open_line] + 1
            end = src.block_end(open_line + 1) if \
                open_line + 1 <= len(src.lines) else open_line
            yield m.group(2), open_line + 1, end, body_depth

    def _collect_fields(self, src: SourceFile, facts: Facts) -> None:
        depths = src.line_start_depths()
        for cls, start, end, body_depth in self._class_extents(src):
            buf: list[tuple[int, str]] = []
            for lineno in range(start, end + 1):
                line = src.clean_lines[lineno - 1]
                if depths[lineno] != body_depth or \
                        re.match(r"\s*(public|private|protected)\s*:", line):
                    buf = []  # nested body line or access specifier
                    continue
                buf.append((lineno, line))
                if ";" not in line:
                    continue  # declaration continues on the next line
                stmt_lines, buf = buf, []
                stmt = " ".join(t for _, t in stmt_lines)
                fm = FIELD_DECL_RE.match(stmt)
                if not fm:
                    continue
                typ = fm.group("type")
                quals = fm.group("quals") or ""
                if typ in ("using", "typedef", "friend", "return", "delete",
                           "case", "goto", "public", "private", "protected",
                           "else", "new"):
                    continue
                # Method declarations never match FIELD_DECL_RE (a name
                # immediately followed by '(' fails the tail of the regex).
                exempt = ("atomic" in typ or "static" in quals or
                          "constexpr" in quals or "const" in quals or
                          typ.rstrip("*& ").endswith("const") or
                          any(t in typ for t in MUTEX_TYPES) or
                          typ.endswith("&"))
                name = fm.group("name")
                decl_line = next(
                    (ln for ln, t in stmt_lines
                     if re.search(rf"\b{re.escape(name)}\b", t)),
                    stmt_lines[0][0])
                guarded = fm.group("mu")
                facts.add_field(Field(
                    cls, name, src.rel, decl_line,
                    mutex_key(guarded) if guarded else None, exempt))

    # -- lock regions: guarded accesses + lock-order edges ----------------

    def _enclosing_class(self, src: SourceFile, lineno: int) -> str | None:
        """Nearest `Class::Method(` definition head above `lineno`."""
        for ln in range(lineno, 0, -1):
            m = METHOD_DEF_RE.search(src.clean_lines[ln - 1])
            if m:
                return m.group(1)
        return None

    def _collect_lock_regions(self, src: SourceFile, facts: Facts) -> None:
        sites = []  # (lineno, end, keys)
        for lineno, line in enumerate(src.clean_lines, start=1):
            m = LOCK_SITE_RE.search(line)
            if not m:
                continue
            args = split_lock_args(m.group(1), m.group(2))
            if not args:
                continue
            end = src.block_end(lineno)
            keys = [mutex_key(a) for a in args]
            sites.append((lineno, end, keys))
            for arg in args:
                self._attribute_accesses(src, facts, lineno, end, arg)
        # Lock-order edges: site B strictly inside site A's region.
        for a_line, a_end, a_keys in sites:
            for b_line, _, b_keys in sites:
                if b_line <= a_line or b_line > a_end:
                    continue
                for ka in a_keys:
                    for kb in b_keys:
                        if ka != kb:
                            facts.lock_edges.append((ka, kb, src.rel, b_line))

    def _attribute_accesses(self, src: SourceFile, facts: Facts,
                            lineno: int, end: int, arg: str) -> None:
        key = mutex_key(arg)
        recv = lock_receiver(arg)
        region = range(lineno + 1, end + 1)
        if recv is None:
            # Bare mutex member: attribute identifiers to the enclosing
            # Class::Method's class.
            cls = self._enclosing_class(src, lineno)
            if cls is None:
                return
            names = {fname for (c, fname) in facts.fields if c == cls}
            if not names:
                return
            for ln in region:
                for ident in re.findall(r"[A-Za-z_]\w*",
                                        src.clean_lines[ln - 1]):
                    if ident in names:
                        facts.locked_accesses.append(
                            (cls, ident, src.rel, ln, key))
        else:
            # Qualified mutex `recv.mu`: count only `recv.field` accesses,
            # attributed to the unique class owning a mutex member named
            # `key` (exempt is the mutex-member marker: Mutex types are
            # always exempt).
            owners = {c for (c, fname) in facts.fields
                      if fname == key and facts.fields[(c, fname)].exempt}
            access_re = re.compile(
                re.escape(recv) + r"\s*(?:\.|->)\s*([A-Za-z_]\w*)")
            for ln in region:
                for m in access_re.finditer(src.clean_lines[ln - 1]):
                    fname = m.group(1)
                    if fname == key or fname in GROWTH_METHODS:
                        continue
                    candidates = [c for c in owners
                                  if (c, fname) in facts.fields]
                    if len(candidates) == 1:
                        facts.locked_accesses.append(
                            (candidates[0], fname, src.rel, ln, key))

    # -- alloc-in-hot-path -------------------------------------------------

    def _collect_hot_allocs(self, src: SourceFile, facts: Facts) -> None:
        if not src.rel.endswith(".cc"):
            return
        loop_sets = loop_body_depths(src.clean)
        for lineno, line in enumerate(src.clean_lines, start=1):
            if not PROF_SCOPE_RE.search(line):
                continue
            end = src.block_end(lineno)
            reserved: set[str] = set()
            for ln in range(lineno, end + 1):
                text = src.clean_lines[ln - 1]
                for m in re.finditer(
                        r"([A-Za-z_]\w*)(?:\[[^\]]*\])?\s*(?:\.|->)\s*"
                        r"reserve\s*\(", text):
                    reserved.add(m.group(1))
                if not loop_sets[ln - 1]:
                    continue
                if NEW_ALLOC_RE.search(text):
                    facts.hot_allocs.append(
                        (src.rel, ln, "heap allocation (new/malloc/"
                         "make_unique) in a profiled loop"))
                    continue
                cm = CONTAINER_DECL_RE.search(text)
                if cm:
                    facts.hot_allocs.append(
                        (src.rel, ln,
                         f"container `{cm.group(1)}` constructed inside a "
                         "profiled loop; hoist it out and reuse"))
                    continue
                for gm in GROWTH_RE.finditer(text):
                    base = re.match(r"[A-Za-z_]\w*", gm.group(1)).group(0)
                    if base in reserved:
                        continue
                    facts.hot_allocs.append(
                        (src.rel, ln,
                         f"`{gm.group(1)}.{gm.group(2)}(...)` may grow in a "
                         f"profiled loop; reserve `{base}` first"))

    # -- units-hygiene ------------------------------------------------------

    def _collect_unit_hygiene(self, src: SourceFile, facts: Facts) -> None:
        if not src.rel.endswith(".h"):
            return
        # units.h is where the Quantity layer is defined in terms of double.
        if src.rel.endswith(os.path.join("common", "units.h")):
            return
        for lineno, line in enumerate(src.clean_lines, start=1):
            for m in UNIT_DOUBLE_DECL_RE.finditer(line):
                name = m.group(1)
                if not UNIT_SUFFIX_RE.search(name):
                    continue
                # `double rate()` declares a function returning double, not
                # a quantity-carrying parameter or field.
                tail = line[m.end():].lstrip()
                if tail.startswith("("):
                    continue
                facts.add_unit_suffixed(src.rel, lineno, "declaration", name)

    # -- unordered-iteration ----------------------------------------------

    def _collect_unordered(self, src: SourceFile, facts: Facts) -> None:
        names: set[str] = set()
        for line in src.clean_lines:
            for m in UNORDERED_DECL_RE.finditer(line):
                names.add(m.group(1))
        if not names:
            return
        for lineno, line in enumerate(src.clean_lines, start=1):
            fm = RANGE_FOR_RE.search(line)
            if not fm or fm.group(1) not in names:
                continue
            end = src.block_end(lineno + 1) if "{" in line else lineno + 1
            region = src.region_text(lineno, min(end, len(src.lines)))
            if OUTPUT_HINT_RE.search(region):
                facts.unordered_output_iters.append(
                    (src.rel, lineno, fm.group(1)))


# ---------------------------------------------------------------------------
# AST backend (libclang via python3-clang, driven by compile_commands.json)
# ---------------------------------------------------------------------------


class BackendUnavailable(RuntimeError):
    pass


def _load_cindex():
    try:
        from clang import cindex  # type: ignore
    except ImportError as e:
        raise BackendUnavailable(f"python clang bindings not importable: {e}")
    try:
        cindex.Index.create()
        return cindex
    except Exception:
        pass
    # The bindings are present but libclang.so was not found at the default
    # name; scan the usual Debian/Ubuntu install locations.
    import glob
    candidates = sorted(
        glob.glob("/usr/lib/llvm-*/lib/libclang*.so*") +
        glob.glob("/usr/lib/*/libclang-*.so*") +
        glob.glob("/usr/lib/libclang*.so*"))
    for lib in reversed(candidates):
        try:
            cindex.Config.loaded = False
            cindex.Config.set_library_file(lib)
            cindex.Index.create()
            return cindex
        except Exception:
            continue
    raise BackendUnavailable("no loadable libclang shared library found")


def _compdb_args(entry: dict) -> list[str]:
    if "arguments" in entry:
        argv = list(entry["arguments"])
    else:
        argv = shlex.split(entry.get("command", ""))
    out: list[str] = []
    skip = False
    for a in argv[1:]:  # drop the compiler
        if skip:
            skip = False
            continue
        if a in ("-c", "-o"):
            skip = a == "-o"
            continue
        if a == entry.get("file"):
            continue
        out.append(a)
    return out


class ClangAnalyzer:
    """libclang AST analysis over the compilation database. Exact member
    attribution; raises BackendUnavailable when libclang cannot load."""

    name = "ast"

    def __init__(self, root: str, compdb_dir: str) -> None:
        self.root = root
        self.compdb_dir = compdb_dir
        self.ci = _load_cindex()
        path = os.path.join(compdb_dir, "compile_commands.json")
        if not os.path.isfile(path):
            raise BackendUnavailable(
                f"{path} not found; configure a build tree first "
                "(cmake -B build -S .)")
        with open(path, encoding="utf-8") as f:
            self.entries = json.load(f)
        self.parsed_tus = 0

    def _rel(self, location) -> str | None:
        if location.file is None:
            return None
        path = os.path.realpath(str(location.file))
        root = os.path.realpath(self.root)
        if not path.startswith(root + os.sep):
            return None
        rel = os.path.relpath(path, root)
        return rel if rel.split(os.sep)[0] == "src" else None

    def collect(self) -> Facts:
        facts = Facts()
        index = self.ci.Index.create()
        src_cache: dict[str, SourceFile] = {}

        def source(rel: str) -> SourceFile:
            if rel not in src_cache:
                src_cache[rel] = SourceFile(
                    os.path.join(self.root, rel), rel)
            return src_cache[rel]

        for entry in self.entries:
            fpath = os.path.join(entry.get("directory", ""),
                                 entry.get("file", ""))
            fpath = os.path.realpath(fpath)
            rel = os.path.relpath(fpath, os.path.realpath(self.root))
            if rel.split(os.sep)[0] != "src" or not rel.endswith(".cc"):
                continue
            try:
                tu = index.parse(fpath, args=_compdb_args(entry))
            except Exception as e:  # parse failure: token backend covers it
                print(f"vodb-lint: note: AST parse failed for {rel}: {e}",
                      file=sys.stderr)
                continue
            self.parsed_tus += 1
            try:
                self._walk_tu(tu, facts, source)
            except Exception as e:
                print(f"vodb-lint: note: AST walk failed for {rel}: {e}",
                      file=sys.stderr)
        if self.parsed_tus == 0:
            raise BackendUnavailable(
                "libclang parsed no src/ translation units")
        return facts

    def _walk_tu(self, tu, facts: Facts, source) -> None:
        K = self.ci.CursorKind
        lock_regions = []   # (rel, start, end, keys, raw_args)
        compounds = []      # (rel, start, end)
        loops = []          # (rel, start, end)
        functions = []      # (rel, start, end)
        accesses = []       # (cls, field, rel, line)
        allocs = []         # (rel, line, kind, receiver)
        reserves = []       # (rel, line, receiver)
        range_fors = []     # (rel, start, end, container_name)
        lock_vars = []      # cursors, resolved after compounds are known

        for cur in tu.cursor.walk_preorder():
            rel = self._rel(cur.location)
            if rel is None:
                continue
            kind = cur.kind
            if kind == K.FIELD_DECL:
                self._field(cur, rel, facts, source)
                self._unit_hygiene(cur, rel, facts, "field")
            elif kind == K.PARM_DECL:
                self._unit_hygiene(cur, rel, facts, "parameter")
            elif kind == K.COMPOUND_STMT:
                compounds.append(
                    (rel, cur.extent.start.line, cur.extent.end.line))
            elif kind in (K.FOR_STMT, K.WHILE_STMT, K.DO_STMT,
                          K.CXX_FOR_RANGE_STMT):
                loops.append(
                    (rel, cur.extent.start.line, cur.extent.end.line))
                if kind == K.CXX_FOR_RANGE_STMT:
                    name = self._unordered_range_name(cur)
                    if name:
                        range_fors.append(
                            (rel, cur.extent.start.line,
                             cur.extent.end.line, name))
            elif kind in (K.FUNCTION_DECL, K.CXX_METHOD, K.CONSTRUCTOR,
                          K.DESTRUCTOR) and cur.is_definition():
                functions.append(
                    (rel, cur.extent.start.line, cur.extent.end.line))
            elif kind == K.VAR_DECL:
                typ = cur.type.spelling
                if any(t in typ for t in
                       ("MutexLock", "lock_guard", "unique_lock",
                        "scoped_lock")):
                    lock_vars.append((cur, rel, typ))
            elif kind == K.MEMBER_REF_EXPR:
                ref = cur.referenced
                if ref is not None and ref.kind == K.FIELD_DECL and \
                        ref.semantic_parent is not None:
                    accesses.append((ref.semantic_parent.spelling,
                                     ref.spelling, rel, cur.location.line))
            elif kind == K.CXX_NEW_EXPR:
                allocs.append((rel, cur.location.line, "new", None))
            elif kind == K.CALL_EXPR:
                name = cur.spelling
                if name in GROWTH_METHODS or name in (
                        "malloc", "make_unique", "make_shared"):
                    allocs.append((rel, cur.location.line, name,
                                   self._receiver_text(cur, name)))
                elif name == "reserve":
                    recv = self._receiver_text(cur, name)
                    if recv:
                        reserves.append((rel, cur.location.line, recv))

        for cur, rel, typ in lock_vars:
            line = cur.location.line
            args = self._lock_args(cur)
            keys = [mutex_key(a) for a in
                    split_lock_args(typ, ", ".join(args))]
            if not keys:
                continue
            enclosing = [c for c in compounds
                         if c[0] == rel and c[1] <= line <= c[2]]
            end = min((c[2] for c in enclosing), default=line)
            lock_regions.append((rel, line, end, keys))

        self._assemble(facts, lock_regions, accesses, loops, functions,
                       allocs, reserves, range_fors, source)

    # -- cursor helpers ----------------------------------------------------

    def _tokens(self, cur) -> list[str]:
        try:
            return [t.spelling for t in cur.get_tokens()]
        except Exception:
            return []

    def _field(self, cur, rel: str, facts: Facts, source) -> None:
        parent = cur.semantic_parent
        cls = parent.spelling if parent is not None else ""
        typ = cur.type.spelling
        line = cur.location.line
        # The annotation survives in the source line (macro-expanded in the
        # AST); the source text is the most version-stable place to read it.
        src = source(rel)
        text = src.clean_lines[line - 1] if line <= len(src.clean_lines) \
            else ""
        gm = re.search(r"VODB_GUARDED_BY\s*\(\s*([^)]+?)\s*\)", text)
        exempt = ("atomic" in typ or typ.startswith("const ") or
                  any(t in typ for t in MUTEX_TYPES) or typ.endswith("&"))
        facts.add_field(Field(cls, cur.spelling, rel, line,
                              mutex_key(gm.group(1)) if gm else None,
                              exempt))

    def _unit_hygiene(self, cur, rel: str, facts: Facts, kind: str) -> None:
        """units-hygiene, AST side: a double-typed parameter or field in a
        src/ header whose name carries a unit suffix."""
        if not rel.endswith(".h") or \
                rel.endswith(os.path.join("common", "units.h")):
            return
        name = cur.spelling
        if not name or not UNIT_SUFFIX_RE.search(name):
            return
        typ = cur.type.spelling.replace("const", "").replace("&", "").strip()
        if typ != "double":
            return
        facts.add_unit_suffixed(rel, cur.location.line, kind, name)

    def _lock_args(self, cur) -> list[str]:
        toks = self._tokens(cur)
        if "(" in toks:
            start = toks.index("(")
        elif "{" in toks:
            start = toks.index("{")
        else:
            return []
        inner = toks[start + 1:]
        depth, args, curarg = 1, [], []
        closers = {")": "(", "}": "{"}
        for t in inner:
            if t in "({":
                depth += 1
            elif t in closers:
                depth -= 1
                if depth == 0:
                    break
            if depth == 1 and t == ",":
                args.append("".join(curarg))
                curarg = []
            else:
                curarg.append(t)
        if curarg:
            args.append("".join(curarg))
        return [a for a in args if a]

    def _receiver_text(self, cur, method: str) -> str | None:
        toks = self._tokens(cur)
        for i, t in enumerate(toks):
            if t == method and i >= 2 and toks[i - 1] in (".", "->"):
                return toks[i - 2]
        return None

    def _unordered_range_name(self, cur) -> str | None:
        for child in cur.get_children():
            typ = child.type.spelling if child.type else ""
            if "unordered_" in typ:
                toks = self._tokens(child)
                return toks[-1] if toks else None
        return None

    # -- facts assembly ----------------------------------------------------

    def _assemble(self, facts, lock_regions, accesses, loops, functions,
                  allocs, reserves, range_fors, source) -> None:
        for rel, start, end, keys in lock_regions:
            for key in keys:
                for cls, fname, a_rel, a_line in accesses:
                    if a_rel == rel and start < a_line <= end:
                        facts.locked_accesses.append(
                            (cls, fname, rel, a_line, key))
        for rel, start, end, keys in lock_regions:
            for b_rel, b_start, _, b_keys in lock_regions:
                if b_rel != rel or not (start < b_start <= end):
                    continue
                for ka in keys:
                    for kb in b_keys:
                        if ka != kb:
                            facts.lock_edges.append((ka, kb, rel, b_start))

        # Hot functions: definitions containing a VODB_PROF_SCOPE line.
        hot = []
        prof_lines: dict[str, set[int]] = {}
        for rel in {f[0] for f in functions}:
            src = source(rel)
            prof_lines[rel] = {
                ln for ln, line in enumerate(src.clean_lines, start=1)
                if PROF_SCOPE_RE.search(line)}
        for rel, start, end in functions:
            if any(start <= ln <= end for ln in prof_lines.get(rel, ())):
                hot.append((rel, start, end))

        def in_any(spans, rel, line):
            return any(s_rel == rel and s <= line <= e
                       for s_rel, s, e in spans)

        for rel, line, kind, recv in allocs:
            hot_fns = [h for h in hot if h[0] == rel and h[1] <= line <= h[2]]
            if not hot_fns or not in_any(loops, rel, line):
                continue
            if kind in GROWTH_METHODS and recv:
                fn = hot_fns[0]
                if any(r_rel == rel and fn[1] <= r_line < line and
                       r_recv == recv
                       for r_rel, r_line, r_recv in reserves):
                    continue
                facts.hot_allocs.append(
                    (rel, line, f"`{recv}.{kind}(...)` may grow in a "
                     f"profiled loop; reserve `{recv}` first"))
            else:
                facts.hot_allocs.append(
                    (rel, line, "heap allocation (new/malloc/make_unique) "
                     "in a profiled loop"))

        for rel, start, end, name in range_fors:
            src = source(rel)
            region = src.region_text(start, min(end, len(src.lines)))
            if OUTPUT_HINT_RE.search(region):
                facts.unordered_output_iters.append((rel, start, name))


# ---------------------------------------------------------------------------
# Structural rule evaluation (backend-agnostic)
# ---------------------------------------------------------------------------


def evaluate_structural(root: str, facts: Facts, findings: Findings) -> None:
    lines_cache: dict[str, list[str]] = {}

    def file_lines(rel: str) -> list[str]:
        if rel not in lines_cache:
            with open(os.path.join(root, rel), encoding="utf-8") as f:
                lines_cache[rel] = f.read().splitlines()
        return lines_cache[rel]

    # unannotated-shared-state ---------------------------------------------
    for cls, fname, lock_rel, lock_line, key in facts.locked_accesses:
        field = facts.fields.get((cls, fname))
        if field is None or field.exempt or field.guarded_by is not None:
            continue
        if allowed(file_lines(field.rel), field.lineno,
                   "unannotated-shared-state"):
            continue
        findings.report(
            field.rel, field.lineno, "unannotated-shared-state",
            f"field `{cls}::{fname}` is accessed under lock `{key}` "
            f"({lock_rel}:{lock_line}) but carries no VODB_GUARDED_BY "
            "annotation; annotate it (or mark it atomic/const) so Clang "
            "-Wthread-safety can reject unlocked accesses")

    # lock-order ------------------------------------------------------------
    graph: dict[str, set[str]] = {}
    for a, b, _, _ in facts.lock_edges:
        graph.setdefault(a, set()).add(b)

    def reaches(start: str, goal: str) -> bool:
        seen, stack = set(), [start]
        while stack:
            node = stack.pop()
            if node == goal:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(graph.get(node, ()))
        return False

    reported_pairs: set[tuple[str, str]] = set()
    for a, b, rel, lineno in facts.lock_edges:
        if (a, b) in reported_pairs or not reaches(b, a):
            continue
        reported_pairs.add((a, b))
        if allowed(file_lines(rel), lineno, "lock-order"):
            continue
        findings.report(
            rel, lineno, "lock-order",
            f"acquires `{b}` while holding `{a}`, but another path "
            f"acquires `{a}` while holding `{b}`: inconsistent lock order "
            "can deadlock; pick one order and document it")

    # alloc-in-hot-path ------------------------------------------------------
    for rel, lineno, desc in facts.hot_allocs:
        if allowed(file_lines(rel), lineno, "alloc-in-hot-path"):
            continue
        findings.report(rel, lineno, "alloc-in-hot-path", desc)

    # units-hygiene ----------------------------------------------------------
    for rel, lineno, kind, name in facts.unit_suffixed_doubles:
        if allowed(file_lines(rel), lineno, "units-hygiene"):
            continue
        suffix = UNIT_SUFFIX_RE.search(name).group(1)
        findings.report(
            rel, lineno, "units-hygiene",
            f"raw `double` {kind} `{name}` carries the unit suffix "
            f"`{suffix}` in a public header; declare it "
            f"vod::{UNIT_ALIAS[suffix]} (common/units.h) so the compiler "
            "checks the dimension, or add an allow comment stating why it "
            "is dimensionless")

    # unordered-iteration ----------------------------------------------------
    for rel, lineno, name in facts.unordered_output_iters:
        if allowed(file_lines(rel), lineno, "unordered-iteration"):
            continue
        findings.report(
            rel, lineno, "unordered-iteration",
            f"iteration over unordered container `{name}` feeds an output "
            "channel: hash order is nondeterministic across runs and "
            "library versions; iterate in sorted order "
            "(det::SortedKeys / det::SortedItemPtrs, common/det.h)")


# ---------------------------------------------------------------------------


def run(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="vodb repo lint: line rules + structural "
        "concurrency/determinism rules")
    parser.add_argument("root", nargs="?", default=os.getcwd(),
                        help="repository root (default: cwd)")
    parser.add_argument("--ast", action="store_true",
                        help="use the libclang AST backend for the "
                        "structural rules (falls back to the token backend "
                        "unless --require-ast)")
    parser.add_argument("--require-ast", action="store_true",
                        help="fail (exit 2) instead of falling back when "
                        "libclang is unavailable")
    parser.add_argument("--compdb", default=None, metavar="DIR",
                        help="build dir with compile_commands.json "
                        "(default: <root>/build)")
    args = parser.parse_args(argv)

    root = os.path.abspath(args.root)
    compdb = os.path.abspath(args.compdb) if args.compdb \
        else os.path.join(root, "build")

    findings = Findings()
    check_raw_double_units(root, findings)
    check_hot_loop_checks(root, findings)
    check_raw_timing(root, findings)
    check_unconsumed_status(root, findings)

    backend = None
    if args.ast:
        try:
            backend = ClangAnalyzer(root, compdb)
        except BackendUnavailable as e:
            if args.require_ast:
                print(f"vodb-lint: AST backend required but unavailable: {e}",
                      file=sys.stderr)
                return 2
            print(f"vodb-lint: note: {e}; using the token backend",
                  file=sys.stderr)
    if backend is None:
        backend = TokenAnalyzer(root)

    try:
        facts = backend.collect()
    except BackendUnavailable as e:
        if args.require_ast:
            print(f"vodb-lint: AST backend required but unavailable: {e}",
                  file=sys.stderr)
            return 2
        print(f"vodb-lint: note: {e}; using the token backend",
              file=sys.stderr)
        backend = TokenAnalyzer(root)
        facts = backend.collect()

    evaluate_structural(root, facts, findings)

    if findings.count:
        print(f"vodb-lint: {findings.count} finding(s) "
              f"[{backend.name} backend]")
        return 1
    print(f"vodb-lint: clean [{backend.name} backend]")
    return 0


def main() -> int:
    return run(sys.argv[1:])


if __name__ == "__main__":
    sys.exit(main())
