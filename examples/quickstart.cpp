// Quickstart: spin up a single-disk VOD server with the paper's dynamic
// buffer allocation scheme, submit a handful of viewers, and print what
// happened.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "common/units.h"
#include "vod/server.h"

int main() {
  using namespace vod;  // NOLINT(build/namespaces)

  // A Seagate Barracuda 9LP serving MPEG-1 streams (the paper's Table 3
  // configuration: TR = 120 Mbps, CR = 1.5 Mbps, N = 79), scheduled with
  // GSS* in groups of 8 and sized by the dynamic allocation scheme.
  VodServer::Options options;
  options.config.method = core::ScheduleMethod::kGss;
  options.config.scheme = sim::AllocScheme::kDynamic;
  options.config.gss_group_size = 8;
  options.config.t_log = Minutes(20);

  auto server = VodServer::Create(options);
  if (!server.ok()) {
    std::fprintf(stderr, "create: %s\n", server.status().ToString().c_str());
    return 1;
  }

  // Five viewers arrive over the first minute, watching 10-30 minutes each.
  for (int i = 0; i < 5; ++i) {
    (*server)->RunFor(Seconds(12));
    auto t = (*server)->Submit(/*video=*/i % 6, Minutes(10 + 5 * i));
    if (!t.ok()) {
      std::fprintf(stderr, "submit: %s\n", t.status().ToString().c_str());
      return 1;
    }
    std::printf("t=%6.1fs  submitted viewer %d (video %d), %d active\n",
                *t, i, i % 6, (*server)->active_requests());
  }

  (*server)->RunToCompletion();
  (*server)->Finish();

  std::printf("\nAll viewers done at t=%.0fs\n", (*server)->now());
  std::printf("%s\n", (*server)->SummaryLine().c_str());
  std::printf("N (max concurrent streams this disk supports): %d\n",
              (*server)->alloc_params().n_max);
  return 0;
}
