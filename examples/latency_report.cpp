// Latency report: simulate one evening of a single-disk VOD service under
// both allocation schemes and print a side-by-side initial-latency report —
// the operational view of the paper's Fig. 11.
//
//   $ ./build/examples/latency_report

#include <cstdio>

#include "common/units.h"
#include "sim/vod_simulator.h"
#include "sim/workload.h"

int main() {
  using namespace vod;  // NOLINT(build/namespaces)

  // An evening: arrivals ramp to a prime-time peak after 3 hours.
  sim::WorkloadConfig workload;
  workload.duration = Hours(6);
  workload.theta = 0.3;
  workload.peak_time = Hours(3);
  workload.total_expected_arrivals = 120;
  workload.seed = 2024;
  auto arrivals = sim::GenerateWorkload(workload);
  if (!arrivals.ok()) {
    std::fprintf(stderr, "%s\n", arrivals.status().ToString().c_str());
    return 1;
  }
  std::printf("Evening workload: %zu viewer arrivals over 6 h\n\n",
              arrivals->size());

  std::printf("%-22s %10s %10s %10s %10s %9s\n", "configuration", "admitted",
              "rejected", "meanIL(s)", "maxIL(s)", "est.succ");
  for (core::ScheduleMethod method :
       {core::ScheduleMethod::kRoundRobin, core::ScheduleMethod::kSweep,
        core::ScheduleMethod::kGss}) {
    for (sim::AllocScheme scheme :
         {sim::AllocScheme::kStatic, sim::AllocScheme::kDynamic}) {
      sim::SimConfig cfg;
      cfg.method = method;
      cfg.scheme = scheme;
      cfg.t_log = method == core::ScheduleMethod::kRoundRobin ? Minutes(40)
                                                              : Minutes(20);
      auto simulator = sim::VodSimulator::Create(cfg, nullptr);
      if (!simulator.ok()) {
        std::fprintf(stderr, "%s\n", simulator.status().ToString().c_str());
        return 1;
      }
      if (Status st = (*simulator)->AddArrivals(*arrivals); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
      (*simulator)->RunToCompletion();
      (*simulator)->Finalize();
      const sim::SimMetrics& m = (*simulator)->metrics();
      char name[64];
      std::snprintf(name, sizeof(name), "%s/%s",
                    core::ScheduleMethodName(method).data(),
                    sim::AllocSchemeName(scheme).data());
      std::printf("%-22s %10ld %10ld %10.3f %10.2f %8.1f%%\n", name,
                  m.admitted, m.rejected, m.initial_latency.mean(),
                  m.initial_latency.max(), 100.0 * m.SuccessProbability());
    }
  }
  std::printf("\nThe dynamic rows show the paper's effect: mean initial"
              " latency drops sharply\nat partial load for every scheduling"
              " method (the gap widens as load falls).\n");
  return 0;
}
