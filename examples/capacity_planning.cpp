// Capacity planning: you operate a 10-disk VOD server and must decide how
// much buffer memory to provision. This example uses the library's
// analytic models (Theorems 2-4 and the capacity search behind Fig. 13) to
// print, for each allocation scheme, the concurrent-stream capacity at
// several memory sizes and the memory needed to hit a target.
//
//   $ ./build/examples/capacity_planning

#include <cstdio>
#include <vector>

#include "common/units.h"
#include "vod/analysis.h"

int main() {
  using namespace vod;  // NOLINT(build/namespaces)

  AnalysisConfig cfg;
  cfg.method = core::ScheduleMethod::kGss;
  cfg.gss_group_size = 8;
  cfg.k = 3;  // The paper's worst-average estimate for GSS*.

  const int disks = 10;
  const double disk_theta = 0.271;  // Video-popularity skew (Wolf et al.).

  std::printf("Capacity of a %d-disk GSS* server, disk load Zipf(%.3f)\n\n",
              disks, disk_theta);
  std::printf("%12s %16s %16s\n", "memory", "static scheme", "dynamic scheme");

  std::vector<Bits> memories;
  for (double gb : {0.5, 1.0, 2.0, 4.0, 8.0, 12.0}) {
    memories.push_back(Gibibytes(gb));
  }
  auto curve = CapacityVsMemoryCurve(cfg, disks, disk_theta, memories);
  if (!curve.ok()) {
    std::fprintf(stderr, "%s\n", curve.status().ToString().c_str());
    return 1;
  }
  for (const auto& pt : *curve) {
    std::printf("%9.1f GB %13d %16d\n", ToGibibytes(pt.memory), pt.stat,
                pt.dynamic);
  }

  // How much memory does each scheme need for 300 concurrent streams?
  std::printf("\nMemory needed for 300 concurrent streams:\n");
  for (bool dynamic : {false, true}) {
    double lo = 0.1, hi = 64.0;
    for (int iter = 0; iter < 40; ++iter) {
      const double mid = (lo + hi) / 2;
      auto c = CapacityVsMemoryCurve(cfg, disks, disk_theta,
                                     {Gibibytes(mid)});
      if (!c.ok()) return 1;
      const int cap = dynamic ? c->front().dynamic : c->front().stat;
      (cap >= 300 ? hi : lo) = mid;
    }
    std::printf("  %-8s ~%.2f GB\n", dynamic ? "dynamic" : "static", hi);
  }
  std::printf("\n(The gap is the paper's Table 5 effect: smaller buffers at"
              " partial load\n leave memory for more streams.)\n");
  return 0;
}
