// Admission trace: watch the predict-and-enforce strategy work. A burst of
// requests arrives at once; the dynamic allocator's Assumption-1 gate
// defers the ones that would invalidate already-sized buffers, and the
// estimator's k_c adapts. The trace prints every allocation's (n, k, BS).
//
//   $ ./build/examples/admission_trace

#include <cstdio>

#include "common/units.h"
#include "sim/vod_simulator.h"
#include "sim/workload.h"

int main() {
  using namespace vod;  // NOLINT(build/namespaces)

  sim::SimConfig cfg;
  cfg.method = core::ScheduleMethod::kRoundRobin;
  cfg.scheme = sim::AllocScheme::kDynamic;
  cfg.t_log = Minutes(40);

  auto simulator = sim::VodSimulator::Create(cfg, nullptr);
  if (!simulator.ok()) {
    std::fprintf(stderr, "%s\n", simulator.status().ToString().c_str());
    return 1;
  }

  // A quiet start (2 viewers), then a burst of 10 arrivals within one
  // second, then quiet again.
  std::vector<sim::ArrivalEvent> arrivals;
  auto add = [&arrivals](double t, double viewing_min) {
    sim::ArrivalEvent ev;
    ev.time = Seconds(t);
    ev.video = static_cast<int>(arrivals.size()) % 6;
    ev.viewing_time = Minutes(viewing_min);
    arrivals.push_back(ev);
  };
  add(1.0, 20);
  add(30.0, 20);
  for (int i = 0; i < 10; ++i) add(60.0 + 0.1 * i, 15);

  if (Status st = (*simulator)->AddArrivals(arrivals); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  (*simulator)->RunUntil(Minutes(3));

  const sim::SimMetrics& m = (*simulator)->metrics();
  std::printf("Buffer allocations around the burst at t=60 s (dynamic "
              "scheme, Round-Robin):\n");
  std::printf("%10s %6s %4s %4s %12s %12s\n", "time(s)", "req", "n", "k",
              "BS (Mbit)", "usage (s)");
  int shown = 0;
  bool first = true;
  for (const sim::AllocationRecord& rec : m.allocations) {
    if (!first && rec.time < Seconds(59.5)) continue;  // Skip the quiet-phase churn.
    first = false;
    std::printf("%10.3f %6llu %4d %4d %12.4f %12.4f\n", ToSeconds(rec.time),
                static_cast<unsigned long long>(rec.request), rec.n, rec.k,
                ToMegabits(rec.buffer_size), ToSeconds(rec.usage_period));
    if (++shown >= 40) break;
  }
  std::printf("\nBurst handling: %ld deferred admission(s); buffers grew "
              "from %0.3f Mbit (n=1)\nas n and the estimate k tracked the "
              "burst — no stream ever starved (%ld events).\n",
              m.deferred_admissions,
              ToMegabits(m.allocations.front().buffer_size),
              m.starvation_events);
  return 0;
}
