#include "exp/sharded.h"

#include <cstddef>
#include <functional>

namespace vod::exp {

void RunShardedToCompletion(sim::MultiDiskSimulator& server, ThreadPool& pool,
                            Seconds epoch) {
  server.RunToCompletionSharded(
      [&pool](std::size_t n, const std::function<void(std::size_t)>& fn) {
        pool.ParallelFor(n, fn);
      },
      epoch);
}

}  // namespace vod::exp
