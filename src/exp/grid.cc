#include "exp/grid.h"

#include <cmath>
#include <utility>

#include "sim/rng.h"

namespace vod::exp {

Grid& Grid::WithBase(const DayRunConfig& base) {
  base_ = base;
  return *this;
}

Grid& Grid::OverMethods(std::vector<core::ScheduleMethod> methods) {
  methods_ = std::move(methods);
  return *this;
}

Grid& Grid::OverSchemes(std::vector<sim::AllocScheme> schemes) {
  schemes_ = std::move(schemes);
  return *this;
}

Grid& Grid::OverTLogs(std::vector<Seconds> t_logs) {
  t_logs_ = std::move(t_logs);
  paper_t_log_ = false;
  return *this;
}

Grid& Grid::UsePaperTLog() {
  t_logs_.clear();
  paper_t_log_ = true;
  return *this;
}

Grid& Grid::OverAlphas(std::vector<int> alphas) {
  alphas_ = std::move(alphas);
  return *this;
}

Grid& Grid::OverFaults(std::vector<std::string> faults) {
  faults_ = std::move(faults);
  return *this;
}

Grid& Grid::WithSeeds(std::vector<std::uint64_t> seeds) {
  seeds_ = std::move(seeds);
  explicit_seeds_ = true;
  replications_ = static_cast<int>(seeds_.size());
  return *this;
}

Grid& Grid::WithReplications(int n) {
  seeds_.clear();
  explicit_seeds_ = false;
  replications_ = n < 0 ? 0 : n;
  return *this;
}

int Grid::replications() const { return replications_; }

std::size_t Grid::size() const {
  // Unset axes default to one value from the base config; an empty grid is
  // expressed through the seed axis (WithSeeds({}) / WithReplications(0)).
  const std::size_t methods = methods_.empty() ? 1 : methods_.size();
  const std::size_t schemes = schemes_.empty() ? 1 : schemes_.size();
  const std::size_t t_logs =
      paper_t_log_ ? 1 : (t_logs_.empty() ? 1 : t_logs_.size());
  const std::size_t alphas = alphas_.empty() ? 1 : alphas_.size();
  const std::size_t faults = faults_.empty() ? 1 : faults_.size();
  if (explicit_seeds_ && seeds_.empty()) return 0;
  return methods * schemes * t_logs * alphas * faults *
         static_cast<std::size_t>(replications_);
}

std::uint64_t Grid::SeedFor(const RunSpec& spec) const {
  if (explicit_seeds_) {
    return seeds_[static_cast<std::size_t>(spec.replication)];
  }
  // hash(grid point, replication): hash the *values*, not the axis indices,
  // so a point keeps its seed when an axis is extended or reordered. The
  // fault spec is intentionally NOT hashed — fault variants of a point must
  // replay the same workload (paired runs), and pre-fault seeds stay valid.
  std::uint64_t h = 0x76f0d0b8c0a5e1dULL;  // Arbitrary domain tag.
  h = sim::MixSeed(h, static_cast<std::uint64_t>(spec.config.method));
  h = sim::MixSeed(h, static_cast<std::uint64_t>(spec.config.scheme));
  h = sim::MixSeed(h, static_cast<std::uint64_t>(
                          std::llround(ToMilliseconds(spec.config.t_log))));
  h = sim::MixSeed(h, static_cast<std::uint64_t>(spec.config.alpha));
  h = sim::MixSeed(h, static_cast<std::uint64_t>(spec.replication));
  return h;
}

std::vector<RunSpec> Grid::Expand() const {
  std::vector<RunSpec> specs;
  specs.reserve(size());

  const std::vector<core::ScheduleMethod> methods =
      methods_.empty() ? std::vector<core::ScheduleMethod>{base_.method}
                       : methods_;
  const std::vector<sim::AllocScheme> schemes =
      schemes_.empty() ? std::vector<sim::AllocScheme>{base_.scheme}
                       : schemes_;
  const std::vector<int> alphas =
      alphas_.empty() ? std::vector<int>{base_.alpha} : alphas_;
  const std::vector<std::string> faults =
      faults_.empty() ? std::vector<std::string>{base_.faults} : faults_;

  std::size_t index = 0;
  for (std::size_t mi = 0; mi < methods.size(); ++mi) {
    const std::vector<Seconds> t_logs =
        paper_t_log_ ? std::vector<Seconds>{PaperTLog(methods[mi])}
                     : (t_logs_.empty() ? std::vector<Seconds>{base_.t_log}
                                        : t_logs_);
    for (std::size_t si = 0; si < schemes.size(); ++si) {
      for (std::size_t ti = 0; ti < t_logs.size(); ++ti) {
        for (std::size_t ai = 0; ai < alphas.size(); ++ai) {
          for (std::size_t fi = 0; fi < faults.size(); ++fi) {
            for (int rep = 0; rep < replications_; ++rep) {
              RunSpec spec;
              spec.index = index++;
              spec.method_index = static_cast<int>(mi);
              spec.scheme_index = static_cast<int>(si);
              spec.t_log_index = static_cast<int>(ti);
              spec.alpha_index = static_cast<int>(ai);
              spec.fault_index = static_cast<int>(fi);
              spec.replication = rep;
              spec.config = base_;
              spec.config.method = methods[mi];
              spec.config.scheme = schemes[si];
              spec.config.t_log = t_logs[ti];
              spec.config.alpha = alphas[ai];
              spec.config.faults = faults[fi];
              spec.config.seed = SeedFor(spec);
              specs.push_back(spec);
            }
          }
        }
      }
    }
  }
  return specs;
}

}  // namespace vod::exp
