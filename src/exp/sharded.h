#ifndef VODB_EXP_SHARDED_H_
#define VODB_EXP_SHARDED_H_

// Glue between sim::MultiDiskSimulator's executor-agnostic sharded runner
// and exp::ThreadPool: sim/ cannot depend on exp/, so the pool is adapted
// here into the ParallelForFn the simulator expects. The run is bit-
// identical for any pool size (tests/sharded_sim_test.cc pins 1 == 2 == 8).

#include "common/units.h"
#include "exp/thread_pool.h"
#include "sim/multi_disk.h"

namespace vod::exp {

/// Runs `server` to completion in sharded epochs on `pool`'s workers.
/// See sim::MultiDiskSimulator::RunToCompletionSharded for semantics and
/// the determinism requirements it checks (no injector/tracer/postmortem).
void RunShardedToCompletion(sim::MultiDiskSimulator& server, ThreadPool& pool,
                            Seconds epoch = Seconds(1.0));

}  // namespace vod::exp

#endif  // VODB_EXP_SHARDED_H_
