#ifndef VODB_EXP_GRID_H_
#define VODB_EXP_GRID_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "core/params.h"
#include "exp/day_run.h"
#include "sim/vod_simulator.h"

namespace vod::exp {

/// One expanded grid point: the DayRunConfig to execute plus its coordinates
/// in the sweep (used for grouping replications back together and for
/// labeling output rows).
struct RunSpec {
  std::size_t index = 0;  ///< Position in expansion order.
  int method_index = 0;
  int scheme_index = 0;
  int t_log_index = 0;
  int alpha_index = 0;
  int fault_index = 0;  ///< Position on the fault-spec axis (0 when unset).
  int replication = 0;  ///< 0-based replication (seed axis position).
  DayRunConfig config;
};

/// A declarative sweep grid over method × scheme × T_log × α × seeds. Axes
/// default to a single value taken from the base DayRunConfig, so a harness
/// only names the axes it actually sweeps. Expansion order is fixed and
/// nested method-major:
///
///   method ▸ scheme ▸ t_log ▸ alpha ▸ faults ▸ replication (innermost)
///
/// which matches the row order of the legacy serial harness loops — results
/// indexed by RunSpec::index reproduce their output byte for byte.
///
/// Seeding: WithSeeds() pins explicit per-replication seeds (used by the
/// figure harnesses for byte-stable legacy output); WithReplications(r)
/// derives seed = hash(grid coordinates, replication) via sim::MixSeed, so
/// every run's seed — and therefore its result — is a pure function of the
/// grid point, identical at any thread count and stable under grid
/// reordering or axis extension.
class Grid {
 public:
  Grid() = default;

  /// Fields not covered by an axis (duration, arrivals, theta, ...) come
  /// from this base config.
  Grid& WithBase(const DayRunConfig& base);

  Grid& OverMethods(std::vector<core::ScheduleMethod> methods);
  Grid& OverSchemes(std::vector<sim::AllocScheme> schemes);
  Grid& OverTLogs(std::vector<Seconds> t_logs);
  /// T_log follows the paper's per-method choice (40 min RR, 20 min others)
  /// instead of an explicit axis.
  Grid& UsePaperTLog();
  Grid& OverAlphas(std::vector<int> alphas);
  /// Fault-spec axis (fault/fault_spec.h grammar; "" or "none" = no
  /// faults). Deliberately excluded from hashed seeding: every fault
  /// variant of a grid point replays the same workload, so rows across
  /// this axis are paired comparisons against the fault-free baseline.
  Grid& OverFaults(std::vector<std::string> faults);

  /// Explicit seeds, one replication per entry.
  Grid& WithSeeds(std::vector<std::uint64_t> seeds);
  /// `n` replications with hashed per-point seeds (see class comment).
  Grid& WithReplications(int n);

  /// Number of replications per grid point.
  int replications() const;
  /// Total number of runs the grid expands to.
  std::size_t size() const;

  /// Expands to the full run list in deterministic order.
  std::vector<RunSpec> Expand() const;

 private:
  std::uint64_t SeedFor(const RunSpec& spec) const;

  DayRunConfig base_;
  std::vector<core::ScheduleMethod> methods_;
  std::vector<sim::AllocScheme> schemes_;
  std::vector<Seconds> t_logs_;
  bool paper_t_log_ = false;
  std::vector<int> alphas_;
  std::vector<std::string> faults_;
  std::vector<std::uint64_t> seeds_;
  int replications_ = 1;
  bool explicit_seeds_ = false;
};

}  // namespace vod::exp

#endif  // VODB_EXP_GRID_H_
