#ifndef VODB_EXP_DAY_RUN_H_
#define VODB_EXP_DAY_RUN_H_

#include <cstdint>
#include <string>

#include "common/units.h"
#include "core/params.h"
#include "sim/metrics.h"
#include "sim/vod_simulator.h"

namespace vod::obs {
class EventTracer;
class PostmortemSink;
class TimeseriesRecorder;
}  // namespace vod::obs

namespace vod::exp {

/// The paper's per-method T_log choices (Sec. 5.1): 40 min for Round-Robin,
/// 20 min for Sweep*/GSS*.
Seconds PaperTLog(core::ScheduleMethod method);

/// The paper's per-method worst-average k (fn. 9): 4 for Round-Robin,
/// 3 for Sweep*/GSS*.
int PaperK(core::ScheduleMethod method);

/// One single-disk simulated day: the unit of work every figure/table sweep
/// fans out over. A config fully determines its run — RunDay is a pure
/// function (no global state), so configs can execute on any thread in any
/// order and still produce identical metrics.
struct DayRunConfig {
  core::ScheduleMethod method = core::ScheduleMethod::kRoundRobin;
  sim::AllocScheme scheme = sim::AllocScheme::kDynamic;
  Seconds t_log = Minutes(40);
  int alpha = 1;
  double theta = 0.5;
  Seconds duration = Hours(24);
  double total_arrivals = 1200;
  std::uint64_t seed = 1;
  /// Optional structured event tracer attached to the run's simulator (one
  /// tracer per run — the tracer is single-producer). Pure observer: results
  /// are identical with or without it. Excluded from grid seeding (seeds
  /// hash simulation parameters by value, never this pointer).
  obs::EventTracer* tracer = nullptr;
  /// Optional postmortem black box (obs/postmortem.h). The run's simulator
  /// arms the auditor's capture-then-fail observer and the fault-layer
  /// degradation thresholds against it. Pure observer, excluded from grid
  /// seeding like the tracer.
  obs::PostmortemSink* postmortem = nullptr;
  /// Optional sim-time telemetry recorder (one per run, single-producer
  /// like the tracer). Pure observer, excluded from grid seeding.
  obs::TimeseriesRecorder* timeseries = nullptr;
  /// Fault-injection schedule (fault/fault_spec.h grammar). "" skips the
  /// injector entirely; "none"/"off" builds an *inactive* injector (handy
  /// for observer-effect tests — metrics must stay bit-identical either
  /// way). Excluded from grid seeding, so faulted and fault-free runs of
  /// the same grid point replay the same workload (paired comparisons).
  std::string faults;
  /// Seed for the injector's own RNG streams; 0 derives one from the spec
  /// text and the run seed (still fully deterministic).
  std::uint64_t fault_seed = 0;
  /// When > 0, the run is gated by an AnalyticMemoryBroker with this
  /// capacity in bits — required for memsqueeze clauses to have any effect
  /// on a single-disk run (no broker ⇒ unlimited memory).
  Bits memory_capacity;
  /// Event-queue implementation the run's simulator uses. Either kind pops
  /// the identical (time, seq) order, so metrics are bit-identical across
  /// the two; kBinaryHeap pins a run to the legacy reference structure
  /// (golden-metrics tests exercise both). Excluded from grid seeding.
  sim::EventQueueKind event_queue = sim::EventQueueKind::kCalendar;
};

/// Runs one simulated day and returns the finalized metrics.
sim::SimMetrics RunDay(const DayRunConfig& cfg);

}  // namespace vod::exp

#endif  // VODB_EXP_DAY_RUN_H_
