#include "exp/day_run.h"

#include "common/check.h"
#include "obs/profile.h"
#include "sim/workload.h"

namespace vod::exp {

Seconds PaperTLog(core::ScheduleMethod method) {
  return method == core::ScheduleMethod::kRoundRobin ? Minutes(40)
                                                     : Minutes(20);
}

int PaperK(core::ScheduleMethod method) {
  return method == core::ScheduleMethod::kRoundRobin ? 4 : 3;
}

sim::SimMetrics RunDay(const DayRunConfig& cfg) {
  VODB_PROF_SCOPE("exp.run");
  sim::SimConfig sc;
  sc.method = cfg.method;
  sc.scheme = cfg.scheme;
  sc.t_log = cfg.t_log;
  sc.alpha = cfg.alpha;
  sc.seed = cfg.seed;

  sim::WorkloadConfig w;
  w.duration = cfg.duration;
  w.theta = cfg.theta;
  w.peak_time = cfg.duration * 9.0 / 24.0;  // Peak after 9 of 24 "hours".
  w.total_expected_arrivals = cfg.total_arrivals;
  w.seed = cfg.seed * 7919 + 13;

  auto arrivals = sim::GenerateWorkload(w);
  VOD_CHECK(arrivals.ok());
  auto simulator = sim::VodSimulator::Create(sc, nullptr);
  VOD_CHECK(simulator.ok());
  (*simulator)->set_tracer(cfg.tracer);
  VOD_CHECK((*simulator)->AddArrivals(*arrivals).ok());
  (*simulator)->RunToCompletion();
  (*simulator)->Finalize();
  return (*simulator)->metrics();
}

}  // namespace vod::exp
