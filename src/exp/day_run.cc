#include "exp/day_run.h"

#include <memory>

#include "common/check.h"
#include "fault/fault_spec.h"
#include "fault/injector.h"
#include "obs/profile.h"
#include "sim/memory_broker.h"
#include "sim/rng.h"
#include "sim/workload.h"

namespace vod::exp {

Seconds PaperTLog(core::ScheduleMethod method) {
  return method == core::ScheduleMethod::kRoundRobin ? Minutes(40)
                                                     : Minutes(20);
}

int PaperK(core::ScheduleMethod method) {
  return method == core::ScheduleMethod::kRoundRobin ? 4 : 3;
}

namespace {

/// Derives the injector seed when the config leaves it at 0: a hash of the
/// spec text and the run seed, so each grid point faults the same way on
/// every execution (and differently from its replication siblings).
std::uint64_t DeriveFaultSeed(const DayRunConfig& cfg) {
  if (cfg.fault_seed != 0) return cfg.fault_seed;
  std::uint64_t h = 0x0fa17c0ffee5eedULL;  // Arbitrary domain tag.
  for (const char c : cfg.faults) {
    h = sim::MixSeed(h, static_cast<unsigned char>(c));
  }
  return sim::MixSeed(h, cfg.seed);
}

}  // namespace

sim::SimMetrics RunDay(const DayRunConfig& cfg) {
  VODB_PROF_SCOPE("exp.run");
  sim::SimConfig sc;
  sc.method = cfg.method;
  sc.scheme = cfg.scheme;
  sc.t_log = cfg.t_log;
  sc.alpha = cfg.alpha;
  sc.seed = cfg.seed;
  sc.event_queue = cfg.event_queue;

  sim::WorkloadConfig w;
  w.duration = cfg.duration;
  w.theta = cfg.theta;
  w.peak_time = cfg.duration * 9.0 / 24.0;  // Peak after 9 of 24 "hours".
  w.total_expected_arrivals = cfg.total_arrivals;
  w.seed = cfg.seed * 7919 + 13;

  auto arrivals = sim::GenerateWorkload(w);
  VOD_CHECK(arrivals.ok());

  std::unique_ptr<fault::Injector> injector;
  if (!cfg.faults.empty()) {
    Result<fault::FaultSpec> spec = fault::ParseFaultSpec(cfg.faults);
    VOD_CHECK(spec.ok());
    injector =
        std::make_unique<fault::Injector>(spec.value(), DeriveFaultSeed(cfg));
    sc.injector = injector.get();
    sim::ApplyFaultBursts(*injector, &arrivals.value());
  }

  // The broker prices memory analytically, so its params must match the
  // simulator's (same recipe as MultiDiskSimulator::Create).
  std::unique_ptr<sim::AnalyticMemoryBroker> broker;
  if (cfg.memory_capacity > Bits(0)) {
    const int n_for_dl =
        sc.method == core::ScheduleMethod::kGss
            ? sc.gss_group_size
            : core::MaxConcurrentRequests(sc.profile.transfer_rate,
                                          sc.consumption_rate);
    Result<core::AllocParams> params =
        core::MakeAllocParams(sc.profile, sc.consumption_rate, sc.method,
                              n_for_dl, sc.alpha);
    VOD_CHECK(params.ok());
    broker = std::make_unique<sim::AnalyticMemoryBroker>(
        *params, sc.method, sc.scheme == sim::AllocScheme::kDynamic,
        sc.gss_group_size, /*disk_count=*/1, cfg.memory_capacity);
    if (injector != nullptr) broker->AttachInjector(injector.get());
  }

  auto simulator = sim::VodSimulator::Create(sc, broker.get());
  VOD_CHECK(simulator.ok());
  (*simulator)->set_tracer(cfg.tracer);
  (*simulator)->set_postmortem(cfg.postmortem);
  (*simulator)->set_timeseries(cfg.timeseries);
  VOD_CHECK((*simulator)->AddArrivals(*arrivals).ok());
  (*simulator)->RunToCompletion();
  (*simulator)->Finalize();
  return (*simulator)->metrics();
}

}  // namespace vod::exp
