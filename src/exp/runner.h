#ifndef VODB_EXP_RUNNER_H_
#define VODB_EXP_RUNNER_H_

#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/stats.h"
#include "exp/day_run.h"
#include "exp/grid.h"
#include "sim/metrics.h"

namespace vod::exp {

struct RunnerOptions {
  /// Worker threads; <= 0 selects ThreadPool::DefaultThreads()
  /// (hardware_concurrency). 1 runs inline on the caller.
  int threads = 0;
  /// Live stderr progress line (completed/total, runs/s, ETA) while the
  /// sweep executes. Purely cosmetic: results are identical either way.
  bool progress = false;
  /// Label shown in front of the progress counts.
  std::string progress_label = "runs";
};

/// One completed run: the spec that produced it plus its metrics.
struct RunResult {
  RunSpec spec;
  sim::SimMetrics metrics;
  Seconds wall_seconds;  ///< Host wall time this run took.
};

/// Fans a grid's runs out across a work-stealing thread pool and returns the
/// results ordered by RunSpec::index — i.e. in the grid's deterministic
/// expansion order, regardless of which thread finished which run when.
/// Combined with per-run seeding (a pure function of the grid point), the
/// returned vector is bit-identical at any thread count.
class Runner {
 public:
  explicit Runner(const RunnerOptions& options = {});

  /// Replaces RunDay for a grid point (tests, analysis-only sweeps).
  using RunFn = std::function<sim::SimMetrics(const DayRunConfig&)>;

  /// Like RunFn but handed the whole RunSpec, so the callback can key
  /// per-run side channels (e.g. one EventTracer per spec.index) off the
  /// grid coordinates instead of just the config.
  using RunSpecFn = std::function<sim::SimMetrics(const RunSpec&)>;

  /// Executes every grid point through RunDay.
  std::vector<RunResult> Run(const Grid& grid) const;

  /// Executes every grid point through `fn`. An exception thrown by `fn`
  /// propagates to the caller after all other runs finish (lowest grid
  /// index wins when several throw).
  std::vector<RunResult> Run(const Grid& grid, const RunFn& fn) const;

  /// Spec-aware variant; the other overloads delegate here.
  std::vector<RunResult> RunWithSpecs(const Grid& grid,
                                      const RunSpecFn& fn) const;

  int threads() const { return threads_; }

 private:
  RunnerOptions options_;
  int threads_;
};

/// Per-run JSON log: one object per RunResult carrying the grid coordinates
/// (method, scheme, t_log_min, alpha, replication), the derived seed, the
/// host wall time, and the run's headline metrics (admission counts with the
/// rejection-cause breakdown, latency, estimation success, peak memory).
/// Joins external artifacts — trace files, registry dumps — back to grid
/// points. Deterministic except for the wall_ms field.
std::string RunLogJson(const std::vector<RunResult>& results);

/// Variant with per-run postmortem pointers: `postmortems` maps a run's
/// grid index (RunSpec::index) to the postmortem dump files its black box
/// wrote. Runs with an entry gain a "postmortems": [paths...] field, so a
/// crash/violation dump is joinable back to the exact grid point that
/// produced it; runs without one serialize exactly as before.
std::string RunLogJson(
    const std::vector<RunResult>& results,
    const std::map<std::size_t, std::vector<std::string>>& postmortems);

/// Mean/stddev/CI summary of one metric across a grid point's replications.
/// ci95_half is the normal-approximation half-width 1.96·s/√n (0 for a
/// single replication).
struct MetricSummary {
  std::size_t runs = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double ci95_half = 0.0;
  double min = 0.0;
  double max = 0.0;

  static MetricSummary FromStats(const RunningStats& stats);
};

/// One aggregated grid point: the replication-0 spec (for labeling) plus the
/// summary of `metric` over its replications.
struct AggregateRow {
  RunSpec spec;
  MetricSummary summary;
};

/// Collapses the replication axis: consecutive groups of `replications`
/// results (the innermost axis of Grid expansion) are summarized via
/// common/stats. `results` must be in expansion order, i.e. exactly what
/// Runner::Run returned. Replications are accumulated in expansion order,
/// so the floating-point reduction is deterministic too.
std::vector<AggregateRow> AggregateReplications(
    const std::vector<RunResult>& results, int replications,
    const std::function<double(const RunResult&)>& metric);

/// Column-labeled result table with CSV and JSON emitters. Cells are
/// preformatted strings so harnesses control the exact numeric formatting
/// (the legacy byte-stable CSV layouts).
class Table {
 public:
  explicit Table(std::vector<std::string> columns);

  /// `cells.size()` must equal the column count.
  void AddRow(std::vector<std::string> cells);

  std::size_t row_count() const { return rows_.size(); }

  /// Header line + one line per row, comma-separated.
  std::string ToCsv() const;
  /// JSON array of objects; cells that parse fully as numbers are emitted
  /// unquoted.
  std::string ToJson() const;

  /// Writes CSV (or JSON when `json`) to `out`.
  void Write(std::FILE* out, bool json) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vod::exp

#endif  // VODB_EXP_RUNNER_H_
