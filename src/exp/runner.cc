#include "exp/runner.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>

#include "common/check.h"
#include "exp/thread_pool.h"
#include "obs/clock.h"
#include "obs/metrics_registry.h"
#include "obs/progress.h"

namespace vod::exp {

Runner::Runner(const RunnerOptions& options)
    : options_(options),
      threads_(options.threads > 0 ? options.threads
                                   : ThreadPool::DefaultThreads()) {}

std::vector<RunResult> Runner::Run(const Grid& grid) const {
  return Run(grid, [](const DayRunConfig& cfg) { return RunDay(cfg); });
}

std::vector<RunResult> Runner::Run(const Grid& grid, const RunFn& fn) const {
  return RunWithSpecs(grid,
                      [&fn](const RunSpec& spec) { return fn(spec.config); });
}

std::vector<RunResult> Runner::RunWithSpecs(const Grid& grid,
                                            const RunSpecFn& fn) const {
  const std::vector<RunSpec> specs = grid.Expand();
  std::vector<RunResult> results(specs.size());
  if (specs.empty()) return results;

  std::unique_ptr<obs::ProgressReporter> progress;
  if (options_.progress) {
    progress = std::make_unique<obs::ProgressReporter>(
        specs.size(), options_.progress_label);
  }
  const auto run_one = [&](std::size_t i) {
    const obs::Stopwatch watch;
    results[i].spec = specs[i];
    results[i].metrics = fn(specs[i]);
    results[i].wall_seconds = watch.Elapsed();
    if (progress != nullptr) progress->OnComplete();
  };

  if (threads_ == 1 || specs.size() == 1) {
    // Inline: no pool setup, exceptions propagate directly. Results are
    // identical to the pooled path by construction (pure per-run seeding,
    // index-ordered collection).
    for (std::size_t i = 0; i < specs.size(); ++i) run_one(i);
  } else {
    ThreadPool pool(threads_);
    pool.ParallelFor(specs.size(), run_one);
    pool.PublishStats(obs::MetricsRegistry::Global());
  }
  if (progress != nullptr) progress->Finish();
  return results;
}

std::string RunLogJson(const std::vector<RunResult>& results) {
  return RunLogJson(results, {});
}

std::string RunLogJson(
    const std::vector<RunResult>& results,
    const std::map<std::size_t, std::vector<std::string>>& postmortems) {
  std::string out = "[\n";
  char buf[512];
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    const sim::SimMetrics& m = r.metrics;
    std::snprintf(
        buf, sizeof(buf),
        "  {\"index\": %zu, \"method\": \"%s\", \"scheme\": \"%s\", "
        "\"t_log_min\": %.3f, \"alpha\": %d, \"replication\": %d, "
        "\"seed\": \"%" PRIu64 "\", \"wall_ms\": %.3f,",
        r.spec.index,
        std::string(core::ScheduleMethodName(r.spec.config.method)).c_str(),
        std::string(sim::AllocSchemeName(r.spec.config.scheme)).c_str(),
        ToMinutes(r.spec.config.t_log), r.spec.config.alpha,
        r.spec.replication,
        r.spec.config.seed, ToMilliseconds(r.wall_seconds));
    out += buf;
    std::snprintf(
        buf, sizeof(buf),
        " \"arrivals\": %ld, \"admitted\": %ld, \"rejected\": %ld, "
        "\"rejected_capacity\": %ld, \"rejected_memory\": %ld, "
        "\"rejected_invalid\": %ld, \"deferred\": %ld, \"completed\": %ld, "
        "\"cancelled\": %ld, \"starvations\": %ld, \"services\": %ld,",
        m.arrivals, m.admitted, m.rejected, m.rejected_capacity,
        m.rejected_memory, m.rejected_invalid, m.deferred_admissions,
        m.completed, m.cancelled, m.starvation_events, m.services);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  " \"avg_latency_s\": %.6f, \"success_prob\": %.6f, "
                  "\"peak_memory_mb\": %.3f, \"peak_concurrency\": %d",
                  m.initial_latency.mean(), m.SuccessProbability(),
                  ToMebibytes(Bits(m.memory_usage.max_value())),
                  m.peak_concurrency);
    out += buf;
    const auto pm = postmortems.find(r.spec.index);
    if (pm != postmortems.end() && !pm->second.empty()) {
      out += ", \"postmortems\": [";
      for (std::size_t j = 0; j < pm->second.size(); ++j) {
        if (j > 0) out += ", ";
        out += '"';
        // Filenames are sanitized at write time, but the directory part is
        // caller-supplied — escape the two JSON-hostile characters.
        for (const char c : pm->second[j]) {
          if (c == '"' || c == '\\') out += '\\';
          out += c;
        }
        out += '"';
      }
      out += ']';
    }
    out += '}';
    out += i + 1 < results.size() ? ",\n" : "\n";
  }
  out += "]\n";
  return out;
}

MetricSummary MetricSummary::FromStats(const RunningStats& stats) {
  MetricSummary s;
  s.runs = stats.count();
  s.mean = stats.mean();
  s.stddev = stats.stddev();
  s.ci95_half = stats.count() > 1
                    ? 1.96 * stats.stddev() /
                          std::sqrt(static_cast<double>(stats.count()))
                    : 0.0;
  s.min = stats.min();
  s.max = stats.max();
  return s;
}

std::vector<AggregateRow> AggregateReplications(
    const std::vector<RunResult>& results, int replications,
    const std::function<double(const RunResult&)>& metric) {
  VOD_CHECK(replications > 0);
  VOD_CHECK(results.size() % static_cast<std::size_t>(replications) == 0);
  std::vector<AggregateRow> rows;
  rows.reserve(results.size() / static_cast<std::size_t>(replications));
  for (std::size_t base = 0; base < results.size();
       base += static_cast<std::size_t>(replications)) {
    RunningStats stats;
    for (int r = 0; r < replications; ++r) {
      stats.Add(metric(results[base + static_cast<std::size_t>(r)]));
    }
    rows.push_back({results[base].spec, MetricSummary::FromStats(stats)});
  }
  return rows;
}

Table::Table(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void Table::AddRow(std::vector<std::string> cells) {
  VOD_CHECK(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::ToCsv() const {
  std::string out;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c > 0) out += ',';
    out += columns_[c];
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += row[c];
    }
    out += '\n';
  }
  return out;
}

namespace {

bool IsNumeric(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out += '\\';
    out += ch;
  }
  out += '"';
}

}  // namespace

std::string Table::ToJson() const {
  std::string out = "[\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out += "  {";
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) out += ", ";
      AppendJsonString(out, columns_[c]);
      out += ": ";
      if (IsNumeric(rows_[r][c])) {
        out += rows_[r][c];
      } else {
        AppendJsonString(out, rows_[r][c]);
      }
    }
    out += r + 1 < rows_.size() ? "},\n" : "}\n";
  }
  out += "]\n";
  return out;
}

void Table::Write(std::FILE* out, bool json) const {
  const std::string text = json ? ToJson() : ToCsv();
  std::fwrite(text.data(), 1, text.size(), out);
}

}  // namespace vod::exp
