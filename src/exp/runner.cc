#include "exp/runner.h"

#include <cmath>
#include <cstdlib>
#include <utility>

#include "common/check.h"
#include "exp/thread_pool.h"

namespace vod::exp {

Runner::Runner(const RunnerOptions& options)
    : threads_(options.threads > 0 ? options.threads
                                   : ThreadPool::DefaultThreads()) {}

std::vector<RunResult> Runner::Run(const Grid& grid) const {
  return Run(grid, [](const DayRunConfig& cfg) { return RunDay(cfg); });
}

std::vector<RunResult> Runner::Run(const Grid& grid, const RunFn& fn) const {
  const std::vector<RunSpec> specs = grid.Expand();
  std::vector<RunResult> results(specs.size());
  if (specs.empty()) return results;

  if (threads_ == 1 || specs.size() == 1) {
    // Inline: no pool setup, exceptions propagate directly. Results are
    // identical to the pooled path by construction (pure per-run seeding,
    // index-ordered collection).
    for (std::size_t i = 0; i < specs.size(); ++i) {
      results[i].spec = specs[i];
      results[i].metrics = fn(specs[i].config);
    }
    return results;
  }

  ThreadPool pool(threads_);
  pool.ParallelFor(specs.size(), [&](std::size_t i) {
    results[i].spec = specs[i];
    results[i].metrics = fn(specs[i].config);
  });
  return results;
}

MetricSummary MetricSummary::FromStats(const RunningStats& stats) {
  MetricSummary s;
  s.runs = stats.count();
  s.mean = stats.mean();
  s.stddev = stats.stddev();
  s.ci95_half = stats.count() > 1
                    ? 1.96 * stats.stddev() /
                          std::sqrt(static_cast<double>(stats.count()))
                    : 0.0;
  s.min = stats.min();
  s.max = stats.max();
  return s;
}

std::vector<AggregateRow> AggregateReplications(
    const std::vector<RunResult>& results, int replications,
    const std::function<double(const RunResult&)>& metric) {
  VOD_CHECK(replications > 0);
  VOD_CHECK(results.size() % static_cast<std::size_t>(replications) == 0);
  std::vector<AggregateRow> rows;
  rows.reserve(results.size() / static_cast<std::size_t>(replications));
  for (std::size_t base = 0; base < results.size();
       base += static_cast<std::size_t>(replications)) {
    RunningStats stats;
    for (int r = 0; r < replications; ++r) {
      stats.Add(metric(results[base + static_cast<std::size_t>(r)]));
    }
    rows.push_back({results[base].spec, MetricSummary::FromStats(stats)});
  }
  return rows;
}

Table::Table(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void Table::AddRow(std::vector<std::string> cells) {
  VOD_CHECK(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::ToCsv() const {
  std::string out;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c > 0) out += ',';
    out += columns_[c];
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += row[c];
    }
    out += '\n';
  }
  return out;
}

namespace {

bool IsNumeric(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out += '\\';
    out += ch;
  }
  out += '"';
}

}  // namespace

std::string Table::ToJson() const {
  std::string out = "[\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    out += "  {";
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) out += ", ";
      AppendJsonString(out, columns_[c]);
      out += ": ";
      if (IsNumeric(rows_[r][c])) {
        out += rows_[r][c];
      } else {
        AppendJsonString(out, rows_[r][c]);
      }
    }
    out += r + 1 < rows_.size() ? "},\n" : "}\n";
  }
  out += "]\n";
  return out;
}

void Table::Write(std::FILE* out, bool json) const {
  const std::string text = json ? ToJson() : ToCsv();
  std::fwrite(text.data(), 1, text.size(), out);
}

}  // namespace vod::exp
