#include "exp/thread_pool.h"

#include <algorithm>
#include <exception>
#include <string>
#include <utility>

#include "common/check.h"
#include "obs/clock.h"
#include "obs/metrics_registry.h"

namespace vod::exp {

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = DefaultThreads();
  queues_.reserve(static_cast<std::size_t>(threads));
  counters_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<WorkQueue>());
    counters_.push_back(std::make_unique<WorkerCounters>());
  }
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back(
        [this, i]() { WorkerLoop(static_cast<std::size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(wake_mu_);
    stop_ = true;
  }
  wake_cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

int ThreadPool::DefaultThreads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

void ThreadPool::Enqueue(std::function<void()> task) {
  const std::size_t idx =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  {
    MutexLock lock(queues_[idx]->mu);
    queues_[idx]->tasks.push_back(std::move(task));
    queues_[idx]->max_depth =
        std::max(queues_[idx]->max_depth, queues_[idx]->tasks.size());
  }
  {
    MutexLock lock(wake_mu_);
    ++unclaimed_;
  }
  wake_cv_.NotifyOne();
}

bool ThreadPool::PopOwn(std::size_t idx, std::function<void()>& task) {
  WorkQueue& q = *queues_[idx];
  MutexLock lock(q.mu);
  if (q.tasks.empty()) return false;
  task = std::move(q.tasks.back());  // LIFO on the owner: cache-warm.
  q.tasks.pop_back();
  return true;
}

bool ThreadPool::StealAny(std::size_t idx, std::function<void()>& task) {
  const std::size_t n = queues_.size();
  for (std::size_t off = 1; off <= n; ++off) {
    WorkQueue& q = *queues_[(idx + off) % n];
    MutexLock lock(q.mu);
    if (q.tasks.empty()) continue;
    task = std::move(q.tasks.front());  // FIFO on victims: oldest work first.
    q.tasks.pop_front();
    return true;
  }
  return false;
}

void ThreadPool::WorkerLoop(std::size_t idx) {
  for (;;) {
    {
      MutexLock lock(wake_mu_);
      while (!stop_ && unclaimed_ == 0) wake_cv_.Wait(wake_mu_);
      if (unclaimed_ == 0) return;  // stop_ set and nothing left to drain.
      --unclaimed_;
    }
    // A claim guarantees a task exists in some queue; hunt until found.
    std::function<void()> task;
    bool stolen = false;
    for (;;) {
      if (PopOwn(idx, task)) break;
      if (StealAny(idx, task)) {
        stolen = true;
        break;
      }
      std::this_thread::yield();
    }
    WorkerCounters& wc = *counters_[idx];
    if (stolen) wc.steals.fetch_add(1, std::memory_order_relaxed);
    const std::int64_t t0 = obs::MonotonicNanos();
    task();
    wc.busy_nanos.fetch_add(obs::MonotonicNanos() - t0,
                            std::memory_order_relaxed);
    wc.tasks.fetch_add(1, std::memory_order_relaxed);
  }
}

ThreadPool::PoolStats ThreadPool::Stats() const {
  PoolStats stats;
  stats.workers.reserve(counters_.size());
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    WorkerStats w;
    w.tasks = counters_[i]->tasks.load(std::memory_order_relaxed);
    w.steals = counters_[i]->steals.load(std::memory_order_relaxed);
    w.busy = Seconds(
        static_cast<double>(
            counters_[i]->busy_nanos.load(std::memory_order_relaxed)) *
        1e-9);
    {
      MutexLock lock(queues_[i]->mu);
      w.max_queue_depth = queues_[i]->max_depth;
    }
    stats.total_tasks += w.tasks;
    stats.total_steals += w.steals;
    stats.workers.push_back(w);
  }
  return stats;
}

void ThreadPool::PublishStats(obs::MetricsRegistry& registry,
                              std::string_view prefix) const {
  const PoolStats stats = Stats();
  const std::string p = std::string(prefix) + ".";
  registry.counter(p + "tasks").Increment(stats.total_tasks);
  registry.counter(p + "steals").Increment(stats.total_steals);
  registry.gauge(p + "threads")
      .Set(static_cast<double>(stats.workers.size()));
  obs::Histogram& busy =
      registry.histogram(p + "worker_busy_s", {.lo = 1e-3});
  std::size_t max_depth = 0;
  for (const WorkerStats& w : stats.workers) {
    busy.Add(ToSeconds(w.busy));
    max_depth = std::max(max_depth, w.max_queue_depth);
  }
  registry.gauge(p + "max_queue_depth").Set(static_cast<double>(max_depth));
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(Submit([&fn, i]() { fn(i); }));
  }
  std::exception_ptr first;
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace vod::exp
