#ifndef VODB_EXP_THREAD_POOL_H_
#define VODB_EXP_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace vod::exp {

/// Work-stealing thread pool for fanning independent simulation runs across
/// cores. Each worker owns a deque: it pops its own work LIFO (cache-warm)
/// and steals FIFO from the other workers when its deque drains, so a few
/// long runs (e.g. `--full` 24 h days) cannot strand idle cores behind a
/// round-robin assignment.
///
/// Tasks may throw; the exception is captured in the task's future and
/// rethrown from `get()` (or from ParallelFor), never on the worker thread.
class ThreadPool {
 public:
  /// `threads` <= 0 selects DefaultThreads().
  explicit ThreadPool(int threads = 0);

  /// Drains already-submitted work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return static_cast<int>(workers_.size()); }

  /// hardware_concurrency(), or 1 when the runtime cannot report it.
  static int DefaultThreads();

  /// Enqueues `fn` for execution and returns its future. An exception
  /// escaping `fn` surfaces from future::get().
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    Enqueue([task]() { (*task)(); });
    return fut;
  }

  /// Runs fn(i) for every i in [0, n), blocking until all complete. If any
  /// invocation throws, the lowest-index exception is rethrown here after
  /// every task has finished (no task is abandoned mid-run).
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  struct WorkQueue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void Enqueue(std::function<void()> task);
  bool PopOwn(std::size_t idx, std::function<void()>& task);
  bool StealAny(std::size_t idx, std::function<void()>& task);
  void WorkerLoop(std::size_t idx);

  std::vector<std::unique_ptr<WorkQueue>> queues_;
  std::vector<std::thread> workers_;

  // Every enqueued task bumps unclaimed_; every consumer claims exactly one
  // under wake_mu_ before hunting the queues, so wakeups cannot be lost and
  // a claimed task is guaranteed to exist somewhere.
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::size_t unclaimed_ = 0;
  bool stop_ = false;

  std::atomic<std::size_t> next_queue_{0};
};

}  // namespace vod::exp

#endif  // VODB_EXP_THREAD_POOL_H_
