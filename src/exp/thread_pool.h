#ifndef VODB_EXP_THREAD_POOL_H_
#define VODB_EXP_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <string_view>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/units.h"

namespace vod::obs {
class MetricsRegistry;
}  // namespace vod::obs

namespace vod::exp {

/// Work-stealing thread pool for fanning independent simulation runs across
/// cores. Each worker owns a deque: it pops its own work LIFO (cache-warm)
/// and steals FIFO from the other workers when its deque drains, so a few
/// long runs (e.g. `--full` 24 h days) cannot strand idle cores behind a
/// round-robin assignment.
///
/// Tasks may throw; the exception is captured in the task's future and
/// rethrown from `get()` (or from ParallelFor), never on the worker thread.
class ThreadPool {
 public:
  /// `threads` <= 0 selects DefaultThreads().
  explicit ThreadPool(int threads = 0);

  /// Drains already-submitted work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return static_cast<int>(workers_.size()); }

  /// hardware_concurrency(), or 1 when the runtime cannot report it.
  static int DefaultThreads();

  /// Enqueues `fn` for execution and returns its future. An exception
  /// escaping `fn` surfaces from future::get().
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    Enqueue([task]() { (*task)(); });
    return fut;
  }

  /// Runs fn(i) for every i in [0, n), blocking until all complete. If any
  /// invocation throws, the lowest-index exception is rethrown here after
  /// every task has finished (no task is abandoned mid-run).
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Per-worker execution statistics (observability). `busy` is host wall
  /// time spent inside tasks; `steals` counts tasks this worker took from
  /// another worker's deque; `max_queue_depth` is the deepest this worker's
  /// own deque ever grew.
  struct WorkerStats {
    std::int64_t tasks = 0;
    std::int64_t steals = 0;
    Seconds busy;
    std::size_t max_queue_depth = 0;
  };

  struct PoolStats {
    std::vector<WorkerStats> workers;
    std::int64_t total_tasks = 0;
    std::int64_t total_steals = 0;
  };

  /// Snapshot of the counters so far. Safe to call while tasks run (relaxed
  /// reads; per-worker values may be mid-update but never torn).
  PoolStats Stats() const;

  /// Publishes the snapshot into `registry` under `<prefix>.`: counters
  /// `tasks` and `steals`, a gauge `threads` and `max_queue_depth`, and a
  /// per-worker histogram `worker_busy_s` (one sample per worker, so the
  /// spread exposes load imbalance).
  void PublishStats(obs::MetricsRegistry& registry,
                    std::string_view prefix = "exp.pool") const;

 private:
  /// Lock-order policy: a WorkQueue::mu and wake_mu_ are never held
  /// together — Enqueue and WorkerLoop take them strictly one after the
  /// other (scripts/vodb_lint.py rule `lock-order` keeps it that way).
  struct WorkQueue {
    Mutex mu;
    std::deque<std::function<void()>> tasks VODB_GUARDED_BY(mu);
    std::size_t max_depth VODB_GUARDED_BY(mu) = 0;
  };

  /// Cache-line padded so workers bumping their own counters do not false-
  /// share; relaxed atomics because Stats() only needs eventually-consistent
  /// totals, never ordering.
  struct alignas(64) WorkerCounters {
    std::atomic<std::int64_t> tasks{0};
    std::atomic<std::int64_t> steals{0};
    std::atomic<std::int64_t> busy_nanos{0};
  };

  void Enqueue(std::function<void()> task);
  bool PopOwn(std::size_t idx, std::function<void()>& task);
  bool StealAny(std::size_t idx, std::function<void()>& task);
  void WorkerLoop(std::size_t idx);

  std::vector<std::unique_ptr<WorkQueue>> queues_;
  std::vector<std::unique_ptr<WorkerCounters>> counters_;
  std::vector<std::thread> workers_;

  // Every enqueued task bumps unclaimed_; every consumer claims exactly one
  // under wake_mu_ before hunting the queues, so wakeups cannot be lost and
  // a claimed task is guaranteed to exist somewhere.
  Mutex wake_mu_;
  CondVar wake_cv_;
  std::size_t unclaimed_ VODB_GUARDED_BY(wake_mu_) = 0;
  bool stop_ VODB_GUARDED_BY(wake_mu_) = false;

  std::atomic<std::size_t> next_queue_{0};
};

}  // namespace vod::exp

#endif  // VODB_EXP_THREAD_POOL_H_
