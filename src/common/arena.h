#ifndef VODB_COMMON_ARENA_H_
#define VODB_COMMON_ARENA_H_

// Pool/arena allocation for the simulator hot path. A million-stream day
// allocates and frees per-stream state at event rate; node-per-object
// containers (std::map, std::list) pay a heap round trip plus pointer
// chasing per touch. The types here trade that for chunked slab storage
// with free-list reuse:
//
//  - Pool<T>: fixed-type object pool. Objects live in cache-dense chunks
//    with stable addresses; freed slots are recycled LIFO. High-water and
//    lifetime counters support the conservation audits in tests (live +
//    free == created slots, always). Under AddressSanitizer every freed
//    slot is poisoned until reuse, so a use-after-free of pooled state is
//    caught exactly like a heap use-after-free would be.
//
//  - PooledOrderedMap<T>: the per-stream table. Keys are the simulator's
//    monotonically assigned request ids (small dense integers — the index
//    is a flat vector). Lookup is O(1); iteration follows ascending id via
//    an intrusive list threaded through the pool slots, so range-for sums
//    (floating-point accumulation!) visit streams in the same order a
//    std::map<RequestId, T> would — bit-identical metrics, none of the
//    per-node allocation.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "common/check.h"

#if defined(__SANITIZE_ADDRESS__)
#define VODB_ASAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define VODB_ASAN_ENABLED 1
#endif
#endif
#ifndef VODB_ASAN_ENABLED
#define VODB_ASAN_ENABLED 0
#endif

#if VODB_ASAN_ENABLED
#include <sanitizer/asan_interface.h>
#endif

namespace vod {

namespace arena_internal {

inline void PoisonSlot(void* p, std::size_t bytes) {
  // The 0xDD fill makes a stale read recognizable in a debugger even in
  // builds without ASan; under ASan the region is additionally poisoned so
  // the stale read aborts at the faulting instruction.
  std::memset(p, 0xDD, bytes);
#if VODB_ASAN_ENABLED
  __asan_poison_memory_region(p, bytes);
#endif
}

inline void UnpoisonSlot(void* p, std::size_t bytes) {
#if VODB_ASAN_ENABLED
  __asan_unpoison_memory_region(p, bytes);
#else
  static_cast<void>(p);
  static_cast<void>(bytes);
#endif
}

}  // namespace arena_internal

/// Chunked fixed-type object pool. Addresses are stable for the object's
/// lifetime (chunks never move); destroyed slots are recycled LIFO through
/// a side free list (kept outside the slot memory so freed slots stay fully
/// poisoned). Not thread-safe — one pool per simulator, like every other
/// piece of per-run state.
template <typename T>
class Pool {
 public:
  /// True when freed slots are poisoned such that reads fault (ASan build).
  static constexpr bool kPoisonsFreedSlots = VODB_ASAN_ENABLED != 0;

  explicit Pool(std::size_t chunk_capacity = 256)
      : chunk_capacity_(chunk_capacity) {
    VOD_CHECK(chunk_capacity_ >= 1);
  }

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  ~Pool() {
    // Owners (PooledOrderedMap, tests) destroy their objects first; a live
    // object at pool teardown is a leak of simulator state.
    VOD_CHECK(live_ == 0);
    for (std::byte* chunk : chunks_) {
      arena_internal::UnpoisonSlot(chunk, chunk_capacity_ * sizeof(T));
      ::operator delete(chunk, std::align_val_t{alignof(T)});
    }
  }

  /// Constructs a T in a pooled slot (recycling a freed slot when one
  /// exists) and returns its stable address.
  template <typename... Args>
  T* Create(Args&&... args) {
    void* slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
      arena_internal::UnpoisonSlot(slot, sizeof(T));
    } else {
      if (next_slot_ == chunk_capacity_ || chunks_.empty()) {
        auto* chunk = static_cast<std::byte*>(::operator new(
            chunk_capacity_ * sizeof(T), std::align_val_t{alignof(T)}));
        chunks_.push_back(chunk);
        next_slot_ = 0;
      }
      slot = chunks_.back() + next_slot_ * sizeof(T);
      ++next_slot_;
    }
    T* obj = ::new (slot) T(std::forward<Args>(args)...);
    ++live_;
    ++total_created_;
    if (live_ > high_water_) high_water_ = live_;
    return obj;
  }

  /// Destroys a pooled object and poisons its slot until reuse.
  void Destroy(T* obj) {
    VOD_CHECK(obj != nullptr && live_ > 0);
    obj->~T();
    free_.push_back(obj);
    arena_internal::PoisonSlot(static_cast<void*>(obj), sizeof(T));
    --live_;
  }

  /// Whether `p` points into one of this pool's chunks (diagnostics only;
  /// does not distinguish live from freed slots).
  bool Owns(const T* p) const {
    const auto* b = reinterpret_cast<const std::byte*>(p);
    for (const std::byte* chunk : chunks_) {
      if (b >= chunk && b < chunk + chunk_capacity_ * sizeof(T)) return true;
    }
    return false;
  }

  std::size_t live() const { return live_; }
  std::size_t high_water() const { return high_water_; }
  std::size_t total_created() const { return total_created_; }
  std::size_t free_slots() const { return free_.size(); }
  std::size_t chunk_count() const { return chunks_.size(); }
  std::size_t chunk_capacity() const { return chunk_capacity_; }
  /// Slots ever carved from chunks. Invariant: live() + free_slots() ==
  /// slots_carved() — the pool-side face of the conservation audits.
  std::size_t slots_carved() const {
    if (chunks_.empty()) return 0;
    return (chunks_.size() - 1) * chunk_capacity_ + next_slot_;
  }
  /// Bytes the chunks hold (capacity, not live bytes).
  std::size_t capacity_bytes() const {
    return chunks_.size() * chunk_capacity_ * sizeof(T);
  }

 private:
  std::size_t chunk_capacity_;
  std::vector<std::byte*> chunks_;
  std::size_t next_slot_ = 0;  ///< Next unused slot in chunks_.back().
  std::vector<void*> free_;    ///< Recycled slots, LIFO.
  std::size_t live_ = 0;
  std::size_t high_water_ = 0;
  std::size_t total_created_ = 0;
};

/// Pool-backed map from small dense integer ids to T, iterated in ascending
/// id order. Built for the simulator's request table: ids are assigned
/// monotonically (so inserts append in O(1)), erases are O(1), lookups are a
/// flat-vector index, and iteration order matches std::map's — which keeps
/// order-sensitive floating-point reductions over live streams bit-identical
/// to the node-based container this replaces.
template <typename T>
class PooledOrderedMap {
 public:
  struct Node {
    std::uint64_t id = 0;
    T value{};

   private:
    Node* prev = nullptr;
    Node* next = nullptr;
    friend class PooledOrderedMap;
  };

  explicit PooledOrderedMap(std::size_t chunk_capacity = 256)
      : pool_(chunk_capacity) {}

  PooledOrderedMap(const PooledOrderedMap&) = delete;
  PooledOrderedMap& operator=(const PooledOrderedMap&) = delete;

  ~PooledOrderedMap() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next;
      pool_.Destroy(n);
      n = next;
    }
  }

  /// Inserts `value` under `id` (which must not be present) and returns the
  /// stored copy. Ascending-id inserts (the simulator's pattern) append in
  /// O(1); out-of-order ids walk backwards from the tail to keep the list
  /// id-sorted.
  T& Insert(std::uint64_t id, T value) {
    EnsureIndex(id);
    VOD_CHECK(index_[id] == nullptr);
    Node* node = pool_.Create();
    node->id = id;
    node->value = std::move(value);
    Node* after = tail_;  // Insert after `after` (nullptr = at head).
    while (after != nullptr && after->id > id) after = after->prev;
    node->prev = after;
    node->next = after == nullptr ? head_ : after->next;
    if (node->next != nullptr) node->next->prev = node;
    if (after != nullptr) {
      after->next = node;
    } else {
      head_ = node;
    }
    if (node->next == nullptr) tail_ = node;
    index_[id] = node;
    ++size_;
    return node->value;
  }

  T* Find(std::uint64_t id) {
    Node* n = id < index_.size() ? index_[id] : nullptr;
    return n != nullptr ? &n->value : nullptr;
  }
  const T* Find(std::uint64_t id) const {
    const Node* n = id < index_.size() ? index_[id] : nullptr;
    return n != nullptr ? &n->value : nullptr;
  }
  bool Contains(std::uint64_t id) const {
    return id < index_.size() && index_[id] != nullptr;
  }

  /// Destroys the entry for `id`; false when absent. The slot is poisoned
  /// until the pool recycles it.
  bool Erase(std::uint64_t id) {
    Node* n = id < index_.size() ? index_[id] : nullptr;
    if (n == nullptr) return false;
    if (n->prev != nullptr) {
      n->prev->next = n->next;
    } else {
      head_ = n->next;
    }
    if (n->next != nullptr) {
      n->next->prev = n->prev;
    } else {
      tail_ = n->prev;
    }
    index_[id] = nullptr;
    pool_.Destroy(n);
    --size_;
    return true;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const Pool<Node>& pool() const { return pool_; }

  template <typename NodeT>
  class Iterator {
   public:
    explicit Iterator(NodeT* n) : n_(n) {}
    NodeT& operator*() const { return *n_; }
    NodeT* operator->() const { return n_; }
    Iterator& operator++() {
      n_ = n_->next;
      return *this;
    }
    bool operator==(const Iterator& o) const { return n_ == o.n_; }
    bool operator!=(const Iterator& o) const { return n_ != o.n_; }

   private:
    NodeT* n_;
  };

  using iterator = Iterator<Node>;
  using const_iterator = Iterator<const Node>;

  iterator begin() { return iterator(head_); }
  iterator end() { return iterator(nullptr); }
  const_iterator begin() const { return const_iterator(head_); }
  const_iterator end() const { return const_iterator(nullptr); }

 private:
  void EnsureIndex(std::uint64_t id) {
    if (id < index_.size()) return;
    std::size_t n = index_.empty() ? 64 : index_.size();
    while (n <= id) n *= 2;
    index_.resize(n, nullptr);
  }

  Pool<Node> pool_;
  std::vector<Node*> index_;
  Node* head_ = nullptr;
  Node* tail_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace vod

#endif  // VODB_COMMON_ARENA_H_
