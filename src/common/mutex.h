#ifndef VODB_COMMON_MUTEX_H_
#define VODB_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace vod {

/// Annotated wrapper over std::mutex. Using this (rather than std::mutex
/// directly) is what lets Clang's thread-safety analysis see acquisitions:
/// a field declared `VODB_GUARDED_BY(mu_)` is then compile-time-checked to
/// be touched only under `mu_`. All library code under src/ uses
/// vod::Mutex; std::mutex remains only inside this wrapper.
class VODB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() VODB_ACQUIRE() { mu_.lock(); }
  void Unlock() VODB_RELEASE() { mu_.unlock(); }
  bool TryLock() VODB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII scoped acquisition of a vod::Mutex (the std::lock_guard analogue
/// the analysis understands).
class VODB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) VODB_ACQUIRE(mu) : mu_(&mu) { mu_->Lock(); }
  ~MutexLock() VODB_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable paired with vod::Mutex. Wait() requires the caller
/// to hold the mutex (typically via MutexLock); it releases for the wait
/// and reacquires before returning, exactly like std::condition_variable.
/// Spurious wakeups are possible — always wait in a predicate loop:
///
///   MutexLock lock(mu_);
///   while (!ready_) cv_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified (or spuriously), and
  /// reacquires `mu` before returning.
  void Wait(Mutex& mu) VODB_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    // The MutexLock (or manual Lock) that owns `mu` will release it;
    // keep the unique_lock from double-unlocking.
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace vod

#endif  // VODB_COMMON_MUTEX_H_
