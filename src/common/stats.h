#ifndef VODB_COMMON_STATS_H_
#define VODB_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace vod {

/// Streaming summary statistics (Welford's algorithm). Numerically stable
/// for long simulation runs where naive sum-of-squares would lose precision.
class RunningStats {
 public:
  RunningStats() = default;

  void Add(double x);
  /// Merges another accumulator into this one (parallel reduction).
  void Merge(const RunningStats& other);
  void Reset();

  std::size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 if fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp into the
/// first/last bucket. Supports quantile queries by linear interpolation
/// within the bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void Add(double x);
  std::size_t count() const { return total_; }
  /// q in [0,1]; returns an interpolated quantile estimate. Returns 0 when
  /// the histogram is empty.
  double Quantile(double q) const;
  double mean() const { return stats_.mean(); }
  double max() const { return stats_.max(); }
  const std::vector<std::size_t>& buckets() const { return counts_; }

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  RunningStats stats_;
};

/// Piecewise-constant time series sampler: records (time, value) points and
/// answers max/mean-over-time queries. Used to track concurrency and memory
/// usage over a simulated day.
class StepTimeSeries {
 public:
  /// Records that the tracked value became `value` at time `t`. Times must
  /// be non-decreasing.
  void Record(double t, double value);

  bool empty() const { return points_.empty(); }
  double max_value() const { return max_value_; }
  /// Time-weighted mean of the signal between the first record and `end`.
  double TimeWeightedMean(double end) const;
  /// Value in effect at time `t` (last record at or before t; 0 before the
  /// first record).
  double ValueAt(double t) const;
  /// Maximum value attained in the half-open window [t0, t1). Considers the
  /// value in effect at t0.
  double MaxInWindow(double t0, double t1) const;
  const std::vector<std::pair<double, double>>& points() const {
    return points_;
  }

 private:
  std::vector<std::pair<double, double>> points_;
  double max_value_ = 0.0;
};

}  // namespace vod

#endif  // VODB_COMMON_STATS_H_
