#ifndef VODB_COMMON_TYPES_H_
#define VODB_COMMON_TYPES_H_

#include <cstdint>

namespace vod {

/// Identifies one user request (one viewing session) across the library.
using RequestId = std::uint64_t;

constexpr RequestId kInvalidRequestId = 0;

}  // namespace vod

#endif  // VODB_COMMON_TYPES_H_
