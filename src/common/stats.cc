#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace vod {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::Reset() { *this = RunningStats(); }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  VOD_CHECK(hi > lo);
  VOD_CHECK(buckets > 0);
}

void Histogram::Add(double x) {
  stats_.Add(x);
  double idx = (x - lo_) / width_;
  std::size_t bucket;
  if (idx < 0.0) {
    bucket = 0;
  } else if (idx >= static_cast<double>(counts_.size())) {
    bucket = counts_.size() - 1;
  } else {
    bucket = static_cast<std::size_t>(idx);
  }
  ++counts_[bucket];
  ++total_;
}

double Histogram::Quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target) {
      // Interpolate within bucket i.
      const double frac =
          counts_[i] == 0
              ? 0.0
              : (target - cumulative) / static_cast<double>(counts_[i]);
      return lo_ + (static_cast<double>(i) + frac) * width_;
    }
    cumulative = next;
  }
  return hi_;
}

void StepTimeSeries::Record(double t, double value) {
  VOD_DCHECK(points_.empty() || t >= points_.back().first);
  if (points_.empty()) {
    max_value_ = value;
  } else {
    max_value_ = std::max(max_value_, value);
  }
  points_.emplace_back(t, value);
}

double StepTimeSeries::TimeWeightedMean(double end) const {
  if (points_.empty()) return 0.0;
  double area = 0.0;
  for (std::size_t i = 0; i + 1 < points_.size(); ++i) {
    area += points_[i].second * (points_[i + 1].first - points_[i].first);
  }
  area += points_.back().second * (end - points_.back().first);
  const double span = end - points_.front().first;
  return span > 0.0 ? area / span : points_.front().second;
}

double StepTimeSeries::ValueAt(double t) const {
  if (points_.empty() || t < points_.front().first) return 0.0;
  // Binary search for the last point with time <= t.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](double lhs, const std::pair<double, double>& p) {
        return lhs < p.first;
      });
  return std::prev(it)->second;
}

double StepTimeSeries::MaxInWindow(double t0, double t1) const {
  if (points_.empty()) return 0.0;
  double best = ValueAt(t0);
  auto it = std::lower_bound(
      points_.begin(), points_.end(), t0,
      [](const std::pair<double, double>& p, double rhs) {
        return p.first < rhs;
      });
  for (; it != points_.end() && it->first < t1; ++it) {
    best = std::max(best, it->second);
  }
  return best;
}

}  // namespace vod
