#ifndef VODB_COMMON_CHECK_H_
#define VODB_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Internal invariant checks. VOD_CHECK is always on (used for conditions
/// whose violation means memory-unsafe continuation); VOD_DCHECK compiles
/// out in NDEBUG builds. Public-API argument validation uses Status instead
/// (see common/status.h) — these macros are for library bugs only.

#define VOD_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "VOD_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#ifdef NDEBUG
#define VOD_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define VOD_DCHECK(cond) VOD_CHECK(cond)
#endif

#endif  // VODB_COMMON_CHECK_H_
