#ifndef VODB_COMMON_STATUS_H_
#define VODB_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace vod {

/// Error codes used across the library. Modeled after the Status idiom used
/// by storage systems (RocksDB/Arrow): the public API never throws; fallible
/// operations return a Status or a Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller supplied a parameter outside its domain.
  kOutOfRange,        ///< A value exceeded a structural bound (e.g. n > N).
  kCapacityExceeded,  ///< Admission denied: disk or memory capacity full.
  kDeferred,          ///< Admission deferred to a later service period.
  kFailedPrecondition,///< Operation invalid in the current state.
  kNotFound,          ///< Referenced entity (request, video) does not exist.
  kInternal,          ///< Invariant violation; indicates a library bug.
};

/// Returns a stable human-readable name for `code` ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A cheap, copyable success-or-error value.
///
/// The OK status carries no message and allocates nothing. Error statuses
/// carry a code and a free-form message describing the failure.
///
/// [[nodiscard]] on the class makes every function returning a Status by
/// value warn when the caller drops the result on the floor — errors must
/// be propagated, checked, or discarded explicitly with a void cast.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status Deferred(std::string msg) {
    return Status(StatusCode::kDeferred, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status. Inspect with ok();
/// value() must only be called when ok() is true. [[nodiscard]] as with
/// Status: a dropped Result silently swallows both the value and the error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value: allows `return computed_value;`.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status: allows `return Status::InvalidArgument(..)`.
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    // An OK status without a value is meaningless; normalize to an error so
    // misuse is detectable rather than silent.
    if (std::get<Status>(payload_).ok()) {
      payload_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const T& value() const& { return std::get<T>(payload_); }
  T& value() & { return std::get<T>(payload_); }
  T&& value() && { return std::get<T>(std::move(payload_)); }

  /// Returns the stored value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(payload_) : std::move(fallback);
  }

  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(payload_);
  }

  const T& operator*() const& { return value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace vod

/// Propagates an error status out of the enclosing function.
#define VOD_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::vod::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                   \
  } while (0)

#endif  // VODB_COMMON_STATUS_H_
