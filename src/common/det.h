#ifndef VODB_COMMON_DET_H_
#define VODB_COMMON_DET_H_

#include <algorithm>
#include <cstdio>
#include <functional>
#include <iterator>
#include <vector>

#include "common/check.h"

/// Determinism helpers for output channels (CSV, JSON, traces, golden
/// metrics). The repo's bit-reproducibility guarantee — identical bytes at
/// any thread count — dies the moment an output iterates a hash container
/// in bucket order. Two defenses:
///
///   * `SortedKeys` / `SortedItemPtrs` turn any associative container into
///     a key-sorted sequence before emission (the only sanctioned way to
///     iterate an unordered container into an output channel; the
///     `unordered-iteration` rule in scripts/vodb_lint.py flags everything
///     else).
///   * `AuditOrderedOutput` is the runtime half: output sites assert, under
///     VODB_AUDIT (default ON), that the key sequence they are about to
///     emit is strictly increasing — catching both unordered iteration and
///     ambiguous duplicate keys even when the container type changes later.

namespace vod::det {

/// The container's keys, sorted ascending. One copy + one sort — meant for
/// output paths, not hot loops.
template <class Map>
std::vector<typename Map::key_type> SortedKeys(const Map& m) {
  std::vector<typename Map::key_type> keys;
  keys.reserve(m.size());
  for (const auto& kv : m) keys.push_back(kv.first);
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// Pointers to the container's entries, sorted by key ascending. Values
/// are not copied (works for move-only mapped types like unique_ptr).
template <class Map>
std::vector<const typename Map::value_type*> SortedItemPtrs(const Map& m) {
  std::vector<const typename Map::value_type*> items;
  items.reserve(m.size());
  for (const auto& kv : m) items.push_back(&kv);
  std::sort(items.begin(), items.end(),
            [](const typename Map::value_type* a,
               const typename Map::value_type* b) {
              return a->first < b->first;
            });
  return items;
}

#if VODB_AUDIT_ENABLED
/// Aborts unless `keys` is strictly increasing under `less`. `channel`
/// names the output stream in the failure message ("metrics.json", ...).
/// Strictness matters: equal adjacent keys mean the emission order between
/// them is arbitrary, which is the same nondeterminism in disguise.
template <class Range, class Less = std::less<>>
void AuditOrderedOutput(const Range& keys, const char* channel,
                        Less less = Less()) {
  auto it = std::begin(keys);
  const auto end = std::end(keys);
  if (it == end) return;
  auto prev = it;
  for (++it; it != end; ++prev, ++it) {
    if (!less(*prev, *it)) {
      std::fprintf(stderr,
                   "determinism audit: output channel '%s' emits keys out "
                   "of (strict) order\n",
                   channel);
      VOD_CHECK(less(*prev, *it));
    }
  }
}
#else
template <class Range, class Less = std::less<>>
void AuditOrderedOutput(const Range&, const char*, Less = Less()) {}
#endif

/// Audits a map-like container's *natural iteration order* — the order an
/// emitter's range-for will see. Passes for std::map; fires the moment the
/// container is swapped for a hash map (whose bucket order depends on seed,
/// libc++ vs libstdc++, and insertion history).
template <class Map>
void AuditOrderedKeys(const Map& m, const char* channel) {
#if VODB_AUDIT_ENABLED
  std::vector<typename Map::key_type> keys;
  keys.reserve(m.size());
  for (const auto& kv : m) keys.push_back(kv.first);
  AuditOrderedOutput(keys, channel);
#else
  (void)m;
  (void)channel;
#endif
}

}  // namespace vod::det

#endif  // VODB_COMMON_DET_H_
