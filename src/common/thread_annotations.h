#ifndef VODB_COMMON_THREAD_ANNOTATIONS_H_
#define VODB_COMMON_THREAD_ANNOTATIONS_H_

/// Clang Thread-Safety-Analysis capability annotations.
///
/// These macros attach lock-discipline contracts to types, fields, and
/// functions so that `clang -Wthread-safety` (enabled via the
/// VODB_THREAD_SAFETY CMake option, -Werror under vodb_strict) rejects at
/// compile time the races TSan can only hope to catch at runtime:
///
///   * a field read or written without its guarding mutex held,
///   * a function called without the capability its contract requires,
///   * a scoped lock released twice or leaked across a branch.
///
/// Conventions (enforced by `scripts/vodb_lint.py` rule
/// `unannotated-shared-state` even on non-Clang builds):
///
///   * Every field protected by a `vod::Mutex` carries
///     `VODB_GUARDED_BY(mu)` on its declaration.
///   * `std::atomic<T>` fields are self-annotating (the type is the
///     contract) and take no capability macro.
///   * Private helpers that expect the caller to hold a lock are annotated
///     `VODB_REQUIRES(mu)` instead of re-locking.
///
/// On non-Clang compilers (the dev container ships GCC) every macro
/// expands to nothing; the annotations are free documentation.

#if defined(__clang__)
#define VODB_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define VODB_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

/// Declares a type to be a capability ("mutex" in error messages).
#define VODB_CAPABILITY(x) VODB_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define VODB_SCOPED_CAPABILITY \
  VODB_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Field `x` may only be touched while holding the given capability.
#define VODB_GUARDED_BY(x) VODB_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// The *pointee* of this pointer field is protected by the capability.
#define VODB_PT_GUARDED_BY(x) \
  VODB_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Lock-order edges: this capability must be acquired before/after those.
#define VODB_ACQUIRED_BEFORE(...) \
  VODB_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define VODB_ACQUIRED_AFTER(...) \
  VODB_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

/// The function may only be called while holding the capabilities.
#define VODB_REQUIRES(...) \
  VODB_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define VODB_REQUIRES_SHARED(...) \
  VODB_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// The function acquires/releases the capability and does not release/
/// reacquire it before returning.
#define VODB_ACQUIRE(...) \
  VODB_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define VODB_ACQUIRE_SHARED(...) \
  VODB_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))
#define VODB_RELEASE(...) \
  VODB_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define VODB_RELEASE_SHARED(...) \
  VODB_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

/// The function tries to acquire the capability and returns `ret` on
/// success.
#define VODB_TRY_ACQUIRE(...) \
  VODB_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// The caller must NOT hold the capability (non-reentrancy contract).
#define VODB_EXCLUDES(...) \
  VODB_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Asserts (at runtime, for the analysis) that the capability is held.
#define VODB_ASSERT_CAPABILITY(x) \
  VODB_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

/// The function returns a reference to the named capability.
#define VODB_RETURN_CAPABILITY(x) \
  VODB_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: the function's body is exempt from analysis. Every use
/// must carry a comment explaining why the analysis cannot see the truth.
#define VODB_NO_THREAD_SAFETY_ANALYSIS \
  VODB_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // VODB_COMMON_THREAD_ANNOTATIONS_H_
