#ifndef VODB_COMMON_UNITS_H_
#define VODB_COMMON_UNITS_H_

namespace vod {

/// The paper's math is rate-based: data sizes in bits, rates in bits/second,
/// times in seconds. We follow that convention throughout the library and
/// provide conversion helpers here so call sites stay readable.
///
/// All quantities are doubles: buffer sizes are "variable length" (Sec. 2.1
/// assumes allocation by variable-length unit, not pages), so fractional
/// bits from the closed forms are kept exact rather than rounded.

using Seconds = double;
using Bits = double;
using BitsPerSecond = double;

constexpr double kKilo = 1e3;
constexpr double kMega = 1e6;
constexpr double kGiga = 1e9;

constexpr Bits Megabits(double mb) { return mb * kMega; }
constexpr Bits Gigabits(double gb) { return gb * kGiga; }
constexpr Bits Bytes(double b) { return b * 8.0; }
constexpr Bits Kilobytes(double kb) { return kb * 8.0 * 1024.0; }
constexpr Bits Megabytes(double mb) { return mb * 8.0 * 1024.0 * 1024.0; }
constexpr Bits Gigabytes(double gb) {
  return gb * 8.0 * 1024.0 * 1024.0 * 1024.0;
}

constexpr double ToMegabits(Bits b) { return b / kMega; }
constexpr double ToBytes(Bits b) { return b / 8.0; }
constexpr double ToMegabytes(Bits b) { return b / (8.0 * 1024.0 * 1024.0); }
constexpr double ToGigabytes(Bits b) {
  return b / (8.0 * 1024.0 * 1024.0 * 1024.0);
}

constexpr BitsPerSecond Mbps(double r) { return r * kMega; }

constexpr Seconds Milliseconds(double ms) { return ms / kKilo; }
constexpr Seconds Minutes(double m) { return m * 60.0; }
constexpr Seconds Hours(double h) { return h * 3600.0; }

constexpr double ToMilliseconds(Seconds s) { return s * kKilo; }
constexpr double ToMinutes(Seconds s) { return s / 60.0; }
constexpr double ToHours(Seconds s) { return s / 3600.0; }

}  // namespace vod

#endif  // VODB_COMMON_UNITS_H_
