#ifndef VODB_COMMON_UNITS_H_
#define VODB_COMMON_UNITS_H_

#include <compare>
#include <limits>

namespace vod {

/// The paper's math is rate-based: data sizes in bits, rates in bits/second,
/// times in seconds. We follow that convention throughout the library and
/// make it compile-time checked: `Bits`, `Seconds`, and `BitsPerSecond` are
/// distinct `Quantity` instantiations whose dimension exponents the compiler
/// tracks through every arithmetic expression. `Bits / Seconds` *is* a
/// `BitsPerSecond`, `BitsPerSecond * Seconds` collapses back to `Bits`, and
/// `Bits + Seconds` — or passing a rate where a size is expected — fails to
/// compile. Fully-cancelled results (`Bits / Bits`, `cr / tr`) decay to
/// plain `double`, so ratios feed `std::pow`/`std::ceil` naturally.
///
/// All magnitudes are doubles: buffer sizes are "variable length" (Sec. 2.1
/// assumes allocation by variable-length unit, not pages), so fractional
/// bits from the closed forms are kept exact rather than rounded.
///
/// Escape hatch: `.value()` reads the raw double. It is sanctioned only at
/// I/O and stats boundaries (printf/CSV/JSON emitters, RunningStats /
/// Histogram accumulators, RNG draws); inside formula code, use the typed
/// arithmetic. Serialization code should prefer the named conversions
/// (`ToMegabits`, `ToMilliseconds`, ...) so the emitted unit is visible at
/// the call site.

namespace units_internal {

/// Compile-time dimension vector: exponents over the (data, time, count)
/// axes. bits = <1,0,0>, seconds = <0,1,0>, bits/second = <1,-1,0>,
/// requests = <0,0,1>.
template <int DataExp, int TimeExp, int CountExp>
struct Dim {
  static constexpr int kData = DataExp;
  static constexpr int kTime = TimeExp;
  static constexpr int kCount = CountExp;
};

template <typename A, typename B>
using DimProduct =
    Dim<A::kData + B::kData, A::kTime + B::kTime, A::kCount + B::kCount>;

template <typename A, typename B>
using DimQuotient =
    Dim<A::kData - B::kData, A::kTime - B::kTime, A::kCount - B::kCount>;

template <typename D>
inline constexpr bool kIsDimensionless =
    D::kData == 0 && D::kTime == 0 && D::kCount == 0;

}  // namespace units_internal

/// A double tagged with a compile-time dimension. Zero-overhead: one double
/// member, every operation constexpr and inlineable, no virtuals, trivially
/// copyable — the golden-metrics and bench baselines are byte-identical to
/// the raw-double implementation this replaced.
///
/// Construction from double is explicit and reading the raw double requires
/// `.value()`, so units can neither silently enter nor silently leave the
/// typed domain. Same-dimension quantities add, subtract, and compare;
/// scalars multiply/divide either side; cross-dimension `*` and `/` combine
/// exponents (collapsing to plain double when everything cancels).
template <typename D>
class Quantity {
 public:
  using Dimension = D;

  constexpr Quantity() = default;
  constexpr explicit Quantity(double value) : value_(value) {}

  /// The raw magnitude. Boundary escape hatch — see the header comment.
  constexpr double value() const { return value_; }

  static constexpr Quantity Infinity() {
    return Quantity(std::numeric_limits<double>::infinity());
  }

  constexpr Quantity& operator+=(Quantity other) {
    value_ += other.value_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity other) {
    value_ -= other.value_;
    return *this;
  }
  constexpr Quantity& operator*=(double s) {
    value_ *= s;
    return *this;
  }
  constexpr Quantity& operator/=(double s) {
    value_ /= s;
    return *this;
  }

  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    return Quantity(a.value_ + b.value_);
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    return Quantity(a.value_ - b.value_);
  }
  friend constexpr Quantity operator-(Quantity a) {
    return Quantity(-a.value_);
  }
  friend constexpr Quantity operator*(Quantity q, double s) {
    return Quantity(q.value_ * s);
  }
  friend constexpr Quantity operator*(double s, Quantity q) {
    return Quantity(s * q.value_);
  }
  friend constexpr Quantity operator/(Quantity q, double s) {
    return Quantity(q.value_ / s);
  }

  // Spelled-out comparisons instead of a defaulted operator<=>: the
  // defaulted spaceship routes every compare through std::partial_ordering,
  // which GCC does not collapse back to a bare double compare — measured
  // +20 ns/iter on the event-queue churn benchmark, the simulator's
  // hottest comparator. These compile to single ucomisd instructions.
  friend constexpr bool operator==(Quantity a, Quantity b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(Quantity a, Quantity b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(Quantity a, Quantity b) {
    return a.value_ < b.value_;
  }
  friend constexpr bool operator>(Quantity a, Quantity b) {
    return a.value_ > b.value_;
  }
  friend constexpr bool operator<=(Quantity a, Quantity b) {
    return a.value_ <= b.value_;
  }
  friend constexpr bool operator>=(Quantity a, Quantity b) {
    return a.value_ >= b.value_;
  }

 private:
  double value_ = 0.0;
};

/// Dimension-combining multiply: Bits * double-per-bit cancellations and
/// rate * time products resolve at compile time. A fully-cancelled result
/// decays to double.
template <typename DA, typename DB>
constexpr auto operator*(Quantity<DA> a, Quantity<DB> b) {
  using R = units_internal::DimProduct<DA, DB>;
  if constexpr (units_internal::kIsDimensionless<R>) {
    return a.value() * b.value();
  } else {
    return Quantity<R>(a.value() * b.value());
  }
}

/// Dimension-combining divide: `Bits / Seconds` is BitsPerSecond,
/// `Bits / Bits` is a plain double ratio.
template <typename DA, typename DB>
constexpr auto operator/(Quantity<DA> a, Quantity<DB> b) {
  using R = units_internal::DimQuotient<DA, DB>;
  if constexpr (units_internal::kIsDimensionless<R>) {
    return a.value() / b.value();
  } else {
    return Quantity<R>(a.value() / b.value());
  }
}

/// scalar / quantity inverts the dimension (1.0 / Seconds = a frequency).
template <typename D>
constexpr auto operator/(double s, Quantity<D> q) {
  using Zero = units_internal::Dim<0, 0, 0>;
  return Quantity<units_internal::DimQuotient<Zero, D>>(s / q.value());
}

/// Dimension-preserving absolute value (std::abs does not accept Quantity).
template <typename D>
constexpr Quantity<D> Abs(Quantity<D> q) {
  return q.value() < 0.0 ? -q : q;
}

using Seconds = Quantity<units_internal::Dim<0, 1, 0>>;
using Bits = Quantity<units_internal::Dim<1, 0, 0>>;
using BitsPerSecond = Quantity<units_internal::Dim<1, -1, 0>>;

/// The count axis: whole requests/streams, and arrival intensities. Kept
/// for APIs that deal in request counts per unit time (arrival-rate
/// profiles, admission bookkeeping) so they never mix with data rates.
using Requests = Quantity<units_internal::Dim<0, 0, 1>>;
using RequestsPerSecond = Quantity<units_internal::Dim<0, -1, 1>>;

constexpr double kKilo = 1e3;
constexpr double kMega = 1e6;
constexpr double kGiga = 1e9;

constexpr Bits Megabits(double mb) { return Bits(mb * kMega); }
constexpr Bits Gigabits(double gb) { return Bits(gb * kGiga); }
constexpr Bits Bytes(double b) { return Bits(b * 8.0); }

/// Byte helpers are binary (IEC): 1 KiB = 1024 B, matching how the paper's
/// disk capacities and memory budgets are quoted. The bit helpers above are
/// decimal (SI), matching how transfer rates are quoted (Mbps = 1e6 b/s).
/// The names say which is which — `Mebibytes(1)` is 2^20 bytes, while
/// `Megabits(1)` is 1e6 bits.
constexpr Bits Kibibytes(double kib) { return Bits(kib * 8.0 * 1024.0); }
constexpr Bits Mebibytes(double mib) {
  return Bits(mib * 8.0 * 1024.0 * 1024.0);
}
constexpr Bits Gibibytes(double gib) {
  return Bits(gib * 8.0 * 1024.0 * 1024.0 * 1024.0);
}

constexpr double ToBits(Bits b) { return b.value(); }
constexpr double ToMegabits(Bits b) { return b.value() / kMega; }
constexpr double ToBytes(Bits b) { return b.value() / 8.0; }
constexpr double ToMebibytes(Bits b) {
  return b.value() / (8.0 * 1024.0 * 1024.0);
}
constexpr double ToGibibytes(Bits b) {
  return b.value() / (8.0 * 1024.0 * 1024.0 * 1024.0);
}

constexpr BitsPerSecond Mbps(double r) { return BitsPerSecond(r * kMega); }
constexpr double ToMbps(BitsPerSecond r) { return r.value() / kMega; }

constexpr Seconds Milliseconds(double ms) { return Seconds(ms / kKilo); }
constexpr Seconds Minutes(double m) { return Seconds(m * 60.0); }
constexpr Seconds Hours(double h) { return Seconds(h * 3600.0); }

constexpr double ToSeconds(Seconds s) { return s.value(); }
constexpr double ToMilliseconds(Seconds s) { return s.value() * kKilo; }
constexpr double ToMinutes(Seconds s) { return s.value() / 60.0; }
constexpr double ToHours(Seconds s) { return s.value() / 3600.0; }

}  // namespace vod

#endif  // VODB_COMMON_UNITS_H_
