#include "sim/multi_disk.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.h"

namespace vod::sim {

MultiDiskSimulator::MultiDiskSimulator(
    std::unique_ptr<AnalyticMemoryBroker> broker,
    std::vector<std::unique_ptr<ShardBrokerView>> views,
    std::vector<std::unique_ptr<VodSimulator>> sims)
    : broker_(std::move(broker)),
      views_(std::move(views)),
      sims_(std::move(sims)) {}

Result<std::unique_ptr<MultiDiskSimulator>> MultiDiskSimulator::Create(
    const SimConfig& base, int disk_count, Bits memory_capacity) {
  if (disk_count < 1) return Status::InvalidArgument("need >= 1 disk");
  if (memory_capacity <= Bits(0)) {
    return Status::InvalidArgument("memory capacity must be > 0");
  }
  VOD_RETURN_IF_ERROR(base.Validate());

  const int n_for_dl =
      base.method == core::ScheduleMethod::kGss
          ? base.gss_group_size
          : core::MaxConcurrentRequests(base.profile.transfer_rate,
                                        base.consumption_rate);
  Result<core::AllocParams> params =
      core::MakeAllocParams(base.profile, base.consumption_rate, base.method,
                            n_for_dl, base.alpha);
  if (!params.ok()) return params.status();

  auto broker = std::make_unique<AnalyticMemoryBroker>(
      *params, base.method, base.scheme == AllocScheme::kDynamic,
      base.gss_group_size, disk_count, memory_capacity);
  // All disks share one injector (carried in the base config), so a
  // memory-squeeze clause shrinks the one shared pool, not per-disk copies.
  if (base.injector != nullptr) broker->AttachInjector(base.injector);

  std::vector<std::unique_ptr<ShardBrokerView>> views;
  std::vector<std::unique_ptr<VodSimulator>> sims;
  views.reserve(static_cast<std::size_t>(disk_count));
  sims.reserve(static_cast<std::size_t>(disk_count));
  for (int d = 0; d < disk_count; ++d) {
    SimConfig cfg = base;
    cfg.disk_id = d;
    cfg.seed = base.seed * 1000003ULL + static_cast<std::uint64_t>(d);
    // Each disk talks to the broker through its own view; outside sharded
    // epochs the view is a pure pass-through.
    views.push_back(std::make_unique<ShardBrokerView>(broker.get(), d));
    Result<std::unique_ptr<VodSimulator>> sim =
        VodSimulator::Create(cfg, views.back().get());
    if (!sim.ok()) return sim.status();
    sims.push_back(std::move(sim.value()));
  }
  return std::unique_ptr<MultiDiskSimulator>(new MultiDiskSimulator(
      std::move(broker), std::move(views), std::move(sims)));
}

Status MultiDiskSimulator::AddArrivals(
    const std::vector<ArrivalEvent>& arrivals) {
  std::vector<std::vector<ArrivalEvent>> per =
      SplitByDisk(arrivals, disk_count());
  for (int d = 0; d < disk_count(); ++d) {
    VOD_RETURN_IF_ERROR(
        sims_[static_cast<std::size_t>(d)]->AddArrivals(
            per[static_cast<std::size_t>(d)]));
  }
  return Status::OK();
}

void MultiDiskSimulator::RunToCompletion() {
  for (;;) {
    // Globally earliest next event across disks.
    Seconds best = Seconds::Infinity();
    VodSimulator* who = nullptr;
    for (auto& s : sims_) {
      const Seconds t = s->NextEventTime();
      if (t < best) {
        best = t;
        who = s.get();
      }
    }
    if (who == nullptr) break;
    who->Step();
  }
}

void MultiDiskSimulator::RunToCompletionSharded(
    const ParallelForFn& parallel_for, Seconds epoch) {
  VOD_CHECK(epoch > Seconds(0.0));
  // Anything that couples disks mid-epoch breaks thread-count determinism:
  // an injector makes capacity a function of the broker's (shared, racy)
  // clock; the tracer and the postmortem sink are single-producer objects
  // shared across disks. Reject them up front rather than produce runs
  // that depend on worker interleaving.
  // Once per run, not per event: these gate entry, so they stay fatal in
  // release builds too.
  for (const auto& s : sims_) {
    VOD_CHECK(s->config().injector == nullptr);  // vodb-lint: allow(check-in-hot-loop)
    VOD_CHECK(s->tracer() == nullptr);           // vodb-lint: allow(check-in-hot-loop)
    VOD_CHECK(s->postmortem() == nullptr);       // vodb-lint: allow(check-in-hot-loop)
  }
  const std::size_t disks = sims_.size();
  for (;;) {
    // Serial barrier phase: find the globally earliest pending event and
    // freeze the epoch snapshot per disk, all in ascending disk order.
    Seconds t_min = Seconds::Infinity();
    for (const auto& s : sims_) t_min = std::min(t_min, s->NextEventTime());
    if (t_min == Seconds::Infinity()) break;
    const Seconds epoch_end = t_min + epoch;
    const Bits capacity = broker_->Capacity();
    for (std::size_t d = 0; d < disks; ++d) {
      views_[d]->BeginEpoch(broker_->ReservedExcluding(static_cast<int>(d)),
                            capacity);
    }
    // Parallel phase: each disk advances through every event strictly
    // before the epoch boundary, touching only its own state, its frozen
    // view, and const shared pricing — independent of every sibling, hence
    // of how the executor schedules them.
    parallel_for(disks, [this, epoch_end](std::size_t d) {
      sims_[d]->RunUntilBefore(epoch_end);
    });
    // Serial merge: publish final per-disk (n, k) in ascending disk order.
    for (std::size_t d = 0; d < disks; ++d) views_[d]->EndEpochPublish();
  }
}

void MultiDiskSimulator::Finalize() {
  for (auto& s : sims_) s->Finalize();
}

StepTimeSeries MultiDiskSimulator::TotalConcurrency() const {
  std::vector<const StepTimeSeries*> parts;
  parts.reserve(sims_.size());
  for (const auto& s : sims_) parts.push_back(&s->metrics().concurrency);
  return MergeStepSeriesSum(parts);
}

int MultiDiskSimulator::PeakConcurrency() const {
  return static_cast<int>(TotalConcurrency().max_value());
}

long MultiDiskSimulator::TotalAdmitted() const {
  long total = 0;
  for (const auto& s : sims_) total += s->metrics().admitted;
  return total;
}

long MultiDiskSimulator::TotalRejected() const {
  long total = 0;
  for (const auto& s : sims_) total += s->metrics().rejected;
  return total;
}

long MultiDiskSimulator::TotalArrivals() const {
  long total = 0;
  for (const auto& s : sims_) total += s->metrics().arrivals;
  return total;
}

long MultiDiskSimulator::TotalStarvations() const {
  long total = 0;
  for (const auto& s : sims_) total += s->metrics().starvation_events;
  return total;
}

void MultiDiskSimulator::set_tracer(obs::EventTracer* tracer) {
  for (const auto& s : sims_) s->set_tracer(tracer);
}

void MultiDiskSimulator::set_postmortem(obs::PostmortemSink* sink) {
  for (const auto& s : sims_) s->set_postmortem(sink);
}

void MultiDiskSimulator::set_timeseries(int disk,
                                        obs::TimeseriesRecorder* recorder) {
  VOD_CHECK(disk >= 0 && disk < disk_count());
  sims_[static_cast<std::size_t>(disk)]->set_timeseries(recorder);
}

}  // namespace vod::sim
