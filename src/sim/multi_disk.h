#ifndef VODB_SIM_MULTI_DISK_H_
#define VODB_SIM_MULTI_DISK_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "sim/memory_broker.h"
#include "sim/vod_simulator.h"
#include "sim/workload.h"

namespace vod::sim {

/// A VOD server with several disks sharing one memory budget (the setting
/// of Figs. 13–14: 10 Barracuda disks, disk loads skewed by Zipf(θ)).
/// Each disk runs its own VodSimulator; a shared AnalyticMemoryBroker
/// prices every disk with the scheme's memory model and gates admission.
/// The event loops interleave on a single global clock.
class MultiDiskSimulator {
 public:
  /// `base` configures each disk (disk_id/seed are derived per disk).
  /// `memory_capacity` is the shared budget in bits.
  static Result<std::unique_ptr<MultiDiskSimulator>> Create(
      const SimConfig& base, int disk_count, Bits memory_capacity);

  /// Distributes arrivals to disks via their `disk` field.
  Status AddArrivals(const std::vector<ArrivalEvent>& arrivals);

  /// Runs all disks to completion on the shared clock.
  void RunToCompletion();

  void Finalize();

  int disk_count() const { return static_cast<int>(sims_.size()); }
  const VodSimulator& sim(int disk) const { return *sims_[size_t(disk)]; }
  const MemoryBroker& broker() const { return *broker_; }

  /// Observer attachment, mirroring VodSimulator's single-disk setters.
  /// The tracer and postmortem sink are shared (events carry disk ids, and
  /// one black box per server is the point); telemetry recorders are
  /// per-disk (each disk samples its own event loop and busy fraction).
  void set_tracer(obs::EventTracer* tracer);
  void set_postmortem(obs::PostmortemSink* sink);
  void set_timeseries(int disk, obs::TimeseriesRecorder* recorder);

  /// System-wide concurrency over time (sum across disks).
  StepTimeSeries TotalConcurrency() const;
  /// Peak of the summed concurrency.
  int PeakConcurrency() const;
  long TotalAdmitted() const;
  long TotalRejected() const;
  long TotalArrivals() const;
  long TotalStarvations() const;

 private:
  MultiDiskSimulator(std::unique_ptr<AnalyticMemoryBroker> broker,
                     std::vector<std::unique_ptr<VodSimulator>> sims);

  std::unique_ptr<AnalyticMemoryBroker> broker_;
  std::vector<std::unique_ptr<VodSimulator>> sims_;
};

}  // namespace vod::sim

#endif  // VODB_SIM_MULTI_DISK_H_
