#ifndef VODB_SIM_MULTI_DISK_H_
#define VODB_SIM_MULTI_DISK_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "sim/memory_broker.h"
#include "sim/vod_simulator.h"
#include "sim/workload.h"

namespace vod::sim {

/// A VOD server with several disks sharing one memory budget (the setting
/// of Figs. 13–14: 10 Barracuda disks, disk loads skewed by Zipf(θ)).
/// Each disk runs its own VodSimulator; a shared AnalyticMemoryBroker
/// prices every disk with the scheme's memory model and gates admission.
/// The event loops interleave on a single global clock.
class MultiDiskSimulator {
 public:
  /// `base` configures each disk (disk_id/seed are derived per disk).
  /// `memory_capacity` is the shared budget in bits.
  static Result<std::unique_ptr<MultiDiskSimulator>> Create(
      const SimConfig& base, int disk_count, Bits memory_capacity);

  /// Distributes arrivals to disks via their `disk` field.
  Status AddArrivals(const std::vector<ArrivalEvent>& arrivals);

  /// Runs all disks to completion on the shared clock.
  void RunToCompletion();

  /// Runs fn(i) for every i in [0, n); any implementation may run the
  /// calls concurrently (exp::ThreadPool::ParallelFor matches this shape;
  /// sim/ cannot depend on exp/, so the executor is injected).
  using ParallelForFn =
      std::function<void(std::size_t, const std::function<void(std::size_t)>&)>;

  /// Sharded execution: runs the disks to completion in lock-step epochs of
  /// `epoch` simulated seconds, each disk advancing on its own executor
  /// slot against a frozen epoch-start snapshot of the shared memory state
  /// (ShardBrokerView), with a serial ascending-disk-order merge at every
  /// barrier. The result is a pure function of the configuration — bit-
  /// identical for any executor, at any thread count. It is *not* the
  /// serial interleave: within an epoch a disk prices admission against the
  /// snapshot, not against sibling admissions from the same epoch, so
  /// sharded metrics form their own (equally deterministic) reference.
  ///
  /// Requires (checked): no fault injector, no shared tracer, no postmortem
  /// sink — those couple the disks mid-epoch. Per-disk timeseries
  /// recorders are fine.
  void RunToCompletionSharded(const ParallelForFn& parallel_for,
                              Seconds epoch = Seconds(1.0));

  void Finalize();

  int disk_count() const { return static_cast<int>(sims_.size()); }
  const VodSimulator& sim(int disk) const { return *sims_[size_t(disk)]; }
  const MemoryBroker& broker() const { return *broker_; }

  /// Observer attachment, mirroring VodSimulator's single-disk setters.
  /// The tracer and postmortem sink are shared (events carry disk ids, and
  /// one black box per server is the point); telemetry recorders are
  /// per-disk (each disk samples its own event loop and busy fraction).
  void set_tracer(obs::EventTracer* tracer);
  void set_postmortem(obs::PostmortemSink* sink);
  void set_timeseries(int disk, obs::TimeseriesRecorder* recorder);

  /// System-wide concurrency over time (sum across disks).
  StepTimeSeries TotalConcurrency() const;
  /// Peak of the summed concurrency.
  int PeakConcurrency() const;
  long TotalAdmitted() const;
  long TotalRejected() const;
  long TotalArrivals() const;
  long TotalStarvations() const;

 private:
  MultiDiskSimulator(std::unique_ptr<AnalyticMemoryBroker> broker,
                     std::vector<std::unique_ptr<ShardBrokerView>> views,
                     std::vector<std::unique_ptr<VodSimulator>> sims);

  std::unique_ptr<AnalyticMemoryBroker> broker_;
  /// One pass-through/frozen facade per disk, between the disk's simulator
  /// and the shared broker (see ShardBrokerView). Pass-through outside
  /// sharded epochs, so the serial path is byte-identical to wiring the
  /// simulators to `broker_` directly.
  std::vector<std::unique_ptr<ShardBrokerView>> views_;
  std::vector<std::unique_ptr<VodSimulator>> sims_;
};

}  // namespace vod::sim

#endif  // VODB_SIM_MULTI_DISK_H_
