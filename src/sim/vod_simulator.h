#ifndef VODB_SIM_VOD_SIMULATOR_H_
#define VODB_SIM_VOD_SIMULATOR_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "common/arena.h"
#include "common/status.h"
#include "common/types.h"
#include "common/units.h"
#include "core/allocator.h"
#include "core/params.h"
#include "disk/simulated_disk.h"
#include "disk/video_layout.h"
#include "sched/scheduler.h"
#include "sim/event_queue.h"
#include "sim/invariant_auditor.h"
#include "sim/memory_broker.h"
#include "sim/metrics.h"
#include "sim/rng.h"
#include "sim/workload.h"

namespace vod::obs {
class EventTracer;
class PostmortemSink;
class TimeseriesRecorder;
}  // namespace vod::obs

namespace vod::fault {
class Injector;
}  // namespace vod::fault

namespace vod::sim {

/// Which buffer-allocation scheme the server runs.
enum class AllocScheme { kStatic, kDynamic };

std::string_view AllocSchemeName(AllocScheme s);

/// Configuration of one simulated VOD disk server.
struct SimConfig {
  disk::DiskProfile profile = disk::SeagateBarracuda9LP();
  BitsPerSecond consumption_rate = Mbps(1.5);
  core::ScheduleMethod method = core::ScheduleMethod::kRoundRobin;
  AllocScheme scheme = AllocScheme::kDynamic;
  int gss_group_size = 8;    ///< g (the paper's memory-minimizing value).
  int alpha = 1;             ///< α of Assumption 2.
  Seconds t_log = Minutes(40);
  int video_count = 6;
  Seconds video_length = Hours(2);  ///< Every video is 120 min (Sec. 5.1).
  std::uint64_t seed = 1;
  /// Force every rotational delay to the worst case θ (validation runs);
  /// default samples U[0, θ).
  bool worst_case_rotation = false;
  int disk_id = 0;           ///< Identity towards the MemoryBroker.
  /// Disable the dynamic scheme's Assumption-1 admission gate (failure
  /// injection: shows starvation when enforcement is removed).
  bool disable_admission_control = false;
  /// Deterministic fault source (not owned; may be nullptr, must outlive
  /// the simulator). A nullptr — or an injector with an empty spec — leaves
  /// every metric bit-identical to an uninjected run (observer effect:
  /// none). Multi-disk servers share one injector across their disks.
  fault::Injector* injector = nullptr;
  /// Event-queue implementation. Both pop in the identical (time, seq)
  /// order, so every metric is bit-identical across the two; kBinaryHeap is
  /// the legacy reference the differential tests pin the calendar against.
  EventQueueKind event_queue = EventQueueKind::kCalendar;

  Status Validate() const;
};

/// Discrete-event simulator of one VOD disk server implementing the model
/// of Secs. 2–3: shared-memory buffers with use-it-and-toss-it consumption,
/// per-method service ordering, just-in-time ("as late as safely possible")
/// service starts, BubbleUp admission, and either static or dynamic buffer
/// allocation with predict-and-enforce admission control.
///
/// The simulator is steppable so that a multi-disk server can interleave
/// several instances on one global clock (see MultiDiskSimulator).
class VodSimulator : public sched::SchedulerContext {
 public:
  /// `broker` may be nullptr (no memory constraint). The broker must
  /// outlive the simulator.
  static Result<std::unique_ptr<VodSimulator>> Create(const SimConfig& config,
                                                      MemoryBroker* broker);

  ~VodSimulator() override = default;
  VodSimulator(const VodSimulator&) = delete;
  VodSimulator& operator=(const VodSimulator&) = delete;

  /// Feeds arrivals (time-sorted). Call before stepping past their times.
  Status AddArrivals(const std::vector<ArrivalEvent>& arrivals);

  /// Processes one arrival synchronously at the current clock (the event
  /// time must not precede now()). Returns the assigned request id, or
  /// CapacityExceeded if the request was rejected on the spot. The request
  /// may still be waiting in the admission queue (deferred) on return.
  Result<RequestId> SubmitNow(const ArrivalEvent& arrival);

  /// Cancels a pending or in-service request (VCR semantics: the paper
  /// models fast-forward/rewind as cancelling the stream and submitting a
  /// new request at the target position — see VodServer::VcrReposition).
  Status CancelRequest(RequestId id);

  /// Time of the next pending event; +inf when drained.
  Seconds NextEventTime() const;

  /// Processes one event. Returns false when no events remain.
  bool Step();

  /// Runs until the event queue drains or the clock passes `t`.
  void RunUntil(Seconds t);

  /// Runs every event strictly before `t` (the sharded runner's epoch
  /// boundary: events at exactly `t` belong to the next epoch).
  void RunUntilBefore(Seconds t);

  /// Runs until every request completed and the queue drained.
  void RunToCompletion();

  /// Resolves estimation-success bookkeeping; call once after the run.
  void Finalize();

  Seconds now() const { return now_; }

  /// The runtime invariant auditor. Its checks run only when the tree is
  /// built with VODB_AUDIT=ON (the default); the object itself is always
  /// present so tests can install a collecting handler unconditionally.
  InvariantAuditor& auditor() { return auditor_; }
  const InvariantAuditor& auditor() const { return auditor_; }

  /// Attaches a structured event tracer (nullptr detaches). The tracer must
  /// outlive the simulator. Events flow only when the tree is built with
  /// VODB_TRACE=ON; either way the tracer is a pure observer — no metric or
  /// golden CSV changes by attaching one.
  void set_tracer(obs::EventTracer* tracer) { tracer_ = tracer; }
  obs::EventTracer* tracer() const { return tracer_; }

  /// Attaches a postmortem sink (nullptr detaches). The simulator arms the
  /// auditor's capture-then-fail observer (dump before the violation
  /// handler runs), forwards fault-layer degradation counters for the
  /// sink's threshold trigger, and keeps the sink's last-seen sim time
  /// fresh for signal-path dumps. Pure observer: the sink only ever reads
  /// state, and only on already-exceptional paths.
  void set_postmortem(obs::PostmortemSink* sink);
  obs::PostmortemSink* postmortem() const { return postmortem_; }

  /// Attaches a sim-time telemetry recorder (nullptr detaches). Sampled
  /// after each dispatched event when a bucket boundary has passed; all
  /// sampled quantities are reads of existing state (pure observer).
  void set_timeseries(obs::TimeseriesRecorder* recorder) {
    timeseries_ = recorder;
  }
  obs::TimeseriesRecorder* timeseries() const { return timeseries_; }

  const SimMetrics& metrics() const { return metrics_; }
  const SimConfig& config() const { return config_; }
  const core::AllocParams& alloc_params() const { return alloc_params_; }
  int active_count() const { return allocator_->active_count(); }
  /// Events currently queued (arrivals not yet dispatched included).
  std::size_t event_count() const { return events_->size(); }
  const disk::SimulatedDisk& disk() const { return disk_; }

  // --- sched::SchedulerContext ---
  Seconds BufferDeadline(RequestId id) const override;
  bool NeverServiced(RequestId id) const override;
  double CurrentCylinder(RequestId id) const override;
  bool NeedsService(RequestId id) const override;
  Seconds WorstServiceTime(RequestId id) const override;
  Seconds NewcomerReserve() const override;

 private:
  struct Req {
    RequestId id = kInvalidRequestId;
    disk::VideoId video = 0;
    Seconds arrival;
    Seconds viewing;
    Bits start_offset;  ///< Playback start within the video (VCR).
    Bits total_bits;
    Bits delivered;
    Bits consumed;       ///< As of `consumed_at` (lazy).
    Seconds consumed_at;
    bool playing = false;
    bool admitted = false;
    bool starved = false;    ///< Currently underflowed (edge counted once).
    bool was_deferred = false;
    /// Graceful degradation: set on a missed or failed service round,
    /// cleared by the next successful refill. A degraded stream keeps its
    /// buffer and its use-it-and-toss-it consumption; only continuity is
    /// temporarily lost.
    bool degraded = false;
    bool ever_degraded = false;  ///< For the distinct-streams counter.
    int round_failures = 0;  ///< Consecutive failed reads this round.
    int n_at_admit = 0;
    int fill_count = 0;
    Seconds first_data = Seconds(-1);
  };

  VodSimulator(const SimConfig& config, core::AllocParams alloc_params,
               disk::VideoLayout layout,
               std::unique_ptr<core::BufferAllocator> allocator,
               std::unique_ptr<sched::BufferScheduler> scheduler,
               MemoryBroker* broker);

  void Push(Seconds time, SimEventKind kind, RequestId id,
            std::size_t arrival_index = 0);

  void HandleArrival(const SimEvent& ev);
  Result<RequestId> ProcessArrival(const ArrivalEvent& a);
  void HandleServiceComplete(const SimEvent& ev);
  void HandleDeparture(const SimEvent& ev);

  /// Admission pump: admits queued requests in FIFO order while the
  /// scheduler's timing, the allocator's Assumption 1, and the memory
  /// broker all allow it.
  void TryAdmitPending();

  /// If the disk is idle, picks the next service and either starts it or
  /// schedules a wakeup at its just-in-time start.
  void MaybeScheduleService();

  void BeginService(RequestId id);

  /// Advances the lazy consumption clock of `r` to `t`.
  void SyncConsumption(Req& r, Seconds t);
  Bits ConsumedAt(const Req& r, Seconds t) const;
  Bits BufferLevelAt(const Req& r, Seconds t) const;
  Bits TotalBufferedBits(Seconds t) const;

  void DetectStarvation();
  /// Normal -> Degraded transition bookkeeping (idempotent per episode).
  void MarkDegraded(Req& r);
  void RecordConcurrency();
  // `at_admission` marks calls made right after a CanAdmit-gated admission,
  // where the audited capacity partition is guaranteed to hold exactly.
  void ReportBrokerState(int k_estimate, bool at_admission = false);

  const Req& GetReq(RequestId id) const;
  Req& GetReq(RequestId id);

  SimConfig config_;
  core::AllocParams alloc_params_;
  disk::VideoLayout layout_;
  disk::SimulatedDisk disk_;
  std::unique_ptr<core::BufferAllocator> allocator_;
  std::unique_ptr<sched::BufferScheduler> scheduler_;
  MemoryBroker* broker_;  ///< Not owned; may be nullptr.
  Rng rng_;

  Seconds now_;
  std::uint64_t next_seq_ = 0;
  std::unique_ptr<EventQueue> events_;
  std::vector<ArrivalEvent> arrivals_;
  std::vector<Seconds> arrival_times_;  ///< For estimation resolution.

  /// Per-stream state lives in pool chunks (common/arena.h); iteration is
  /// ascending-id — the same order the std::map this replaced used, which
  /// keeps order-sensitive floating-point reductions bit-identical.
  PooledOrderedMap<Req> requests_;
  std::deque<RequestId> pending_;  ///< Arrived, awaiting admission (Q).
  RequestId next_request_id_ = 1;

  bool disk_busy_ = false;
  RequestId in_service_ = kInvalidRequestId;
  Bits in_service_bits_;
  disk::ServiceTiming in_service_timing_;  ///< Breakdown for the trace end event.
  /// Injected-fault state of the in-flight read (kEio): the completion
  /// handler turns a failed read into a retry or, past the budget, a hiccup.
  bool in_service_failed_ = false;
  int in_service_max_retries_ = 0;
  Seconds in_service_retry_backoff_;
  /// Disk-level cooldown after a failed read (bounded exponential backoff):
  /// no service is issued before this instant.
  Seconds retry_cooldown_until_;
  int last_k_estimate_ = 0;
  Seconds scheduled_wakeup_;
  bool wakeup_pending_ = false;

  /// Allocator Preview() is O(n); the scheduling lookahead asks for it once
  /// per sequence member, so cache it per (clock, state epoch).
  core::AllocationDecision CachedPreview() const;
  mutable core::AllocationDecision preview_cache_;
  mutable Seconds preview_cache_time_ = Seconds(-1);
  mutable std::uint64_t preview_cache_version_ = ~0ULL;
  std::uint64_t state_version_ = 0;

  /// core::WorstDiskLatency is a pure function of (profile, method, n) and
  /// the scheduling loop asks for it per sequence member per round; memoize
  /// by n (exact same double comes back — bit-identical results).
  Seconds CachedWorstLatency(int n_or_g) const;
  mutable std::vector<Seconds> worst_latency_cache_;

  /// Assembles a TimeseriesSample from current state and records it.
  void SampleTimeseries();

  InvariantAuditor auditor_;
  SimMetrics metrics_;
  obs::EventTracer* tracer_ = nullptr;  ///< Not owned; may be nullptr.
  obs::PostmortemSink* postmortem_ = nullptr;    ///< Not owned; optional.
  obs::TimeseriesRecorder* timeseries_ = nullptr;  ///< Not owned; optional.
};

/// Sums several step time series (per-disk concurrency, memory, ...).
StepTimeSeries MergeStepSeriesSum(
    const std::vector<const StepTimeSeries*>& series);

}  // namespace vod::sim

#endif  // VODB_SIM_VOD_SIMULATOR_H_
