#ifndef VODB_SIM_MEMORY_BROKER_H_
#define VODB_SIM_MEMORY_BROKER_H_

#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "core/memory_model.h"
#include "core/params.h"

namespace vod::fault {
class Injector;
}  // namespace vod::fault

namespace vod::sim {

/// Shared-memory admission authority for a (possibly multi-disk) server.
/// Disks ask whether admitting one more request fits the memory budget;
/// they report their (n, k) state after every change so the broker can
/// price the whole system with the analytic models of Theorems 2–4.
class MemoryBroker {
 public:
  virtual ~MemoryBroker() = default;

  /// May `disk` grow to `new_n` in-service requests (its current estimate
  /// being `k`)? Pure — does not change state.
  [[nodiscard]] virtual bool CanAdmit(int disk, int new_n, int k) const = 0;

  /// Disk state update (after admission, departure, or allocation).
  virtual void OnState(int disk, int n, int k) = 0;

  /// Total memory the broker currently prices the system at.
  [[nodiscard]] virtual Bits ReservedMemory() const = 0;

  /// Total memory budget the broker admits against; +infinity when
  /// unconstrained. ReservedMemory() <= Capacity() is the conservation
  /// invariant sim::InvariantAuditor checks per event.
  [[nodiscard]] virtual Bits Capacity() const = 0;

  /// Advances the broker's notion of simulated time (brokers are otherwise
  /// time-less). Simulators call this before every CanAdmit/OnState so a
  /// time-varying capacity (fault::Injector memory squeezes) prices against
  /// the current window. Default: no-op — a broker that ignores time is
  /// byte-identical with or without these calls.
  virtual void AdvanceTo(Seconds now) { static_cast<void>(now); }
};

/// No memory constraint (single-disk latency experiments).
class UnlimitedMemoryBroker final : public MemoryBroker {
 public:
  [[nodiscard]] bool CanAdmit(int, int, int) const override { return true; }
  void OnState(int, int, int) override {}
  [[nodiscard]] Bits ReservedMemory() const override { return Bits(0); }
  [[nodiscard]] Bits Capacity() const override;
};

/// Prices each disk with the scheme's analytic minimum memory requirement
/// and admits while the total fits `capacity` (Figs. 13–14).
class AnalyticMemoryBroker final : public MemoryBroker {
 public:
  /// `use_dynamic` selects Theorems 2–4 (dynamic scheme) vs the static
  /// counterparts; `g` is the GSS group size.
  AnalyticMemoryBroker(core::AllocParams params, core::ScheduleMethod method,
                       bool use_dynamic, int g, int disk_count,
                       Bits capacity);

  [[nodiscard]] bool CanAdmit(int disk, int new_n, int k) const override;
  void OnState(int disk, int n, int k) override;
  [[nodiscard]] Bits ReservedMemory() const override;
  /// The configured budget scaled by any memory-squeeze fault window open
  /// at the broker clock (nominal_capacity() without an injector). Already
  /// admitted streams are grandfathered — a squeeze only gates growth.
  [[nodiscard]] Bits Capacity() const override;
  void AdvanceTo(Seconds now) override;

  /// Attaches a fault injector whose CapacityScale squeezes the budget
  /// (nullptr detaches). Not owned; must outlive the broker.
  void AttachInjector(const fault::Injector* injector) {
    injector_ = injector;
  }

  [[nodiscard]] Bits nominal_capacity() const { return capacity_; }

  /// Memory the model assigns to one disk at (n, k); 0 when n == 0.
  /// Pure in (n, k) and the construction-time parameters — safe to call
  /// concurrently (the sharded runner's worker threads do).
  [[nodiscard]] Bits PriceDisk(int n, int k) const;

  /// Total priced memory over every disk except `disk`, in ascending disk
  /// order (the deterministic accumulation order the sharded epoch
  /// snapshots rely on).
  [[nodiscard]] Bits ReservedExcluding(int disk) const;

  /// The model's hard per-disk stream ceiling (AllocParams::n_max).
  [[nodiscard]] int max_n() const { return params_.n_max; }

 private:
  core::AllocParams params_;
  core::ScheduleMethod method_;
  bool use_dynamic_;
  int g_;
  Bits capacity_;
  std::vector<int> n_;
  std::vector<int> k_;
  const fault::Injector* injector_ = nullptr;  ///< Not owned; may be null.
  Seconds clock_;  ///< Monotone; max over AdvanceTo calls.
};

/// Per-disk facade over a shared AnalyticMemoryBroker, the hinge of the
/// sharded MultiDiskSimulator runner. Two modes:
///
///  - Pass-through (default): every call forwards to the shared broker —
///    byte-identical to the disk holding the broker pointer directly, which
///    is what keeps the serial RunToCompletion path and its goldens
///    untouched by the indirection.
///
///  - Frozen (between BeginEpoch and EndEpochPublish): admission prices
///    against an epoch-start snapshot of the *other* disks' reservation and
///    of the capacity, while this disk's own (n, k) stays live. Worker
///    threads running different disks therefore never read each other's
///    mutable state mid-epoch — each epoch's outcome is a pure function of
///    the serial snapshot, making the run bit-identical at any thread
///    count. EndEpochPublish writes the disk's final (n, k) back to the
///    shared broker; the runner publishes in ascending disk order so the
///    merge is deterministic too.
class ShardBrokerView final : public MemoryBroker {
 public:
  /// `shared` must outlive the view. `disk` is the owning disk's id; every
  /// MemoryBroker call must carry it.
  ShardBrokerView(AnalyticMemoryBroker* shared, int disk);

  [[nodiscard]] bool CanAdmit(int disk, int new_n, int k) const override;
  void OnState(int disk, int n, int k) override;
  [[nodiscard]] Bits ReservedMemory() const override;
  [[nodiscard]] Bits Capacity() const override;
  void AdvanceTo(Seconds now) override;

  /// Enters frozen mode with the epoch-start snapshot. Serial-phase only.
  void BeginEpoch(Bits others_reserved, Bits capacity);
  /// Publishes the disk's final (n, k) to the shared broker and returns to
  /// pass-through mode. Serial-phase only; call in ascending disk order.
  void EndEpochPublish();

  [[nodiscard]] bool frozen() const { return frozen_; }
  [[nodiscard]] int disk() const { return disk_; }

 private:
  AnalyticMemoryBroker* shared_;  ///< Not owned.
  int disk_;
  bool frozen_ = false;
  Bits others_reserved_;   ///< Snapshot: sum over other disks.
  Bits frozen_capacity_;   ///< Snapshot: budget for this epoch.
  int n_ = 0;              ///< Own state, live in both modes.
  int k_ = 0;
};

}  // namespace vod::sim

#endif  // VODB_SIM_MEMORY_BROKER_H_
