#ifndef VODB_SIM_MEMORY_BROKER_H_
#define VODB_SIM_MEMORY_BROKER_H_

#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "core/memory_model.h"
#include "core/params.h"

namespace vod::fault {
class Injector;
}  // namespace vod::fault

namespace vod::sim {

/// Shared-memory admission authority for a (possibly multi-disk) server.
/// Disks ask whether admitting one more request fits the memory budget;
/// they report their (n, k) state after every change so the broker can
/// price the whole system with the analytic models of Theorems 2–4.
class MemoryBroker {
 public:
  virtual ~MemoryBroker() = default;

  /// May `disk` grow to `new_n` in-service requests (its current estimate
  /// being `k`)? Pure — does not change state.
  [[nodiscard]] virtual bool CanAdmit(int disk, int new_n, int k) const = 0;

  /// Disk state update (after admission, departure, or allocation).
  virtual void OnState(int disk, int n, int k) = 0;

  /// Total memory the broker currently prices the system at.
  [[nodiscard]] virtual Bits ReservedMemory() const = 0;

  /// Total memory budget the broker admits against; +infinity when
  /// unconstrained. ReservedMemory() <= Capacity() is the conservation
  /// invariant sim::InvariantAuditor checks per event.
  [[nodiscard]] virtual Bits Capacity() const = 0;

  /// Advances the broker's notion of simulated time (brokers are otherwise
  /// time-less). Simulators call this before every CanAdmit/OnState so a
  /// time-varying capacity (fault::Injector memory squeezes) prices against
  /// the current window. Default: no-op — a broker that ignores time is
  /// byte-identical with or without these calls.
  virtual void AdvanceTo(Seconds now) { static_cast<void>(now); }
};

/// No memory constraint (single-disk latency experiments).
class UnlimitedMemoryBroker final : public MemoryBroker {
 public:
  [[nodiscard]] bool CanAdmit(int, int, int) const override { return true; }
  void OnState(int, int, int) override {}
  [[nodiscard]] Bits ReservedMemory() const override { return Bits(0); }
  [[nodiscard]] Bits Capacity() const override;
};

/// Prices each disk with the scheme's analytic minimum memory requirement
/// and admits while the total fits `capacity` (Figs. 13–14).
class AnalyticMemoryBroker final : public MemoryBroker {
 public:
  /// `use_dynamic` selects Theorems 2–4 (dynamic scheme) vs the static
  /// counterparts; `g` is the GSS group size.
  AnalyticMemoryBroker(core::AllocParams params, core::ScheduleMethod method,
                       bool use_dynamic, int g, int disk_count,
                       Bits capacity);

  [[nodiscard]] bool CanAdmit(int disk, int new_n, int k) const override;
  void OnState(int disk, int n, int k) override;
  [[nodiscard]] Bits ReservedMemory() const override;
  /// The configured budget scaled by any memory-squeeze fault window open
  /// at the broker clock (nominal_capacity() without an injector). Already
  /// admitted streams are grandfathered — a squeeze only gates growth.
  [[nodiscard]] Bits Capacity() const override;
  void AdvanceTo(Seconds now) override;

  /// Attaches a fault injector whose CapacityScale squeezes the budget
  /// (nullptr detaches). Not owned; must outlive the broker.
  void AttachInjector(const fault::Injector* injector) {
    injector_ = injector;
  }

  [[nodiscard]] Bits nominal_capacity() const { return capacity_; }

  /// Memory the model assigns to one disk at (n, k); 0 when n == 0.
  [[nodiscard]] Bits PriceDisk(int n, int k) const;

 private:
  core::AllocParams params_;
  core::ScheduleMethod method_;
  bool use_dynamic_;
  int g_;
  Bits capacity_;
  std::vector<int> n_;
  std::vector<int> k_;
  const fault::Injector* injector_ = nullptr;  ///< Not owned; may be null.
  Seconds clock_;  ///< Monotone; max over AdvanceTo calls.
};

}  // namespace vod::sim

#endif  // VODB_SIM_MEMORY_BROKER_H_
