#ifndef VODB_SIM_ZIPF_H_
#define VODB_SIM_ZIPF_H_

#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace vod::sim {

/// Zipf weights in the Wolf/Yu/Shachnai parameterization used by the paper
/// [15]: item of rank r (1-based) gets weight ∝ (1/r)^(1−θ), normalized to
/// sum to 1. θ = 0 is the classic highly skewed Zipf; θ = 1 is uniform.
Result<std::vector<double>> ZipfWeights(int count, double theta);

/// The paper's time-of-day arrival profile (Sec. 5.1): the day is divided
/// into fixed slots (30 min); slot arrival rates follow a Zipf(θ)
/// distribution whose rank-1 slot is the one containing `peak_time`, with
/// ranks growing with distance from the peak (alternating after/before, so
/// the profile is a peak that decays in both directions — giving the
/// "high arrival rate between hours 7 and 13" shape of Fig. 6 at θ <= 0.5).
class ArrivalRateProfile {
 public:
  /// `total_expected` arrivals are distributed over `duration` according to
  /// the Zipf(θ) slot weights.
  static Result<ArrivalRateProfile> Create(Seconds duration, Seconds slot_len,
                                           double theta, Seconds peak_time,
                                           double total_expected);

  /// Arrival rate λ(t) in requests/second; 0 outside [0, duration).
  double RateAt(Seconds t) const;

  /// Upper bound on λ over the whole day (for thinning-based generation).
  double MaxRate() const { return max_rate_; }

  Seconds duration() const { return duration_; }
  Seconds slot_length() const { return slot_len_; }
  const std::vector<double>& slot_rates() const { return rates_; }

 private:
  ArrivalRateProfile(Seconds duration, Seconds slot_len,
                     std::vector<double> rates);

  Seconds duration_;
  Seconds slot_len_;
  std::vector<double> rates_;
  // Arrival rate in requests/second — not a units.h BitsPerSecond quantity.
  double max_rate_ = 0;  // vodb-lint: allow(raw-double-unit, units-hygiene)
};

}  // namespace vod::sim

#endif  // VODB_SIM_ZIPF_H_
