#ifndef VODB_SIM_WORKLOAD_H_
#define VODB_SIM_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "sim/zipf.h"

namespace vod::fault {
class Injector;
}  // namespace vod::fault

namespace vod::sim {

/// One generated user request before it reaches a server.
struct ArrivalEvent {
  Seconds time;
  int video = 0;            ///< Video chosen (Zipf popularity).
  Seconds viewing_time; ///< How long the user watches (U(0, 2h) [4]).
  int disk = 0;             ///< Target disk (multi-disk experiments).
  /// Playback start position within the video. Non-zero for VCR
  /// repositioning, which the paper's model treats as a brand-new request
  /// (Sec. 1): fast-forward/rewind cancels the old stream and submits one
  /// starting here.
  Seconds start_position;
};

/// Workload parameters matching Sec. 5.1.
struct WorkloadConfig {
  Seconds duration = Hours(24);
  Seconds slot_length = Minutes(30);
  double theta = 0.5;            ///< Time-of-day Zipf skew (0 peaky, 1 flat).
  Seconds peak_time = Hours(9);  ///< "peak time occurs after nine hours".
  double total_expected_arrivals = 1200;
  Seconds max_viewing_time = Hours(2);  ///< Viewing ~ U(0, this].
  int video_count = 6;
  double video_theta = 0.271;    ///< Video popularity skew (Wolf et al. [15]).
  int disk_count = 1;
  double disk_theta = 1.0;       ///< Disk-load skew (Figs. 13–14 use 0/.5/1).
  std::uint64_t seed = 42;

  Status Validate() const;
};

/// Generates the full day of arrivals: a non-homogeneous Poisson process
/// with the Zipf(θ) slot profile (piecewise-constant rates, generated
/// exactly per slot with exponential gaps), video popularity by Zipf, and
/// disk assignment by Zipf over disks. Sorted by time.
Result<std::vector<ArrivalEvent>> GenerateWorkload(const WorkloadConfig& cfg);

/// Splits a workload per disk (preserving order).
std::vector<std::vector<ArrivalEvent>> SplitByDisk(
    const std::vector<ArrivalEvent>& all, int disk_count);

/// Merges the injector's burst arrivals (flash crowds) into `arrivals`,
/// keeping the list time-sorted. Burst times come from the injector's own
/// seeded streams, so the base workload is untouched — a no-burst spec
/// leaves `arrivals` byte-identical.
void ApplyFaultBursts(const fault::Injector& injector,
                      std::vector<ArrivalEvent>* arrivals);

/// The offered concurrency the workload implies under an admission cap
/// (Fig. 6): requests are accepted while fewer than `cap` are viewing and
/// rejected otherwise. Returns (time, concurrency) steps plus the rejection
/// count.
struct OfferedLoad {
  std::vector<std::pair<Seconds, int>> concurrency;
  int rejected = 0;
  int peak = 0;
};
OfferedLoad ComputeOfferedLoad(const std::vector<ArrivalEvent>& arrivals,
                               int cap);

}  // namespace vod::sim

#endif  // VODB_SIM_WORKLOAD_H_
