#include "sim/zipf.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace vod::sim {

Result<std::vector<double>> ZipfWeights(int count, double theta) {
  if (count < 1) return Status::InvalidArgument("count must be >= 1");
  if (theta < 0.0 || theta > 1.0) {
    return Status::InvalidArgument("theta must be in [0, 1]");
  }
  std::vector<double> w(static_cast<std::size_t>(count));
  double sum = 0.0;
  for (int r = 1; r <= count; ++r) {
    const double v = std::pow(1.0 / static_cast<double>(r), 1.0 - theta);
    w[static_cast<std::size_t>(r - 1)] = v;
    sum += v;
  }
  for (double& v : w) v /= sum;
  return w;
}

ArrivalRateProfile::ArrivalRateProfile(Seconds duration, Seconds slot_len,
                                       std::vector<double> rates)
    : duration_(duration), slot_len_(slot_len), rates_(std::move(rates)) {
  for (double r : rates_) max_rate_ = std::max(max_rate_, r);
}

Result<ArrivalRateProfile> ArrivalRateProfile::Create(Seconds duration,
                                                      Seconds slot_len,
                                                      double theta,
                                                      Seconds peak_time,
                                                      double total_expected) {
  if (duration <= Seconds(0) || slot_len <= Seconds(0) ||
      slot_len > duration) {
    return Status::InvalidArgument("bad duration/slot length");
  }
  if (total_expected < 0) {
    return Status::InvalidArgument("total_expected must be >= 0");
  }
  const int slots = static_cast<int>(std::ceil(duration / slot_len));
  Result<std::vector<double>> weights = ZipfWeights(slots, theta);
  if (!weights.ok()) return weights.status();

  // Assign rank 1 to the peak slot, then fan out: after, before, after, ...
  int peak_slot = static_cast<int>(peak_time / slot_len);
  peak_slot = std::clamp(peak_slot, 0, slots - 1);
  std::vector<double> share(static_cast<std::size_t>(slots), 0.0);
  int rank = 0;
  share[static_cast<std::size_t>(peak_slot)] = (*weights)[rank++];
  for (int d = 1; rank < slots; ++d) {
    const int after = peak_slot + d;
    if (after < slots && rank < slots) {
      share[static_cast<std::size_t>(after)] = (*weights)[rank++];
    }
    const int before = peak_slot - d;
    if (before >= 0 && rank < slots) {
      share[static_cast<std::size_t>(before)] = (*weights)[rank++];
    }
  }

  std::vector<double> rates(static_cast<std::size_t>(slots));
  for (int i = 0; i < slots; ++i) {
    const Seconds len = std::min(slot_len, duration - i * slot_len);
    rates[static_cast<std::size_t>(i)] =
        len > Seconds(0)
            ? total_expected * share[static_cast<std::size_t>(i)] / len.value()
                : 0.0;
  }
  return ArrivalRateProfile(duration, slot_len, std::move(rates));
}

double ArrivalRateProfile::RateAt(Seconds t) const {
  if (t < Seconds(0) || t >= duration_) return 0.0;
  const std::size_t slot = static_cast<std::size_t>(t / slot_len_);
  return slot < rates_.size() ? rates_[slot] : 0.0;
}

}  // namespace vod::sim
