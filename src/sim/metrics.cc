#include "sim/metrics.h"

#include <algorithm>
#include <string>

#include "obs/metrics_registry.h"

namespace vod::sim {

void SimMetrics::ResolveEstimation(
    const std::vector<Seconds>& sorted_arrival_times) {
  estimation_checks = 0;
  estimation_successes = 0;
  for (const AllocationRecord& rec : allocations) {
    const auto lo = std::upper_bound(sorted_arrival_times.begin(),
                                     sorted_arrival_times.end(), rec.time);
    const auto hi =
        std::upper_bound(sorted_arrival_times.begin(),
                         sorted_arrival_times.end(),
                         rec.time + rec.usage_period);
    const long actual = static_cast<long>(hi - lo);
    ++estimation_checks;
    if (actual <= rec.k) ++estimation_successes;
  }
}

void SimMetrics::PublishTo(obs::MetricsRegistry& registry,
                           std::string_view prefix) const {
  const std::string p = std::string(prefix) + ".";
  const auto count = [&registry, &p](const char* name, long v) {
    registry.counter(p + name).Increment(static_cast<std::int64_t>(v));
  };
  count("arrivals", arrivals);
  count("admitted", admitted);
  count("rejected", rejected);
  count("rejected_capacity", rejected_capacity);
  count("rejected_memory", rejected_memory);
  count("rejected_invalid", rejected_invalid);
  count("deferred_admissions", deferred_admissions);
  count("completed", completed);
  count("cancelled", cancelled);
  count("starvation_events", starvation_events);
  count("services", services);
  count("fault.read_faults", read_faults);
  count("fault.read_retries", read_retries);
  count("fault.hiccups", hiccup_events);
  count("fault.degraded_entries", degraded_entries);
  count("fault.degraded_streams", degraded_streams);
  count("fault.recoveries", fault_recoveries);
  count("fault.delayed_reads", delayed_reads);
  count("estimation_checks", estimation_checks);
  count("estimation_successes", estimation_successes);

  // Real per-allocation samples -> log-bucketed distributions.
  obs::Histogram& buffer_mbit =
      registry.histogram(p + "alloc.buffer_mbit", {.lo = 0.1});
  obs::Histogram& usage_s =
      registry.histogram(p + "alloc.usage_period_s", {.lo = 1e-3});
  obs::Histogram& est_k =
      registry.histogram(p + "alloc.k", {.lo = 1.0, .growth = 1.5});
  for (const AllocationRecord& rec : allocations) {
    buffer_mbit.Add(ToMegabits(rec.buffer_size));
    usage_s.Add(ToSeconds(rec.usage_period));
    est_k.Add(static_cast<double>(rec.k));
  }

  // One sample per run: distribution across a sweep's runs.
  registry.histogram(p + "run.initial_latency_mean_s", {.lo = 1e-3})
      .Add(initial_latency.mean());
  registry.histogram(p + "run.peak_memory_mb", {.lo = 1.0})
      .Add(ToMebibytes(Bits(memory_usage.max_value())));
  registry.histogram(p + "run.peak_concurrency", {.lo = 1.0, .growth = 1.5})
      .Add(static_cast<double>(peak_concurrency));
  // The buffer byte ledger (conservation property: allocated == released at
  // the end of a drained run) — one sample per run, in gigabits so a sweep's
  // distribution is readable at a glance.
  registry.histogram(p + "run.buffer_gbit_allocated", {.lo = 0.1})
      .Add(ToBits(buffer_bits_allocated) / kGiga);
  registry.histogram(p + "run.buffer_gbit_released", {.lo = 0.1})
      .Add(ToBits(buffer_bits_released) / kGiga);
}

// Lockstep guard: PublishTo must cover every SimMetrics field. Growing the
// struct changes its size and trips this assert, forcing whoever adds a
// field to extend PublishTo (and the registry-name test in
// golden_metrics_test.cc) in the same change. Size is ABI-specific, so the
// guard only arms on the configuration CI builds (libstdc++ on x86-64).
#if defined(__GLIBCXX__) && defined(__x86_64__)
static_assert(sizeof(SimMetrics) == 416,
              "SimMetrics changed size: update PublishTo and the "
              "sim_metrics publish-names test, then refresh this size");
#endif

}  // namespace vod::sim
