#include "sim/metrics.h"

#include <algorithm>

namespace vod::sim {

void SimMetrics::ResolveEstimation(
    const std::vector<Seconds>& sorted_arrival_times) {
  estimation_checks = 0;
  estimation_successes = 0;
  for (const AllocationRecord& rec : allocations) {
    const auto lo = std::upper_bound(sorted_arrival_times.begin(),
                                     sorted_arrival_times.end(), rec.time);
    const auto hi =
        std::upper_bound(sorted_arrival_times.begin(),
                         sorted_arrival_times.end(),
                         rec.time + rec.usage_period);
    const long actual = static_cast<long>(hi - lo);
    ++estimation_checks;
    if (actual <= rec.k) ++estimation_successes;
  }
}

}  // namespace vod::sim
