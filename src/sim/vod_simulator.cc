#include "sim/vod_simulator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/check.h"
#include "fault/injector.h"
#include "obs/event_tracer.h"
#include "obs/postmortem.h"
#include "obs/profile.h"
#include "obs/timeseries_recorder.h"
#include "sched/gss.h"
#include "sched/round_robin.h"
#include "sched/sweep.h"

namespace vod::sim {

namespace {
constexpr Seconds kEps = Seconds(1e-9);
constexpr Seconds kInf = Seconds::Infinity();
}  // namespace

// The invariant-audit hooks below compile to nothing unless the tree is
// configured with VODB_AUDIT=ON (see the root CMakeLists). Every hook is a
// pure observer: auditing on/off cannot change a single metric.
#ifndef VODB_AUDIT_ENABLED
#define VODB_AUDIT_ENABLED 0
#endif

// The trace-emission blocks follow the same compile-time gating discipline
// under VODB_TRACE=ON (OFF by default; obs/trace_event.h defines the macro
// to 0 when unset). Emission is likewise a pure observer: it reads state the
// handler already computed and never feeds anything back. VODB_TRACE_INIT
// seeds an event with the fields every kind carries.
#if VODB_TRACE_ENABLED
#define VODB_TRACE_INIT(ev_, kind_, request_)      \
  obs::TraceEvent ev_;                             \
  ev_.time = now_;                                 \
  ev_.kind = obs::TraceEventKind::kind_;           \
  ev_.disk = config_.disk_id;                      \
  ev_.request = request_
#endif

std::string_view AllocSchemeName(AllocScheme s) {
  return s == AllocScheme::kStatic ? "static" : "dynamic";
}

Status SimConfig::Validate() const {
  VOD_RETURN_IF_ERROR(profile.Validate());
  if (consumption_rate <= BitsPerSecond(0)) {
    return Status::InvalidArgument("consumption rate must be > 0");
  }
  if (gss_group_size < 1) {
    return Status::InvalidArgument("GSS group size must be >= 1");
  }
  if (alpha < 1) return Status::InvalidArgument("alpha must be >= 1");
  if (t_log <= Seconds(0)) return Status::InvalidArgument("T_log must be > 0");
  if (video_count < 1) return Status::InvalidArgument("need >= 1 video");
  if (video_length <= Seconds(0)) {
    return Status::InvalidArgument("video length must be > 0");
  }
  return Status::OK();
}

Result<std::unique_ptr<VodSimulator>> VodSimulator::Create(
    const SimConfig& config, MemoryBroker* broker) {
  VOD_RETURN_IF_ERROR(config.Validate());

  // The allocator's AllocParams use the method's conservative DL: the
  // fully-loaded γ(Cyln/N)+θ for Sweep*, γ(Cyln/g)+θ for GSS*, and the full
  // stroke for Round-Robin. The dynamic Sweep* table additionally varies DL
  // with n (Table 2).
  const int n_for_dl =
      config.method == core::ScheduleMethod::kGss
          ? config.gss_group_size
          : core::MaxConcurrentRequests(config.profile.transfer_rate,
                                        config.consumption_rate);
  Result<core::AllocParams> params =
      core::MakeAllocParams(config.profile, config.consumption_rate,
                            config.method, n_for_dl, config.alpha);
  if (!params.ok()) return params.status();

  disk::VideoLayout layout(config.profile);
  const Bits video_size = config.video_length * config.consumption_rate;
  const std::vector<disk::VideoId> ids =
      layout.FillWithVideos(config.video_count, video_size);
  if (static_cast<int>(ids.size()) < config.video_count) {
    return Status::CapacityExceeded("videos do not fit on the disk");
  }

  std::unique_ptr<core::BufferAllocator> allocator;
  if (config.scheme == AllocScheme::kStatic) {
    Result<std::unique_ptr<core::StaticBufferAllocator>> a =
        core::StaticBufferAllocator::Create(*params);
    if (!a.ok()) return a.status();
    allocator = std::move(a.value());
  } else {
    core::BufferSizeTable::DlForN dl_for_n = nullptr;
    if (config.method == core::ScheduleMethod::kSweep) {
      const disk::DiskProfile profile = config.profile;
      dl_for_n = [profile](int n) {
        return core::WorstDiskLatency(profile, core::ScheduleMethod::kSweep,
                                      n);
      };
    }
    Result<std::unique_ptr<core::DynamicBufferAllocator>> a =
        core::DynamicBufferAllocator::Create(*params, config.t_log, dl_for_n);
    if (!a.ok()) return a.status();
    allocator = std::move(a.value());
  }

  std::unique_ptr<sched::BufferScheduler> scheduler;
  switch (config.method) {
    case core::ScheduleMethod::kRoundRobin:
      scheduler = std::make_unique<sched::RoundRobinScheduler>();
      break;
    case core::ScheduleMethod::kSweep:
      scheduler = std::make_unique<sched::SweepScheduler>();
      break;
    case core::ScheduleMethod::kGss:
      scheduler = std::make_unique<sched::GssScheduler>(config.gss_group_size);
      break;
  }

  if (config.disable_admission_control) {
    auto* dyn = dynamic_cast<core::DynamicBufferAllocator*>(allocator.get());
    if (dyn != nullptr) dyn->set_enforce_assumptions(false);
  }

  auto sim = std::unique_ptr<VodSimulator>(
      new VodSimulator(config, *params, std::move(layout),
                       std::move(allocator), std::move(scheduler), broker));
  return sim;
}

VodSimulator::VodSimulator(const SimConfig& config,
                           core::AllocParams alloc_params,
                           disk::VideoLayout layout,
                           std::unique_ptr<core::BufferAllocator> allocator,
                           std::unique_ptr<sched::BufferScheduler> scheduler,
                           MemoryBroker* broker)
    : config_(config), alloc_params_(alloc_params), layout_(std::move(layout)),
      disk_(config.profile), allocator_(std::move(allocator)),
      scheduler_(std::move(scheduler)), broker_(broker),
      rng_(config.seed, /*stream=*/0x9e3779b97f4a7c15ULL ^
                            static_cast<std::uint64_t>(config.disk_id)),
      events_(MakeEventQueue(config.event_queue)) {
  metrics_.initial_latency_by_n.resize(
      static_cast<std::size_t>(alloc_params_.n_max) + 1);
}

Status VodSimulator::AddArrivals(const std::vector<ArrivalEvent>& arrivals) {
  for (const ArrivalEvent& ev : arrivals) {
    if (ev.time < now_) {
      return Status::InvalidArgument("arrival in the past");
    }
    if (ev.video < 0 || ev.video >= layout_.video_count()) {
      return Status::InvalidArgument("arrival references unknown video");
    }
    arrivals_.push_back(ev);
    Push(ev.time, SimEventKind::kArrival, kInvalidRequestId,
         arrivals_.size() - 1);
  }
  return Status::OK();
}

void VodSimulator::Push(Seconds time, SimEventKind kind, RequestId id,
                        std::size_t arrival_index) {
  SimEvent ev;
  ev.time = time;
  ev.seq = next_seq_++;
  ev.kind = kind;
  ev.request = id;
  ev.arrival_index = arrival_index;
  events_->Push(ev);
}

Seconds VodSimulator::NextEventTime() const {
  const SimEvent* top = events_->Peek();
  return top == nullptr ? kInf : top->time;
}

bool VodSimulator::Step() {
  VODB_PROF_SCOPE("sim.step");
  if (events_->empty()) return false;
  const SimEvent ev = events_->PopTop();
  VOD_DCHECK(ev.time >= now_ - kEps);
#if VODB_AUDIT_ENABLED
  auditor_.CheckEventTime(ev.time);
#endif
  now_ = std::max(now_, ev.time);
  switch (ev.kind) {
    case SimEventKind::kArrival:
      HandleArrival(ev);
      break;
    case SimEventKind::kServiceComplete:
      HandleServiceComplete(ev);
      break;
    case SimEventKind::kDeparture:
      HandleDeparture(ev);
      break;
    case SimEventKind::kWakeup:
      if (wakeup_pending_ && Abs(ev.time - scheduled_wakeup_) < kEps) {
        wakeup_pending_ = false;
      }
      MaybeScheduleService();
      break;
  }
  // Observers: both are pure reads of post-dispatch state. Gated on
  // attachment so unobserved runs pay one pointer compare per event.
  if (timeseries_ != nullptr && timeseries_->Due(now_)) SampleTimeseries();
  if (postmortem_ != nullptr) postmortem_->NoteTime(now_);
  return true;
}

void VodSimulator::RunUntil(Seconds t) {
  while (const SimEvent* top = events_->Peek()) {
    if (top->time > t) break;
    Step();
  }
}

void VodSimulator::RunUntilBefore(Seconds t) {
  while (const SimEvent* top = events_->Peek()) {
    if (!(top->time < t)) break;
    Step();
  }
}

void VodSimulator::RunToCompletion() {
  while (Step()) {
  }
}

void VodSimulator::Finalize() {
  std::sort(arrival_times_.begin(), arrival_times_.end());
  metrics_.ResolveEstimation(arrival_times_);
}

void VodSimulator::set_postmortem(obs::PostmortemSink* sink) {
  postmortem_ = sink;
  if (sink != nullptr) {
    // Give the sink this simulator's ring if the harness did not already
    // wire one (attach the tracer before the sink for the tail to flow).
    if (tracer_ != nullptr) sink->set_tracer(tracer_);
    // Capture-then-fail: dump flight-recorder state before the auditor's
    // handler (by default: abort) runs.
    auditor_.set_violation_observer([this](const InvariantViolation& v) {
      if (postmortem_ == nullptr) return;
      (void)postmortem_->Capture(obs::PostmortemReason::kInvariantViolation,
                                 v.invariant + ": " + v.detail, v.time);
    });
  } else {
    auditor_.set_violation_observer(nullptr);
  }
}

void VodSimulator::SampleTimeseries() {
  obs::TimeseriesSample sample;
  // ReservedMemory() is a const read of the broker's reservation as of its
  // last repricing — sampling must not AdvanceTo (that would mutate shared
  // state and break the pure-observer guarantee). Runs without a broker
  // report zero reservation; `buffered` is the actual memory in use.
  sample.reserved =
      broker_ != nullptr ? broker_->ReservedMemory() : Bits(0);
  sample.buffered = TotalBufferedBits(now_);
  sample.queue_depth = static_cast<int>(events_->size());
  sample.active = allocator_->active_count();
  int degraded = 0;
  for (const auto& node : requests_) {
    if (node.value.degraded) ++degraded;
  }
  sample.degraded = degraded;
  sample.disk_busy = metrics_.disk_busy_time;
  timeseries_->Record(now_, sample);
}

// ---------------------------------------------------------------------------
// Consumption bookkeeping
// ---------------------------------------------------------------------------

Bits VodSimulator::ConsumedAt(const Req& r, Seconds t) const {
  if (!r.playing) return Bits(0);
  const Bits grown =
      r.consumed + alloc_params_.cr * std::max(Seconds(0), t - r.consumed_at);
  // Consumption can neither exceed what has been delivered (underflow
  // stalls playback) nor the total the user will watch.
  return std::min({grown, r.delivered, r.total_bits});
}

void VodSimulator::SyncConsumption(Req& r, Seconds t) {
  r.consumed = ConsumedAt(r, t);
  r.consumed_at = t;
}

Bits VodSimulator::BufferLevelAt(const Req& r, Seconds t) const {
  return r.delivered - ConsumedAt(r, t);
}

Bits VodSimulator::TotalBufferedBits(Seconds t) const {
  Bits total;
  for (const auto& node : requests_) {
    if (node.value.admitted) total += BufferLevelAt(node.value, t);
  }
  return total;
}

// ---------------------------------------------------------------------------
// SchedulerContext
// ---------------------------------------------------------------------------

const VodSimulator::Req& VodSimulator::GetReq(RequestId id) const {
  const Req* r = requests_.Find(id);
  VOD_CHECK(r != nullptr);
  return *r;
}

VodSimulator::Req& VodSimulator::GetReq(RequestId id) {
  Req* r = requests_.Find(id);
  VOD_CHECK(r != nullptr);
  return *r;
}

Seconds VodSimulator::BufferDeadline(RequestId id) const {
  const Req& r = GetReq(id);
  // An unfilled buffer has no continuity deadline; a fully delivered
  // request never underflows either.
  if (!r.playing || r.delivered >= r.total_bits) return kInf;
  const Bits level = BufferLevelAt(r, now_);
  return now_ + level / alloc_params_.cr;
}

bool VodSimulator::NeverServiced(RequestId id) const {
  return !GetReq(id).playing;
}

double VodSimulator::CurrentCylinder(RequestId id) const {
  const Req& r = GetReq(id);
  Result<double> cyl =
      layout_.CylinderOf(r.video, r.start_offset + r.delivered);
  VOD_CHECK(cyl.ok());
  return cyl.value();
}

bool VodSimulator::NeedsService(RequestId id) const {
  const Req& r = GetReq(id);
  return r.admitted && r.delivered < r.total_bits;
}

core::AllocationDecision VodSimulator::CachedPreview() const {
  if (preview_cache_time_ != now_ ||
      preview_cache_version_ != state_version_) {
    Result<core::AllocationDecision> d = allocator_->Preview(now_);
    VOD_CHECK(d.ok());
    preview_cache_ = d.value();
    preview_cache_time_ = now_;
    preview_cache_version_ = state_version_;
  }
  return preview_cache_;
}

Seconds VodSimulator::CachedWorstLatency(int n_or_g) const {
  const auto i = static_cast<std::size_t>(n_or_g);
  if (i >= worst_latency_cache_.size()) {
    worst_latency_cache_.resize(i + 1, Seconds(-1));
  }
  if (worst_latency_cache_[i] < Seconds(0)) {
    worst_latency_cache_[i] =
        core::WorstDiskLatency(config_.profile, config_.method, n_or_g);
  }
  return worst_latency_cache_[i];
}

Seconds VodSimulator::WorstServiceTime(RequestId id) const {
  const Req& r = GetReq(id);
  const core::AllocationDecision d = CachedPreview();
  const Bits bits = std::min(d.buffer_size, r.total_bits - r.delivered);
  // Lookahead DL uses the *current* load for Sweep (γ(Cyln/n)), the group
  // size for GSS, and the full stroke for Round-Robin.
  const int n_or_g = config_.method == core::ScheduleMethod::kGss
                         ? config_.gss_group_size
                         : std::max(1, allocator_->active_count());
  const Seconds dl = CachedWorstLatency(n_or_g);
  return dl + bits / alloc_params_.tr;
}

Seconds VodSimulator::NewcomerReserve() const {
  const core::AllocationDecision d = CachedPreview();
  const int n_or_g = config_.method == core::ScheduleMethod::kGss
                         ? config_.gss_group_size
                         : std::max(1, allocator_->active_count());
  const Seconds dl = CachedWorstLatency(n_or_g);
  const Seconds slot = dl + d.buffer_size / alloc_params_.tr;
  // The scheme's standing insertion budget, in whole service slots. The
  // dynamic scheme sized every buffer for k_c additional services per usage
  // period (that is what k means); refilling k_c slots early keeps exactly
  // that margin in every buffer, so admitted newcomers displace no one.
  // The static scheme's structural slack is the N−n free slots; a small cap
  // keeps its memory behaviour near the analytic model while covering the
  // bursts a Poisson arrival stream realistically delivers per period.
  int slots = std::min(d.k, alloc_params_.n_max - allocator_->active_count());
  if (config_.scheme == AllocScheme::kStatic) {
    slots = std::min(alloc_params_.n_max - allocator_->active_count(), 4);
  }
  return std::max(1, slots) * slot;
}

// ---------------------------------------------------------------------------
// Event handlers
// ---------------------------------------------------------------------------

void VodSimulator::RecordConcurrency() {
  // Concurrency counts viewing users (n): admitted requests that have not
  // yet departed, including ones draining their final buffer.
  const int n = allocator_->active_count();
  metrics_.concurrency.Record(ToSeconds(now_), n);
  metrics_.peak_concurrency = std::max(metrics_.peak_concurrency, n);
}

void VodSimulator::ReportBrokerState(int k_estimate, bool at_admission) {
  last_k_estimate_ = k_estimate;
  if (broker_ != nullptr) {
    broker_->AdvanceTo(now_);
    broker_->OnState(config_.disk_id, allocator_->active_count(), k_estimate);
    metrics_.memory_reserved.Record(ToSeconds(now_),
                                    ToBits(broker_->ReservedMemory()));
#if VODB_AUDIT_ENABLED
    // The reservation must partition the capacity at admission points (the
    // CanAdmit gate just approved this exact state); between admissions the
    // k estimate drifts and repricing may transiently exceed capacity by
    // design, so only non-negativity is enforced there.
    const Bits capacity = broker_->Capacity();
    if (std::isfinite(capacity.value())) {
      auditor_.CheckBrokerReservation(now_, broker_->ReservedMemory(),
                                      capacity, at_admission);
    }
#else
    static_cast<void>(at_admission);
#endif
  }
}

void VodSimulator::HandleArrival(const SimEvent& ev) {
  // A scheduled arrival has no caller to hand the request id (or the
  // rejection) back to; both outcomes are fully recorded in the metrics.
  const Result<RequestId> outcome = ProcessArrival(arrivals_[ev.arrival_index]);
  static_cast<void>(outcome);
}

Result<RequestId> VodSimulator::SubmitNow(const ArrivalEvent& arrival) {
  if (arrival.time < now_ - kEps) {
    return Status::InvalidArgument("arrival in the past");
  }
  if (arrival.video < 0 || arrival.video >= layout_.video_count()) {
    return Status::InvalidArgument("arrival references unknown video");
  }
  now_ = std::max(now_, arrival.time);
  return ProcessArrival(arrival);
}

Result<RequestId> VodSimulator::ProcessArrival(const ArrivalEvent& a) {
  ++metrics_.arrivals;
  ++state_version_;
  arrival_times_.push_back(now_);
  allocator_->NoteArrival(now_);
  // Memory squeezes are time-gated; price this arrival against the window
  // that is open *now*.
  if (broker_ != nullptr) broker_->AdvanceTo(now_);

  Req r;
  r.id = next_request_id_++;
  r.video = a.video;
  r.arrival = now_;
  r.viewing = a.viewing_time;
  Result<disk::VideoInfo> info = layout_.Get(a.video);
  VOD_CHECK(info.ok());
  r.start_offset =
      std::clamp(a.start_position * alloc_params_.cr, Bits(0), info->size);
  r.total_bits = std::min(a.viewing_time * alloc_params_.cr,
                          info->size - r.start_offset);
#if VODB_TRACE_ENABLED
  if (tracer_ != nullptr) {
    VODB_TRACE_INIT(ev, kArrival, r.id);
    tracer_->Emit(ev);
  }
#endif
  if (r.total_bits <= Bits(0)) {
    ++metrics_.rejected;
    ++metrics_.rejected_invalid;
#if VODB_TRACE_ENABLED
    if (tracer_ != nullptr) {
      VODB_TRACE_INIT(ev, kRejectInvalid, r.id);
      tracer_->Emit(ev);
    }
#endif
    return Status::InvalidArgument("nothing to play at that position");
  }

  // Immediate rejections (Sec. 5.1): a fully loaded disk turns the request
  // away; so does an exhausted memory budget. Assumption-1 conflicts defer
  // instead (handled in TryAdmitPending).
  if (allocator_->active_count() >= alloc_params_.n_max) {
    ++metrics_.rejected;
    ++metrics_.rejected_capacity;
#if VODB_TRACE_ENABLED
    if (tracer_ != nullptr) {
      VODB_TRACE_INIT(ev, kRejectCapacity, r.id);
      ev.n = allocator_->active_count();
      tracer_->Emit(ev);
    }
#endif
    return Status::CapacityExceeded("fully loaded (n == N)");
  }
  if (broker_ != nullptr &&
      !broker_->CanAdmit(config_.disk_id, allocator_->active_count() + 1,
                         last_k_estimate_)) {
    ++metrics_.rejected;
    ++metrics_.rejected_memory;
#if VODB_TRACE_ENABLED
    if (tracer_ != nullptr) {
      VODB_TRACE_INIT(ev, kRejectMemory, r.id);
      ev.n = allocator_->active_count();
      tracer_->Emit(ev);
    }
#endif
    return Status::CapacityExceeded("memory budget exhausted");
  }

  const RequestId id = r.id;
  requests_.Insert(id, r);
  pending_.push_back(id);
  TryAdmitPending();
  MaybeScheduleService();
  return id;
}

Status VodSimulator::CancelRequest(RequestId id) {
  Req* r = requests_.Find(id);
  if (r == nullptr) return Status::NotFound("no such request");
  ++state_version_;
  // Still queued for admission?
  auto pit = std::find(pending_.begin(), pending_.end(), id);
  if (pit != pending_.end()) pending_.erase(pit);
  if (r->admitted) {
    allocator_->Remove(id);
    scheduler_->Remove(id);
  }
  // The stream's delivered bits leave the buffer pool with it. Bits of a
  // read still in flight were never delivered, so they enter neither ledger
  // side.
  metrics_.buffer_bits_released += r->delivered;
  // A cancellation mid-service lets the read finish; HandleServiceComplete
  // tolerates the missing request.
  requests_.Erase(id);
#if VODB_AUDIT_ENABLED
  auditor_.ForgetRequest(id);
#endif
  ++metrics_.cancelled;
#if VODB_TRACE_ENABLED
  if (tracer_ != nullptr) {
    VODB_TRACE_INIT(ev, kCancel, id);
    tracer_->Emit(ev);
  }
#endif
  RecordConcurrency();
  ReportBrokerState(last_k_estimate_);
  MaybeScheduleService();
  return Status::OK();
}

void VodSimulator::TryAdmitPending() {
  VODB_PROF_SCOPE("sim.admit");
  if (broker_ != nullptr && !pending_.empty()) broker_->AdvanceTo(now_);
  while (!pending_.empty()) {
    // Sweep* never admits mid-period: the newcomer would perturb the sweep
    // order. Every other method admits whenever the allocator agrees.
    if (!scheduler_->AdmitsMidPeriod()) {
      auto* sweep = dynamic_cast<sched::SweepScheduler*>(scheduler_.get());
      if (sweep != nullptr && !sweep->AtPeriodBoundary()) break;
    }
    const RequestId id = pending_.front();
    Req& r = GetReq(id);

    if (allocator_->active_count() >= alloc_params_.n_max) {
      // The disk filled up while the request waited: reject it now.
      pending_.pop_front();
      requests_.Erase(id);
      ++metrics_.rejected;
      ++metrics_.rejected_capacity;
#if VODB_TRACE_ENABLED
      if (tracer_ != nullptr) {
        VODB_TRACE_INIT(ev, kRejectCapacity, id);
        ev.n = allocator_->active_count();
        tracer_->Emit(ev);
      }
#endif
      continue;
    }
    if (broker_ != nullptr &&
        !broker_->CanAdmit(config_.disk_id, allocator_->active_count() + 1,
                           last_k_estimate_)) {
      pending_.pop_front();
      requests_.Erase(id);
      ++metrics_.rejected;
      ++metrics_.rejected_memory;
#if VODB_TRACE_ENABLED
      if (tracer_ != nullptr) {
        VODB_TRACE_INIT(ev, kRejectMemory, id);
        ev.n = allocator_->active_count();
        tracer_->Emit(ev);
      }
#endif
      continue;
    }

    const Status st = allocator_->Admit(id, now_);
    if (st.code() == StatusCode::kDeferred) {
      if (!r.was_deferred) {
        r.was_deferred = true;
        ++metrics_.deferred_admissions;
#if VODB_TRACE_ENABLED
        if (tracer_ != nullptr) {
          VODB_TRACE_INIT(ev, kDefer, id);
          ev.n = allocator_->active_count();
          tracer_->Emit(ev);
        }
#endif
      }
      break;  // FIFO: later arrivals wait behind the deferred one.
    }
    if (!st.ok()) {
      // The allocator itself refused (non-deferred): a capacity condition.
      pending_.pop_front();
      requests_.Erase(id);
      ++metrics_.rejected;
      ++metrics_.rejected_capacity;
#if VODB_TRACE_ENABLED
      if (tracer_ != nullptr) {
        VODB_TRACE_INIT(ev, kRejectCapacity, id);
        ev.n = allocator_->active_count();
        tracer_->Emit(ev);
      }
#endif
      continue;
    }

    pending_.pop_front();
    ++state_version_;
    r.admitted = true;
    r.n_at_admit = allocator_->active_count();
    ++metrics_.admitted;
#if VODB_TRACE_ENABLED
    if (tracer_ != nullptr) {
      VODB_TRACE_INIT(ev, kAdmit, id);
      ev.n = allocator_->active_count();
      tracer_->Emit(ev);
    }
#endif
    scheduler_->Add(id, now_);
    RecordConcurrency();
    ReportBrokerState(last_k_estimate_, /*at_admission=*/true);
  }
}

void VodSimulator::MaybeScheduleService() {
  VODB_PROF_SCOPE("sim.schedule");
  if (disk_busy_) return;
  TryAdmitPending();
  if (config_.injector != nullptr && config_.injector->active()) {
    // Whole-disk outage window: no service starts until the disk is back.
    // Playback continues off buffered data, so streams may underflow while
    // the disk is dark — poll starvation on every visit (the normal
    // detection point, service completion, cannot fire here).
    Seconds resume;
    if (config_.injector->InOutage(config_.disk_id, now_, &resume)) {
      DetectStarvation();
      if (std::isfinite(resume.value()) &&
          (!wakeup_pending_ || resume < scheduled_wakeup_ - kEps)) {
        scheduled_wakeup_ = resume;
        wakeup_pending_ = true;
        Push(resume, SimEventKind::kWakeup, kInvalidRequestId);
      }
      return;
    }
    // Bounded-backoff cooldown after a failed read: hold further I/O.
    if (retry_cooldown_until_ > now_ + kEps) {
      if (!wakeup_pending_ ||
          retry_cooldown_until_ < scheduled_wakeup_ - kEps) {
        scheduled_wakeup_ = retry_cooldown_until_;
        wakeup_pending_ = true;
        Push(retry_cooldown_until_, SimEventKind::kWakeup, kInvalidRequestId);
      }
      return;
    }
  }
  std::optional<sched::ServiceDecision> dec = scheduler_->Next(*this, now_);
  if (!dec.has_value()) return;
#if VODB_AUDIT_ENABLED
  // Service-order audits (BubbleUp displacement rule, lazy-start pacing).
  // Skipped under failure injection: with the Assumption-1 gate disabled,
  // deadlines are *expected* to become infeasible.
  if (!config_.disable_admission_control) {
    const std::vector<RequestId>& seq =
        scheduler_->ServiceSequence(*this, now_);
    auditor_.CheckServiceSequence(*this, seq, now_);
    auditor_.CheckServiceDecision(*this, seq, *dec, now_);
  }
#endif
  if (dec->not_before <= now_ + kEps) {
    BeginService(dec->id);
    return;
  }
  if (!wakeup_pending_ || dec->not_before < scheduled_wakeup_ - kEps) {
    scheduled_wakeup_ = dec->not_before;
    wakeup_pending_ = true;
    Push(dec->not_before, SimEventKind::kWakeup, kInvalidRequestId);
  }
}

void VodSimulator::BeginService(RequestId id) {
  Req& r = GetReq(id);
  ++state_version_;

  // Fault probe before any allocator mutation: a read the injector fails
  // costs mechanical time but must not grow a buffer for data that never
  // arrives. The zero-fault answer (factor 1.0, extra 0.0) leaves every
  // computation below bit-identical to an uninjected run — *1.0 and +0.0
  // are exact IEEE identities.
  fault::ReadFault f;
  if (config_.injector != nullptr) {
    f = config_.injector->OnRead(config_.disk_id, now_);
  }
  if (r.round_failures > 0) ++metrics_.read_retries;

  if (f.fail) {
    Result<double> cyl =
        layout_.CylinderOf(r.video, r.start_offset + r.delivered);
    VOD_CHECK(cyl.ok());
    const double rot =
        config_.worst_case_rotation ? 1.0 : rng_.NextDouble();
    Result<disk::ServiceTiming> timing = disk_.FailedRead(cyl.value(), rot);
    VOD_CHECK(timing.ok());
    disk_busy_ = true;
    in_service_ = id;
    in_service_bits_ = Bits(0);
    in_service_failed_ = true;
    in_service_timing_ = *timing;
    in_service_max_retries_ = f.max_retries;
    in_service_retry_backoff_ = f.retry_backoff;
    const Seconds dur = timing->total() + f.extra_latency;
    Push(now_ + dur, SimEventKind::kServiceComplete, id);
    ++metrics_.read_faults;
    metrics_.disk_busy_time += dur;
#if VODB_TRACE_ENABLED
    if (tracer_ != nullptr) {
      VODB_TRACE_INIT(fault_ev, kReadFault, id);
      fault_ev.seek = timing->seek;
      fault_ev.rotation = timing->rotation;
      tracer_->Emit(fault_ev);
    }
#endif
    return;
  }

  Result<core::AllocationDecision> d = allocator_->Allocate(id, now_);
  VOD_CHECK(d.ok());
  const Bits bits = std::min(d->buffer_size, r.total_bits - r.delivered);
  VOD_CHECK(bits > Bits(0));

  Result<double> cyl =
      layout_.CylinderOf(r.video, r.start_offset + r.delivered);
  VOD_CHECK(cyl.ok());
  const double rot =
      config_.worst_case_rotation ? 1.0 : rng_.NextDouble();
  Result<disk::ServiceTiming> timing = disk_.Read(cyl.value(), bits, rot);
  VOD_CHECK(timing.ok());

  const Seconds dur = timing->total() * f.latency_factor + f.extra_latency;
  if (dur > timing->total()) ++metrics_.delayed_reads;
  disk_busy_ = true;
  in_service_ = id;
  in_service_bits_ = bits;
  in_service_timing_ = *timing;
  Push(now_ + dur, SimEventKind::kServiceComplete, id);

  AllocationRecord rec;
  rec.time = now_;
  rec.request = id;
  rec.n = d->n;
  rec.k = d->k;
  rec.buffer_size = d->buffer_size;
  rec.usage_period = d->usage_period;
  metrics_.allocations.push_back(rec);
#if VODB_TRACE_ENABLED
  if (tracer_ != nullptr) {
    VODB_TRACE_INIT(alloc_ev, kAllocation, id);
    alloc_ev.n = d->n;
    alloc_ev.k = d->k;
    alloc_ev.bits = d->buffer_size;
    alloc_ev.usage_period = d->usage_period;
    tracer_->Emit(alloc_ev);
    VODB_TRACE_INIT(start_ev, kServiceStart, id);
    start_ev.bits = bits;
    start_ev.seek = timing->seek;
    start_ev.rotation = timing->rotation;
    start_ev.transfer = timing->transfer;
    tracer_->Emit(start_ev);
  }
#endif
#if VODB_AUDIT_ENABLED
  auditor_.CheckAllocation(alloc_params_, config_.method, config_.profile,
                           config_.scheme == AllocScheme::kDynamic, rec);
#endif
  metrics_.estimated_k.Add(d->k);
  metrics_.memory_usage.Record(ToSeconds(now_), ToBits(TotalBufferedBits(now_)));
  ++metrics_.services;
  metrics_.disk_busy_time += dur;
  ReportBrokerState(d->k);
}

void VodSimulator::DetectStarvation() {
  // A buffer that reaches zero exactly as its refill completes is the
  // intended just-in-time behaviour; only count underflows that persisted
  // beyond a 1 ms grace (a genuine playback glitch).
  constexpr Seconds kGrace = Seconds(1e-3);
  for (auto& node : requests_) {
    Req& r = node.value;
    if (!r.admitted || !r.playing) continue;
    if (r.delivered >= r.total_bits) continue;
    const Seconds empty_since =
        r.consumed_at + (r.delivered - r.consumed) / alloc_params_.cr;
    const bool starving = now_ > empty_since + kGrace;
    if (starving && !r.starved) {
      r.starved = true;
      ++metrics_.starvation_events;
#if VODB_TRACE_ENABLED
      if (tracer_ != nullptr) {
        VODB_TRACE_INIT(ev, kStarvation, r.id);
        tracer_->Emit(ev);
      }
#endif
      // Under active fault injection a missed round degrades the stream
      // (graceful degradation, not failure). Gated on an active injector so
      // fault-free runs — including ones with residual starvation — keep
      // their metrics bit-identical.
      if (config_.injector != nullptr && config_.injector->active()) {
        MarkDegraded(r);
      }
    } else if (!starving) {
      r.starved = false;
    }
  }
}

void VodSimulator::MarkDegraded(Req& r) {
  if (r.degraded) return;
  r.degraded = true;
  ++metrics_.degraded_entries;
  if (!r.ever_degraded) {
    r.ever_degraded = true;
    ++metrics_.degraded_streams;
  }
#if VODB_TRACE_ENABLED
  if (tracer_ != nullptr) {
    VODB_TRACE_INIT(ev, kDegraded, r.id);
    tracer_->Emit(ev);
  }
#endif
  if (postmortem_ != nullptr) {
    postmortem_->NoteDegradation(
        static_cast<std::uint64_t>(metrics_.hiccup_events),
        static_cast<std::uint64_t>(metrics_.degraded_entries), now_);
  }
}

void VodSimulator::HandleServiceComplete(const SimEvent& ev) {
  const RequestId id = ev.request;
  VOD_CHECK(disk_busy_ && in_service_ == id);
  ++state_version_;
  disk_busy_ = false;
  in_service_ = kInvalidRequestId;
  const bool failed = in_service_failed_;
  in_service_failed_ = false;
#if VODB_TRACE_ENABLED
  // A failed read traced kReadFault at its start; only successful reads
  // carry a service_end (the Chrome exporter pairs it with service_start).
  if (tracer_ != nullptr && !failed) {
    VODB_TRACE_INIT(end_ev, kServiceEnd, id);
    end_ev.bits = in_service_bits_;
    end_ev.seek = in_service_timing_.seek;
    end_ev.rotation = in_service_timing_.rotation;
    end_ev.transfer = in_service_timing_.transfer;
    tracer_->Emit(end_ev);
  }
#endif

  // A request can depart mid-service only if viewing ended exactly at the
  // boundary; it may also have been removed — guard.
  Req* rp = requests_.Find(id);
  if (failed) {
    if (rp != nullptr) {
      Req& r = *rp;
      DetectStarvation();
      SyncConsumption(r, now_);
      ++r.round_failures;
      MarkDegraded(r);
      if (r.round_failures > in_service_max_retries_) {
        // Retry budget exhausted: the round is lost (a playback hiccup if
        // the buffer runs dry). The counter resets so the next attempt is a
        // fresh round; the scheduler was never told the round completed, so
        // the stream stays first in line.
        ++metrics_.hiccup_events;
        r.round_failures = 0;
#if VODB_TRACE_ENABLED
        if (tracer_ != nullptr) {
          VODB_TRACE_INIT(hiccup_ev, kHiccup, id);
          tracer_->Emit(hiccup_ev);
        }
#endif
        if (postmortem_ != nullptr) {
          postmortem_->NoteDegradation(
              static_cast<std::uint64_t>(metrics_.hiccup_events),
              static_cast<std::uint64_t>(metrics_.degraded_entries), now_);
        }
      } else if (in_service_retry_backoff_ > Seconds(0)) {
        // Bounded exponential backoff before the disk re-issues any I/O.
        const double doubling =
            std::pow(2.0, static_cast<double>(r.round_failures - 1));
        retry_cooldown_until_ = std::max(
            retry_cooldown_until_, now_ + in_service_retry_backoff_ * doubling);
      }
      metrics_.memory_usage.Record(ToSeconds(now_), ToBits(TotalBufferedBits(now_)));
    }
    in_service_bits_ = Bits(0);
    MaybeScheduleService();
    return;
  }
  if (rp != nullptr) {
    Req& r = *rp;
    DetectStarvation();
    SyncConsumption(r, now_);
    r.delivered += in_service_bits_;
    metrics_.buffer_bits_allocated += in_service_bits_;
    if (r.degraded) {
      // A successful refill ends the degraded episode.
      r.degraded = false;
      r.round_failures = 0;
      ++metrics_.fault_recoveries;
#if VODB_TRACE_ENABLED
      if (tracer_ != nullptr) {
        VODB_TRACE_INIT(rec_ev, kRecovered, id);
        tracer_->Emit(rec_ev);
      }
#endif
    }
    ++r.fill_count;
#if VODB_AUDIT_ENABLED
    auditor_.CheckRequestAccounting(now_, id, r.delivered, r.consumed);
#endif
    if (r.first_data < Seconds(0)) {
      r.first_data = now_;
      const Seconds il = now_ - r.arrival;
      metrics_.initial_latency.Add(ToSeconds(il));
      const std::size_t bucket = static_cast<std::size_t>(
          std::clamp(r.n_at_admit, 1, alloc_params_.n_max));
      metrics_.initial_latency_by_n[bucket].Add(ToSeconds(il));
    }
    // Sweep* streams are double-buffered: the data filled in period p is
    // consumed during period p+1 (that lag is where Theorem 3's ~2·n·BS
    // memory comes from). Playback therefore begins at the second fill —
    // otherwise a stream refilled early in one period and late in the next
    // (sweep order follows disk position, not deadlines) would underflow.
    const int fills_before_playback =
        config_.method == core::ScheduleMethod::kSweep ? 2 : 1;
    if (!r.playing && (r.fill_count >= fills_before_playback ||
                       r.delivered >= r.total_bits)) {
      r.playing = true;
      r.consumed = Bits(0);
      r.consumed_at = now_;
    }
    r.starved = false;
    scheduler_->OnServiceComplete(id, now_);
    if (r.delivered >= r.total_bits) {
      // Fully delivered: the request keeps its slot in n while its last
      // buffer drains (it is still viewing) but needs no more services, so
      // its inertia snapshot is retired and the scheduler forgets it.
      allocator_->MarkDrained(id);
      scheduler_->Remove(id);
      const Bits left = r.total_bits - ConsumedAt(r, now_);
      Push(now_ + left / alloc_params_.cr, SimEventKind::kDeparture, id);
    }
    metrics_.memory_usage.Record(ToSeconds(now_), ToBits(TotalBufferedBits(now_)));
  }
  in_service_bits_ = Bits(0);
  MaybeScheduleService();
}

void VodSimulator::HandleDeparture(const SimEvent& ev) {
  const RequestId id = ev.request;
  const Req* r = requests_.Find(id);
  if (r == nullptr) return;
  ++state_version_;
  // Use-it-and-toss-it: everything delivered to this stream is released at
  // departure (the conservation ledger's release side).
  metrics_.buffer_bits_released += r->delivered;
  allocator_->Remove(id);
  scheduler_->Remove(id);
  requests_.Erase(id);
#if VODB_AUDIT_ENABLED
  auditor_.ForgetRequest(id);
#endif
  ++metrics_.completed;
#if VODB_TRACE_ENABLED
  if (tracer_ != nullptr) {
    VODB_TRACE_INIT(trace_ev, kDeparture, id);
    tracer_->Emit(trace_ev);
  }
#endif
  RecordConcurrency();
  ReportBrokerState(last_k_estimate_);
  MaybeScheduleService();
}

// ---------------------------------------------------------------------------
// Series merging
// ---------------------------------------------------------------------------

StepTimeSeries MergeStepSeriesSum(
    const std::vector<const StepTimeSeries*>& series) {
  struct Tagged {
    double time;
    std::size_t src;
    double value;
  };
  std::vector<Tagged> all;
  for (std::size_t s = 0; s < series.size(); ++s) {
    for (const auto& [t, v] : series[s]->points()) {
      all.push_back({t, s, v});
    }
  }
  std::sort(all.begin(), all.end(),
            [](const Tagged& a, const Tagged& b) { return a.time < b.time; });
  std::vector<double> last(series.size(), 0.0);
  double sum = 0.0;
  StepTimeSeries out;
  for (const Tagged& tg : all) {
    sum += tg.value - last[tg.src];
    last[tg.src] = tg.value;
    out.Record(tg.time, sum);
  }
  return out;
}

}  // namespace vod::sim
