#include "sim/rng.h"

#include <cmath>

#include "common/check.h"

namespace vod::sim {

Rng::Rng(std::uint64_t seed, std::uint64_t stream)
    : state_(0), inc_((stream << 1u) | 1u) {
  NextU32();
  state_ += seed;
  NextU32();
}

std::uint32_t Rng::NextU32() {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const std::uint32_t xorshifted =
      static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

double Rng::NextDouble() {
  // 32 random bits scaled to [0,1); adequate resolution for simulation.
  return NextU32() * (1.0 / 4294967296.0);
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::Exponential(double rate) {
  VOD_DCHECK(rate > 0.0);
  double u = NextDouble();
  if (u <= 0.0) u = 1e-12;  // Avoid log(0).
  return -std::log(u) / rate;
}

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t MixSeed(std::uint64_t h, std::uint64_t v) {
  return SplitMix64(h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
}

std::uint32_t Rng::NextBelow(std::uint32_t n) {
  VOD_DCHECK(n > 0);
  // Lemire's rejection-free-ish bounded sampling (bias negligible here).
  return static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(NextU32()) * n) >> 32);
}

}  // namespace vod::sim
