#include "sim/event_queue.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace vod::sim {

namespace {
/// Below this the bucket array never shrinks (resize churn guard).
constexpr std::size_t kMinBuckets = 32;
}  // namespace

std::string_view EventQueueKindName(EventQueueKind kind) {
  return kind == EventQueueKind::kCalendar ? "calendar" : "binary-heap";
}

std::unique_ptr<EventQueue> MakeEventQueue(EventQueueKind kind) {
  if (kind == EventQueueKind::kCalendar) {
    return std::make_unique<CalendarEventQueue>();
  }
  return std::make_unique<HeapEventQueue>();
}

// ---------------------------------------------------------------------------
// HeapEventQueue
// ---------------------------------------------------------------------------

void HeapEventQueue::Push(const SimEvent& ev) { heap_.push(ev); }

const SimEvent* HeapEventQueue::Peek() const {
  return heap_.empty() ? nullptr : &heap_.top();
}

SimEvent HeapEventQueue::PopTop() {
  VOD_CHECK(!heap_.empty());
  SimEvent out = heap_.top();
  heap_.pop();
  return out;
}

// ---------------------------------------------------------------------------
// CalendarEventQueue
// ---------------------------------------------------------------------------

CalendarEventQueue::CalendarEventQueue(std::size_t initial_buckets)
    : buckets_(initial_buckets), mask_(initial_buckets - 1) {
  VOD_CHECK(initial_buckets >= 2 &&
            (initial_buckets & (initial_buckets - 1)) == 0);
}

double CalendarEventQueue::CycleFor(double t) const {
  // Monotone in t (division by a positive double and floor both preserve
  // order under IEEE rounding), which is all correctness needs: the event
  // with the minimum time is always in the minimum occupied cycle.
  return std::floor(t / width_);
}

std::size_t CalendarEventQueue::BucketOf(double cycle) const {
  // Cycle modulo the bucket count, via doubles so far-future times cannot
  // overflow an integer intermediate. fmod is exact; for integer-valued
  // cycles below 2^53 this is exact ring arithmetic.
  const double nb = static_cast<double>(buckets_.size());
  double m = std::fmod(cycle, nb);
  if (m < 0.0) m += nb;
  return static_cast<std::size_t>(m) & mask_;
}

void CalendarEventQueue::SeekCursorTo(double cycle) const {
  cur_cycle_ = cycle;
  cur_ = BucketOf(cycle);
}

void CalendarEventQueue::Push(const SimEvent& ev) {
  const double cycle = CycleFor(ev.time.value());
  if (size_ == 0 || cycle < cur_cycle_) SeekCursorTo(cycle);
  const std::size_t idx = BucketOf(cycle);
  buckets_[idx].push_back(Entry{ev, cycle});
  ++size_;
  if (top_.valid && EventBefore(ev, top_.ev)) {
    top_.bucket = idx;
    top_.slot = buckets_[idx].size() - 1;
    top_.ev = ev;
  }
  ++ops_since_resize_;
  if (size_ > 2 * buckets_.size()) Resize(buckets_.size() * 2);
}

const SimEvent* CalendarEventQueue::Peek() const {
  return LocateTop() ? &top_.ev : nullptr;
}

SimEvent CalendarEventQueue::PopTop() {
  const bool nonempty = LocateTop();
  VOD_CHECK(nonempty);
  const SimEvent out = top_.ev;
  std::vector<Entry>& b = buckets_[top_.bucket];
  b[top_.slot] = b.back();
  b.pop_back();
  --size_;
  top_.valid = false;
  ++ops_since_resize_;
  const std::size_t nb = buckets_.size();
  if (size_ > 2 * nb) {
    Resize(nb * 2);
  } else if (nb > kMinBuckets && size_ < nb / 4) {
    Resize(nb / 2);
  } else if (rewidth_pending_ && size_ >= 8 && ops_since_resize_ >= nb) {
    // A pop saw a crowded bucket or needed a direct sweep: the width no
    // longer matches the event spacing (a day-wide arrival preload followed
    // by second-spaced service churn is the canonical case). Redistribution
    // is O(n + buckets); one bucket-count's worth of operations amortizes
    // it, and waiting longer lets crowded-bucket scans go quadratic.
    Resize(nb);
  }
  return out;
}

bool CalendarEventQueue::LocateTop() const {
  if (top_.valid) return true;
  if (size_ == 0) return false;
  const std::size_t nb = buckets_.size();
  std::size_t i = cur_;
  double cycle = cur_cycle_;
  for (std::size_t scanned = 0; scanned < nb; ++scanned) {
    const std::vector<Entry>& b = buckets_[i];
    std::size_t best = b.size();
    for (std::size_t j = 0; j < b.size(); ++j) {
      if (b[j].cycle == cycle &&
          (best == b.size() || EventBefore(b[j].ev, b[best].ev))) {
        best = j;
      }
    }
    if (best != b.size()) {
      // Calendar invariant: every earlier cycle was scanned empty and no
      // occupied cycle precedes the cursor, so this cycle\'s (time, seq)
      // minimum is the global minimum.
      cur_ = i;
      cur_cycle_ = cycle;
      top_.valid = true;
      top_.bucket = i;
      top_.slot = best;
      top_.ev = b[best].ev;
      if (b.size() > 4 + 4 * (size_ / nb)) rewidth_pending_ = true;
      return true;
    }
    i = (i + 1) & mask_;
    cycle += 1.0;
  }
  // Nothing within one full year of the cursor (a far-future gap, or cycles
  // too large for +1.0 to advance exactly): sweep every entry for the
  // global minimum and reposition the calendar there.
  ++direct_searches_;
  rewidth_pending_ = true;
  std::size_t bbucket = 0;
  std::size_t bslot = 0;
  bool found = false;
  for (std::size_t bi = 0; bi < nb; ++bi) {
    const std::vector<Entry>& b = buckets_[bi];
    for (std::size_t j = 0; j < b.size(); ++j) {
      if (!found || EventBefore(b[j].ev, buckets_[bbucket][bslot].ev)) {
        found = true;
        bbucket = bi;
        bslot = j;
      }
    }
  }
  VOD_CHECK(found);
  const Entry& e = buckets_[bbucket][bslot];
  SeekCursorTo(e.cycle);
  top_.valid = true;
  top_.bucket = bbucket;
  top_.slot = bslot;
  top_.ev = e.ev;
  return true;
}

void CalendarEventQueue::Resize(std::size_t nbuckets) {
  ++resizes_;
  rewidth_pending_ = false;
  ops_since_resize_ = 0;
  scratch_.clear();
  scratch_.reserve(size_);
  for (std::vector<Entry>& b : buckets_) {
    for (const Entry& e : b) scratch_.push_back(e.ev);
    b.clear();
  }
  buckets_.resize(nbuckets);
  mask_ = nbuckets - 1;
  width_ = EstimateWidth();
  const SimEvent* min_ev = nullptr;
  for (const SimEvent& ev : scratch_) {
    const double cycle = CycleFor(ev.time.value());
    // Growth by design: redistribution reuses bucket capacity retained from
    // previous years, so steady state allocates nothing.
    buckets_[BucketOf(cycle)].push_back(Entry{ev, cycle});  // vodb-lint: allow(alloc-in-hot-path)
    if (min_ev == nullptr || EventBefore(ev, *min_ev)) min_ev = &ev;
  }
  top_.valid = false;
  if (min_ev != nullptr) {
    SeekCursorTo(CycleFor(min_ev->time.value()));
  } else {
    cur_cycle_ = 0.0;
    cur_ = 0;
  }
}

double CalendarEventQueue::EstimateWidth() {
  // Brown-style estimate, localized to the calendar's head: bucket width =
  // 3x the mean gap between the ~64 soonest events. A global sample would
  // measure span/samples instead, and a long sparse tail behind dense
  // near-term churn (day-wide departures queued behind second-spaced
  // service events — the simulator's steady state) then inflates the width
  // until thousands of events share one cycle, which all hash to one
  // bucket. Pops only ever scan the head, so only the head's spacing
  // matters.
  if (scratch_.size() < 2) return width_;
  constexpr std::size_t kMaxSample = 64;
  const std::size_t want = std::min(kMaxSample, scratch_.size());
  width_scratch_.clear();
  width_scratch_.reserve(scratch_.size());
  for (const SimEvent& ev : scratch_) {
    width_scratch_.push_back(ev.time.value());
  }
  const auto head_end =
      width_scratch_.begin() + static_cast<std::ptrdiff_t>(want);
  std::nth_element(width_scratch_.begin(), head_end - 1,
                   width_scratch_.end());
  std::sort(width_scratch_.begin(), head_end);
  double sum = 0.0;
  int gaps = 0;
  for (std::size_t i = 1; i < want; ++i) {
    const double d = width_scratch_[i] - width_scratch_[i - 1];
    if (d > 0.0) {
      sum += d;
      ++gaps;
    }
  }
  if (gaps == 0) return width_;  // All ties: any width pops them in seq order.
  double w = 3.0 * sum / static_cast<double>(gaps);
  if (!(w > 1e-12)) return 1e-12;
  if (w > 1e12) return 1e12;
  return w;
}

}  // namespace vod::sim
