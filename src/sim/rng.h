#ifndef VODB_SIM_RNG_H_
#define VODB_SIM_RNG_H_

#include <cstdint>

namespace vod::sim {

/// PCG32 (O'Neill): small, fast, reproducible across platforms — simulation
/// results must not depend on the standard library's distribution
/// implementations, so sampling is done in-house.
class Rng {
 public:
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 1);

  std::uint32_t NextU32();

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Exponential with the given rate (mean 1/rate); rate must be > 0.
  /// The rate is a dimensionless distribution parameter (events per unit of
  /// whatever the caller measures), not a bits-per-second quantity.
  double Exponential(double rate);  // vodb-lint: allow(raw-double-unit, units-hygiene)

  /// Uniform integer in [0, n).
  std::uint32_t NextBelow(std::uint32_t n);

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

/// SplitMix64 (Steele et al.): a single avalanche step. Used to derive
/// independent seeds from structured inputs — the experiment runner seeds
/// every run as a hash of its grid coordinates and replication number, so
/// results are a pure function of the grid point, independent of execution
/// order or thread count.
std::uint64_t SplitMix64(std::uint64_t x);

/// Folds `v` into the running seed hash `h` (order-sensitive combine).
std::uint64_t MixSeed(std::uint64_t h, std::uint64_t v);

}  // namespace vod::sim

#endif  // VODB_SIM_RNG_H_
