#include "sim/memory_broker.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "fault/injector.h"

namespace vod::sim {

Bits UnlimitedMemoryBroker::Capacity() const {
  return Bits::Infinity();
}

AnalyticMemoryBroker::AnalyticMemoryBroker(core::AllocParams params,
                                           core::ScheduleMethod method,
                                           bool use_dynamic, int g,
                                           int disk_count, Bits capacity)
    : params_(params), method_(method), use_dynamic_(use_dynamic), g_(g),
      capacity_(capacity), n_(static_cast<std::size_t>(disk_count), 0),
      k_(static_cast<std::size_t>(disk_count), 0) {
  VOD_CHECK(disk_count >= 1);
}

Bits AnalyticMemoryBroker::PriceDisk(int n, int k) const {
  if (n <= 0) return Bits(0);
  n = std::min(n, params_.n_max);
  const Result<Bits> m =
      use_dynamic_
          ? core::DynamicMemoryRequirement(params_, method_, n, k, g_)
          : core::StaticMemoryRequirement(params_, method_, n, g_);
  // Parameters were validated at construction; a failure here is a bug.
  VOD_CHECK(m.ok());
  return m.value();
}

Bits AnalyticMemoryBroker::Capacity() const {
  return injector_ == nullptr ? capacity_
                              : capacity_ * injector_->CapacityScale(clock_);
}

void AnalyticMemoryBroker::AdvanceTo(Seconds now) {
  clock_ = std::max(clock_, now);
}

bool AnalyticMemoryBroker::CanAdmit(int disk, int new_n, int k) const {
  const std::size_t d = static_cast<std::size_t>(disk);
  VOD_CHECK(d < n_.size());
  if (new_n > params_.n_max) return false;
  Bits total;
  for (std::size_t i = 0; i < n_.size(); ++i) {
    if (i == d) {
      total += PriceDisk(new_n, k);
    } else {
      total += PriceDisk(n_[i], k_[i]);
    }
  }
  return total <= Capacity();
}

void AnalyticMemoryBroker::OnState(int disk, int n, int k) {
  const std::size_t d = static_cast<std::size_t>(disk);
  VOD_CHECK(d < n_.size());
  n_[d] = n;
  k_[d] = k;
}

Bits AnalyticMemoryBroker::ReservedMemory() const {
  Bits total;
  for (std::size_t i = 0; i < n_.size(); ++i) total += PriceDisk(n_[i], k_[i]);
  return total;
}

Bits AnalyticMemoryBroker::ReservedExcluding(int disk) const {
  const std::size_t d = static_cast<std::size_t>(disk);
  VOD_CHECK(d < n_.size());
  Bits total;
  for (std::size_t i = 0; i < n_.size(); ++i) {
    if (i != d) total += PriceDisk(n_[i], k_[i]);
  }
  return total;
}

// ---------------------------------------------------------------------------
// ShardBrokerView
// ---------------------------------------------------------------------------

ShardBrokerView::ShardBrokerView(AnalyticMemoryBroker* shared, int disk)
    : shared_(shared), disk_(disk) {
  VOD_CHECK(shared != nullptr);
  VOD_CHECK(disk >= 0);
}

bool ShardBrokerView::CanAdmit(int disk, int new_n, int k) const {
  VOD_CHECK(disk == disk_);
  if (!frozen_) return shared_->CanAdmit(disk, new_n, k);
  if (new_n > shared_->max_n()) return false;
  return others_reserved_ + shared_->PriceDisk(new_n, k) <= frozen_capacity_;
}

void ShardBrokerView::OnState(int disk, int n, int k) {
  VOD_CHECK(disk == disk_);
  n_ = n;
  k_ = k;
  if (!frozen_) shared_->OnState(disk, n, k);
}

Bits ShardBrokerView::ReservedMemory() const {
  if (!frozen_) return shared_->ReservedMemory();
  return others_reserved_ + shared_->PriceDisk(n_, k_);
}

Bits ShardBrokerView::Capacity() const {
  return frozen_ ? frozen_capacity_ : shared_->Capacity();
}

void ShardBrokerView::AdvanceTo(Seconds now) {
  // Frozen mode admits no time-varying capacity (the sharded runner rejects
  // injectors), so dropping the call loses nothing; forwarding it would race
  // the other workers on the shared clock.
  if (!frozen_) shared_->AdvanceTo(now);
}

void ShardBrokerView::BeginEpoch(Bits others_reserved, Bits capacity) {
  VOD_CHECK(!frozen_);
  frozen_ = true;
  others_reserved_ = others_reserved;
  frozen_capacity_ = capacity;
}

void ShardBrokerView::EndEpochPublish() {
  VOD_CHECK(frozen_);
  frozen_ = false;
  shared_->OnState(disk_, n_, k_);
}

}  // namespace vod::sim
