#include "sim/memory_broker.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "fault/injector.h"

namespace vod::sim {

Bits UnlimitedMemoryBroker::Capacity() const {
  return Bits::Infinity();
}

AnalyticMemoryBroker::AnalyticMemoryBroker(core::AllocParams params,
                                           core::ScheduleMethod method,
                                           bool use_dynamic, int g,
                                           int disk_count, Bits capacity)
    : params_(params), method_(method), use_dynamic_(use_dynamic), g_(g),
      capacity_(capacity), n_(static_cast<std::size_t>(disk_count), 0),
      k_(static_cast<std::size_t>(disk_count), 0) {
  VOD_CHECK(disk_count >= 1);
}

Bits AnalyticMemoryBroker::PriceDisk(int n, int k) const {
  if (n <= 0) return Bits(0);
  n = std::min(n, params_.n_max);
  const Result<Bits> m =
      use_dynamic_
          ? core::DynamicMemoryRequirement(params_, method_, n, k, g_)
          : core::StaticMemoryRequirement(params_, method_, n, g_);
  // Parameters were validated at construction; a failure here is a bug.
  VOD_CHECK(m.ok());
  return m.value();
}

Bits AnalyticMemoryBroker::Capacity() const {
  return injector_ == nullptr ? capacity_
                              : capacity_ * injector_->CapacityScale(clock_);
}

void AnalyticMemoryBroker::AdvanceTo(Seconds now) {
  clock_ = std::max(clock_, now);
}

bool AnalyticMemoryBroker::CanAdmit(int disk, int new_n, int k) const {
  const std::size_t d = static_cast<std::size_t>(disk);
  VOD_CHECK(d < n_.size());
  if (new_n > params_.n_max) return false;
  Bits total;
  for (std::size_t i = 0; i < n_.size(); ++i) {
    if (i == d) {
      total += PriceDisk(new_n, k);
    } else {
      total += PriceDisk(n_[i], k_[i]);
    }
  }
  return total <= Capacity();
}

void AnalyticMemoryBroker::OnState(int disk, int n, int k) {
  const std::size_t d = static_cast<std::size_t>(disk);
  VOD_CHECK(d < n_.size());
  n_[d] = n;
  k_[d] = k;
}

Bits AnalyticMemoryBroker::ReservedMemory() const {
  Bits total;
  for (std::size_t i = 0; i < n_.size(); ++i) total += PriceDisk(n_[i], k_[i]);
  return total;
}

}  // namespace vod::sim
