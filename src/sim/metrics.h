#ifndef VODB_SIM_METRICS_H_
#define VODB_SIM_METRICS_H_

#include <string_view>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "common/units.h"

namespace vod::obs {
class MetricsRegistry;
}  // namespace vod::obs

namespace vod::sim {

/// One buffer allocation the simulator performed (for Figs. 7–8 and the
/// assumption-invariant tests).
struct AllocationRecord {
  Seconds time;
  RequestId request = 0;
  int n = 0;
  int k = 0;
  Bits buffer_size;
  Seconds usage_period;
};

/// Everything a simulation run measures. Collected per disk; MultiDisk runs
/// merge them.
struct SimMetrics {
  // --- Requests ---
  long arrivals = 0;
  long admitted = 0;
  /// Turned away, total. Always the sum of the three cause counters below
  /// (kept as its own field so legacy consumers and golden CSVs are
  /// untouched by the breakdown).
  long rejected = 0;
  long rejected_capacity = 0;  ///< Cause: fully loaded disk (n == N).
  long rejected_memory = 0;    ///< Cause: shared memory budget exhausted.
  long rejected_invalid = 0;   ///< Cause: nothing to play at that position.
  long deferred_admissions = 0;  ///< Assumption-1 deferrals that later got in.
  long completed = 0;
  long cancelled = 0;  ///< VCR cancellations (Sec. 1: reposition = cancel+new).

  /// Initial latency (arrival -> first data in memory), per admitted
  /// request, bucketed by the number of requests in service at the moment
  /// the request was admitted (Fig. 11's x axis). Index 0 unused.
  std::vector<RunningStats> initial_latency_by_n;
  RunningStats initial_latency;  ///< All admitted requests together.

  // --- Allocations / estimation (Figs. 7-8) ---
  std::vector<AllocationRecord> allocations;
  long estimation_checks = 0;
  long estimation_successes = 0;
  RunningStats estimated_k;

  // --- Continuity ---
  long starvation_events = 0;  ///< Buffer underflows (must be 0 normally).

  // --- Fault injection & graceful degradation (all 0 without faults) ---
  long read_faults = 0;     ///< Disk reads that failed (injected EIO).
  long read_retries = 0;    ///< Re-issued reads after a same-round failure.
  long hiccup_events = 0;   ///< Rounds abandoned: retry budget exhausted.
  long degraded_entries = 0;  ///< Normal -> Degraded transitions.
  long degraded_streams = 0;  ///< Distinct streams that ever degraded.
  long fault_recoveries = 0;  ///< Degraded -> Normal (successful refill).
  long delayed_reads = 0;   ///< Reads stretched by an injected latency fault.

  /// Buffer byte ledger for the conservation property: every bit a disk
  /// read delivers into a stream buffer is eventually tossed back by
  /// use-it-and-toss-it consumption (departure) or cancellation. At the end
  /// of a drained run allocated == released exactly, faults or not.
  Bits buffer_bits_allocated;
  Bits buffer_bits_released;

  // --- Resource usage over time ---
  StepTimeSeries concurrency;
  StepTimeSeries memory_usage;      ///< Actual buffered bits, sampled.
  StepTimeSeries memory_reserved;   ///< Analytic reservation (broker view).
  int peak_concurrency = 0;

  // --- Disk accounting ---
  Seconds disk_busy_time;
  long services = 0;

  /// Resolves estimation success for all allocation records given the full
  /// sorted arrival-time log: success iff the number of arrivals in
  /// (t, t + usage_period] is <= k. Call once after the run.
  void ResolveEstimation(const std::vector<Seconds>& sorted_arrival_times);

  double SuccessProbability() const {
    return estimation_checks > 0
               ? static_cast<double>(estimation_successes) /
                     static_cast<double>(estimation_checks)
               : 1.0;
  }

  /// Publishes this run's metrics into an obs::MetricsRegistry under
  /// `<prefix>.`: the request counters (including the rejection-cause
  /// breakdown) accumulate into registry counters; the per-allocation
  /// records feed log-bucketed histograms (`alloc.buffer_mbit`,
  /// `alloc.usage_period_s`, `alloc.k`); and one sample per run lands in
  /// the `run.*` histograms (mean initial latency, peak memory, peak
  /// concurrency). Accumulating — publishing several runs yields grid-sweep
  /// totals (the bench harnesses' --metrics dump).
  void PublishTo(obs::MetricsRegistry& registry,
                 std::string_view prefix = "sim") const;
};

}  // namespace vod::sim

#endif  // VODB_SIM_METRICS_H_
