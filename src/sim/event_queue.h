#ifndef VODB_SIM_EVENT_QUEUE_H_
#define VODB_SIM_EVENT_QUEUE_H_

// The simulator's event spine, behind a small interface so the production
// calendar queue and the legacy binary heap stay interchangeable:
//
//  - HeapEventQueue wraps std::priority_queue exactly as VodSimulator did
//    before the interface existed — the reference implementation the
//    differential tests (tests/event_queue_test.cc) pin the calendar queue
//    against.
//
//  - CalendarEventQueue is a classic calendar queue (Brown 1988): events
//    hash into time-bucketed "days" of one rotating "year"; push and pop
//    are O(1) amortized when the bucket width tracks the mean event gap.
//    The width is re-estimated on occupancy resizes and when pops observe
//    pathological bucket shapes, so workloads that drift (a simulated day's
//    arrival rate swings 10x) stay near the O(1) regime.
//
// Both implementations pop in exactly the same total order: ascending
// (time, seq) — seq is the simulator's FIFO tiebreak for events at equal
// timestamps. Identical pop order is what makes every downstream metric
// byte-identical across implementations, which the golden-metrics and
// chaos suites assert in both configurations.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <queue>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "common/units.h"

namespace vod::sim {

/// What a scheduled simulator event does when it fires.
enum class SimEventKind : std::uint8_t {
  kArrival,
  kServiceComplete,
  kDeparture,
  kWakeup,
};

/// One scheduled event. `seq` is assigned by the producer in push order and
/// breaks ties between events at the same timestamp (FIFO).
struct SimEvent {
  Seconds time;
  std::uint64_t seq = 0;
  SimEventKind kind = SimEventKind::kArrival;
  RequestId request = kInvalidRequestId;
  std::size_t arrival_index = 0;
};

/// Strict total order the queues pop in: ascending (time, seq).
inline bool EventBefore(const SimEvent& a, const SimEvent& b) {
  if (a.time != b.time) return a.time < b.time;
  return a.seq < b.seq;
}

/// Which implementation a simulator runs on.
enum class EventQueueKind {
  kCalendar,    ///< Production: O(1) amortized calendar queue.
  kBinaryHeap,  ///< Reference: the legacy std::priority_queue.
};

std::string_view EventQueueKindName(EventQueueKind kind);

/// Priority-queue contract over SimEvent, min-first by (time, seq).
class EventQueue {
 public:
  virtual ~EventQueue() = default;

  virtual void Push(const SimEvent& ev) = 0;

  /// The earliest event, or nullptr when empty. The pointer is valid until
  /// the next Push/PopTop.
  virtual const SimEvent* Peek() const = 0;

  /// Removes and returns the earliest event. The queue must not be empty.
  virtual SimEvent PopTop() = 0;

  virtual std::size_t size() const = 0;
  bool empty() const { return size() == 0; }
};

std::unique_ptr<EventQueue> MakeEventQueue(EventQueueKind kind);

/// Reference implementation: binary heap (std::priority_queue), exactly the
/// structure VodSimulator used before the interface existed.
class HeapEventQueue final : public EventQueue {
 public:
  void Push(const SimEvent& ev) override;
  const SimEvent* Peek() const override;
  SimEvent PopTop() override;
  std::size_t size() const override { return heap_.size(); }

 private:
  struct After {
    bool operator()(const SimEvent& a, const SimEvent& b) const {
      return EventBefore(b, a);  // Min-heap via the shared total order.
    }
  };
  std::priority_queue<SimEvent, std::vector<SimEvent>, After> heap_;
};

/// Production implementation: calendar queue. Buckets are unsorted vectors
/// (swap-pop removal). Every event stores its cycle number floor(t / width)
/// as computed at placement; the per-pop scan walks cycles in ascending
/// order and filters bucket entries by *cycle equality*, so placement and
/// lookup can never disagree about which window an event belongs to (the
/// classic calendar-queue float-boundary bug class is gone by construction;
/// floor(t / w) is monotone in t, so the minimum cycle holds the minimum
/// time). Far-future gaps — beyond one full year of buckets — fall back to
/// a direct O(n) sweep that repositions the calendar, so pop order is exact
/// for any input pattern; bucket geometry only ever affects speed.
class CalendarEventQueue final : public EventQueue {
 public:
  /// `initial_buckets` must be a power of two.
  explicit CalendarEventQueue(std::size_t initial_buckets = 32);

  void Push(const SimEvent& ev) override;
  const SimEvent* Peek() const override;
  SimEvent PopTop() override;
  std::size_t size() const override { return size_; }

  // Introspection for tests and benches.
  std::size_t bucket_count() const { return buckets_.size(); }
  double bucket_width() const { return width_; }
  long resizes() const { return resizes_; }
  long direct_searches() const { return direct_searches_; }

 private:
  /// A stored event plus its calendar cycle floor(t / width_), computed
  /// when it was placed (and recomputed on every Resize).
  struct Entry {
    SimEvent ev;
    double cycle = 0.0;
  };

  struct TopRef {
    bool valid = false;
    std::size_t bucket = 0;
    std::size_t slot = 0;
    SimEvent ev;
  };

  double CycleFor(double t) const;
  std::size_t BucketOf(double cycle) const;
  /// Points the scan cursor at `cycle`.
  void SeekCursorTo(double cycle) const;
  /// Locates the minimum event (cycle scan, then direct sweep); fills
  /// `top_`. False when empty.
  bool LocateTop() const;
  /// Redistributes into `nbuckets` buckets with a freshly estimated width.
  void Resize(std::size_t nbuckets);
  double EstimateWidth();

  std::vector<std::vector<Entry>> buckets_;
  std::size_t mask_;           ///< bucket_count - 1 (power of two).
  double width_ = 1.0;         ///< Bucket width in seconds.
  std::size_t size_ = 0;
  std::uint64_t ops_since_resize_ = 0;

  // Scan cursor: the cycle currently being scanned and its bucket. Mutated
  // by the logically-const top search.
  mutable double cur_cycle_ = 0.0;
  mutable std::size_t cur_ = 0;
  mutable TopRef top_;
  /// Set when a pop observed a pathologically crowded bucket or needed a
  /// direct sweep: the next mutation re-estimates the width.
  mutable bool rewidth_pending_ = false;

  long resizes_ = 0;
  mutable long direct_searches_ = 0;

  std::vector<SimEvent> scratch_;       ///< Reused by Resize.
  std::vector<double> width_scratch_;   ///< Reused by EstimateWidth.
};

}  // namespace vod::sim

#endif  // VODB_SIM_EVENT_QUEUE_H_
