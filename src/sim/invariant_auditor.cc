#include "sim/invariant_auditor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <set>
#include <utility>

#include "core/closed_form.h"
#include "core/static_alloc.h"

namespace vod::sim {

namespace {

constexpr Seconds kTimeEps = Seconds(1e-9);
/// Relative tolerance for analytic-form comparisons. The simulator and the
/// closed forms evaluate the same expressions in different orders, so only
/// rounding noise separates them.
constexpr double kRelTol = 1e-6;
/// Absolute slack for bit ledgers (values are O(1e6..1e9) bits).
constexpr Bits kBitsEps = Bits(1e-3);

bool NearlyEqual(double a, double b) {
  const double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
  return std::fabs(a - b) <= kRelTol * scale;
}

template <typename D>
bool NearlyEqual(Quantity<D> a, Quantity<D> b) {
  return NearlyEqual(a.value(), b.value());
}

void AbortingHandler(const InvariantViolation& v) {
  std::fprintf(stderr,
               "InvariantAuditor: [%s] violated at t=%.9f\n  %s\n",
               v.invariant.c_str(), ToSeconds(v.time), v.detail.c_str());
  std::abort();
}

}  // namespace

InvariantAuditor::InvariantAuditor() : InvariantAuditor(Handler()) {}

InvariantAuditor::InvariantAuditor(Handler handler)
    : handler_(std::move(handler)),
      last_event_time_(-Seconds::Infinity()) {}

void InvariantAuditor::set_handler(Handler handler) {
  handler_ = std::move(handler);
}

void InvariantAuditor::set_violation_observer(Handler observer) {
  violation_observer_ = std::move(observer);
}

void InvariantAuditor::Report(const char* invariant, Seconds time,
                              std::string detail) {
  ++violations_;
  InvariantViolation v;
  v.invariant = invariant;
  v.time = time;
  v.detail = std::move(detail);
  // Capture-then-fail: give the observer (postmortem sink) its dump before
  // the handler — which may abort — runs.
  if (violation_observer_) violation_observer_(v);
  if (handler_) {
    handler_(v);
  } else {
    AbortingHandler(v);
  }
}

void InvariantAuditor::CheckEventTime(Seconds event_time) {
  ++checks_;
  // The tolerance must scale with the clock: late in a long run two
  // back-to-back events (e.g. a zero-length retry re-issued at the same
  // instant) differ only in bits below the representable resolution of
  // `now`, which an absolute 1e-9 would misread as time travel.
  const Seconds tol = kTimeEps * std::max(1.0, std::fabs(last_event_time_.value()));
  if (event_time < last_event_time_ - tol) {
    Report("event-time-monotonicity", event_time,
           "event at t=" + std::to_string(event_time.value()) +
               " precedes already-processed t=" +
               std::to_string(last_event_time_.value()));
  }
  last_event_time_ = std::max(last_event_time_, event_time);
}

void InvariantAuditor::CheckMemoryConservation(Seconds now, Bits allocated,
                                               Bits free_mem, Bits total) {
  ++checks_;
  const Bits slack = kBitsEps + kRelTol * std::max(total, Bits(1.0));
  if (allocated < -slack) {
    Report("memory-conservation", now,
           "allocated share is negative: " + std::to_string(allocated.value()));
    return;
  }
  if (free_mem < -slack) {
    Report("memory-conservation", now,
           "free share is negative: " + std::to_string(free_mem.value()) +
               " (allocated=" + std::to_string(allocated.value()) +
               ", total=" + std::to_string(total.value()) + ")");
    return;
  }
  if (Abs(allocated + free_mem - total) > slack) {
    Report("memory-conservation", now,
           "allocated+free != total: " + std::to_string(allocated.value()) + " + " +
               std::to_string(free_mem.value()) +
               " != " + std::to_string(total.value()));
  }
}

void InvariantAuditor::CheckBrokerReservation(Seconds now, Bits reserved,
                                              Bits capacity,
                                              bool capacity_enforced) {
  if (capacity_enforced) {
    CheckMemoryConservation(now, reserved, capacity - reserved, capacity);
    return;
  }
  ++checks_;
  const Bits slack = kBitsEps + kRelTol * std::max(capacity, Bits(1.0));
  if (reserved < -slack) {
    Report("memory-conservation", now,
           "broker reservation is negative: " + std::to_string(reserved.value()));
  }
}

void InvariantAuditor::CheckRequestAccounting(Seconds now, RequestId id,
                                              Bits delivered, Bits consumed) {
  ++checks_;
  if (consumed > delivered + kBitsEps) {
    Report("request-accounting", now,
           "request " + std::to_string(id) + " consumed " +
               std::to_string(consumed.value()) + " bits > delivered " +
               std::to_string(delivered.value()));
  }
  if (consumed < -kBitsEps || delivered < -kBitsEps) {
    Report("request-accounting", now,
           "request " + std::to_string(id) + " has a negative ledger");
  }
  auto it = ledger_.find(id);
  if (it != ledger_.end()) {
    const auto& [prev_delivered, prev_consumed] = it->second;
    if (delivered < prev_delivered - kBitsEps ||
        consumed < prev_consumed - kBitsEps) {
      Report("request-accounting", now,
             "request " + std::to_string(id) +
                 " ledger ran backwards: delivered " +
                 std::to_string(prev_delivered.value()) + " -> " +
                 std::to_string(delivered.value()) + ", consumed " +
                 std::to_string(prev_consumed.value()) + " -> " +
                 std::to_string(consumed.value()));
    }
  }
  ledger_[id] = {delivered, consumed};
}

void InvariantAuditor::ForgetRequest(RequestId id) { ledger_.erase(id); }

void InvariantAuditor::CheckAllocation(const core::AllocParams& params,
                                       core::ScheduleMethod method,
                                       const disk::DiskProfile& profile,
                                       bool dynamic_scheme,
                                       const AllocationRecord& rec) {
  ++checks_;
  // Eq. (8): a minimal buffer holds exactly one usage period of data.
  if (!NearlyEqual(rec.usage_period, rec.buffer_size / params.cr)) {
    Report("usage-period", rec.time,
           "usage_period " + std::to_string(rec.usage_period.value()) +
               " != BS/CR = " +
               std::to_string((rec.buffer_size / params.cr).value()));
    return;
  }

  Result<Bits> expected = Status::Internal("unset");
  if (!dynamic_scheme) {
    // The static scheme hands every request BS(N) (Sec. 2.3, Eq. 5).
    expected = core::StaticSchemeBufferSize(params);
  } else {
    // Theorem 1's closed form, with Sweep*'s DL varying with the in-service
    // count n (Table 2) and k clamped to the structural headroom N - n the
    // way BufferSizeTable clamps it.
    core::AllocParams p = params;
    if (method == core::ScheduleMethod::kSweep) {
      p.dl = core::WorstDiskLatency(profile, method, std::max(1, rec.n));
    }
    const int k = rec.n >= p.n_max
                      ? 0
                      : std::min(rec.k, p.n_max - rec.n);
    expected = core::DynamicBufferSize(p, rec.n, k);
  }
  if (!expected.ok()) {
    Report("theorem1-buffer-size", rec.time,
           "closed form failed for (n=" + std::to_string(rec.n) +
               ", k=" + std::to_string(rec.k) +
               "): " + expected.status().ToString());
    return;
  }
  if (!NearlyEqual(rec.buffer_size, expected.value())) {
    Report("theorem1-buffer-size", rec.time,
           "allocated " + std::to_string(rec.buffer_size.value()) +
               " bits at (n=" + std::to_string(rec.n) +
               ", k=" + std::to_string(rec.k) + "), analytic form gives " +
               std::to_string(expected.value().value()));
  }
}

void InvariantAuditor::CheckServiceSequence(const sched::SchedulerContext& ctx,
                                            const std::vector<RequestId>& seq,
                                            Seconds now) {
  ++checks_;
  std::set<RequestId> seen;
  for (RequestId id : seq) {
    if (!seen.insert(id).second) {
      Report("service-sequence", now,
             "request " + std::to_string(id) +
                 " appears twice in the service sequence");
      return;
    }
    if (!ctx.NeedsService(id)) {
      Report("service-sequence", now,
             "request " + std::to_string(id) +
                 " is in the service sequence but needs no service");
      return;
    }
  }
}

void InvariantAuditor::CheckServiceDecision(
    const sched::SchedulerContext& ctx, const std::vector<RequestId>& seq,
    const sched::ServiceDecision& decision, Seconds now) {
  ++checks_;
  if (seq.empty()) {
    Report("bubbleup-ordering", now,
           "a decision was produced from an empty sequence");
    return;
  }
  if (std::find(seq.begin(), seq.end(), decision.id) == seq.end()) {
    Report("bubbleup-ordering", now,
           "decision serves request " + std::to_string(decision.id) +
               " which is not in the service sequence");
    return;
  }

  if (ctx.NeverServiced(seq.front())) {
    // BubbleUp front-newcomer rule: serve the newcomer unless worst-case
    // accounting shows the first established buffer would miss its
    // deadline; then that buffer must be caught up first.
    Seconds elapsed;
    std::size_t first_established = seq.size();
    for (std::size_t i = 0; i < seq.size(); ++i) {
      elapsed += ctx.WorstServiceTime(seq[i]);
      if (!ctx.NeverServiced(seq[i])) {
        first_established = i;
        break;
      }
    }
    const bool newcomer_safe =
        first_established == seq.size() ||
        ctx.BufferDeadline(seq[first_established]) - now >= elapsed;
    const RequestId expected =
        newcomer_safe ? seq.front() : seq[first_established];
    if (decision.id != expected) {
      Report("bubbleup-ordering", now,
             "front newcomer " + std::to_string(seq.front()) +
                 (newcomer_safe ? " is safe to serve"
                                : " would displace an established deadline") +
                 "; expected request " + std::to_string(expected) +
                 " but the decision serves " + std::to_string(decision.id));
    }
    if (decision.not_before > now + kTimeEps) {
      Report("bubbleup-ordering", now,
             "newcomer service delayed to t=" +
                 std::to_string(decision.not_before.value()));
    }
    return;
  }

  const bool has_fresh =
      std::any_of(seq.begin(), seq.end(),
                  [&ctx](RequestId id) { return ctx.NeverServiced(id); });
  if (decision.id != seq.front()) {
    Report("bubbleup-ordering", now,
           "established-front sequence must serve its head " +
               std::to_string(seq.front()) + ", decision serves " +
               std::to_string(decision.id));
    return;
  }
  if (has_fresh) {
    if (decision.not_before > now + kTimeEps) {
      Report("bubbleup-ordering", now,
             "a newcomer is queued but service is delayed to t=" +
                 std::to_string(decision.not_before.value()));
    }
    return;
  }
  // Lazy pacing: as late as safely possible minus one newcomer reserve.
  const Seconds latest = std::max(
      now, sched::LatestSafeStart(ctx, seq) - ctx.NewcomerReserve());
  if (!NearlyEqual(decision.not_before, latest) &&
      decision.not_before > latest + kTimeEps) {
    Report("bubbleup-ordering", now,
           "lazy start t=" + std::to_string(decision.not_before.value()) +
               " exceeds the latest safe start " + std::to_string(latest.value()));
  }
}

}  // namespace vod::sim
