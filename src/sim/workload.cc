#include "sim/workload.h"

#include <algorithm>
#include <queue>

#include "fault/injector.h"
#include "sim/rng.h"

namespace vod::sim {

Status WorkloadConfig::Validate() const {
  if (duration <= Seconds(0)) return Status::InvalidArgument("duration must be > 0");
  if (slot_length <= Seconds(0) || slot_length > duration) {
    return Status::InvalidArgument("bad slot length");
  }
  if (theta < 0 || theta > 1 || video_theta < 0 || video_theta > 1 ||
      disk_theta < 0 || disk_theta > 1) {
    return Status::InvalidArgument("theta parameters must be in [0, 1]");
  }
  if (total_expected_arrivals < 0) {
    return Status::InvalidArgument("total arrivals must be >= 0");
  }
  if (max_viewing_time <= Seconds(0)) {
    return Status::InvalidArgument("max viewing time must be > 0");
  }
  if (video_count < 1) return Status::InvalidArgument("need >= 1 video");
  if (disk_count < 1) return Status::InvalidArgument("need >= 1 disk");
  return Status::OK();
}

namespace {

/// Samples an index from normalized `weights` by inverse CDF.
int SampleIndex(const std::vector<double>& weights, Rng& rng) {
  double u = rng.NextDouble();
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

}  // namespace

Result<std::vector<ArrivalEvent>> GenerateWorkload(const WorkloadConfig& cfg) {
  VOD_RETURN_IF_ERROR(cfg.Validate());

  Result<ArrivalRateProfile> profile = ArrivalRateProfile::Create(
      cfg.duration, cfg.slot_length, cfg.theta, cfg.peak_time,
      cfg.total_expected_arrivals);
  if (!profile.ok()) return profile.status();

  Result<std::vector<double>> video_w =
      ZipfWeights(cfg.video_count, cfg.video_theta);
  if (!video_w.ok()) return video_w.status();
  Result<std::vector<double>> disk_w =
      ZipfWeights(cfg.disk_count, cfg.disk_theta);
  if (!disk_w.ok()) return disk_w.status();

  Rng rng(cfg.seed);
  std::vector<ArrivalEvent> out;
  out.reserve(static_cast<std::size_t>(cfg.total_expected_arrivals * 1.2));

  // Exact per-slot generation: within a slot the rate is constant, so
  // arrivals are exponential gaps at that rate, clipped to the slot.
  const std::size_t slots = profile->slot_rates().size();
  for (std::size_t s = 0; s < slots; ++s) {
    const double rate = profile->slot_rates()[s];
    if (rate <= 0.0) continue;
    Seconds t = static_cast<double>(s) * cfg.slot_length;
    const Seconds slot_end =
        std::min(cfg.duration, t + cfg.slot_length);
    for (;;) {
      t += Seconds(rng.Exponential(rate));
      if (t >= slot_end) break;
      ArrivalEvent ev;
      ev.time = t;
      ev.video = SampleIndex(*video_w, rng);
      ev.viewing_time = Seconds(rng.Uniform(0.0, cfg.max_viewing_time.value()));
      // Degenerate zero-length viewings are unhelpful; clamp to 1 s.
      ev.viewing_time = std::max(ev.viewing_time, Seconds(1.0));
      ev.disk = SampleIndex(*disk_w, rng);
      out.push_back(ev);
    }
  }
  return out;
}

std::vector<std::vector<ArrivalEvent>> SplitByDisk(
    const std::vector<ArrivalEvent>& all, int disk_count) {
  std::vector<std::vector<ArrivalEvent>> per(
      static_cast<std::size_t>(std::max(disk_count, 1)));
  for (const ArrivalEvent& ev : all) {
    if (ev.disk >= 0 && ev.disk < disk_count) {
      per[static_cast<std::size_t>(ev.disk)].push_back(ev);
    }
  }
  return per;
}

void ApplyFaultBursts(const fault::Injector& injector,
                      std::vector<ArrivalEvent>* arrivals) {
  const std::vector<fault::BurstArrival> bursts = injector.Bursts();
  if (bursts.empty()) return;
  const std::size_t base = arrivals->size();
  arrivals->reserve(base + bursts.size());
  for (const fault::BurstArrival& b : bursts) {
    ArrivalEvent ev;
    ev.time = b.time;
    ev.video = b.video;
    ev.viewing_time = b.viewing_time;
    ev.disk = b.disk;
    arrivals->push_back(ev);
  }
  // Both halves are sorted; a stable merge keeps base arrivals ahead of
  // same-instant burst arrivals, so the burst-free prefix order (and the
  // simulator's FIFO tiebreak) is unchanged.
  std::inplace_merge(
      arrivals->begin(),
      arrivals->begin() + static_cast<std::ptrdiff_t>(base), arrivals->end(),
      [](const ArrivalEvent& a, const ArrivalEvent& b) {
        return a.time < b.time;
      });
}

OfferedLoad ComputeOfferedLoad(const std::vector<ArrivalEvent>& arrivals,
                               int cap) {
  OfferedLoad load;
  // Min-heap of active viewings' end times.
  std::priority_queue<Seconds, std::vector<Seconds>, std::greater<>> ends;
  for (const ArrivalEvent& ev : arrivals) {
    while (!ends.empty() && ends.top() <= ev.time) {
      load.concurrency.emplace_back(ends.top(),
                                    static_cast<int>(ends.size()) - 1);
      ends.pop();
    }
    if (cap > 0 && static_cast<int>(ends.size()) >= cap) {
      ++load.rejected;
      continue;
    }
    ends.push(ev.time + ev.viewing_time);
    load.concurrency.emplace_back(ev.time, static_cast<int>(ends.size()));
    load.peak = std::max(load.peak, static_cast<int>(ends.size()));
  }
  while (!ends.empty()) {
    load.concurrency.emplace_back(ends.top(),
                                  static_cast<int>(ends.size()) - 1);
    ends.pop();
  }
  return load;
}

}  // namespace vod::sim
