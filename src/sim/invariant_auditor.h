#ifndef VODB_SIM_INVARIANT_AUDITOR_H_
#define VODB_SIM_INVARIANT_AUDITOR_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "common/units.h"
#include "core/params.h"
#include "disk/disk_profile.h"
#include "sched/scheduler.h"
#include "sim/metrics.h"

namespace vod::sim {

/// One failed invariant check: which invariant, at what simulated time, and
/// a human-readable account of the numbers involved.
struct InvariantViolation {
  std::string invariant;  ///< Stable name, e.g. "memory-conservation".
  Seconds time;
  std::string detail;
};

/// Runtime auditor of the simulator's structural invariants (DESIGN.md
/// "Audited invariants" maps each check to the paper equation it guards).
///
/// Every check is a pure observer: it recomputes the invariant from its
/// arguments and never feeds anything back into the simulation, so metrics —
/// and the golden-metrics CSVs — are byte-identical whether auditing is
/// compiled in (VODB_AUDIT=ON, the default) or out.
///
/// A violation means a library bug, so the default handler prints the
/// violation and aborts. Tests install a collecting handler instead and
/// assert that deliberate corruption fires the expected invariant.
class InvariantAuditor {
 public:
  using Handler = std::function<void(const InvariantViolation&)>;

  /// Default handler: print to stderr and abort.
  InvariantAuditor();
  explicit InvariantAuditor(Handler handler);

  /// Replaces the violation handler (nullptr restores the aborting default).
  void set_handler(Handler handler);

  /// Capture-then-fail hook: an observer invoked on every violation
  /// *before* the handler runs (and before the aborting default kills the
  /// process), so a postmortem sink can dump flight-recorder state that the
  /// abort would otherwise destroy. Observers must not throw and must not
  /// assume the process survives the subsequent handler. nullptr clears.
  void set_violation_observer(Handler observer);

  // --- Checks. Each counts one check; failures invoke the handler. ---

  /// Event-time monotonicity: the discrete-event clock never runs backwards
  /// (events must pop from the queue in non-decreasing time order).
  void CheckEventTime(Seconds event_time);

  /// Memory conservation, per event: allocated + free == total (within
  /// tolerance) with both shares non-negative. The caller supplies the two
  /// sides from independent accounting paths (e.g. the broker's analytic
  /// reservation vs. its capacity ledger), so drift between them is caught
  /// the moment it appears.
  void CheckMemoryConservation(Seconds now, Bits allocated, Bits free_mem,
                               Bits total);

  /// Broker reservation vs. capacity. The reservation must never be
  /// negative. `capacity_enforced` is set at admission points, where the
  /// broker's CanAdmit gate has just approved the exact state being
  /// reported — there the reservation and the remaining budget must
  /// partition the capacity. Between admissions the k estimate drifts and
  /// analytic repricing may transiently exceed capacity by design
  /// (admission then clamps further growth), so only non-negativity holds.
  void CheckBrokerReservation(Seconds now, Bits reserved, Bits capacity,
                              bool capacity_enforced);

  /// Per-request delivery/consumption ledger: consumed never exceeds
  /// delivered (a buffer cannot underflow below empty), and both advance
  /// monotonically across calls for the same request id.
  void CheckRequestAccounting(Seconds now, RequestId id, Bits delivered,
                              Bits consumed);

  /// Drops the per-request ledger entry (departure or cancellation). Id
  /// reuse after a forget is treated as a new request.
  void ForgetRequest(RequestId id);

  /// A buffer allocation matches the analytic form within relative
  /// tolerance: Theorem 1's closed form BS_k(n) for the dynamic scheme
  /// (with Sweep*'s per-n disk latency from Table 2), Eq. (5)'s BS(N) for
  /// the static scheme. Also checks Eq. (8): usage_period == BS/CR.
  void CheckAllocation(const core::AllocParams& params,
                       core::ScheduleMethod method,
                       const disk::DiskProfile& profile, bool dynamic_scheme,
                       const AllocationRecord& rec);

  /// Service-sequence validity for all three schedulers: no duplicate ids,
  /// and every member still needs service.
  void CheckServiceSequence(const sched::SchedulerContext& ctx,
                            const std::vector<RequestId>& seq, Seconds now);

  /// BubbleUp ordering validity: independently recomputes the scheduler's
  /// newcomer-displacement rule and lazy-start pacing (sched::BufferScheduler
  /// ::Next) and checks the decision agrees — the chosen request is the
  /// newcomer unless serving it first would push an established buffer past
  /// its deadline by worst-case accounting, and lazy starts never exceed
  /// LatestSafeStart minus the newcomer reserve.
  void CheckServiceDecision(const sched::SchedulerContext& ctx,
                            const std::vector<RequestId>& seq,
                            const sched::ServiceDecision& decision,
                            Seconds now);

  [[nodiscard]] long checks() const { return checks_; }
  [[nodiscard]] long violations() const { return violations_; }

 private:
  void Report(const char* invariant, Seconds time, std::string detail);

  Handler handler_;
  Handler violation_observer_;
  long checks_ = 0;
  long violations_ = 0;
  Seconds last_event_time_;
  std::map<RequestId, std::pair<Bits, Bits>> ledger_;  ///< delivered, consumed.
};

}  // namespace vod::sim

#endif  // VODB_SIM_INVARIANT_AUDITOR_H_
