#ifndef VODB_VOD_SERVER_H_
#define VODB_VOD_SERVER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "common/types.h"
#include "common/units.h"
#include "sim/vod_simulator.h"

namespace vod {

/// The library's top-level facade: a single-disk VOD server with a chosen
/// buffer scheduling method and buffer allocation scheme, driven in virtual
/// time. Wraps sim::VodSimulator behind a submit/run API so applications
/// (and the examples) don't deal with event plumbing.
///
///   VodServer::Options opt;
///   opt.config.method = core::ScheduleMethod::kGss;
///   opt.config.scheme = sim::AllocScheme::kDynamic;
///   auto server = VodServer::Create(opt);
///   server->Submit(/*video=*/0, /*viewing_time=*/Minutes(90));
///   server->RunFor(Hours(1));
///   auto& m = server->metrics();
class VodServer {
 public:
  struct Options {
    sim::SimConfig config;
    /// Optional shared-memory constraint (bits); 0 means unconstrained.
    Bits memory_capacity;
  };

  static Result<std::unique_ptr<VodServer>> Create(const Options& options);

  /// Submits a user request for `video` at the current virtual time,
  /// viewing for `viewing_time`. Returns the request's arrival time.
  /// Admission (including rejection and deferral) happens inside the run.
  Result<Seconds> Submit(int video, Seconds viewing_time);

  /// Like Submit, but processed synchronously (pending events up to the
  /// current horizon are drained first) and returns the request id, usable
  /// with VcrReposition/Cancel. `start_position` is the playback offset
  /// into the video. CapacityExceeded if rejected on arrival.
  Result<RequestId> SubmitSession(int video, Seconds viewing_time,
                                  Seconds start_position = Seconds(0));

  /// VCR fast-forward/rewind. The paper's model (Sec. 1): a reposition is
  /// a *new user request* — the old stream is cancelled and a fresh request
  /// starts at `new_position`, paying a fresh initial latency (which is
  /// exactly why the paper minimizes it). Returns the new request's id.
  Result<RequestId> VcrReposition(RequestId session, int video,
                                  Seconds new_position,
                                  Seconds remaining_viewing);

  /// Cancels a session (user pressed stop).
  Status Cancel(RequestId session);

  /// Advances virtual time by `duration`, processing everything due.
  void RunFor(Seconds duration);

  /// Runs until all submitted requests have completed.
  void RunToCompletion();

  /// Finalizes estimation bookkeeping; call after the last Run*.
  void Finish();

  Seconds now() const { return sim_->now(); }
  int active_requests() const { return sim_->active_count(); }
  const sim::SimMetrics& metrics() const { return sim_->metrics(); }
  const core::AllocParams& alloc_params() const {
    return sim_->alloc_params();
  }

  /// One-line summary ("admitted=…, mean initial latency=…") for demos.
  std::string SummaryLine() const;

 private:
  VodServer(std::unique_ptr<sim::MemoryBroker> broker,
            std::unique_ptr<sim::VodSimulator> sim);

  std::unique_ptr<sim::MemoryBroker> broker_;
  std::unique_ptr<sim::VodSimulator> sim_;
  Seconds horizon_;
};

}  // namespace vod

#endif  // VODB_VOD_SERVER_H_
