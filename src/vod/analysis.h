#ifndef VODB_VOD_ANALYSIS_H_
#define VODB_VOD_ANALYSIS_H_

#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "core/params.h"
#include "disk/disk_profile.h"

namespace vod {

/// Convenience wrappers producing the paper's analytic curves — the data
/// behind Figs. 9, 10, 12 and 13 — for a disk profile and scheduling
/// method, for both allocation schemes. These are thin compositions of the
/// core formulas; benches and examples print them directly.

/// Inputs shared by all analytic curves.
struct AnalysisConfig {
  disk::DiskProfile profile = disk::SeagateBarracuda9LP();
  BitsPerSecond consumption_rate = Mbps(1.5);
  core::ScheduleMethod method = core::ScheduleMethod::kRoundRobin;
  int gss_group_size = 8;
  int alpha = 1;
  /// k used for the dynamic curves: the paper's worst-case average of
  /// estimated additional requests (4 for Round-Robin with T_log = 40 min,
  /// 3 for Sweep*/GSS* with T_log = 20 min; Sec. 5.1 fn. 9).
  int k = 4;
};

/// One point of a static-vs-dynamic analytic comparison at load n.
struct SchemeComparisonPoint {
  int n = 0;
  double stat = 0;     ///< Static scheme value.
  double dynamic = 0;  ///< Dynamic scheme value.
};

/// Fig. 9: buffer size (bits) vs n for both schemes.
Result<std::vector<SchemeComparisonPoint>> BufferSizeCurve(
    const AnalysisConfig& cfg);

/// Fig. 10: worst initial latency (seconds) vs n for both schemes
/// (Eqs. 2–4 applied to each scheme's buffer size).
Result<std::vector<SchemeComparisonPoint>> WorstLatencyCurve(
    const AnalysisConfig& cfg);

/// Fig. 12: minimum memory requirement (bits) vs n for both schemes
/// (Theorems 2–4 and the static counterparts).
Result<std::vector<SchemeComparisonPoint>> MemoryRequirementCurve(
    const AnalysisConfig& cfg);

/// Fig. 13: the number of concurrent user requests a `disk_count`-disk
/// server with `memory` bits of buffer space can support, when the per-disk
/// load is skewed by Zipf(θ) (Sec. 5.3). Computed by growing the per-disk
/// request counts in proportion to the Zipf weights until either every disk
/// saturates (n_d = N) or the memory model's total exceeds `memory`.
struct CapacityPoint {
  Bits memory;
  int stat = 0;
  int dynamic = 0;
};
Result<std::vector<CapacityPoint>> CapacityVsMemoryCurve(
    const AnalysisConfig& cfg, int disk_count, double disk_theta,
    const std::vector<Bits>& memory_sizes);

}  // namespace vod

#endif  // VODB_VOD_ANALYSIS_H_
