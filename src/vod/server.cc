#include "vod/server.h"

#include <cstdio>
#include <utility>

#include "core/params.h"

namespace vod {

VodServer::VodServer(std::unique_ptr<sim::MemoryBroker> broker,
                     std::unique_ptr<sim::VodSimulator> sim)
    : broker_(std::move(broker)), sim_(std::move(sim)) {}

Result<std::unique_ptr<VodServer>> VodServer::Create(const Options& options) {
  std::unique_ptr<sim::MemoryBroker> broker;
  if (options.memory_capacity > Bits(0)) {
    const sim::SimConfig& c = options.config;
    const int n_for_dl =
        c.method == core::ScheduleMethod::kGss
            ? c.gss_group_size
            : core::MaxConcurrentRequests(c.profile.transfer_rate,
                                          c.consumption_rate);
    Result<core::AllocParams> params = core::MakeAllocParams(
        c.profile, c.consumption_rate, c.method, n_for_dl, c.alpha);
    if (!params.ok()) return params.status();
    broker = std::make_unique<sim::AnalyticMemoryBroker>(
        *params, c.method, c.scheme == sim::AllocScheme::kDynamic,
        c.gss_group_size, /*disk_count=*/1, options.memory_capacity);
  }
  Result<std::unique_ptr<sim::VodSimulator>> sim =
      sim::VodSimulator::Create(options.config, broker.get());
  if (!sim.ok()) return sim.status();
  return std::unique_ptr<VodServer>(
      new VodServer(std::move(broker), std::move(sim.value())));
}

Result<Seconds> VodServer::Submit(int video, Seconds viewing_time) {
  sim::ArrivalEvent ev;
  ev.time = std::max(sim_->now(), horizon_);
  ev.video = video;
  ev.viewing_time = viewing_time;
  ev.disk = sim_->config().disk_id;
  VOD_RETURN_IF_ERROR(sim_->AddArrivals({ev}));
  return ev.time;
}

Result<RequestId> VodServer::SubmitSession(int video, Seconds viewing_time,
                                           Seconds start_position) {
  // Bring the simulator current before the synchronous arrival.
  sim_->RunUntil(horizon_);
  sim::ArrivalEvent ev;
  ev.time = std::max(sim_->now(), horizon_);
  ev.video = video;
  ev.viewing_time = viewing_time;
  ev.start_position = start_position;
  ev.disk = sim_->config().disk_id;
  return sim_->SubmitNow(ev);
}

Result<RequestId> VodServer::VcrReposition(RequestId session, int video,
                                           Seconds new_position,
                                           Seconds remaining_viewing) {
  VOD_RETURN_IF_ERROR(sim_->CancelRequest(session));
  return SubmitSession(video, remaining_viewing, new_position);
}

Status VodServer::Cancel(RequestId session) {
  return sim_->CancelRequest(session);
}

void VodServer::RunFor(Seconds duration) {
  horizon_ += duration;
  sim_->RunUntil(horizon_);
}

void VodServer::RunToCompletion() { sim_->RunToCompletion(); }

void VodServer::Finish() { sim_->Finalize(); }

std::string VodServer::SummaryLine() const {
  const sim::SimMetrics& m = sim_->metrics();
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "arrivals=%ld admitted=%ld rejected=%ld completed=%ld "
                "mean_initial_latency=%.3fs estimation_success=%.3f",
                m.arrivals, m.admitted, m.rejected, m.completed,
                m.initial_latency.mean(), m.SuccessProbability());
  return std::string(buf);
}

}  // namespace vod
