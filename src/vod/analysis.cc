#include "vod/analysis.h"

#include <algorithm>
#include <cmath>

#include "core/closed_form.h"
#include "core/latency_model.h"
#include "core/memory_model.h"
#include "core/static_alloc.h"
#include "sim/zipf.h"

namespace vod {

namespace {

/// AllocParams for `cfg` at in-service count n (Sweep's DL varies with n;
/// GSS uses the group size; Round-Robin the full stroke). The static
/// scheme's buffer is always sized at the fully loaded configuration.
Result<core::AllocParams> ParamsAt(const AnalysisConfig& cfg, int n) {
  const int n_or_g =
      cfg.method == core::ScheduleMethod::kGss ? cfg.gss_group_size : n;
  return core::MakeAllocParams(cfg.profile, cfg.consumption_rate, cfg.method,
                               n_or_g, cfg.alpha);
}

Result<core::AllocParams> FullyLoadedParams(const AnalysisConfig& cfg) {
  const int n_max = core::MaxConcurrentRequests(cfg.profile.transfer_rate,
                                                cfg.consumption_rate);
  return ParamsAt(cfg, n_max);
}

}  // namespace

Result<std::vector<SchemeComparisonPoint>> BufferSizeCurve(
    const AnalysisConfig& cfg) {
  Result<core::AllocParams> full = FullyLoadedParams(cfg);
  if (!full.ok()) return full.status();
  Result<Bits> static_bs = core::StaticSchemeBufferSize(*full);
  if (!static_bs.ok()) return static_bs.status();

  std::vector<SchemeComparisonPoint> out;
  for (int n = 1; n <= full->n_max; ++n) {
    Result<core::AllocParams> p = ParamsAt(cfg, n);
    if (!p.ok()) return p.status();
    const int k = std::min(cfg.k, p->n_max - n);
    Result<Bits> dyn = core::DynamicBufferSize(*p, n, k);
    if (!dyn.ok()) return dyn.status();
    out.push_back({n, static_bs->value(), dyn->value()});
  }
  return out;
}

Result<std::vector<SchemeComparisonPoint>> WorstLatencyCurve(
    const AnalysisConfig& cfg) {
  Result<std::vector<SchemeComparisonPoint>> sizes = BufferSizeCurve(cfg);
  if (!sizes.ok()) return sizes.status();

  std::vector<SchemeComparisonPoint> out;
  for (const SchemeComparisonPoint& pt : *sizes) {
    Result<core::AllocParams> p = ParamsAt(cfg, pt.n);
    if (!p.ok()) return p.status();
    const int n_or_g =
        cfg.method == core::ScheduleMethod::kGss ? cfg.gss_group_size : pt.n;
    Result<Seconds> il_static =
        core::WorstInitialLatency(*p, cfg.method, Bits(pt.stat), n_or_g);
    if (!il_static.ok()) return il_static.status();
    Result<Seconds> il_dyn =
        core::WorstInitialLatency(*p, cfg.method, Bits(pt.dynamic), n_or_g);
    if (!il_dyn.ok()) return il_dyn.status();
    out.push_back({pt.n, il_static->value(), il_dyn->value()});
  }
  return out;
}

Result<std::vector<SchemeComparisonPoint>> MemoryRequirementCurve(
    const AnalysisConfig& cfg) {
  Result<core::AllocParams> full = FullyLoadedParams(cfg);
  if (!full.ok()) return full.status();

  std::vector<SchemeComparisonPoint> out;
  for (int n = 1; n <= full->n_max; ++n) {
    Result<core::AllocParams> p = ParamsAt(cfg, n);
    if (!p.ok()) return p.status();
    const int k = std::min(cfg.k, p->n_max - n);
    Result<Bits> mem_static = core::StaticMemoryRequirement(
        *full, cfg.method, n, cfg.gss_group_size);
    if (!mem_static.ok()) return mem_static.status();
    Result<Bits> mem_dyn = core::DynamicMemoryRequirement(
        *p, cfg.method, n, k, cfg.gss_group_size);
    if (!mem_dyn.ok()) return mem_dyn.status();
    out.push_back({n, mem_static->value(), mem_dyn->value()});
  }
  return out;
}

Result<std::vector<CapacityPoint>> CapacityVsMemoryCurve(
    const AnalysisConfig& cfg, int disk_count, double disk_theta,
    const std::vector<Bits>& memory_sizes) {
  if (disk_count < 1) return Status::InvalidArgument("need >= 1 disk");
  Result<std::vector<double>> weights =
      sim::ZipfWeights(disk_count, disk_theta);
  if (!weights.ok()) return weights.status();
  Result<core::AllocParams> full = FullyLoadedParams(cfg);
  if (!full.ok()) return full.status();
  const int n_max = full->n_max;

  // Memory cost of one disk holding n requests under each scheme.
  auto disk_cost = [&](int n, bool dynamic) -> Result<Bits> {
    if (n == 0) return Bits(0);
    Result<core::AllocParams> p = ParamsAt(cfg, n);
    if (!p.ok()) return p.status();
    if (dynamic) {
      const int k = std::min(cfg.k, n_max - n);
      return core::DynamicMemoryRequirement(*p, cfg.method, n, k,
                                            cfg.gss_group_size);
    }
    return core::StaticMemoryRequirement(*full, cfg.method, n,
                                         cfg.gss_group_size);
  };

  // For a target total request count m, distribute across disks by the
  // Zipf weights (each capped at N) and price the system.
  auto total_cost = [&](int m, bool dynamic) -> Result<Bits> {
    // Largest-remainder apportionment of m across disks.
    std::vector<int> n_d(static_cast<std::size_t>(disk_count), 0);
    std::vector<std::pair<double, int>> rema;
    int assigned = 0;
    for (int d = 0; d < disk_count; ++d) {
      const double exact = m * (*weights)[static_cast<std::size_t>(d)];
      int base = static_cast<int>(std::floor(exact));
      base = std::min(base, n_max);
      n_d[static_cast<std::size_t>(d)] = base;
      assigned += base;
      rema.push_back({exact - std::floor(exact), d});
    }
    std::sort(rema.begin(), rema.end(), std::greater<>());
    for (auto& [frac, d] : rema) {
      if (assigned >= m) break;
      if (n_d[static_cast<std::size_t>(d)] < n_max) {
        ++n_d[static_cast<std::size_t>(d)];
        ++assigned;
      }
    }
    Bits total;
    for (int d = 0; d < disk_count; ++d) {
      Result<Bits> c = disk_cost(n_d[static_cast<std::size_t>(d)], dynamic);
      if (!c.ok()) return c.status();
      total += *c;
    }
    if (assigned < m) {
      // Zipf skew saturated some disks before reaching m: the system
      // cannot host m requests no matter the memory.
      return Status::CapacityExceeded("disk capacity reached");
    }
    return total;
  };

  // Max m that both fits `memory` and respects per-disk saturation
  // (monotone in m → binary search).
  auto max_requests = [&](Bits memory, bool dynamic) -> Result<int> {
    int lo = 0;
    int hi = disk_count * n_max;
    while (lo < hi) {
      const int mid = (lo + hi + 1) / 2;
      Result<Bits> c = total_cost(mid, dynamic);
      if (c.ok() && *c <= memory) {
        lo = mid;
      } else if (!c.ok() && c.status().code() != StatusCode::kCapacityExceeded) {
        return c.status();
      } else {
        hi = mid - 1;
      }
    }
    return lo;
  };

  std::vector<CapacityPoint> out;
  for (Bits memory : memory_sizes) {
    Result<int> s = max_requests(memory, /*dynamic=*/false);
    if (!s.ok()) return s.status();
    Result<int> d = max_requests(memory, /*dynamic=*/true);
    if (!d.ok()) return d.status();
    out.push_back({memory, *s, *d});
  }
  return out;
}

}  // namespace vod
