#ifndef VODB_OBS_EVENT_TRACER_H_
#define VODB_OBS_EVENT_TRACER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/trace_event.h"

namespace vod::obs {

/// Fixed-capacity ring buffer of structured trace events.
///
/// Single-producer by design: one tracer instance belongs to one simulator
/// (the simulator itself is single-threaded; parallel sweeps give every run
/// its own tracer), so the hot path is lock-free and allocation-free — one
/// struct store plus one index increment per event, no branches beyond the
/// wrap mask. When the buffer wraps, the oldest events are overwritten and
/// counted in dropped(); the retained window is always the most recent
/// `capacity()` events in emission order.
///
/// Concurrency contract: ring_/head_ are deliberately unguarded — there is
/// no mutex to annotate them against, and adding one would put a lock in
/// the per-event hot path. Cross-thread use is a bug; run TSan (VODB_TSAN)
/// to catch violations.
class EventTracer {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

  /// `capacity` is rounded up to a power of two (index masking).
  explicit EventTracer(std::size_t capacity = kDefaultCapacity);

  EventTracer(const EventTracer&) = delete;
  EventTracer& operator=(const EventTracer&) = delete;

  void Emit(const TraceEvent& ev) {
    ring_[static_cast<std::size_t>(head_) & mask_] = ev;
    ++head_;
  }

  std::size_t capacity() const { return ring_.size(); }
  /// Events currently retained (≤ capacity).
  std::size_t size() const {
    return head_ < ring_.size() ? static_cast<std::size_t>(head_)
                                : ring_.size();
  }
  /// Total events ever emitted, including overwritten ones.
  std::uint64_t total_emitted() const { return head_; }
  /// Events lost to wraparound.
  std::uint64_t dropped() const {
    return head_ > ring_.size() ? head_ - ring_.size() : 0;
  }

  /// The retained events, oldest first.
  std::vector<TraceEvent> Snapshot() const;

  void Clear() { head_ = 0; }

 private:
  std::vector<TraceEvent> ring_;
  std::size_t mask_;
  std::uint64_t head_ = 0;  ///< Next write position (monotonic; masked).
};

}  // namespace vod::obs

#endif  // VODB_OBS_EVENT_TRACER_H_
