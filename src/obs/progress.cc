#include "obs/progress.h"

#include <utility>

namespace vod::obs {

ProgressReporter::ProgressReporter(std::size_t total, std::string label,
                                   std::FILE* out, Seconds min_interval)
    : total_(total), label_(std::move(label)), out_(out),
      min_interval_(min_interval) {}

void ProgressReporter::OnComplete() {
  MutexLock lock(mu_);
  if (done_ < total_) ++done_;
  const Seconds now = watch_.Elapsed();
  if (done_ == total_ || last_draw_ < Seconds(0) ||
      now - last_draw_ >= min_interval_) {
    last_draw_ = now;
    Draw(/*final_line=*/false);
  }
}

void ProgressReporter::Finish() {
  MutexLock lock(mu_);
  if (finished_) return;
  finished_ = true;
  Draw(/*final_line=*/true);
}

std::size_t ProgressReporter::completed() const {
  MutexLock lock(mu_);
  return done_;
}

void ProgressReporter::Draw(bool final_line) {
  const Seconds elapsed = watch_.Elapsed();
  const double rate = elapsed > Seconds(0)
                          ? static_cast<double>(done_) / ToSeconds(elapsed)
                          : 0.0;
  const double pct =
      total_ > 0 ? 100.0 * static_cast<double>(done_) /
                       static_cast<double>(total_)
                 : 100.0;
  const double eta =
      rate > 0 ? static_cast<double>(total_ - done_) / rate : 0.0;
  std::fprintf(out_, "\r%s %zu/%zu (%.1f%%) | %.1f runs/s | ETA %.1fs ",
               label_.c_str(), done_, total_, pct, rate, eta);
  if (final_line) std::fprintf(out_, "\n");
  std::fflush(out_);
}

}  // namespace vod::obs
