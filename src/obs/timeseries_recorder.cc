#include "obs/timeseries_recorder.h"

#include <cmath>
#include <cstdio>

namespace vod::obs {

TimeseriesRecorder::TimeseriesRecorder(const Options& options)
    : bucket_(options.bucket.value() > 0.0 ? options.bucket : Seconds(60.0)),
      next_due_(Seconds(0.0)),
      last_time_(Seconds(0.0)),
      last_busy_(Seconds(0.0)) {}

void TimeseriesRecorder::Record(Seconds now, const TimeseriesSample& sample) {
  if (!Due(now)) return;
  Point p;
  p.time = now;
  p.reserved = sample.reserved;
  p.buffered = sample.buffered;
  p.queue_depth = sample.queue_depth;
  p.active = sample.active;
  p.degraded = sample.degraded;
  const Seconds interval = now - last_time_;
  if (interval.value() > 0.0) {
    const double frac = (sample.disk_busy - last_busy_) / interval;
    // Clamp: cumulative busy time can momentarily run ahead of the clock
    // when a service completion lands exactly on the sample boundary.
    p.busy_fraction = frac < 0.0 ? 0.0 : (frac > 1.0 ? 1.0 : frac);
  }
  points_.push_back(p);
  last_time_ = now;
  last_busy_ = sample.disk_busy;
  // Next bucket boundary strictly after `now`.
  next_due_ = Seconds((std::floor(now / bucket_) + 1.0) * bucket_.value());
}

void TimeseriesRecorder::Clear() {
  points_.clear();
  next_due_ = Seconds(0.0);
  last_time_ = Seconds(0.0);
  last_busy_ = Seconds(0.0);
}

std::string TimeseriesCsv(const std::vector<TimeseriesRun>& runs) {
  std::string out =
      "run,label,disk,time_s,reserved_mbit,buffered_mbit,queue_depth,"
      "active,degraded,busy_fraction\n";
  char buf[256];
  for (const TimeseriesRun& run : runs) {
    if (run.recorder == nullptr) continue;
    for (const TimeseriesRecorder::Point& p : run.recorder->points()) {
      std::snprintf(buf, sizeof(buf), "%d,%s,%d,%.3f,%.3f,%.3f,%d,%d,%d,%.6f\n",
                    run.run, run.label.c_str(), run.disk, ToSeconds(p.time),
                    ToMegabits(p.reserved), ToMegabits(p.buffered),
                    p.queue_depth, p.active, p.degraded, p.busy_fraction);
      out += buf;
    }
  }
  return out;
}

Status WriteTimeseriesCsv(const std::string& path,
                          const std::vector<TimeseriesRun>& runs) {
  const std::string text = TimeseriesCsv(runs);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open timeseries file: " + path);
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const int close_rc = std::fclose(f);
  if (written != text.size() || close_rc != 0) {
    return Status::Internal("short write to timeseries file: " + path);
  }
  return Status::OK();
}

}  // namespace vod::obs
