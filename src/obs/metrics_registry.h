#ifndef VODB_OBS_METRICS_REGISTRY_H_
#define VODB_OBS_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace vod::obs {

/// Monotonic named counter. Increment is one relaxed atomic add, safe from
/// any thread (the experiment runner's workers all bump the same counters).
class Counter {
 public:
  void Increment(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-bucketed histogram with lock-free concurrent Add.
///
/// Bucket 0 holds values ≤ `lo` (and any non-positive/NaN input); bucket i
/// (1 ≤ i < buckets−1) holds (lo·g^(i−1), lo·g^i]; the last bucket is the
/// overflow. Quantiles are bucket upper bounds, so an estimate overshoots
/// the true sample quantile by at most one growth factor — the right
/// trade-off for latency percentiles spanning microseconds to minutes.
class Histogram {
 public:
  struct Options {
    double lo = 1e-6;         ///< Upper bound of the first bucket.
    double growth = 2.0;      ///< Geometric bucket growth factor (> 1).
    std::size_t buckets = 64; ///< Total buckets including under/overflow.
  };

  // Two overloads (not one defaulted argument): GCC cannot use the nested
  // aggregate's member initializers in a default argument inside this class.
  Histogram() : Histogram(Options()) {}
  explicit Histogram(const Options& options);

  void Add(double v);

  std::int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  double min() const;
  double max() const;

  /// q in [0,1]. Returns the upper bound of the bucket containing the
  /// rank-⌈q·count⌉ sample (the exact observed max for the overflow bucket
  /// and for q = 1). Returns 0 when empty.
  double Quantile(double q) const;
  double p50() const { return Quantile(0.50); }
  double p95() const { return Quantile(0.95); }
  double p99() const { return Quantile(0.99); }

  /// Inclusive upper bound of bucket `i` (+inf for the overflow bucket).
  double UpperBound(std::size_t i) const;
  /// Which bucket `v` lands in.
  std::size_t BucketFor(double v) const;
  std::vector<std::int64_t> BucketCounts() const;
  const Options& options() const { return opt_; }

 private:
  Options opt_;
  double log_growth_;
  std::unique_ptr<std::atomic<std::int64_t>[]> counts_;
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Thread-safe name → metric registry. Lookup takes a mutex once; the
/// returned references are stable for the registry's lifetime, so hot paths
/// resolve a metric once and then touch only its atomics. `Global()` is the
/// process-wide instance the bench harnesses dump with --metrics=out.json.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name,
                       const Histogram::Options& options = Histogram::Options());

  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  /// {count, mean, p50, p95, p99, max}}} — keys sorted, deterministic.
  std::string ToJson() const;

  /// Drops every registered metric (test isolation). Invalidates references
  /// previously returned — callers must re-resolve.
  void Clear();

  static MetricsRegistry& Global();

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      VODB_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      VODB_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      VODB_GUARDED_BY(mu_);
};

}  // namespace vod::obs

#endif  // VODB_OBS_METRICS_REGISTRY_H_
