#include "obs/metrics_registry.h"

#include <cmath>
#include <cstdio>
#include <limits>

#include "common/det.h"

namespace vod::obs {

namespace {

void AtomicMin(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicAdd(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

std::string FmtDouble(double v) {
  if (std::isinf(v)) return v > 0 ? "1e308" : "-1e308";
  if (std::isnan(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void AppendJsonKey(std::string& out, std::string_view key) {
  out += '"';
  out += key;
  out += "\": ";
}

}  // namespace

Histogram::Histogram(const Options& options)
    : opt_(options),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  if (opt_.buckets < 2) opt_.buckets = 2;
  if (!(opt_.growth > 1.0)) opt_.growth = 2.0;
  if (!(opt_.lo > 0.0)) opt_.lo = 1e-6;
  log_growth_ = std::log(opt_.growth);
  counts_ = std::make_unique<std::atomic<std::int64_t>[]>(opt_.buckets);
  for (std::size_t i = 0; i < opt_.buckets; ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

double Histogram::UpperBound(std::size_t i) const {
  if (i + 1 >= opt_.buckets) {
    return std::numeric_limits<double>::infinity();
  }
  return opt_.lo * std::pow(opt_.growth, static_cast<double>(i));
}

std::size_t Histogram::BucketFor(double v) const {
  if (!(v > opt_.lo)) return 0;  // Also catches NaN and non-positives.
  const double r = std::log(v / opt_.lo) / log_growth_;
  std::size_t i = static_cast<std::size_t>(std::floor(r)) + 1;
  if (i >= opt_.buckets) return opt_.buckets - 1;
  // log() rounding can misplace exact boundary values by one bucket; nudge
  // until the bucket invariant UpperBound(i-1) < v <= UpperBound(i) holds.
  while (i + 1 < opt_.buckets && v > UpperBound(i)) ++i;
  while (i > 1 && v <= UpperBound(i - 1)) --i;
  return i;
}

void Histogram::Add(double v) {
  counts_[BucketFor(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, v);
  AtomicMin(min_, v);
  AtomicMax(max_, v);
}

double Histogram::mean() const {
  const std::int64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

double Histogram::min() const {
  return count() > 0 ? min_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::max() const {
  return count() > 0 ? max_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::Quantile(double q) const {
  const std::int64_t n = count();
  if (n <= 0) return 0.0;
  if (q <= 0.0) return min();
  if (q >= 1.0) return max();
  const auto rank = static_cast<std::int64_t>(
      std::ceil(q * static_cast<double>(n)));
  std::int64_t seen = 0;
  for (std::size_t i = 0; i < opt_.buckets; ++i) {
    seen += counts_[i].load(std::memory_order_relaxed);
    if (seen >= rank) {
      // The overflow bucket has no finite upper bound; report the observed
      // max. Likewise never report beyond the observed max.
      const double ub = UpperBound(i);
      return std::min(ub, max());
    }
  }
  return max();
}

std::vector<std::int64_t> Histogram::BucketCounts() const {
  std::vector<std::int64_t> out(opt_.buckets);
  for (std::size_t i = 0; i < opt_.buckets; ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      const Histogram::Options& options) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(options))
             .first;
  }
  return *it->second;
}

std::string MetricsRegistry::ToJson() const {
  MutexLock lock(mu_);
  // The JSON contract is "keys sorted, deterministic" — std::map delivers
  // that today; the audit keeps the contract if the container ever changes.
  det::AuditOrderedKeys(counters_, "metrics.counters");
  det::AuditOrderedKeys(gauges_, "metrics.gauges");
  det::AuditOrderedKeys(histograms_, "metrics.histograms");
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendJsonKey(out, name);
    out += std::to_string(c->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendJsonKey(out, name);
    out += FmtDouble(g->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    ";
    AppendJsonKey(out, name);
    out += "{\"count\": " + std::to_string(h->count());
    out += ", \"mean\": " + FmtDouble(h->mean());
    out += ", \"p50\": " + FmtDouble(h->p50());
    out += ", \"p95\": " + FmtDouble(h->p95());
    out += ", \"p99\": " + FmtDouble(h->p99());
    out += ", \"max\": " + FmtDouble(h->max()) + "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

void MetricsRegistry::Clear() {
  MutexLock lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const kGlobal = new MetricsRegistry();
  return *kGlobal;
}

}  // namespace vod::obs
