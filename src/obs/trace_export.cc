#include "obs/trace_export.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <set>

#include "obs/span_tracker.h"

namespace vod::obs {

namespace {

/// Chrome tid of the per-run request-lifecycle track; disk tracks use the
/// disk id directly, so keep this clear of any realistic disk count.
constexpr int kLifecycleTid = 1000;

void AppendEscaped(std::string& out, std::string_view s) {
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out += '\\';
    out += ch;
  }
}

void AppendF(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

void AppendJsonlPayload(std::string& out, const TraceEvent& ev) {
  switch (ev.kind) {
    case TraceEventKind::kAdmit:
      AppendF(out, ",\"n\":%d", ev.n);
      break;
    case TraceEventKind::kAllocation:
      AppendF(out, ",\"n\":%d,\"k\":%d,\"buffer_bits\":%.1f,"
                   "\"usage_period\":%.6f",
              ev.n, ev.k, ToBits(ev.bits), ToSeconds(ev.usage_period));
      break;
    case TraceEventKind::kServiceStart:
    case TraceEventKind::kServiceEnd:
      AppendF(out, ",\"bits\":%.1f,\"seek\":%.6f,\"rotation\":%.6f,"
                   "\"transfer\":%.6f",
              ToBits(ev.bits), ToSeconds(ev.seek), ToSeconds(ev.rotation),
              ToSeconds(ev.transfer));
      break;
    case TraceEventKind::kReadFault:
      AppendF(out, ",\"seek\":%.6f,\"rotation\":%.6f", ToSeconds(ev.seek),
              ToSeconds(ev.rotation));
      break;
    default:
      break;
  }
}

}  // namespace

std::string ToJsonl(const std::vector<TraceRun>& runs) {
  std::string out;
  for (const TraceRun& run : runs) {
    for (const TraceEvent& ev : run.events) {
      AppendF(out, "{\"run\":%d,\"label\":\"", run.pid);
      AppendEscaped(out, run.label);
      AppendF(out, "\",\"time\":%.6f,\"kind\":\"", ToSeconds(ev.time));
      out += TraceEventKindName(ev.kind);
      AppendF(out, "\",\"disk\":%d,\"request\":%" PRIu64,
              static_cast<int>(ev.disk), ev.request);
      AppendJsonlPayload(out, ev);
      out += "}\n";
    }
  }
  return out;
}

std::string ToChromeTraceJson(const std::vector<TraceRun>& runs) {
  return ToChromeTraceJson(runs, TraceExportOptions{});
}

std::string ToChromeTraceJson(const std::vector<TraceRun>& runs,
                              const TraceExportOptions& options) {
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  auto emit = [&out, &first](const std::string& ev_json) {
    out += first ? "" : ",\n";
    first = false;
    out += ev_json;
  };

  for (const TraceRun& run : runs) {
    // --- Metadata: process (run) and track names. -------------------------
    {
      std::string m;
      AppendF(m, "{\"ph\":\"M\",\"pid\":%d,\"name\":\"process_name\","
                 "\"args\":{\"name\":\"", run.pid);
      AppendEscaped(m, run.label);
      m += "\"}}";
      emit(m);
    }
    std::set<int> disks;
    for (const TraceEvent& ev : run.events) {
      disks.insert(static_cast<int>(ev.disk));
    }
    for (int d : disks) {
      std::string m;
      AppendF(m, "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
                 "\"name\":\"thread_name\",\"args\":{\"name\":\"disk %d\"}}",
              run.pid, d, d);
      emit(m);
    }
    {
      std::string m;
      AppendF(m, "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
                 "\"name\":\"thread_name\","
                 "\"args\":{\"name\":\"requests\"}}",
              run.pid, kLifecycleTid);
      emit(m);
    }

    // --- Pass 1: count service starts per request (flow arrows need to ---
    // know which start is first / last).
    std::map<RequestId, int> service_starts;
    for (const TraceEvent& ev : run.events) {
      if (ev.kind == TraceEventKind::kServiceStart) {
        ++service_starts[ev.request];
      }
    }

    // --- Optional span derivation (per-stream lifecycle tracks). ----------
    // Spans are sorted by begin time and interleaved into the event walk
    // below so the exported stream stays ts-monotonic per pid.
    std::vector<Span> spans;
    if (options.spans && !run.events.empty()) {
      spans = SpanTracker::FromEvents(run.events, run.events.back().time);
      std::set<RequestId> named;
      for (const Span& span : spans) {
        if (!named.insert(span.request).second) continue;
        std::string m;
        AppendF(m, "{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
                   "\"name\":\"thread_name\","
                   "\"args\":{\"name\":\"stream %" PRIu64 "\"}}",
                run.pid, kSpanTrackTidBase + static_cast<int>(span.request),
                span.request);
        emit(m);
      }
    }
    std::size_t next_span = 0;
    auto flush_spans_until = [&](double ts_us) {
      while (next_span < spans.size() &&
             ToSeconds(spans[next_span].begin) * 1e6 <= ts_us) {
        const Span& span = spans[next_span++];
        std::string x;
        AppendF(x, "{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,"
                   "\"dur\":%.3f,\"name\":\"",
                run.pid, kSpanTrackTidBase + static_cast<int>(span.request),
                ToSeconds(span.begin) * 1e6,
                ToSeconds(span.end - span.begin) * 1e6);
        x += SpanKindName(span.kind);
        AppendF(x, "\",\"cat\":\"span\",\"args\":{\"request\":%" PRIu64
                   ",\"disk\":%d}}",
                span.request, static_cast<int>(span.disk));
        emit(x);
      }
    };

    // --- Pass 2: events. --------------------------------------------------
    std::map<int, bool> disk_slice_open;     // B emitted, E pending.
    std::set<RequestId> async_open;          // "b" emitted, "e" pending.
    std::map<RequestId, int> flow_emitted;   // service starts seen so far.
    for (const TraceEvent& ev : run.events) {
      const double ts = ToSeconds(ev.time) * 1e6;  // Chrome ts is in microseconds.
      flush_spans_until(ts);
      const int disk = static_cast<int>(ev.disk);
      std::string e;
      switch (ev.kind) {
        case TraceEventKind::kServiceStart: {
          AppendF(e, "{\"ph\":\"B\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,"
                     "\"name\":\"service\",\"cat\":\"disk\",\"args\":{"
                     "\"request\":%" PRIu64 ",\"bits\":%.1f,"
                     "\"seek_ms\":%.3f,\"rotation_ms\":%.3f,"
                     "\"transfer_ms\":%.3f}}",
                  run.pid, disk, ts, ev.request, ToBits(ev.bits),
                  ToMilliseconds(ev.seek), ToMilliseconds(ev.rotation),
                  ToMilliseconds(ev.transfer));
          emit(e);
          disk_slice_open[disk] = true;
          // Flow chain across this request's service slices.
          const int total = service_starts[ev.request];
          if (total >= 2) {
            const int seen = flow_emitted[ev.request]++;
            const char* ph = seen == 0            ? "s"
                             : seen + 1 == total  ? "f"
                                                  : "t";
            std::string f;
            AppendF(f, "{\"ph\":\"%s\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,"
                       "\"name\":\"request\",\"cat\":\"request\","
                       "\"id\":\"f%d.%" PRIu64 "\"%s}",
                    ph, run.pid, disk, ts, run.pid, ev.request,
                    seen + 1 == total ? ",\"bp\":\"e\"" : "");
            emit(f);
          }
          break;
        }
        case TraceEventKind::kServiceEnd: {
          // An end whose begin fell off the ring buffer has no open slice;
          // drop it so B/E stay balanced.
          if (!disk_slice_open[disk]) break;
          disk_slice_open[disk] = false;
          AppendF(e, "{\"ph\":\"E\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f}",
                  run.pid, disk, ts);
          emit(e);
          break;
        }
        case TraceEventKind::kAdmit: {
          AppendF(e, "{\"ph\":\"i\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,"
                     "\"s\":\"t\",\"name\":\"admit\",\"cat\":\"lifecycle\","
                     "\"args\":{\"request\":%" PRIu64 ",\"n\":%d}}",
                  run.pid, kLifecycleTid, ts, ev.request, ev.n);
          emit(e);
          std::string b;
          AppendF(b, "{\"ph\":\"b\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,"
                     "\"name\":\"request %" PRIu64 "\",\"cat\":\"request\","
                     "\"id\":\"r%d.%" PRIu64 "\"}",
                  run.pid, kLifecycleTid, ts, ev.request, run.pid,
                  ev.request);
          emit(b);
          async_open.insert(ev.request);
          break;
        }
        case TraceEventKind::kDeparture:
        case TraceEventKind::kCancel: {
          AppendF(e, "{\"ph\":\"i\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,"
                     "\"s\":\"t\",\"name\":\"%s\",\"cat\":\"lifecycle\","
                     "\"args\":{\"request\":%" PRIu64 "}}",
                  run.pid, kLifecycleTid, ts,
                  ev.kind == TraceEventKind::kCancel ? "cancel" : "departure",
                  ev.request);
          emit(e);
          if (async_open.erase(ev.request) > 0) {
            std::string c;
            AppendF(c, "{\"ph\":\"e\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,"
                       "\"name\":\"request %" PRIu64 "\","
                       "\"cat\":\"request\",\"id\":\"r%d.%" PRIu64 "\"}",
                    run.pid, kLifecycleTid, ts, ev.request, run.pid,
                    ev.request);
            emit(c);
          }
          break;
        }
        case TraceEventKind::kAllocation: {
          AppendF(e, "{\"ph\":\"i\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,"
                     "\"s\":\"t\",\"name\":\"allocation\","
                     "\"cat\":\"lifecycle\",\"args\":{"
                     "\"request\":%" PRIu64 ",\"n\":%d,\"k\":%d,"
                     "\"buffer_mbit\":%.3f,\"usage_period_s\":%.3f}}",
                  run.pid, kLifecycleTid, ts, ev.request, ev.n, ev.k,
                  ToMegabits(ev.bits), ToSeconds(ev.usage_period));
          emit(e);
          break;
        }
        default: {
          // arrival / defer / reject_* / starvation: plain instants.
          AppendF(e, "{\"ph\":\"i\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,"
                     "\"s\":\"t\",\"name\":\"",
                  run.pid, kLifecycleTid, ts);
          e += TraceEventKindName(ev.kind);
          AppendF(e, "\",\"cat\":\"lifecycle\","
                     "\"args\":{\"request\":%" PRIu64 "}}",
                  ev.request);
          emit(e);
          break;
        }
      }
    }

    // Spans beginning at the final event's timestamp flush here.
    flush_spans_until(spans.empty() ? 0.0
                                    : ToSeconds(run.events.back().time) * 1e6);
  }
  out += "\n]}\n";
  return out;
}

Status WriteTraceFile(const std::string& path,
                      const std::vector<TraceRun>& runs) {
  return WriteTraceFile(path, runs, TraceExportOptions{});
}

Status WriteTraceFile(const std::string& path,
                      const std::vector<TraceRun>& runs,
                      const TraceExportOptions& options) {
  const bool jsonl =
      path.size() >= 6 && path.compare(path.size() - 6, 6, ".jsonl") == 0;
  const std::string text =
      jsonl ? ToJsonl(runs) : ToChromeTraceJson(runs, options);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open trace file: " + path);
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const int close_rc = std::fclose(f);
  if (written != text.size() || close_rc != 0) {
    return Status::Internal("short write to trace file: " + path);
  }
  return Status::OK();
}

}  // namespace vod::obs
