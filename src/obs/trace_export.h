#ifndef VODB_OBS_TRACE_EXPORT_H_
#define VODB_OBS_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/trace_event.h"

namespace vod::obs {

/// One traced run for export: a label ("rr/dynamic tlog=40 seed=1"), the
/// Chrome process id it maps to (one process per run; grid sweeps use the
/// run's grid index), and its time-ordered events (EventTracer::Snapshot()).
struct TraceRun {
  std::string label;
  int pid = 0;
  std::vector<TraceEvent> events;
};

/// JSONL export: one JSON object per line —
///   {"run":0,"label":...,"time":...,"kind":"service_start","disk":0,
///    "request":17, <kind-specific payload>}
/// Time is simulated seconds. Events keep tracer order (time-monotonic per
/// run), so consumers can stream without sorting.
std::string ToJsonl(const std::vector<TraceRun>& runs);

/// Exporter knobs beyond the default layout.
struct TraceExportOptions {
  /// Adds per-stream span tracks: lifecycle spans derived by SpanTracker
  /// (admission_wait / service / degraded / retry_burst) exported as "X"
  /// complete events, one Chrome thread per stream at
  /// tid = kSpanTrackTidBase + request id, named "stream <id>".
  bool spans = false;
};

/// Chrome tid of the first per-stream span track; stream `r` renders at
/// tid kSpanTrackTidBase + r (validate_trace.py checks the offset).
inline constexpr int kSpanTrackTidBase = 2000;

/// Chrome trace-event JSON (loadable in Perfetto / chrome://tracing).
/// Layout per run (= Chrome process):
///   - one named track per disk carrying B/E "service" slices whose args
///     hold the seek/rotation/transfer breakdown,
///   - a "requests" track with instants for arrival/admit/defer/reject/
///     allocation/starvation/cancel/departure,
///   - an async "request r<id>" span from admission to departure,
///   - flow arrows (s/t/f) chaining each request's service slices,
///   - with options.spans, per-stream "X" span tracks (cat "span").
/// Timestamps are simulated microseconds. Orphan events at the ring
/// buffer's wrap point (an end whose begin was overwritten) are dropped so
/// every emitted B has a matching E.
std::string ToChromeTraceJson(const std::vector<TraceRun>& runs);
std::string ToChromeTraceJson(const std::vector<TraceRun>& runs,
                              const TraceExportOptions& options);

/// Writes `runs` to `path`; picks JSONL when the path ends in ".jsonl",
/// Chrome JSON otherwise (span tracks only apply to the Chrome format).
Status WriteTraceFile(const std::string& path,
                      const std::vector<TraceRun>& runs);
Status WriteTraceFile(const std::string& path,
                      const std::vector<TraceRun>& runs,
                      const TraceExportOptions& options);

}  // namespace vod::obs

#endif  // VODB_OBS_TRACE_EXPORT_H_
