#ifndef VODB_OBS_TRACE_EXPORT_H_
#define VODB_OBS_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/trace_event.h"

namespace vod::obs {

/// One traced run for export: a label ("rr/dynamic tlog=40 seed=1"), the
/// Chrome process id it maps to (one process per run; grid sweeps use the
/// run's grid index), and its time-ordered events (EventTracer::Snapshot()).
struct TraceRun {
  std::string label;
  int pid = 0;
  std::vector<TraceEvent> events;
};

/// JSONL export: one JSON object per line —
///   {"run":0,"label":...,"time":...,"kind":"service_start","disk":0,
///    "request":17, <kind-specific payload>}
/// Time is simulated seconds. Events keep tracer order (time-monotonic per
/// run), so consumers can stream without sorting.
std::string ToJsonl(const std::vector<TraceRun>& runs);

/// Chrome trace-event JSON (loadable in Perfetto / chrome://tracing).
/// Layout per run (= Chrome process):
///   - one named track per disk carrying B/E "service" slices whose args
///     hold the seek/rotation/transfer breakdown,
///   - a "requests" track with instants for arrival/admit/defer/reject/
///     allocation/starvation/cancel/departure,
///   - an async "request r<id>" span from admission to departure,
///   - flow arrows (s/t/f) chaining each request's service slices.
/// Timestamps are simulated microseconds. Orphan events at the ring
/// buffer's wrap point (an end whose begin was overwritten) are dropped so
/// every emitted B has a matching E.
std::string ToChromeTraceJson(const std::vector<TraceRun>& runs);

/// Writes `runs` to `path`; picks JSONL when the path ends in ".jsonl",
/// Chrome JSON otherwise.
Status WriteTraceFile(const std::string& path,
                      const std::vector<TraceRun>& runs);

}  // namespace vod::obs

#endif  // VODB_OBS_TRACE_EXPORT_H_
