#ifndef VODB_OBS_CLOCK_H_
#define VODB_OBS_CLOCK_H_

#include <cstdint>

#include "common/units.h"

namespace vod::obs {

/// Host wall-clock access for the observability layer. This header's
/// implementation is the ONE place the library reads std::chrono (enforced
/// by the `raw-timing` vodb-lint rule): simulation code measures *simulated*
/// time and must never touch the host clock, and every host-side measurement
/// (profiling scopes, runner progress/ETA, per-run timing) goes through the
/// helpers below so it can be found, audited, and mocked in one place.

/// Monotonic nanoseconds since an arbitrary fixed epoch.
std::int64_t MonotonicNanos();

/// Monotonic seconds since the same epoch.
Seconds MonotonicSeconds();

/// Restartable interval timer over the monotonic clock.
class Stopwatch {
 public:
  Stopwatch() : start_(MonotonicNanos()) {}

  void Restart() { start_ = MonotonicNanos(); }
  std::int64_t ElapsedNanos() const { return MonotonicNanos() - start_; }
  Seconds Elapsed() const {
    return Seconds(static_cast<double>(ElapsedNanos()) * 1e-9);
  }

 private:
  std::int64_t start_;
};

}  // namespace vod::obs

#endif  // VODB_OBS_CLOCK_H_
