#ifndef VODB_OBS_PROGRESS_H_
#define VODB_OBS_PROGRESS_H_

#include <cstddef>
#include <cstdio>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/units.h"
#include "obs/clock.h"

namespace vod::obs {

/// Live progress line for long fan-out jobs (the experiment runner's grid
/// sweeps): completed/total, throughput, and a naive linear ETA, redrawn in
/// place on stderr with carriage returns. Thread-safe — the runner's
/// workers call OnComplete() from any thread; redraws are throttled to
/// `min_interval` so thousands of sub-millisecond runs do not turn the
/// reporter into the bottleneck it is meant to expose.
class ProgressReporter {
 public:
  ProgressReporter(std::size_t total, std::string label,
                   std::FILE* out = stderr, Seconds min_interval = Seconds(0.2));

  /// One unit of work finished.
  void OnComplete();

  /// Draws the final 100% line and a newline. Idempotent.
  void Finish();

  std::size_t completed() const;

 private:
  void Draw(bool final_line) VODB_REQUIRES(mu_);

  mutable Mutex mu_;
  const std::size_t total_;
  const std::string label_;
  std::FILE* const out_;
  const Seconds min_interval_;
  Stopwatch watch_ VODB_GUARDED_BY(mu_);
  std::size_t done_ VODB_GUARDED_BY(mu_) = 0;
  Seconds last_draw_ VODB_GUARDED_BY(mu_) = Seconds(-1);
  bool finished_ VODB_GUARDED_BY(mu_) = false;
};

}  // namespace vod::obs

#endif  // VODB_OBS_PROGRESS_H_
