#ifndef VODB_OBS_SPAN_TRACKER_H_
#define VODB_OBS_SPAN_TRACKER_H_

#include <cstdint>
#include <map>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "common/units.h"
#include "obs/trace_event.h"

namespace vod::obs {

/// Per-stream lifecycle span taxonomy. Spans are *derived* from the
/// existing TraceEvent vocabulary — the tracker adds no new emission sites
/// and no new event kinds, so enabling spans cannot perturb the simulation
/// (pure-observer guarantee) and existing goldens/validators are untouched.
enum class SpanKind : std::uint8_t {
  kAdmissionWait = 0,  ///< kArrival → kAdmit (deferral keeps it open).
  kService,            ///< kServiceStart → kServiceEnd, one per disk round.
  kDegradedEpisode,    ///< kDegraded → kRecovered (or stream/run end).
  kRetryBurst,         ///< First kReadFault → next kServiceEnd or kHiccup.
};

inline constexpr int kSpanKindCount = 4;

/// Stable lowercase token ("admission_wait", "service", "degraded",
/// "retry_burst") used by exporters and validators.
std::string_view SpanKindName(SpanKind kind);

struct Span {
  SpanKind kind = SpanKind::kService;
  RequestId request = kInvalidRequestId;
  std::int32_t disk = 0;
  Seconds begin;
  Seconds end;
};

/// Reconstructs per-RequestId duration spans from a time-ordered trace
/// event stream (an EventTracer snapshot or a live feed via Observe).
///
/// Closing rules, chosen so every emitted span has begin ≤ end:
///   - admission_wait closes on kAdmit; a rejected or cancelled request's
///     open wait is dropped (it never became a stream).
///   - service closes on the next kServiceEnd of the same request; an end
///     whose start fell off the ring buffer is dropped (mirrors the
///     orphan-E rule in the Chrome exporter).
///   - degraded closes on kRecovered, or on departure/cancel, or at
///     Finish(end_time) when the stream is still degraded at run end.
///   - retry_burst opens on the first kReadFault while none is open and
///     closes on the next successful kServiceEnd or on kHiccup (budget
///     exhausted); still-open bursts close at Finish(end_time).
///
/// Single-owner, unguarded, same concurrency contract as EventTracer.
class SpanTracker {
 public:
  SpanTracker() = default;
  SpanTracker(const SpanTracker&) = delete;
  SpanTracker& operator=(const SpanTracker&) = delete;

  /// Feed one event; events must arrive in non-decreasing time order.
  void Observe(const TraceEvent& ev);

  /// Closes still-open degraded episodes and retry bursts at `end_time`
  /// and returns all spans sorted by (begin, request, kind, end) — a
  /// deterministic function of the event stream.
  std::vector<Span> Finish(Seconds end_time);

  /// Convenience: derive spans from a complete snapshot in one call.
  static std::vector<Span> FromEvents(const std::vector<TraceEvent>& events,
                                      Seconds end_time);

 private:
  struct OpenState {
    bool has_arrival = false;
    bool has_service = false;
    bool has_degraded = false;
    bool has_burst = false;
    Seconds arrival;
    Seconds service_begin;
    Seconds degraded_begin;
    Seconds burst_begin;
    std::int32_t disk = 0;
  };

  std::map<RequestId, OpenState> open_;
  std::vector<Span> spans_;
};

}  // namespace vod::obs

#endif  // VODB_OBS_SPAN_TRACKER_H_
