#include "obs/postmortem.h"

#include <cctype>
#include <csignal>
#include <cstdio>
#include <utility>

#include "obs/metrics_registry.h"
#include "obs/profile.h"

namespace vod::obs {

namespace {

/// Filename-safe projection of a run label: [A-Za-z0-9._-] pass through,
/// everything else becomes '-' ("rr/dynamic/t40" → "rr-dynamic-t40").
std::string Sanitize(const std::string& label) {
  std::string out;
  out.reserve(label.size());
  for (char ch : label) {
    const unsigned char u = static_cast<unsigned char>(ch);
    out += (std::isalnum(u) != 0 || ch == '.' || ch == '_' || ch == '-')
               ? ch
               : '-';
  }
  return out.empty() ? std::string("run") : out;
}

/// Embeds a producer's own JSON text under `key`. The registry/profiler
/// serializers emit canonical JSON already; parsing through JsonValue both
/// validates them and re-sorts keys into the dump's canonical order.
void SetParsedOrRaw(bench_kit::JsonValue* doc, const std::string& key,
                    const std::string& text) {
  auto parsed = bench_kit::JsonValue::Parse(text);
  if (parsed.ok()) {
    doc->Set(key, std::move(parsed).value());
  } else {
    doc->Set(key, bench_kit::JsonValue::Str(text));
  }
}

bench_kit::JsonValue EventToJson(const TraceEvent& ev) {
  using bench_kit::JsonValue;
  JsonValue e = JsonValue::Object();
  e.Set("time_s", JsonValue::Number(ToSeconds(ev.time)));
  e.Set("kind", JsonValue::Str(std::string(TraceEventKindName(ev.kind))));
  e.Set("disk", JsonValue::Number(static_cast<double>(ev.disk)));
  e.Set("request", JsonValue::Number(static_cast<double>(ev.request)));
  e.Set("n", JsonValue::Number(static_cast<double>(ev.n)));
  e.Set("k", JsonValue::Number(static_cast<double>(ev.k)));
  e.Set("bits", JsonValue::Number(ToBits(ev.bits)));
  e.Set("usage_period_s", JsonValue::Number(ToSeconds(ev.usage_period)));
  e.Set("seek_s", JsonValue::Number(ToSeconds(ev.seek)));
  e.Set("rotation_s", JsonValue::Number(ToSeconds(ev.rotation)));
  e.Set("transfer_s", JsonValue::Number(ToSeconds(ev.transfer)));
  return e;
}

PostmortemSink* g_signal_sink = nullptr;

constexpr int kFatalSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE};

extern "C" void PostmortemSignalHandler(int signum) {
  // Restore default dispositions first so anything going wrong inside the
  // capture terminates instead of recursing.
  for (int s : kFatalSignals) std::signal(s, SIG_DFL);
  PostmortemSink* sink = g_signal_sink;
  g_signal_sink = nullptr;
  if (sink != nullptr) {
    char detail[32];
    std::snprintf(detail, sizeof(detail), "signal %d", signum);
    (void)sink->Capture(PostmortemReason::kFatalSignal, detail, Seconds(0.0));
  }
  std::raise(signum);
}

}  // namespace

std::string_view PostmortemReasonName(PostmortemReason reason) {
  switch (reason) {
    case PostmortemReason::kInvariantViolation:
      return "invariant";
    case PostmortemReason::kHiccupThreshold:
      return "hiccup";
    case PostmortemReason::kFatalSignal:
      return "signal";
    case PostmortemReason::kExplicit:
      return "explicit";
  }
  return "unknown";
}

PostmortemSink::PostmortemSink(const Options& options) : options_(options) {
  // Move-assign a temporary: GCC 12 -O2 misfires -Wrestrict on the
  // const char* assignment path here.
  if (options_.dir.empty()) options_.dir = std::string(".");
  if (options_.ring_tail == 0) options_.ring_tail = 1;
}

Result<std::string> PostmortemSink::Capture(PostmortemReason reason,
                                            const std::string& detail,
                                            Seconds sim_time) {
  using bench_kit::JsonValue;
  if (sim_time.value() == 0.0 && last_time_.value() > 0.0) {
    sim_time = last_time_;  // Signal-path dumps fall back to the last tick.
  }

  JsonValue doc = JsonValue::Object();
  doc.Set("schema", JsonValue::Str("vodb-postmortem-v1"));
  doc.Set("reason",
          JsonValue::Str(std::string(PostmortemReasonName(reason))));
  doc.Set("detail", JsonValue::Str(detail));
  doc.Set("sim_time_s", JsonValue::Number(ToSeconds(sim_time)));
  doc.Set("run_label", JsonValue::Str(options_.run_label));
  doc.Set("config", config_);

  JsonValue ring = JsonValue::Object();
  JsonValue tail = JsonValue::Array();
  std::uint64_t total = 0, dropped = 0;
  if (tracer_ != nullptr) {
    const std::vector<TraceEvent> events = tracer_->Snapshot();
    total = tracer_->total_emitted();
    dropped = tracer_->dropped();
    const std::size_t skip = events.size() > options_.ring_tail
                                 ? events.size() - options_.ring_tail
                                 : 0;
    for (std::size_t i = skip; i < events.size(); ++i) {
      tail.Append(EventToJson(events[i]));
    }
    dropped += skip;  // Tail-capping drops count as lost context too.
  }
  ring.Set("total", JsonValue::Number(static_cast<double>(total)));
  ring.Set("dropped", JsonValue::Number(static_cast<double>(dropped)));
  ring.Set("tail", std::move(tail));
  doc.Set("ring", std::move(ring));

  SetParsedOrRaw(&doc, "metrics", MetricsRegistry::Global().ToJson());
  SetParsedOrRaw(&doc, "profile", Profiler::Global().ToJson());

  // Distinct filename per capture: _2, _3... for repeats of a reason.
  std::string base = options_.dir + "/postmortem_" +
                     Sanitize(options_.run_label) + "_" +
                     std::string(PostmortemReasonName(reason));
  int repeat = 1;
  for (const std::string& p : paths_) {
    if (p.compare(0, base.size(), base) == 0) ++repeat;
  }
  std::string path = base;
  if (repeat > 1) {
    char suffix[16];
    std::snprintf(suffix, sizeof(suffix), "_%d", repeat);
    path += suffix;
  }
  path += ".json";

  const std::string text = doc.Dump();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open postmortem file: " + tmp);
  }
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const int close_rc = std::fclose(f);
  if (written != text.size() || close_rc != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("short write to postmortem file: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename postmortem file to: " + path);
  }
  paths_.push_back(path);
  return path;
}

void PostmortemSink::NoteDegradation(std::uint64_t hiccups,
                                     std::uint64_t degraded_entries,
                                     Seconds now) {
  last_time_ = now;
  if (degradation_captured_) return;
  const bool hiccup_hit =
      options_.hiccup_threshold > 0 && hiccups >= options_.hiccup_threshold;
  const bool degraded_hit = options_.degraded_threshold > 0 &&
                            degraded_entries >= options_.degraded_threshold;
  if (!hiccup_hit && !degraded_hit) return;
  degradation_captured_ = true;
  char detail[96];
  std::snprintf(detail, sizeof(detail),
                "hiccups=%llu degraded_entries=%llu",
                static_cast<unsigned long long>(hiccups),
                static_cast<unsigned long long>(degraded_entries));
  (void)Capture(PostmortemReason::kHiccupThreshold, detail, now);
}

void PostmortemSink::InstallSignalHandler(PostmortemSink* sink) {
  g_signal_sink = sink;
  for (int s : kFatalSignals) {
    std::signal(s, sink != nullptr ? PostmortemSignalHandler : SIG_DFL);
  }
}

}  // namespace vod::obs
