#include "obs/profile.h"

#include <algorithm>
#include <cstdio>

#include "common/det.h"

namespace vod::obs {

Profiler& Profiler::Global() {
  static Profiler* const kGlobal = new Profiler();
  return *kGlobal;
}

ProfSite* Profiler::Register(const std::string& name) {
  MutexLock lock(mu_);
  auto it = sites_.find(name);
  if (it == sites_.end()) {
    it = sites_.emplace(name, std::make_unique<ProfSite>(name)).first;
  }
  return it->second.get();
}

std::vector<ProfSiteStats> Profiler::Snapshot() const {
  std::vector<ProfSiteStats> out;
  {
    MutexLock lock(mu_);
    out.reserve(sites_.size());
    for (const auto& [name, site] : sites_) {
      const std::int64_t calls = site->calls.load(std::memory_order_relaxed);
      if (calls == 0) continue;
      ProfSiteStats s;
      s.name = name;
      s.calls = calls;
      s.total = Seconds(static_cast<double>(
                            site->nanos.load(std::memory_order_relaxed)) *
                        1e-9);
      s.mean = s.total / static_cast<double>(calls);
      out.push_back(std::move(s));
    }
  }
  // Tie-break equal totals by name: std::sort is unstable, so without it
  // two sites with identical totals would order arbitrarily and the report
  // (an output channel) would not be a pure function of the measurements.
  std::sort(out.begin(), out.end(),
            [](const ProfSiteStats& a, const ProfSiteStats& b) {
              if (a.total != b.total) return a.total > b.total;
              return a.name < b.name;
            });
  det::AuditOrderedOutput(
      out, "profiler.snapshot",
      [](const ProfSiteStats& a, const ProfSiteStats& b) {
        return a.total > b.total || (a.total == b.total && a.name < b.name);
      });
  return out;
}

std::string Profiler::ReportTable() const {
  const std::vector<ProfSiteStats> stats = Snapshot();
  if (stats.empty()) return "";
  std::size_t width = 5;
  for (const ProfSiteStats& s : stats) width = std::max(width, s.name.size());
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-*s %12s %12s %12s\n",
                static_cast<int>(width), "phase", "calls", "total_s",
                "mean_us");
  out += buf;
  for (const ProfSiteStats& s : stats) {
    std::snprintf(buf, sizeof(buf), "%-*s %12lld %12.4f %12.2f\n",
                  static_cast<int>(width), s.name.c_str(),
                  static_cast<long long>(s.calls), ToSeconds(s.total),
                  ToSeconds(s.mean) * 1e6);
    out += buf;
  }
  return out;
}

std::string Profiler::ToJson() const {
  const std::vector<ProfSiteStats> stats = Snapshot();
  std::string out = "[";
  for (std::size_t i = 0; i < stats.size(); ++i) {
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "%s\n  {\"name\": \"%s\", \"calls\": %lld, "
                  "\"total_s\": %.6f, \"mean_us\": %.3f}",
                  i > 0 ? "," : "", stats[i].name.c_str(),
                  static_cast<long long>(stats[i].calls),
                  ToSeconds(stats[i].total), ToSeconds(stats[i].mean) * 1e6);
    out += buf;
  }
  out += stats.empty() ? "]\n" : "\n]\n";
  return out;
}

void Profiler::Reset() {
  MutexLock lock(mu_);
  for (auto& [name, site] : sites_) {
    site->calls.store(0, std::memory_order_relaxed);
    site->nanos.store(0, std::memory_order_relaxed);
  }
}

}  // namespace vod::obs
