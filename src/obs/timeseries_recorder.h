#ifndef VODB_OBS_TIMESERIES_RECORDER_H_
#define VODB_OBS_TIMESERIES_RECORDER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace vod::obs {

/// One instantaneous reading of the simulator's resource state, taken by the
/// simulator itself (only it can see the event queue and the allocator) and
/// handed to the recorder. All fields are reads of existing state — sampling
/// never mutates anything, preserving the pure-observer guarantee.
struct TimeseriesSample {
  Bits reserved;         ///< Broker reservation (predicted memory in use).
  Bits buffered;         ///< Actual buffered bits across in-service streams.
  int queue_depth = 0;   ///< Pending entries in the simulator event queue.
  int active = 0;        ///< Streams currently in service.
  int degraded = 0;      ///< Streams currently in the Degraded state.
  Seconds disk_busy;     ///< Cumulative disk busy time since run start.
};

/// Fixed-bucket sampler of simulator resource state over *simulated* time.
///
/// The simulator polls `Due(now)` after each dispatched event (one compare
/// when attached, nothing when not) and calls `Record` with a fresh sample
/// the first time the clock enters a new bucket. Bucket semantics: each
/// retained point is the first observation at-or-after its bucket boundary,
/// stamped with the actual observation time — trajectories stay faithful to
/// the event-driven clock instead of inventing interpolated values. The
/// per-bucket busy fraction is derived from the cumulative busy-time delta
/// between consecutive points, so it is exact over the inter-point interval.
///
/// Like the EventTracer, a recorder belongs to one simulator and is
/// deliberately unguarded: the simulator is single-threaded and parallel
/// sweeps give every run its own recorder.
class TimeseriesRecorder {
 public:
  struct Options {
    Seconds bucket = Seconds(60.0);  ///< Sampling grain in simulated time.
  };

  TimeseriesRecorder() : TimeseriesRecorder(Options()) {}
  explicit TimeseriesRecorder(const Options& options);

  TimeseriesRecorder(const TimeseriesRecorder&) = delete;
  TimeseriesRecorder& operator=(const TimeseriesRecorder&) = delete;

  /// Cheap hot-path gate: true when `now` has entered a bucket with no
  /// point yet. The simulator only assembles a sample when this fires.
  bool Due(Seconds now) const { return now >= next_due_; }

  /// Appends a point for the bucket containing `now`. Ignores calls that
  /// are not due (callers should gate on Due) and out-of-order times.
  void Record(Seconds now, const TimeseriesSample& sample);

  struct Point {
    Seconds time;          ///< Observation time (within its bucket).
    Bits reserved;
    Bits buffered;
    int queue_depth = 0;
    int active = 0;
    int degraded = 0;
    double busy_fraction = 0.0;  ///< Busy share of the preceding interval.
  };

  const std::vector<Point>& points() const { return points_; }
  Seconds bucket() const { return bucket_; }
  void Clear();

 private:
  Seconds bucket_;
  Seconds next_due_;   ///< Smallest time at which Due fires.
  Seconds last_time_;  ///< Time of the previous point (busy-fraction base).
  Seconds last_busy_;  ///< Cumulative busy time at the previous point.
  std::vector<Point> points_;
};

/// One recorded run for CSV export. `run` is the grid index (matches the
/// trace export's pid and RunLogJson's "index"), `disk` the disk id within
/// a multi-disk run (0 for single-disk).
struct TimeseriesRun {
  std::string label;
  int run = 0;
  int disk = 0;
  const TimeseriesRecorder* recorder = nullptr;
};

/// CSV with a fixed header:
///   run,label,disk,time_s,reserved_mbit,buffered_mbit,queue_depth,active,
///   degraded,busy_fraction
/// Labels are emitted verbatim (run labels never contain commas or quotes).
std::string TimeseriesCsv(const std::vector<TimeseriesRun>& runs);

/// Writes `TimeseriesCsv(runs)` to `path`.
Status WriteTimeseriesCsv(const std::string& path,
                          const std::vector<TimeseriesRun>& runs);

}  // namespace vod::obs

#endif  // VODB_OBS_TIMESERIES_RECORDER_H_
