#ifndef VODB_OBS_TRACE_EVENT_H_
#define VODB_OBS_TRACE_EVENT_H_

#include <cstdint>
#include <string_view>

#include "common/types.h"
#include "common/units.h"

namespace vod::obs {

/// Structured per-event trace record. One flat struct (no variants, no heap)
/// so the tracer's ring buffer stays a contiguous allocation-free array;
/// which payload fields are meaningful depends on the kind (see each
/// enumerator). Every event carries the simulated time, the disk it
/// happened on, and the request it concerns.
enum class TraceEventKind : std::uint8_t {
  kArrival = 0,        ///< Request arrived (before any admission decision).
  kAdmit,              ///< Admitted; `n` = requests in service after admit.
  kDefer,              ///< Assumption-1 deferral (first deferral only).
  kRejectCapacity,     ///< Turned away: fully loaded disk (n == N).
  kRejectMemory,       ///< Turned away: shared memory budget exhausted.
  kRejectInvalid,      ///< Turned away: nothing to play at that position.
  kAllocation,         ///< Theorem-1 sizing: `n`, `k`, `bits`, usage_period.
  kServiceStart,       ///< Disk read begins: `bits` + seek/rotation/transfer.
  kServiceEnd,         ///< Disk read ends (same breakdown as the start).
  kStarvation,         ///< Buffer underflow edge (continuity violation).
  kDeparture,          ///< Viewing finished; the request left the system.
  kCancel,             ///< VCR cancellation (reposition = cancel + new).
  kReadFault,          ///< Injected read failure: seek/rotation spent, no data.
  kHiccup,             ///< Retry budget exhausted; the service round was lost.
  kDegraded,           ///< Stream entered Degraded (missed/failed round).
  kRecovered,          ///< Degraded stream refilled; back to Normal.
};

inline constexpr int kTraceEventKindCount = 16;

/// Stable lowercase token for exporters ("service_start", "admit", ...).
std::string_view TraceEventKindName(TraceEventKind kind);

struct TraceEvent {
  Seconds time;  ///< Simulated time, not host time.
  TraceEventKind kind = TraceEventKind::kArrival;
  std::int32_t disk = 0;
  RequestId request = kInvalidRequestId;

  // Payload; meaning depends on kind (0 where not applicable).
  std::int32_t n = 0;        ///< kAdmit / kAllocation: requests in service.
  std::int32_t k = 0;        ///< kAllocation: estimated additional requests.
  Bits bits;             ///< kAllocation: buffer size; kService*: read size.
  Seconds usage_period;  ///< kAllocation: Eq. 8 usage period.
  Seconds seek;          ///< kService*: seek component.
  Seconds rotation;      ///< kService*: rotational component.
  Seconds transfer;      ///< kService*: transfer component.
};

/// Whether the simulator/scheduler trace hooks were compiled in
/// (-DVODB_TRACE=ON). The tracer classes themselves always exist — only the
/// hot-path emission sites compile away — so harnesses can warn when a
/// --trace flag cannot produce events.
#ifndef VODB_TRACE_ENABLED
#define VODB_TRACE_ENABLED 0
#endif
#if VODB_TRACE_ENABLED
inline constexpr bool kTraceHooksCompiledIn = true;
#else
inline constexpr bool kTraceHooksCompiledIn = false;
#endif

}  // namespace vod::obs

#endif  // VODB_OBS_TRACE_EVENT_H_
