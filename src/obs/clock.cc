#include "obs/clock.h"

#include <chrono>

namespace vod::obs {

std::int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Seconds MonotonicSeconds() {
  return Seconds(static_cast<double>(MonotonicNanos()) * 1e-9);
}

}  // namespace vod::obs
