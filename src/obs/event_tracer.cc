#include "obs/event_tracer.h"

namespace vod::obs {

namespace {

std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

std::string_view TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kArrival:
      return "arrival";
    case TraceEventKind::kAdmit:
      return "admit";
    case TraceEventKind::kDefer:
      return "defer";
    case TraceEventKind::kRejectCapacity:
      return "reject_capacity";
    case TraceEventKind::kRejectMemory:
      return "reject_memory";
    case TraceEventKind::kRejectInvalid:
      return "reject_invalid";
    case TraceEventKind::kAllocation:
      return "allocation";
    case TraceEventKind::kServiceStart:
      return "service_start";
    case TraceEventKind::kServiceEnd:
      return "service_end";
    case TraceEventKind::kStarvation:
      return "starvation";
    case TraceEventKind::kDeparture:
      return "departure";
    case TraceEventKind::kCancel:
      return "cancel";
    case TraceEventKind::kReadFault:
      return "read_fault";
    case TraceEventKind::kHiccup:
      return "hiccup";
    case TraceEventKind::kDegraded:
      return "degraded";
    case TraceEventKind::kRecovered:
      return "recovered";
  }
  return "unknown";
}

EventTracer::EventTracer(std::size_t capacity)
    : ring_(RoundUpPow2(capacity < 2 ? 2 : capacity)),
      mask_(ring_.size() - 1) {}

std::vector<TraceEvent> EventTracer::Snapshot() const {
  std::vector<TraceEvent> out;
  const std::size_t n = size();
  out.reserve(n);
  const std::uint64_t first = head_ - n;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[static_cast<std::size_t>(first + i) & mask_]);
  }
  return out;
}

}  // namespace vod::obs
