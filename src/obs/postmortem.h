#ifndef VODB_OBS_POSTMORTEM_H_
#define VODB_OBS_POSTMORTEM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "bench_kit/json.h"
#include "common/status.h"
#include "common/units.h"
#include "obs/event_tracer.h"

namespace vod::obs {

/// Why a postmortem dump was taken. The token (PostmortemReasonName) is
/// embedded in both the filename and the JSON, so a directory of dumps is
/// triageable from `ls` alone.
enum class PostmortemReason : std::uint8_t {
  kInvariantViolation = 0,  ///< InvariantAuditor capture-then-fail hook.
  kHiccupThreshold,         ///< Fault-layer degradation crossed a threshold.
  kFatalSignal,             ///< SIGSEGV/SIGABRT/SIGBUS/SIGFPE handler.
  kExplicit,                ///< Capture() called directly.
};

/// "invariant", "hiccup", "signal", "explicit".
std::string_view PostmortemReasonName(PostmortemReason reason);

/// Flight-data-recorder sink: on trigger, atomically writes one JSON file
/// (`postmortem_<run>_<reason>.json`) containing
///   - the tail of the attached EventTracer ring (the run's last moments),
///   - MetricsRegistry + Profiler snapshots,
///   - the run configuration handed in by the harness (grid coords, seed,
///     fault spec, git SHA) as a bench_kit canonical sorted-key JSON value,
///   - the trigger reason, detail string, and simulated time.
/// Schema id: "vodb-postmortem-v1" (validated by scripts/validate_trace.py).
///
/// The sink is a pure observer: it only ever *reads* simulator state (via
/// the tracer snapshot) and fires on paths that are already exceptional, so
/// attaching one cannot change any simulated quantity.
///
/// Writes are atomic per file (tmp + rename), so a dump directory never
/// holds a torn JSON even when the process dies mid-capture.
class PostmortemSink {
 public:
  struct Options {
    std::string dir = ".";          ///< Output directory (must exist).
    std::string run_label = "run";  ///< Sanitized into the filename.
    std::size_t ring_tail = 512;    ///< Max ring events embedded in a dump.
    /// Degradation thresholds for NoteDegradation; 0 disables a trigger.
    std::uint64_t hiccup_threshold = 0;
    std::uint64_t degraded_threshold = 0;
  };

  PostmortemSink() : PostmortemSink(Options()) {}
  explicit PostmortemSink(const Options& options);

  PostmortemSink(const PostmortemSink&) = delete;
  PostmortemSink& operator=(const PostmortemSink&) = delete;

  /// Ring source for the dump's event tail (optional; the dump records an
  /// empty tail when no tracer is attached or tracing is compiled out).
  void set_tracer(const EventTracer* tracer) { tracer_ = tracer; }

  /// Run configuration embedded verbatim under "config". The harness fills
  /// grid coordinates, seed, fault spec, and bench_kit::GitSha() here — the
  /// sink itself stays independent of the heavier report machinery.
  void set_config(bench_kit::JsonValue config) { config_ = std::move(config); }

  /// Takes a dump now. Returns the path written. Repeated captures get
  /// distinct "_2", "_3"... filename suffixes instead of overwriting.
  Result<std::string> Capture(PostmortemReason reason,
                              const std::string& detail, Seconds sim_time);

  /// Threshold trigger, called by the simulator at fault-layer degradation
  /// counters' increment sites. Captures at most once per sink; a zero
  /// threshold disables that comparison.
  void NoteDegradation(std::uint64_t hiccups, std::uint64_t degraded_entries,
                       Seconds now);

  /// Latest simulated time seen by the owning simulator; stamps dumps taken
  /// from outside the event loop (fatal-signal path).
  void NoteTime(Seconds now) { last_time_ = now; }

  bool triggered() const { return !paths_.empty(); }
  const std::vector<std::string>& paths() const { return paths_; }
  const Options& options() const { return options_; }

  /// Installs best-effort fatal-signal capture (SIGSEGV/SIGABRT/SIGBUS/
  /// SIGFPE) writing through `sink`; pass nullptr to uninstall. The handler
  /// is deliberately not async-signal-safe — on the way down, a probably-
  /// good dump beats certainly-no dump — and re-raises with the default
  /// disposition restored so exit codes and core dumps are preserved.
  static void InstallSignalHandler(PostmortemSink* sink);

 private:
  Options options_;
  const EventTracer* tracer_ = nullptr;
  bench_kit::JsonValue config_;
  Seconds last_time_;
  bool degradation_captured_ = false;
  std::vector<std::string> paths_;
};

}  // namespace vod::obs

#endif  // VODB_OBS_POSTMORTEM_H_
