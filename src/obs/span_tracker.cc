#include "obs/span_tracker.h"

#include <algorithm>

namespace vod::obs {

std::string_view SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kAdmissionWait:
      return "admission_wait";
    case SpanKind::kService:
      return "service";
    case SpanKind::kDegradedEpisode:
      return "degraded";
    case SpanKind::kRetryBurst:
      return "retry_burst";
  }
  return "unknown";
}

void SpanTracker::Observe(const TraceEvent& ev) {
  if (ev.request == kInvalidRequestId) return;
  OpenState& st = open_[ev.request];
  st.disk = ev.disk;
  switch (ev.kind) {
    case TraceEventKind::kArrival:
      st.has_arrival = true;
      st.arrival = ev.time;
      break;
    case TraceEventKind::kAdmit:
      if (st.has_arrival) {
        spans_.push_back({SpanKind::kAdmissionWait, ev.request, ev.disk,
                          st.arrival, ev.time});
        st.has_arrival = false;
      }
      break;
    case TraceEventKind::kRejectCapacity:
    case TraceEventKind::kRejectMemory:
    case TraceEventKind::kRejectInvalid:
      // Never became a stream; drop the open admission wait.
      st.has_arrival = false;
      break;
    case TraceEventKind::kServiceStart:
      st.has_service = true;
      st.service_begin = ev.time;
      break;
    case TraceEventKind::kServiceEnd:
      if (st.has_service) {
        spans_.push_back({SpanKind::kService, ev.request, ev.disk,
                          st.service_begin, ev.time});
        st.has_service = false;
      }
      // A completed read ends any retry burst: the stream got data again.
      if (st.has_burst) {
        spans_.push_back({SpanKind::kRetryBurst, ev.request, ev.disk,
                          st.burst_begin, ev.time});
        st.has_burst = false;
      }
      break;
    case TraceEventKind::kReadFault:
      if (!st.has_burst) {
        st.has_burst = true;
        st.burst_begin = ev.time;
      }
      break;
    case TraceEventKind::kHiccup:
      if (st.has_burst) {
        spans_.push_back({SpanKind::kRetryBurst, ev.request, ev.disk,
                          st.burst_begin, ev.time});
        st.has_burst = false;
      }
      break;
    case TraceEventKind::kDegraded:
      if (!st.has_degraded) {
        st.has_degraded = true;
        st.degraded_begin = ev.time;
      }
      break;
    case TraceEventKind::kRecovered:
      if (st.has_degraded) {
        spans_.push_back({SpanKind::kDegradedEpisode, ev.request, ev.disk,
                          st.degraded_begin, ev.time});
        st.has_degraded = false;
      }
      break;
    case TraceEventKind::kDeparture:
    case TraceEventKind::kCancel: {
      if (st.has_degraded) {
        spans_.push_back({SpanKind::kDegradedEpisode, ev.request, ev.disk,
                          st.degraded_begin, ev.time});
      }
      if (st.has_burst) {
        spans_.push_back({SpanKind::kRetryBurst, ev.request, ev.disk,
                          st.burst_begin, ev.time});
      }
      open_.erase(ev.request);
      break;
    }
    default:
      break;
  }
}

std::vector<Span> SpanTracker::Finish(Seconds end_time) {
  for (const auto& [request, st] : open_) {
    if (st.has_degraded) {
      spans_.push_back({SpanKind::kDegradedEpisode, request, st.disk,
                        st.degraded_begin, end_time});
    }
    if (st.has_burst) {
      spans_.push_back({SpanKind::kRetryBurst, request, st.disk,
                        st.burst_begin, end_time});
    }
  }
  open_.clear();
  std::vector<Span> out = std::move(spans_);
  spans_.clear();
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    if (a.begin != b.begin) return a.begin < b.begin;
    if (a.request != b.request) return a.request < b.request;
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.end < b.end;
  });
  return out;
}

std::vector<Span> SpanTracker::FromEvents(const std::vector<TraceEvent>& events,
                                          Seconds end_time) {
  SpanTracker tracker;
  for (const TraceEvent& ev : events) tracker.Observe(ev);
  return tracker.Finish(end_time);
}

}  // namespace vod::obs
