#ifndef VODB_OBS_PROFILE_H_
#define VODB_OBS_PROFILE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/units.h"
#include "obs/clock.h"

namespace vod::obs {

/// One named profiling site ("disk.service", "sched.sweep.sequence", ...).
/// Accumulation is two relaxed atomic adds per scope exit, so scopes are
/// safe in code that runs concurrently on the experiment runner's workers.
struct ProfSite {
  explicit ProfSite(std::string site_name) : name(std::move(site_name)) {}
  const std::string name;
  std::atomic<std::int64_t> calls{0};
  std::atomic<std::int64_t> nanos{0};
};

struct ProfSiteStats {
  std::string name;
  std::int64_t calls = 0;
  Seconds total;
  Seconds mean;
};

/// Process-wide registry of profiling sites. Sites registered under the
/// same name share one accumulator (the three schedulers' sequence scopes
/// aggregate per scheduler, not per call site).
class Profiler {
 public:
  static Profiler& Global();

  /// Idempotent by name; the returned pointer is stable for the process
  /// lifetime (macro sites cache it in a function-local static).
  ProfSite* Register(const std::string& name);

  /// All sites with ≥ 1 call, sorted by total time descending; equal
  /// totals tie-break by name so the order is a deterministic function of
  /// the accumulated values (report tables diff cleanly across runs).
  std::vector<ProfSiteStats> Snapshot() const;

  /// Human-readable per-phase timing table (aligned columns), e.g. for a
  /// bench harness' stderr epilogue. Empty string when nothing was profiled.
  std::string ReportTable() const;

  /// JSON array [{"name":..., "calls":..., "total_s":..., "mean_us":...}].
  std::string ToJson() const;

  /// Zeroes every accumulator (sites stay registered).
  void Reset();

 private:
  Profiler() = default;
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<ProfSite>> sites_
      VODB_GUARDED_BY(mu_);
};

/// RAII scope accumulating wall time into a site.
class ProfScope {
 public:
  explicit ProfScope(ProfSite* site) : site_(site), t0_(MonotonicNanos()) {}
  ~ProfScope() {
    site_->calls.fetch_add(1, std::memory_order_relaxed);
    site_->nanos.fetch_add(MonotonicNanos() - t0_, std::memory_order_relaxed);
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  ProfSite* site_;
  std::int64_t t0_;
};

}  // namespace vod::obs

/// VODB_PROF_SCOPE("phase.name") — time the enclosing block into the global
/// profiler. Compiles to nothing with -DVODB_PROF=OFF. The site lookup runs
/// once per call site (function-local static); the steady-clock reads cost
/// ~2×20 ns per entry, which the default-ON build accepts even in the
/// simulator event loop (it cannot perturb any simulated quantity — the
/// profiler only ever reads the host clock, never the simulation clock).
#ifndef VODB_PROF_ENABLED
#define VODB_PROF_ENABLED 0
#endif

#if VODB_PROF_ENABLED
#define VODB_PROF_CONCAT_INNER(a, b) a##b
#define VODB_PROF_CONCAT(a, b) VODB_PROF_CONCAT_INNER(a, b)
#define VODB_PROF_SCOPE(name)                                          \
  static ::vod::obs::ProfSite* const VODB_PROF_CONCAT(                 \
      vodb_prof_site_, __LINE__) =                                     \
      ::vod::obs::Profiler::Global().Register(name);                   \
  ::vod::obs::ProfScope VODB_PROF_CONCAT(vodb_prof_scope_, __LINE__)(  \
      VODB_PROF_CONCAT(vodb_prof_site_, __LINE__))
#else
#define VODB_PROF_SCOPE(name) static_cast<void>(0)
#endif

#endif  // VODB_OBS_PROFILE_H_
