#include "bench_kit/json.h"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace vod::bench_kit {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

void JsonValue::Append(JsonValue v) { array_.push_back(std::move(v)); }

void JsonValue::Set(const std::string& key, JsonValue v) {
  object_[key] = std::move(v);
}

namespace {

void EscapeInto(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void NumberInto(double d, std::string* out) {
  char buf[40];
  const double r = std::round(d);
  if (std::isfinite(d) && d == r && std::fabs(d) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", d);
  } else if (std::isfinite(d)) {
    std::snprintf(buf, sizeof(buf), "%.17g", d);
  } else {
    // JSON has no inf/nan; null is the conventional stand-in.
    std::snprintf(buf, sizeof(buf), "null");
  }
  *out += buf;
}

}  // namespace

void JsonValue::DumpTo(std::string* out, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const std::string pad_in(static_cast<std::size_t>(indent + 1) * 2, ' ');
  switch (kind_) {
    case Kind::kNull: *out += "null"; break;
    case Kind::kBool: *out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: NumberInto(number_, out); break;
    case Kind::kString: EscapeInto(string_, out); break;
    case Kind::kArray: {
      if (array_.empty()) {
        *out += "[]";
        break;
      }
      *out += "[\n";
      for (std::size_t i = 0; i < array_.size(); ++i) {
        *out += pad_in;
        array_[i].DumpTo(out, indent + 1);
        if (i + 1 < array_.size()) *out += ",";
        *out += "\n";
      }
      *out += pad + "]";
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        *out += "{}";
        break;
      }
      *out += "{\n";
      std::size_t i = 0;
      for (const auto& [key, value] : object_) {
        *out += pad_in;
        EscapeInto(key, out);
        *out += ": ";
        value.DumpTo(out, indent + 1);
        if (++i < object_.size()) *out += ",";
        *out += "\n";
      }
      *out += pad + "}";
      break;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out, 0);
  out += "\n";
  return out;
}

namespace {

struct Parser {
  const std::string& text;
  std::size_t pos = 0;

  void SkipWs() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\n' || text[pos] == '\t' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("json parse error at byte " +
                                   std::to_string(pos) + ": " + what);
  }

  Result<JsonValue> ParseValue() {
    SkipWs();
    if (pos >= text.size()) return Fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      auto s = ParseString();
      if (!s.ok()) return s.status();
      return JsonValue::Str(std::move(s).value());
    }
    if (c == 't' || c == 'f') return ParseKeyword();
    if (c == 'n') return ParseNull();
    return ParseNumber();
  }

  Result<JsonValue> ParseObject() {
    ++pos;  // '{'
    JsonValue obj = JsonValue::Object();
    SkipWs();
    if (pos < text.size() && text[pos] == '}') {
      ++pos;
      return obj;
    }
    while (true) {
      SkipWs();
      if (pos >= text.size() || text[pos] != '"') {
        return Fail("expected object key");
      }
      auto key = ParseString();
      if (!key.ok()) return key.status();
      SkipWs();
      if (pos >= text.size() || text[pos] != ':') return Fail("expected ':'");
      ++pos;
      auto value = ParseValue();
      if (!value.ok()) return value.status();
      obj.Set(key.value(), std::move(value).value());
      SkipWs();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        return obj;
      }
      return Fail("expected ',' or '}'");
    }
  }

  Result<JsonValue> ParseArray() {
    ++pos;  // '['
    JsonValue arr = JsonValue::Array();
    SkipWs();
    if (pos < text.size() && text[pos] == ']') {
      ++pos;
      return arr;
    }
    while (true) {
      auto value = ParseValue();
      if (!value.ok()) return value.status();
      arr.Append(std::move(value).value());
      SkipWs();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        return arr;
      }
      return Fail("expected ',' or ']'");
    }
  }

  Result<std::string> ParseString() {
    ++pos;  // '"'
    std::string out;
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return out;
      }
      if (c == '\\') {
        if (pos + 1 >= text.size()) return Fail("dangling escape");
        const char e = text[pos + 1];
        pos += 2;
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            if (pos + 4 > text.size()) return Fail("short \\u escape");
            const std::string hex = text.substr(pos, 4);
            char* end = nullptr;
            const long code = std::strtol(hex.c_str(), &end, 16);
            if (end != hex.c_str() + 4) return Fail("bad \\u escape");
            // ASCII-only decode; the writer never emits higher codepoints.
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else {
              out.push_back('?');
            }
            pos += 4;
            break;
          }
          default:
            return Fail("unknown escape");
        }
        continue;
      }
      out.push_back(c);
      ++pos;
    }
    return Fail("unterminated string");
  }

  Result<JsonValue> ParseKeyword() {
    if (text.compare(pos, 4, "true") == 0) {
      pos += 4;
      return JsonValue::Bool(true);
    }
    if (text.compare(pos, 5, "false") == 0) {
      pos += 5;
      return JsonValue::Bool(false);
    }
    return Fail("unknown keyword");
  }

  Result<JsonValue> ParseNull() {
    if (text.compare(pos, 4, "null") == 0) {
      pos += 4;
      return JsonValue();
    }
    return Fail("unknown keyword");
  }

  Result<JsonValue> ParseNumber() {
    const std::size_t start = pos;
    if (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) ++pos;
    bool digits = false;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '-' || text[pos] == '+')) {
      if (std::isdigit(static_cast<unsigned char>(text[pos])) != 0) {
        digits = true;
      }
      ++pos;
    }
    if (!digits) return Fail("expected a number");
    const std::string tok = text.substr(start, pos - start);
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) return Fail("malformed number");
    return JsonValue::Number(d);
  }
};

}  // namespace

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  Parser p{text};
  auto v = p.ParseValue();
  if (!v.ok()) return v.status();
  p.SkipWs();
  if (p.pos != text.size()) return p.Fail("trailing garbage");
  return v;
}

}  // namespace vod::bench_kit
