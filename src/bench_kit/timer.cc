#include "bench_kit/timer.h"

#include "obs/clock.h"

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace vod::bench_kit {

std::int64_t WallNanos() { return obs::MonotonicNanos(); }

std::uint64_t CycleNow() {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#elif defined(__aarch64__)
  std::uint64_t v = 0;
  asm volatile("mrs %0, cntvct_el0" : "=r"(v));
  return v;
#else
  return 0;
#endif
}

bool CyclesAvailable() {
#if defined(__x86_64__) || defined(__i386__) || defined(__aarch64__)
  return true;
#else
  return false;
#endif
}

}  // namespace vod::bench_kit
