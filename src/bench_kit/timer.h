#ifndef VODB_BENCH_KIT_TIMER_H_
#define VODB_BENCH_KIT_TIMER_H_

#include <cstdint>
#include <functional>

namespace vod::bench_kit {

/// Wall-clock source for the harness: monotonic nanoseconds since an
/// arbitrary epoch. Injectable so the harness itself is testable against a
/// deterministic fake clock (tests script the values each call returns).
/// The default routes through obs::MonotonicNanos() — the repo's single
/// sanctioned host-clock site (see the raw-timing lint rule).
using TimeFn = std::function<std::int64_t()>;

/// The production clock: obs::MonotonicNanos.
std::int64_t WallNanos();

/// Cycle counter read (rdtsc on x86-64, cntvct_el0 on aarch64). Returns 0
/// on architectures without an accessible counter — callers must treat a
/// zero delta as "cycles unavailable". Not serializing: suitable for timing
/// loops of thousands of iterations, not single instructions.
std::uint64_t CycleNow();

/// True when CycleNow() reads a real counter on this build.
bool CyclesAvailable();

}  // namespace vod::bench_kit

#endif  // VODB_BENCH_KIT_TIMER_H_
