#include "bench_kit/run_stats.h"

#include <algorithm>
#include <cmath>

namespace vod::bench_kit {

SampleStats Summarize(std::vector<double> samples) {
  SampleStats s;
  s.count = samples.size();
  if (samples.empty()) return s;

  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();

  const std::size_t n = samples.size();
  s.median = (n % 2 == 1)
                 ? samples[n / 2]
                 : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);

  double sum = 0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(n);

  if (n >= 2) {
    double m2 = 0;
    for (double v : samples) m2 += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(m2 / static_cast<double>(n - 1));
  }
  s.cv = (s.mean != 0) ? s.stddev / s.mean : 0;
  return s;
}

}  // namespace vod::bench_kit
