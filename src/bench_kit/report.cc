#include "bench_kit/report.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

namespace vod::bench_kit {

namespace {

std::string FirstLineOf(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  if (!in || !std::getline(in, line)) return "";
  return line;
}

/// Runs `cmd` and returns its first stdout line ("" on any failure).
std::string CaptureLine(const std::string& cmd) {
  std::FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) return "";
  char buf[256] = {0};
  std::string out;
  if (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
    out = buf;
    while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) {
      out.pop_back();
    }
  }
  ::pclose(pipe);
  return out;
}

}  // namespace

MachineInfo ProbeMachine() {
  MachineInfo m;

  char host[256] = {0};
  if (::gethostname(host, sizeof(host) - 1) == 0 && host[0] != '\0') {
    m.hostname = host;
  } else {
    m.hostname = "unknown";
  }

  m.cpu_model = "unknown";
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (cpuinfo && std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) == 0) {
      const std::size_t colon = line.find(':');
      if (colon != std::string::npos) {
        std::size_t start = colon + 1;
        while (start < line.size() && line[start] == ' ') ++start;
        m.cpu_model = line.substr(start);
      }
      break;
    }
  }

  m.core_count = static_cast<int>(std::thread::hardware_concurrency());

  m.governor = FirstLineOf(
      "/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor");
  if (m.governor.empty()) m.governor = "unknown";

  return m;
}

std::string BuildType() {
#ifdef VODB_BUILD_TYPE
  return VODB_BUILD_TYPE;
#else
  return "unknown";
#endif
}

std::string GitSha() {
  if (const char* env = std::getenv("VODB_GIT_SHA");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  std::string sha = CaptureLine("git rev-parse HEAD 2>/dev/null");
  if (sha.empty()) return "unknown";
  const std::string dirty =
      CaptureLine("git status --porcelain 2>/dev/null | head -1");
  if (!dirty.empty()) sha += "-dirty";
  return sha;
}

namespace {

JsonValue StatsToJson(const SampleStats& s) {
  JsonValue v = JsonValue::Object();
  v.Set("min", JsonValue::Number(s.min));
  v.Set("max", JsonValue::Number(s.max));
  v.Set("mean", JsonValue::Number(s.mean));
  v.Set("median", JsonValue::Number(s.median));
  v.Set("stddev", JsonValue::Number(s.stddev));
  v.Set("cv", JsonValue::Number(s.cv));
  return v;
}

Result<SampleStats> StatsFromJson(const JsonValue& v, std::size_t count) {
  if (!v.is_object()) {
    return Status::InvalidArgument("stats block is not an object");
  }
  SampleStats s;
  s.count = count;
  struct Field {
    const char* name;
    double* slot;
  };
  const Field fields[] = {{"min", &s.min},       {"max", &s.max},
                          {"mean", &s.mean},     {"median", &s.median},
                          {"stddev", &s.stddev}, {"cv", &s.cv}};
  for (const Field& f : fields) {
    const JsonValue* field = v.Find(f.name);
    if (field == nullptr || field->kind() != JsonValue::Kind::kNumber) {
      return Status::InvalidArgument(std::string("stats block missing \"") +
                                     f.name + "\"");
    }
    *f.slot = field->AsNumber();
  }
  return s;
}

Result<std::string> RequireString(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->kind() != JsonValue::Kind::kString) {
    return Status::InvalidArgument(std::string("missing string field \"") +
                                   key + "\"");
  }
  return v->AsString();
}

Result<double> RequireNumber(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || v->kind() != JsonValue::Kind::kNumber) {
    return Status::InvalidArgument(std::string("missing number field \"") +
                                   key + "\"");
  }
  return v->AsNumber();
}

}  // namespace

JsonValue ReportToJson(const BenchReport& report) {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema", JsonValue::Str(report.schema));

  JsonValue machine = JsonValue::Object();
  machine.Set("hostname", JsonValue::Str(report.machine.hostname));
  machine.Set("cpu_model", JsonValue::Str(report.machine.cpu_model));
  machine.Set("core_count",
              JsonValue::Number(static_cast<double>(report.machine.core_count)));
  machine.Set("governor", JsonValue::Str(report.machine.governor));
  doc.Set("machine", machine);

  doc.Set("git_sha", JsonValue::Str(report.git_sha));
  doc.Set("build_type", JsonValue::Str(report.build_type));

  JsonValue benches = JsonValue::Array();
  for (const BenchResult& r : report.results) {
    JsonValue b = JsonValue::Object();
    b.Set("name", JsonValue::Str(r.name));
    b.Set("iterations",
          JsonValue::Number(static_cast<double>(r.iterations)));
    b.Set("repetitions",
          JsonValue::Number(static_cast<double>(r.repetitions)));
    b.Set("ns_per_iter", StatsToJson(r.ns_per_iter));
    if (r.cycles_per_iter.count > 0) {
      b.Set("cycles_per_iter", StatsToJson(r.cycles_per_iter));
    }
    benches.Append(b);
  }
  doc.Set("benchmarks", benches);
  return doc;
}

Result<BenchReport> ReportFromJson(const JsonValue& doc) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("report is not a JSON object");
  }
  BenchReport report;

  auto schema = RequireString(doc, "schema");
  if (!schema.ok()) return schema.status();
  report.schema = schema.value();
  if (report.schema != "vodb-bench-v1") {
    return Status::InvalidArgument("unsupported schema \"" + report.schema +
                                   "\"");
  }

  if (const JsonValue* machine = doc.Find("machine");
      machine != nullptr && machine->is_object()) {
    auto hostname = RequireString(*machine, "hostname");
    if (!hostname.ok()) return hostname.status();
    report.machine.hostname = hostname.value();
    auto cpu = RequireString(*machine, "cpu_model");
    if (!cpu.ok()) return cpu.status();
    report.machine.cpu_model = cpu.value();
    auto cores = RequireNumber(*machine, "core_count");
    if (!cores.ok()) return cores.status();
    report.machine.core_count = static_cast<int>(cores.value());
    auto governor = RequireString(*machine, "governor");
    if (!governor.ok()) return governor.status();
    report.machine.governor = governor.value();
  } else {
    return Status::InvalidArgument("missing \"machine\" object");
  }

  auto sha = RequireString(doc, "git_sha");
  if (!sha.ok()) return sha.status();
  report.git_sha = sha.value();
  auto build = RequireString(doc, "build_type");
  if (!build.ok()) return build.status();
  report.build_type = build.value();

  const JsonValue* benches = doc.Find("benchmarks");
  if (benches == nullptr || !benches->is_array()) {
    return Status::InvalidArgument("missing \"benchmarks\" array");
  }
  for (const JsonValue& b : benches->Items()) {
    BenchResult r;
    auto name = RequireString(b, "name");
    if (!name.ok()) return name.status();
    r.name = name.value();
    auto iters = RequireNumber(b, "iterations");
    if (!iters.ok()) return iters.status();
    r.iterations = static_cast<std::uint64_t>(iters.value());
    auto reps = RequireNumber(b, "repetitions");
    if (!reps.ok()) return reps.status();
    r.repetitions = static_cast<std::size_t>(reps.value());

    const JsonValue* ns = b.Find("ns_per_iter");
    if (ns == nullptr) {
      return Status::InvalidArgument("benchmark \"" + r.name +
                                     "\" missing ns_per_iter");
    }
    auto ns_stats = StatsFromJson(*ns, r.repetitions);
    if (!ns_stats.ok()) return ns_stats.status();
    r.ns_per_iter = ns_stats.value();

    if (const JsonValue* cycles = b.Find("cycles_per_iter");
        cycles != nullptr) {
      auto cycle_stats = StatsFromJson(*cycles, r.repetitions);
      if (!cycle_stats.ok()) return cycle_stats.status();
      r.cycles_per_iter = cycle_stats.value();
    }
    report.results.push_back(std::move(r));
  }
  return report;
}

Status WriteReport(const BenchReport& report, const std::string& path) {
  const std::string text = ReportToJson(report).Dump();
  if (path == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return Status::OK();
  }
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("cannot open \"" + path + "\" for write");
  }
  out << text;
  out.close();
  if (!out) return Status::Internal("short write to \"" + path + "\"");
  return Status::OK();
}

Result<BenchReport> ReadReport(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot read \"" + path + "\"");
  std::ostringstream buf;
  buf << in.rdbuf();
  auto doc = JsonValue::Parse(buf.str());
  if (!doc.ok()) return doc.status();
  return ReportFromJson(doc.value());
}

std::string DefaultReportFilename(const MachineInfo& machine) {
  std::string tag;
  for (char c : machine.hostname) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_';
    tag.push_back(ok ? c : '_');
  }
  if (tag.empty()) tag = "unknown";
  return "BENCH_" + tag + ".json";
}

}  // namespace vod::bench_kit
