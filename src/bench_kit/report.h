#ifndef VODB_BENCH_KIT_REPORT_H_
#define VODB_BENCH_KIT_REPORT_H_

#include <string>
#include <vector>

#include "bench_kit/harness.h"
#include "bench_kit/json.h"
#include "common/status.h"

namespace vod::bench_kit {

/// Where a BENCH_*.json was produced: enough context to judge whether two
/// reports are comparable (bench_compare.py warns on cross-machine diffs
/// and treats them as advisory).
struct MachineInfo {
  std::string hostname;
  std::string cpu_model;     ///< /proc/cpuinfo "model name"; "unknown" elsewhere.
  int core_count = 0;
  std::string governor;      ///< cpufreq scaling governor; "unknown" if unreadable.
};

/// Probes the current host.
MachineInfo ProbeMachine();

/// The CMAKE_BUILD_TYPE this library was compiled with ("unknown" if the
/// build system did not stamp one). Comparing reports across build types
/// is meaningless; the gate warns on mismatch.
std::string BuildType();

/// `git rev-parse HEAD` (+ "-dirty" when the tree has modifications);
/// "unknown" outside a git checkout. Overridable via $VODB_GIT_SHA for
/// hermetic CI runs.
std::string GitSha();

/// A full benchmark report: the schema of BENCH_*.json files.
struct BenchReport {
  std::string schema = "vodb-bench-v1";
  MachineInfo machine;
  std::string git_sha;
  std::string build_type;  ///< CMAKE_BUILD_TYPE the suite was compiled with.
  std::vector<BenchResult> results;
};

/// Report -> canonical JSON document (stable key order, round-trippable).
JsonValue ReportToJson(const BenchReport& report);

/// JSON document -> report; fails on missing or mistyped required fields
/// (schema, benchmarks, and per-benchmark name/iterations/stats).
Result<BenchReport> ReportFromJson(const JsonValue& doc);

/// Writes `report` to `path` ("-" = stdout).
Status WriteReport(const BenchReport& report, const std::string& path);

/// Reads and validates a report file.
Result<BenchReport> ReadReport(const std::string& path);

/// "BENCH_<sanitized-hostname>.json" — the per-host artifact name.
std::string DefaultReportFilename(const MachineInfo& machine);

}  // namespace vod::bench_kit

#endif  // VODB_BENCH_KIT_REPORT_H_
