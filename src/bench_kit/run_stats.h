#ifndef VODB_BENCH_KIT_RUN_STATS_H_
#define VODB_BENCH_KIT_RUN_STATS_H_

#include <cstddef>
#include <vector>

namespace vod::bench_kit {

/// Order statistics over a small stored sample (one value per benchmark
/// repetition). Unlike common/stats.h's streaming RunningStats, the whole
/// sample is kept so the median — the harness's headline statistic, robust
/// to one-sided scheduling noise — is exact rather than interpolated.
struct SampleStats {
  std::size_t count = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  double median = 0;
  double stddev = 0;  ///< Sample stddev (n-1 denominator); 0 below 2 samples.
  double cv = 0;      ///< Coefficient of variation: stddev / mean; 0 if
                      ///< mean == 0. The noise yardstick bench_compare.py
                      ///< scales its regression threshold by.
};

/// Computes the summary; an empty sample yields the all-zero struct.
/// The median of an even-sized sample is the mean of the two middle order
/// statistics.
SampleStats Summarize(std::vector<double> samples);

}  // namespace vod::bench_kit

#endif  // VODB_BENCH_KIT_RUN_STATS_H_
