#include "bench_kit/harness.h"

#include <algorithm>
#include <utility>

namespace vod::bench_kit {

Harness::Harness(HarnessConfig config) : config_(std::move(config)) {
  wall_ = config_.wall ? config_.wall : TimeFn(&WallNanos);
  cycles_ = config_.cycles ? config_.cycles
                           : std::function<std::uint64_t()>(&CycleNow);
}

void Harness::Register(std::string name, BenchFn fn, BenchConfig config) {
  benchmarks_.push_back({std::move(name), std::move(fn), config});
}

std::int64_t Harness::MeasureOnce(const BenchFn& fn, std::uint64_t iters,
                                  std::uint64_t* cycles_out) const {
  State state(iters);
  const std::uint64_t c0 = cycles_();
  const std::int64_t t0 = wall_();
  fn(state);
  const std::int64_t t1 = wall_();
  const std::uint64_t c1 = cycles_();
  if (cycles_out != nullptr) *cycles_out = c1 >= c0 ? c1 - c0 : 0;
  return std::max<std::int64_t>(t1 - t0, 0);
}

namespace {

void NoopBody(State& state) {
  for (auto _ : state) {
    static_cast<void>(_);
  }
}

}  // namespace

BenchResult Harness::Run(const Benchmark& bench) const {
  BenchResult result;
  result.name = bench.name;

  // Iteration auto-scaling: double until one repetition spans min_rep_ns.
  // The scaling runs double as warmup (touches caches, JITs the branch
  // predictor into steady state) before the untimed warmup repetitions.
  std::uint64_t iters = 1;
  while (true) {
    const std::int64_t ns = MeasureOnce(bench.fn, iters, nullptr);
    if (ns >= bench.config.min_rep_ns || iters >= bench.config.max_iters) {
      break;
    }
    iters *= 2;
  }
  iters = std::min(iters, bench.config.max_iters);
  result.iterations = iters;

  for (std::size_t i = 0; i < config_.warmup_reps; ++i) {
    static_cast<void>(MeasureOnce(bench.fn, iters, nullptr));
  }

  // Loop + timer overhead at this iteration count, subtracted from every
  // sample so a sub-nanosecond body is not dominated by harness cost.
  std::int64_t overhead_ns = 0;
  std::uint64_t overhead_cycles = 0;
  if (config_.subtract_loop_overhead) {
    overhead_ns = MeasureOnce(&NoopBody, iters, &overhead_cycles);
  }

  std::vector<double> ns_samples;
  std::vector<double> cycle_samples;
  ns_samples.reserve(config_.repetitions);
  cycle_samples.reserve(config_.repetitions);
  bool have_cycles = true;
  for (std::size_t rep = 0; rep < config_.repetitions; ++rep) {
    std::uint64_t cycles = 0;
    const std::int64_t ns = MeasureOnce(bench.fn, iters, &cycles);
    const auto net_ns =
        static_cast<double>(std::max<std::int64_t>(ns - overhead_ns, 0));
    ns_samples.push_back(net_ns / static_cast<double>(iters));
    if (cycles == 0) have_cycles = false;
    const std::uint64_t net_cycles =
        cycles >= overhead_cycles ? cycles - overhead_cycles : 0;
    cycle_samples.push_back(static_cast<double>(net_cycles) /
                            static_cast<double>(iters));
  }

  result.repetitions = config_.repetitions;
  result.ns_per_iter = Summarize(std::move(ns_samples));
  if (have_cycles) {
    result.cycles_per_iter = Summarize(std::move(cycle_samples));
  }
  return result;
}

Result<std::vector<BenchResult>> Harness::RunAll(
    const std::string& filter,
    const std::function<void(const BenchResult&)>& log) const {
  std::vector<BenchResult> results;
  for (const Benchmark& bench : benchmarks_) {
    if (!filter.empty() && bench.name.find(filter) == std::string::npos) {
      continue;
    }
    BenchResult r = Run(bench);
    if (log) log(r);
    results.push_back(std::move(r));
  }
  if (results.empty()) {
    return Status::NotFound("no registered benchmark matches filter \"" +
                            filter + "\"");
  }
  return results;
}

}  // namespace vod::bench_kit
