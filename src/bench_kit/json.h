#ifndef VODB_BENCH_KIT_JSON_H_
#define VODB_BENCH_KIT_JSON_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace vod::bench_kit {

/// A minimal JSON document model: just enough to write BENCH_*.json reports
/// and read them back (schema round-trip tests, baseline regeneration).
/// Numbers are doubles — benchmark statistics lose nothing — and object
/// keys are kept sorted (std::map) so emitted reports are canonical: two
/// runs producing equal stats serialize byte-identically.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue Bool(bool b);
  static JsonValue Number(double d);
  static JsonValue Str(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  // Accessors: preconditions are the matching kind.
  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }
  const std::vector<JsonValue>& Items() const { return array_; }
  const std::map<std::string, JsonValue>& Fields() const { return object_; }

  /// Object field lookup; returns nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  void Append(JsonValue v);                     ///< Array push_back.
  void Set(const std::string& key, JsonValue v);  ///< Object insert/replace.

  /// Serializes with 2-space indentation and '\n' line ends. Numbers that
  /// are integral within 2^53 print without a decimal point; others print
  /// with enough digits (%.17g) to round-trip exactly.
  std::string Dump() const;

  /// Strict parser for the subset Dump() emits plus standard JSON escapes
  /// and scientific notation. Rejects trailing garbage.
  static Result<JsonValue> Parse(const std::string& text);

 private:
  void DumpTo(std::string* out, int indent) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

}  // namespace vod::bench_kit

#endif  // VODB_BENCH_KIT_JSON_H_
