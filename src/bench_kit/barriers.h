#ifndef VODB_BENCH_KIT_BARRIERS_H_
#define VODB_BENCH_KIT_BARRIERS_H_

#include <type_traits>

namespace vod::bench_kit {

/// Optimization barriers for microbenchmark loops, after the technique used
/// by google/benchmark and Chandler Carruth's CppCon 2015 talk. They cost
/// (at most) one register spill — never a call or a fence — so they can sit
/// inside nanosecond-scale loops.
///
/// DoNotOptimize(x) makes the compiler assume `x` is read through an opaque
/// side channel: the computation producing `x` cannot be dead-code
/// eliminated or hoisted out of the timing loop.
///
/// ClobberMemory() makes the compiler assume all memory was read and
/// written: stores preceding it cannot be elided or sunk past it.

#if defined(__GNUC__) || defined(__clang__)

template <typename T>
inline void DoNotOptimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

template <typename T>
inline void DoNotOptimize(T& value) {
  if constexpr (std::is_trivially_copyable_v<T> && sizeof(T) <= sizeof(T*)) {
    // clang handles the "+r,m" multi-alternative; GCC rejects it outright
    // ("impossible constraint") and miscompiles "+m,r", so it gets the
    // plain register form — correct for any register-sized scalar.
#if defined(__clang__)
    asm volatile("" : "+r,m"(value) : : "memory");
#else
    asm volatile("" : "+r"(value) : : "memory");
#endif
  } else {
    asm volatile("" : "+m"(value) : : "memory");
  }
}

inline void ClobberMemory() { asm volatile("" : : : "memory"); }

#else  // Unknown compiler: fall back to a volatile sink (slower but sound).

namespace internal {
extern volatile const void* do_not_optimize_sink;
}  // namespace internal

template <typename T>
inline void DoNotOptimize(T const& value) {
  internal::do_not_optimize_sink = &value;
}

inline void ClobberMemory() {}

#endif

}  // namespace vod::bench_kit

#endif  // VODB_BENCH_KIT_BARRIERS_H_
