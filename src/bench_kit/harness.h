#ifndef VODB_BENCH_KIT_HARNESS_H_
#define VODB_BENCH_KIT_HARNESS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bench_kit/run_stats.h"
#include "bench_kit/timer.h"
#include "common/status.h"

namespace vod::bench_kit {

/// Iteration driver handed to every benchmark body. The canonical shape is
///
///   void BM_Foo(State& state) {
///     ... setup (untimed only if cheap relative to min_rep_ns) ...
///     for (auto _ : state) { DoNotOptimize(HotPath()); }
///   }
///
/// The range-for compiles to a decrement-and-test per iteration; the
/// harness times the whole loop externally and divides by the iteration
/// count, so per-iteration overhead is a fraction of a nanosecond (the
/// registered `noop` benchmark pins this: its median must stay < 100 ns —
/// in practice < 1 ns).
class State {
 public:
  explicit State(std::uint64_t iterations) : iterations_(iterations) {}

  struct Iterator {
    std::uint64_t left;
    bool operator!=(const Iterator& other) const { return left != other.left; }
    void operator++() { --left; }
    int operator*() const { return 0; }
  };
  Iterator begin() const { return Iterator{iterations_}; }
  Iterator end() const { return Iterator{0}; }

  std::uint64_t iterations() const { return iterations_; }

 private:
  std::uint64_t iterations_;
};

using BenchFn = std::function<void(State&)>;

/// Per-benchmark knobs (defaults fit sub-microsecond bodies).
struct BenchConfig {
  /// Target wall time of one timed repetition; iterations double until a
  /// repetition takes at least this long. Longer = less quantization noise,
  /// more runtime.
  std::int64_t min_rep_ns = 20'000'000;
  /// Iteration-doubling cap; 1 pins exactly one iteration per repetition
  /// (end-to-end benchmarks whose single iteration is already > min_rep_ns).
  std::uint64_t max_iters = 1ULL << 40;
};

struct Benchmark {
  std::string name;
  BenchFn fn;
  BenchConfig config;
};

/// One benchmark's measured result: nanoseconds and cycles per iteration,
/// summarized over `repetitions` timed repetitions.
struct BenchResult {
  std::string name;
  std::uint64_t iterations = 0;  ///< Per repetition.
  std::size_t repetitions = 0;
  SampleStats ns_per_iter;
  SampleStats cycles_per_iter;  ///< All-zero when the counter is unavailable.
};

/// Harness-wide knobs (CLI-facing; see RunnerOptions).
struct HarnessConfig {
  std::size_t repetitions = 9;
  std::size_t warmup_reps = 2;  ///< Untimed steady-state repetitions.
  /// Measure an empty State loop at the same iteration count and subtract
  /// it from every sample (clamped at zero). OFF leaves raw loop+timer cost
  /// in — the fake-clock tests use that for exact arithmetic.
  bool subtract_loop_overhead = true;
  /// Clock injection point for tests; nullptr = WallNanos (production).
  TimeFn wall = nullptr;
  /// Cycle-counter injection point; nullptr = CycleNow. Injecting a fn that
  /// always returns 0 disables cycle stats.
  std::function<std::uint64_t()> cycles = nullptr;
};

/// Registry + runner. Not thread-safe: benchmarks run one at a time, in
/// registration order (interleaving would share caches and skew results).
class Harness {
 public:
  explicit Harness(HarnessConfig config = {});

  void Register(std::string name, BenchFn fn, BenchConfig config = {});

  const std::vector<Benchmark>& benchmarks() const { return benchmarks_; }

  /// Runs one benchmark: warmup, iteration auto-scaling, overhead
  /// calibration, `repetitions` timed repetitions.
  BenchResult Run(const Benchmark& bench) const;

  /// Runs every registered benchmark whose name contains `filter`
  /// (empty = all), in registration order, reporting progress to `log`
  /// (nullptr silences). Fails when the filter matches nothing.
  Result<std::vector<BenchResult>> RunAll(
      const std::string& filter,
      const std::function<void(const BenchResult&)>& log) const;

 private:
  /// Times `fn` over `iters` iterations; returns wall ns (>= 0 clamped).
  std::int64_t MeasureOnce(const BenchFn& fn, std::uint64_t iters,
                           std::uint64_t* cycles_out) const;

  HarnessConfig config_;
  TimeFn wall_;
  std::function<std::uint64_t()> cycles_;
  std::vector<Benchmark> benchmarks_;
};

}  // namespace vod::bench_kit

#endif  // VODB_BENCH_KIT_HARNESS_H_
