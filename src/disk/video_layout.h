#ifndef VODB_DISK_VIDEO_LAYOUT_H_
#define VODB_DISK_VIDEO_LAYOUT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "disk/disk_profile.h"

namespace vod::disk {

/// Identifier of a video within one disk's layout.
using VideoId = int;

/// Describes one stored video.
struct VideoInfo {
  VideoId id = -1;
  std::string title;
  Bits size;        ///< Total encoded size.
  Bits start_offset;  ///< First bit's position on the disk.
};

/// Placement of videos on a single disk.
///
/// Following the paper (Sec. 2.1, footnote 3), each video is stored
/// contiguously — Chang & Garcia-Molina's *chunk* mechanism guarantees that
/// any one buffer's worth of data is readable from one contiguous region, so
/// a single disk latency suffices per buffer service. We model that directly
/// as contiguous placement; the layout maps (video, offset) to a cylinder so
/// the simulator can compute true seek distances.
class VideoLayout {
 public:
  explicit VideoLayout(const DiskProfile& profile);

  /// Places a video of `size` bits at the next free position.
  /// Fails with CapacityExceeded when the disk is full.
  Result<VideoId> AddVideo(std::string title, Bits size);

  /// Convenience: fills the disk with `count` equal-length videos (or fewer
  /// if capacity runs out first); returns the ids created.
  std::vector<VideoId> FillWithVideos(int count, Bits each_size);

  /// The cylinder holding byte-offset `offset` of `video`.
  Result<double> CylinderOf(VideoId video, Bits offset) const;

  Result<VideoInfo> Get(VideoId video) const;
  int video_count() const { return static_cast<int>(videos_.size()); }
  Bits used() const { return next_offset_; }
  Bits capacity() const { return capacity_; }

 private:
  Bits capacity_;
  Bits bits_per_cylinder_;
  double cylinders_;
  Bits next_offset_;
  std::vector<VideoInfo> videos_;
};

}  // namespace vod::disk

#endif  // VODB_DISK_VIDEO_LAYOUT_H_
