#ifndef VODB_DISK_SIMULATED_DISK_H_
#define VODB_DISK_SIMULATED_DISK_H_

#include "common/status.h"
#include "common/units.h"
#include "disk/disk_profile.h"

namespace vod::disk {

/// Breakdown of one disk service, returned for metrics.
struct ServiceTiming {
  Seconds seek;
  Seconds rotation;
  Seconds transfer;
  Seconds total() const { return seek + rotation + transfer; }
};

/// A single mechanical disk: tracks the arm position and computes the time
/// to service a read. The disk owns no randomness — the caller supplies the
/// rotational phase (a fraction of a revolution in [0,1]) so simulations can
/// be seeded deterministically and analyses can force the worst case (1.0).
class SimulatedDisk {
 public:
  explicit SimulatedDisk(const DiskProfile& profile);

  /// Reads `bits` starting at `cylinder`. Advances the head to the cylinder
  /// where the read ends (the read may span cylinders). `rotation_fraction`
  /// in [0,1] scales the maximum rotational latency θ.
  Result<ServiceTiming> Read(double cylinder, Bits bits,
                             double rotation_fraction);

  /// A read attempt that fails after the mechanical positioning phase
  /// (transient EIO from fault injection): the arm seeks and the platter
  /// rotates, but no data transfers and the head parks at the target
  /// cylinder. Costs seek + rotation; counted in failed_read_count(), not
  /// read_count().
  Result<ServiceTiming> FailedRead(double cylinder, double rotation_fraction);

  /// Worst-case duration of a read of `bits` whose seek spans at most
  /// `span_cylinders`: γ(span) + θ + bits/TR. Used for just-in-time
  /// scheduling lookahead.
  Seconds WorstCaseReadTime(double span_cylinders, Bits bits) const;

  double head_cylinder() const { return head_; }
  const DiskProfile& profile() const { return profile_; }

  /// Cumulative counters for utilization accounting.
  Seconds total_seek_time() const { return total_seek_; }
  Seconds total_rotation_time() const { return total_rotation_; }
  Seconds total_transfer_time() const { return total_transfer_; }
  long read_count() const { return reads_; }
  long failed_read_count() const { return failed_reads_; }

 private:
  DiskProfile profile_;
  double head_ = 0.0;
  Seconds total_seek_;
  Seconds total_rotation_;
  Seconds total_transfer_;
  long reads_ = 0;
  long failed_reads_ = 0;
};

}  // namespace vod::disk

#endif  // VODB_DISK_SIMULATED_DISK_H_
