#ifndef VODB_DISK_CHUNKED_STORE_H_
#define VODB_DISK_CHUNKED_STORE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "disk/disk_profile.h"
#include "disk/video_layout.h"

namespace vod::disk {

/// Chang & Garcia-Molina's *chunk* storage (footnote 3 of the paper): video
/// data is laid out in physically contiguous chunks at least twice the
/// maximum buffer size, with the tail of each chunk replicated at the head
/// of the next, so that ANY read of up to one maximum buffer comes from a
/// single chunk — hence a single disk latency per buffer service even
/// though whole videos cannot be stored contiguously.
///
/// Layout math: with chunk size C and maximum buffer B (C >= 2·B), each
/// chunk stores the logical range [i·(C−B), i·(C−B) + C): consecutive
/// chunks overlap by B (the replicated region), the logical stride is C−B,
/// and the physical space overhead factor is C / (C−B) <= 2.
class ChunkedVideoStore {
 public:
  /// `max_buffer` is the largest read the server will issue (the static
  /// scheme's BS(N)); `chunk_size` defaults to 2× that.
  static Result<ChunkedVideoStore> Create(const DiskProfile& profile,
                                          Bits max_buffer,
                                          Bits chunk_size = Bits(0));

  /// Adds a video; returns its id. Physical space consumed is
  /// ceil(size/stride) chunks.
  Result<VideoId> AddVideo(std::string title, Bits size);

  /// The cylinder at which a read of `length` bits starting at logical
  /// `offset` of `video` begins. Fails unless the read fits one chunk
  /// (length <= max_buffer) — the guarantee the chunk layout provides.
  Result<double> ReadLocation(VideoId video, Bits offset, Bits length) const;

  /// True if [offset, offset+length) lies within a single chunk.
  bool SingleChunk(Bits offset, Bits length) const;

  Bits chunk_size() const { return chunk_size_; }
  Bits stride() const { return chunk_size_ - max_buffer_; }
  /// Physical bits consumed per logical bit stored (replication overhead).
  double SpaceOverhead() const {
    return chunk_size_ / (chunk_size_ - max_buffer_);
  }
  Bits physical_used() const { return physical_used_; }
  int video_count() const { return static_cast<int>(videos_.size()); }

 private:
  struct StoredVideo {
    std::string title;
    Bits logical_size;
    Bits physical_start;  ///< First chunk's physical position.
    long chunk_count = 0;
  };

  ChunkedVideoStore(const DiskProfile& profile, Bits max_buffer,
                    Bits chunk_size);

  Bits capacity_;
  Bits bits_per_cylinder_;
  double cylinders_;
  Bits max_buffer_;
  Bits chunk_size_;
  Bits physical_used_;
  std::vector<StoredVideo> videos_;
};

}  // namespace vod::disk

#endif  // VODB_DISK_CHUNKED_STORE_H_
