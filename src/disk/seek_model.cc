#include "disk/seek_model.h"

#include <cmath>

#include "common/check.h"

namespace vod::disk {

SeekModel::SeekModel(Seconds mu1, Seconds nu1, Seconds mu2, Seconds nu2,
                     double boundary_cylinders)
    : mu1_(mu1), nu1_(nu1), mu2_(mu2), nu2_(nu2),
      boundary_(boundary_cylinders) {}

Seconds SeekModel::SeekTime(double cylinders) const {
  VOD_DCHECK(cylinders >= 0.0);
  if (cylinders <= 0.0) return Seconds(0);
  if (cylinders < boundary_) return mu1_ + nu1_ * std::sqrt(cylinders);
  return mu2_ + nu2_ * cylinders;
}

Status SeekModel::Validate() const {
  if (mu1_ < Seconds(0) || nu1_ < Seconds(0) || mu2_ < Seconds(0) ||
      nu2_ < Seconds(0)) {
    return Status::InvalidArgument("seek coefficients must be non-negative");
  }
  if (boundary_ <= 0.0) {
    return Status::InvalidArgument("seek boundary must be positive");
  }
  // The curve need not be exactly continuous (the paper's published
  // constants are slightly discontinuous at x=400), but it must not jump
  // downward across the boundary by more than 5%: that would make longer
  // seeks cheaper than shorter ones, breaking the concavity argument the
  // Sweep worst case relies on.
  const Seconds left = mu1_ + nu1_ * std::sqrt(boundary_);
  const Seconds right = mu2_ + nu2_ * boundary_;
  if (right < 0.95 * left) {
    return Status::InvalidArgument(
        "seek curve drops across the piecewise boundary");
  }
  return Status::OK();
}

}  // namespace vod::disk
