#include "disk/simulated_disk.h"

#include <algorithm>
#include <cmath>

#include "obs/profile.h"

namespace vod::disk {

SimulatedDisk::SimulatedDisk(const DiskProfile& profile) : profile_(profile) {}

Result<ServiceTiming> SimulatedDisk::Read(double cylinder, Bits bits,
                                          double rotation_fraction) {
  VODB_PROF_SCOPE("disk.service");
  if (bits < Bits(0)) return Status::InvalidArgument("negative read size");
  if (cylinder < 0 || cylinder >= static_cast<double>(profile_.cylinders)) {
    return Status::OutOfRange("cylinder outside disk");
  }
  if (rotation_fraction < 0.0 || rotation_fraction > 1.0) {
    return Status::InvalidArgument("rotation fraction outside [0,1]");
  }
  ServiceTiming t;
  t.seek = profile_.seek.SeekTime(std::abs(cylinder - head_));
  t.rotation = rotation_fraction * profile_.max_rotational_latency;
  t.transfer = profile_.TransferTime(bits);

  const double end_cylinder = std::min(
      cylinder + bits / profile_.BitsPerCylinder(),
      static_cast<double>(profile_.cylinders) - 1.0);
  head_ = end_cylinder;

  total_seek_ += t.seek;
  total_rotation_ += t.rotation;
  total_transfer_ += t.transfer;
  ++reads_;
  return t;
}

Result<ServiceTiming> SimulatedDisk::FailedRead(double cylinder,
                                                double rotation_fraction) {
  if (cylinder < 0 || cylinder >= static_cast<double>(profile_.cylinders)) {
    return Status::OutOfRange("cylinder outside disk");
  }
  if (rotation_fraction < 0.0 || rotation_fraction > 1.0) {
    return Status::InvalidArgument("rotation fraction outside [0,1]");
  }
  ServiceTiming t;
  t.seek = profile_.seek.SeekTime(std::abs(cylinder - head_));
  t.rotation = rotation_fraction * profile_.max_rotational_latency;
  head_ = cylinder;
  total_seek_ += t.seek;
  total_rotation_ += t.rotation;
  ++failed_reads_;
  return t;
}

Seconds SimulatedDisk::WorstCaseReadTime(double span_cylinders,
                                         Bits bits) const {
  return profile_.WorstLatency(span_cylinders) + profile_.TransferTime(bits);
}

}  // namespace vod::disk
