#ifndef VODB_DISK_DISK_PROFILE_H_
#define VODB_DISK_DISK_PROFILE_H_

#include <string>

#include "common/status.h"
#include "common/units.h"
#include "disk/seek_model.h"

namespace vod::disk {

/// Static description of a disk drive: the parameters the paper's analysis
/// depends on (Table 3) plus geometry needed by the simulator.
struct DiskProfile {
  std::string name;
  Bits capacity;
  BitsPerSecond transfer_rate;      ///< TR (the *minimum* sustained rate).
  double rpm = 0;
  Seconds max_rotational_latency;   ///< θ = one full revolution.
  long cylinders = 0;                   ///< Cyln.
  SeekModel seek{Seconds(0), Seconds(0), Seconds(0), Seconds(0), 1};

  /// γ(Cyln): the worst read seek, full-stroke.
  Seconds MaxSeekTime() const;

  /// Worst per-buffer disk latency when consecutive services are at most
  /// `span_cylinders` apart: γ(span) + θ. The three scheduling methods
  /// instantiate span = Cyln (Round-Robin), Cyln/n (Sweep), Cyln/g (GSS).
  Seconds WorstLatency(double span_cylinders) const;

  /// Time to transfer `bits` at the sustained rate TR.
  Seconds TransferTime(Bits bits) const;

  /// Bits stored per cylinder (uniform-density approximation used to map
  /// byte offsets to cylinders).
  Bits BitsPerCylinder() const;

  Status Validate() const;
};

/// The paper's evaluation disk (Table 3): Seagate Barracuda 9LP.
/// Cyln = 6000 is derived from the seek model: γ(Cyln) = µ2 + ν2·Cyln
/// must equal the published 13.4 ms max read seek.
DiskProfile SeagateBarracuda9LP();

/// A smaller synthetic profile (N = 19) used by tests to exercise the
/// formulas away from the paper's constants.
DiskProfile SmallTestDisk();

}  // namespace vod::disk

#endif  // VODB_DISK_DISK_PROFILE_H_
