#ifndef VODB_DISK_SEEK_MODEL_H_
#define VODB_DISK_SEEK_MODEL_H_

#include "common/status.h"
#include "common/units.h"

namespace vod::disk {

/// Two-piece disk seek-time curve from Ruemmler & Wilkes [12], as used by
/// the paper (Eq. 7):
///
///   γ(x) = µ1 + ν1·√x   for 0 < x < boundary
///   γ(x) = µ2 + ν2·x    for x ≥ boundary
///   γ(0) = 0            (no head movement, no seek)
///
/// µ1 is the arm's fixed overhead (speedup/slowdown/settle), µ1+ν1 the
/// minimum seek time; µ2/ν2 are chosen so the curve is (approximately)
/// continuous at the boundary. `x` may be fractional: the analysis evaluates
/// γ(Cyln/n) for the Sweep method's per-buffer worst case.
class SeekModel {
 public:
  /// All times in seconds; boundary in cylinders (400 for the paper's model).
  SeekModel(Seconds mu1, Seconds nu1, Seconds mu2, Seconds nu2,
            double boundary_cylinders);

  /// γ(x): seek time over a (possibly fractional) distance of x cylinders.
  /// Negative x is invalid; callers pass |from - to|.
  Seconds SeekTime(double cylinders) const;

  /// Verifies the model is physically sensible (non-negative coefficients,
  /// monotone non-decreasing across the boundary).
  Status Validate() const;

  Seconds mu1() const { return mu1_; }
  Seconds nu1() const { return nu1_; }
  Seconds mu2() const { return mu2_; }
  Seconds nu2() const { return nu2_; }
  double boundary_cylinders() const { return boundary_; }

 private:
  Seconds mu1_;
  Seconds nu1_;
  Seconds mu2_;
  Seconds nu2_;
  double boundary_;
};

}  // namespace vod::disk

#endif  // VODB_DISK_SEEK_MODEL_H_
