#include "disk/chunked_store.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace vod::disk {

ChunkedVideoStore::ChunkedVideoStore(const DiskProfile& profile,
                                     Bits max_buffer, Bits chunk_size)
    : capacity_(profile.capacity),
      bits_per_cylinder_(profile.BitsPerCylinder()),
      cylinders_(static_cast<double>(profile.cylinders)),
      max_buffer_(max_buffer), chunk_size_(chunk_size) {}

Result<ChunkedVideoStore> ChunkedVideoStore::Create(const DiskProfile& profile,
                                                    Bits max_buffer,
                                                    Bits chunk_size) {
  VOD_RETURN_IF_ERROR(profile.Validate());
  if (max_buffer <= Bits(0)) {
    return Status::InvalidArgument("max buffer must be positive");
  }
  if (chunk_size == Bits(0)) chunk_size = 2.0 * max_buffer;
  if (chunk_size < 2 * max_buffer) {
    // The paper's requirement: a chunk is "at least twice larger than the
    // maximum buffer size" — anything smaller cannot guarantee that a
    // buffer-sized read avoids a chunk boundary.
    return Status::InvalidArgument("chunk must be >= 2x the maximum buffer");
  }
  if (chunk_size > profile.capacity) {
    return Status::InvalidArgument("chunk larger than the disk");
  }
  return ChunkedVideoStore(profile, max_buffer, chunk_size);
}

Result<VideoId> ChunkedVideoStore::AddVideo(std::string title, Bits size) {
  if (size <= Bits(0)) return Status::InvalidArgument("video size must be positive");
  const Bits stride_bits = stride();
  const long chunks =
      static_cast<long>(std::ceil(size / stride_bits));
  const Bits physical = static_cast<double>(chunks) * chunk_size_;
  if (physical_used_ + physical > capacity_) {
    return Status::CapacityExceeded("chunked store full for '" + title + "'");
  }
  StoredVideo v;
  v.title = std::move(title);
  v.logical_size = size;
  v.physical_start = physical_used_;
  v.chunk_count = chunks;
  physical_used_ += physical;
  videos_.push_back(std::move(v));
  return static_cast<VideoId>(videos_.size() - 1);
}

bool ChunkedVideoStore::SingleChunk(Bits offset, Bits length) const {
  if (length > max_buffer_) return false;
  const Bits stride_bits = stride();
  const double chunk_idx = std::floor(offset / stride_bits);
  // The chunk holds [idx·stride, idx·stride + chunk): the read end must
  // stay inside.
  return offset + length <= chunk_idx * stride_bits + chunk_size_ + Bits(1e-6);
}

Result<double> ChunkedVideoStore::ReadLocation(VideoId video, Bits offset,
                                               Bits length) const {
  if (video < 0 || video >= static_cast<VideoId>(videos_.size())) {
    return Status::NotFound("video id " + std::to_string(video));
  }
  const StoredVideo& v = videos_[static_cast<std::size_t>(video)];
  if (offset < Bits(0) || offset + length > v.logical_size + Bits(1e-6)) {
    return Status::OutOfRange("read outside video");
  }
  if (length > max_buffer_) {
    return Status::InvalidArgument(
        "read exceeds the maximum buffer the layout was built for");
  }
  const Bits stride_bits = stride();
  const double chunk_idx = std::floor(offset / stride_bits);
  if (chunk_idx >= static_cast<double>(v.chunk_count)) {
    return Status::OutOfRange("offset beyond the video's last chunk");
  }
  const Bits in_chunk = offset - chunk_idx * stride_bits;
  const Bits physical =
      v.physical_start + chunk_idx * chunk_size_ + in_chunk;
  return std::min(physical / bits_per_cylinder_, cylinders_ - 1.0);
}

}  // namespace vod::disk
