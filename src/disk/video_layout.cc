#include "disk/video_layout.h"

#include <algorithm>
#include <utility>

namespace vod::disk {

VideoLayout::VideoLayout(const DiskProfile& profile)
    : capacity_(profile.capacity),
      bits_per_cylinder_(profile.BitsPerCylinder()),
      cylinders_(static_cast<double>(profile.cylinders)) {}

Result<VideoId> VideoLayout::AddVideo(std::string title, Bits size) {
  if (size <= Bits(0)) {
    return Status::InvalidArgument("video size must be positive");
  }
  if (next_offset_ + size > capacity_) {
    return Status::CapacityExceeded("disk full: cannot place video '" +
                                    title + "'");
  }
  VideoInfo info;
  info.id = static_cast<VideoId>(videos_.size());
  info.title = std::move(title);
  info.size = size;
  info.start_offset = next_offset_;
  next_offset_ += size;
  videos_.push_back(info);
  return info.id;
}

std::vector<VideoId> VideoLayout::FillWithVideos(int count, Bits each_size) {
  std::vector<VideoId> ids;
  for (int i = 0; i < count; ++i) {
    Result<VideoId> r =
        AddVideo("video-" + std::to_string(videos_.size()), each_size);
    if (!r.ok()) break;
    ids.push_back(r.value());
  }
  return ids;
}

Result<double> VideoLayout::CylinderOf(VideoId video, Bits offset) const {
  if (video < 0 || video >= static_cast<VideoId>(videos_.size())) {
    return Status::NotFound("video id " + std::to_string(video));
  }
  const VideoInfo& info = videos_[static_cast<std::size_t>(video)];
  if (offset < Bits(0) || offset > info.size) {
    return Status::OutOfRange("offset outside video");
  }
  const double cyl = (info.start_offset + offset) / bits_per_cylinder_;
  return std::min(cyl, cylinders_ - 1.0);
}

Result<VideoInfo> VideoLayout::Get(VideoId video) const {
  if (video < 0 || video >= static_cast<VideoId>(videos_.size())) {
    return Status::NotFound("video id " + std::to_string(video));
  }
  return videos_[static_cast<std::size_t>(video)];
}

}  // namespace vod::disk
