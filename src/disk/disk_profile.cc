#include "disk/disk_profile.h"

#include <algorithm>

#include "common/check.h"

namespace vod::disk {

Seconds DiskProfile::MaxSeekTime() const {
  return seek.SeekTime(static_cast<double>(cylinders));
}

Seconds DiskProfile::WorstLatency(double span_cylinders) const {
  VOD_DCHECK(span_cylinders >= 0.0);
  const double span =
      std::min(span_cylinders, static_cast<double>(cylinders));
  return seek.SeekTime(span) + max_rotational_latency;
}

Seconds DiskProfile::TransferTime(Bits bits) const {
  VOD_DCHECK(bits >= 0.0);
  return bits / transfer_rate;
}

Bits DiskProfile::BitsPerCylinder() const {
  return capacity / static_cast<double>(cylinders);
}

Status DiskProfile::Validate() const {
  if (capacity <= Bits(0)) {
    return Status::InvalidArgument("capacity must be > 0");
  }
  if (transfer_rate <= BitsPerSecond(0)) {
    return Status::InvalidArgument("transfer rate must be > 0");
  }
  if (max_rotational_latency < Seconds(0)) {
    return Status::InvalidArgument("rotational latency must be >= 0");
  }
  if (cylinders <= 0) return Status::InvalidArgument("cylinders must be > 0");
  return seek.Validate();
}

DiskProfile SeagateBarracuda9LP() {
  DiskProfile p;
  p.name = "Seagate Barracuda 9LP";
  p.capacity = Gibibytes(9.19);
  p.transfer_rate = Mbps(120);
  p.rpm = 7200;
  p.max_rotational_latency = Milliseconds(8.33);
  // Cyln chosen so that the long-seek branch hits the published 13.4 ms max
  // read seek: 5 ms + 0.0014 ms/cyl * 6000 cyl = 13.4 ms.
  p.cylinders = 6000;
  p.seek = SeekModel(Milliseconds(0.54), Milliseconds(0.26), Milliseconds(5.0),
                     Milliseconds(0.0014), 400.0);
  return p;
}

DiskProfile SmallTestDisk() {
  DiskProfile p;
  p.name = "SmallTestDisk";
  p.capacity = Gibibytes(1.0);
  p.transfer_rate = Mbps(30);  // With CR = 1.5 Mbps: N = 19.
  p.rpm = 5400;
  p.max_rotational_latency = Milliseconds(11.1);
  p.cylinders = 2000;
  p.seek = SeekModel(Milliseconds(1.0), Milliseconds(0.3), Milliseconds(5.2),
                     Milliseconds(0.0035), 300.0);
  return p;
}

}  // namespace vod::disk
