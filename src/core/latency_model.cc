#include "core/latency_model.h"

namespace vod::core {

Seconds WorstInitialLatencyRoundRobin(const AllocParams& params, Bits bs) {
  return 2.0 * params.dl + bs / params.tr;
}

Seconds WorstInitialLatencySweep(const AllocParams& params, Bits bs, int n) {
  const Seconds slot = params.dl + bs / params.tr;
  return 2.0 * static_cast<double>(n) * slot + slot;
}

Seconds WorstInitialLatencyGss(const AllocParams& params, Bits bs, int g) {
  return 2.0 * static_cast<double>(g) * (params.dl + bs / params.tr);
}

Result<Seconds> WorstInitialLatency(const AllocParams& params,
                                    ScheduleMethod method, Bits bs,
                                    int n_or_g) {
  VOD_RETURN_IF_ERROR(params.Validate());
  if (bs < Bits(0)) return Status::InvalidArgument("buffer size must be >= 0");
  switch (method) {
    case ScheduleMethod::kRoundRobin:
      return WorstInitialLatencyRoundRobin(params, bs);
    case ScheduleMethod::kSweep:
      if (n_or_g < 1) return Status::InvalidArgument("n must be >= 1");
      return WorstInitialLatencySweep(params, bs, n_or_g);
    case ScheduleMethod::kGss:
      if (n_or_g < 1) return Status::InvalidArgument("g must be >= 1");
      return WorstInitialLatencyGss(params, bs, n_or_g);
  }
  return Status::InvalidArgument("unknown scheduling method");
}

}  // namespace vod::core
