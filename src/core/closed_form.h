#ifndef VODB_CORE_CLOSED_FORM_H_
#define VODB_CORE_CLOSED_FORM_H_

#include "common/status.h"
#include "common/units.h"
#include "core/params.h"

namespace vod::core {

/// Theorem 1's expansion-step count:
///
///   e = ⌈ ( α/2 − k + √( k² + α·(2·(N−n) − k) + α²/4 ) ) / α ⌉
///
/// the smallest i such that n + i·k + (i−1)·i·α/2 >= N. Defined for
/// 1 <= n < N, k >= 0.
Result<int> ExpansionSteps(const AllocParams& params, int n, int k);

/// Theorem 1 (Eq. 6): the minimum buffer size the dynamic allocation scheme
/// gives a request when n requests are in service and k additional requests
/// are estimated.
///
/// For n = N this is the fully-loaded size of Eq. (11) — identical to the
/// static scheme's BS(N). For n < N it is the closed-form solution of the
/// recurrence (Eq. 10); see core/recurrence.h for the oracle it is verified
/// against.
Result<Bits> DynamicBufferSize(const AllocParams& params, int n, int k);

/// The usage period of a buffer of size BS: T = BS / CR (Eq. 8 with
/// equality — minimal buffers hold exactly one usage period of data).
inline Seconds UsagePeriod(const AllocParams& params, Bits bs) {
  return bs / params.cr;
}

}  // namespace vod::core

#endif  // VODB_CORE_CLOSED_FORM_H_
