#ifndef VODB_CORE_PARAMS_H_
#define VODB_CORE_PARAMS_H_

#include "common/status.h"
#include "common/units.h"
#include "disk/disk_profile.h"

namespace vod::core {

/// The three buffer scheduling methods the paper evaluates (Sec. 2.2).
/// The names follow the improved variants actually applied to the dynamic
/// scheme: BubbleUp for Round-Robin, Sweep*, and the extended GSS*.
enum class ScheduleMethod {
  kRoundRobin,  ///< BubbleUp over the Fixed-Stretch scheme [1].
  kSweep,       ///< Sweep* [5].
  kGss,         ///< Extended GSS* (groups via BubbleUp, in-group Sweep*) [8].
};

std::string_view ScheduleMethodName(ScheduleMethod m);

/// The parameters every buffer-size / latency / memory formula depends on.
/// This is Table 1 in struct form, specialized to one scheduling method via
/// the worst per-buffer disk latency DL.
struct AllocParams {
  BitsPerSecond tr;  ///< TR: disk transfer rate.
  BitsPerSecond cr;  ///< CR: per-request consumption rate.
  Seconds dl;        ///< DL: worst per-buffer disk latency for the method.
  int n_max = 0;         ///< N: max concurrent requests (Eq. 1).
  int alpha = 1;         ///< α: estimation headroom (Assumption 2).

  Status Validate() const;
};

/// N from Eq. (1): the largest integer strictly below TR/CR.
int MaxConcurrentRequests(BitsPerSecond tr, BitsPerSecond cr);

/// Worst per-buffer disk latency DL for `method` (Sec. 2.2):
///   Round-Robin: γ(Cyln) + θ
///   Sweep:       γ(Cyln/n) + θ   — depends on the in-service count n
///   GSS:         γ(Cyln/g) + θ   — depends on the group size g
/// `n_or_g` is ignored for Round-Robin. For the *static* scheme and for
/// sizing worst cases, pass n = N (resp. the configured g).
Seconds WorstDiskLatency(const disk::DiskProfile& profile,
                         ScheduleMethod method, int n_or_g);

/// Builds AllocParams for `method` from a disk profile and consumption rate.
/// `n_or_g`: Sweep's n (use N for the conservative fully-loaded latency the
/// schemes size against) or GSS's group size g.
Result<AllocParams> MakeAllocParams(const disk::DiskProfile& profile,
                                    BitsPerSecond cr, ScheduleMethod method,
                                    int n_or_g, int alpha);

}  // namespace vod::core

#endif  // VODB_CORE_PARAMS_H_
