#ifndef VODB_CORE_LATENCY_MODEL_H_
#define VODB_CORE_LATENCY_MODEL_H_

#include "common/status.h"
#include "common/units.h"
#include "core/params.h"

namespace vod::core {

/// Worst-case initial latency models, Eqs. (2)–(4). Initial latency is the
/// time between a request's arrival and the arrival of its first video data
/// in server memory. Each formula is linear in the buffer size BS, which is
/// why minimizing BS (the paper's goal) minimizes latency.

/// Eq. (2) — BubbleUp Round-Robin: wait out the service in progress
/// (DL + BS/TR), then be serviced (another DL + transfer is folded into the
/// 2·DL structure of the paper's equation):
///   IL = 2·DL + BS/TR.
Seconds WorstInitialLatencyRoundRobin(const AllocParams& params, Bits bs);

/// Eq. (3) — Sweep*: a request arriving at the start of a period may be
/// serviced at the end of the *next* period:
///   IL = 2·n·(DL + BS/TR) + DL + BS/TR.
Seconds WorstInitialLatencySweep(const AllocParams& params, Bits bs, int n);

/// Eq. (4) — extended GSS*: wait the current group, then the next group
/// containing the new request:
///   IL = 2·g·(DL + BS/TR).
Seconds WorstInitialLatencyGss(const AllocParams& params, Bits bs, int g);

/// Dispatches to the per-method formula. `n_or_g` is the in-service count n
/// for Sweep*, the group size g for GSS*, and ignored for Round-Robin.
Result<Seconds> WorstInitialLatency(const AllocParams& params,
                                    ScheduleMethod method, Bits bs,
                                    int n_or_g);

}  // namespace vod::core

#endif  // VODB_CORE_LATENCY_MODEL_H_
