#include "core/memory_model.h"

#include <algorithm>
#include <string>

#include "common/check.h"
#include "core/closed_form.h"
#include "core/static_alloc.h"

namespace vod::core {

Bits MemoryRequirementRoundRobin(const AllocParams& params, Bits bs, int n,
                                 int slots) {
  VOD_DCHECK(n >= 1 && slots >= n);
  const double nd = static_cast<double>(n);
  return nd * bs - bs * nd * (nd - 1.0) / (2.0 * static_cast<double>(slots)) +
         nd * params.cr * params.dl;
}

Bits MemoryRequirementSweep(const AllocParams& params, Bits bs, int n,
                            int slots) {
  VOD_DCHECK(n >= 1 && slots >= n);
  if (n == 1) {
    return bs + (bs / params.tr + params.dl) * params.cr;
  }
  const double nd = static_cast<double>(n);
  const Seconds t = bs / params.cr;  // Full cycle over `slots` slots.
  return (nd - 1.0) * bs +
         (nd * t / static_cast<double>(slots) - (nd - 2.0) * bs / params.tr) *
             params.cr * nd;
}

Bits MemoryRequirementGss(const AllocParams& params, Bits bs, int n,
                          int slots, int g) {
  VOD_DCHECK(n >= 1 && slots >= n && g >= 1);
  if (g >= n) return MemoryRequirementSweep(params, bs, n, slots);
  if (g == 1) return MemoryRequirementRoundRobin(params, bs, n, slots);

  const double nd = static_cast<double>(n);
  const double gd = static_cast<double>(g);
  const double sd = static_cast<double>(slots);
  const Seconds t = bs / params.cr;
  const int big_g = (n + g - 1) / g;              // G = ⌈n/g⌉.
  const double big_gd = static_cast<double>(big_g);
  const int g_rem = n - (n / g) * g;              // g' = n − ⌊n/g⌋·g.

  if (g_rem == 0) {
    // Theorem 4, case G = n/g (every group full).
    const Bits per_group =
        gd * bs - (nd * t / sd + (gd - 2.0) * bs / params.tr -
                   gd * t * (big_gd + 2.0) / (2.0 * sd)) *
                      params.cr * gd;
    const Bits max_group =
        (gd - 1.0) * bs +
        (t * gd / sd - (gd - 2.0) * bs / params.tr) * params.cr * gd;
    return (big_gd - 1.0) * per_group + max_group;
  }

  // Theorem 4, case G > n/g (last group has g' in [1, g) members).
  const double g_remd = static_cast<double>(g_rem);
  const Bits per_group =
      gd * bs - (nd * t / sd + (gd - 2.0) * bs / params.tr -
                 gd * t * (big_gd + 1.0) / (2.0 * sd)) *
                    params.cr * gd;
  // The last term uses g' (theorem statement); the appendix's Eq. (24)
  // misprints it as g — the theorem body is the consistent version.
  const Bits tail =
      bs * (gd + g_remd - 1.0) +
      params.cr * ((t * gd / sd - (gd - 2.0) * bs / params.tr) * gd -
                   (gd - 2.0) * g_remd * bs / params.tr);
  return (big_gd - 2.0) * per_group + tail;
}

Bits MemoryRequirementKernel(const AllocParams& params, ScheduleMethod method,
                             Bits bs, int n, int slots, int g) {
  switch (method) {
    case ScheduleMethod::kRoundRobin:
      return MemoryRequirementRoundRobin(params, bs, n, slots);
    case ScheduleMethod::kSweep:
      return MemoryRequirementSweep(params, bs, n, slots);
    case ScheduleMethod::kGss:
      return MemoryRequirementGss(params, bs, n, slots, g);
  }
  return Bits(0);
}

Result<Bits> DynamicMemoryRequirement(const AllocParams& params,
                                      ScheduleMethod method, int n, int k,
                                      int g) {
  VOD_RETURN_IF_ERROR(params.Validate());
  if (n < 1 || n > params.n_max) {
    return Status::OutOfRange("n=" + std::to_string(n) + " outside [1, N]");
  }
  if (k < 0) return Status::OutOfRange("k must be >= 0");
  if (method == ScheduleMethod::kGss && g < 1) {
    return Status::InvalidArgument("GSS requires group size g >= 1");
  }
  const int kc = std::min(k, params.n_max - n);
  Result<Bits> bs = DynamicBufferSize(params, n, kc);
  if (!bs.ok()) return bs.status();
  return MemoryRequirementKernel(params, method, bs.value(), n, n + kc, g);
}

Result<Bits> StaticMemoryRequirement(const AllocParams& params,
                                     ScheduleMethod method, int n, int g) {
  VOD_RETURN_IF_ERROR(params.Validate());
  if (n < 1 || n > params.n_max) {
    return Status::OutOfRange("n=" + std::to_string(n) + " outside [1, N]");
  }
  if (method == ScheduleMethod::kGss && g < 1) {
    return Status::InvalidArgument("GSS requires group size g >= 1");
  }
  Result<Bits> bs = StaticSchemeBufferSize(params);
  if (!bs.ok()) return bs.status();
  return MemoryRequirementKernel(params, method, bs.value(), n, params.n_max,
                                 g);
}

}  // namespace vod::core
