#include "core/static_alloc.h"

namespace vod::core {

Result<Bits> StaticBufferSize(const AllocParams& params, int n) {
  VOD_RETURN_IF_ERROR(params.Validate());
  if (n < 1 || n > params.n_max) {
    return Status::OutOfRange("n=" + std::to_string(n) +
                              " outside [1, N=" +
                              std::to_string(params.n_max) + "]");
  }
  const double nd = static_cast<double>(n);
  return nd * params.cr * params.dl * params.tr / (params.tr - nd * params.cr);
}

Result<Bits> StaticSchemeBufferSize(const AllocParams& params) {
  return StaticBufferSize(params, params.n_max);
}

Result<Seconds> StaticServicePeriod(const AllocParams& params, int n) {
  Result<Bits> bs = StaticBufferSize(params, n);
  if (!bs.ok()) return bs.status();
  return bs.value() / params.cr;
}

}  // namespace vod::core
