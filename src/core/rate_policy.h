#ifndef VODB_CORE_RATE_POLICY_H_
#define VODB_CORE_RATE_POLICY_H_

#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace vod::core {

/// Support for variable display rates (footnote 2 of the paper, after
/// Chang & Garcia-Molina): the buffer-sizing math assumes one common
/// consumption rate CR, and a mixed-rate catalogue is mapped onto it by
/// one of two policies:
///
///   kMaximalRate — use the largest rate as CR. Every stream is treated as
///     the fastest one; simple, wastes some buffer for slow streams.
///   kUnitRate — use (a divisor of) the greatest common divisor of the
///     rates as the unit CR and treat an r-rate stream as r/unit parallel
///     unit-rate requests. Tighter, costs request-slot multiplicity.
enum class RatePolicy { kMaximalRate, kUnitRate };

/// The CR the sizing formulas should use for `rates` under `policy`.
/// All rates must be positive. For kUnitRate the rates are reduced by an
/// approximate real-valued GCD (tolerance 1 bit/s).
Result<BitsPerSecond> EffectiveConsumptionRate(
    const std::vector<BitsPerSecond>& rates, RatePolicy policy);

/// How many unit-rate request slots a stream of rate `rate` occupies when
/// the system runs at `unit_cr` (kUnitRate accounting); 1 under
/// kMaximalRate. Rounds up: a 1.5-unit stream needs 2 slots.
Result<int> RequestSlots(BitsPerSecond rate, BitsPerSecond effective_cr,
                         RatePolicy policy);

}  // namespace vod::core

#endif  // VODB_CORE_RATE_POLICY_H_
