#ifndef VODB_CORE_STATIC_ALLOC_H_
#define VODB_CORE_STATIC_ALLOC_H_

#include "common/status.h"
#include "common/units.h"
#include "core/params.h"

namespace vod::core {

/// Eq. (5): the minimum buffer size that lets the server service n buffers
/// of this size once per service period while each request consumes at CR —
///
///     BS(n) = n · CR · DL · TR / (TR − n · CR)
///
/// Defined for 1 <= n <= N (Eq. 1 guarantees the denominator is positive).
/// This diverges as n → TR/CR, which is why the static scheme's fully-loaded
/// size BS(N) is so large.
Result<Bits> StaticBufferSize(const AllocParams& params, int n);

/// The buffer size the *static allocation scheme* hands to every request
/// regardless of load: BS(N) (Sec. 2.3).
Result<Bits> StaticSchemeBufferSize(const AllocParams& params);

/// The service period implied by Eq. (5) at load n: T(n) = BS(n) / CR,
/// equivalently n · (BS(n)/TR + DL). Exposed because the memory theorems
/// and the simulator both need it.
Result<Seconds> StaticServicePeriod(const AllocParams& params, int n);

}  // namespace vod::core

#endif  // VODB_CORE_STATIC_ALLOC_H_
