#include "core/params.h"

#include <cmath>

namespace vod::core {

std::string_view ScheduleMethodName(ScheduleMethod m) {
  switch (m) {
    case ScheduleMethod::kRoundRobin:
      return "RoundRobin";
    case ScheduleMethod::kSweep:
      return "Sweep*";
    case ScheduleMethod::kGss:
      return "GSS*";
  }
  return "Unknown";
}

Status AllocParams::Validate() const {
  if (tr <= BitsPerSecond(0)) return Status::InvalidArgument("TR must be > 0");
  if (cr <= BitsPerSecond(0)) return Status::InvalidArgument("CR must be > 0");
  if (dl < Seconds(0)) return Status::InvalidArgument("DL must be >= 0");
  if (n_max < 1) return Status::InvalidArgument("N must be >= 1");
  if (static_cast<double>(n_max) * cr >= tr) {
    return Status::InvalidArgument("N violates Eq. (1): N*CR must be < TR");
  }
  if (alpha < 1) {
    // Footnote 5: with α = 0 a freshly started system (k = 0) could never
    // admit anything, so α >= 1 is required.
    return Status::InvalidArgument("alpha must be >= 1");
  }
  return Status::OK();
}

int MaxConcurrentRequests(BitsPerSecond tr, BitsPerSecond cr) {
  if (tr <= BitsPerSecond(0) || cr <= BitsPerSecond(0)) return 0;
  const double ratio = tr / cr;
  // Largest integer strictly below TR/CR (Eq. 1). When TR/CR is integral,
  // N = TR/CR - 1 because equality cannot absorb any disk latency.
  const double floor_val = std::floor(ratio);
  if (floor_val == ratio) return static_cast<int>(floor_val) - 1;
  return static_cast<int>(floor_val);
}

Seconds WorstDiskLatency(const disk::DiskProfile& profile,
                         ScheduleMethod method, int n_or_g) {
  const double cyln = static_cast<double>(profile.cylinders);
  switch (method) {
    case ScheduleMethod::kRoundRobin:
      return profile.WorstLatency(cyln);
    case ScheduleMethod::kSweep:
    case ScheduleMethod::kGss: {
      const double div = n_or_g >= 1 ? static_cast<double>(n_or_g) : 1.0;
      return profile.WorstLatency(cyln / div);
    }
  }
  return profile.WorstLatency(cyln);
}

Result<AllocParams> MakeAllocParams(const disk::DiskProfile& profile,
                                    BitsPerSecond cr, ScheduleMethod method,
                                    int n_or_g, int alpha) {
  VOD_RETURN_IF_ERROR(profile.Validate());
  AllocParams p;
  p.tr = profile.transfer_rate;
  p.cr = cr;
  p.dl = WorstDiskLatency(profile, method, n_or_g);
  p.n_max = MaxConcurrentRequests(p.tr, cr);
  p.alpha = alpha;
  VOD_RETURN_IF_ERROR(p.Validate());
  return p;
}

}  // namespace vod::core
