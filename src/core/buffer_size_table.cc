#include "core/buffer_size_table.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "core/closed_form.h"

namespace vod::core {

BufferSizeTable::BufferSizeTable(AllocParams params,
                                 std::vector<Bits> table)
    : params_(params), table_(std::move(table)) {}

std::size_t BufferSizeTable::Index(int n, int k) const {
  // Row n-1 (n in [1, N]); column k in [0, N].
  return static_cast<std::size_t>(n - 1) *
             static_cast<std::size_t>(params_.n_max + 1) +
         static_cast<std::size_t>(k);
}

Result<BufferSizeTable> BufferSizeTable::Build(const AllocParams& params) {
  return Build(params, [&params](int) { return params.dl; });
}

Result<BufferSizeTable> BufferSizeTable::Build(const AllocParams& params,
                                               const DlForN& dl_for_n) {
  VOD_RETURN_IF_ERROR(params.Validate());
  const int n_max = params.n_max;
  std::vector<Bits> table(static_cast<std::size_t>(n_max) *
                          static_cast<std::size_t>(n_max + 1));
  BufferSizeTable t(params, std::move(table));
  for (int n = 1; n <= n_max; ++n) {
    AllocParams row = params;
    row.dl = dl_for_n(n);
    if (row.dl < Seconds(0)) return Status::InvalidArgument("DL(n) must be >= 0");
    for (int k = 0; k <= n_max; ++k) {
      Result<Bits> bs = DynamicBufferSize(row, n, std::min(k, n_max - n));
      if (!bs.ok()) return bs.status();
      t.table_[t.Index(n, k)] = bs.value();
    }
  }
  return t;
}

Result<Bits> BufferSizeTable::Get(int n, int k) const {
  if (n < 1 || n > params_.n_max) {
    return Status::OutOfRange("n outside [1, N]");
  }
  if (k < 0) return Status::OutOfRange("k must be >= 0");
  return GetUnchecked(n, k);
}

Bits BufferSizeTable::GetUnchecked(int n, int k) const {
  VOD_DCHECK(n >= 1 && n <= params_.n_max && k >= 0);
  return table_[Index(n, std::min(k, params_.n_max))];
}

}  // namespace vod::core
