#ifndef VODB_CORE_RECURRENCE_H_
#define VODB_CORE_RECURRENCE_H_

#include "common/status.h"
#include "common/units.h"
#include "core/params.h"

namespace vod::core {

/// Direct evaluation of the buffer-size recurrence (Eq. 10 of the paper)
/// *without* the closed form. Used as an independent oracle to validate
/// Theorem 1 and as a reference implementation for alternate α policies.
///
/// The recurrence (minimum sizes; Eq. 10 with equality):
///
///   BS_k(n) = (n+k) · ( BS_{k+α}(n+k) / TR + DL ) · CR       for n+k < N
///   BS_k(n) = N · ( BS(N) / TR + DL ) · CR                   when n+k >= N
///   BS(N)   = DL · N · CR · TR / (TR − N·CR)                 (Eq. 11)
///
/// where the "n+k >= N" step mirrors the derivation's substitution of N for
/// the first expansion count that meets or exceeds N ((12) → (13)).
/// Unrolling steps the in-service count through
/// count_i = n + i·k + (i−1)·i·α/2 while the estimate grows k → k+α → ...
///
/// Requires 1 <= n <= N and 0 <= k. Values of k beyond N−n are legal (the
/// recurrence terminates immediately at the boundary).
Result<Bits> BufferSizeByRecurrence(const AllocParams& params, int n, int k);

/// Number of expansion steps the recurrence performs before hitting the
/// fully-loaded boundary; equals Theorem 1's `e` (validated by tests).
Result<int> RecurrenceDepth(const AllocParams& params, int n, int k);

}  // namespace vod::core

#endif  // VODB_CORE_RECURRENCE_H_
