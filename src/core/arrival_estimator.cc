#include "core/arrival_estimator.h"

#include <algorithm>

#include "common/check.h"

namespace vod::core {

ArrivalEstimator::ArrivalEstimator(Seconds t_log) : t_log_(t_log) {
  VOD_CHECK(t_log > Seconds(0));
}

void ArrivalEstimator::RecordArrival(Seconds now) {
  VOD_DCHECK(arrivals_.empty() || now >= arrivals_.back());
  arrivals_.push_back(now);
  Prune(now);
}

void ArrivalEstimator::Prune(Seconds now) {
  const Seconds horizon = now - t_log_;
  while (!arrivals_.empty() && arrivals_.front() < horizon) {
    arrivals_.pop_front();
  }
}

int ArrivalEstimator::KLog(Seconds now, Seconds service_period) const {
  if (service_period <= Seconds(0)) return 0;
  const Seconds horizon = now - t_log_;
  while (!arrivals_.empty() && arrivals_.front() < horizon) {
    arrivals_.pop_front();
  }
  // Max count of arrivals in any half-open window [a_i, a_i + sp): windows
  // anchored at arrivals dominate, so a two-pointer sweep suffices.
  int best = 0;
  std::size_t j = 0;
  for (std::size_t i = 0; i < arrivals_.size(); ++i) {
    if (j < i) j = i;
    while (j < arrivals_.size() &&
           arrivals_[j] < arrivals_[i] + service_period) {
      ++j;
    }
    best = std::max(best, static_cast<int>(j - i));
  }
  return best;
}

}  // namespace vod::core
