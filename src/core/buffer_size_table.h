#ifndef VODB_CORE_BUFFER_SIZE_TABLE_H_
#define VODB_CORE_BUFFER_SIZE_TABLE_H_

#include <functional>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "core/params.h"

namespace vod::core {

/// Precomputed table of BS_k(n) for all 1 <= n <= N, 0 <= k <= N
/// (Sec. 3.3: "precomputing the equations for all possible values of n and
/// k ... the complexity of memory space requirement is O(N²)").
///
/// Lookups clamp k to N − n (estimating more additional requests than the
/// disk could ever admit is equivalent to estimating exactly the remaining
/// headroom: the recurrence bottoms out at the fully-loaded boundary in one
/// step either way).
class BufferSizeTable {
 public:
  /// Maps the in-service count n to the worst per-buffer disk latency DL to
  /// use in the formulas. The Sweep* method's DL is γ(Cyln/n)+θ (Table 2),
  /// so its table entries vary DL with n; Round-Robin and GSS* use a
  /// constant.
  using DlForN = std::function<Seconds(int n)>;

  /// Builds the table; fails if params are invalid.
  static Result<BufferSizeTable> Build(const AllocParams& params);

  /// As above, but row n is computed with params.dl = dl_for_n(n).
  static Result<BufferSizeTable> Build(const AllocParams& params,
                                       const DlForN& dl_for_n);

  /// BS_k(n). O(1). n must be in [1, N]; k >= 0 (clamped as above).
  Result<Bits> Get(int n, int k) const;

  /// Unchecked lookup for hot paths; preconditions as Get().
  Bits GetUnchecked(int n, int k) const;

  const AllocParams& params() const { return params_; }
  int n_max() const { return params_.n_max; }
  /// Total table footprint in entries (for the O(N²) claim in benches).
  std::size_t entry_count() const { return table_.size(); }

 private:
  BufferSizeTable(AllocParams params, std::vector<Bits> table);

  std::size_t Index(int n, int k) const;

  AllocParams params_;
  std::vector<Bits> table_;  // (N) rows of (N+1) k-entries.
};

}  // namespace vod::core

#endif  // VODB_CORE_BUFFER_SIZE_TABLE_H_
