#include "core/recurrence.h"

#include <string>
#include <vector>

namespace vod::core {
namespace {

Status ValidateNk(const AllocParams& params, int n, int k) {
  VOD_RETURN_IF_ERROR(params.Validate());
  if (n < 1 || n > params.n_max) {
    return Status::OutOfRange("n=" + std::to_string(n) + " outside [1, N]");
  }
  if (k < 0) return Status::OutOfRange("k must be >= 0");
  return Status::OK();
}

Bits FullyLoadedBufferSize(const AllocParams& p) {
  const double n = static_cast<double>(p.n_max);
  return p.dl * n * p.cr * p.tr / (p.tr - n * p.cr);
}

}  // namespace

Result<Bits> BufferSizeByRecurrence(const AllocParams& params, int n, int k) {
  VOD_RETURN_IF_ERROR(ValidateNk(params, n, k));
  const Bits bs_full = FullyLoadedBufferSize(params);
  if (n == params.n_max) return bs_full;

  // Iterative unrolling of the recurrence from the boundary back to (n, k):
  // first walk forward recording the counts, then fold backward.
  // count = n + i*k + (i-1)*i*alpha/2 at step i; estimate k_i = k + i*alpha.
  std::vector<double> counts;
  long long count = n;
  long long estimate = k;
  while (count + estimate < params.n_max) {
    count += estimate;
    counts.push_back(static_cast<double>(count));
    estimate += params.alpha;
  }
  // The final step's count meets or exceeds N; the derivation replaces it
  // with N itself.
  counts.push_back(static_cast<double>(params.n_max));

  // Fold backward: BS = count_i * (BS_next/TR + DL) * CR, innermost value is
  // BS(N).
  Bits bs = bs_full;
  for (auto it = counts.rbegin(); it != counts.rend(); ++it) {
    bs = *it * (bs / params.tr + params.dl) * params.cr;
  }
  // Note: the innermost fold applies count = N around BS(N); by Eq. (11)
  // N*(BS(N)/TR + DL)*CR == BS(N), so the extra application is exact.
  return bs;
}

Result<int> RecurrenceDepth(const AllocParams& params, int n, int k) {
  VOD_RETURN_IF_ERROR(ValidateNk(params, n, k));
  if (n == params.n_max) return 0;
  long long count = n;
  long long estimate = k;
  int depth = 1;
  while (count + estimate < params.n_max) {
    count += estimate;
    estimate += params.alpha;
    ++depth;
  }
  return depth;
}

}  // namespace vod::core
