#include "core/closed_form.h"

#include <cmath>
#include <string>
#include <vector>

namespace vod::core {
namespace {

Status ValidateNk(const AllocParams& params, int n, int k) {
  VOD_RETURN_IF_ERROR(params.Validate());
  if (n < 1 || n > params.n_max) {
    return Status::OutOfRange("n=" + std::to_string(n) + " outside [1, N]");
  }
  if (k < 0) return Status::OutOfRange("k must be >= 0");
  return Status::OK();
}

/// f(i) = n + i·k + (i−1)·i·α/2 — the in-service count after i expansion
/// steps (the estimate grows by α each step, so counts accumulate
/// k, k+α, k+2α, ...).
double StepCount(int n, int k, int alpha, int i) {
  return static_cast<double>(n) + static_cast<double>(i) * k +
         0.5 * static_cast<double>(i - 1) * i * alpha;
}

}  // namespace

Result<int> ExpansionSteps(const AllocParams& params, int n, int k) {
  VOD_RETURN_IF_ERROR(ValidateNk(params, n, k));
  if (n == params.n_max) {
    return Status::OutOfRange("e is defined for n < N only");
  }
  const double a = static_cast<double>(params.alpha);
  const double kd = static_cast<double>(k);
  const double gap = static_cast<double>(params.n_max - n);
  const double disc = kd * kd + a * (2.0 * gap - kd) + a * a / 4.0;
  // disc = (k − α/2)² + 2·α·(N−n) − 2·α·k + ... is always positive for
  // n < N; guard against rounding anyway.
  const double root = std::sqrt(std::max(disc, 0.0));
  double e = std::ceil((a / 2.0 - kd + root) / a);
  // Guard the ceiling against floating-point ties: enforce the defining
  // property f(e) >= N > f(e-1) exactly.
  int ei = std::max(1, static_cast<int>(e));
  while (StepCount(n, k, params.alpha, ei) < params.n_max) ++ei;
  while (ei > 1 &&
         StepCount(n, k, params.alpha, ei - 1) >= params.n_max) {
    --ei;
  }
  return ei;
}

Result<Bits> DynamicBufferSize(const AllocParams& params, int n, int k) {
  VOD_RETURN_IF_ERROR(ValidateNk(params, n, k));
  const double big_n = static_cast<double>(params.n_max);
  const Bits full = params.dl * big_n * params.cr * params.tr /
                    (params.tr - big_n * params.cr);
  if (n == params.n_max) return full;

  Result<int> e_res = ExpansionSteps(params, n, k);
  if (!e_res.ok()) return e_res.status();
  const int e = e_res.value();
  const double c = params.cr / params.tr;

  // prefix[i] = Π_{j=1}^{i} f(j), prefix[0] = 1.
  std::vector<double> prefix(static_cast<std::size_t>(e) + 1, 1.0);
  for (int i = 1; i <= e; ++i) {
    prefix[static_cast<std::size_t>(i)] =
        prefix[static_cast<std::size_t>(i - 1)] *
        StepCount(n, k, params.alpha, i);
  }

  // Term 1: c^e · Π_{i=1}^{e−1} f(i) · N²·TR/(TR − N·CR).
  const double term1 = std::pow(c, e) * prefix[static_cast<std::size_t>(e - 1)] *
                       big_n * big_n * params.tr /
                       (params.tr - big_n * params.cr);
  // Term 2: Σ_{i=0}^{e−2} c^i · Π_{j=1}^{i+1} f(j).
  double term2 = 0.0;
  for (int i = 0; i <= e - 2; ++i) {
    term2 += std::pow(c, i) * prefix[static_cast<std::size_t>(i + 1)];
  }
  // Term 3: c^{e−1} · N · Π_{j=1}^{e−1} f(j).
  const double term3 = std::pow(c, e - 1) * big_n *
                       prefix[static_cast<std::size_t>(e - 1)];

  return params.dl * params.cr * (term1 + term2 + term3);
}

}  // namespace vod::core
