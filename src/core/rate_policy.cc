#include "core/rate_policy.h"

#include <algorithm>
#include <cmath>

namespace vod::core {
namespace {

/// Euclidean GCD over doubles with an absolute tolerance.
double RealGcd(double a, double b, double tol) {
  while (b > tol) {
    const double r = std::fmod(a, b);
    a = b;
    b = r;
  }
  return a;
}

}  // namespace

Result<BitsPerSecond> EffectiveConsumptionRate(
    const std::vector<BitsPerSecond>& rates, RatePolicy policy) {
  if (rates.empty()) return Status::InvalidArgument("no rates given");
  for (BitsPerSecond r : rates) {
    if (r <= BitsPerSecond(0)) {
      return Status::InvalidArgument("rates must be positive");
    }
  }
  if (policy == RatePolicy::kMaximalRate) {
    return *std::max_element(rates.begin(), rates.end());
  }
  BitsPerSecond g = rates.front();
  for (std::size_t i = 1; i < rates.size(); ++i) {
    g = BitsPerSecond(RealGcd(std::max(g, rates[i]).value(),
                              std::min(g, rates[i]).value(), 1.0));
  }
  return g;
}

Result<int> RequestSlots(BitsPerSecond rate, BitsPerSecond effective_cr,
                         RatePolicy policy) {
  if (rate <= BitsPerSecond(0) || effective_cr <= BitsPerSecond(0)) {
    return Status::InvalidArgument("rates must be positive");
  }
  if (policy == RatePolicy::kMaximalRate) {
    if (rate > effective_cr * (1.0 + 1e-9)) {
      return Status::InvalidArgument("stream rate exceeds the maximal CR");
    }
    return 1;
  }
  return static_cast<int>(std::ceil(rate / effective_cr - 1e-9));
}

}  // namespace vod::core
