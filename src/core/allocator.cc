#include "core/allocator.h"

#include <algorithm>
#include <climits>
#include <string>
#include <utility>

#include "core/closed_form.h"
#include "core/static_alloc.h"

namespace vod::core {

// ---------------------------------------------------------------------------
// StaticBufferAllocator
// ---------------------------------------------------------------------------

StaticBufferAllocator::StaticBufferAllocator(const AllocParams& params,
                                             Bits bs)
    : params_(params), buffer_size_(bs) {}

Result<std::unique_ptr<StaticBufferAllocator>> StaticBufferAllocator::Create(
    const AllocParams& params) {
  Result<Bits> bs = StaticSchemeBufferSize(params);
  if (!bs.ok()) return bs.status();
  return std::unique_ptr<StaticBufferAllocator>(
      new StaticBufferAllocator(params, bs.value()));
}

void StaticBufferAllocator::NoteArrival(Seconds /*now*/) {}

Status StaticBufferAllocator::Admit(RequestId id, Seconds /*now*/) {
  if (admitted_.count(id) > 0) {
    return Status::FailedPrecondition("request already admitted");
  }
  if (active_ >= params_.n_max) {
    return Status::CapacityExceeded("system fully loaded (n == N)");
  }
  admitted_[id] = true;
  ++active_;
  return Status::OK();
}

void StaticBufferAllocator::Remove(RequestId id) {
  if (admitted_.erase(id) > 0) --active_;
}

Result<AllocationDecision> StaticBufferAllocator::Allocate(RequestId id,
                                                           Seconds /*now*/) {
  if (admitted_.count(id) == 0) {
    return Status::NotFound("request not admitted");
  }
  AllocationDecision d;
  d.buffer_size = buffer_size_;
  d.n = active_;
  d.k = 0;
  d.usage_period = buffer_size_ / params_.cr;
  return d;
}

Result<AllocationDecision> StaticBufferAllocator::Preview(
    Seconds /*now*/) const {
  AllocationDecision d;
  d.buffer_size = buffer_size_;
  d.n = active_;
  d.k = 0;
  d.usage_period = buffer_size_ / params_.cr;
  return d;
}

// ---------------------------------------------------------------------------
// DynamicBufferAllocator
// ---------------------------------------------------------------------------

DynamicBufferAllocator::DynamicBufferAllocator(const AllocParams& params,
                                               Seconds t_log,
                                               BufferSizeTable table)
    : params_(params), table_(std::move(table)), estimator_(t_log),
      // Until the first allocation, approximate the service period with the
      // lightest-load usage period: BS_α(1)/CR.
      last_usage_period_(table_.GetUnchecked(1, params.alpha) / params.cr) {}

Result<std::unique_ptr<DynamicBufferAllocator>> DynamicBufferAllocator::Create(
    const AllocParams& params, Seconds t_log,
    BufferSizeTable::DlForN dl_for_n) {
  if (t_log <= Seconds(0)) {
    return Status::InvalidArgument("T_log must be > 0");
  }
  Result<BufferSizeTable> table =
      dl_for_n ? BufferSizeTable::Build(params, dl_for_n)
               : BufferSizeTable::Build(params);
  if (!table.ok()) return table.status();
  return std::unique_ptr<DynamicBufferAllocator>(new DynamicBufferAllocator(
      params, t_log, std::move(table.value())));
}

void DynamicBufferAllocator::NoteArrival(Seconds now) {
  estimator_.RecordArrival(now);
}

int DynamicBufferAllocator::MinNiPlusKi() const {
  int best = INT_MAX;
  for (const auto& [id, s] : snapshots_) {
    if (s.allocated) best = std::min(best, s.n + s.k);
  }
  return best;
}

int DynamicBufferAllocator::MinKi() const {
  int best = INT_MAX;
  for (const auto& [id, s] : snapshots_) {
    if (s.allocated) best = std::min(best, s.k);
  }
  return best;
}

Status DynamicBufferAllocator::Admit(RequestId id, Seconds /*now*/) {
  if (snapshots_.count(id) > 0) {
    return Status::FailedPrecondition("request already admitted");
  }
  const int n = active_count();
  if (n >= params_.n_max) {
    return Status::CapacityExceeded("system fully loaded (n == N)");
  }
  // Assumption 1 (Procedure Admission_Control): admitting must keep
  // (n + 1) <= n_i + k_i for every in-service request i, otherwise buffers
  // already sized under the old inertia could underflow. Violations defer
  // the new request rather than rejecting it.
  if (enforce_assumptions_ && n + 1 > MinNiPlusKi()) {
    return Status::Deferred("Assumption 1 would be violated; service later");
  }
  snapshots_[id] = Snapshot{};
  return Status::OK();
}

void DynamicBufferAllocator::Remove(RequestId id) { snapshots_.erase(id); }

void DynamicBufferAllocator::MarkDrained(RequestId id) {
  auto it = snapshots_.find(id);
  // Drained requests keep their slot in n but no longer constrain the
  // inertia minima: they will never be re-serviced, so their old snapshot
  // carries no continuity obligation.
  if (it != snapshots_.end()) it->second.allocated = false;
}

Result<AllocationDecision> DynamicBufferAllocator::Preview(Seconds now) const {
  const int n_c = std::max(1, active_count());
  // Fig. 5 step 4: k_c = min(k_log + α, min_i(k_i + α)). The estimate is
  // deliberately *not* capped at N − n_c (the paper doesn't cap it either):
  // the buffer-size table saturates at the fully loaded size by itself, and
  // an uncapped k keeps the success-probability semantics of Figs. 7–8.
  const int k_log = estimator_.KLog(now, last_usage_period_);
  int k_c = k_log + params_.alpha;
  const int min_ki = MinKi();
  if (min_ki != INT_MAX) {
    k_c = std::min(k_c, min_ki + params_.alpha);
  }
  k_c = std::max(k_c, 0);

  AllocationDecision d;
  d.buffer_size = table_.GetUnchecked(n_c, k_c);
  d.n = n_c;
  d.k = k_c;
  d.usage_period = d.buffer_size / params_.cr;
  return d;
}

Result<AllocationDecision> DynamicBufferAllocator::Allocate(RequestId id,
                                                            Seconds now) {
  auto it = snapshots_.find(id);
  if (it == snapshots_.end()) {
    return Status::NotFound("request not admitted");
  }
  Result<AllocationDecision> d = Preview(now);
  if (!d.ok()) return d.status();
  it->second = Snapshot{d->n, d->k, /*allocated=*/true};
  last_usage_period_ = d->usage_period;
  return d;
}

Result<DynamicBufferAllocator::Snapshot> DynamicBufferAllocator::snapshot(
    RequestId id) const {
  auto it = snapshots_.find(id);
  if (it == snapshots_.end()) return Status::NotFound("no such request");
  return it->second;
}

}  // namespace vod::core
