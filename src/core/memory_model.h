#ifndef VODB_CORE_MEMORY_MODEL_H_
#define VODB_CORE_MEMORY_MODEL_H_

#include "common/status.h"
#include "common/units.h"
#include "core/params.h"

namespace vod::core {

/// Minimum system memory needed to support n in-service requests (plus k
/// estimated additional ones) under each scheduling method — Theorems 2–4.
///
/// All three theorems share a template: buffers of size BS are refilled on a
/// cycle of `slots` equal service slots (slots = k+n for the dynamic scheme;
/// the static scheme always spaces services as if fully loaded, slots = N),
/// requests drain at CR, and the requirement is the peak of the resulting
/// periodic function. The kernels below take BS and `slots` explicitly so
/// both schemes (and ablations) instantiate the same code.

/// Theorem 2 (Round-Robin / BubbleUp):
///   Mem = n·BS − BS·n·(n−1)/(2·slots) + n·CR·DL.
Bits MemoryRequirementRoundRobin(const AllocParams& params, Bits bs, int n,
                                 int slots);

/// Theorem 3 (Sweep*), with T = BS/CR the full cycle:
///   n > 1: (n−1)·BS + (n·T/slots − (n−2)·BS/TR)·CR·n
///   n = 1: BS + (BS/TR + DL)·CR.
Bits MemoryRequirementSweep(const AllocParams& params, Bits bs, int n,
                            int slots);

/// Theorem 4 (GSS*) with group size g; delegates to Theorem 3 when g >= n
/// and Theorem 2 when g == 1. G = ⌈n/g⌉ groups; g' = n − ⌊n/g⌋·g.
Bits MemoryRequirementGss(const AllocParams& params, Bits bs, int n,
                          int slots, int g);

/// Dispatch across methods. `g` is used by GSS* only.
Bits MemoryRequirementKernel(const AllocParams& params, ScheduleMethod method,
                             Bits bs, int n, int slots, int g);

/// Dynamic scheme: BS = BS_k(n) (Theorem 1), slots = k+n. k is clamped to
/// [0, N−n]. Requires 1 <= n <= N.
Result<Bits> DynamicMemoryRequirement(const AllocParams& params,
                                      ScheduleMethod method, int n, int k,
                                      int g);

/// Static scheme baseline: every buffer is BS(N) and services are spaced at
/// the fully-loaded slot width (slots = N) regardless of load.
Result<Bits> StaticMemoryRequirement(const AllocParams& params,
                                     ScheduleMethod method, int n, int g);

}  // namespace vod::core

#endif  // VODB_CORE_MEMORY_MODEL_H_
