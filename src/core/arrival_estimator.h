#ifndef VODB_CORE_ARRIVAL_ESTIMATOR_H_
#define VODB_CORE_ARRIVAL_ESTIMATOR_H_

#include <deque>

#include "common/status.h"
#include "common/units.h"

namespace vod::core {

/// Tracks recent request arrivals and measures k_log — "the maximum number
/// of additional requests arriving during the time T_log" (Table 1), i.e.
/// the peak count of arrivals inside any window of one service period that
/// lies within the last T_log. The dynamic scheme sets the estimate
/// k_c = min(k_log + α, min_i(k_i + α)) at each allocation (Fig. 5, step 4).
class ArrivalEstimator {
 public:
  /// `t_log` must be positive (the paper uses 40 min for Round-Robin,
  /// 20 min for Sweep*/GSS*).
  explicit ArrivalEstimator(Seconds t_log);

  /// Records an arrival at time `now`. Times must be non-decreasing.
  void RecordArrival(Seconds now);

  /// k_log at time `now`, with windows of length `service_period`.
  /// O(w) in the number of logged arrivals (two-pointer sweep).
  int KLog(Seconds now, Seconds service_period) const;

  /// Drops arrivals older than now − T_log. Called internally by
  /// RecordArrival/KLog; exposed for tests.
  void Prune(Seconds now);

  Seconds t_log() const { return t_log_; }
  std::size_t logged_count() const { return arrivals_.size(); }

 private:
  Seconds t_log_;
  mutable std::deque<Seconds> arrivals_;
};

}  // namespace vod::core

#endif  // VODB_CORE_ARRIVAL_ESTIMATOR_H_
