#ifndef VODB_CORE_ALLOCATOR_H_
#define VODB_CORE_ALLOCATOR_H_

#include <map>
#include <memory>

#include "common/status.h"
#include "common/types.h"
#include "common/units.h"
#include "core/arrival_estimator.h"
#include "core/buffer_size_table.h"
#include "core/params.h"

namespace vod::core {

/// One buffer-allocation decision (Fig. 5, step 5).
struct AllocationDecision {
  Bits buffer_size;
  int n = 0;                 ///< n_c: requests in service at allocation time.
  int k = 0;                 ///< k_c: estimated additional requests (0 static).
  Seconds usage_period;  ///< BS / CR — how long the buffer lasts.
};

/// Buffer-allocation policy: decides admission of new requests and the size
/// of each buffer handed to a request at its service time. Two
/// implementations: the static scheme (Sec. 2.3 baseline) and the paper's
/// dynamic scheme (Sec. 3). Stateful but not thread-safe: the VOD server
/// drives it from a single scheduling loop.
class BufferAllocator {
 public:
  virtual ~BufferAllocator() = default;

  /// Reports one newly arrived (not yet admitted) user request, so the
  /// dynamic scheme's arrival log sees every arrival, including ones later
  /// deferred or rejected.
  virtual void NoteArrival(Seconds now) = 0;

  /// Attempts to admit a request. On success the request counts toward n
  /// from now on. Errors:
  ///   CapacityExceeded — n == N; the system cannot take more (reject).
  ///   Deferred — admitting now would violate Assumption 1; retry at the
  ///              next service completion (predict-and-enforce deferral).
  virtual Status Admit(RequestId id, Seconds now) = 0;

  /// Removes a departing (or rejected-after-admit) request.
  virtual void Remove(RequestId id) = 0;

  /// Marks a request as fully delivered: it still counts toward n (it is
  /// viewing until its last buffer drains) but needs no more services, so
  /// its last allocation's inertia snapshot stops constraining Assumptions
  /// 1–2.
  virtual void MarkDrained(RequestId id) = 0;

  /// Sizes the buffer to hand `id` for the service starting now
  /// (Fig. 5 steps 4–5). `id` must have been admitted.
  virtual Result<AllocationDecision> Allocate(RequestId id, Seconds now) = 0;

  /// The decision Allocate would make right now, without recording it.
  /// Used by the scheduler's worst-case lookahead. Valid whenever at least
  /// one request is admitted.
  virtual Result<AllocationDecision> Preview(Seconds now) const = 0;

  /// Requests currently admitted (the paper's n).
  [[nodiscard]] virtual int active_count() const = 0;

  /// The parameter set the allocator sizes against.
  [[nodiscard]] virtual const AllocParams& params() const = 0;
};

/// The static baseline: every buffer is BS(N); admission is capped at N.
class StaticBufferAllocator final : public BufferAllocator {
 public:
  static Result<std::unique_ptr<StaticBufferAllocator>> Create(
      const AllocParams& params);

  void NoteArrival(Seconds now) override;
  Status Admit(RequestId id, Seconds now) override;
  void Remove(RequestId id) override;
  void MarkDrained(RequestId /*id*/) override {}
  Result<AllocationDecision> Allocate(RequestId id, Seconds now) override;
  Result<AllocationDecision> Preview(Seconds now) const override;
  [[nodiscard]] int active_count() const override { return active_; }
  [[nodiscard]] const AllocParams& params() const override { return params_; }

 private:
  StaticBufferAllocator(const AllocParams& params, Bits bs);

  AllocParams params_;
  Bits buffer_size_;
  int active_ = 0;
  std::map<RequestId, bool> admitted_;
};

/// The paper's dynamic scheme (Fig. 5): predicts k_c from the arrival log,
/// enforces Assumptions 1–2 via admission control, and sizes buffers from
/// the precomputed BS_k(n) table.
class DynamicBufferAllocator final : public BufferAllocator {
 public:
  /// `dl_for_n` lets Sweep* vary DL with n (pass nullptr for constant DL).
  static Result<std::unique_ptr<DynamicBufferAllocator>> Create(
      const AllocParams& params, Seconds t_log,
      BufferSizeTable::DlForN dl_for_n = nullptr);

  void NoteArrival(Seconds now) override;
  Status Admit(RequestId id, Seconds now) override;
  void Remove(RequestId id) override;
  void MarkDrained(RequestId id) override;
  Result<AllocationDecision> Allocate(RequestId id, Seconds now) override;
  Result<AllocationDecision> Preview(Seconds now) const override;
  [[nodiscard]] int active_count() const override {
    return static_cast<int>(snapshots_.size());
  }
  [[nodiscard]] const AllocParams& params() const override { return params_; }

  /// The (n_i, k_i) snapshot the allocator recorded for `id` at its last
  /// allocation (for tests and invariant checks).
  struct Snapshot {
    int n = 0;
    int k = 0;
    bool allocated = false;  ///< False until the first buffer is sized.
  };
  Result<Snapshot> snapshot(RequestId id) const;

  /// Failure injection: when false, Admit() skips the Assumption-1 gate
  /// (never defers). Simulations then demonstrate the starvation the
  /// predict-and-enforce strategy exists to prevent. Default true.
  void set_enforce_assumptions(bool enforce) {
    enforce_assumptions_ = enforce;
  }

 private:
  DynamicBufferAllocator(const AllocParams& params, Seconds t_log,
                         BufferSizeTable table);

  /// min_i over allocated snapshots of (n_i + k_i); INT_MAX when none.
  int MinNiPlusKi() const;
  /// min_i over allocated snapshots of k_i; INT_MAX when none.
  int MinKi() const;

  AllocParams params_;
  BufferSizeTable table_;
  ArrivalEstimator estimator_;
  std::map<RequestId, Snapshot> snapshots_;
  Seconds last_usage_period_;
  bool enforce_assumptions_ = true;
};

}  // namespace vod::core

#endif  // VODB_CORE_ALLOCATOR_H_
