#include "fault/fault_spec.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>

namespace vod::fault {

namespace {

constexpr Seconds kInf = Seconds::Infinity();

/// Formats a double with just enough digits to round-trip typical spec
/// values without trailing-zero noise ("10", "0.05", "2.5").
std::string Num(double v) {
  if (std::isinf(v)) return "inf";
  char buf[32];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%g", v);
  }
  return buf;
}

Result<double> ParseNum(std::string_view s) {
  if (s == "inf") return kInf.value();
  if (s.empty()) return Status::InvalidArgument("empty numeric value");
  char* end = nullptr;
  const std::string owned(s);
  const double v = std::strtod(owned.c_str(), &end);
  if (end != owned.c_str() + owned.size() || std::isnan(v)) {
    return Status::InvalidArgument("malformed number `" + owned + "`");
  }
  return v;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

Status Fail(std::string_view clause, const std::string& why) {
  return Status::InvalidArgument("fault clause `" + std::string(clause) +
                                 "`: " + why);
}

/// Applies key=value to `c`, enforcing per-kind key ownership.
Status ApplyKey(FaultClause& c, std::string_view clause, std::string_view key,
                double v) {
  const FaultKind k = c.kind;
  const bool windowed = k != FaultKind::kBurst;
  if (key == "start" || (key == "at" && k == FaultKind::kBurst)) {
    if (v < 0) return Fail(clause, "start must be >= 0");
    c.start = Seconds(v);
    return Status::OK();
  }
  if (key == "end" && windowed) {
    c.end = Seconds(v);
    return Status::OK();
  }
  if (key == "disk" && k != FaultKind::kMemSqueeze) {
    if (v != std::floor(v) || v < -1) {
      return Fail(clause, "disk must be an integer >= -1");
    }
    c.disk = static_cast<int>(v);
    return Status::OK();
  }
  if (key == "p" && (k == FaultKind::kLatency || k == FaultKind::kEio)) {
    if (v < 0 || v > 1) return Fail(clause, "p must be in [0,1]");
    c.p = v;
    return Status::OK();
  }
  if (k == FaultKind::kLatency) {
    if (key == "factor") {
      if (v < 1) return Fail(clause, "factor must be >= 1");
      c.factor = v;
      return Status::OK();
    }
    if (key == "extra") {
      if (v < 0) return Fail(clause, "extra must be >= 0");
      c.extra = Seconds(v);
      return Status::OK();
    }
  }
  if (k == FaultKind::kEio) {
    if (key == "retries") {
      if (v != std::floor(v) || v < 0) {
        return Fail(clause, "retries must be an integer >= 0");
      }
      c.retries = static_cast<int>(v);
      return Status::OK();
    }
    if (key == "backoff") {
      if (v < 0) return Fail(clause, "backoff must be >= 0");
      c.backoff = Seconds(v);
      return Status::OK();
    }
  }
  if (k == FaultKind::kMemSqueeze && key == "scale") {
    if (v <= 0 || v > 1) return Fail(clause, "scale must be in (0,1]");
    c.scale = v;
    return Status::OK();
  }
  if (k == FaultKind::kBurst) {
    if (key == "count") {
      if (v != std::floor(v) || v < 0) {
        return Fail(clause, "count must be an integer >= 0");
      }
      c.count = static_cast<int>(v);
      return Status::OK();
    }
    if (key == "video") {
      if (v != std::floor(v) || v < 0) {
        return Fail(clause, "video must be an integer >= 0");
      }
      c.video = static_cast<int>(v);
      return Status::OK();
    }
    if (key == "spread") {
      if (v <= 0) return Fail(clause, "spread must be > 0");
      c.spread = Seconds(v);
      return Status::OK();
    }
    if (key == "viewing") {
      if (v <= 0) return Fail(clause, "viewing must be > 0");
      c.viewing = Seconds(v);
      return Status::OK();
    }
  }
  return Fail(clause, "unknown key `" + std::string(key) + "` for kind " +
                          std::string(FaultKindName(k)));
}

Result<FaultClause> ParseClause(std::string_view text) {
  FaultClause c;
  std::string_view kind = text;
  std::string_view rest;
  const std::size_t colon = text.find(':');
  if (colon != std::string_view::npos) {
    kind = text.substr(0, colon);
    rest = text.substr(colon + 1);
  }
  if (kind == "latency") {
    c.kind = FaultKind::kLatency;
  } else if (kind == "eio") {
    c.kind = FaultKind::kEio;
  } else if (kind == "outage") {
    c.kind = FaultKind::kOutage;
  } else if (kind == "memsqueeze") {
    c.kind = FaultKind::kMemSqueeze;
  } else if (kind == "burst") {
    c.kind = FaultKind::kBurst;
  } else {
    return Fail(text, "unknown kind `" + std::string(kind) + "`");
  }
  c.end = kInf;

  while (!rest.empty()) {
    std::size_t comma = rest.find(',');
    const std::string_view pair =
        comma == std::string_view::npos ? rest : rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view()
                                           : rest.substr(comma + 1);
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      return Fail(text, "expected key=value, got `" + std::string(pair) + "`");
    }
    Result<double> v = ParseNum(pair.substr(eq + 1));
    if (!v.ok()) return Fail(text, v.status().message());
    VOD_RETURN_IF_ERROR(ApplyKey(c, text, pair.substr(0, eq), v.value()));
  }

  if (c.kind != FaultKind::kBurst && c.end <= c.start) {
    return Fail(text, "window end must be > start");
  }
  if (c.kind == FaultKind::kBurst && c.count == 0) {
    return Fail(text, "burst needs count=N");
  }
  return c;
}

}  // namespace

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLatency:
      return "latency";
    case FaultKind::kEio:
      return "eio";
    case FaultKind::kOutage:
      return "outage";
    case FaultKind::kMemSqueeze:
      return "memsqueeze";
    case FaultKind::kBurst:
      return "burst";
  }
  return "unknown";
}

std::string FaultSpec::ToString() const {
  std::string out;
  for (const FaultClause& c : clauses) {
    if (!out.empty()) out += ';';
    out += FaultKindName(c.kind);
    if (c.kind == FaultKind::kBurst) {
      out += ":at=" + Num(c.start.value()) + ",count=" + Num(c.count) +
             ",video=" + Num(c.video) + ",spread=" + Num(c.spread.value()) +
             ",viewing=" + Num(c.viewing.value());
      if (c.disk >= 0) out += ",disk=" + Num(c.disk);
      continue;
    }
    out += ":start=" + Num(c.start.value()) + ",end=" + Num(c.end.value());
    if (c.disk >= 0) out += ",disk=" + Num(c.disk);
    switch (c.kind) {
      case FaultKind::kLatency:
        out += ",factor=" + Num(c.factor) + ",extra=" + Num(c.extra.value()) +
               ",p=" + Num(c.p);
        break;
      case FaultKind::kEio:
        out += ",p=" + Num(c.p) + ",retries=" + Num(c.retries) +
               ",backoff=" + Num(c.backoff.value());
        break;
      case FaultKind::kMemSqueeze:
        out += ",scale=" + Num(c.scale);
        break;
      case FaultKind::kOutage:
      case FaultKind::kBurst:
        break;
    }
  }
  return out;
}

Result<FaultSpec> ParseFaultSpec(std::string_view text) {
  FaultSpec spec;
  text = Trim(text);
  if (text.empty() || text == "none" || text == "off") return spec;
  while (!text.empty()) {
    const std::size_t semi = text.find(';');
    const std::string_view clause = Trim(
        semi == std::string_view::npos ? text : text.substr(0, semi));
    text = semi == std::string_view::npos ? std::string_view()
                                          : text.substr(semi + 1);
    if (clause.empty()) continue;
    Result<FaultClause> c = ParseClause(clause);
    if (!c.ok()) return c.status();
    spec.clauses.push_back(*c);
  }
  return spec;
}

}  // namespace vod::fault
