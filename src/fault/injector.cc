#include "fault/injector.h"

#include <algorithm>

namespace vod::fault {

namespace {

/// Window membership: [start, end). Bursts never match.
bool Covers(const FaultClause& c, int disk, Seconds now) {
  if (c.kind == FaultKind::kBurst) return false;
  if (c.disk >= 0 && c.disk != disk) return false;
  return now >= c.start && now < c.end;
}

}  // namespace

Injector::Injector(FaultSpec spec, std::uint64_t seed)
    : spec_(std::move(spec)), seed_(seed),
      rng_(seed, /*stream=*/0xfa017ec7a05e11ULL) {}

ReadFault Injector::OnRead(int disk, Seconds now) {
  ReadFault f;
  ++reads_seen_;
  for (const FaultClause& c : spec_.clauses) {
    if (!Covers(c, disk, now)) continue;
    switch (c.kind) {
      case FaultKind::kLatency: {
        // p == 1 is deterministic and must not consume randomness.
        const bool hit = c.p >= 1.0 || rng_.NextDouble() < c.p;
        if (hit) {
          f.latency_factor *= c.factor;
          f.extra_latency += c.extra;
        }
        break;
      }
      case FaultKind::kEio: {
        if (f.fail) break;  // First matching eio clause decides.
        const bool hit = c.p >= 1.0 || rng_.NextDouble() < c.p;
        if (hit) {
          f.fail = true;
          f.max_retries = c.retries;
          f.retry_backoff = c.backoff;
        }
        break;
      }
      case FaultKind::kOutage:
      case FaultKind::kMemSqueeze:
      case FaultKind::kBurst:
        break;  // Handled by InOutage / CapacityScale / Bursts.
    }
  }
  if (f.fail) ++read_failures_injected_;
  if (f.latency_factor > 1.0 || f.extra_latency > Seconds(0)) ++reads_delayed_;
  return f;
}

bool Injector::InOutage(int disk, Seconds now, Seconds* resume_at) const {
  bool out = false;
  Seconds resume = now;
  for (const FaultClause& c : spec_.clauses) {
    if (c.kind != FaultKind::kOutage || !Covers(c, disk, now)) continue;
    out = true;
    resume = std::max(resume, c.end);
  }
  if (out && resume_at != nullptr) *resume_at = resume;
  return out;
}

double Injector::CapacityScale(Seconds now) const {
  double scale = 1.0;
  for (const FaultClause& c : spec_.clauses) {
    // Squeezes are system-wide: disk filtering does not apply.
    if (c.kind != FaultKind::kMemSqueeze) continue;
    if (now >= c.start && now < c.end) scale *= c.scale;
  }
  return scale;
}

std::vector<BurstArrival> Injector::Bursts() const {
  std::vector<BurstArrival> out;
  for (std::size_t i = 0; i < spec_.clauses.size(); ++i) {
    const FaultClause& c = spec_.clauses[i];
    if (c.kind != FaultKind::kBurst) continue;
    // One independent stream per clause, derived from the injector seed, so
    // the burst layout is a pure function of (spec, seed) and reordering
    // non-burst clauses cannot move arrivals.
    sim::Rng rng(seed_, /*stream=*/0xb065u + 2 * i);
    std::vector<Seconds> times;
    times.reserve(static_cast<std::size_t>(c.count));
    for (int j = 0; j < c.count; ++j) {
      times.push_back(c.start + Seconds(rng.Uniform(0.0, c.spread.value())));
    }
    std::sort(times.begin(), times.end());
    for (const Seconds t : times) {
      BurstArrival a;
      a.time = t;
      a.video = c.video;
      a.viewing_time = c.viewing;
      a.disk = std::max(0, c.disk);
      out.push_back(a);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const BurstArrival& a, const BurstArrival& b) {
              return a.time < b.time;
            });
  return out;
}

}  // namespace vod::fault
