#ifndef VODB_FAULT_INJECTOR_H_
#define VODB_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "common/units.h"
#include "fault/fault_spec.h"
#include "sim/rng.h"

namespace vod::fault {

/// What the injector decided about one disk read. The zero-fault value
/// (fail = false, factor 1, extra 0) leaves the read bit-identical to an
/// uninjected run — multiplying a service time by 1.0 and adding 0.0 are
/// exact IEEE identities, which is what makes the observer-effect guarantee
/// (golden CSVs unchanged under an empty spec) hold exactly.
struct ReadFault {
  bool fail = false;           ///< Transient EIO: no data transfers.
  int max_retries = 0;         ///< kEio retry budget for the failed round.
  Seconds retry_backoff;   ///< Base backoff before the re-issued read.
  /// Dimensionless multiplier on the read's service time.
  double latency_factor = 1.0;  // vodb-lint: allow(raw-double-unit)
  Seconds extra_latency;   ///< kLatency additive delay.
};

/// One arrival a kBurst clause injects into the workload.
struct BurstArrival {
  Seconds time;
  int video = 0;
  Seconds viewing_time;
  int disk = 0;
};

/// Deterministic, seed-driven fault source. One instance serves a whole run
/// (all disks of a MultiDiskSimulator share it); every probabilistic
/// decision comes from an internal sim::Rng seeded once, so a chaos run is
/// replayable from (spec, seed) alone.
///
/// Determinism contract: OnRead consumes randomness only when a
/// probabilistic clause (p < 1) actually covers the read's (disk, time).
/// Deterministic clauses (p == 1) and out-of-window reads consume nothing,
/// so adding a clause for a window cannot perturb decisions outside it, and
/// an empty spec consumes no randomness at all. The window/capacity queries
/// (InOutage, CapacityScale, Bursts) are pure functions of (spec, seed).
class Injector {
 public:
  Injector(FaultSpec spec, std::uint64_t seed);

  /// Whether any clause exists. An inactive injector is a strict no-op.
  [[nodiscard]] bool active() const { return !spec_.empty(); }

  /// Consulted by the simulator as each disk read is issued. May draw from
  /// the injector's RNG (see the determinism contract above). Effects of
  /// multiple matching latency clauses compose (factors multiply, extras
  /// add); the first matching eio clause decides failure.
  ReadFault OnRead(int disk, Seconds now);

  /// Whether `disk` is inside an outage window at `now`. When true and the
  /// window is finite, `*resume_at` (if non-null) gets the earliest time the
  /// disk is back (the max end over covering windows).
  [[nodiscard]] bool InOutage(int disk, Seconds now,
                              Seconds* resume_at = nullptr) const;

  /// Product of the scale factors of all memsqueeze windows open at `now`
  /// (1.0 outside every window).
  [[nodiscard]] double CapacityScale(Seconds now) const;

  /// Expands every burst clause into concrete arrivals (times drawn from a
  /// clause-indexed RNG stream derived from the injector seed — calling this
  /// never disturbs OnRead's stream). Sorted by time.
  [[nodiscard]] std::vector<BurstArrival> Bursts() const;

  [[nodiscard]] const FaultSpec& spec() const { return spec_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Test/diagnostic counters.
  [[nodiscard]] long reads_seen() const { return reads_seen_; }
  [[nodiscard]] long read_failures_injected() const {
    return read_failures_injected_;
  }
  [[nodiscard]] long reads_delayed() const { return reads_delayed_; }

 private:
  FaultSpec spec_;
  std::uint64_t seed_;
  sim::Rng rng_;
  long reads_seen_ = 0;
  long read_failures_injected_ = 0;
  long reads_delayed_ = 0;
};

}  // namespace vod::fault

#endif  // VODB_FAULT_INJECTOR_H_
