#ifndef VODB_FAULT_FAULT_SPEC_H_
#define VODB_FAULT_FAULT_SPEC_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace vod::fault {

/// What a fault clause does to the system while its window is open.
enum class FaultKind {
  kLatency,     ///< Inflate individual disk reads (slow spindle, recal).
  kEio,         ///< Fail individual reads transiently (media error, retry).
  kOutage,      ///< Whole disk dark for the window (controller reset).
  kMemSqueeze,  ///< Scale the MemoryBroker capacity down (co-tenant pressure).
  kBurst,       ///< Inject an arrival burst into the workload (flash crowd).
};

std::string_view FaultKindName(FaultKind kind);

/// One parsed fault clause. Fields not used by a kind keep their defaults
/// (the parser rejects keys that do not belong to the clause's kind, so a
/// stray default never hides a typo).
struct FaultClause {
  FaultKind kind = FaultKind::kLatency;

  // Window [start, end) in simulated seconds; end defaults to +infinity.
  // kBurst uses `start` as the burst epoch instead of a window.
  Seconds start;
  Seconds end;  ///< Set to +inf by the parser when omitted.

  int disk = -1;  ///< Target disk id; -1 = every disk.

  // kLatency / kEio: probability that one read in the window is hit.
  // 1.0 (the default) is deterministic — no RNG draw is consumed.
  double p = 1.0;

  // kLatency: multiply the read's service time, then add `extra`.
  double factor = 2.0;
  Seconds extra;

  // kEio: bounded retry budget per service round and base backoff before
  // the disk re-issues the read (doubled per consecutive failure).
  int retries = 3;
  Seconds backoff = Seconds(0.05);

  // kMemSqueeze: multiply broker capacity by this while the window is open.
  double scale = 0.5;

  // kBurst: `count` extra arrivals for `video`, uniformly spread over
  // [start, start + spread), each watching `viewing` seconds, on `disk`
  // (-1 = disk 0; bursts target one disk).
  int count = 0;
  Seconds spread = Seconds(60);
  Seconds viewing = Seconds(1800);
  int video = 0;
};

/// A full fault schedule: the ordered clause list of a `--faults=` spec.
struct FaultSpec {
  std::vector<FaultClause> clauses;

  [[nodiscard]] bool empty() const { return clauses.empty(); }

  /// Canonical round-trippable text form ("latency:start=10,end=20,...").
  [[nodiscard]] std::string ToString() const;
};

/// Parses a `--faults=` spec: semicolon-separated clauses, each
/// `kind` or `kind:key=value,key=value,...`. Kinds: latency, eio, outage,
/// memsqueeze, burst. Keys (per kind, all optional):
///
///   latency:    start end disk p factor extra
///   eio:        start end disk p retries backoff
///   outage:     start end disk
///   memsqueeze: start end scale
///   burst:      at (alias start) count video disk spread viewing
///
/// Times are seconds; `end` omitted means "until the run ends". The spec
/// "none" (or the empty string) parses to an empty schedule — useful for
/// observer-effect tests that attach a fault::Injector with nothing in it.
/// Unknown kinds/keys and out-of-domain values are InvalidArgument.
Result<FaultSpec> ParseFaultSpec(std::string_view text);

}  // namespace vod::fault

#endif  // VODB_FAULT_FAULT_SPEC_H_
