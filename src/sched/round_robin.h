#ifndef VODB_SCHED_ROUND_ROBIN_H_
#define VODB_SCHED_ROUND_ROBIN_H_

#include <deque>
#include <list>

#include "sched/scheduler.h"

namespace vod::sched {

/// Round-Robin scheduling with BubbleUp [1]: buffers are serviced cyclically
/// in allocation order, but a newly admitted request is serviced immediately
/// after the service in progress completes ("bubbles up" past the ring).
/// This is what gives Eq. (2)'s two-slot worst initial latency.
class RoundRobinScheduler final : public BufferScheduler {
 public:
  void Add(RequestId id, Seconds now) override;
  void Remove(RequestId id) override;
  bool AdmitsMidPeriod() const override { return true; }
  const std::vector<RequestId>& ServiceSequence(const SchedulerContext& ctx,
                                                Seconds now) override;
  void OnServiceComplete(RequestId id, Seconds now) override;

 private:
  std::deque<RequestId> fresh_;  ///< Admitted, never serviced; FIFO.
  std::list<RequestId> ring_;    ///< Ring order; front is next to service.
};

}  // namespace vod::sched

#endif  // VODB_SCHED_ROUND_ROBIN_H_
