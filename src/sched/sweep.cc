#include "sched/sweep.h"

#include <algorithm>

#include "common/check.h"
#include "obs/profile.h"

namespace vod::sched {

void SweepScheduler::Add(RequestId id, Seconds /*now*/) {
  members_.insert(id);
}

void SweepScheduler::Remove(RequestId id) {
  members_.erase(id);
  auto it = std::find(roster_.begin(), roster_.end(), id);
  if (it != roster_.end()) roster_.erase(it);
}

const std::vector<RequestId>& SweepScheduler::ServiceSequence(
    const SchedulerContext& ctx, Seconds /*now*/) {
  VODB_PROF_SCOPE("sched.sweep.sequence");
  if (roster_.empty()) {
    // Start a new period: everyone needing service, in cylinder order
    // (one-directional scan; the data positions advance monotonically so
    // consecutive periods naturally sweep forward).
    roster_.reserve(members_.size());
    for (RequestId id : members_) {
      if (ctx.NeedsService(id)) roster_.push_back(id);
    }
    std::sort(roster_.begin(), roster_.end(),
              [&ctx](RequestId a, RequestId b) {
                const double ca = ctx.CurrentCylinder(a);
                const double cb = ctx.CurrentCylinder(b);
                if (ca != cb) return ca < cb;
                return a < b;
              });
    if (!roster_.empty()) ++periods_started_;
  }
  seq_.clear();
  seq_.reserve(roster_.size());
  for (RequestId id : roster_) {
    if (ctx.NeedsService(id)) seq_.push_back(id);
  }
  return seq_;
}

void SweepScheduler::OnServiceComplete(RequestId id, Seconds /*now*/) {
  auto it = std::find(roster_.begin(), roster_.end(), id);
  VOD_CHECK(it != roster_.end());
  roster_.erase(it);
}

}  // namespace vod::sched
